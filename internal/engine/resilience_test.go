package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/resilience"
)

// TestRetryRecoversTransientFault: an injected transient fault consumes
// attempts until it clears; the job succeeds and the retries are counted.
func TestRetryRecoversTransientFault(t *testing.T) {
	jobs := []Job{kernelJob(t, "gemm", flow.Directives{})}
	var calls atomic.Int32
	e := New(Options{
		Retries:      3,
		RetryBackoff: time.Microsecond,
		Seed:         1,
		InjectFault: func(j Job) error {
			if calls.Add(1) <= 2 {
				return context.DeadlineExceeded
			}
			return nil
		},
	})
	rs, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil || rs[0].Res == nil {
		t.Fatalf("retries should have recovered the job: %+v", rs[0])
	}
	if rs[0].Attempts != 3 {
		t.Errorf("want 3 attempts (2 faults + 1 success), got %d", rs[0].Attempts)
	}
	if got := e.Stats().Retries; got != 2 {
		t.Errorf("stats retries = %d, want 2", got)
	}
}

// TestDeterministicFailureDoesNotRetry: re-running identical input through
// deterministic code cannot help, so plain errors burn exactly one attempt.
func TestDeterministicFailureDoesNotRetry(t *testing.T) {
	boom := errors.New("deterministic failure")
	var calls atomic.Int32
	e := New(Options{
		Retries: 5,
		InjectFault: func(j Job) error {
			calls.Add(1)
			return boom
		},
	})
	rs, _ := e.Run(context.Background(), []Job{kernelJob(t, "gemm", flow.Directives{})})
	if !errors.Is(rs[0].Err, boom) {
		t.Fatalf("want injected error, got %v", rs[0].Err)
	}
	if rs[0].Attempts != 1 || calls.Load() != 1 {
		t.Errorf("deterministic failure retried: attempts=%d calls=%d", rs[0].Attempts, calls.Load())
	}
}

// TestTimeoutInterruptsAtPassBoundary is the never-terminating-pass
// regression: a pass that blocks forever must not wedge the worker — the
// job returns at its timeout — and once the pass is released, the
// abandoned flow goroutine observes the cancelled context at the next
// pass boundary and unwinds instead of running the rest of the pipeline.
func TestTimeoutInterruptsAtPassBoundary(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var passesAfter atomic.Int32
	e := New(Options{
		Timeout: 50 * time.Millisecond,
		FlowFaultHook: func(job Job, flowName, stage, pass string) {
			if stage == "llvm-opt" && pass == "constfold" {
				close(entered)
				<-release
			}
			if stage == "llvm-opt" && pass == "dce" {
				passesAfter.Add(1)
			}
		},
	})
	start := time.Now()
	rs, _ := e.RunBatch(context.Background(), []Job{kernelJob(t, "gemm", flow.Directives{})},
		BatchOptions{ContinueOnError: true, Timeout: 50 * time.Millisecond})
	elapsed := time.Since(start)

	select {
	case <-entered:
	default:
		t.Fatal("blocking pass never ran")
	}
	if rs[0].Err == nil || !errors.Is(rs[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error while the pass blocks, got %v", rs[0].Err)
	}
	if !resilience.Transient(rs[0].Err) {
		t.Errorf("timeout should classify transient: %v", rs[0].Err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("worker wedged behind the blocking pass (%s)", elapsed)
	}

	// Release the pass: the abandoned goroutine must stop at the next
	// boundary, so the downstream dce unit never executes.
	close(release)
	time.Sleep(100 * time.Millisecond)
	if n := passesAfter.Load(); n != 0 {
		t.Errorf("flow kept running past the cancelled boundary: %d downstream passes", n)
	}
}

// TestFallbackAndQuarantine: a deterministic direct-path crash degrades
// the job to the C++ baseline and leaves a reproducing bisection bundle
// in quarantine; unaffected jobs in the batch are untouched.
func TestFallbackAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{
		Fallback:   true,
		Quarantine: dir,
		FlowFaultHook: func(job Job, flowName, stage, pass string) {
			if job.Label == "gemm" && flowName == "adaptor" && pass == "adaptor" {
				panic("injected adaptor crash")
			}
		},
	})
	jobs := []Job{
		kernelJob(t, "gemm", flow.Directives{Pipeline: true, II: 1}),
		kernelJob(t, "atax", flow.Directives{Pipeline: true, II: 1}),
	}
	rs, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	g := rs[0]
	if g.Err != nil || !g.Degraded || g.Res == nil || g.Res.Flow != "cxx-fallback" {
		t.Fatalf("gemm should degrade to the C++ path: %+v", g)
	}
	if g.Failure == nil || g.Failure.Pass != "adaptor" || g.Failure.Kind != resilience.KindPanic {
		t.Errorf("direct-path failure not attached: %+v", g.Failure)
	}
	if g.BundlePath == "" {
		t.Fatal("no quarantine bundle written")
	}
	b, err := resilience.ReadBundle(g.BundlePath)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reproduced || b.Failure.Pass != "adaptor" || b.Failure.Stage != "adaptor" {
		t.Errorf("bundle did not pin the offending pass: %+v", b.Failure)
	}
	if b.InputMLIR == "" || !strings.Contains(b.InputMLIR, "gemm") {
		t.Error("bundle is not self-contained: missing input MLIR")
	}

	a := rs[1]
	if a.Err != nil || a.Degraded || a.BundlePath != "" {
		t.Errorf("unaffected job was touched: %+v", a)
	}

	st := e.Stats()
	if st.Degraded != 1 || st.Quarantined != 1 {
		t.Errorf("stats degraded=%d quarantined=%d, want 1/1", st.Degraded, st.Quarantined)
	}
}

// TestDegradedResultsAreNotCached: a degraded result must not be served
// from the cache once the direct path recovers.
func TestDegradedResultsAreNotCached(t *testing.T) {
	var arm atomic.Bool
	arm.Store(true)
	e := New(Options{
		Cache:    true,
		Fallback: true,
		FlowFaultHook: func(job Job, flowName, stage, pass string) {
			if arm.Load() && flowName == "adaptor" && pass == "adaptor" {
				panic("injected")
			}
		},
	})
	job := kernelJob(t, "gemm", flow.Directives{})
	rs, err := e.Run(context.Background(), []Job{job})
	if err != nil || !rs[0].Degraded {
		t.Fatalf("first run should degrade: %+v err=%v", rs[0], err)
	}
	arm.Store(false)
	rs, err = e.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].CacheHit || rs[0].Degraded {
		t.Fatalf("recovered direct path must re-execute, not serve the degraded result: %+v", rs[0])
	}
	// The clean result is cacheable.
	rs, _ = e.Run(context.Background(), []Job{job})
	if !rs[0].CacheHit {
		t.Error("clean result was not cached")
	}
}

// TestConcurrentStatsUnderDegradedAndRetriedJobs is the race-detector
// check for engine.Stats and flow.Phases.Merge: two batches mixing
// degraded and retried jobs run concurrently on one engine while a reader
// polls Stats() and OnResult journals from every worker.
func TestConcurrentStatsUnderDegradedAndRetriedJobs(t *testing.T) {
	var faults sync.Map // label -> remaining transient faults
	e := New(Options{
		Workers:         4,
		ContinueOnError: true,
		Retries:         2,
		RetryBackoff:    time.Microsecond,
		Seed:            7,
		Fallback:        true,
		InjectFault: func(j Job) error {
			if v, ok := faults.Load(j.Label); ok && v.(*atomic.Int32).Add(-1) >= 0 {
				return context.DeadlineExceeded
			}
			return nil
		},
		FlowFaultHook: func(job Job, flowName, stage, pass string) {
			if strings.HasSuffix(job.Label, "#1") && flowName == "adaptor" && pass == "adaptor" {
				panic("injected degrade")
			}
		},
	})
	mkJobs := func(tag string) []Job {
		var jobs []Job
		for i, name := range []string{"gemm", "atax", "jacobi2d"} {
			j := kernelJob(t, name, flow.Directives{Pipeline: true, II: 1})
			j.Label = name + tag + "#" + string(rune('0'+i))
			jobs = append(jobs, j)
		}
		n := new(atomic.Int32)
		n.Store(1)
		faults.Store(jobs[0].Label, n)
		return jobs
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = e.Stats().String()
			}
		}
	}()

	var journalMu sync.Mutex
	journal := map[string]bool{}
	var wg sync.WaitGroup
	for _, tag := range []string{"/a", "/b"} {
		wg.Add(1)
		go func(tag string) {
			defer wg.Done()
			rs, err := e.RunBatch(context.Background(), mkJobs(tag), BatchOptions{
				ContinueOnError: true,
				OnResult: func(i int, r JobResult) {
					journalMu.Lock()
					journal[r.Label] = r.Degraded
					journalMu.Unlock()
				},
			})
			if err != nil {
				t.Errorf("batch %s: %v", tag, err)
			}
			for _, r := range rs {
				if r.Err != nil {
					t.Errorf("batch %s job %s: %v", tag, r.Label, r.Err)
				}
			}
		}(tag)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	st := e.Stats()
	if st.Jobs != 6 || st.Errors != 0 {
		t.Errorf("jobs=%d errors=%d, want 6/0", st.Jobs, st.Errors)
	}
	if st.Retries != 2 {
		t.Errorf("retries=%d, want 2 (one transient fault per batch)", st.Retries)
	}
	if st.Degraded != 2 {
		t.Errorf("degraded=%d, want 2 (one #1 job per batch)", st.Degraded)
	}
	if len(journal) != 6 {
		t.Errorf("OnResult journaled %d entries, want 6", len(journal))
	}
}

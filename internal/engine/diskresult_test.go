package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/castore"
	"repro/internal/flow"
)

// openResultStore opens a castore in a fresh temp dir for one test.
func openResultStore(t *testing.T, dir string) *castore.Store {
	t.Helper()
	s, err := castore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestResultStoreServesAcrossEngines proves the persistence contract: an
// engine writes results to the shared store, and a second engine — fresh
// process state, cold in-memory cache — serves the same jobs as DiskHits
// with byte-identical reports and zero flow executions.
func TestResultStoreServesAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	jobs := testBatch(t)

	first, err := New(Options{Workers: 4, ResultStore: openResultStore(t, dir)}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range first {
		if r.DiskHit || r.CacheHit {
			t.Errorf("%s: unexpected hit on cold store", r.Label)
		}
	}

	e2 := New(Options{Workers: 4, ResultStore: openResultStore(t, dir)})
	second, err := e2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range second {
		if !r.DiskHit {
			t.Errorf("%s: expected disk hit from shared store", r.Label)
		}
		if r.CacheHit || r.Remote {
			t.Errorf("%s: at-most-one-source violated: %+v", r.Label, r)
		}
	}
	if digest(first) != digest(second) {
		t.Errorf("disk-served results diverge:\n%s\nvs\n%s", digest(first), digest(second))
	}
	st := e2.Stats()
	if st.DiskHits != int64(len(jobs)) {
		t.Errorf("DiskHits = %d, want %d", st.DiskHits, len(jobs))
	}
	if st.CPU != 0 {
		t.Errorf("disk hits must not count as executed CPU time: %v", st.CPU)
	}
}

// TestResultStoreFeedsMemCache: with both layers on, a disk hit populates
// the in-memory cache so the next lookup never touches the disk.
func TestResultStoreFeedsMemCache(t *testing.T) {
	dir := t.TempDir()
	job := kernelJob(t, "gemm", flow.Directives{Pipeline: true, II: 1})
	if _, err := New(Options{ResultStore: openResultStore(t, dir)}).
		Run(context.Background(), []Job{job}); err != nil {
		t.Fatal(err)
	}

	e := New(Options{Cache: true, ResultStore: openResultStore(t, dir)})
	rs, err := e.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].DiskHit {
		t.Fatalf("first lookup should be a disk hit: %+v", rs[0])
	}
	rs, err = e.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].CacheHit || rs[0].DiskHit {
		t.Fatalf("second lookup should come from the in-memory cache: %+v", rs[0])
	}
	st := e.Stats()
	if st.DiskHits != 1 || st.CacheHits != 1 {
		t.Fatalf("stats: disk=%d mem=%d, want 1 each", st.DiskHits, st.CacheHits)
	}
}

// TestResultStoreCorruptionNeverServed: records that are valid JSON but
// fail the digest, or digest-valid but schema-foreign, are quarantined and
// counted — the job re-executes and the store heals with a fresh record.
func TestResultStoreCorruptionNeverServed(t *testing.T) {
	dir := t.TempDir()
	job := kernelJob(t, "atax", flow.Directives{})
	clean, err := New(Options{ResultStore: openResultStore(t, dir)}).
		Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	key := Key(job)

	// Overwrite the record with a digest-valid envelope whose payload is
	// not a storedResult — the schema-foreign case castore cannot catch.
	foreign := []byte(`{"species":"capacitor"}`)
	path := filepath.Join(dir, key[:2], key+".json")
	env := fmt.Sprintf(`{"sum":%q,"payload":%s}`, castore.SumBytes(foreign), foreign)
	if err := os.WriteFile(path, []byte(env), 0o644); err != nil {
		t.Fatal(err)
	}

	e := New(Options{ResultStore: openResultStore(t, dir)})
	rs, err := e.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].DiskHit {
		t.Fatalf("corrupt record served as a disk hit")
	}
	if rs[0].Err != nil {
		t.Fatalf("job should have re-executed cleanly: %v", rs[0].Err)
	}
	if digest(rs) != digest(clean) {
		t.Errorf("re-executed result diverges from original:\n%s\nvs\n%s", digest(rs), digest(clean))
	}
	if st := e.Stats(); st.StoreCorrupt != 1 {
		t.Errorf("StoreCorrupt = %d, want 1", st.StoreCorrupt)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Errorf("corrupt record not moved aside: %v", err)
	}

	// The re-execution wrote a fresh record; a new engine disk-hits it.
	rs, err = New(Options{ResultStore: openResultStore(t, dir)}).
		Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].DiskHit {
		t.Errorf("store did not heal after quarantine: %+v", rs[0])
	}
}

// TestResultStorePutErrorCounted: a store that cannot persist degrades
// durability, never the batch — the job succeeds and StoreErrors counts.
func TestResultStorePutErrorCounted(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	store := openResultStore(t, dir)
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })

	e := New(Options{ResultStore: store})
	rs, err := e.Run(context.Background(), []Job{kernelJob(t, "gemm", flow.Directives{})})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil {
		t.Fatalf("unpersistable batch must still succeed: %v", rs[0].Err)
	}
	if st := e.Stats(); st.StoreErrors == 0 {
		t.Errorf("StoreErrors = 0, want nonzero after read-only dir")
	}
}

// TestRemoteHookHitAndFallback drives the remote layer with a fake
// daemon: a Spec-carrying job is served remotely when the hook accepts,
// falls back to embedded execution when it declines, and a Spec-less job
// never consults the hook at all.
func TestRemoteHookHitAndFallback(t *testing.T) {
	local := kernelJob(t, "gemm", flow.Directives{})
	localRes, err := New(Options{}).Run(context.Background(), []Job{local})
	if err != nil {
		t.Fatal(err)
	}

	remote := kernelJob(t, "gemm", flow.Directives{})
	remote.Spec = &RemoteSpec{Kernel: "gemm", Size: "MINI"}
	noSpec := kernelJob(t, "atax", flow.Directives{})

	var calls int
	serve := true
	e := New(Options{Remote: func(j Job) (JobResult, bool) {
		calls++
		if j.Spec == nil {
			t.Errorf("remote hook consulted for spec-less job %q", j.Label)
		}
		if !serve {
			return JobResult{}, false
		}
		r := localRes[0]
		r.Attempts = 0
		return r, true
	}})

	rs, err := e.Run(context.Background(), []Job{remote, noSpec})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Remote || rs[0].CacheHit || rs[0].DiskHit {
		t.Fatalf("spec job should be remote-served: %+v", rs[0])
	}
	if rs[0].Label != remote.Label || rs[0].Res.Report.LatencyCycles != localRes[0].Res.Report.LatencyCycles {
		t.Fatalf("remote result not used verbatim")
	}
	if rs[1].Remote {
		t.Fatalf("spec-less job must run locally")
	}
	if calls != 1 {
		t.Fatalf("remote hook calls = %d, want 1", calls)
	}

	// Unreachable server: ok=false falls back to embedded execution.
	serve = false
	rs, err = e.Run(context.Background(), []Job{remote})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Remote || rs[0].Err != nil || rs[0].Res == nil {
		t.Fatalf("fallback to embedded execution failed: %+v", rs[0])
	}
	if digest(rs) != digest(localRes) {
		t.Errorf("fallback result diverges from local:\n%s\nvs\n%s", digest(rs), digest(localRes))
	}
	if st := e.Stats(); st.RemoteHits != 1 {
		t.Errorf("RemoteHits = %d, want 1", st.RemoteHits)
	}
}

// TestRemoteErrorIsVerbatim: a server-side evaluation failure is the
// job's genuine outcome — the engine must not retry it locally.
func TestRemoteErrorIsVerbatim(t *testing.T) {
	job := kernelJob(t, "gemm", flow.Directives{})
	job.Spec = &RemoteSpec{Kernel: "gemm", Size: "MINI"}
	remoteErr := errors.New("server: directive rejected")
	e := New(Options{Remote: func(Job) (JobResult, bool) {
		return JobResult{Err: remoteErr}, true
	}})
	rs, err := e.Run(context.Background(), []Job{job})
	if err == nil || !errors.Is(err, remoteErr) {
		t.Fatalf("batch error = %v, want the remote error", err)
	}
	if !rs[0].Remote || !errors.Is(rs[0].Err, remoteErr) {
		t.Fatalf("remote error not verbatim: %+v", rs[0])
	}
}

// TestDegradedNeverPersisted: a fallback (degraded) result must not land
// in the persistent store, or it would mask the direct path recovering.
func TestDegradedNeverPersisted(t *testing.T) {
	dir := t.TempDir()
	job := kernelJob(t, "gemm", flow.Directives{})
	boom := errors.New("injected direct-path failure")
	fail := true
	e := New(Options{
		ResultStore: openResultStore(t, dir),
		Fallback:    true,
		InjectFault: func(Job) error {
			if fail {
				return boom
			}
			return nil
		},
	})
	// InjectFault fires before the flow runs, so Fallback cannot rescue it:
	// the job errors, and nothing must persist.
	rs, err := e.Run(context.Background(), []Job{job})
	if err == nil {
		t.Fatal("expected injected failure")
	}
	if rs[0].DiskHit {
		t.Fatal("failed job reported as disk hit")
	}
	store := openResultStore(t, dir)
	if n := store.Len(); n != 0 {
		t.Fatalf("failed result persisted: store has %d records", n)
	}

	// After recovery the clean result persists normally.
	fail = false
	if _, err := e.Run(context.Background(), []Job{job}); err != nil {
		t.Fatal(err)
	}
	if n := store.Len(); n != 1 {
		t.Fatalf("clean result not persisted: store has %d records", n)
	}
}

package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

// kernelJob builds one adaptor-flow job for a polybench kernel at MINI.
func kernelJob(t testing.TB, name string, d flow.Directives) Job {
	t.Helper()
	k := polybench.Get(name)
	if k == nil {
		t.Fatalf("unknown kernel %q", name)
	}
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Label:      name,
		Kind:       KindAdaptor,
		Build:      func() *mlir.Module { return k.Build(s) },
		Top:        k.Name,
		Directives: d,
		Target:     hls.DefaultTarget(),
		CacheScope: "MINI",
	}
}

// testBatch is a mixed batch over several kernels and directive sets.
func testBatch(t testing.TB) []Job {
	var jobs []Job
	for _, name := range []string{"gemm", "jacobi2d", "conv2d", "atax"} {
		jobs = append(jobs,
			kernelJob(t, name, flow.Directives{}),
			kernelJob(t, name, flow.Directives{Pipeline: true, II: 1}))
	}
	for i := range jobs {
		jobs[i].Label = fmt.Sprintf("%s#%d", jobs[i].Label, i)
	}
	return jobs
}

// digest summarizes the deterministic parts of a result slice.
func digest(rs []JobResult) string {
	var sb strings.Builder
	for _, r := range rs {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%s err=%v\n", r.Label, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%s lat=%d lut=%d dsp=%d\n",
			r.Label, r.Res.Report.LatencyCycles, r.Res.Report.LUT, r.Res.Report.DSP)
	}
	return sb.String()
}

func TestParallelMatchesSerial(t *testing.T) {
	jobs := testBatch(t)
	serial, err := New(Options{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		par, err := New(Options{Workers: w}).Run(context.Background(), jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if digest(par) != digest(serial) {
			t.Errorf("workers=%d: results diverge from serial\nserial:\n%s\nparallel:\n%s",
				w, digest(serial), digest(par))
		}
	}
}

func TestResultOrderMatchesJobOrder(t *testing.T) {
	jobs := testBatch(t)
	rs, err := New(Options{Workers: 4}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(jobs) {
		t.Fatalf("want %d results, got %d", len(jobs), len(rs))
	}
	for i := range rs {
		if rs[i].Label != jobs[i].Label {
			t.Errorf("result %d: want label %q, got %q", i, jobs[i].Label, rs[i].Label)
		}
	}
}

func TestCacheHitsAreIdentical(t *testing.T) {
	jobs := testBatch(t)
	e := New(Options{Workers: 4, Cache: true})
	first, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range first {
		if r.CacheHit {
			t.Errorf("%s: unexpected hit on cold cache", r.Label)
		}
	}
	second, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range second {
		if !r.CacheHit {
			t.Errorf("%s: expected warm-cache hit", r.Label)
		}
	}
	if digest(first) != digest(second) {
		t.Errorf("cached results diverge:\n%s\nvs\n%s", digest(first), digest(second))
	}
	st := e.Stats()
	if st.CacheHits != int64(len(jobs)) || st.CacheMisses != int64(len(jobs)) {
		t.Errorf("stats: hits=%d misses=%d, want %d each", st.CacheHits, st.CacheMisses, len(jobs))
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate())
	}
	if len(st.Phases) == 0 || st.CPU <= 0 {
		t.Errorf("stats should aggregate phase timings: %+v", st)
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	base := kernelJob(t, "gemm", flow.Directives{})
	same := base
	// II is meaningless without Pipeline; Unroll <= 1 is off.
	same.Directives = flow.Directives{II: 7, Unroll: 1}
	if Key(base) != Key(same) {
		t.Error("canonically-equal directives should share a key")
	}
	piped := base
	piped.Directives = flow.Directives{Pipeline: true}
	pipedII1 := base
	pipedII1.Directives = flow.Directives{Pipeline: true, II: 1}
	if Key(piped) != Key(pipedII1) {
		t.Error("Pipeline with II<=0 should canonicalize to II=1")
	}
	if Key(base) == Key(piped) {
		t.Error("pipelining must change the key")
	}
	otherKind := base
	otherKind.Kind = KindCxx
	if Key(base) == Key(otherKind) {
		t.Error("flow kind must change the key")
	}
	otherScope := base
	otherScope.CacheScope = "SMALL"
	if Key(base) == Key(otherScope) {
		t.Error("cache scope must change the key")
	}
	otherTgt := base
	otherTgt.Target.ClockNs = 5
	if Key(base) == Key(otherTgt) {
		t.Error("target clock must change the key")
	}
	relabeled := base
	relabeled.Label = "something-else"
	if Key(base) != Key(relabeled) {
		t.Error("labels must not participate in the key")
	}
}

func TestFreshModuleContractEnforced(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	stale := k.Build(s)
	job := kernelJob(t, "gemm", flow.Directives{})
	job.Build = func() *mlir.Module { return stale }
	rs, err := New(Options{Workers: 2, ContinueOnError: true}).Run(
		context.Background(), []Job{job, job})
	if err != nil {
		t.Fatal(err)
	}
	var dup int
	for _, r := range rs {
		if r.Err != nil && strings.Contains(r.Err.Error(), "fresh module") {
			dup++
		}
	}
	if dup == 0 {
		t.Error("reusing one module across jobs should be rejected")
	}
}

func TestFailFastReturnsLowestIndexedError(t *testing.T) {
	jobs := testBatch(t)
	bad := jobs[3]
	bad.Kind = Kind("bogus")
	bad.Label = "bad"
	jobs[3] = bad
	rs, err := New(Options{Workers: 4}).Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("want batch error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("batch error should name the first failing job: %v", err)
	}
	// Jobs before the failure always carry genuine results.
	for i := 0; i < 3; i++ {
		if rs[i].Err != nil {
			t.Errorf("job %d before the failure should have succeeded: %v", i, rs[i].Err)
		}
	}
}

func TestContinueOnErrorKeepsGoing(t *testing.T) {
	jobs := testBatch(t)
	bad := jobs[0]
	bad.Kind = Kind("bogus")
	bad.Label = "bad"
	jobs[0] = bad
	rs, err := New(Options{Workers: 4, ContinueOnError: true}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("continue-on-error batches should not fail: %v", err)
	}
	if rs[0].Err == nil {
		t.Error("bad job should record its error")
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Err != nil {
			t.Errorf("%s: should have run despite earlier failure: %v", rs[i].Label, rs[i].Err)
		}
	}
}

func TestPerJobTimeout(t *testing.T) {
	job := kernelJob(t, "gemm", flow.Directives{})
	rs, err := New(Options{ContinueOnError: true}).RunBatch(context.Background(),
		[]Job{job}, BatchOptions{ContinueOnError: true, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err == nil || !strings.Contains(rs[0].Err.Error(), "timeout") {
		t.Errorf("want timeout error, got %v", rs[0].Err)
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(Options{}).Run(ctx, testBatch(t))
	if err != context.Canceled {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestRawKind(t *testing.T) {
	job := kernelJob(t, "gemm", flow.Directives{})
	job.Kind = KindRaw
	rs, err := New(Options{}).Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs[0].Violations) == 0 {
		t.Error("raw flow should report gate violations")
	}
	if rs[0].LLVM == nil {
		t.Error("raw flow should return the translated module")
	}
}

// Package engine is the parallel flow-evaluation engine behind the
// design-space explorer and the experiments package: a bounded worker pool
// that fans AdaptorFlow/CxxFlow/RawFlow jobs across goroutines with
// deterministic result ordering, configurable first-error cancellation, and
// an optional content-addressed result cache keyed by the job's semantic
// identity (top function, directives, target, flow kind, caller scope).
//
// Concurrency contract: flows mutate their input module, so Job.Build MUST
// return a fresh *mlir.Module on every call. The engine enforces this at
// the API boundary by rejecting a module pointer it has already seen in
// the same batch.
//
// Determinism contract: results are returned in job order regardless of
// completion order, and under fail-fast cancellation the reported error is
// the lowest-indexed genuine failure — exactly the error a serial loop
// over the same jobs would have returned. Concurrency is an implementation
// detail; callers diffing engine output against a serial run must see
// byte-identical tables.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/castore"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/incr"
	"repro/internal/llvm"
	"repro/internal/mlir"
	"repro/internal/resilience"
)

// Kind selects which flow a job runs.
type Kind string

const (
	KindAdaptor Kind = "adaptor" // flow.AdaptorFlow
	KindCxx     Kind = "cxx"     // flow.CxxFlow
	KindRaw     Kind = "raw"     // flow.RawFlow (gate-violation check)
)

// Job describes one flow evaluation.
type Job struct {
	// Label identifies the job in results and error messages.
	Label string
	Kind  Kind
	// Build must return a fresh module on every call: flows mutate their
	// input in place. The engine rejects a pointer it has seen before in
	// the same batch.
	Build func() *mlir.Module
	// Top is the top-function name handed to the flow.
	Top        string
	Directives flow.Directives
	Target     hls.Target
	// CacheScope distinguishes jobs whose identity is not fully captured
	// by (Kind, Top, Directives, Target) — e.g. a problem-size preset or
	// a content hash of hand-written MLIR input. Jobs with equal cache
	// keys are assumed to produce equal results.
	CacheScope string
	// VerifySemantics runs this job under the differential oracle: the IR
	// is re-executed after every pipeline unit and compared against the
	// pristine input's reference run, so a pass that silently changes
	// results fails as KindMiscompile at the unit that broke it. It
	// participates in the cache key — a verified result and an unverified
	// one are distinct artifacts.
	VerifySemantics bool
	// Spec, when non-nil, serializably identifies the module Build
	// constructs, making the job shippable to a compile-service daemon
	// through Options.Remote. It never participates in the cache key —
	// (Kind, Top, CacheScope, Directives, Target) already are the
	// identity; Spec is transport, not semantics.
	Spec *RemoteSpec
}

// RemoteSpec is the wire-format identity of a job's input module: either
// a registered polybench kernel at a size preset, or raw MLIR text. A
// thin client sends it with the job's directives and target so the server
// can rebuild the same module; jobs without a spec always run locally.
type RemoteSpec struct {
	Kernel string `json:"kernel,omitempty"`
	Size   string `json:"size,omitempty"`
	MLIR   string `json:"mlir,omitempty"`
}

// JobResult is one job's outcome, at the job's index in the input slice.
type JobResult struct {
	Label string
	Kind  Kind
	// Res holds the flow result for adaptor/cxx jobs (nil on error). A
	// cached Res is shared between hits and must be treated as read-only.
	Res *flow.Result
	// Violations and LLVM hold the raw-flow outcome for KindRaw jobs.
	Violations []hls.Violation
	LLVM       *llvm.Module
	Err        error
	// CacheHit reports whether the result was served from the in-memory
	// cache; DiskHit, from the persistent result store; Remote, from a
	// compile-service daemon via Options.Remote. At most one is set.
	CacheHit bool
	DiskHit  bool
	Remote   bool
	// Elapsed is this job's wall time (near zero for cache hits).
	Elapsed time.Duration
	// Degraded marks a result the C++ fallback path produced after the
	// direct-IR flow failed; Failure carries the direct-path failure (also
	// set, without Degraded, when a job failed with a typed failure).
	Degraded bool
	Failure  *resilience.PassFailure
	// Attempts counts executions including retries (1 = first try worked;
	// 0 for cache hits and never-dispatched jobs).
	Attempts int
	// BundlePath is the quarantine repro bundle written for this job's
	// direct-path failure (Options.Quarantine).
	BundlePath string
}

// Options configures an Engine.
type Options struct {
	// Workers bounds the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cache enables the content-addressed result cache.
	Cache bool
	// ContinueOnError is the default batch policy: record per-job errors
	// and keep going instead of cancelling the batch on first failure.
	ContinueOnError bool
	// Timeout is the default per-job wall-time limit (0 = none).
	Timeout time.Duration

	// Retries is the number of re-executions granted to a job whose
	// failure is transient (timeout, cancellation, or an injected fault
	// wrapping one); deterministic failures (panics, verify violations,
	// ordinary errors) never retry.
	Retries int
	// RetryBackoff is the base delay before the first retry, doubling per
	// attempt with seeded jitter (0 = resilience.DefaultBase).
	RetryBackoff time.Duration
	// Seed makes the retry jitter (and anything else randomized in the
	// engine) reproducible across runs.
	Seed int64
	// InjectFault, when non-nil, is consulted at the start of every
	// execution attempt; a non-nil error becomes that attempt's outcome
	// without running the flow. Tests drive every recovery path through
	// it deterministically.
	InjectFault func(Job) error
	// Fallback degrades failed adaptor jobs to the C++ baseline flow:
	// instead of a job error, the result carries the C++ report tagged
	// Degraded with the direct-path failure attached.
	Fallback bool
	// Quarantine, when non-empty, is the directory where every direct-path
	// failure is bisected (pipeline replayed with verify-each and per-pass
	// snapshots) and written as a self-contained repro bundle that
	// `hls-adaptor -replay` re-executes.
	Quarantine string
	// Incremental threads the per-unit memo store (internal/incr) through
	// every job: repeated design points replay their unchanged pipeline
	// prefix from stored unit snapshots instead of recompiling, and a
	// directive edit re-runs only from the first affected unit. Unlike
	// the whole-flow Cache, the incremental store persists across engines
	// (and, with a DiskStore, across processes) and accelerates *changed*
	// points, not just repeated ones. The per-job identity seed derives
	// from Top and CacheScope — the same input-identity contract the
	// whole-flow cache rests on, so callers whose modules are not fully
	// determined by (Top, CacheScope) must disambiguate via CacheScope.
	Incremental bool
	// IncrStore is the record store used under Incremental; nil uses the
	// process-wide incr.Default. Point it at an incr.DiskStore for
	// cross-process warm starts.
	IncrStore incr.Store

	// ResultStore, when non-nil, is the persistent whole-flow result
	// layer: successful, non-degraded adaptor/cxx results are written to
	// the digest-verified on-disk store under their engine.Key and served
	// back — across engines, processes, and restarts — before any flow
	// executes. Multiple daemons and CLIs may share one directory; a
	// corrupt record is quarantined and counted, never returned. Raw-flow
	// jobs never persist.
	ResultStore *castore.Store
	// Remote, when non-nil, is consulted for jobs carrying a Spec after
	// the in-memory cache and the persistent store both miss: the thin-
	// client path that ships a job to a compile-service daemon. Returning
	// ok=false — the server is unreachable or shedding load — falls back
	// to embedded execution; ok=true uses the returned result verbatim
	// (including a server-side evaluation error, which is the job's
	// genuine outcome and must not be retried locally).
	Remote func(Job) (JobResult, bool)

	// Flow is the base flow options applied to every job (VerifyEach,
	// FaultHook for pass-level fault injection). The engine overrides
	// Ctx/Isolate/Fallback per job.
	Flow flow.Options
	// FlowFaultHook, when non-nil, replaces Flow.FaultHook with a
	// job-aware hook, so tests can target one kernel's run of one pass.
	FlowFaultHook func(job Job, flowName, stage, pass string)
	// MiscompileHook, when non-nil, is consulted per job; a non-empty
	// "stage/pass" return arms a deterministic IR corruption inside that
	// unit and forces the semantic oracle on for the job, so CI chaos
	// suites can prove a miscompile in any single job is detected,
	// localized, and quarantined without poisoning the batch.
	MiscompileHook func(Job) string
}

// BatchOptions overrides the engine's default policy for one Run call.
type BatchOptions struct {
	ContinueOnError bool
	Timeout         time.Duration
	// OnResult, when non-nil, is called by the executing worker the moment
	// job i completes (cache hits included, never-dispatched jobs
	// excluded). Callers use it for write-ahead journaling; it runs
	// concurrently across workers and must be safe for parallel calls.
	OnResult func(i int, r JobResult)
}

// Stats aggregates engine activity across all Run calls.
type Stats struct {
	Jobs        int64
	Errors      int64
	CacheHits   int64
	CacheMisses int64
	// Retries counts re-executions granted for transient failures.
	Retries int64
	// Degraded counts jobs the C++ fallback path completed after a
	// direct-IR failure.
	Degraded int64
	// Quarantined counts repro bundles written.
	Quarantined int64
	// Miscompiles counts jobs whose failure the semantic oracle typed
	// KindMiscompile — passes that changed results, not passes that crashed.
	Miscompiles int64
	// UnitHits and UnitMisses aggregate pipeline units replayed from the
	// incremental store vs executed live across all executed jobs;
	// FullReplays counts jobs whose every unit replayed (zero misses).
	UnitHits, UnitMisses, FullReplays int64
	// DiskHits counts jobs served from the persistent result store, and
	// RemoteHits jobs evaluated by a compile-service daemon — neither ran
	// a flow in this process.
	DiskHits, RemoteHits int64
	// StoreErrors sums put/get I/O failures across the persistent result
	// and incremental stores (a full or read-only disk made visible);
	// StoreCorrupt counts records that failed digest or schema
	// verification and were quarantined.
	StoreErrors, StoreCorrupt int64
	// CPU is the summed wall time of executed (non-cached) jobs; with
	// Wall from the caller's clock it shows the parallel speedup.
	CPU time.Duration
	// Phases merges per-phase timings across all executed jobs.
	Phases flow.Phases
}

// HitRate returns the cache hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// UnitHitRate returns the incremental unit replay fraction in [0, 1].
func (s Stats) UnitHitRate() float64 {
	total := s.UnitHits + s.UnitMisses
	if total == 0 {
		return 0
	}
	return float64(s.UnitHits) / float64(total)
}

// String renders the stats as a short summary block.
func (s Stats) String() string {
	out := fmt.Sprintf("jobs=%d errors=%d cache hits=%d misses=%d (rate %.0f%%) cpu=%s\n",
		s.Jobs, s.Errors, s.CacheHits, s.CacheMisses, 100*s.HitRate(), s.CPU.Round(time.Microsecond))
	if s.Retries > 0 || s.Degraded > 0 || s.Quarantined > 0 || s.Miscompiles > 0 {
		out += fmt.Sprintf("retries=%d degraded=%d quarantined=%d miscompiles=%d\n",
			s.Retries, s.Degraded, s.Quarantined, s.Miscompiles)
	}
	if s.UnitHits > 0 || s.UnitMisses > 0 {
		out += fmt.Sprintf("incr unit hits=%d misses=%d (rate %.0f%%) full replays=%d\n",
			s.UnitHits, s.UnitMisses, 100*s.UnitHitRate(), s.FullReplays)
	}
	if s.DiskHits > 0 || s.RemoteHits > 0 || s.StoreErrors > 0 || s.StoreCorrupt > 0 {
		out += fmt.Sprintf("store disk hits=%d remote hits=%d errors=%d corrupt=%d\n",
			s.DiskHits, s.RemoteHits, s.StoreErrors, s.StoreCorrupt)
	}
	if len(s.Phases) > 0 {
		out += s.Phases.String()
	}
	return out
}

// Engine is a reusable evaluator; its cache and stats persist across Run
// calls, so batches issued through one engine share results.
type Engine struct {
	opts    Options
	cache   *cache
	backoff *resilience.Backoff

	mu    sync.Mutex
	stats Stats
}

// New builds an engine. The zero Options value gives a GOMAXPROCS-wide
// pool with no cache, no timeout, no retries, and fail-fast cancellation.
func New(opts Options) *Engine {
	e := &Engine{
		opts:    opts,
		backoff: &resilience.Backoff{Base: opts.RetryBackoff, Seed: opts.Seed},
	}
	if opts.Cache {
		e.cache = newCache()
	}
	return e
}

// Workers returns the effective pool size.
func (e *Engine) Workers() int {
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns a snapshot of the engine's counters, folding in the
// health counters of whatever persistent stores the engine drives so a
// failing disk or a corruption storm shows up where operators look.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	s.Phases = s.Phases.Clone()
	e.mu.Unlock()
	var c castore.Counters
	if e.opts.ResultStore != nil {
		c = c.Add(e.opts.ResultStore.Counters())
	}
	if cs, ok := e.opts.IncrStore.(counterSource); ok {
		c = c.Add(cs.Counters())
	}
	s.StoreErrors = c.PutErrors + c.GetErrors
	s.StoreCorrupt = c.Corrupt
	return s
}

// Run evaluates the batch under the engine's default policy.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	return e.RunBatch(ctx, jobs, BatchOptions{
		ContinueOnError: e.opts.ContinueOnError,
		Timeout:         e.opts.Timeout,
	})
}

// RunBatch evaluates every job on the worker pool and returns results in
// job order. With ContinueOnError false, the first failure (by job index)
// cancels jobs that have not started and is returned as the batch error;
// with it true, the error is nil and callers inspect per-job Err fields.
// An externally cancelled ctx is returned as the batch error either way.
func (e *Engine) RunBatch(ctx context.Context, jobs []Job, opts BatchOptions) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// seen enforces the fresh-module contract for this batch.
	var seenMu sync.Mutex
	seen := make(map[*mlir.Module]string)

	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.Workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				results[i] = e.runOne(jobs[i], opts.Timeout, seen, &seenMu)
				if opts.OnResult != nil {
					opts.OnResult(i, results[i])
				}
				if results[i].Err != nil && !opts.ContinueOnError {
					cancel()
				}
			}
		}()
	}
	// Cancellation gates the feeder, never a worker: every job handed out
	// runs to completion, and jobs are handed out in index order. So when
	// job f is the first failure, every job with index < f was dispatched
	// before f and records its genuine outcome — which makes the "first
	// error" scan below return exactly what a serial loop would have.
	sent := len(jobs)
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			sent = i
		}
		if sent != len(jobs) {
			break
		}
	}
	close(feed)
	wg.Wait()
	for i := sent; i < len(jobs); i++ {
		results[i] = JobResult{Label: jobs[i].Label, Kind: jobs[i].Kind, Err: context.Canceled}
	}

	e.mu.Lock()
	for i := range results {
		e.stats.Jobs++
		if results[i].Err != nil {
			e.stats.Errors++
		}
		switch {
		case results[i].CacheHit:
			e.stats.CacheHits++
		case results[i].DiskHit:
			e.stats.DiskHits++
		case results[i].Remote:
			e.stats.RemoteHits++
		case results[i].Err == nil && (e.cache != nil || e.opts.ResultStore != nil):
			e.stats.CacheMisses++
		}
		if !results[i].CacheHit && !results[i].DiskHit && !results[i].Remote && results[i].Err == nil {
			e.stats.CPU += results[i].Elapsed
			if r := results[i].Res; r != nil {
				e.stats.Phases = e.stats.Phases.Merge(r.Phases)
				e.stats.UnitHits += int64(r.UnitHits)
				e.stats.UnitMisses += int64(r.UnitMisses)
				if r.UnitHits > 0 && r.UnitMisses == 0 {
					e.stats.FullReplays++
				}
			}
		}
		if results[i].Attempts > 1 {
			e.stats.Retries += int64(results[i].Attempts - 1)
		}
		if results[i].Degraded {
			e.stats.Degraded++
		}
		if results[i].BundlePath != "" {
			e.stats.Quarantined++
		}
		if f := results[i].Failure; f != nil && f.Kind == resilience.KindMiscompile {
			e.stats.Miscompiles++
		}
	}
	e.mu.Unlock()

	if err := parent.Err(); err != nil {
		return results, err
	}
	if !opts.ContinueOnError {
		for i := range results {
			if err := results[i].Err; err != nil && err != context.Canceled {
				return results, fmt.Errorf("%s: %w", results[i].Label, err)
			}
		}
	}
	return results, nil
}

// runOne serves a single job through the lookup chain — in-memory cache,
// persistent result store, remote daemon, local execution — and feeds
// each layer's result back into the layers above it. Degraded results are
// never cached or persisted: the fallback report is a stand-in for a
// failed run, and storing it would mask the direct path recovering on a
// later batch.
func (e *Engine) runOne(job Job, timeout time.Duration, seen map[*mlir.Module]string, seenMu *sync.Mutex) JobResult {
	useStore := e.opts.ResultStore != nil && job.Kind != KindRaw
	var key string
	if e.cache != nil || useStore {
		key = Key(job)
	}
	if e.cache != nil {
		if hit, ok := e.cache.get(key); ok {
			r := hit
			r.Label = job.Label
			r.CacheHit = true
			r.DiskHit = false
			r.Remote = false
			r.Elapsed = 0
			r.Attempts = 0
			return r
		}
	}
	if useStore {
		if r, ok := e.loadStored(key, job); ok {
			if e.cache != nil {
				e.cache.put(key, r)
			}
			return r
		}
	}
	if e.opts.Remote != nil && job.Spec != nil && job.Kind != KindRaw {
		if r, ok := e.opts.Remote(job); ok {
			r.Label = job.Label
			r.Kind = job.Kind
			r.Remote = true
			r.CacheHit = false
			r.DiskHit = false
			if e.cache != nil && r.Err == nil && !r.Degraded {
				e.cache.put(key, r)
			}
			return r
		}
	}
	res := e.execute(job, timeout, seen, seenMu)
	if res.Err == nil && !res.Degraded {
		if e.cache != nil {
			e.cache.put(key, res)
		}
		if useStore && storable(job, res) {
			e.saveStored(key, res)
		}
	}
	return res
}

// execute runs a job's attempt loop: transient failures (timeouts,
// cancellations) are retried up to Options.Retries with seeded jittered
// backoff; deterministic failures (panics, verify violations, plain
// errors) fail immediately — re-running identical input through
// deterministic code cannot help. After the final attempt, a surviving
// direct-path failure is bisected into a quarantine repro bundle when
// Options.Quarantine is set.
func (e *Engine) execute(job Job, timeout time.Duration, seen map[*mlir.Module]string, seenMu *sync.Mutex) JobResult {
	var res JobResult
	for attempt := 1; ; attempt++ {
		res = e.attempt(job, timeout, seen, seenMu)
		res.Attempts = attempt
		if res.Err == nil || attempt > e.opts.Retries || !resilience.Transient(res.Err) {
			break
		}
		time.Sleep(e.backoff.Delay(attempt))
	}
	e.quarantine(job, &res)
	return res
}

// quarantine bisects a deterministic direct-path failure — a failed job,
// or a degraded one whose failure rode along — and writes the repro
// bundle, recording its path on the result.
func (e *Engine) quarantine(job Job, res *JobResult) {
	if e.opts.Quarantine == "" {
		return
	}
	var cause error
	switch {
	case res.Err != nil && !resilience.Transient(res.Err):
		cause = res.Err
	case res.Degraded && res.Failure != nil:
		cause = res.Failure
	default:
		return
	}
	bundle := flow.Bisect(job.Build, string(job.Kind), job.Label, job.Top,
		job.Directives, job.Target, e.flowOptions(job), cause)
	bundle.Scope = job.CacheScope
	if path, err := resilience.WriteBundle(e.opts.Quarantine, bundle); err == nil {
		res.BundlePath = path
	}
}

// attempt runs one bounded execution of the flow. The per-attempt context
// derives from context.Background(), not the batch context: the batch
// context gates the feeder (determinism contract), while this one exists
// to reclaim the job's goroutine — on timeout the flow observes
// cancellation at its next pass boundary and unwinds instead of leaking.
func (e *Engine) attempt(job Job, timeout time.Duration, seen map[*mlir.Module]string, seenMu *sync.Mutex) JobResult {
	if e.opts.InjectFault != nil {
		if err := e.opts.InjectFault(job); err != nil {
			return JobResult{Label: job.Label, Kind: job.Kind, Err: err}
		}
	}
	if timeout <= 0 {
		return e.runFlow(context.Background(), job, seen, seenMu)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	done := make(chan JobResult, 1)
	go func() { done <- e.runFlow(ctx, job, seen, seenMu) }()
	select {
	case r := <-done:
		return r
	case <-ctx.Done():
		// The worker moves on; the flow goroutine sees the cancelled
		// context at its next pass boundary and returns. Its result is
		// discarded.
		return JobResult{Label: job.Label, Kind: job.Kind, Elapsed: timeout,
			Err: fmt.Errorf("job %q exceeded timeout %s: %w", job.Label, timeout, context.DeadlineExceeded)}
	}
}

// flowOptions assembles the per-job flow options from the engine-wide
// base: isolation is always on (a panic in one job must never take down
// the batch), and FlowFaultHook specializes the pass-level fault hook to
// this job.
func (e *Engine) flowOptions(job Job) flow.Options {
	fopts := e.opts.Flow
	fopts.Isolate = true
	if e.opts.Incremental {
		fopts.Incremental = true
		fopts.IncrStore = e.opts.IncrStore
		// The seed spares every job its pristine module print; it is sound
		// exactly when (Top, CacheScope) determines the built module — the
		// identity contract Job.CacheScope documents for the result cache.
		fopts.IncrSeed = fmt.Sprintf("top=%s|scope=%s", job.Top, job.CacheScope)
	}
	if e.opts.FlowFaultHook != nil {
		hook := e.opts.FlowFaultHook
		fopts.FaultHook = func(flowName, stage, pass string) { hook(job, flowName, stage, pass) }
	}
	if job.VerifySemantics {
		fopts.VerifySemantics = true
	}
	if e.opts.MiscompileHook != nil {
		if inject := e.opts.MiscompileHook(job); inject != "" {
			fopts.VerifySemantics = true
			fopts.InjectMiscompile = inject
		}
	}
	return fopts
}

// runFlow builds the module, enforces the fresh-module contract, and
// dispatches to the right flow under this attempt's context.
func (e *Engine) runFlow(ctx context.Context, job Job, seen map[*mlir.Module]string, seenMu *sync.Mutex) (out JobResult) {
	out = JobResult{Label: job.Label, Kind: job.Kind}
	start := time.Now()
	defer func() { out.Elapsed = time.Since(start) }()

	if job.Build == nil {
		out.Err = fmt.Errorf("job %q: nil Build", job.Label)
		return out
	}
	register := func(m *mlir.Module, label string) error {
		seenMu.Lock()
		defer seenMu.Unlock()
		if prev, dup := seen[m]; dup {
			return fmt.Errorf("job %q: Build returned the same *mlir.Module as job %q; flows mutate their input, so Build must construct a fresh module per call (see internal/mlir/clone.go)", label, prev)
		}
		seen[m] = label
		return nil
	}
	m := job.Build()
	if m == nil {
		out.Err = fmt.Errorf("job %q: Build returned nil module", job.Label)
		return out
	}
	if err := register(m, job.Label); err != nil {
		out.Err = err
		return out
	}

	fopts := e.flowOptions(job)
	fopts.Ctx = ctx
	if e.opts.Fallback && job.Kind == KindAdaptor {
		fopts.Fallback = func() *mlir.Module {
			fm := job.Build()
			if fm == nil {
				return nil
			}
			if err := register(fm, job.Label+" (fallback)"); err != nil {
				return nil
			}
			return fm
		}
	}

	switch job.Kind {
	case KindAdaptor:
		out.Res, out.Err = flow.AdaptorFlowWith(m, job.Top, job.Directives, job.Target, fopts)
	case KindCxx:
		out.Res, out.Err = flow.CxxFlowWith(m, job.Top, job.Directives, job.Target, fopts)
	case KindRaw:
		out.Violations, out.LLVM, out.Err = flow.RawFlowWith(m, job.Top, job.Directives, fopts)
	default:
		out.Err = fmt.Errorf("job %q: unknown kind %q", job.Label, job.Kind)
	}
	if out.Res != nil {
		out.Degraded = out.Res.Degraded
		out.Failure = out.Res.Failure
	}
	if out.Err != nil {
		if pf, ok := resilience.AsPassFailure(out.Err); ok {
			out.Failure = pf
		}
	}
	return out
}

// Package engine is the parallel flow-evaluation engine behind the
// design-space explorer and the experiments package: a bounded worker pool
// that fans AdaptorFlow/CxxFlow/RawFlow jobs across goroutines with
// deterministic result ordering, configurable first-error cancellation, and
// an optional content-addressed result cache keyed by the job's semantic
// identity (top function, directives, target, flow kind, caller scope).
//
// Concurrency contract: flows mutate their input module, so Job.Build MUST
// return a fresh *mlir.Module on every call. The engine enforces this at
// the API boundary by rejecting a module pointer it has already seen in
// the same batch.
//
// Determinism contract: results are returned in job order regardless of
// completion order, and under fail-fast cancellation the reported error is
// the lowest-indexed genuine failure — exactly the error a serial loop
// over the same jobs would have returned. Concurrency is an implementation
// detail; callers diffing engine output against a serial run must see
// byte-identical tables.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/mlir"
)

// Kind selects which flow a job runs.
type Kind string

const (
	KindAdaptor Kind = "adaptor" // flow.AdaptorFlow
	KindCxx     Kind = "cxx"     // flow.CxxFlow
	KindRaw     Kind = "raw"     // flow.RawFlow (gate-violation check)
)

// Job describes one flow evaluation.
type Job struct {
	// Label identifies the job in results and error messages.
	Label string
	Kind  Kind
	// Build must return a fresh module on every call: flows mutate their
	// input in place. The engine rejects a pointer it has seen before in
	// the same batch.
	Build func() *mlir.Module
	// Top is the top-function name handed to the flow.
	Top        string
	Directives flow.Directives
	Target     hls.Target
	// CacheScope distinguishes jobs whose identity is not fully captured
	// by (Kind, Top, Directives, Target) — e.g. a problem-size preset or
	// a content hash of hand-written MLIR input. Jobs with equal cache
	// keys are assumed to produce equal results.
	CacheScope string
}

// JobResult is one job's outcome, at the job's index in the input slice.
type JobResult struct {
	Label string
	Kind  Kind
	// Res holds the flow result for adaptor/cxx jobs (nil on error). A
	// cached Res is shared between hits and must be treated as read-only.
	Res *flow.Result
	// Violations and LLVM hold the raw-flow outcome for KindRaw jobs.
	Violations []hls.Violation
	LLVM       *llvm.Module
	Err        error
	// CacheHit reports whether the result was served from the cache.
	CacheHit bool
	// Elapsed is this job's wall time (near zero for cache hits).
	Elapsed time.Duration
}

// Options configures an Engine.
type Options struct {
	// Workers bounds the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cache enables the content-addressed result cache.
	Cache bool
	// ContinueOnError is the default batch policy: record per-job errors
	// and keep going instead of cancelling the batch on first failure.
	ContinueOnError bool
	// Timeout is the default per-job wall-time limit (0 = none).
	Timeout time.Duration
}

// BatchOptions overrides the engine's default policy for one Run call.
type BatchOptions struct {
	ContinueOnError bool
	Timeout         time.Duration
}

// Stats aggregates engine activity across all Run calls.
type Stats struct {
	Jobs        int64
	Errors      int64
	CacheHits   int64
	CacheMisses int64
	// CPU is the summed wall time of executed (non-cached) jobs; with
	// Wall from the caller's clock it shows the parallel speedup.
	CPU time.Duration
	// Phases merges per-phase timings across all executed jobs.
	Phases flow.Phases
}

// HitRate returns the cache hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders the stats as a short summary block.
func (s Stats) String() string {
	out := fmt.Sprintf("jobs=%d errors=%d cache hits=%d misses=%d (rate %.0f%%) cpu=%s\n",
		s.Jobs, s.Errors, s.CacheHits, s.CacheMisses, 100*s.HitRate(), s.CPU.Round(time.Microsecond))
	if len(s.Phases) > 0 {
		out += s.Phases.String()
	}
	return out
}

// Engine is a reusable evaluator; its cache and stats persist across Run
// calls, so batches issued through one engine share results.
type Engine struct {
	opts  Options
	cache *cache

	mu    sync.Mutex
	stats Stats
}

// New builds an engine. The zero Options value gives a GOMAXPROCS-wide
// pool with no cache, no timeout, and fail-fast cancellation.
func New(opts Options) *Engine {
	e := &Engine{opts: opts}
	if opts.Cache {
		e.cache = newCache()
	}
	return e
}

// Workers returns the effective pool size.
func (e *Engine) Workers() int {
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Phases = s.Phases.Clone()
	return s
}

// Run evaluates the batch under the engine's default policy.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	return e.RunBatch(ctx, jobs, BatchOptions{
		ContinueOnError: e.opts.ContinueOnError,
		Timeout:         e.opts.Timeout,
	})
}

// RunBatch evaluates every job on the worker pool and returns results in
// job order. With ContinueOnError false, the first failure (by job index)
// cancels jobs that have not started and is returned as the batch error;
// with it true, the error is nil and callers inspect per-job Err fields.
// An externally cancelled ctx is returned as the batch error either way.
func (e *Engine) RunBatch(ctx context.Context, jobs []Job, opts BatchOptions) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// seen enforces the fresh-module contract for this batch.
	var seenMu sync.Mutex
	seen := make(map[*mlir.Module]string)

	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.Workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				results[i] = e.runOne(jobs[i], opts.Timeout, seen, &seenMu)
				if results[i].Err != nil && !opts.ContinueOnError {
					cancel()
				}
			}
		}()
	}
	// Cancellation gates the feeder, never a worker: every job handed out
	// runs to completion, and jobs are handed out in index order. So when
	// job f is the first failure, every job with index < f was dispatched
	// before f and records its genuine outcome — which makes the "first
	// error" scan below return exactly what a serial loop would have.
	sent := len(jobs)
	for i := range jobs {
		select {
		case feed <- i:
		case <-ctx.Done():
			sent = i
		}
		if sent != len(jobs) {
			break
		}
	}
	close(feed)
	wg.Wait()
	for i := sent; i < len(jobs); i++ {
		results[i] = JobResult{Label: jobs[i].Label, Kind: jobs[i].Kind, Err: context.Canceled}
	}

	e.mu.Lock()
	for i := range results {
		e.stats.Jobs++
		if results[i].Err != nil {
			e.stats.Errors++
		}
		if results[i].CacheHit {
			e.stats.CacheHits++
		} else if results[i].Err == nil && e.cache != nil {
			e.stats.CacheMisses++
		}
		if !results[i].CacheHit && results[i].Err == nil {
			e.stats.CPU += results[i].Elapsed
			if r := results[i].Res; r != nil {
				e.stats.Phases = e.stats.Phases.Merge(r.Phases)
			}
		}
	}
	e.mu.Unlock()

	if err := parent.Err(); err != nil {
		return results, err
	}
	if !opts.ContinueOnError {
		for i := range results {
			if err := results[i].Err; err != nil && err != context.Canceled {
				return results, fmt.Errorf("%s: %w", results[i].Label, err)
			}
		}
	}
	return results, nil
}

// runOne executes or cache-serves a single job.
func (e *Engine) runOne(job Job, timeout time.Duration, seen map[*mlir.Module]string, seenMu *sync.Mutex) JobResult {
	if e.cache != nil {
		key := Key(job)
		if hit, ok := e.cache.get(key); ok {
			r := hit
			r.Label = job.Label
			r.CacheHit = true
			r.Elapsed = 0
			return r
		}
		res := e.execute(job, timeout, seen, seenMu)
		if res.Err == nil {
			e.cache.put(key, res)
		}
		return res
	}
	return e.execute(job, timeout, seen, seenMu)
}

// execute runs the flow, optionally bounded by a per-job timeout. Flows
// are pure CPU-bound Go with no cancellation points, so a timed-out job's
// goroutine is abandoned and finishes in the background; its result is
// discarded.
func (e *Engine) execute(job Job, timeout time.Duration, seen map[*mlir.Module]string, seenMu *sync.Mutex) JobResult {
	if timeout <= 0 {
		return runFlow(job, seen, seenMu)
	}
	done := make(chan JobResult, 1)
	go func() { done <- runFlow(job, seen, seenMu) }()
	select {
	case r := <-done:
		return r
	case <-time.After(timeout):
		return JobResult{Label: job.Label, Kind: job.Kind, Elapsed: timeout,
			Err: fmt.Errorf("job %q exceeded timeout %s", job.Label, timeout)}
	}
}

// runFlow builds the module, enforces the fresh-module contract, and
// dispatches to the right flow.
func runFlow(job Job, seen map[*mlir.Module]string, seenMu *sync.Mutex) (out JobResult) {
	out = JobResult{Label: job.Label, Kind: job.Kind}
	start := time.Now()
	defer func() { out.Elapsed = time.Since(start) }()

	if job.Build == nil {
		out.Err = fmt.Errorf("job %q: nil Build", job.Label)
		return out
	}
	m := job.Build()
	if m == nil {
		out.Err = fmt.Errorf("job %q: Build returned nil module", job.Label)
		return out
	}
	seenMu.Lock()
	if prev, dup := seen[m]; dup {
		seenMu.Unlock()
		out.Err = fmt.Errorf("job %q: Build returned the same *mlir.Module as job %q; flows mutate their input, so Build must construct a fresh module per call (see internal/mlir/clone.go)", job.Label, prev)
		return out
	}
	seen[m] = job.Label
	seenMu.Unlock()

	switch job.Kind {
	case KindAdaptor:
		out.Res, out.Err = flow.AdaptorFlow(m, job.Top, job.Directives, job.Target)
	case KindCxx:
		out.Res, out.Err = flow.CxxFlow(m, job.Top, job.Directives, job.Target)
	case KindRaw:
		out.Violations, out.LLVM, out.Err = flow.RawFlow(m, job.Top, job.Directives)
	default:
		out.Err = fmt.Errorf("job %q: unknown kind %q", job.Label, job.Kind)
	}
	return out
}

package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/flow"
	"repro/internal/hls"
)

// Key derives the content-addressed cache key for a job: a stable hash of
// the job's semantic identity — flow kind, top function, caller scope
// (kernel size preset or input-content hash), canonicalized directives,
// and the target's cost-model parameters. Two jobs with equal keys are
// assumed to synthesize identical reports, so labels and build closures
// deliberately do not participate.
func Key(job Job) string {
	h := sha256.New()
	fmt.Fprintf(h, "kind=%s|top=%s|scope=%s|%s|%s|verify=%t",
		job.Kind, job.Top, job.CacheScope,
		canonDirectives(job.Directives), canonTarget(job.Target),
		job.VerifySemantics)
	return hex.EncodeToString(h.Sum(nil))
}

// canonDirectives renders directives in the normal form the flows actually
// consume: II only matters when pipelining (and floors at 1), an unroll
// factor <= 1 is off, and a nil partition is "none".
func canonDirectives(d flow.Directives) string {
	var sb strings.Builder
	if d.Pipeline {
		ii := d.II
		if ii <= 0 {
			ii = 1
		}
		fmt.Fprintf(&sb, "pipe=%d", ii)
	} else {
		sb.WriteString("pipe=off")
	}
	if d.Unroll > 1 {
		fmt.Fprintf(&sb, "|unroll=%d", d.Unroll)
	} else {
		sb.WriteString("|unroll=off")
	}
	if p := d.Partition; p != nil {
		fmt.Fprintf(&sb, "|part=%s/%d/%d", p.Kind, p.Factor, p.Dim)
	} else {
		sb.WriteString("|part=none")
	}
	fmt.Fprintf(&sb, "|flat=%t|dataflow=%t", d.Flatten, d.Dataflow)
	return sb.String()
}

// canonTarget renders the target's cost-model parameters — the same
// canonical form the incremental layer keys synthesis records by.
func canonTarget(t hls.Target) string {
	return t.Canon()
}

// cache is the concurrent result store. Entries hold completed JobResults
// (reports, violations, final LLVM module) and are shared between hits, so
// consumers must treat cached payloads as read-only.
type cache struct {
	mu sync.RWMutex
	m  map[string]JobResult
}

func newCache() *cache {
	return &cache{m: make(map[string]JobResult)}
}

func (c *cache) get(key string) (JobResult, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *cache) put(key string, r JobResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Two workers can race on the same key (both missed before either
	// finished); first write wins so repeated hits stay identical.
	if _, dup := c.m[key]; !dup {
		c.m[key] = r
	}
}

// Len returns the number of distinct cached results.
func (c *cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

package engine

import (
	"context"
	"os"
	"testing"

	"repro/internal/flow"
	"repro/internal/resilience"
)

// TestJobVerifySemantics: a verified job runs the flow under the
// differential oracle and succeeds for a correct pipeline.
func TestJobVerifySemantics(t *testing.T) {
	job := kernelJob(t, "gemm", flow.Directives{Pipeline: true, II: 1})
	job.VerifySemantics = true
	e := New(Options{})
	rs, err := e.Run(context.Background(), []Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil || rs[0].Res == nil {
		t.Fatalf("verified job failed: %+v", rs[0].Err)
	}
}

// TestCacheKeySeparatesVerifiedResults: a verified and an unverified run
// of the same configuration are distinct cache entries.
func TestCacheKeySeparatesVerifiedResults(t *testing.T) {
	plain := kernelJob(t, "gemm", flow.Directives{})
	verified := plain
	verified.VerifySemantics = true
	if Key(plain) == Key(verified) {
		t.Error("verify flag must participate in the cache key")
	}
}

// TestMiscompileHookLocalizesAndQuarantines is the engine-level chaos
// check: one job in a batch gets a miscompile injected into a named unit;
// that job fails typed KindMiscompile localized to the unit, is bisected
// into a quarantine bundle recording the injection, and counts in stats —
// while its batchmates complete untouched.
func TestMiscompileHookLocalizesAndQuarantines(t *testing.T) {
	dir, err := os.MkdirTemp("", "quarantine")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const target = "llvm-opt/cse"
	e := New(Options{
		ContinueOnError: true,
		Quarantine:      dir,
		MiscompileHook: func(j Job) string {
			if j.Label == "bicg" {
				return target
			}
			return ""
		},
	})
	jobs := []Job{
		kernelJob(t, "gemm", flow.Directives{}),
		kernelJob(t, "bicg", flow.Directives{}),
		kernelJob(t, "mvt", flow.Directives{}),
	}
	rs, err := e.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil || rs[2].Err != nil {
		t.Fatalf("clean batchmates failed: %v / %v", rs[0].Err, rs[2].Err)
	}
	bad := rs[1]
	if bad.Err == nil {
		t.Fatal("injected miscompile went undetected")
	}
	if bad.Failure == nil || bad.Failure.Kind != resilience.KindMiscompile {
		t.Fatalf("failure not typed miscompile: %+v", bad.Failure)
	}
	if got := bad.Failure.Stage + "/" + bad.Failure.Pass; got != target {
		t.Errorf("localized to %s, want %s", got, target)
	}
	if bad.BundlePath == "" {
		t.Fatal("miscompile was not quarantined")
	}
	b, err := resilience.ReadBundle(bad.BundlePath)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reproduced {
		t.Error("quarantine bundle did not reproduce the miscompile")
	}
	if b.Inject != target {
		t.Errorf("bundle inject = %q, want %q", b.Inject, target)
	}
	if got := e.Stats().Miscompiles; got != 1 {
		t.Errorf("stats miscompiles = %d, want 1", got)
	}
}

package engine

import (
	"encoding/json"

	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hls"
)

// storedResult is the persisted form of a successful adaptor/cxx job in
// the shared on-disk result store: the synthesis report plus the
// flow-specific artifacts that are cheap, serializable, and consumed by
// result readers (tables, sweeps, the compile service). The final LLVM
// module, phase timings, and retry bookkeeping deliberately do not
// persist — they are properties of one process's execution, not of the
// job's semantic identity.
type storedResult struct {
	Kind    Kind         `json:"kind"`
	Flow    string       `json:"flow,omitempty"`
	Report  *hls.Report  `json:"report"`
	Adaptor *core.Report `json:"adaptor,omitempty"`
	CSource string       `json:"csource,omitempty"`
}

// storable reports whether a result belongs in the persistent store:
// clean, non-degraded adaptor/cxx results with a report. Degraded results
// are stand-ins for failed runs (persisting one would mask the direct
// path recovering), and raw-flow results carry a live LLVM module rather
// than a report.
func storable(job Job, r JobResult) bool {
	return r.Err == nil && !r.Degraded && job.Kind != KindRaw &&
		r.Res != nil && r.Res.Report != nil
}

// loadStored serves a job from the persistent result store. A record that
// parses but fails the storedResult schema is quarantined exactly like a
// digest failure — corrupt-but-valid-JSON is detected and counted, never
// trusted (the castore layer already rejected digest mismatches before we
// got here).
func (e *Engine) loadStored(key string, job Job) (JobResult, bool) {
	payload, ok := e.opts.ResultStore.Get(key)
	if !ok {
		return JobResult{}, false
	}
	var sr storedResult
	if err := json.Unmarshal(payload, &sr); err != nil || sr.Report == nil || sr.Kind != job.Kind {
		e.opts.ResultStore.Quarantine(key)
		return JobResult{}, false
	}
	return JobResult{
		Label: job.Label,
		Kind:  job.Kind,
		Res: &flow.Result{
			Flow:    sr.Flow,
			Report:  sr.Report,
			Adaptor: sr.Adaptor,
			CSource: sr.CSource,
		},
		DiskHit: true,
	}, true
}

// saveStored persists a storable result. Write failures are counted by
// the store (surfaced as Stats.StoreErrors) and otherwise ignored: a
// failed persist degrades durability, never the batch.
func (e *Engine) saveStored(key string, r JobResult) {
	payload, err := json.Marshal(storedResult{
		Kind:    r.Kind,
		Flow:    r.Res.Flow,
		Report:  r.Res.Report,
		Adaptor: r.Res.Adaptor,
		CSource: r.Res.CSource,
	})
	if err != nil {
		return
	}
	_ = e.opts.ResultStore.Put(key, payload)
}

// counterSource lets Stats pull health counters out of any store that
// exposes them (castore.Store directly, incr.DiskStore by delegation).
type counterSource interface{ Counters() castore.Counters }

package mlir

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Attr is an immutable op attribute.
type Attr interface {
	// String renders the attribute in MLIR-like syntax.
	String() string
	// EqualAttr reports structural equality with another attribute.
	EqualAttr(Attr) bool
}

// IntAttr is a 64-bit integer attribute, optionally carrying an element type.
type IntAttr struct {
	Value int64
	Ty    *Type // nil means index/i64 default
}

// I is shorthand for an integer attribute without an explicit type.
func I(v int64) IntAttr { return IntAttr{Value: v} }

// String implements Attr.
func (a IntAttr) String() string {
	if a.Ty != nil && !a.Ty.IsIndex() {
		return fmt.Sprintf("%d : %s", a.Value, a.Ty)
	}
	return strconv.FormatInt(a.Value, 10)
}

// EqualAttr implements Attr.
func (a IntAttr) EqualAttr(o Attr) bool {
	b, ok := o.(IntAttr)
	if !ok || a.Value != b.Value {
		return false
	}
	if a.Ty == nil || b.Ty == nil {
		return a.Ty == b.Ty
	}
	return a.Ty.Equal(b.Ty)
}

// FloatAttr is a float attribute with an element type.
type FloatAttr struct {
	Value float64
	Ty    *Type
}

// String implements Attr.
func (a FloatAttr) String() string {
	s := strconv.FormatFloat(a.Value, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	if a.Ty != nil {
		return s + " : " + a.Ty.String()
	}
	return s
}

// EqualAttr implements Attr.
func (a FloatAttr) EqualAttr(o Attr) bool {
	b, ok := o.(FloatAttr)
	if !ok || a.Value != b.Value {
		return false
	}
	if a.Ty == nil || b.Ty == nil {
		return a.Ty == b.Ty
	}
	return a.Ty.Equal(b.Ty)
}

// StringAttr is a quoted string attribute.
type StringAttr string

// String implements Attr.
func (a StringAttr) String() string { return strconv.Quote(string(a)) }

// EqualAttr implements Attr.
func (a StringAttr) EqualAttr(o Attr) bool {
	b, ok := o.(StringAttr)
	return ok && a == b
}

// BoolAttr is true/false.
type BoolAttr bool

// String implements Attr.
func (a BoolAttr) String() string {
	if a {
		return "true"
	}
	return "false"
}

// EqualAttr implements Attr.
func (a BoolAttr) EqualAttr(o Attr) bool {
	b, ok := o.(BoolAttr)
	return ok && a == b
}

// UnitAttr marks presence with no payload.
type UnitAttr struct{}

// String implements Attr.
func (UnitAttr) String() string { return "unit" }

// EqualAttr implements Attr.
func (UnitAttr) EqualAttr(o Attr) bool {
	_, ok := o.(UnitAttr)
	return ok
}

// TypeAttr wraps a type as an attribute.
type TypeAttr struct{ Ty *Type }

// String implements Attr.
func (a TypeAttr) String() string { return a.Ty.String() }

// EqualAttr implements Attr.
func (a TypeAttr) EqualAttr(o Attr) bool {
	b, ok := o.(TypeAttr)
	return ok && a.Ty.Equal(b.Ty)
}

// ArrayAttr is an ordered list of attributes.
type ArrayAttr []Attr

// String implements Attr.
func (a ArrayAttr) String() string {
	parts := make([]string, len(a))
	for i, e := range a {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// EqualAttr implements Attr.
func (a ArrayAttr) EqualAttr(o Attr) bool {
	b, ok := o.(ArrayAttr)
	if !ok || len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].EqualAttr(b[i]) {
			return false
		}
	}
	return true
}

// AffineMapAttr wraps an affine map as an attribute.
type AffineMapAttr struct{ Map *AffineMap }

// String implements Attr.
func (a AffineMapAttr) String() string { return "affine_map<" + a.Map.String() + ">" }

// EqualAttr implements Attr.
func (a AffineMapAttr) EqualAttr(o Attr) bool {
	b, ok := o.(AffineMapAttr)
	return ok && a.Map.Equal(b.Map)
}

// SymbolRefAttr references a symbol such as a function name.
type SymbolRefAttr string

// String implements Attr.
func (a SymbolRefAttr) String() string { return "@" + string(a) }

// EqualAttr implements Attr.
func (a SymbolRefAttr) EqualAttr(o Attr) bool {
	b, ok := o.(SymbolRefAttr)
	return ok && a == b
}

// attrsString renders an attribute dictionary deterministically.
func attrsString(attrs map[string]Attr, skip map[string]bool) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		if skip != nil && skip[k] {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		if _, isUnit := attrs[k].(UnitAttr); isUnit {
			parts[i] = k
		} else {
			parts[i] = k + " = " + attrs[k].String()
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

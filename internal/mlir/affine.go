package mlir

import (
	"fmt"
	"strings"
)

// AffineExprKind discriminates affine expression nodes.
type AffineExprKind int

const (
	// AffineDim is a loop dimension d<i>.
	AffineDim AffineExprKind = iota
	// AffineSym is a symbol s<i>.
	AffineSym
	// AffineConst is an integer constant.
	AffineConst
	// AffineAdd is lhs + rhs.
	AffineAdd
	// AffineMul is lhs * rhs (rhs must stay affine: one side constant).
	AffineMul
	// AffineMod is lhs mod rhs (rhs constant > 0).
	AffineMod
	// AffineFloorDiv is lhs floordiv rhs (rhs constant > 0).
	AffineFloorDiv
	// AffineCeilDiv is lhs ceildiv rhs (rhs constant > 0).
	AffineCeilDiv
)

// AffineExpr is an immutable affine expression tree.
type AffineExpr struct {
	Kind     AffineExprKind
	Pos      int   // dim/symbol index
	Val      int64 // constant value
	LHS, RHS *AffineExpr
}

// Dim returns the affine dimension expression d<pos>.
func Dim(pos int) *AffineExpr { return &AffineExpr{Kind: AffineDim, Pos: pos} }

// Sym returns the affine symbol expression s<pos>.
func Sym(pos int) *AffineExpr { return &AffineExpr{Kind: AffineSym, Pos: pos} }

// Const returns the affine constant expression.
func Const(v int64) *AffineExpr { return &AffineExpr{Kind: AffineConst, Val: v} }

// IsConst reports whether e is a constant expression.
func (e *AffineExpr) IsConst() bool { return e.Kind == AffineConst }

// Add returns the simplified sum of two affine expressions.
func Add(l, r *AffineExpr) *AffineExpr {
	if l.IsConst() && r.IsConst() {
		return Const(l.Val + r.Val)
	}
	if l.IsConst() && l.Val == 0 {
		return r
	}
	if r.IsConst() && r.Val == 0 {
		return l
	}
	// Canonicalize constants to the right.
	if l.IsConst() {
		l, r = r, l
	}
	return &AffineExpr{Kind: AffineAdd, LHS: l, RHS: r}
}

// Mul returns the simplified product; at least one side must be constant to
// remain affine, and non-affine products panic.
func Mul(l, r *AffineExpr) *AffineExpr {
	if l.IsConst() && r.IsConst() {
		return Const(l.Val * r.Val)
	}
	if l.IsConst() {
		l, r = r, l
	}
	if !r.IsConst() {
		panic("mlir: non-affine multiplication")
	}
	switch r.Val {
	case 0:
		return Const(0)
	case 1:
		return l
	}
	return &AffineExpr{Kind: AffineMul, LHS: l, RHS: r}
}

// Mod returns l mod m for a positive constant m.
func Mod(l *AffineExpr, m int64) *AffineExpr {
	if m <= 0 {
		panic("mlir: mod by non-positive constant")
	}
	if l.IsConst() {
		return Const(floorMod(l.Val, m))
	}
	return &AffineExpr{Kind: AffineMod, LHS: l, RHS: Const(m)}
}

// FloorDiv returns l floordiv d for a positive constant d.
func FloorDiv(l *AffineExpr, d int64) *AffineExpr {
	if d <= 0 {
		panic("mlir: floordiv by non-positive constant")
	}
	if d == 1 {
		return l
	}
	if l.IsConst() {
		return Const(floorDiv(l.Val, d))
	}
	return &AffineExpr{Kind: AffineFloorDiv, LHS: l, RHS: Const(d)}
}

// CeilDiv returns l ceildiv d for a positive constant d.
func CeilDiv(l *AffineExpr, d int64) *AffineExpr {
	if d <= 0 {
		panic("mlir: ceildiv by non-positive constant")
	}
	if d == 1 {
		return l
	}
	if l.IsConst() {
		return Const(ceilDiv(l.Val, d))
	}
	return &AffineExpr{Kind: AffineCeilDiv, LHS: l, RHS: Const(d)}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 { return -floorDiv(-a, b) }

func floorMod(a, b int64) int64 { return a - floorDiv(a, b)*b }

// Eval evaluates the expression for concrete dim and symbol values.
func (e *AffineExpr) Eval(dims, syms []int64) int64 {
	switch e.Kind {
	case AffineDim:
		return dims[e.Pos]
	case AffineSym:
		return syms[e.Pos]
	case AffineConst:
		return e.Val
	case AffineAdd:
		return e.LHS.Eval(dims, syms) + e.RHS.Eval(dims, syms)
	case AffineMul:
		return e.LHS.Eval(dims, syms) * e.RHS.Eval(dims, syms)
	case AffineMod:
		return floorMod(e.LHS.Eval(dims, syms), e.RHS.Eval(dims, syms))
	case AffineFloorDiv:
		return floorDiv(e.LHS.Eval(dims, syms), e.RHS.Eval(dims, syms))
	case AffineCeilDiv:
		return ceilDiv(e.LHS.Eval(dims, syms), e.RHS.Eval(dims, syms))
	}
	panic("mlir: invalid affine expression kind")
}

// Equal reports structural equality of affine expressions.
func (e *AffineExpr) Equal(o *AffineExpr) bool {
	if e == o {
		return true
	}
	if e == nil || o == nil || e.Kind != o.Kind {
		return false
	}
	switch e.Kind {
	case AffineDim, AffineSym:
		return e.Pos == o.Pos
	case AffineConst:
		return e.Val == o.Val
	default:
		return e.LHS.Equal(o.LHS) && e.RHS.Equal(o.RHS)
	}
}

// MaxDim returns the largest dimension index referenced, or -1.
func (e *AffineExpr) MaxDim() int {
	switch e.Kind {
	case AffineDim:
		return e.Pos
	case AffineSym, AffineConst:
		return -1
	default:
		l, r := e.LHS.MaxDim(), e.RHS.MaxDim()
		if l > r {
			return l
		}
		return r
	}
}

// MaxSym returns the largest symbol index referenced, or -1.
func (e *AffineExpr) MaxSym() int {
	switch e.Kind {
	case AffineSym:
		return e.Pos
	case AffineDim, AffineConst:
		return -1
	default:
		l, r := e.LHS.MaxSym(), e.RHS.MaxSym()
		if l > r {
			return l
		}
		return r
	}
}

// String renders the expression in MLIR affine syntax.
func (e *AffineExpr) String() string {
	switch e.Kind {
	case AffineDim:
		return fmt.Sprintf("d%d", e.Pos)
	case AffineSym:
		return fmt.Sprintf("s%d", e.Pos)
	case AffineConst:
		return fmt.Sprintf("%d", e.Val)
	case AffineAdd:
		if e.RHS.IsConst() && e.RHS.Val < 0 {
			return fmt.Sprintf("(%s - %d)", e.LHS, -e.RHS.Val)
		}
		return fmt.Sprintf("(%s + %s)", e.LHS, e.RHS)
	case AffineMul:
		return fmt.Sprintf("(%s * %s)", e.LHS, e.RHS)
	case AffineMod:
		return fmt.Sprintf("(%s mod %s)", e.LHS, e.RHS)
	case AffineFloorDiv:
		return fmt.Sprintf("(%s floordiv %s)", e.LHS, e.RHS)
	case AffineCeilDiv:
		return fmt.Sprintf("(%s ceildiv %s)", e.LHS, e.RHS)
	}
	return "<invalid-affine-expr>"
}

// AffineMap is a multi-result affine map (d0..dN, s0..sM) -> (exprs...).
type AffineMap struct {
	NumDims int
	NumSyms int
	Exprs   []*AffineExpr
}

// NewMap builds an affine map, validating that every expression stays within
// the declared dim/symbol counts.
func NewMap(numDims, numSyms int, exprs ...*AffineExpr) *AffineMap {
	for _, e := range exprs {
		if e.MaxDim() >= numDims {
			panic(fmt.Sprintf("mlir: expr %s references dim beyond %d", e, numDims))
		}
		if e.MaxSym() >= numSyms {
			panic(fmt.Sprintf("mlir: expr %s references symbol beyond %d", e, numSyms))
		}
	}
	return &AffineMap{NumDims: numDims, NumSyms: numSyms, Exprs: exprs}
}

// ConstantMap returns the zero-input map () -> (v).
func ConstantMap(v int64) *AffineMap { return NewMap(0, 0, Const(v)) }

// IdentityMap returns the map (d0..dN-1) -> (d0..dN-1).
func IdentityMap(n int) *AffineMap {
	exprs := make([]*AffineExpr, n)
	for i := range exprs {
		exprs[i] = Dim(i)
	}
	return NewMap(n, 0, exprs...)
}

// IsSingleConstant reports whether the map has exactly one constant result
// and returns its value.
func (m *AffineMap) IsSingleConstant() (int64, bool) {
	if len(m.Exprs) == 1 && m.Exprs[0].IsConst() {
		return m.Exprs[0].Val, true
	}
	return 0, false
}

// IsIdentity reports whether the map is the identity over its dims.
func (m *AffineMap) IsIdentity() bool {
	if m.NumSyms != 0 || len(m.Exprs) != m.NumDims {
		return false
	}
	for i, e := range m.Exprs {
		if e.Kind != AffineDim || e.Pos != i {
			return false
		}
	}
	return true
}

// Eval evaluates every result expression.
func (m *AffineMap) Eval(dims, syms []int64) []int64 {
	if len(dims) != m.NumDims || len(syms) != m.NumSyms {
		panic(fmt.Sprintf("mlir: map eval arity mismatch: got %d dims %d syms, want %d/%d",
			len(dims), len(syms), m.NumDims, m.NumSyms))
	}
	out := make([]int64, len(m.Exprs))
	for i, e := range m.Exprs {
		out[i] = e.Eval(dims, syms)
	}
	return out
}

// Equal reports structural map equality.
func (m *AffineMap) Equal(o *AffineMap) bool {
	if m == o {
		return true
	}
	if m == nil || o == nil || m.NumDims != o.NumDims || m.NumSyms != o.NumSyms ||
		len(m.Exprs) != len(o.Exprs) {
		return false
	}
	for i := range m.Exprs {
		if !m.Exprs[i].Equal(o.Exprs[i]) {
			return false
		}
	}
	return true
}

// String renders the map as (d0, d1)[s0] -> (expr, ...).
func (m *AffineMap) String() string {
	var sb strings.Builder
	sb.WriteString("(")
	for i := 0; i < m.NumDims; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "d%d", i)
	}
	sb.WriteString(")")
	if m.NumSyms > 0 {
		sb.WriteString("[")
		for i := 0; i < m.NumSyms; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "s%d", i)
		}
		sb.WriteString("]")
	}
	sb.WriteString(" -> (")
	for i, e := range m.Exprs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	sb.WriteString(")")
	return sb.String()
}

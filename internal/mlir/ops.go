package mlir

// Op names for the supported dialect subset.
const (
	OpModule = "builtin.module"

	OpFunc   = "func.func"
	OpReturn = "func.return"
	OpCall   = "func.call"

	OpConstant  = "arith.constant"
	OpAddI      = "arith.addi"
	OpSubI      = "arith.subi"
	OpMulI      = "arith.muli"
	OpDivSI     = "arith.divsi"
	OpRemSI     = "arith.remsi"
	OpAddF      = "arith.addf"
	OpSubF      = "arith.subf"
	OpMulF      = "arith.mulf"
	OpDivF      = "arith.divf"
	OpNegF      = "arith.negf"
	OpCmpI      = "arith.cmpi"
	OpCmpF      = "arith.cmpf"
	OpSelect    = "arith.select"
	OpIndexCast = "arith.index_cast"
	OpSIToFP    = "arith.sitofp"
	OpFPToSI    = "arith.fptosi"
	OpExtF      = "arith.extf"
	OpTruncF    = "arith.truncf"
	OpMinSI     = "arith.minsi"
	OpMaxSI     = "arith.maxsi"

	OpMathSqrt = "math.sqrt"
	OpMathExp  = "math.exp"

	OpAlloc   = "memref.alloc"
	OpAlloca  = "memref.alloca"
	OpDealloc = "memref.dealloc"
	OpLoad    = "memref.load"
	OpStore   = "memref.store"

	OpAffineFor   = "affine.for"
	OpAffineLoad  = "affine.load"
	OpAffineStore = "affine.store"
	OpAffineApply = "affine.apply"
	OpAffineYield = "affine.yield"

	OpSCFFor       = "scf.for"
	OpSCFIf        = "scf.if"
	OpSCFYield     = "scf.yield"
	OpSCFCondition = "scf.condition"

	OpBr     = "cf.br"
	OpCondBr = "cf.cond_br"
)

// Attribute keys used across dialects and the flow.
const (
	AttrSymName     = "sym_name"
	AttrResultTypes = "res_types" // ArrayAttr of TypeAttr for func results
	AttrValue       = "value"     // arith.constant payload
	AttrPredicate   = "predicate" // cmpi/cmpf predicate string
	AttrCallee      = "callee"

	AttrLowerMap = "lowerBound"
	AttrUpperMap = "upperBound"
	AttrStep     = "step"
	AttrLBCount  = "lbOperands" // number of operands feeding the lower map

	AttrMap = "map" // affine.load/store/apply map

	// HLS optimization directives attached by the directive passes; these
	// travel through lowering and translation into LLVM loop metadata.
	AttrPipeline  = "hls.pipeline"
	AttrII        = "hls.ii"
	AttrUnroll    = "hls.unroll"
	AttrPartition = "hls.array_partition" // on alloc / func arg index attrs
	AttrFlatten   = "hls.flatten"
	AttrDataflow  = "hls.dataflow" // function-level task parallelism
	AttrTopFunc   = "hls.top"

	// cf.cond_br operand segmentation.
	AttrTrueCount  = "trueOperands"
	AttrFalseCount = "falseOperands"
)

// Cmp predicates (shared spelling between cmpi and cmpf where sensible).
const (
	PredEQ  = "eq"
	PredNE  = "ne"
	PredSLT = "slt"
	PredSLE = "sle"
	PredSGT = "sgt"
	PredSGE = "sge"
	PredOLT = "olt"
	PredOLE = "ole"
	PredOGT = "ogt"
	PredOGE = "oge"
	PredOEQ = "oeq"
	PredONE = "one"
)

// AffineForView provides typed access to an affine.for op.
//
// Representation: operands are the lower-map operands followed by the
// upper-map operands (AttrLBCount holds the split); AttrLowerMap and
// AttrUpperMap are single-result affine maps; AttrStep is a positive int.
// The single region has one block whose only argument is the induction var.
type AffineForView struct{ Op *Op }

// AsAffineFor wraps op, with ok=false when op is not affine.for.
func AsAffineFor(op *Op) (AffineForView, bool) {
	return AffineForView{op}, op != nil && op.Name == OpAffineFor
}

// IV returns the induction variable.
func (f AffineForView) IV() *Value { return f.Op.Regions[0].Blocks[0].Args[0] }

// Body returns the loop body block.
func (f AffineForView) Body() *Block { return f.Op.Regions[0].Blocks[0] }

// LowerMap returns the lower-bound map.
func (f AffineForView) LowerMap() *AffineMap {
	m, _ := f.Op.MapAttr(AttrLowerMap)
	return m
}

// UpperMap returns the upper-bound (exclusive) map.
func (f AffineForView) UpperMap() *AffineMap {
	m, _ := f.Op.MapAttr(AttrUpperMap)
	return m
}

// Step returns the loop step.
func (f AffineForView) Step() int64 {
	s, _ := f.Op.IntAttr(AttrStep)
	return s
}

// LowerOperands returns the operands feeding the lower map.
func (f AffineForView) LowerOperands() []*Value {
	n, _ := f.Op.IntAttr(AttrLBCount)
	return f.Op.Operands[:n]
}

// UpperOperands returns the operands feeding the upper map.
func (f AffineForView) UpperOperands() []*Value {
	n, _ := f.Op.IntAttr(AttrLBCount)
	return f.Op.Operands[n:]
}

// ConstantBounds returns the trip bounds when both maps are constant.
func (f AffineForView) ConstantBounds() (lo, hi int64, ok bool) {
	lo, lok := f.LowerMap().IsSingleConstant()
	hi, hok := f.UpperMap().IsSingleConstant()
	return lo, hi, lok && hok
}

// ConstantTripCount returns the trip count when bounds are constant.
func (f AffineForView) ConstantTripCount() (int64, bool) {
	lo, hi, ok := f.ConstantBounds()
	if !ok {
		return 0, false
	}
	step := f.Step()
	if step <= 0 {
		return 0, false
	}
	if hi <= lo {
		return 0, true
	}
	return ceilDiv(hi-lo, step), true
}

// AffineAccessView provides typed access to affine.load / affine.store.
//
// affine.load operands: memref, mapOperands... (result: element)
// affine.store operands: value, memref, mapOperands...
type AffineAccessView struct{ Op *Op }

// IsStore reports whether the access is a store.
func (a AffineAccessView) IsStore() bool { return a.Op.Name == OpAffineStore }

// MemRef returns the accessed memref value.
func (a AffineAccessView) MemRef() *Value {
	if a.IsStore() {
		return a.Op.Operands[1]
	}
	return a.Op.Operands[0]
}

// MapOperands returns the values feeding the access map.
func (a AffineAccessView) MapOperands() []*Value {
	if a.IsStore() {
		return a.Op.Operands[2:]
	}
	return a.Op.Operands[1:]
}

// Map returns the access map.
func (a AffineAccessView) Map() *AffineMap {
	m, _ := a.Op.MapAttr(AttrMap)
	return m
}

// StoredValue returns the value stored by an affine.store.
func (a AffineAccessView) StoredValue() *Value { return a.Op.Operands[0] }

// IsArithOp reports whether name is an arith dialect computation.
func IsArithOp(name string) bool {
	switch name {
	case OpAddI, OpSubI, OpMulI, OpDivSI, OpRemSI,
		OpAddF, OpSubF, OpMulF, OpDivF, OpNegF,
		OpCmpI, OpCmpF, OpSelect, OpIndexCast, OpSIToFP, OpFPToSI,
		OpExtF, OpTruncF, OpMinSI, OpMaxSI:
		return true
	}
	return false
}

// IsPure reports whether the op has no side effects and can be erased when
// unused or deduplicated.
func IsPure(op *Op) bool {
	if IsArithOp(op.Name) {
		return true
	}
	switch op.Name {
	case OpConstant, OpAffineApply, OpMathSqrt, OpMathExp:
		return true
	}
	return false
}

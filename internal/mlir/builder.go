package mlir

import "fmt"

// Builder creates ops at an insertion point (always the end of a block here;
// passes that need mid-block insertion use Block.InsertBefore directly).
type Builder struct {
	block *Block
}

// NewBuilder returns a builder appending into blk.
func NewBuilder(blk *Block) *Builder { return &Builder{block: blk} }

// SetInsertionPointToEnd retargets the builder.
func (b *Builder) SetInsertionPointToEnd(blk *Block) { b.block = blk }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.block }

// Create appends a generic op and returns it.
func (b *Builder) Create(name string, operands []*Value, resultTypes []*Type) *Op {
	op := NewOp(name, operands, resultTypes)
	b.block.Append(op)
	return op
}

// Func creates a func.func in the module body and returns the op and its
// entry-block argument values.
func (m *Module) AddFunc(name string, argTypes []*Type, resultTypes []*Type) (*Op, []*Value) {
	f := NewOp(OpFunc, nil, nil)
	f.SetAttr(AttrSymName, StringAttr(name))
	resAttrs := make(ArrayAttr, len(resultTypes))
	for i, t := range resultTypes {
		resAttrs[i] = TypeAttr{t}
	}
	f.SetAttr(AttrResultTypes, resAttrs)
	r := f.AddRegion()
	entry := NewBlock(argTypes...)
	r.AddBlock(entry)
	m.Body().Append(f)
	return f, entry.Args
}

// ConstantIndex creates arith.constant : index.
func (b *Builder) ConstantIndex(v int64) *Value {
	op := b.Create(OpConstant, nil, []*Type{Index()})
	op.SetAttr(AttrValue, IntAttr{Value: v, Ty: Index()})
	return op.Result(0)
}

// ConstantInt creates arith.constant : iN.
func (b *Builder) ConstantInt(v int64, ty *Type) *Value {
	op := b.Create(OpConstant, nil, []*Type{ty})
	op.SetAttr(AttrValue, IntAttr{Value: v, Ty: ty})
	return op.Result(0)
}

// ConstantFloat creates arith.constant : fN. f32 constants are rounded to
// single precision at creation so every downstream path (interpretation,
// translation, C emission) sees the same value.
func (b *Builder) ConstantFloat(v float64, ty *Type) *Value {
	if ty.IsFloat() && ty.Width == 32 {
		v = float64(float32(v))
	}
	op := b.Create(OpConstant, nil, []*Type{ty})
	op.SetAttr(AttrValue, FloatAttr{Value: v, Ty: ty})
	return op.Result(0)
}

func (b *Builder) binary(name string, lhs, rhs *Value) *Value {
	if !lhs.Type().Equal(rhs.Type()) {
		panic(fmt.Sprintf("mlir: %s operand type mismatch: %s vs %s", name, lhs.Type(), rhs.Type()))
	}
	return b.Create(name, []*Value{lhs, rhs}, []*Type{lhs.Type()}).Result(0)
}

// AddI creates arith.addi.
func (b *Builder) AddI(l, r *Value) *Value { return b.binary(OpAddI, l, r) }

// SubI creates arith.subi.
func (b *Builder) SubI(l, r *Value) *Value { return b.binary(OpSubI, l, r) }

// MulI creates arith.muli.
func (b *Builder) MulI(l, r *Value) *Value { return b.binary(OpMulI, l, r) }

// DivSI creates arith.divsi.
func (b *Builder) DivSI(l, r *Value) *Value { return b.binary(OpDivSI, l, r) }

// RemSI creates arith.remsi.
func (b *Builder) RemSI(l, r *Value) *Value { return b.binary(OpRemSI, l, r) }

// AddF creates arith.addf.
func (b *Builder) AddF(l, r *Value) *Value { return b.binary(OpAddF, l, r) }

// SubF creates arith.subf.
func (b *Builder) SubF(l, r *Value) *Value { return b.binary(OpSubF, l, r) }

// MulF creates arith.mulf.
func (b *Builder) MulF(l, r *Value) *Value { return b.binary(OpMulF, l, r) }

// DivF creates arith.divf.
func (b *Builder) DivF(l, r *Value) *Value { return b.binary(OpDivF, l, r) }

// NegF creates arith.negf.
func (b *Builder) NegF(v *Value) *Value {
	return b.Create(OpNegF, []*Value{v}, []*Type{v.Type()}).Result(0)
}

// MinSI creates arith.minsi.
func (b *Builder) MinSI(l, r *Value) *Value { return b.binary(OpMinSI, l, r) }

// MaxSI creates arith.maxsi.
func (b *Builder) MaxSI(l, r *Value) *Value { return b.binary(OpMaxSI, l, r) }

// CmpI creates arith.cmpi with the given predicate.
func (b *Builder) CmpI(pred string, l, r *Value) *Value {
	op := b.Create(OpCmpI, []*Value{l, r}, []*Type{I1()})
	op.SetAttr(AttrPredicate, StringAttr(pred))
	return op.Result(0)
}

// CmpF creates arith.cmpf with the given predicate.
func (b *Builder) CmpF(pred string, l, r *Value) *Value {
	op := b.Create(OpCmpF, []*Value{l, r}, []*Type{I1()})
	op.SetAttr(AttrPredicate, StringAttr(pred))
	return op.Result(0)
}

// Select creates arith.select.
func (b *Builder) Select(cond, t, f *Value) *Value {
	return b.Create(OpSelect, []*Value{cond, t, f}, []*Type{t.Type()}).Result(0)
}

// IndexCast creates arith.index_cast to the target type.
func (b *Builder) IndexCast(v *Value, to *Type) *Value {
	return b.Create(OpIndexCast, []*Value{v}, []*Type{to}).Result(0)
}

// SIToFP creates arith.sitofp.
func (b *Builder) SIToFP(v *Value, to *Type) *Value {
	return b.Create(OpSIToFP, []*Value{v}, []*Type{to}).Result(0)
}

// Alloc creates memref.alloc of the given memref type.
func (b *Builder) Alloc(ty *Type) *Value {
	return b.Create(OpAlloc, nil, []*Type{ty}).Result(0)
}

// Load creates memref.load.
func (b *Builder) Load(mem *Value, idxs ...*Value) *Value {
	ops := append([]*Value{mem}, idxs...)
	return b.Create(OpLoad, ops, []*Type{mem.Type().Elem}).Result(0)
}

// Store creates memref.store.
func (b *Builder) Store(val, mem *Value, idxs ...*Value) *Op {
	ops := append([]*Value{val, mem}, idxs...)
	return b.Create(OpStore, ops, nil)
}

// AffineLoad creates affine.load with an identity map over idxs.
func (b *Builder) AffineLoad(mem *Value, idxs ...*Value) *Value {
	return b.AffineLoadMap(mem, IdentityMap(len(idxs)), idxs...)
}

// AffineLoadMap creates affine.load with an explicit access map.
func (b *Builder) AffineLoadMap(mem *Value, m *AffineMap, mapOperands ...*Value) *Value {
	ops := append([]*Value{mem}, mapOperands...)
	op := b.Create(OpAffineLoad, ops, []*Type{mem.Type().Elem})
	op.SetAttr(AttrMap, AffineMapAttr{m})
	return op.Result(0)
}

// AffineStore creates affine.store with an identity map over idxs.
func (b *Builder) AffineStore(val, mem *Value, idxs ...*Value) *Op {
	return b.AffineStoreMap(val, mem, IdentityMap(len(idxs)), idxs...)
}

// AffineStoreMap creates affine.store with an explicit access map.
func (b *Builder) AffineStoreMap(val, mem *Value, m *AffineMap, mapOperands ...*Value) *Op {
	ops := append([]*Value{val, mem}, mapOperands...)
	op := b.Create(OpAffineStore, ops, nil)
	op.SetAttr(AttrMap, AffineMapAttr{m})
	return op
}

// AffineApply creates affine.apply of a single-result map.
func (b *Builder) AffineApply(m *AffineMap, operands ...*Value) *Value {
	if len(m.Exprs) != 1 {
		panic("mlir: affine.apply requires a single-result map")
	}
	op := b.Create(OpAffineApply, operands, []*Type{Index()})
	op.SetAttr(AttrMap, AffineMapAttr{m})
	return op.Result(0)
}

// AffineForConst creates affine.for %iv = lo to hi step step and calls body
// with a builder positioned in the loop body (the affine.yield is appended
// after body returns). It returns the loop op.
func (b *Builder) AffineForConst(lo, hi, step int64, body func(*Builder, *Value)) *Op {
	return b.AffineFor(ConstantMap(lo), nil, ConstantMap(hi), nil, step, body)
}

// AffineForUpTo creates affine.for %iv = 0 to map(operands) step 1.
func (b *Builder) AffineForUpTo(upper *AffineMap, upperOperands []*Value, body func(*Builder, *Value)) *Op {
	return b.AffineFor(ConstantMap(0), nil, upper, upperOperands, 1, body)
}

// AffineFor creates a general affine.for.
func (b *Builder) AffineFor(lower *AffineMap, lowerOperands []*Value,
	upper *AffineMap, upperOperands []*Value, step int64,
	body func(*Builder, *Value)) *Op {

	operands := append(append([]*Value{}, lowerOperands...), upperOperands...)
	op := b.Create(OpAffineFor, operands, nil)
	op.SetAttr(AttrLowerMap, AffineMapAttr{lower})
	op.SetAttr(AttrUpperMap, AffineMapAttr{upper})
	op.SetAttr(AttrStep, I(step))
	op.SetAttr(AttrLBCount, I(int64(len(lowerOperands))))
	r := op.AddRegion()
	blk := NewBlock(Index())
	r.AddBlock(blk)
	inner := NewBuilder(blk)
	body(inner, blk.Args[0])
	inner.Create(OpAffineYield, nil, nil)
	return op
}

// Return creates func.return.
func (b *Builder) Return(vals ...*Value) *Op { return b.Create(OpReturn, vals, nil) }

// Call creates func.call to the named function.
func (b *Builder) Call(callee string, resultTypes []*Type, args ...*Value) *Op {
	op := b.Create(OpCall, args, resultTypes)
	op.SetAttr(AttrCallee, SymbolRefAttr(callee))
	return op
}

// SCFFor creates scf.for %iv = lo to hi step st (no iter args).
func (b *Builder) SCFFor(lo, hi, st *Value, body func(*Builder, *Value)) *Op {
	op := b.Create(OpSCFFor, []*Value{lo, hi, st}, nil)
	r := op.AddRegion()
	blk := NewBlock(Index())
	r.AddBlock(blk)
	inner := NewBuilder(blk)
	body(inner, blk.Args[0])
	inner.Create(OpSCFYield, nil, nil)
	return op
}

// SCFIf creates scf.if with then/else regions (no results).
func (b *Builder) SCFIf(cond *Value, then func(*Builder), els func(*Builder)) *Op {
	op := b.Create(OpSCFIf, []*Value{cond}, nil)
	tr := op.AddRegion()
	tb := NewBlock()
	tr.AddBlock(tb)
	tBuilder := NewBuilder(tb)
	then(tBuilder)
	tBuilder.Create(OpSCFYield, nil, nil)
	if els != nil {
		er := op.AddRegion()
		eb := NewBlock()
		er.AddBlock(eb)
		eBuilder := NewBuilder(eb)
		els(eBuilder)
		eBuilder.Create(OpSCFYield, nil, nil)
	}
	return op
}

// Br creates cf.br to dest with block arguments.
func (b *Builder) Br(dest *Block, args ...*Value) *Op {
	op := b.Create(OpBr, args, nil)
	op.Succs = []*Block{dest}
	return op
}

// CondBr creates cf.cond_br.
func (b *Builder) CondBr(cond *Value, t *Block, tArgs []*Value, f *Block, fArgs []*Value) *Op {
	operands := append([]*Value{cond}, tArgs...)
	operands = append(operands, fArgs...)
	op := b.Create(OpCondBr, operands, nil)
	op.Succs = []*Block{t, f}
	op.SetAttr(AttrTrueCount, I(int64(len(tArgs))))
	op.SetAttr(AttrFalseCount, I(int64(len(fArgs))))
	return op
}

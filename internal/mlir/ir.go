package mlir

import (
	"fmt"
)

// Value is an SSA value: either the result of an op or a block argument.
type Value struct {
	Ty *Type
	// Def is the defining op (nil for block arguments).
	Def *Op
	// ResNo is the result index within Def.
	ResNo int
	// Owner is the owning block for block arguments (nil for results).
	Owner *Block
	// ArgNo is the argument index within Owner.
	ArgNo int
}

// Type returns the value's type.
func (v *Value) Type() *Type { return v.Ty }

// IsBlockArg reports whether v is a block argument.
func (v *Value) IsBlockArg() bool { return v.Owner != nil }

// Op is a generic operation: a name, SSA operands and results, an attribute
// dictionary, nested regions, and CFG successors for terminators.
type Op struct {
	Name     string
	Operands []*Value
	Results  []*Value
	Attrs    map[string]Attr
	Regions  []*Region
	Succs    []*Block

	parent *Block
}

// opNode fuses an op, its single result value, and the one-element result
// slice into one allocation — the dominant op shape (arithmetic, loads,
// casts) on the parse/clone hot path.
type opNode struct {
	op      Op
	val     Value
	results [1]*Value
}

// NewOp constructs a detached op with results of the given types. The
// attribute map is allocated lazily by SetAttr: most ops carry none.
func NewOp(name string, operands []*Value, resultTypes []*Type) *Op {
	if len(resultTypes) == 1 {
		n := &opNode{}
		n.op = Op{Name: name, Operands: operands}
		n.val = Value{Ty: resultTypes[0], Def: &n.op}
		n.results[0] = &n.val
		n.op.Results = n.results[:]
		return &n.op
	}
	op := &Op{Name: name, Operands: operands}
	if len(resultTypes) > 0 {
		vals := make([]Value, len(resultTypes))
		op.Results = make([]*Value, len(resultTypes))
		for i, t := range resultTypes {
			vals[i] = Value{Ty: t, Def: op, ResNo: i}
			op.Results[i] = &vals[i]
		}
	}
	return op
}

// Block returns the block containing the op, or nil if detached.
func (o *Op) Block() *Block { return o.parent }

// Result returns result i.
func (o *Op) Result(i int) *Value { return o.Results[i] }

// IntAttr returns the int attribute value for key, with ok reporting presence.
func (o *Op) IntAttr(key string) (int64, bool) {
	a, ok := o.Attrs[key].(IntAttr)
	if !ok {
		return 0, false
	}
	return a.Value, true
}

// StringAttr returns the string attribute for key.
func (o *Op) StringAttr(key string) (string, bool) {
	a, ok := o.Attrs[key].(StringAttr)
	if !ok {
		return "", false
	}
	return string(a), true
}

// MapAttr returns the affine map attribute for key.
func (o *Op) MapAttr(key string) (*AffineMap, bool) {
	a, ok := o.Attrs[key].(AffineMapAttr)
	if !ok {
		return nil, false
	}
	return a.Map, true
}

// HasAttr reports whether key is present.
func (o *Op) HasAttr(key string) bool {
	_, ok := o.Attrs[key]
	return ok
}

// SetAttr sets an attribute.
func (o *Op) SetAttr(key string, a Attr) {
	if o.Attrs == nil {
		o.Attrs = map[string]Attr{}
	}
	o.Attrs[key] = a
}

// RemoveFromBlock unlinks the op from its parent block.
func (o *Op) RemoveFromBlock() {
	if o.parent == nil {
		return
	}
	o.parent.Remove(o)
}

// Erase unlinks the op; results must be unused (not checked here — the
// verifier catches dangling uses).
func (o *Op) Erase() { o.RemoveFromBlock() }

// Dialect returns the dialect prefix of the op name ("arith" for
// "arith.addf"); ops without a dot return the whole name.
func (o *Op) Dialect() string {
	for i := 0; i < len(o.Name); i++ {
		if o.Name[i] == '.' {
			return o.Name[:i]
		}
	}
	return o.Name
}

// IsTerminator reports whether the op terminates a block.
func (o *Op) IsTerminator() bool {
	switch o.Name {
	case OpReturn, OpAffineYield, OpSCFYield, OpBr, OpCondBr, OpSCFCondition:
		return true
	}
	return false
}

// Block is an ordered list of ops with typed arguments.
type Block struct {
	Args []*Value
	Ops  []*Op

	parent *Region
}

// NewBlock constructs a detached block with arguments of the given types.
func NewBlock(argTypes ...*Type) *Block {
	b := &Block{}
	for _, t := range argTypes {
		b.AddArg(t)
	}
	return b
}

// AddArg appends a new block argument of type t and returns it.
func (b *Block) AddArg(t *Type) *Value {
	v := &Value{Ty: t, Owner: b, ArgNo: len(b.Args)}
	b.Args = append(b.Args, v)
	return v
}

// Region returns the region containing the block.
func (b *Block) Region() *Region { return b.parent }

// ParentOp returns the op whose region contains this block, or nil.
func (b *Block) ParentOp() *Op {
	if b.parent == nil {
		return nil
	}
	return b.parent.parent
}

// Append adds op at the end of the block.
func (b *Block) Append(op *Op) {
	op.parent = b
	b.Ops = append(b.Ops, op)
}

// InsertBefore inserts op immediately before ref, which must be in b.
func (b *Block) InsertBefore(op, ref *Op) {
	idx := b.index(ref)
	if idx < 0 {
		panic("mlir: InsertBefore reference op not in block")
	}
	op.parent = b
	b.Ops = append(b.Ops, nil)
	copy(b.Ops[idx+1:], b.Ops[idx:])
	b.Ops[idx] = op
}

// InsertAfter inserts op immediately after ref, which must be in b.
func (b *Block) InsertAfter(op, ref *Op) {
	idx := b.index(ref)
	if idx < 0 {
		panic("mlir: InsertAfter reference op not in block")
	}
	op.parent = b
	b.Ops = append(b.Ops, nil)
	copy(b.Ops[idx+2:], b.Ops[idx+1:])
	b.Ops[idx+1] = op
}

// Remove unlinks op from the block.
func (b *Block) Remove(op *Op) {
	idx := b.index(op)
	if idx < 0 {
		return
	}
	copy(b.Ops[idx:], b.Ops[idx+1:])
	b.Ops = b.Ops[:len(b.Ops)-1]
	op.parent = nil
}

func (b *Block) index(op *Op) int {
	for i, o := range b.Ops {
		if o == op {
			return i
		}
	}
	return -1
}

// Terminator returns the block's final op, or nil when empty.
func (b *Block) Terminator() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	return b.Ops[len(b.Ops)-1]
}

// Region is an ordered list of blocks owned by an op.
type Region struct {
	Blocks []*Block

	parent *Op
}

// ParentOp returns the op owning the region.
func (r *Region) ParentOp() *Op { return r.parent }

// AddBlock appends a block to the region.
func (r *Region) AddBlock(b *Block) {
	b.parent = r
	r.Blocks = append(r.Blocks, b)
}

// InsertBlockAfter inserts b immediately after ref in the region.
func (r *Region) InsertBlockAfter(b, ref *Block) {
	b.parent = r
	for i, x := range r.Blocks {
		if x == ref {
			r.Blocks = append(r.Blocks, nil)
			copy(r.Blocks[i+2:], r.Blocks[i+1:])
			r.Blocks[i+1] = b
			return
		}
	}
	r.Blocks = append(r.Blocks, b)
}

// SplitBlock moves every op after ref (exclusive) from b into a new block,
// which is inserted right after b in the region, and returns it.
func (b *Block) SplitBlock(ref *Op) *Block {
	idx := b.index(ref)
	if idx < 0 {
		panic("mlir: SplitBlock reference op not in block")
	}
	cont := NewBlock()
	moved := b.Ops[idx+1:]
	b.Ops = b.Ops[:idx+1]
	for _, op := range moved {
		op.parent = cont
		cont.Ops = append(cont.Ops, op)
	}
	b.parent.InsertBlockAfter(cont, b)
	return cont
}

// Entry returns the entry block, or nil when the region is empty.
func (r *Region) Entry() *Block {
	if len(r.Blocks) == 0 {
		return nil
	}
	return r.Blocks[0]
}

// AddRegion appends a fresh region to op and returns it.
func (o *Op) AddRegion() *Region {
	r := &Region{parent: o}
	o.Regions = append(o.Regions, r)
	return r
}

// Module is the top-level container: a builtin.module op with one region
// holding one block of func.func ops.
type Module struct {
	Op *Op
}

// NewModule returns an empty module.
func NewModule() *Module {
	op := NewOp(OpModule, nil, nil)
	r := op.AddRegion()
	r.AddBlock(NewBlock())
	return &Module{Op: op}
}

// Body returns the module's single block.
func (m *Module) Body() *Block { return m.Op.Regions[0].Blocks[0] }

// Funcs returns all func.func ops in the module.
func (m *Module) Funcs() []*Op {
	var out []*Op
	for _, op := range m.Body().Ops {
		if op.Name == OpFunc {
			out = append(out, op)
		}
	}
	return out
}

// FindFunc returns the func.func with the given symbol name, or nil.
func (m *Module) FindFunc(name string) *Op {
	for _, f := range m.Funcs() {
		if n, _ := f.StringAttr(AttrSymName); n == name {
			return f
		}
	}
	return nil
}

// Walk visits op and all nested ops in pre-order. Returning false from fn
// skips the op's regions (but continues with siblings).
func Walk(op *Op, fn func(*Op) bool) {
	if !fn(op) {
		return
	}
	for _, r := range op.Regions {
		for _, b := range r.Blocks {
			// Copy: callbacks may mutate the op list.
			ops := make([]*Op, len(b.Ops))
			copy(ops, b.Ops)
			for _, o := range ops {
				Walk(o, fn)
			}
		}
	}
}

// WalkPost visits op and all nested ops in post-order.
func WalkPost(op *Op, fn func(*Op)) {
	for _, r := range op.Regions {
		for _, b := range r.Blocks {
			ops := make([]*Op, len(b.Ops))
			copy(ops, b.Ops)
			for _, o := range ops {
				WalkPost(o, fn)
			}
		}
	}
	fn(op)
}

// ReplaceAllUses rewrites every use of old with new within root's regions.
func ReplaceAllUses(root *Op, old, niu *Value) {
	Walk(root, func(o *Op) bool {
		for i, v := range o.Operands {
			if v == old {
				o.Operands[i] = niu
			}
		}
		return true
	})
}

// HasUses reports whether v is used by any op under root.
func HasUses(root *Op, v *Value) bool {
	found := false
	Walk(root, func(o *Op) bool {
		if found {
			return false
		}
		for _, ov := range o.Operands {
			if ov == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// EnclosingFunc returns the func.func containing the op, or nil.
func EnclosingFunc(op *Op) *Op {
	for o := op; o != nil; {
		if o.Name == OpFunc {
			return o
		}
		if o.parent == nil || o.parent.parent == nil {
			return nil
		}
		o = o.parent.parent.parent
	}
	return nil
}

// FuncName returns the symbol name of a func.func.
func FuncName(f *Op) string {
	n, _ := f.StringAttr(AttrSymName)
	return n
}

// FuncBody returns the entry block of a func.func.
func FuncBody(f *Op) *Block {
	if len(f.Regions) == 0 {
		return nil
	}
	return f.Regions[0].Entry()
}

// String renders a short debug description of the op.
func (o *Op) String() string {
	return fmt.Sprintf("<op %s>", o.Name)
}

package mlir

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the module in the textual format understood by the parser.
func (m *Module) Print() string {
	var sb strings.Builder
	sb.WriteString("module {\n")
	for _, op := range m.Body().Ops {
		p := &printer{sb: &sb, names: map[*Value]string{}, blockNames: map[*Block]string{}}
		p.printOp(op, 1)
	}
	sb.WriteString("}\n")
	return sb.String()
}

type printer struct {
	sb         *strings.Builder
	names      map[*Value]string
	blockNames map[*Block]string
	nextID     int
	nextBlock  int
}

func (p *printer) name(v *Value) string {
	if n, ok := p.names[v]; ok {
		return n
	}
	n := fmt.Sprintf("%%%d", p.nextID)
	p.nextID++
	p.names[v] = n
	return n
}

func (p *printer) argName(v *Value) string {
	if n, ok := p.names[v]; ok {
		return n
	}
	n := fmt.Sprintf("%%arg%d", v.ArgNo)
	p.names[v] = n
	return n
}

func (p *printer) blockName(b *Block) string {
	if n, ok := p.blockNames[b]; ok {
		return n
	}
	n := fmt.Sprintf("^bb%d", p.nextBlock)
	p.nextBlock++
	p.blockNames[b] = n
	return n
}

func (p *printer) indent(depth int) {
	for i := 0; i < depth; i++ {
		p.sb.WriteString("  ")
	}
}

func (p *printer) operandList(vals []*Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = p.name(v)
	}
	return strings.Join(parts, ", ")
}

// trailingAttrs renders the non-syntax attributes of op.
func (p *printer) trailingAttrs(op *Op, skip ...string) string {
	sk := map[string]bool{}
	for _, s := range skip {
		sk[s] = true
	}
	s := attrsString(op.Attrs, sk)
	if s == "" {
		return ""
	}
	return " " + s
}

func (p *printer) printRegionBody(r *Region, depth int) {
	for _, blk := range r.Blocks {
		if len(r.Blocks) > 1 {
			p.indent(depth)
			p.sb.WriteString(p.blockName(blk))
			if len(blk.Args) > 0 {
				p.sb.WriteString("(")
				for i, a := range blk.Args {
					if i > 0 {
						p.sb.WriteString(", ")
					}
					fmt.Fprintf(p.sb, "%s: %s", p.name(a), a.Type())
				}
				p.sb.WriteString(")")
			}
			p.sb.WriteString(":\n")
		}
		for _, op := range blk.Ops {
			// Elide trivially-empty implicit terminators.
			if (op.Name == OpAffineYield || op.Name == OpSCFYield) &&
				len(op.Operands) == 0 && len(op.Attrs) == 0 {
				continue
			}
			p.printOp(op, depth+1)
		}
	}
}

func (p *printer) mapWithOperands(m *AffineMap, operands []*Value) string {
	if v, ok := m.IsSingleConstant(); ok && len(operands) == 0 {
		return fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("affine_map<%s>(%s)", m, p.operandList(operands))
}

func (p *printer) printOp(op *Op, depth int) {
	p.indent(depth)
	switch op.Name {
	case OpFunc:
		name, _ := op.StringAttr(AttrSymName)
		fmt.Fprintf(p.sb, "func.func @%s(", name)
		entry := FuncBody(op)
		for i, a := range entry.Args {
			if i > 0 {
				p.sb.WriteString(", ")
			}
			fmt.Fprintf(p.sb, "%s: %s", p.argName(a), a.Type())
		}
		p.sb.WriteString(")")
		if res, ok := op.Attrs[AttrResultTypes].(ArrayAttr); ok && len(res) > 0 {
			parts := make([]string, len(res))
			for i, r := range res {
				parts[i] = r.(TypeAttr).Ty.String()
			}
			p.sb.WriteString(" -> (" + strings.Join(parts, ", ") + ")")
		}
		extra := p.trailingAttrs(op, AttrSymName, AttrResultTypes)
		if extra != "" {
			p.sb.WriteString(" attributes" + extra)
		}
		p.sb.WriteString(" {\n")
		p.printRegionBody(op.Regions[0], depth)
		p.indent(depth)
		p.sb.WriteString("}\n")
		return

	case OpConstant:
		fmt.Fprintf(p.sb, "%s = arith.constant ", p.name(op.Result(0)))
		switch a := op.Attrs[AttrValue].(type) {
		case IntAttr:
			fmt.Fprintf(p.sb, "%d", a.Value)
		case FloatAttr:
			s := a.String()
			// Strip the ": type" suffix; the result type is printed below.
			if i := strings.Index(s, " : "); i >= 0 {
				s = s[:i]
			}
			p.sb.WriteString(s)
		}
		fmt.Fprintf(p.sb, " : %s%s\n", op.Result(0).Type(), p.trailingAttrs(op, AttrValue))
		return

	case OpAddI, OpSubI, OpMulI, OpDivSI, OpRemSI, OpAddF, OpSubF, OpMulF, OpDivF,
		OpMinSI, OpMaxSI:
		fmt.Fprintf(p.sb, "%s = %s %s : %s%s\n", p.name(op.Result(0)), op.Name,
			p.operandList(op.Operands), op.Result(0).Type(), p.trailingAttrs(op))
		return

	case OpNegF, OpMathSqrt, OpMathExp:
		fmt.Fprintf(p.sb, "%s = %s %s : %s%s\n", p.name(op.Result(0)), op.Name,
			p.operandList(op.Operands), op.Result(0).Type(), p.trailingAttrs(op))
		return

	case OpCmpI, OpCmpF:
		pred, _ := op.StringAttr(AttrPredicate)
		fmt.Fprintf(p.sb, "%s = %s %s, %s : %s%s\n", p.name(op.Result(0)), op.Name,
			pred, p.operandList(op.Operands), op.Operands[0].Type(),
			p.trailingAttrs(op, AttrPredicate))
		return

	case OpSelect:
		fmt.Fprintf(p.sb, "%s = arith.select %s : %s%s\n", p.name(op.Result(0)),
			p.operandList(op.Operands), op.Result(0).Type(), p.trailingAttrs(op))
		return

	case OpIndexCast, OpSIToFP, OpFPToSI, OpExtF, OpTruncF:
		fmt.Fprintf(p.sb, "%s = %s %s : %s to %s%s\n", p.name(op.Result(0)), op.Name,
			p.name(op.Operands[0]), op.Operands[0].Type(), op.Result(0).Type(),
			p.trailingAttrs(op))
		return

	case OpAlloc, OpAlloca:
		fmt.Fprintf(p.sb, "%s = %s() : %s%s\n", p.name(op.Result(0)), op.Name,
			op.Result(0).Type(), p.trailingAttrs(op))
		return

	case OpDealloc:
		fmt.Fprintf(p.sb, "memref.dealloc %s : %s%s\n", p.name(op.Operands[0]),
			op.Operands[0].Type(), p.trailingAttrs(op))
		return

	case OpLoad:
		fmt.Fprintf(p.sb, "%s = memref.load %s[%s] : %s%s\n", p.name(op.Result(0)),
			p.name(op.Operands[0]), p.operandList(op.Operands[1:]),
			op.Operands[0].Type(), p.trailingAttrs(op))
		return

	case OpStore:
		fmt.Fprintf(p.sb, "memref.store %s, %s[%s] : %s%s\n", p.name(op.Operands[0]),
			p.name(op.Operands[1]), p.operandList(op.Operands[2:]),
			op.Operands[1].Type(), p.trailingAttrs(op))
		return

	case OpAffineLoad:
		v := AffineAccessView{op}
		m := v.Map()
		mapPart := ""
		if !m.IsIdentity() {
			mapPart = fmt.Sprintf(" map affine_map<%s>", m)
		}
		fmt.Fprintf(p.sb, "%s = affine.load %s[%s]%s : %s%s\n", p.name(op.Result(0)),
			p.name(v.MemRef()), p.operandList(v.MapOperands()), mapPart,
			v.MemRef().Type(), p.trailingAttrs(op, AttrMap))
		return

	case OpAffineStore:
		v := AffineAccessView{op}
		m := v.Map()
		mapPart := ""
		if !m.IsIdentity() {
			mapPart = fmt.Sprintf(" map affine_map<%s>", m)
		}
		fmt.Fprintf(p.sb, "affine.store %s, %s[%s]%s : %s%s\n", p.name(v.StoredValue()),
			p.name(v.MemRef()), p.operandList(v.MapOperands()), mapPart,
			v.MemRef().Type(), p.trailingAttrs(op, AttrMap))
		return

	case OpAffineApply:
		m, _ := op.MapAttr(AttrMap)
		fmt.Fprintf(p.sb, "%s = affine.apply affine_map<%s>(%s)%s\n", p.name(op.Result(0)),
			m, p.operandList(op.Operands), p.trailingAttrs(op, AttrMap))
		return

	case OpAffineFor:
		f := AffineForView{op}
		iv := p.name(f.IV())
		fmt.Fprintf(p.sb, "affine.for %s = %s to %s step %d {\n", iv,
			p.mapWithOperands(f.LowerMap(), f.LowerOperands()),
			p.mapWithOperands(f.UpperMap(), f.UpperOperands()), f.Step())
		p.printRegionBody(op.Regions[0], depth)
		p.indent(depth)
		p.sb.WriteString("}")
		extra := p.trailingAttrs(op, AttrLowerMap, AttrUpperMap, AttrStep, AttrLBCount)
		p.sb.WriteString(extra + "\n")
		return

	case OpSCFFor:
		iv := p.name(op.Regions[0].Blocks[0].Args[0])
		fmt.Fprintf(p.sb, "scf.for %s = %s to %s step %s {\n", iv,
			p.name(op.Operands[0]), p.name(op.Operands[1]), p.name(op.Operands[2]))
		p.printRegionBody(op.Regions[0], depth)
		p.indent(depth)
		p.sb.WriteString("}" + p.trailingAttrs(op) + "\n")
		return

	case OpSCFIf:
		fmt.Fprintf(p.sb, "scf.if %s {\n", p.name(op.Operands[0]))
		p.printRegionBody(op.Regions[0], depth)
		p.indent(depth)
		p.sb.WriteString("}")
		if len(op.Regions) > 1 {
			p.sb.WriteString(" else {\n")
			p.printRegionBody(op.Regions[1], depth)
			p.indent(depth)
			p.sb.WriteString("}")
		}
		p.sb.WriteString(p.trailingAttrs(op) + "\n")
		return

	case OpAffineYield, OpSCFYield:
		fmt.Fprintf(p.sb, "%s", op.Name)
		if len(op.Operands) > 0 {
			p.sb.WriteString(" " + p.operandList(op.Operands))
		}
		p.sb.WriteString(p.trailingAttrs(op) + "\n")
		return

	case OpReturn:
		p.sb.WriteString("func.return")
		if len(op.Operands) > 0 {
			parts := make([]string, len(op.Operands))
			for i, v := range op.Operands {
				parts[i] = fmt.Sprintf("%s : %s", p.name(v), v.Type())
			}
			p.sb.WriteString(" " + strings.Join(parts, ", "))
		}
		p.sb.WriteString(p.trailingAttrs(op) + "\n")
		return

	case OpCall:
		callee, _ := op.Attrs[AttrCallee].(SymbolRefAttr)
		if len(op.Results) > 0 {
			names := make([]string, len(op.Results))
			for i, r := range op.Results {
				names[i] = p.name(r)
			}
			p.sb.WriteString(strings.Join(names, ", ") + " = ")
		}
		argTypes := make([]string, len(op.Operands))
		for i, v := range op.Operands {
			argTypes[i] = v.Type().String()
		}
		resTypes := make([]string, len(op.Results))
		for i, r := range op.Results {
			resTypes[i] = r.Type().String()
		}
		fmt.Fprintf(p.sb, "func.call @%s(%s) : (%s) -> (%s)%s\n", string(callee),
			p.operandList(op.Operands), strings.Join(argTypes, ", "),
			strings.Join(resTypes, ", "), p.trailingAttrs(op, AttrCallee))
		return

	case OpBr:
		fmt.Fprintf(p.sb, "cf.br %s", p.blockName(op.Succs[0]))
		if len(op.Operands) > 0 {
			p.sb.WriteString("(" + p.operandList(op.Operands) + ")")
		}
		p.sb.WriteString(p.trailingAttrs(op) + "\n")
		return

	case OpCondBr:
		tc, _ := op.IntAttr(AttrTrueCount)
		tArgs := op.Operands[1 : 1+tc]
		fArgs := op.Operands[1+tc:]
		fmt.Fprintf(p.sb, "cf.cond_br %s, %s", p.name(op.Operands[0]), p.blockName(op.Succs[0]))
		if len(tArgs) > 0 {
			p.sb.WriteString("(" + p.operandList(tArgs) + ")")
		}
		p.sb.WriteString(", " + p.blockName(op.Succs[1]))
		if len(fArgs) > 0 {
			p.sb.WriteString("(" + p.operandList(fArgs) + ")")
		}
		p.sb.WriteString(p.trailingAttrs(op, AttrTrueCount, AttrFalseCount) + "\n")
		return
	}

	// Generic fallback form: %r = "name"(%ops) {attrs} : (inTypes) -> (outTypes)
	if len(op.Results) > 0 {
		names := make([]string, len(op.Results))
		for i, r := range op.Results {
			names[i] = p.name(r)
		}
		p.sb.WriteString(strings.Join(names, ", ") + " = ")
	}
	fmt.Fprintf(p.sb, "%q(%s)", op.Name, p.operandList(op.Operands))
	if s := attrsString(op.Attrs, nil); s != "" {
		p.sb.WriteString(" " + s)
	}
	inT := make([]string, len(op.Operands))
	for i, v := range op.Operands {
		inT[i] = v.Type().String()
	}
	outT := make([]string, len(op.Results))
	for i, r := range op.Results {
		outT[i] = r.Type().String()
	}
	fmt.Fprintf(p.sb, " : (%s) -> (%s)\n", strings.Join(inT, ", "), strings.Join(outT, ", "))
	for _, r := range op.Regions {
		p.indent(depth)
		p.sb.WriteString("{\n")
		p.printRegionBody(r, depth)
		p.indent(depth)
		p.sb.WriteString("}\n")
	}
}

// OpNamesUsed returns the sorted set of op names appearing in the module,
// useful for diagnostics and tests.
func (m *Module) OpNamesUsed() []string {
	set := map[string]bool{}
	Walk(m.Op, func(o *Op) bool {
		set[o.Name] = true
		return true
	})
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package mlir

// CloneOp deep-copies op, remapping operands through vmap (values missing
// from vmap are used as-is, which is correct for values defined outside the
// cloned subtree). Cloned results and region block arguments are added to
// vmap so later clones see them. Successor blocks are remapped through bmap
// when present.
func CloneOp(op *Op, vmap map[*Value]*Value, bmap map[*Block]*Block) *Op {
	mapped := func(v *Value) *Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v
	}
	operands := make([]*Value, len(op.Operands))
	for i, v := range op.Operands {
		operands[i] = mapped(v)
	}
	resultTypes := make([]*Type, len(op.Results))
	for i, r := range op.Results {
		resultTypes[i] = r.Type()
	}
	clone := NewOp(op.Name, operands, resultTypes)
	for k, v := range op.Attrs {
		clone.SetAttr(k, v)
	}
	for i, r := range op.Results {
		vmap[r] = clone.Results[i]
	}
	for _, s := range op.Succs {
		if bmap != nil {
			if nb, ok := bmap[s]; ok {
				clone.Succs = append(clone.Succs, nb)
				continue
			}
		}
		clone.Succs = append(clone.Succs, s)
	}
	for _, r := range op.Regions {
		nr := clone.AddRegion()
		// First create all blocks so forward branch references resolve.
		newBlocks := make([]*Block, len(r.Blocks))
		for bi, b := range r.Blocks {
			nb := NewBlock()
			for _, a := range b.Args {
				na := nb.AddArg(a.Type())
				vmap[a] = na
			}
			newBlocks[bi] = nb
			nr.AddBlock(nb)
			if bmap == nil {
				bmap = map[*Block]*Block{}
			}
			bmap[b] = nb
		}
		for bi, b := range r.Blocks {
			for _, o := range b.Ops {
				newBlocks[bi].Append(CloneOp(o, vmap, bmap))
			}
		}
	}
	return clone
}

// CloneBlockOpsInto clones every op of src (except its terminator when
// dropTerminator is set) into dst, remapping through vmap.
func CloneBlockOpsInto(src, dst *Block, vmap map[*Value]*Value, dropTerminator bool) {
	for i, op := range src.Ops {
		if dropTerminator && i == len(src.Ops)-1 && op.IsTerminator() {
			break
		}
		dst.Append(CloneOp(op, vmap, nil))
	}
}

// Package mlir implements a compact multi-level intermediate representation
// modeled on MLIR: ops with regions, SSA values, dialect attributes, affine
// expressions, and a textual format that round-trips through the printer and
// parser. It provides the affine/scf/cf/memref/arith/func dialect subset the
// HLS adaptor flow needs.
package mlir

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// TypeKind discriminates the supported type constructors.
type TypeKind int

const (
	// KindInt is a signless integer type iN.
	KindInt TypeKind = iota
	// KindFloat is an IEEE float type f32 or f64.
	KindFloat
	// KindIndex is the platform index type.
	KindIndex
	// KindMemRef is a shaped buffer type memref<...x elem>.
	KindMemRef
	// KindNone is the unit type used by ops without a meaningful result.
	KindNone
)

// Type is a structural MLIR type. Types are immutable after construction;
// compare them with Equal, not pointer identity.
type Type struct {
	Kind  TypeKind
	Width int     // bit width for KindInt and KindFloat
	Elem  *Type   // element type for KindMemRef
	Shape []int64 // memref dimensions; DynamicDim marks a dynamic extent
}

// DynamicDim marks a dynamic memref dimension.
const DynamicDim = int64(-1)

var (
	i1Type    = &Type{Kind: KindInt, Width: 1}
	i32Type   = &Type{Kind: KindInt, Width: 32}
	i64Type   = &Type{Kind: KindInt, Width: 64}
	f32Type   = &Type{Kind: KindFloat, Width: 32}
	f64Type   = &Type{Kind: KindFloat, Width: 64}
	indexType = &Type{Kind: KindIndex}
	noneType  = &Type{Kind: KindNone}
)

// I1 returns the 1-bit integer (boolean) type.
func I1() *Type { return i1Type }

// I32 returns the 32-bit integer type.
func I32() *Type { return i32Type }

// I64 returns the 64-bit integer type.
func I64() *Type { return i64Type }

// intTypes interns the off-mainline integer widths (the common ones are
// package singletons). Types are immutable, so sharing is sound.
var intTypes sync.Map // width -> *Type

// IntType returns the signless integer type of the given bit width.
func IntType(width int) *Type {
	switch width {
	case 1:
		return i1Type
	case 32:
		return i32Type
	case 64:
		return i64Type
	}
	if t, ok := intTypes.Load(width); ok {
		return t.(*Type)
	}
	t, _ := intTypes.LoadOrStore(width, &Type{Kind: KindInt, Width: width})
	return t.(*Type)
}

// F32 returns the 32-bit float type.
func F32() *Type { return f32Type }

// F64 returns the 64-bit float type.
func F64() *Type { return f64Type }

// FloatType returns the float type of the given bit width (32 or 64).
func FloatType(width int) *Type {
	if width == 64 {
		return f64Type
	}
	return f32Type
}

// Index returns the index type.
func Index() *Type { return indexType }

// None returns the unit type.
func None() *Type { return noneType }

// memrefTypes interns memref types by element identity and shape. Scalars
// are singletons, so structurally equal memrefs built through this
// package's constructors share one node — a kernel's parse touches the
// same handful of buffer types thousands of times.
var memrefTypes sync.Map // memrefKey -> *Type

type memrefKey struct {
	elem  *Type
	shape string
}

// MemRef returns the memref type with the given shape and element type.
func MemRef(shape []int64, elem *Type) *Type {
	var sb strings.Builder
	for _, d := range shape {
		sb.WriteString(strconv.FormatInt(d, 10))
		sb.WriteByte('x')
	}
	key := memrefKey{elem: elem, shape: sb.String()}
	if t, ok := memrefTypes.Load(key); ok {
		return t.(*Type)
	}
	s := make([]int64, len(shape))
	copy(s, shape)
	t, _ := memrefTypes.LoadOrStore(key, &Type{Kind: KindMemRef, Elem: elem, Shape: s})
	return t.(*Type)
}

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t != nil && t.Kind == KindInt }

// IsFloat reports whether t is a float type.
func (t *Type) IsFloat() bool { return t != nil && t.Kind == KindFloat }

// IsIndex reports whether t is the index type.
func (t *Type) IsIndex() bool { return t != nil && t.Kind == KindIndex }

// IsMemRef reports whether t is a memref type.
func (t *Type) IsMemRef() bool { return t != nil && t.Kind == KindMemRef }

// IsIntOrIndex reports whether t is an integer or index type.
func (t *Type) IsIntOrIndex() bool { return t.IsInt() || t.IsIndex() }

// HasStaticShape reports whether every memref dimension is static.
func (t *Type) HasStaticShape() bool {
	if !t.IsMemRef() {
		return false
	}
	for _, d := range t.Shape {
		if d == DynamicDim {
			return false
		}
	}
	return true
}

// NumElements returns the product of the static memref dimensions.
// It panics on dynamic shapes.
func (t *Type) NumElements() int64 {
	if !t.HasStaticShape() {
		panic("mlir: NumElements on non-static type " + t.String())
	}
	n := int64(1)
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindInt, KindFloat:
		return t.Width == o.Width
	case KindIndex, KindNone:
		return true
	case KindMemRef:
		if len(t.Shape) != len(o.Shape) || !t.Elem.Equal(o.Elem) {
			return false
		}
		for i := range t.Shape {
			if t.Shape[i] != o.Shape[i] {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the type in MLIR syntax (i32, f64, index, memref<4x8xf32>).
func (t *Type) String() string {
	if t == nil {
		return "<nil-type>"
	}
	switch t.Kind {
	case KindInt:
		return fmt.Sprintf("i%d", t.Width)
	case KindFloat:
		return fmt.Sprintf("f%d", t.Width)
	case KindIndex:
		return "index"
	case KindNone:
		return "none"
	case KindMemRef:
		var sb strings.Builder
		sb.WriteString("memref<")
		for _, d := range t.Shape {
			if d == DynamicDim {
				sb.WriteString("?x")
			} else {
				fmt.Fprintf(&sb, "%dx", d)
			}
		}
		sb.WriteString(t.Elem.String())
		sb.WriteString(">")
		return sb.String()
	}
	return "<unknown-type>"
}

package lower

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/mlir"
	"repro/internal/mlir/passes"
)

func buildGemm(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F64())
	_, args := m.AddFunc("gemm", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("gemm")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, k *mlir.Value) {
				a := b.AffineLoad(args[0], i, k)
				x := b.AffineLoad(args[1], k, j)
				c := b.AffineLoad(args[2], i, j)
				s := b.AddF(c, b.MulF(a, x))
				b.AffineStore(s, args[2], i, j)
			})
		})
	})
	b.Return()
	return m
}

func buildStencil(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n}, mlir.F64())
	_, args := m.AddFunc("sten", []*mlir.Type{ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("sten")))
	b.AffineForConst(1, n-1, 1, func(b *mlir.Builder, i *mlir.Value) {
		left := b.AffineLoadMap(args[0], mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(-1))), i)
		mid := b.AffineLoad(args[0], i)
		right := b.AffineLoadMap(args[0], mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(1))), i)
		s := b.AddF(b.AddF(left, mid), right)
		b.AffineStore(s, args[1], i)
	})
	b.Return()
	return m
}

func run(t *testing.T, m *mlir.Module, name string, n int64, rank int, seed int64) [][]float64 {
	t.Helper()
	f := m.FindFunc(name)
	if f == nil {
		t.Fatalf("func %s missing", name)
	}
	var bufs []*mlir.MemBuf
	r := rand.New(rand.NewSource(seed))
	for _, a := range mlir.FuncBody(f).Args {
		buf := mlir.NewMemBuf(a.Type())
		for i := range buf.F {
			buf.F[i] = r.Float64()
		}
		bufs = append(bufs, buf)
	}
	if err := m.Interpret(name, bufs...); err != nil {
		t.Fatalf("interpret: %v", err)
	}
	out := make([][]float64, len(bufs))
	for i, b := range bufs {
		out[i] = b.F
	}
	_ = n
	_ = rank
	return out
}

func sameAll(t *testing.T, a, b [][]float64) {
	t.Helper()
	for bi := range a {
		for i := range a[bi] {
			d := a[bi][i] - b[bi][i]
			if d < -1e-9 || d > 1e-9 {
				t.Fatalf("buffer %d element %d differs: %g vs %g", bi, i, a[bi][i], b[bi][i])
			}
		}
	}
}

func TestAffineToSCFPreservesSemantics(t *testing.T) {
	ref := run(t, buildGemm(5), "gemm", 5, 2, 7)
	m := buildGemm(5)
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	// No affine ops should remain.
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Dialect() == "affine" {
			t.Errorf("affine op %s survived lowering", o.Name)
		}
		return true
	})
	got := run(t, m, "gemm", 5, 2, 7)
	sameAll(t, ref, got)
}

func TestAffineToSCFStencilMaps(t *testing.T) {
	ref := run(t, buildStencil(16), "sten", 16, 1, 3)
	m := buildStencil(16)
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	got := run(t, m, "sten", 16, 1, 3)
	sameAll(t, ref, got)
	// The -1/+1 access maps must expand into index arithmetic.
	adds := 0
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpAddI {
			adds++
		}
		return true
	})
	if adds == 0 {
		t.Error("expected expanded index arithmetic")
	}
}

func TestAffineToSCFKeepsDirectives(t *testing.T) {
	m := buildGemm(4)
	if err := passes.PipelineInnermost(2).Run(m); err != nil {
		t.Fatal(err)
	}
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	found := false
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpSCFFor && o.HasAttr(mlir.AttrPipeline) {
			found = true
			if ii, _ := o.IntAttr(mlir.AttrII); ii != 2 {
				t.Error("II lost in lowering")
			}
		}
		return true
	})
	if !found {
		t.Error("pipeline directive lost in affine lowering")
	}
}

func TestSCFToCFStructure(t *testing.T) {
	m := buildGemm(4)
	if err := passes.PipelineInnermost(1).Run(m); err != nil {
		t.Fatal(err)
	}
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc("gemm")
	// 3 nested loops: entry + 3*(header+body) + 3 cont blocks = 10 blocks.
	if n := len(f.Regions[0].Blocks); n != 10 {
		t.Errorf("want 10 blocks after CFG lowering, got %d", n)
	}
	// No structured ops remain.
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		switch o.Name {
		case mlir.OpSCFFor, mlir.OpSCFIf, mlir.OpAffineFor:
			t.Errorf("structured op %s survived lowering", o.Name)
		}
		return true
	})
	// Every block terminated.
	for _, b := range f.Regions[0].Blocks {
		term := b.Terminator()
		if term == nil || !term.IsTerminator() {
			t.Error("block without terminator after lowering")
		}
	}
	// Pipeline directive must ride on exactly one latch branch.
	latches := 0
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpBr && o.HasAttr(mlir.AttrPipeline) {
			latches++
		}
		return true
	})
	if latches != 1 {
		t.Errorf("want pipeline metadata on 1 latch, got %d", latches)
	}
}

func TestSCFToCFWithIf(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F64())
	_, args := m.AddFunc("clamp", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("clamp")))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		zero := b.ConstantFloat(0, mlir.F64())
		neg := b.CmpF(mlir.PredOLT, v, zero)
		b.SCFIf(neg, func(b *mlir.Builder) {
			z := b.ConstantFloat(0, mlir.F64())
			b.AffineStore(z, args[0], i)
		}, nil)
	})
	b.Return()
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	// entry + header + body + body-cont(if cont) + then + exit-cont: at
	// least 6 blocks, all terminated.
	f := m.FindFunc("clamp")
	if n := len(f.Regions[0].Blocks); n < 6 {
		t.Errorf("expected >= 6 blocks, got %d", n)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSCFToCFRoundTripsThroughText(t *testing.T) {
	m := buildGemm(3)
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	out := m.Print()
	if out == "" {
		t.Fatal("empty print")
	}
}

func TestCFInterpretationMatchesStructured(t *testing.T) {
	// The cf-lowered form (post scf-to-cf) must execute to the same memory
	// state as the structured form — this is the oracle's reference path
	// for post-lowering stages.
	ref := run(t, buildGemm(5), "gemm", 5, 2, 7)
	m := buildGemm(5)
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	got := run(t, m, "gemm", 5, 2, 7)
	sameAll(t, ref, got)

	refS := run(t, buildStencil(16), "sten", 16, 1, 3)
	ms := buildStencil(16)
	if err := AffineToSCF(ms); err != nil {
		t.Fatal(err)
	}
	if err := SCFToCF(ms); err != nil {
		t.Fatal(err)
	}
	gotS := run(t, ms, "sten", 16, 1, 3)
	sameAll(t, refS, gotS)
}

func TestCFInterpFuelBound(t *testing.T) {
	// A cf loop that never advances must exhaust fuel, not hang.
	m := buildGemm(4)
	if err := AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	var bufs []*mlir.MemBuf
	for _, a := range mlir.FuncBody(m.FindFunc("gemm")).Args {
		bufs = append(bufs, mlir.NewMemBuf(a.Type()))
	}
	err := m.InterpretWithFuel("gemm", 50, bufs...)
	if !errors.Is(err, mlir.ErrFuel) {
		t.Fatalf("tiny fuel budget = %v, want ErrFuel", err)
	}
}

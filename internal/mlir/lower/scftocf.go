package lower

import (
	"fmt"

	"repro/internal/mlir"
)

// SCFToCF flattens scf.for and scf.if into an explicit block CFG with
// cf.br/cf.cond_br terminators. Loop-carried HLS directive attributes are
// moved onto the loop's back-edge branch (the cf analogue of LLVM's
// !llvm.loop latch metadata).
func SCFToCF(m *mlir.Module) error {
	for _, f := range m.Funcs() {
		if err := lowerSCFInFunc(f); err != nil {
			return err
		}
		// Terminate any fall-through entry (functions whose body had no
		// explicit return would already be invalid; nothing to do).
	}
	return m.Verify()
}

func lowerSCFInFunc(f *mlir.Op) error {
	region := f.Regions[0]
	for iter := 0; ; iter++ {
		if iter > 10000 {
			return fmt.Errorf("lower: scf-to-cf did not converge")
		}
		var target *mlir.Op
		// Only scan top-level blocks of the function region: nested scf ops
		// surface into these blocks as outer ones are lowered.
		for _, b := range region.Blocks {
			for _, op := range b.Ops {
				if op.Name == mlir.OpSCFFor || op.Name == mlir.OpSCFIf {
					target = op
					break
				}
			}
			if target != nil {
				break
			}
		}
		if target == nil {
			return nil
		}
		var err error
		if target.Name == mlir.OpSCFFor {
			err = lowerSCFFor(f, target)
		} else {
			err = lowerSCFIf(f, target)
		}
		if err != nil {
			return err
		}
	}
}

// lowerSCFFor rewrites
//
//	before; scf.for %iv = %lb to %ub step %st { body }; after
//
// into
//
//	before:  cf.br header(%lb)
//	header(%iv): %c = cmpi slt %iv,%ub ; cf.cond_br %c, body, cont
//	body:    ...; %next = addi %iv,%st ; cf.br header(%next)   <- loop attrs
//	cont:    after
func lowerSCFFor(f, op *mlir.Op) error {
	blk := op.Block()
	region := blk.Region()
	lb, ub, st := op.Operands[0], op.Operands[1], op.Operands[2]

	cont := blk.SplitBlock(op)
	blk.Remove(op) // detach the scf.for itself

	header := mlir.NewBlock(mlir.Index())
	region.InsertBlockAfter(header, blk)
	iv := header.Args[0]

	bodyBlk := op.Regions[0].Blocks[0]
	region.InsertBlockAfter(bodyBlk, header)
	// The body block keeps its ops; rewire its argument to the header arg.
	oldIV := bodyBlk.Args[0]
	mlir.ReplaceAllUses(f, oldIV, iv)
	bodyBlk.Args = nil

	// before -> header(lb)
	br := mlir.NewOp(mlir.OpBr, []*mlir.Value{lb}, nil)
	br.Succs = []*mlir.Block{header}
	blk.Append(br)

	// header: cond_br (iv < ub), body, cont
	cmp := mlir.NewOp(mlir.OpCmpI, []*mlir.Value{iv, ub}, []*mlir.Type{mlir.I1()})
	cmp.SetAttr(mlir.AttrPredicate, mlir.StringAttr(mlir.PredSLT))
	header.Append(cmp)
	cbr := mlir.NewOp(mlir.OpCondBr, []*mlir.Value{cmp.Result(0)}, nil)
	cbr.Succs = []*mlir.Block{bodyBlk, cont}
	cbr.SetAttr(mlir.AttrTrueCount, mlir.I(0))
	cbr.SetAttr(mlir.AttrFalseCount, mlir.I(0))
	header.Append(cbr)

	// body: replace scf.yield with iv+step branch back to header.
	yield := bodyBlk.Terminator()
	if yield == nil || yield.Name != mlir.OpSCFYield {
		return fmt.Errorf("lower: scf.for body must end in scf.yield")
	}
	bodyBlk.Remove(yield)
	next := mlir.NewOp(mlir.OpAddI, []*mlir.Value{iv, st}, []*mlir.Type{mlir.Index()})
	bodyBlk.Append(next)
	latch := mlir.NewOp(mlir.OpBr, []*mlir.Value{next.Result(0)}, nil)
	latch.Succs = []*mlir.Block{header}
	// Loop directives ride on the latch branch.
	for k, v := range op.Attrs {
		latch.SetAttr(k, v)
	}
	bodyBlk.Append(latch)
	return nil
}

// lowerSCFIf rewrites scf.if into cond_br/then/else/cont blocks.
func lowerSCFIf(f, op *mlir.Op) error {
	blk := op.Block()
	region := blk.Region()
	cond := op.Operands[0]

	cont := blk.SplitBlock(op)
	blk.Remove(op)

	thenBlk := op.Regions[0].Blocks[0]
	region.InsertBlockAfter(thenBlk, blk)
	replaceYieldWithBr(thenBlk, cont)

	elseTarget := cont
	if len(op.Regions) > 1 {
		elseBlk := op.Regions[1].Blocks[0]
		region.InsertBlockAfter(elseBlk, thenBlk)
		replaceYieldWithBr(elseBlk, cont)
		elseTarget = elseBlk
	}

	cbr := mlir.NewOp(mlir.OpCondBr, []*mlir.Value{cond}, nil)
	cbr.Succs = []*mlir.Block{thenBlk, elseTarget}
	cbr.SetAttr(mlir.AttrTrueCount, mlir.I(0))
	cbr.SetAttr(mlir.AttrFalseCount, mlir.I(0))
	blk.Append(cbr)
	_ = f
	return nil
}

func replaceYieldWithBr(b *mlir.Block, dest *mlir.Block) {
	if t := b.Terminator(); t != nil && t.Name == mlir.OpSCFYield {
		b.Remove(t)
	}
	br := mlir.NewOp(mlir.OpBr, nil, nil)
	br.Succs = []*mlir.Block{dest}
	b.Append(br)
}

// Package lower implements the progressive dialect lowerings of the MLIR HLS
// flow: affine → scf (bound maps and access maps expanded into arith index
// computations) and scf → cf (structured loops and conditionals flattened
// into a block CFG with block-argument phis), the same structural pipeline
// upstream MLIR runs before mlir-translate.
package lower

import (
	"fmt"

	"repro/internal/mlir"
)

// AffineToSCF lowers every affine op in the module to the scf/memref/arith
// level. HLS directive attributes on loops are preserved on the produced
// scf.for ops.
func AffineToSCF(m *mlir.Module) error {
	for _, f := range m.Funcs() {
		if err := lowerAffineInFunc(f); err != nil {
			return err
		}
	}
	return m.Verify()
}

func lowerAffineInFunc(f *mlir.Op) error {
	// Repeatedly find and lower the first affine op; lowering may create
	// nested structures that are themselves visited on later rounds.
	for {
		var target *mlir.Op
		mlir.Walk(f, func(op *mlir.Op) bool {
			if target != nil {
				return false
			}
			switch op.Name {
			case mlir.OpAffineFor, mlir.OpAffineLoad, mlir.OpAffineStore, mlir.OpAffineApply:
				target = op
				return false
			}
			return true
		})
		if target == nil {
			return nil
		}
		var err error
		switch target.Name {
		case mlir.OpAffineFor:
			err = lowerAffineFor(target)
		case mlir.OpAffineLoad, mlir.OpAffineStore:
			err = lowerAffineAccess(target)
		case mlir.OpAffineApply:
			err = lowerAffineApply(target)
		}
		if err != nil {
			return err
		}
	}
}

// expandExpr materializes an affine expression as arith ops inserted before
// ref in ref's block, returning the resulting index value.
func expandExpr(e *mlir.AffineExpr, dims, syms []*mlir.Value, blk *mlir.Block, ref *mlir.Op) *mlir.Value {
	emit := func(op *mlir.Op) *mlir.Value {
		blk.InsertBefore(op, ref)
		return op.Result(0)
	}
	constant := func(v int64) *mlir.Value {
		c := mlir.NewOp(mlir.OpConstant, nil, []*mlir.Type{mlir.Index()})
		c.SetAttr(mlir.AttrValue, mlir.IntAttr{Value: v, Ty: mlir.Index()})
		return emit(c)
	}
	binary := func(name string, l, r *mlir.Value) *mlir.Value {
		return emit(mlir.NewOp(name, []*mlir.Value{l, r}, []*mlir.Type{mlir.Index()}))
	}
	switch e.Kind {
	case mlir.AffineDim:
		return dims[e.Pos]
	case mlir.AffineSym:
		return syms[e.Pos]
	case mlir.AffineConst:
		return constant(e.Val)
	case mlir.AffineAdd:
		return binary(mlir.OpAddI,
			expandExpr(e.LHS, dims, syms, blk, ref),
			expandExpr(e.RHS, dims, syms, blk, ref))
	case mlir.AffineMul:
		return binary(mlir.OpMulI,
			expandExpr(e.LHS, dims, syms, blk, ref),
			expandExpr(e.RHS, dims, syms, blk, ref))
	case mlir.AffineMod:
		// HLS index expressions are non-negative, where remsi == mod.
		return binary(mlir.OpRemSI,
			expandExpr(e.LHS, dims, syms, blk, ref),
			expandExpr(e.RHS, dims, syms, blk, ref))
	case mlir.AffineFloorDiv:
		return binary(mlir.OpDivSI,
			expandExpr(e.LHS, dims, syms, blk, ref),
			expandExpr(e.RHS, dims, syms, blk, ref))
	case mlir.AffineCeilDiv:
		// ceildiv d == (x + d - 1) floordiv d for non-negative x.
		l := expandExpr(e.LHS, dims, syms, blk, ref)
		d := e.RHS.Val
		biased := binary(mlir.OpAddI, l, constant(d-1))
		return binary(mlir.OpDivSI, biased, constant(d))
	}
	panic("lower: invalid affine expression")
}

// expandMap materializes every result of an affine map before ref.
func expandMap(m *mlir.AffineMap, operands []*mlir.Value, blk *mlir.Block, ref *mlir.Op) []*mlir.Value {
	dims := operands[:m.NumDims]
	syms := operands[m.NumDims:]
	out := make([]*mlir.Value, len(m.Exprs))
	for i, e := range m.Exprs {
		out[i] = expandExpr(e, dims, syms, blk, ref)
	}
	return out
}

func lowerAffineFor(op *mlir.Op) error {
	fv := mlir.AffineForView{Op: op}
	blk := op.Block()
	if blk == nil {
		return fmt.Errorf("lower: detached affine.for")
	}
	lb := expandMap(fv.LowerMap(), fv.LowerOperands(), blk, op)[0]
	ub := expandMap(fv.UpperMap(), fv.UpperOperands(), blk, op)[0]
	stepC := mlir.NewOp(mlir.OpConstant, nil, []*mlir.Type{mlir.Index()})
	stepC.SetAttr(mlir.AttrValue, mlir.IntAttr{Value: fv.Step(), Ty: mlir.Index()})
	blk.InsertBefore(stepC, op)

	scfFor := mlir.NewOp(mlir.OpSCFFor, []*mlir.Value{lb, ub, stepC.Result(0)}, nil)
	// Carry HLS directives through.
	for k, v := range op.Attrs {
		switch k {
		case mlir.AttrLowerMap, mlir.AttrUpperMap, mlir.AttrStep, mlir.AttrLBCount:
		default:
			scfFor.SetAttr(k, v)
		}
	}
	// Move the body region wholesale; rewrite the terminator.
	body := fv.Body()
	r := scfFor.AddRegion()
	r.AddBlock(body)
	if t := body.Terminator(); t != nil && t.Name == mlir.OpAffineYield {
		body.Remove(t)
		body.Append(mlir.NewOp(mlir.OpSCFYield, t.Operands, nil))
	}
	op.Regions = nil
	blk.InsertBefore(scfFor, op)
	op.Erase()
	return nil
}

func lowerAffineAccess(op *mlir.Op) error {
	v := mlir.AffineAccessView{Op: op}
	blk := op.Block()
	idxs := expandMap(v.Map(), v.MapOperands(), blk, op)
	f := mlir.EnclosingFunc(op)
	if op.Name == mlir.OpAffineLoad {
		load := mlir.NewOp(mlir.OpLoad, append([]*mlir.Value{v.MemRef()}, idxs...),
			[]*mlir.Type{op.Result(0).Type()})
		blk.InsertBefore(load, op)
		mlir.ReplaceAllUses(f, op.Result(0), load.Result(0))
	} else {
		store := mlir.NewOp(mlir.OpStore, append([]*mlir.Value{v.StoredValue(), v.MemRef()}, idxs...), nil)
		blk.InsertBefore(store, op)
	}
	op.Erase()
	return nil
}

func lowerAffineApply(op *mlir.Op) error {
	m, _ := op.MapAttr(mlir.AttrMap)
	blk := op.Block()
	val := expandMap(m, op.Operands, blk, op)[0]
	mlir.ReplaceAllUses(mlir.EnclosingFunc(op), op.Result(0), val)
	op.Erase()
	return nil
}

package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mlir"
)

// Parse parses MLIR source text into a module.
func Parse(src string) (*mlir.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	return m, nil
}

type parser struct {
	toks []token
	pos  int

	values map[string]*mlir.Value
	blocks map[string]*mlir.Block
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("parse error at line %d col %d (near %q): %s",
		t.line, t.col, t.text, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return p.errf("expected %q", s)
	}
	p.next()
	return nil
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) isIdent(s string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) expectIdent(s string) error {
	if !p.isIdent(s) {
		return p.errf("expected keyword %q", s)
	}
	p.next()
	return nil
}

func (p *parser) parseModule() (*mlir.Module, error) {
	m := mlir.NewModule()
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unexpected EOF in module")
		}
		if err := p.parseFunc(m); err != nil {
			return nil, err
		}
	}
	p.next() // }
	return m, nil
}

func (p *parser) parseType() (*mlir.Type, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, p.errf("expected type")
	}
	switch {
	case t.text == "index":
		p.next()
		return mlir.Index(), nil
	case t.text == "none":
		p.next()
		return mlir.None(), nil
	case strings.HasPrefix(t.text, "i"):
		w, err := strconv.Atoi(t.text[1:])
		if err != nil {
			return nil, p.errf("bad integer type")
		}
		p.next()
		return mlir.IntType(w), nil
	case strings.HasPrefix(t.text, "f"):
		w, err := strconv.Atoi(t.text[1:])
		if err != nil {
			return nil, p.errf("bad float type")
		}
		p.next()
		return mlir.FloatType(w), nil
	case t.text == "memref":
		p.next()
		if err := p.expectPunct("<"); err != nil {
			return nil, err
		}
		// Reassemble the shape spelling, e.g. "32x32xf32" or "?x8xf64".
		var sb strings.Builder
		for !p.isPunct(">") {
			if p.cur().kind == tokEOF {
				return nil, p.errf("unterminated memref type")
			}
			sb.WriteString(p.next().text)
		}
		p.next() // >
		parts := strings.Split(sb.String(), "x")
		if len(parts) < 1 {
			return nil, p.errf("empty memref type")
		}
		elemStr := parts[len(parts)-1]
		var elem *mlir.Type
		switch {
		case elemStr == "index":
			elem = mlir.Index()
		case strings.HasPrefix(elemStr, "f"):
			w, err := strconv.Atoi(elemStr[1:])
			if err != nil {
				return nil, p.errf("bad memref element %q", elemStr)
			}
			elem = mlir.FloatType(w)
		case strings.HasPrefix(elemStr, "i"):
			w, err := strconv.Atoi(elemStr[1:])
			if err != nil {
				return nil, p.errf("bad memref element %q", elemStr)
			}
			elem = mlir.IntType(w)
		default:
			return nil, p.errf("bad memref element %q", elemStr)
		}
		var shape []int64
		for _, d := range parts[:len(parts)-1] {
			if d == "?" {
				shape = append(shape, mlir.DynamicDim)
				continue
			}
			n, err := strconv.ParseInt(d, 10, 64)
			if err != nil {
				return nil, p.errf("bad memref dim %q", d)
			}
			shape = append(shape, n)
		}
		return mlir.MemRef(shape, elem), nil
	}
	return nil, p.errf("unknown type %q", t.text)
}

func (p *parser) lookupValue(name string) (*mlir.Value, error) {
	v, ok := p.values[name]
	if !ok {
		return nil, p.errf("use of undefined value %%%s", name)
	}
	return v, nil
}

func (p *parser) parseValueRef() (*mlir.Value, error) {
	t := p.cur()
	if t.kind != tokValueID {
		return nil, p.errf("expected SSA value")
	}
	p.next()
	return p.lookupValue(t.text)
}

// parseValueList parses %a, %b, ... (possibly empty, ended by a non-value).
func (p *parser) parseValueList() ([]*mlir.Value, error) {
	var out []*mlir.Value
	for p.cur().kind == tokValueID {
		v, err := p.parseValueRef()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if !p.isPunct(",") {
			break
		}
		p.next()
	}
	return out, nil
}

func (p *parser) parseFunc(m *mlir.Module) error {
	if err := p.expectIdent("func.func"); err != nil {
		return err
	}
	sym := p.cur()
	if sym.kind != tokSymbol {
		return p.errf("expected function symbol")
	}
	p.next()
	if err := p.expectPunct("("); err != nil {
		return err
	}
	p.values = map[string]*mlir.Value{}
	p.blocks = map[string]*mlir.Block{}

	var argNames []string
	var argTypes []*mlir.Type
	for !p.isPunct(")") {
		a := p.cur()
		if a.kind != tokValueID {
			return p.errf("expected argument name")
		}
		p.next()
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		argNames = append(argNames, a.text)
		argTypes = append(argTypes, ty)
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next() // )

	var resultTypes []*mlir.Type
	if p.isPunct("->") {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return err
		}
		for !p.isPunct(")") {
			ty, err := p.parseType()
			if err != nil {
				return err
			}
			resultTypes = append(resultTypes, ty)
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
	}

	f, args := m.AddFunc(sym.text, argTypes, resultTypes)
	for i, n := range argNames {
		p.values[n] = args[i]
	}

	if p.isIdent("attributes") {
		p.next()
		attrs, err := p.parseAttrDict()
		if err != nil {
			return err
		}
		for k, v := range attrs {
			f.SetAttr(k, v)
		}
	}

	if err := p.expectPunct("{"); err != nil {
		return err
	}
	if err := p.parseRegionInto(f.Regions[0], false); err != nil {
		return err
	}
	return nil
}

// parseRegionInto parses ops until the closing '}' into region r (which must
// already have an entry block). implicitYield selects the terminator to add
// when a structured region body omits it.
func (p *parser) parseRegionInto(r *mlir.Region, implicitYield bool) error {
	current := r.Entry()
	for {
		t := p.cur()
		if t.kind == tokPunct && t.text == "}" {
			p.next()
			break
		}
		if t.kind == tokEOF {
			return p.errf("unexpected EOF in region")
		}
		if t.kind == tokBlockID {
			blk, err := p.parseBlockLabel(r, current)
			if err != nil {
				return err
			}
			current = blk
			continue
		}
		if err := p.parseOp(current); err != nil {
			return err
		}
	}
	// Add implicit terminators for structured regions.
	if implicitYield {
		for _, b := range r.Blocks {
			term := b.Terminator()
			if term == nil || !term.IsTerminator() {
				yieldName := mlir.OpAffineYield
				if op := r.ParentOp(); op != nil && (op.Name == mlir.OpSCFFor || op.Name == mlir.OpSCFIf) {
					yieldName = mlir.OpSCFYield
				}
				b.Append(mlir.NewOp(yieldName, nil, nil))
			}
		}
	}
	return nil
}

func (p *parser) getOrCreateBlock(name string) *mlir.Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := mlir.NewBlock()
	p.blocks[name] = b
	return b
}

// parseBlockLabel handles "^bbN(%a: ty, ...):". The first label in a region
// with an empty entry block renames the entry block instead of adding one.
func (p *parser) parseBlockLabel(r *mlir.Region, current *mlir.Block) (*mlir.Block, error) {
	lbl := p.next() // block id
	var blk *mlir.Block
	entry := r.Entry()
	if len(entry.Ops) == 0 && current == entry && p.blocks[lbl.text] == nil && !entryLabeled(p.blocks, entry) {
		blk = entry
		p.blocks[lbl.text] = blk
	} else {
		blk = p.getOrCreateBlock(lbl.text)
		if blk.Region() == nil {
			r.AddBlock(blk)
		}
	}
	if p.isPunct("(") {
		p.next()
		argIdx := 0
		for !p.isPunct(")") {
			a := p.cur()
			if a.kind != tokValueID {
				return nil, p.errf("expected block argument")
			}
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if argIdx < len(blk.Args) {
				// Entry block reusing function-signature args.
				p.values[a.text] = blk.Args[argIdx]
			} else {
				p.values[a.text] = blk.AddArg(ty)
			}
			argIdx++
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	return blk, nil
}

func entryLabeled(blocks map[string]*mlir.Block, entry *mlir.Block) bool {
	for _, b := range blocks {
		if b == entry {
			return true
		}
	}
	return false
}

// parseIndexList parses [%a, %b] (possibly empty).
func (p *parser) parseIndexList() ([]*mlir.Value, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	vals, err := p.parseValueList()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return vals, nil
}

// maybeAttrDict parses an optional trailing {attr} dictionary into op.
func (p *parser) maybeAttrDict(op *mlir.Op) error {
	if !p.isPunct("{") {
		return nil
	}
	attrs, err := p.parseAttrDict()
	if err != nil {
		return err
	}
	for k, v := range attrs {
		op.SetAttr(k, v)
	}
	return nil
}

func (p *parser) parseAttrDict() (map[string]mlir.Attr, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	out := map[string]mlir.Attr{}
	for !p.isPunct("}") {
		key := p.cur()
		if key.kind != tokIdent && key.kind != tokString {
			return nil, p.errf("expected attribute key")
		}
		p.next()
		if p.isPunct("=") {
			p.next()
			val, err := p.parseAttrValue()
			if err != nil {
				return nil, err
			}
			out[key.text] = val
		} else {
			out[key.text] = mlir.UnitAttr{}
		}
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next()
	return out, nil
}

func (p *parser) parseAttrValue() (mlir.Attr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer attr")
		}
		a := mlir.IntAttr{Value: v}
		if p.isPunct(":") {
			p.next()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			a.Ty = ty
		}
		return a, nil
	case t.kind == tokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float attr")
		}
		a := mlir.FloatAttr{Value: v}
		if p.isPunct(":") {
			p.next()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			a.Ty = ty
		}
		return a, nil
	case t.kind == tokString:
		p.next()
		return mlir.StringAttr(t.text), nil
	case t.kind == tokSymbol:
		p.next()
		return mlir.SymbolRefAttr(t.text), nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return mlir.BoolAttr(true), nil
	case t.kind == tokIdent && t.text == "false":
		p.next()
		return mlir.BoolAttr(false), nil
	case t.kind == tokIdent && t.text == "unit":
		p.next()
		return mlir.UnitAttr{}, nil
	case t.kind == tokIdent && t.text == "affine_map":
		m, err := p.parseAffineMapLiteral()
		if err != nil {
			return nil, err
		}
		return mlir.AffineMapAttr{Map: m}, nil
	case t.kind == tokPunct && t.text == "[":
		p.next()
		var arr mlir.ArrayAttr
		for !p.isPunct("]") {
			el, err := p.parseAttrValue()
			if err != nil {
				return nil, err
			}
			arr = append(arr, el)
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
		return arr, nil
	case t.kind == tokIdent:
		// Try a type attribute.
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return mlir.TypeAttr{Ty: ty}, nil
	}
	return nil, p.errf("expected attribute value")
}

// parseAffineMapLiteral parses affine_map<(d0,...)[s0,...] -> (exprs)>.
func (p *parser) parseAffineMapLiteral() (*mlir.AffineMap, error) {
	if err := p.expectIdent("affine_map"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("<"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	numDims := 0
	for !p.isPunct(")") {
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected dim name")
		}
		p.next()
		numDims++
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next()
	numSyms := 0
	if p.isPunct("[") {
		p.next()
		for !p.isPunct("]") {
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected symbol name")
			}
			p.next()
			numSyms++
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
	}
	if err := p.expectPunct("->"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var exprs []*mlir.AffineExpr
	for !p.isPunct(")") {
		e, err := p.parseAffineExpr()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next()
	if err := p.expectPunct(">"); err != nil {
		return nil, err
	}
	return mlir.NewMap(numDims, numSyms, exprs...), nil
}

func (p *parser) parseAffineExpr() (*mlir.AffineExpr, error) {
	lhs, err := p.parseAffineTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("+"):
			p.next()
			rhs, err := p.parseAffineTerm()
			if err != nil {
				return nil, err
			}
			lhs = mlir.Add(lhs, rhs)
		case p.isPunct("-"):
			p.next()
			rhs, err := p.parseAffineTerm()
			if err != nil {
				return nil, err
			}
			lhs = mlir.Add(lhs, mlir.Mul(rhs, mlir.Const(-1)))
		default:
			return lhs, nil
		}
	}
}

func (p *parser) parseAffineTerm() (*mlir.AffineExpr, error) {
	lhs, err := p.parseAffineFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("*"):
			p.next()
			rhs, err := p.parseAffineFactor()
			if err != nil {
				return nil, err
			}
			lhs = mlir.Mul(lhs, rhs)
		case p.isIdent("mod"):
			p.next()
			rhs, err := p.parseAffineFactor()
			if err != nil {
				return nil, err
			}
			if !rhs.IsConst() {
				return nil, p.errf("mod by non-constant")
			}
			lhs = mlir.Mod(lhs, rhs.Val)
		case p.isIdent("floordiv"):
			p.next()
			rhs, err := p.parseAffineFactor()
			if err != nil {
				return nil, err
			}
			if !rhs.IsConst() {
				return nil, p.errf("floordiv by non-constant")
			}
			lhs = mlir.FloorDiv(lhs, rhs.Val)
		case p.isIdent("ceildiv"):
			p.next()
			rhs, err := p.parseAffineFactor()
			if err != nil {
				return nil, err
			}
			if !rhs.IsConst() {
				return nil, p.errf("ceildiv by non-constant")
			}
			lhs = mlir.CeilDiv(lhs, rhs.Val)
		default:
			return lhs, nil
		}
	}
}

func (p *parser) parseAffineFactor() (*mlir.AffineExpr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad affine constant")
		}
		return mlir.Const(v), nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.parseAffineExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokPunct && t.text == "-":
		p.next()
		e, err := p.parseAffineFactor()
		if err != nil {
			return nil, err
		}
		return mlir.Mul(e, mlir.Const(-1)), nil
	case t.kind == tokIdent && len(t.text) > 1 && (t.text[0] == 'd' || t.text[0] == 's'):
		idx, err := strconv.Atoi(t.text[1:])
		if err != nil {
			return nil, p.errf("bad dim/symbol %q", t.text)
		}
		p.next()
		if t.text[0] == 'd' {
			return mlir.Dim(idx), nil
		}
		return mlir.Sym(idx), nil
	}
	return nil, p.errf("expected affine expression")
}

// Package parser parses the textual MLIR format produced by mlir.Module.Print.
// The grammar covers the dialect subset this repository uses (func, arith,
// math, memref, affine, scf, cf) plus the generic quoted-op fallback form, so
// printer output round-trips.
package parser

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokValueID // %x
	tokSymbol  // @x
	tokBlockID // ^x
	tokInt
	tokFloat
	tokString
	tokPunct // single punctuation or "->"
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance()
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
			continue
		}
		return
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	t := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		t.kind = tokEOF
		return t, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.advance()
		}
		t.kind = tokIdent
		t.text = l.src[start:l.pos]
		return t, nil

	case c == '%' || c == '@' || c == '^':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.advance()
		}
		if start == l.pos {
			return t, fmt.Errorf("line %d: empty identifier after %q", t.line, string(c))
		}
		t.text = l.src[start:l.pos]
		switch c {
		case '%':
			t.kind = tokValueID
		case '@':
			t.kind = tokSymbol
		default:
			t.kind = tokBlockID
		}
		return t, nil

	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		start := l.pos
		if c == '-' {
			l.advance()
		}
		isFloat := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.advance()
				continue
			}
			if ch == '.' && !isFloat {
				isFloat = true
				l.advance()
				continue
			}
			if (ch == 'e' || ch == 'E') && l.pos+1 < len(l.src) {
				nxt := l.src[l.pos+1]
				if isDigit(nxt) || ((nxt == '+' || nxt == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2])) {
					isFloat = true
					l.advance() // e
					l.advance() // sign or digit
					continue
				}
			}
			break
		}
		t.text = l.src[start:l.pos]
		if isFloat {
			t.kind = tokFloat
		} else {
			t.kind = tokInt
		}
		return t, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.advance()
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteByte(esc)
				default:
					sb.WriteByte('\\')
					sb.WriteByte(esc)
				}
				continue
			}
			if ch == '"' {
				t.kind = tokString
				t.text = sb.String()
				return t, nil
			}
			sb.WriteByte(ch)
		}
		return t, fmt.Errorf("line %d: unterminated string", t.line)

	case c == '-':
		l.advance()
		if l.peekByte() == '>' {
			l.advance()
			t.kind = tokPunct
			t.text = "->"
			return t, nil
		}
		t.kind = tokPunct
		t.text = "-"
		return t, nil

	default:
		l.advance()
		t.kind = tokPunct
		t.text = string(c)
		return t, nil
	}
}

package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mlir"
)

func parseOrFatal(t *testing.T, src string) *mlir.Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("parsed module fails verification: %v\nsource:\n%s", err, src)
	}
	return m
}

// roundTrip asserts print(parse(print(m))) == print(m).
func roundTrip(t *testing.T, m *mlir.Module) {
	t.Helper()
	first := m.Print()
	m2, err := Parse(first)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, first)
	}
	second := m2.Print()
	if first != second {
		t.Fatalf("round trip not stable.\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("round-tripped module fails verification: %v", err)
	}
}

func TestParseSimpleFunc(t *testing.T) {
	src := `
module {
  func.func @axpy(%arg0: memref<8xf32>, %arg1: memref<8xf32>) {
    %0 = arith.constant 2.0 : f32
    affine.for %1 = 0 to 8 step 1 {
      %2 = affine.load %arg0[%1] : memref<8xf32>
      %3 = arith.mulf %0, %2 : f32
      %4 = affine.load %arg1[%1] : memref<8xf32>
      %5 = arith.addf %3, %4 : f32
      affine.store %5, %arg1[%1] : memref<8xf32>
    }
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	f := m.FindFunc("axpy")
	if f == nil {
		t.Fatal("axpy not found")
	}
	roundTrip(t, m)
}

func TestParseAttrsAndDirectives(t *testing.T) {
	src := `
module {
  func.func @k(%arg0: memref<4x4xf64>) attributes {hls.top} {
    affine.for %0 = 0 to 4 step 1 {
      affine.for %1 = 0 to 4 step 1 {
        %2 = affine.load %arg0[%0, %1] : memref<4x4xf64>
        affine.store %2, %arg0[%1, %0] : memref<4x4xf64>
      } {hls.ii = 1, hls.pipeline}
    } {hls.unroll = 2}
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	f := m.FindFunc("k")
	if !f.HasAttr(mlir.AttrTopFunc) {
		t.Error("hls.top attribute lost")
	}
	outer, _ := mlir.AsAffineFor(mlir.FuncBody(f).Ops[0])
	if v, ok := outer.Op.IntAttr(mlir.AttrUnroll); !ok || v != 2 {
		t.Error("hls.unroll lost")
	}
	inner, _ := mlir.AsAffineFor(outer.Body().Ops[0])
	if !inner.Op.HasAttr(mlir.AttrPipeline) {
		t.Error("hls.pipeline lost")
	}
	if ii, ok := inner.Op.IntAttr(mlir.AttrII); !ok || ii != 1 {
		t.Error("hls.ii lost")
	}
	roundTrip(t, m)
}

func TestParseAffineMapBounds(t *testing.T) {
	src := `
module {
  func.func @tri(%arg0: memref<8x8xf32>) {
    affine.for %0 = 0 to 8 step 1 {
      affine.for %1 = affine_map<(d0) -> (d0)>(%0) to 8 step 1 {
        %2 = affine.load %arg0[%0, %1] : memref<8x8xf32>
        affine.store %2, %arg0[%0, %1] : memref<8x8xf32>
      }
    }
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	outer, _ := mlir.AsAffineFor(mlir.FuncBody(m.FindFunc("tri")).Ops[0])
	inner, ok := mlir.AsAffineFor(outer.Body().Ops[0])
	if !ok {
		t.Fatal("inner loop missing")
	}
	if len(inner.LowerOperands()) != 1 || inner.LowerOperands()[0] != outer.IV() {
		t.Error("lower bound operand should be the outer IV")
	}
	if _, ok := inner.ConstantTripCount(); ok {
		t.Error("triangular loop should not have a constant trip count")
	}
	roundTrip(t, m)
}

func TestParseAffineAccessMap(t *testing.T) {
	src := `
module {
  func.func @sten(%arg0: memref<16xf32>) {
    affine.for %0 = 1 to 15 step 1 {
      %1 = affine.load %arg0[%0] map affine_map<(d0) -> ((d0 - 1))> : memref<16xf32>
      %2 = affine.load %arg0[%0] map affine_map<(d0) -> ((d0 + 1))> : memref<16xf32>
      %3 = arith.addf %1, %2 : f32
      affine.store %3, %arg0[%0] : memref<16xf32>
    }
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	var loads []*mlir.Op
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpAffineLoad {
			loads = append(loads, o)
		}
		return true
	})
	if len(loads) != 2 {
		t.Fatalf("want 2 loads, got %d", len(loads))
	}
	m0 := mlir.AffineAccessView{Op: loads[0]}.Map()
	if got := m0.Eval([]int64{5}, nil)[0]; got != 4 {
		t.Errorf("d0-1 map eval(5) = %d", got)
	}
	roundTrip(t, m)
}

func TestParseSCFAndCF(t *testing.T) {
	src := `
module {
  func.func @scfcf(%arg0: memref<4xf32>) {
    %0 = arith.constant 0 : index
    %1 = arith.constant 4 : index
    %2 = arith.constant 1 : index
    scf.for %3 = %0 to %1 step %2 {
      %4 = memref.load %arg0[%3] : memref<4xf32>
      memref.store %4, %arg0[%3] : memref<4xf32>
    }
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	roundTrip(t, m)
}

func TestParseMultiBlockCF(t *testing.T) {
	src := `
module {
  func.func @loop(%arg0: memref<4xi32>) {
  ^bb0:
    %0 = arith.constant 0 : index
    %1 = arith.constant 4 : index
    %2 = arith.constant 1 : index
    cf.br ^bb1(%0)
  ^bb1(%3: index):
    %4 = arith.cmpi slt, %3, %1 : index
    cf.cond_br %4, ^bb2, ^bb3
  ^bb2:
    %5 = memref.load %arg0[%3] : memref<4xi32>
    memref.store %5, %arg0[%3] : memref<4xi32>
    %6 = arith.addi %3, %2 : index
    cf.br ^bb1(%6)
  ^bb3:
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	f := m.FindFunc("loop")
	if n := len(f.Regions[0].Blocks); n != 4 {
		t.Fatalf("want 4 blocks, got %d", n)
	}
	roundTrip(t, m)
}

func TestParseScfIf(t *testing.T) {
	src := `
module {
  func.func @cond(%arg0: memref<4xf32>, %arg1: index) {
    %0 = arith.constant 0 : index
    %1 = arith.cmpi eq, %arg1, %0 : index
    scf.if %1 {
      %2 = arith.constant 1.0 : f32
      memref.store %2, %arg0[%0] : memref<4xf32>
    } else {
      %3 = arith.constant 2.0 : f32
      memref.store %3, %arg0[%0] : memref<4xf32>
    }
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	roundTrip(t, m)
}

func TestParseCallAndReturnValue(t *testing.T) {
	src := `
module {
  func.func @helper(%arg0: f32) -> (f32) {
    %0 = arith.mulf %arg0, %arg0 : f32
    func.return %0 : f32
  }
  func.func @main(%arg0: f32) -> (f32) {
    %0 = func.call @helper(%arg0) : (f32) -> (f32)
    func.return %0 : f32
  }
}
`
	m := parseOrFatal(t, src)
	if len(m.Funcs()) != 2 {
		t.Fatal("expected two functions")
	}
	roundTrip(t, m)
}

func TestParseGenericOp(t *testing.T) {
	src := `
module {
  func.func @g(%arg0: f32) {
    %0 = "mydialect.magic"(%arg0) {level = 3} : (f32) -> (f32)
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	var magic *mlir.Op
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == "mydialect.magic" {
			magic = o
		}
		return true
	})
	if magic == nil {
		t.Fatal("generic op lost")
	}
	if v, ok := magic.IntAttr("level"); !ok || v != 3 {
		t.Error("generic op attr lost")
	}
	roundTrip(t, m)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing module", `func.func @x() { func.return }`},
		{"undefined value", `module { func.func @x() { %0 = arith.addi %9, %9 : i32 func.return } }`},
		{"unterminated", `module { func.func @x() {`},
		{"bad type", `module { func.func @x(%arg0: banana) { func.return } }`},
		{"bad op", `module { func.func @x() { arith.frobnicate } }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("expected parse error for %s", c.name)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := `
// leading comment
module {
  // a function
  func.func @c() {
    func.return // trailing
  }
}
`
	parseOrFatal(t, src)
}

func TestParseNegativeAndFloatConstants(t *testing.T) {
	src := `
module {
  func.func @n() {
    %0 = arith.constant -5 : i32
    %1 = arith.constant 1.5 : f32
    %2 = arith.constant 2.5e-06 : f64
    %3 = arith.constant -0.125 : f64
    func.return
  }
}
`
	m := parseOrFatal(t, src)
	var consts []*mlir.Op
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpConstant {
			consts = append(consts, o)
		}
		return true
	})
	if len(consts) != 4 {
		t.Fatalf("want 4 constants, got %d", len(consts))
	}
	if a := consts[0].Attrs[mlir.AttrValue].(mlir.IntAttr); a.Value != -5 {
		t.Errorf("const0 = %d", a.Value)
	}
	if a := consts[2].Attrs[mlir.AttrValue].(mlir.FloatAttr); a.Value != 2.5e-06 {
		t.Errorf("const2 = %g", a.Value)
	}
	roundTrip(t, m)
}

// randomModule builds a random-but-valid module for round-trip fuzzing.
func randomModule(seed int64) *mlir.Module {
	r := rand.New(rand.NewSource(seed))
	m := mlir.NewModule()
	n := int64(r.Intn(14) + 2)
	ty := mlir.MemRef([]int64{n, n}, mlir.F32())
	_, args := m.AddFunc("rand", []*mlir.Type{ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("rand")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			v := b.AffineLoad(args[0], i, j)
			for k := 0; k < r.Intn(4); k++ {
				switch r.Intn(3) {
				case 0:
					v = b.AddF(v, v)
				case 1:
					v = b.MulF(v, v)
				default:
					v = b.NegF(v)
				}
			}
			b.AffineStore(v, args[1], i, j)
		})
	})
	b.Return()
	return m
}

func TestRoundTripRandomModules(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := randomModule(seed)
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: invalid random module: %v", seed, err)
		}
		roundTrip(t, m)
	}
}

func TestPrintParseStableOnNestedAttrs(t *testing.T) {
	m := mlir.NewModule()
	f, _ := m.AddFunc("attrs", nil, nil)
	f.SetAttr("arr", mlir.ArrayAttr{mlir.I(1), mlir.StringAttr("two"), mlir.BoolAttr(true)})
	b := mlir.NewBuilder(mlir.FuncBody(f))
	b.Return()
	roundTrip(t, m)
	out := m.Print()
	if !strings.Contains(out, `arr = [1, "two", true]`) {
		t.Errorf("array attr not printed as expected:\n%s", out)
	}
}

package parser

import (
	"strconv"

	"repro/internal/mlir"
)

// parseOp parses a single operation statement into blk.
func (p *parser) parseOp(blk *mlir.Block) error {
	// Optional result list: %a, %b = ...
	var resultNames []string
	if p.cur().kind == tokValueID {
		save := p.pos
		for p.cur().kind == tokValueID {
			resultNames = append(resultNames, p.next().text)
			if p.isPunct(",") {
				p.next()
				continue
			}
			break
		}
		if !p.isPunct("=") {
			// Not a result list (shouldn't happen in well-formed input).
			p.pos = save
			resultNames = nil
			return p.errf("expected '=' after result list")
		}
		p.next()
	}

	register := func(op *mlir.Op) error {
		if len(resultNames) != len(op.Results) {
			return p.errf("op %s has %d results, %d names given", op.Name, len(op.Results), len(resultNames))
		}
		for i, n := range resultNames {
			p.values[n] = op.Result(i)
		}
		return nil
	}

	t := p.cur()
	if t.kind == tokString {
		return p.parseGenericOp(blk, resultNames)
	}
	if t.kind != tokIdent {
		return p.errf("expected operation name")
	}
	name := t.text
	p.next()

	switch name {
	case mlir.OpConstant:
		vt := p.cur()
		var op *mlir.Op
		switch vt.kind {
		case tokInt:
			v, _ := strconv.ParseInt(vt.text, 10, 64)
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			ty, err := p.parseType()
			if err != nil {
				return err
			}
			op = mlir.NewOp(mlir.OpConstant, nil, []*mlir.Type{ty})
			op.SetAttr(mlir.AttrValue, mlir.IntAttr{Value: v, Ty: ty})
		case tokFloat:
			v, _ := strconv.ParseFloat(vt.text, 64)
			p.next()
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			ty, err := p.parseType()
			if err != nil {
				return err
			}
			op = mlir.NewOp(mlir.OpConstant, nil, []*mlir.Type{ty})
			op.SetAttr(mlir.AttrValue, mlir.FloatAttr{Value: v, Ty: ty})
		default:
			return p.errf("expected constant literal")
		}
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpAddI, mlir.OpSubI, mlir.OpMulI, mlir.OpDivSI, mlir.OpRemSI,
		mlir.OpAddF, mlir.OpSubF, mlir.OpMulF, mlir.OpDivF, mlir.OpMinSI, mlir.OpMaxSI:
		lhs, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		rhs, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, []*mlir.Value{lhs, rhs}, []*mlir.Type{ty})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpNegF, mlir.OpMathSqrt, mlir.OpMathExp:
		v, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, []*mlir.Value{v}, []*mlir.Type{ty})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpCmpI, mlir.OpCmpF:
		pred := p.cur()
		if pred.kind != tokIdent {
			return p.errf("expected comparison predicate")
		}
		p.next()
		if err := p.expectPunct(","); err != nil {
			return err
		}
		lhs, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		rhs, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		op := mlir.NewOp(name, []*mlir.Value{lhs, rhs}, []*mlir.Type{mlir.I1()})
		op.SetAttr(mlir.AttrPredicate, mlir.StringAttr(pred.text))
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpSelect:
		vals, err := p.parseValueList()
		if err != nil {
			return err
		}
		if len(vals) != 3 {
			return p.errf("select takes 3 operands")
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, vals, []*mlir.Type{ty})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpIndexCast, mlir.OpSIToFP, mlir.OpFPToSI, mlir.OpExtF, mlir.OpTruncF:
		v, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		if err := p.expectIdent("to"); err != nil {
			return err
		}
		to, err := p.parseType()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, []*mlir.Value{v}, []*mlir.Type{to})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpAlloc, mlir.OpAlloca:
		if err := p.expectPunct("("); err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, nil, []*mlir.Type{ty})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpDealloc:
		v, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		op := mlir.NewOp(name, []*mlir.Value{v}, nil)
		blk.Append(op)
		return p.maybeAttrDict(op)

	case mlir.OpLoad:
		mem, err := p.parseValueRef()
		if err != nil {
			return err
		}
		idxs, err := p.parseIndexList()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		mt, err := p.parseType()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, append([]*mlir.Value{mem}, idxs...), []*mlir.Type{mt.Elem})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpStore:
		val, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		mem, err := p.parseValueRef()
		if err != nil {
			return err
		}
		idxs, err := p.parseIndexList()
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		op := mlir.NewOp(name, append([]*mlir.Value{val, mem}, idxs...), nil)
		blk.Append(op)
		return p.maybeAttrDict(op)

	case mlir.OpAffineLoad:
		mem, err := p.parseValueRef()
		if err != nil {
			return err
		}
		idxs, err := p.parseIndexList()
		if err != nil {
			return err
		}
		amap := mlir.IdentityMap(len(idxs))
		if p.isIdent("map") {
			p.next()
			amap, err = p.parseAffineMapLiteral()
			if err != nil {
				return err
			}
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		mt, err := p.parseType()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, append([]*mlir.Value{mem}, idxs...), []*mlir.Type{mt.Elem})
		op.SetAttr(mlir.AttrMap, mlir.AffineMapAttr{Map: amap})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpAffineStore:
		val, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		mem, err := p.parseValueRef()
		if err != nil {
			return err
		}
		idxs, err := p.parseIndexList()
		if err != nil {
			return err
		}
		amap := mlir.IdentityMap(len(idxs))
		if p.isIdent("map") {
			p.next()
			amap, err = p.parseAffineMapLiteral()
			if err != nil {
				return err
			}
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		if _, err := p.parseType(); err != nil {
			return err
		}
		op := mlir.NewOp(name, append([]*mlir.Value{val, mem}, idxs...), nil)
		op.SetAttr(mlir.AttrMap, mlir.AffineMapAttr{Map: amap})
		blk.Append(op)
		return p.maybeAttrDict(op)

	case mlir.OpAffineApply:
		amap, err := p.parseAffineMapLiteral()
		if err != nil {
			return err
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		operands, err := p.parseValueList()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		op := mlir.NewOp(name, operands, []*mlir.Type{mlir.Index()})
		op.SetAttr(mlir.AttrMap, mlir.AffineMapAttr{Map: amap})
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpAffineFor:
		return p.parseAffineFor(blk)

	case mlir.OpSCFFor:
		iv := p.cur()
		if iv.kind != tokValueID {
			return p.errf("expected induction variable")
		}
		p.next()
		if err := p.expectPunct("="); err != nil {
			return err
		}
		lo, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectIdent("to"); err != nil {
			return err
		}
		hi, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectIdent("step"); err != nil {
			return err
		}
		st, err := p.parseValueRef()
		if err != nil {
			return err
		}
		op := mlir.NewOp(mlir.OpSCFFor, []*mlir.Value{lo, hi, st}, nil)
		r := op.AddRegion()
		body := mlir.NewBlock(mlir.Index())
		r.AddBlock(body)
		p.values[iv.text] = body.Args[0]
		blk.Append(op)
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		if err := p.parseRegionInto(r, true); err != nil {
			return err
		}
		return p.maybeAttrDict(op)

	case mlir.OpSCFIf:
		cond, err := p.parseValueRef()
		if err != nil {
			return err
		}
		op := mlir.NewOp(mlir.OpSCFIf, []*mlir.Value{cond}, nil)
		tr := op.AddRegion()
		tr.AddBlock(mlir.NewBlock())
		blk.Append(op)
		if err := p.expectPunct("{"); err != nil {
			return err
		}
		if err := p.parseRegionInto(tr, true); err != nil {
			return err
		}
		if p.isIdent("else") {
			p.next()
			er := op.AddRegion()
			er.AddBlock(mlir.NewBlock())
			if err := p.expectPunct("{"); err != nil {
				return err
			}
			if err := p.parseRegionInto(er, true); err != nil {
				return err
			}
		}
		return p.maybeAttrDict(op)

	case mlir.OpAffineYield, mlir.OpSCFYield:
		operands, err := p.parseValueList()
		if err != nil {
			return err
		}
		op := mlir.NewOp(name, operands, nil)
		blk.Append(op)
		return p.maybeAttrDict(op)

	case mlir.OpReturn:
		var operands []*mlir.Value
		for p.cur().kind == tokValueID {
			v, err := p.parseValueRef()
			if err != nil {
				return err
			}
			if err := p.expectPunct(":"); err != nil {
				return err
			}
			if _, err := p.parseType(); err != nil {
				return err
			}
			operands = append(operands, v)
			if p.isPunct(",") {
				p.next()
			}
		}
		op := mlir.NewOp(name, operands, nil)
		blk.Append(op)
		return p.maybeAttrDict(op)

	case mlir.OpCall:
		sym := p.cur()
		if sym.kind != tokSymbol {
			return p.errf("expected callee symbol")
		}
		p.next()
		if err := p.expectPunct("("); err != nil {
			return err
		}
		args, err := p.parseValueList()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		for !p.isPunct(")") {
			if _, err := p.parseType(); err != nil {
				return err
			}
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
		if err := p.expectPunct("->"); err != nil {
			return err
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		var resTypes []*mlir.Type
		for !p.isPunct(")") {
			ty, err := p.parseType()
			if err != nil {
				return err
			}
			resTypes = append(resTypes, ty)
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
		op := mlir.NewOp(name, args, resTypes)
		op.SetAttr(mlir.AttrCallee, mlir.SymbolRefAttr(sym.text))
		blk.Append(op)
		if err := p.maybeAttrDict(op); err != nil {
			return err
		}
		return register(op)

	case mlir.OpBr:
		dest := p.cur()
		if dest.kind != tokBlockID {
			return p.errf("expected branch target")
		}
		p.next()
		var args []*mlir.Value
		if p.isPunct("(") {
			p.next()
			var err error
			args, err = p.parseValueList()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		}
		op := mlir.NewOp(name, args, nil)
		op.Succs = []*mlir.Block{p.getOrCreateBlock(dest.text)}
		blk.Append(op)
		return p.maybeAttrDict(op)

	case mlir.OpCondBr:
		cond, err := p.parseValueRef()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		parseTarget := func() (*mlir.Block, []*mlir.Value, error) {
			dest := p.cur()
			if dest.kind != tokBlockID {
				return nil, nil, p.errf("expected branch target")
			}
			p.next()
			var args []*mlir.Value
			if p.isPunct("(") {
				p.next()
				args, err = p.parseValueList()
				if err != nil {
					return nil, nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, nil, err
				}
			}
			return p.getOrCreateBlock(dest.text), args, nil
		}
		tBlk, tArgs, err := parseTarget()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		fBlk, fArgs, err := parseTarget()
		if err != nil {
			return err
		}
		operands := append([]*mlir.Value{cond}, tArgs...)
		operands = append(operands, fArgs...)
		op := mlir.NewOp(name, operands, nil)
		op.Succs = []*mlir.Block{tBlk, fBlk}
		op.SetAttr(mlir.AttrTrueCount, mlir.I(int64(len(tArgs))))
		op.SetAttr(mlir.AttrFalseCount, mlir.I(int64(len(fArgs))))
		blk.Append(op)
		return p.maybeAttrDict(op)
	}

	return p.errf("unknown operation %q", name)
}

// parseAffineFor parses: %iv = bound to bound step N { body } [attrs]
// where bound := INT | affine_map<...>(%operands).
func (p *parser) parseAffineFor(blk *mlir.Block) error {
	iv := p.cur()
	if iv.kind != tokValueID {
		return p.errf("expected induction variable")
	}
	p.next()
	if err := p.expectPunct("="); err != nil {
		return err
	}

	parseBound := func() (*mlir.AffineMap, []*mlir.Value, error) {
		t := p.cur()
		if t.kind == tokInt {
			p.next()
			v, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return nil, nil, p.errf("bad bound")
			}
			return mlir.ConstantMap(v), nil, nil
		}
		m, err := p.parseAffineMapLiteral()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, nil, err
		}
		operands, err := p.parseValueList()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, nil, err
		}
		return m, operands, nil
	}

	lower, lowerOps, err := parseBound()
	if err != nil {
		return err
	}
	if err := p.expectIdent("to"); err != nil {
		return err
	}
	upper, upperOps, err := parseBound()
	if err != nil {
		return err
	}
	step := int64(1)
	if p.isIdent("step") {
		p.next()
		st := p.cur()
		if st.kind != tokInt {
			return p.errf("expected step constant")
		}
		p.next()
		step, err = strconv.ParseInt(st.text, 10, 64)
		if err != nil {
			return p.errf("bad step")
		}
	}

	operands := append(append([]*mlir.Value{}, lowerOps...), upperOps...)
	op := mlir.NewOp(mlir.OpAffineFor, operands, nil)
	op.SetAttr(mlir.AttrLowerMap, mlir.AffineMapAttr{Map: lower})
	op.SetAttr(mlir.AttrUpperMap, mlir.AffineMapAttr{Map: upper})
	op.SetAttr(mlir.AttrStep, mlir.I(step))
	op.SetAttr(mlir.AttrLBCount, mlir.I(int64(len(lowerOps))))
	r := op.AddRegion()
	body := mlir.NewBlock(mlir.Index())
	r.AddBlock(body)
	p.values[iv.text] = body.Args[0]
	blk.Append(op)

	if err := p.expectPunct("{"); err != nil {
		return err
	}
	if err := p.parseRegionInto(r, true); err != nil {
		return err
	}
	return p.maybeAttrDict(op)
}

// parseGenericOp parses the fallback form:
//
//	"op.name"(%ops) {attrs} : (inTypes) -> (outTypes) [{region}...]
func (p *parser) parseGenericOp(blk *mlir.Block, resultNames []string) error {
	name := p.next().text
	if err := p.expectPunct("("); err != nil {
		return err
	}
	operands, err := p.parseValueList()
	if err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	var attrs map[string]mlir.Attr
	if p.isPunct("{") {
		attrs, err = p.parseAttrDict()
		if err != nil {
			return err
		}
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for !p.isPunct(")") {
		if _, err := p.parseType(); err != nil {
			return err
		}
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next()
	if err := p.expectPunct("->"); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var resTypes []*mlir.Type
	for !p.isPunct(")") {
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		resTypes = append(resTypes, ty)
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next()
	op := mlir.NewOp(name, operands, resTypes)
	for k, v := range attrs {
		op.SetAttr(k, v)
	}
	blk.Append(op)
	for p.isPunct("{") {
		p.next()
		r := op.AddRegion()
		r.AddBlock(mlir.NewBlock())
		if err := p.parseRegionInto(r, false); err != nil {
			return err
		}
	}
	if len(resultNames) != len(op.Results) {
		return p.errf("generic op result count mismatch")
	}
	for i, n := range resultNames {
		p.values[n] = op.Result(i)
	}
	return nil
}

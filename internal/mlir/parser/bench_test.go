package parser_test

import (
	"testing"

	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/polybench"
)

// benchModule builds the gemm MINI kernel — a representative module for
// the parse→clone→print hot path the flow pipeline exercises at every
// unit boundary.
func benchModule(b *testing.B) *mlir.Module {
	b.Helper()
	k := polybench.Get("gemm")
	if k == nil {
		b.Fatal("gemm not registered")
	}
	s, err := k.SizeOf("MINI")
	if err != nil {
		b.Fatal(err)
	}
	return k.Build(s)
}

// BenchmarkParseClonePrint measures the three MLIR-side operations the
// incremental layer and the flow pipeline lean on: text parsing (cursor
// materialization), op cloning (fallback builders, bisection replay), and
// printing (unit snapshots and memo keys).
func BenchmarkParseClonePrint(b *testing.B) {
	m := benchModule(b)
	text := m.Print()

	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parser.Parse(text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mlir.CloneOp(m.Op, make(map[*mlir.Value]*mlir.Value), make(map[*mlir.Block]*mlir.Block))
		}
	})
	b.Run("print", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m.Print() == "" {
				b.Fatal("empty print")
			}
		}
	})
}

package parser

import (
	"testing"

	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/mlir/passes"
)

// TestRoundTripLoweredModules prints fully-lowered (cf-level, multi-block)
// modules and re-parses them, covering block labels, block arguments, and
// branch syntax in the printer/parser pair.
func TestRoundTripLoweredModules(t *testing.T) {
	build := func() *mlir.Module {
		m := mlir.NewModule()
		ty := mlir.MemRef([]int64{6, 6}, mlir.F32())
		_, args := m.AddFunc("low", []*mlir.Type{ty}, nil)
		b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("low")))
		b.AffineForConst(0, 6, 1, func(b *mlir.Builder, i *mlir.Value) {
			b.AffineForConst(0, 6, 1, func(b *mlir.Builder, j *mlir.Value) {
				v := b.AffineLoad(args[0], i, j)
				zero := b.ConstantFloat(0, mlir.F32())
				neg := b.CmpF(mlir.PredOLT, v, zero)
				b.SCFIf(neg, func(b *mlir.Builder) {
					z := b.ConstantFloat(0, mlir.F32())
					b.AffineStore(z, args[0], i, j)
				}, nil)
			})
		})
		b.Return()
		return m
	}

	for _, stage := range []string{"affine", "scf", "cf"} {
		m := build()
		if err := passes.PipelineInnermost(1).Run(m); err != nil {
			t.Fatal(err)
		}
		if stage != "affine" {
			if err := lower.AffineToSCF(m); err != nil {
				t.Fatal(err)
			}
		}
		if stage == "cf" {
			if err := lower.SCFToCF(m); err != nil {
				t.Fatal(err)
			}
		}
		first := m.Print()
		m2, err := Parse(first)
		if err != nil {
			t.Fatalf("stage %s: reparse failed: %v\n%s", stage, err, first)
		}
		second := m2.Print()
		if first != second {
			t.Fatalf("stage %s: round trip unstable.\nfirst:\n%s\nsecond:\n%s",
				stage, first, second)
		}
		if err := m2.Verify(); err != nil {
			t.Fatalf("stage %s: reparsed module invalid: %v", stage, err)
		}
	}
}

// TestLoweredDirectivesSurvive checks that hls attrs on latch branches
// survive the text round trip at the cf level.
func TestLoweredDirectivesSurvive(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F32())
	_, args := m.AddFunc("d", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("d")))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(v, args[0], i)
	})
	b.Return()
	if err := passes.PipelineInnermost(2).Run(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	m2, err := Parse(m.Print())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	mlir.Walk(m2.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpBr && o.HasAttr(mlir.AttrPipeline) {
			found = true
			if ii, _ := o.IntAttr(mlir.AttrII); ii != 2 {
				t.Errorf("II lost: %d", ii)
			}
		}
		return true
	})
	if !found {
		t.Error("latch directives lost in text round trip")
	}
}

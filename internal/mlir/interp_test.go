package mlir

import (
	"strings"
	"testing"
)

func TestInterpScalarOps(t *testing.T) {
	m := NewModule()
	ty := MemRef([]int64{6}, F64())
	ity := MemRef([]int64{6}, I64())
	_, args := m.AddFunc("ops", []*Type{ty, ity}, nil)
	b := NewBuilder(FuncBody(m.FindFunc("ops")))
	i0 := b.ConstantIndex(0)
	i1 := b.ConstantIndex(1)
	i2 := b.ConstantIndex(2)
	i3 := b.ConstantIndex(3)
	i4 := b.ConstantIndex(4)
	i5 := b.ConstantIndex(5)
	f2 := b.ConstantFloat(2, F64())
	f3 := b.ConstantFloat(3, F64())
	b.AffineStore(b.AddF(f2, f3), args[0], i0) // 5
	b.AffineStore(b.SubF(f2, f3), args[0], i1) // -1
	b.AffineStore(b.MulF(f2, f3), args[0], i2) // 6
	b.AffineStore(b.DivF(f3, f2), args[0], i3) // 1.5
	b.AffineStore(b.NegF(f2), args[0], i4)     // -2
	sqrtv := b.Create(OpMathSqrt, []*Value{b.ConstantFloat(9, F64())}, []*Type{F64()}).Result(0)
	b.AffineStore(sqrtv, args[0], i5) // 3

	c7 := b.ConstantInt(7, I64())
	c3 := b.ConstantInt(3, I64())
	st := func(v *Value, at *Value) {
		b.Create(OpAffineStore, []*Value{v, args[1], at}, nil).SetAttr(AttrMap, AffineMapAttr{IdentityMap(1)})
	}
	st(b.AddI(c7, c3), i0)  // 10
	st(b.SubI(c7, c3), i1)  // 4
	st(b.MulI(c7, c3), i2)  // 21
	st(b.DivSI(c7, c3), i3) // 2
	st(b.RemSI(c7, c3), i4) // 1
	st(b.MinSI(c7, c3), i5) // 3
	b.Return()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	fb := NewMemBuf(ty)
	ib := NewMemBuf(ity)
	if err := m.Interpret("ops", fb, ib); err != nil {
		t.Fatal(err)
	}
	wantF := []float64{5, -1, 6, 1.5, -2, 3}
	for i, w := range wantF {
		if fb.F[i] != w {
			t.Errorf("float slot %d = %g, want %g", i, fb.F[i], w)
		}
	}
	wantI := []int64{10, 4, 21, 2, 1, 3}
	for i, w := range wantI {
		if ib.I[i] != w {
			t.Errorf("int slot %d = %d, want %d", i, ib.I[i], w)
		}
	}
}

func TestInterpSelectAndCmp(t *testing.T) {
	m := NewModule()
	ty := MemRef([]int64{2}, F64())
	_, args := m.AddFunc("sel", []*Type{ty}, nil)
	b := NewBuilder(FuncBody(m.FindFunc("sel")))
	i0 := b.ConstantIndex(0)
	i1 := b.ConstantIndex(1)
	a := b.ConstantFloat(1, F64())
	c := b.ConstantFloat(2, F64())
	lt := b.CmpF(PredOLT, a, c)
	b.AffineStore(b.Select(lt, a, c), args[0], i0) // 1
	ge := b.CmpI(PredSGE, i1, i0)
	b.AffineStore(b.Select(ge, c, a), args[0], i1) // 2
	b.Return()
	buf := NewMemBuf(ty)
	if err := m.Interpret("sel", buf); err != nil {
		t.Fatal(err)
	}
	if buf.F[0] != 1 || buf.F[1] != 2 {
		t.Errorf("select results: %v", buf.F)
	}
}

func TestInterpSCFIfBothArms(t *testing.T) {
	m := NewModule()
	ty := MemRef([]int64{4}, F64())
	_, args := m.AddFunc("arms", []*Type{ty}, nil)
	b := NewBuilder(FuncBody(m.FindFunc("arms")))
	b.AffineForConst(0, 4, 1, func(b *Builder, i *Value) {
		two := b.ConstantIndex(2)
		cond := b.CmpI(PredSLT, i, two)
		b.SCFIf(cond, func(b *Builder) {
			v := b.ConstantFloat(1, F64())
			b.AffineStore(v, args[0], i)
		}, func(b *Builder) {
			v := b.ConstantFloat(-1, F64())
			b.AffineStore(v, args[0], i)
		})
	})
	b.Return()
	buf := NewMemBuf(ty)
	if err := m.Interpret("arms", buf); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, -1, -1}
	for i, w := range want {
		if buf.F[i] != w {
			t.Errorf("arms[%d] = %g, want %g", i, buf.F[i], w)
		}
	}
}

func TestInterpErrors(t *testing.T) {
	ty := MemRef([]int64{4}, F64())

	t.Run("missing function", func(t *testing.T) {
		m := NewModule()
		if err := m.Interpret("ghost"); err == nil {
			t.Error("expected missing-function error")
		}
	})

	t.Run("wrong arg count", func(t *testing.T) {
		m := NewModule()
		m.AddFunc("f", []*Type{ty}, nil)
		b := NewBuilder(FuncBody(m.FindFunc("f")))
		b.Return()
		if err := m.Interpret("f"); err == nil {
			t.Error("expected arity error")
		}
	})

	t.Run("type mismatch", func(t *testing.T) {
		m := NewModule()
		m.AddFunc("f", []*Type{ty}, nil)
		b := NewBuilder(FuncBody(m.FindFunc("f")))
		b.Return()
		wrong := NewMemBuf(MemRef([]int64{8}, F64()))
		if err := m.Interpret("f", wrong); err == nil {
			t.Error("expected shape mismatch error")
		}
	})

	t.Run("out of bounds", func(t *testing.T) {
		m := NewModule()
		_, args := m.AddFunc("oob", []*Type{ty}, nil)
		b := NewBuilder(FuncBody(m.FindFunc("oob")))
		i9 := b.ConstantIndex(9)
		v := b.ConstantFloat(1, F64())
		b.AffineStore(v, args[0], i9)
		b.Return()
		err := m.Interpret("oob", NewMemBuf(ty))
		if err == nil || !strings.Contains(err.Error(), "out of bounds") {
			t.Errorf("expected bounds error, got %v", err)
		}
	})

	t.Run("division by zero", func(t *testing.T) {
		m := NewModule()
		_, args := m.AddFunc("dz", []*Type{MemRef([]int64{1}, I64())}, nil)
		b := NewBuilder(FuncBody(m.FindFunc("dz")))
		z := b.ConstantInt(0, I64())
		one := b.ConstantInt(1, I64())
		q := b.DivSI(one, z)
		op := NewOp(OpAffineStore, []*Value{q, args[0], b.ConstantIndex(0)}, nil)
		op.SetAttr(AttrMap, AffineMapAttr{IdentityMap(1)})
		b.Block().Append(op)
		b.Return()
		if err := m.Interpret("dz", NewMemBuf(MemRef([]int64{1}, I64()))); err == nil {
			t.Error("expected division-by-zero error")
		}
	})
}

func TestInterpF32Rounding(t *testing.T) {
	// f32 arithmetic must round per op, like hardware would.
	m := NewModule()
	ty := MemRef([]int64{1}, F32())
	_, args := m.AddFunc("r", []*Type{ty}, nil)
	b := NewBuilder(FuncBody(m.FindFunc("r")))
	big := b.ConstantFloat(1e8, F32())
	one := b.ConstantFloat(1, F32())
	s := b.AddF(big, one)
	b.AffineStore(s, args[0], b.ConstantIndex(0))
	b.Return()
	buf := NewMemBuf(ty)
	if err := m.Interpret("r", buf); err != nil {
		t.Fatal(err)
	}
	if buf.F[0] != float64(float32(1e8)) {
		t.Errorf("f32 addition not rounded: %g", buf.F[0])
	}
}

func TestCloneOpDeep(t *testing.T) {
	m := NewModule()
	ty := MemRef([]int64{4}, F64())
	_, args := m.AddFunc("src", []*Type{ty}, nil)
	b := NewBuilder(FuncBody(m.FindFunc("src")))
	loop := b.AffineForConst(0, 4, 1, func(b *Builder, i *Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(b.AddF(v, v), args[0], i)
	})
	b.Return()

	vmap := map[*Value]*Value{}
	clone := CloneOp(loop, vmap, nil)
	if clone == loop {
		t.Fatal("clone is the original")
	}
	if len(clone.Regions) != 1 || len(clone.Regions[0].Blocks) != 1 {
		t.Fatal("region structure not cloned")
	}
	origBody := loop.Regions[0].Blocks[0]
	cloneBody := clone.Regions[0].Blocks[0]
	if cloneBody == origBody || cloneBody.Args[0] == origBody.Args[0] {
		t.Error("body not deep-copied")
	}
	if len(cloneBody.Ops) != len(origBody.Ops) {
		t.Error("ops not copied")
	}
	// Cloned ops must reference cloned values, not originals.
	for _, op := range cloneBody.Ops {
		for _, v := range op.Operands {
			if v == origBody.Args[0] {
				t.Error("clone references original IV")
			}
		}
	}
	// External references (the memref arg) stay shared.
	load := cloneBody.Ops[0]
	if load.Operands[0] != args[0] {
		t.Error("external operand should remain shared")
	}
}

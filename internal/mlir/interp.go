package mlir

import (
	"errors"
	"fmt"
	"math"
)

// ErrFuel is returned when an interpretation exceeds its step budget —
// the signal that a (possibly corrupted) module diverged into an infinite
// loop instead of terminating. Callers distinguish it from semantic errors
// with errors.Is.
var ErrFuel = errors.New("mlir interp: out of fuel")

// DefaultFuel bounds the number of ops a single Interpret call may
// execute. Generous for every polybench preset, small enough that a
// miscompiled loop nest cannot hang a differential run.
const DefaultFuel = 200_000_000

// MemBuf is a flat row-major buffer backing a memref during interpretation.
type MemBuf struct {
	Ty *Type
	F  []float64 // used when the element type is float
	I  []int64   // used when the element type is int/index
}

// NewMemBuf allocates a zeroed buffer for a static memref type.
func NewMemBuf(ty *Type) *MemBuf {
	if !ty.HasStaticShape() {
		panic("mlir: NewMemBuf requires a static memref type")
	}
	n := ty.NumElements()
	b := &MemBuf{Ty: ty}
	if ty.Elem.IsFloat() {
		b.F = make([]float64, n)
	} else {
		b.I = make([]int64, n)
	}
	return b
}

// linearIndex converts multi-dimensional indices to a row-major offset.
func (b *MemBuf) linearIndex(idxs []int64) (int64, error) {
	if len(idxs) != len(b.Ty.Shape) {
		return 0, fmt.Errorf("index rank %d != memref rank %d", len(idxs), len(b.Ty.Shape))
	}
	off := int64(0)
	for i, x := range idxs {
		if x < 0 || x >= b.Ty.Shape[i] {
			return 0, fmt.Errorf("index %d out of bounds [0,%d) in dim %d", x, b.Ty.Shape[i], i)
		}
		off = off*b.Ty.Shape[i] + x
	}
	return off, nil
}

// interpVal is a dynamically-typed interpreter value.
type interpVal struct {
	i   int64
	f   float64
	buf *MemBuf
}

// Interpret executes the named function on the given memref arguments,
// mutating them in place. Scalar arguments and results are not supported
// (the HLS kernels communicate exclusively through memrefs). Both
// structured (affine/scf) and cf-lowered multi-block bodies execute;
// execution is bounded by DefaultFuel.
func (m *Module) Interpret(funcName string, args ...*MemBuf) error {
	return m.InterpretWithFuel(funcName, DefaultFuel, args...)
}

// InterpretWithFuel is Interpret with an explicit step budget; exceeding
// it returns an error satisfying errors.Is(err, ErrFuel).
func (m *Module) InterpretWithFuel(funcName string, fuel int64, args ...*MemBuf) error {
	f := m.FindFunc(funcName)
	if f == nil {
		return fmt.Errorf("interp: function %q not found", funcName)
	}
	body := FuncBody(f)
	if len(args) != len(body.Args) {
		return fmt.Errorf("interp: %q takes %d args, got %d", funcName, len(body.Args), len(args))
	}
	env := map[*Value]interpVal{}
	for i, a := range body.Args {
		if !a.Type().IsMemRef() {
			return fmt.Errorf("interp: argument %d is not a memref", i)
		}
		if !a.Type().Equal(args[i].Ty) {
			return fmt.Errorf("interp: argument %d type mismatch: %s vs %s", i, a.Type(), args[i].Ty)
		}
		env[a] = interpVal{buf: args[i]}
	}
	it := &interpreter{m: m, env: env, fuel: fuel}
	if len(f.Regions[0].Blocks) == 1 {
		return it.runBlock(body)
	}
	return it.runCF(f.Regions[0].Blocks)
}

type interpreter struct {
	m    *Module
	env  map[*Value]interpVal
	fuel int64
}

// runCF executes a cf-lowered multi-block function body: straight-line ops
// run in order, and branch terminators transfer control, binding their
// operands to the successor's block arguments (the SSA form of phi nodes).
func (it *interpreter) runCF(blocks []*Block) error {
	cur := blocks[0]
	for {
		n := len(cur.Ops)
		if n == 0 {
			return fmt.Errorf("interp: block without terminator")
		}
		for _, op := range cur.Ops[:n-1] {
			if err := it.runOp(op); err != nil {
				return err
			}
		}
		term := cur.Ops[n-1]
		if it.fuel--; it.fuel < 0 {
			return ErrFuel
		}
		switch term.Name {
		case OpReturn:
			return nil
		case OpBr:
			if len(term.Succs) != 1 {
				return fmt.Errorf("interp: cf.br with %d successors", len(term.Succs))
			}
			it.bindBlockArgs(term.Succs[0], term.Operands)
			cur = term.Succs[0]
		case OpCondBr:
			if len(term.Succs) != 2 {
				return fmt.Errorf("interp: cf.cond_br with %d successors", len(term.Succs))
			}
			tc, _ := term.IntAttr(AttrTrueCount)
			fc, _ := term.IntAttr(AttrFalseCount)
			if int64(len(term.Operands)) != 1+tc+fc {
				return fmt.Errorf("interp: cf.cond_br operand segments disagree with operand count")
			}
			if it.intVal(term.Operands[0]) != 0 {
				it.bindBlockArgs(term.Succs[0], term.Operands[1:1+tc])
				cur = term.Succs[0]
			} else {
				it.bindBlockArgs(term.Succs[1], term.Operands[1+tc:])
				cur = term.Succs[1]
			}
		default:
			return fmt.Errorf("interp: unsupported cf terminator %s", term.Name)
		}
	}
}

// bindBlockArgs copies branch operand values into the successor's block
// arguments. Values are snapshotted before any argument is overwritten so
// a branch whose operands read the target's current arguments (a loop
// latch) binds from the pre-branch state.
func (it *interpreter) bindBlockArgs(dst *Block, operands []*Value) {
	vals := make([]interpVal, len(operands))
	for i, v := range operands {
		vals[i] = it.val(v)
	}
	for i, a := range dst.Args {
		if i < len(vals) {
			it.env[a] = vals[i]
		}
	}
}

func (it *interpreter) val(v *Value) interpVal { return it.env[v] }

func (it *interpreter) intVal(v *Value) int64 { return it.env[v].i }

func (it *interpreter) runBlock(b *Block) error {
	for _, op := range b.Ops {
		if err := it.runOp(op); err != nil {
			return err
		}
	}
	return nil
}

func (it *interpreter) evalMap(m *AffineMap, operands []*Value) []int64 {
	vals := make([]int64, len(operands))
	for i, v := range operands {
		vals[i] = it.intVal(v)
	}
	return m.Eval(vals[:m.NumDims], vals[m.NumDims:])
}

func (it *interpreter) runOp(op *Op) error {
	if it.fuel--; it.fuel < 0 {
		return ErrFuel
	}
	switch op.Name {
	case OpConstant:
		switch a := op.Attrs[AttrValue].(type) {
		case IntAttr:
			it.env[op.Result(0)] = interpVal{i: a.Value}
		case FloatAttr:
			it.env[op.Result(0)] = interpVal{f: a.Value}
		}
		return nil

	case OpAddI, OpSubI, OpMulI, OpDivSI, OpRemSI, OpMinSI, OpMaxSI:
		l, r := it.intVal(op.Operands[0]), it.intVal(op.Operands[1])
		var v int64
		switch op.Name {
		case OpAddI:
			v = l + r
		case OpSubI:
			v = l - r
		case OpMulI:
			v = l * r
		case OpDivSI:
			if r == 0 {
				return fmt.Errorf("interp: division by zero")
			}
			v = l / r
		case OpRemSI:
			if r == 0 {
				return fmt.Errorf("interp: remainder by zero")
			}
			v = l % r
		case OpMinSI:
			v = l
			if r < l {
				v = r
			}
		case OpMaxSI:
			v = l
			if r > l {
				v = r
			}
		}
		it.env[op.Result(0)] = interpVal{i: v}
		return nil

	case OpAddF, OpSubF, OpMulF, OpDivF:
		l, r := it.val(op.Operands[0]).f, it.val(op.Operands[1]).f
		var v float64
		switch op.Name {
		case OpAddF:
			v = l + r
		case OpSubF:
			v = l - r
		case OpMulF:
			v = l * r
		case OpDivF:
			v = l / r
		}
		v = truncToElem(v, op.Result(0).Type())
		it.env[op.Result(0)] = interpVal{f: v}
		return nil

	case OpNegF:
		it.env[op.Result(0)] = interpVal{f: -it.val(op.Operands[0]).f}
		return nil

	case OpMathSqrt:
		it.env[op.Result(0)] = interpVal{f: math.Sqrt(it.val(op.Operands[0]).f)}
		return nil

	case OpMathExp:
		it.env[op.Result(0)] = interpVal{f: truncToElem(math.Exp(it.val(op.Operands[0]).f), op.Result(0).Type())}
		return nil

	case OpCmpI:
		pred, _ := op.StringAttr(AttrPredicate)
		l, r := it.intVal(op.Operands[0]), it.intVal(op.Operands[1])
		it.env[op.Result(0)] = interpVal{i: boolToInt(evalIntPred(pred, l, r))}
		return nil

	case OpCmpF:
		pred, _ := op.StringAttr(AttrPredicate)
		l, r := it.val(op.Operands[0]).f, it.val(op.Operands[1]).f
		it.env[op.Result(0)] = interpVal{i: boolToInt(evalFloatPred(pred, l, r))}
		return nil

	case OpSelect:
		if it.intVal(op.Operands[0]) != 0 {
			it.env[op.Result(0)] = it.val(op.Operands[1])
		} else {
			it.env[op.Result(0)] = it.val(op.Operands[2])
		}
		return nil

	case OpIndexCast:
		it.env[op.Result(0)] = interpVal{i: it.intVal(op.Operands[0])}
		return nil

	case OpSIToFP:
		it.env[op.Result(0)] = interpVal{f: float64(it.intVal(op.Operands[0]))}
		return nil

	case OpFPToSI:
		it.env[op.Result(0)] = interpVal{i: int64(it.val(op.Operands[0]).f)}
		return nil

	case OpExtF:
		it.env[op.Result(0)] = it.val(op.Operands[0])
		return nil

	case OpTruncF:
		it.env[op.Result(0)] = interpVal{f: truncToElem(it.val(op.Operands[0]).f, op.Result(0).Type())}
		return nil

	case OpAlloc, OpAlloca:
		it.env[op.Result(0)] = interpVal{buf: NewMemBuf(op.Result(0).Type())}
		return nil

	case OpDealloc:
		return nil

	case OpLoad:
		return it.doLoad(op, op.Operands[0], op.Operands[1:], nil)

	case OpStore:
		return it.doStore(op, op.Operands[0], op.Operands[1], op.Operands[2:], nil)

	case OpAffineLoad:
		v := AffineAccessView{op}
		return it.doLoad(op, v.MemRef(), v.MapOperands(), v.Map())

	case OpAffineStore:
		v := AffineAccessView{op}
		return it.doStore(op, v.StoredValue(), v.MemRef(), v.MapOperands(), v.Map())

	case OpAffineApply:
		m, _ := op.MapAttr(AttrMap)
		it.env[op.Result(0)] = interpVal{i: it.evalMap(m, op.Operands)[0]}
		return nil

	case OpAffineFor:
		fv := AffineForView{Op: op}
		lo := it.evalMap(fv.LowerMap(), fv.LowerOperands())[0]
		hi := it.evalMap(fv.UpperMap(), fv.UpperOperands())[0]
		step := fv.Step()
		body := fv.Body()
		for i := lo; i < hi; i += step {
			it.env[body.Args[0]] = interpVal{i: i}
			if err := it.runBlock(body); err != nil {
				return err
			}
		}
		return nil

	case OpSCFFor:
		lo := it.intVal(op.Operands[0])
		hi := it.intVal(op.Operands[1])
		step := it.intVal(op.Operands[2])
		if step <= 0 {
			return fmt.Errorf("interp: non-positive scf.for step")
		}
		body := op.Regions[0].Blocks[0]
		for i := lo; i < hi; i += step {
			it.env[body.Args[0]] = interpVal{i: i}
			if err := it.runBlock(body); err != nil {
				return err
			}
		}
		return nil

	case OpSCFIf:
		if it.intVal(op.Operands[0]) != 0 {
			return it.runBlock(op.Regions[0].Blocks[0])
		}
		if len(op.Regions) > 1 {
			return it.runBlock(op.Regions[1].Blocks[0])
		}
		return nil

	case OpAffineYield, OpSCFYield, OpReturn:
		return nil

	case OpCall:
		return fmt.Errorf("interp: func.call is not supported")
	}
	return fmt.Errorf("interp: unsupported op %s", op.Name)
}

func (it *interpreter) doLoad(op *Op, mem *Value, idxOperands []*Value, m *AffineMap) error {
	buf := it.val(mem).buf
	if buf == nil {
		return fmt.Errorf("interp: load from unmaterialized memref")
	}
	var idxs []int64
	if m != nil {
		idxs = it.evalMap(m, idxOperands)
	} else {
		idxs = make([]int64, len(idxOperands))
		for i, v := range idxOperands {
			idxs[i] = it.intVal(v)
		}
	}
	off, err := buf.linearIndex(idxs)
	if err != nil {
		return fmt.Errorf("interp: %s: %w", op.Name, err)
	}
	if buf.Ty.Elem.IsFloat() {
		it.env[op.Result(0)] = interpVal{f: buf.F[off]}
	} else {
		it.env[op.Result(0)] = interpVal{i: buf.I[off]}
	}
	return nil
}

func (it *interpreter) doStore(op *Op, val, mem *Value, idxOperands []*Value, m *AffineMap) error {
	buf := it.val(mem).buf
	if buf == nil {
		return fmt.Errorf("interp: store to unmaterialized memref")
	}
	var idxs []int64
	if m != nil {
		idxs = it.evalMap(m, idxOperands)
	} else {
		idxs = make([]int64, len(idxOperands))
		for i, v := range idxOperands {
			idxs[i] = it.intVal(v)
		}
	}
	off, err := buf.linearIndex(idxs)
	if err != nil {
		return fmt.Errorf("interp: %s: %w", op.Name, err)
	}
	if buf.Ty.Elem.IsFloat() {
		buf.F[off] = truncToElem(it.val(val).f, buf.Ty.Elem)
	} else {
		buf.I[off] = it.intVal(val)
	}
	return nil
}

// truncToElem rounds a float64 through the precision of the element type so
// f32 kernels behave like f32 hardware.
func truncToElem(v float64, ty *Type) float64 {
	if ty != nil && ty.IsFloat() && ty.Width == 32 {
		return float64(float32(v))
	}
	return v
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func evalIntPred(pred string, l, r int64) bool {
	switch pred {
	case PredEQ:
		return l == r
	case PredNE:
		return l != r
	case PredSLT:
		return l < r
	case PredSLE:
		return l <= r
	case PredSGT:
		return l > r
	case PredSGE:
		return l >= r
	}
	return false
}

func evalFloatPred(pred string, l, r float64) bool {
	switch pred {
	case PredOEQ:
		return l == r
	case PredONE:
		return l != r
	case PredOLT:
		return l < r
	case PredOLE:
		return l <= r
	case PredOGT:
		return l > r
	case PredOGE:
		return l >= r
	}
	return false
}

package mlir

import (
	"strings"
	"testing"
)

// buildVecAdd builds: func @vecadd(%a, %b, %c: memref<16xf32>) with an
// affine loop adding elementwise.
func buildVecAdd() *Module {
	m := NewModule()
	ty := MemRef([]int64{16}, F32())
	_, args := m.AddFunc("vecadd", []*Type{ty, ty, ty}, nil)
	b := NewBuilder(FuncBody(m.FindFunc("vecadd")))
	b.AffineForConst(0, 16, 1, func(b *Builder, iv *Value) {
		x := b.AffineLoad(args[0], iv)
		y := b.AffineLoad(args[1], iv)
		s := b.AddF(x, y)
		b.AffineStore(s, args[2], iv)
	})
	b.Return()
	return m
}

func TestBuildAndVerify(t *testing.T) {
	m := buildVecAdd()
	if err := m.Verify(); err != nil {
		t.Fatalf("verify failed: %v", err)
	}
	f := m.FindFunc("vecadd")
	if f == nil {
		t.Fatal("function not found")
	}
	if FuncName(f) != "vecadd" {
		t.Errorf("FuncName = %q", FuncName(f))
	}
	body := FuncBody(f)
	if len(body.Ops) != 2 {
		t.Fatalf("body has %d ops, want 2 (loop + return)", len(body.Ops))
	}
	loop, ok := AsAffineFor(body.Ops[0])
	if !ok {
		t.Fatal("first op should be affine.for")
	}
	lo, hi, cok := loop.ConstantBounds()
	if !cok || lo != 0 || hi != 16 {
		t.Errorf("bounds = %d..%d ok=%v", lo, hi, cok)
	}
	if tc, ok := loop.ConstantTripCount(); !ok || tc != 16 {
		t.Errorf("trip count = %d ok=%v", tc, ok)
	}
}

func TestWalkCountsOps(t *testing.T) {
	m := buildVecAdd()
	count := map[string]int{}
	Walk(m.Op, func(o *Op) bool {
		count[o.Name]++
		return true
	})
	if count[OpAffineLoad] != 2 || count[OpAffineStore] != 1 || count[OpAddF] != 1 {
		t.Errorf("op counts wrong: %v", count)
	}
	if count[OpAffineYield] != 1 {
		t.Errorf("missing affine.yield: %v", count)
	}
}

func TestWalkSkipRegions(t *testing.T) {
	m := buildVecAdd()
	var seen []string
	Walk(m.Op, func(o *Op) bool {
		seen = append(seen, o.Name)
		return o.Name != OpAffineFor // don't descend into the loop
	})
	for _, n := range seen {
		if n == OpAffineLoad {
			t.Error("Walk descended into skipped region")
		}
	}
}

func TestReplaceAllUses(t *testing.T) {
	m := buildVecAdd()
	f := m.FindFunc("vecadd")
	args := FuncBody(f).Args
	// Redirect all uses of %a to %b.
	ReplaceAllUses(f, args[0], args[1])
	if HasUses(f, args[0]) {
		t.Error("old value still has uses")
	}
	if !HasUses(f, args[1]) {
		t.Error("new value should have uses")
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify after RAUW: %v", err)
	}
}

func TestBlockInsertRemove(t *testing.T) {
	blk := NewBlock()
	b := NewBuilder(blk)
	v1 := b.ConstantIndex(1)
	v3 := b.ConstantIndex(3)
	mid := NewOp(OpConstant, nil, []*Type{Index()})
	mid.SetAttr(AttrValue, IntAttr{Value: 2, Ty: Index()})
	blk.InsertBefore(mid, v3.Def)
	if blk.Ops[1] != mid {
		t.Fatal("InsertBefore misplaced op")
	}
	after := NewOp(OpConstant, nil, []*Type{Index()})
	after.SetAttr(AttrValue, IntAttr{Value: 4, Ty: Index()})
	blk.InsertAfter(after, v3.Def)
	if blk.Ops[3] != after {
		t.Fatal("InsertAfter misplaced op")
	}
	blk.Remove(mid)
	if len(blk.Ops) != 3 || blk.Ops[0] != v1.Def {
		t.Fatal("Remove broke op list")
	}
	if mid.Block() != nil {
		t.Error("removed op still has parent")
	}
}

func TestEnclosingFunc(t *testing.T) {
	m := buildVecAdd()
	f := m.FindFunc("vecadd")
	var loadOp *Op
	Walk(m.Op, func(o *Op) bool {
		if o.Name == OpAffineLoad {
			loadOp = o
		}
		return true
	})
	if EnclosingFunc(loadOp) != f {
		t.Error("EnclosingFunc failed from nested op")
	}
	if EnclosingFunc(f) != f {
		t.Error("EnclosingFunc of func should be itself")
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	m := NewModule()
	ty := MemRef([]int64{4}, F32())
	_, args := m.AddFunc("bad", []*Type{ty}, nil)
	b := NewBuilder(FuncBody(m.FindFunc("bad")))
	// Load with too many indices.
	i := b.ConstantIndex(0)
	op := NewOp(OpLoad, []*Value{args[0], i, i}, []*Type{F32()})
	b.Block().Append(op)
	b.Return()
	if err := m.Verify(); err == nil {
		t.Error("verify should reject rank-mismatched load")
	}
}

func TestVerifyCatchesTypeMismatch(t *testing.T) {
	m := NewModule()
	_, _ = m.AddFunc("bad2", nil, nil)
	blk := FuncBody(m.FindFunc("bad2"))
	b := NewBuilder(blk)
	x := b.ConstantFloat(1, F32())
	y := b.ConstantFloat(2, F64())
	op := NewOp(OpAddF, []*Value{x, y}, []*Type{F32()})
	blk.Append(op)
	b.Return()
	if err := m.Verify(); err == nil {
		t.Error("verify should reject f32+f64")
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	m := NewModule()
	_, _ = m.AddFunc("ubd", nil, nil)
	blk := FuncBody(m.FindFunc("ubd"))
	b := NewBuilder(blk)
	// Build a constant, then an add placed BEFORE the constant.
	x := b.ConstantIndex(1)
	add := NewOp(OpAddI, []*Value{x, x}, []*Type{Index()})
	blk.InsertBefore(add, x.Def)
	b.Return()
	if err := m.Verify(); err == nil {
		t.Error("verify should reject use before def")
	}
}

func TestOpAttrHelpers(t *testing.T) {
	op := NewOp("test.op", nil, nil)
	op.SetAttr("n", I(5))
	op.SetAttr("s", StringAttr("hi"))
	op.SetAttr("m", AffineMapAttr{ConstantMap(3)})
	if v, ok := op.IntAttr("n"); !ok || v != 5 {
		t.Error("IntAttr failed")
	}
	if s, ok := op.StringAttr("s"); !ok || s != "hi" {
		t.Error("StringAttr failed")
	}
	if mp, ok := op.MapAttr("m"); !ok || mp == nil {
		t.Error("MapAttr failed")
	}
	if _, ok := op.IntAttr("missing"); ok {
		t.Error("missing attr should not be found")
	}
	if !op.HasAttr("n") || op.HasAttr("zzz") {
		t.Error("HasAttr wrong")
	}
}

func TestDialectName(t *testing.T) {
	if NewOp(OpAddF, nil, nil).Dialect() != "arith" {
		t.Error("dialect of arith.addf")
	}
	if NewOp("standalone", nil, nil).Dialect() != "standalone" {
		t.Error("dialect of dotless name")
	}
}

func TestPrintContainsStructure(t *testing.T) {
	m := buildVecAdd()
	out := m.Print()
	for _, want := range []string{
		"func.func @vecadd(%arg0: memref<16xf32>",
		"affine.for",
		"= 0 to 16 step 1",
		"affine.load %arg0[",
		"arith.addf",
		"affine.store",
		"func.return",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed module missing %q:\n%s", want, out)
		}
	}
}

func TestOpNamesUsed(t *testing.T) {
	m := buildVecAdd()
	names := m.OpNamesUsed()
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	if !has(OpAffineFor) || !has(OpAddF) || !has(OpModule) {
		t.Errorf("OpNamesUsed = %v", names)
	}
}

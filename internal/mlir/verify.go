package mlir

import (
	"fmt"
)

// VerifyError describes a structural violation found by Verify.
type VerifyError struct {
	Op  *Op
	Msg string
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("verify: %s: %s", e.Op.Name, e.Msg)
}

// Verify checks structural invariants of the module: parent links, block
// terminators, operand/result typing for known ops, and def-before-use
// (structural dominance for single-block regions, CFG dominance for
// multi-block regions).
func (m *Module) Verify() error {
	var errs []error
	for _, f := range m.Funcs() {
		errs = append(errs, verifyFunc(f)...)
	}
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

func verifyFunc(f *Op) []error {
	var errs []error
	fail := func(op *Op, format string, args ...any) {
		errs = append(errs, &VerifyError{Op: op, Msg: fmt.Sprintf(format, args...)})
	}

	// Collect the set of visible values at each op via a scoped walk.
	scope := map[*Value]bool{}
	var visitRegion func(r *Region)

	visitBlockOps := func(b *Block) {
		for i, op := range b.Ops {
			if op.parent != b {
				fail(op, "parent link broken")
			}
			for oi, v := range op.Operands {
				if v == nil {
					fail(op, "nil operand %d", oi)
					continue
				}
				if !scope[v] {
					fail(op, "operand %d does not dominate use", oi)
				}
			}
			if op.IsTerminator() && i != len(b.Ops)-1 {
				fail(op, "terminator %s not at end of block", op.Name)
			}
			errs = append(errs, verifyOpTyping(op)...)
			for _, r := range op.Regions {
				if r.parent != op {
					fail(op, "region parent link broken")
				}
				visitRegion(r)
			}
			for _, res := range op.Results {
				scope[res] = true
			}
		}
	}

	visitRegion = func(r *Region) {
		if len(r.Blocks) == 0 {
			return
		}
		if len(r.Blocks) == 1 {
			b := r.Blocks[0]
			for _, a := range b.Args {
				scope[a] = true
			}
			visitBlockOps(b)
			return
		}
		// Multi-block (cf-level) region: approximate dominance by making
		// every block's args and all op results visible region-wide, then
		// separately check CFG properties.
		for _, b := range r.Blocks {
			for _, a := range b.Args {
				scope[a] = true
			}
			for _, op := range b.Ops {
				for _, res := range op.Results {
					scope[res] = true
				}
			}
		}
		for _, b := range r.Blocks {
			if t := b.Terminator(); t == nil || !t.IsTerminator() {
				fail(r.parent, "block lacks terminator")
			}
			visitBlockOps(b)
		}
	}

	if len(f.Regions) != 1 {
		fail(f, "func.func must have exactly one region")
		return errs
	}
	visitRegion(f.Regions[0])
	return errs
}

func verifyOpTyping(op *Op) []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, &VerifyError{Op: op, Msg: fmt.Sprintf(format, args...)})
	}
	wantOperands := func(n int) bool {
		if len(op.Operands) != n {
			fail("want %d operands, have %d", n, len(op.Operands))
			return false
		}
		return true
	}

	switch op.Name {
	case OpAddI, OpSubI, OpMulI, OpDivSI, OpRemSI, OpMinSI, OpMaxSI:
		if wantOperands(2) {
			if !op.Operands[0].Type().IsIntOrIndex() {
				fail("integer op on %s", op.Operands[0].Type())
			}
			if !op.Operands[0].Type().Equal(op.Operands[1].Type()) {
				fail("operand type mismatch")
			}
		}
	case OpAddF, OpSubF, OpMulF, OpDivF:
		if wantOperands(2) {
			if !op.Operands[0].Type().IsFloat() {
				fail("float op on %s", op.Operands[0].Type())
			}
			if !op.Operands[0].Type().Equal(op.Operands[1].Type()) {
				fail("operand type mismatch")
			}
		}
	case OpNegF:
		if wantOperands(1) && !op.Operands[0].Type().IsFloat() {
			fail("negf on %s", op.Operands[0].Type())
		}
	case OpCmpI:
		if wantOperands(2) && !op.Operands[0].Type().IsIntOrIndex() {
			fail("cmpi on %s", op.Operands[0].Type())
		}
	case OpCmpF:
		if wantOperands(2) && !op.Operands[0].Type().IsFloat() {
			fail("cmpf on %s", op.Operands[0].Type())
		}
	case OpSelect:
		if wantOperands(3) {
			if !op.Operands[0].Type().Equal(I1()) {
				fail("select condition must be i1")
			}
			if !op.Operands[1].Type().Equal(op.Operands[2].Type()) {
				fail("select arm type mismatch")
			}
		}
	case OpConstant:
		if !op.HasAttr(AttrValue) {
			fail("constant without value attribute")
		}
	case OpLoad:
		if len(op.Operands) < 1 {
			fail("load without memref")
		} else if mt := op.Operands[0].Type(); !mt.IsMemRef() {
			fail("load from non-memref %s", mt)
		} else if len(op.Operands)-1 != len(mt.Shape) {
			fail("load index count %d != rank %d", len(op.Operands)-1, len(mt.Shape))
		}
	case OpStore:
		if len(op.Operands) < 2 {
			fail("store without value/memref")
		} else if mt := op.Operands[1].Type(); !mt.IsMemRef() {
			fail("store to non-memref %s", mt)
		} else if len(op.Operands)-2 != len(mt.Shape) {
			fail("store index count %d != rank %d", len(op.Operands)-2, len(mt.Shape))
		}
	case OpAffineLoad, OpAffineStore:
		v := AffineAccessView{op}
		mt := v.MemRef().Type()
		if !mt.IsMemRef() {
			fail("affine access on non-memref %s", mt)
			break
		}
		m := v.Map()
		if m == nil {
			fail("affine access without map")
			break
		}
		if len(m.Exprs) != len(mt.Shape) {
			fail("access map results %d != rank %d", len(m.Exprs), len(mt.Shape))
		}
		if m.NumDims+m.NumSyms != len(v.MapOperands()) {
			fail("access map arity %d != operands %d", m.NumDims+m.NumSyms, len(v.MapOperands()))
		}
	case OpAffineFor:
		fv := AffineForView{op}
		if len(op.Regions) != 1 || len(op.Regions[0].Blocks) != 1 {
			fail("affine.for must have a single-block region")
			break
		}
		if len(fv.Body().Args) != 1 || !fv.Body().Args[0].Type().IsIndex() {
			fail("affine.for body must take a single index argument")
		}
		if fv.LowerMap() == nil || fv.UpperMap() == nil {
			fail("affine.for missing bound maps")
			break
		}
		if fv.Step() <= 0 {
			fail("affine.for step must be positive")
		}
		lb := fv.LowerMap()
		ub := fv.UpperMap()
		n, _ := op.IntAttr(AttrLBCount)
		if int(n) != lb.NumDims+lb.NumSyms {
			fail("lower bound operand count %d != map arity %d", n, lb.NumDims+lb.NumSyms)
		}
		if len(op.Operands)-int(n) != ub.NumDims+ub.NumSyms {
			fail("upper bound operand count mismatch")
		}
		if t := fv.Body().Terminator(); t == nil || t.Name != OpAffineYield {
			fail("affine.for body must end with affine.yield")
		}
	case OpSCFFor:
		if wantOperands(3) {
			for i := 0; i < 3; i++ {
				if !op.Operands[i].Type().IsIndex() {
					fail("scf.for bound %d must be index", i)
				}
			}
		}
		if len(op.Regions) != 1 || len(op.Regions[0].Blocks) != 1 {
			fail("scf.for must have a single-block region")
		}
	case OpCondBr:
		if len(op.Succs) != 2 {
			fail("cond_br needs two successors")
		}
	case OpBr:
		if len(op.Succs) != 1 {
			fail("br needs one successor")
		}
	}
	return errs
}

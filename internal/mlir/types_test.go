package mlir

import (
	"testing"
	"testing/quick"
)

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		ty   *Type
		want string
	}{
		{I32(), "i32"},
		{I64(), "i64"},
		{I1(), "i1"},
		{IntType(8), "i8"},
		{F32(), "f32"},
		{F64(), "f64"},
		{Index(), "index"},
		{None(), "none"},
		{MemRef([]int64{32}, F32()), "memref<32xf32>"},
		{MemRef([]int64{4, 8}, F64()), "memref<4x8xf64>"},
		{MemRef([]int64{DynamicDim, 8}, I32()), "memref<?x8xi32>"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !I32().Equal(IntType(32)) {
		t.Error("i32 should equal IntType(32)")
	}
	if I32().Equal(I64()) {
		t.Error("i32 should not equal i64")
	}
	if F32().Equal(I32()) {
		t.Error("f32 should not equal i32")
	}
	a := MemRef([]int64{2, 3}, F32())
	b := MemRef([]int64{2, 3}, F32())
	c := MemRef([]int64{3, 2}, F32())
	d := MemRef([]int64{2, 3}, F64())
	if !a.Equal(b) {
		t.Error("identical memrefs should be equal")
	}
	if a.Equal(c) {
		t.Error("different shapes should not be equal")
	}
	if a.Equal(d) {
		t.Error("different element types should not be equal")
	}
	if a.Equal(nil) {
		t.Error("memref should not equal nil")
	}
}

func TestMemRefPredicates(t *testing.T) {
	st := MemRef([]int64{4, 4}, F32())
	dy := MemRef([]int64{DynamicDim, 4}, F32())
	if !st.HasStaticShape() {
		t.Error("static memref misreported")
	}
	if dy.HasStaticShape() {
		t.Error("dynamic memref misreported as static")
	}
	if st.NumElements() != 16 {
		t.Errorf("NumElements = %d, want 16", st.NumElements())
	}
	if !st.IsMemRef() || st.IsInt() || st.IsFloat() || st.IsIndex() {
		t.Error("memref kind predicates wrong")
	}
	if !Index().IsIntOrIndex() || !I32().IsIntOrIndex() || F32().IsIntOrIndex() {
		t.Error("IsIntOrIndex wrong")
	}
}

func TestNumElementsPanicsOnDynamic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NumElements on dynamic shape should panic")
		}
	}()
	MemRef([]int64{DynamicDim}, F32()).NumElements()
}

func TestMemRefShapeCopied(t *testing.T) {
	shape := []int64{2, 3}
	ty := MemRef(shape, F32())
	shape[0] = 99
	if ty.Shape[0] != 2 {
		t.Error("MemRef must copy its shape slice")
	}
}

func TestTypeEqualQuick(t *testing.T) {
	// Property: two memrefs built from the same (bounded) description are
	// equal; flipping any dimension breaks equality.
	f := func(dims []uint8, elemIs64 bool) bool {
		if len(dims) == 0 || len(dims) > 4 {
			return true
		}
		shape := make([]int64, len(dims))
		for i, d := range dims {
			shape[i] = int64(d%16) + 1
		}
		elem := F32()
		if elemIs64 {
			elem = F64()
		}
		a := MemRef(shape, elem)
		b := MemRef(shape, elem)
		if !a.Equal(b) {
			return false
		}
		shape2 := make([]int64, len(shape))
		copy(shape2, shape)
		shape2[0]++
		return !a.Equal(MemRef(shape2, elem))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package passes

import (
	"fmt"

	"repro/internal/mlir"
)

// LoopUnroll returns a pass that unrolls affine.for loops.
//
// When markedOnly is true, only loops carrying the hls.unroll directive are
// unrolled, by their directive factor. Otherwise every innermost loop with a
// constant trip count is unrolled by factor (factor <= 1 disables; a factor
// equal to or exceeding the trip count fully unrolls).
func LoopUnroll(factor int, markedOnly bool) Pass {
	params := fmt.Sprintf("factor=%d|marked=%t", factor, markedOnly)
	return funcPass{name: "affine-loop-unroll", params: params, fn: func(f *mlir.Op) error {
		return unrollFunc(f, factor, markedOnly)
	}}
}

func unrollFunc(f *mlir.Op, factor int, markedOnly bool) error {
	// Collect targets first: unrolling invalidates walk order.
	var targets []*mlir.Op
	mlir.Walk(f, func(op *mlir.Op) bool {
		if op.Name != mlir.OpAffineFor {
			return true
		}
		if markedOnly {
			if _, ok := op.IntAttr(mlir.AttrUnroll); ok {
				targets = append(targets, op)
			}
			return true
		}
		if isInnermostLoop(op) {
			targets = append(targets, op)
		}
		return true
	})
	for _, loop := range targets {
		k := factor
		if markedOnly {
			kv, _ := loop.IntAttr(mlir.AttrUnroll)
			k = int(kv)
		}
		if k <= 1 {
			delete(loop.Attrs, mlir.AttrUnroll)
			continue
		}
		if err := unrollLoop(loop, k); err != nil {
			return err
		}
	}
	return nil
}

func isInnermostLoop(op *mlir.Op) bool {
	inner := false
	mlir.Walk(op, func(o *mlir.Op) bool {
		if o != op && o.Name == mlir.OpAffineFor {
			inner = true
			return false
		}
		return true
	})
	return !inner
}

// unrollLoop unrolls one affine.for by factor k. Constant-bound loops are
// required (the polybench suite and the lowering pipeline only produce
// constant or IV-dependent bounds; IV-dependent loops are left untouched by
// the caller's collection logic when bounds are non-constant).
func unrollLoop(loop *mlir.Op, k int) error {
	fv := mlir.AffineForView{Op: loop}
	lo, hi, ok := fv.ConstantBounds()
	if !ok {
		// Non-constant bounds: drop the directive, keep the loop.
		delete(loop.Attrs, mlir.AttrUnroll)
		return nil
	}
	step := fv.Step()
	trip := int64(0)
	if hi > lo {
		trip = (hi - lo + step - 1) / step
	}

	if int64(k) >= trip {
		return fullyUnroll(loop, lo, hi, step)
	}

	mainTrips := trip - trip%int64(k)
	newHi := lo + mainTrips*step
	origBody := fv.Body()

	// Build the replacement body: k copies of the original, with shifted IVs.
	newBody := mlir.NewBlock(mlir.Index())
	newIV := newBody.Args[0]
	b := mlir.NewBuilder(newBody)
	for j := 0; j < k; j++ {
		iv := newIV
		if j > 0 {
			iv = b.AffineApply(mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(int64(j)*step))), newIV)
		}
		vmap := map[*mlir.Value]*mlir.Value{origBody.Args[0]: iv}
		mlir.CloneBlockOpsInto(origBody, newBody, vmap, true)
	}
	b.Create(mlir.OpAffineYield, nil, nil)

	// Epilogue for the remainder iterations.
	if trip%int64(k) != 0 {
		epi := mlir.NewOp(mlir.OpAffineFor, nil, nil)
		epi.SetAttr(mlir.AttrLowerMap, mlir.AffineMapAttr{Map: mlir.ConstantMap(newHi)})
		epi.SetAttr(mlir.AttrUpperMap, mlir.AffineMapAttr{Map: mlir.ConstantMap(hi)})
		epi.SetAttr(mlir.AttrStep, mlir.I(step))
		epi.SetAttr(mlir.AttrLBCount, mlir.I(0))
		er := epi.AddRegion()
		eb := mlir.NewBlock(mlir.Index())
		er.AddBlock(eb)
		vmap := map[*mlir.Value]*mlir.Value{origBody.Args[0]: eb.Args[0]}
		mlir.CloneBlockOpsInto(origBody, eb, vmap, true)
		eb.Append(mlir.NewOp(mlir.OpAffineYield, nil, nil))
		loop.Block().InsertAfter(epi, loop)
	}

	// Retarget the main loop.
	loop.SetAttr(mlir.AttrUpperMap, mlir.AffineMapAttr{Map: mlir.ConstantMap(newHi)})
	loop.SetAttr(mlir.AttrStep, mlir.I(step*int64(k)))
	delete(loop.Attrs, mlir.AttrUnroll)
	loop.Regions[0].Blocks = nil
	loop.Regions[0].AddBlock(newBody)
	return nil
}

// fullyUnroll replaces the loop with one body copy per iteration.
func fullyUnroll(loop *mlir.Op, lo, hi, step int64) error {
	fv := mlir.AffineForView{Op: loop}
	origBody := fv.Body()
	parent := loop.Block()
	if parent == nil {
		return fmt.Errorf("unroll: loop has no parent block")
	}
	insertAfter := loop
	for ivVal := lo; ivVal < hi; ivVal += step {
		c := mlir.NewOp(mlir.OpConstant, nil, []*mlir.Type{mlir.Index()})
		c.SetAttr(mlir.AttrValue, mlir.IntAttr{Value: ivVal, Ty: mlir.Index()})
		parent.InsertAfter(c, insertAfter)
		insertAfter = c
		vmap := map[*mlir.Value]*mlir.Value{origBody.Args[0]: c.Result(0)}
		for i, op := range origBody.Ops {
			if i == len(origBody.Ops)-1 && op.IsTerminator() {
				break
			}
			clone := mlir.CloneOp(op, vmap, nil)
			parent.InsertAfter(clone, insertAfter)
			insertAfter = clone
		}
	}
	loop.Erase()
	return nil
}

package passes

import (
	"math"

	"repro/internal/mlir"
)

// Canonicalize returns the canonicalization pass: constant folding, algebraic
// simplification, and dead pure-op elimination, iterated to a fixpoint.
func Canonicalize() Pass {
	return funcPass{name: "canonicalize", fn: canonicalizeFunc}
}

func canonicalizeFunc(f *mlir.Op) error {
	for iter := 0; iter < 50; iter++ {
		changed := foldOnce(f)
		changed = eraseDeadOps(f) || changed
		if !changed {
			return nil
		}
	}
	return nil
}

// constOperand returns the constant attribute defining v, if any.
func constOperand(v *mlir.Value) (mlir.Attr, bool) {
	if v.Def == nil || v.Def.Name != mlir.OpConstant {
		return nil, false
	}
	return v.Def.Attrs[mlir.AttrValue], true
}

func constInt(v *mlir.Value) (int64, bool) {
	a, ok := constOperand(v)
	if !ok {
		return 0, false
	}
	ia, ok := a.(mlir.IntAttr)
	return ia.Value, ok
}

func constFloat(v *mlir.Value) (float64, bool) {
	a, ok := constOperand(v)
	if !ok {
		return 0, false
	}
	fa, ok := a.(mlir.FloatAttr)
	return fa.Value, ok
}

// replaceWithConstInt rewrites op's single result with a fresh constant.
func replaceWithConst(f, op *mlir.Op, attr mlir.Attr) {
	c := mlir.NewOp(mlir.OpConstant, nil, []*mlir.Type{op.Result(0).Type()})
	c.SetAttr(mlir.AttrValue, attr)
	op.Block().InsertBefore(c, op)
	mlir.ReplaceAllUses(f, op.Result(0), c.Result(0))
}

// replaceWithValue redirects op's single result to v.
func replaceWithValue(f, op *mlir.Op, v *mlir.Value) {
	mlir.ReplaceAllUses(f, op.Result(0), v)
}

func foldOnce(f *mlir.Op) bool {
	changed := false
	mlir.Walk(f, func(op *mlir.Op) bool {
		if foldOp(f, op) {
			changed = true
		}
		return true
	})
	return changed
}

func foldOp(f, op *mlir.Op) bool {
	switch op.Name {
	case mlir.OpAddI, mlir.OpSubI, mlir.OpMulI, mlir.OpDivSI, mlir.OpRemSI,
		mlir.OpMinSI, mlir.OpMaxSI:
		return foldIntBinary(f, op)
	case mlir.OpAddF, mlir.OpSubF, mlir.OpMulF, mlir.OpDivF:
		return foldFloatBinary(f, op)
	case mlir.OpNegF:
		if x, ok := constFloat(op.Operands[0]); ok {
			replaceWithConst(f, op, mlir.FloatAttr{Value: -x, Ty: op.Result(0).Type()})
			return true
		}
	case mlir.OpCmpI:
		l, lok := constInt(op.Operands[0])
		r, rok := constInt(op.Operands[1])
		if lok && rok {
			pred, _ := op.StringAttr(mlir.AttrPredicate)
			replaceWithConst(f, op, mlir.IntAttr{Value: b2i(evalICmp(pred, l, r)), Ty: mlir.I1()})
			return true
		}
	case mlir.OpCmpF:
		l, lok := constFloat(op.Operands[0])
		r, rok := constFloat(op.Operands[1])
		if lok && rok {
			pred, _ := op.StringAttr(mlir.AttrPredicate)
			replaceWithConst(f, op, mlir.IntAttr{Value: b2i(evalFCmp(pred, l, r)), Ty: mlir.I1()})
			return true
		}
	case mlir.OpSelect:
		if c, ok := constInt(op.Operands[0]); ok {
			if c != 0 {
				replaceWithValue(f, op, op.Operands[1])
			} else {
				replaceWithValue(f, op, op.Operands[2])
			}
			return true
		}
	case mlir.OpIndexCast:
		if x, ok := constInt(op.Operands[0]); ok {
			replaceWithConst(f, op, mlir.IntAttr{Value: x, Ty: op.Result(0).Type()})
			return true
		}
	case mlir.OpSIToFP:
		if x, ok := constInt(op.Operands[0]); ok {
			replaceWithConst(f, op, mlir.FloatAttr{Value: float64(x), Ty: op.Result(0).Type()})
			return true
		}
	case mlir.OpAffineApply:
		m, _ := op.MapAttr(mlir.AttrMap)
		if m == nil {
			return false
		}
		vals := make([]int64, len(op.Operands))
		for i, v := range op.Operands {
			x, ok := constInt(v)
			if !ok {
				return false
			}
			vals[i] = x
		}
		dims := vals[:m.NumDims]
		syms := vals[m.NumDims:]
		replaceWithConst(f, op, mlir.IntAttr{Value: m.Exprs[0].Eval(dims, syms), Ty: mlir.Index()})
		return true
	}
	return false
}

func foldIntBinary(f, op *mlir.Op) bool {
	l, lok := constInt(op.Operands[0])
	r, rok := constInt(op.Operands[1])
	ty := op.Result(0).Type()
	if lok && rok {
		var v int64
		switch op.Name {
		case mlir.OpAddI:
			v = l + r
		case mlir.OpSubI:
			v = l - r
		case mlir.OpMulI:
			v = l * r
		case mlir.OpDivSI:
			if r == 0 {
				return false
			}
			v = l / r
		case mlir.OpRemSI:
			if r == 0 {
				return false
			}
			v = l % r
		case mlir.OpMinSI:
			v = min64(l, r)
		case mlir.OpMaxSI:
			v = max64(l, r)
		}
		replaceWithConst(f, op, mlir.IntAttr{Value: v, Ty: ty})
		return true
	}
	// Algebraic identities.
	switch op.Name {
	case mlir.OpAddI:
		if rok && r == 0 {
			replaceWithValue(f, op, op.Operands[0])
			return true
		}
		if lok && l == 0 {
			replaceWithValue(f, op, op.Operands[1])
			return true
		}
	case mlir.OpSubI:
		if rok && r == 0 {
			replaceWithValue(f, op, op.Operands[0])
			return true
		}
	case mlir.OpMulI:
		if rok && r == 1 {
			replaceWithValue(f, op, op.Operands[0])
			return true
		}
		if lok && l == 1 {
			replaceWithValue(f, op, op.Operands[1])
			return true
		}
		if (rok && r == 0) || (lok && l == 0) {
			replaceWithConst(f, op, mlir.IntAttr{Value: 0, Ty: ty})
			return true
		}
	}
	return false
}

func foldFloatBinary(f, op *mlir.Op) bool {
	l, lok := constFloat(op.Operands[0])
	r, rok := constFloat(op.Operands[1])
	ty := op.Result(0).Type()
	if lok && rok {
		var v float64
		switch op.Name {
		case mlir.OpAddF:
			v = l + r
		case mlir.OpSubF:
			v = l - r
		case mlir.OpMulF:
			v = l * r
		case mlir.OpDivF:
			if r == 0 {
				return false
			}
			v = l / r
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		if ty.IsFloat() && ty.Width == 32 {
			v = float64(float32(v))
		}
		replaceWithConst(f, op, mlir.FloatAttr{Value: v, Ty: ty})
		return true
	}
	// x+0, x*1 are exact float identities (no signed-zero subtleties needed
	// for the HLS kernels this flow targets).
	switch op.Name {
	case mlir.OpAddF, mlir.OpSubF:
		if rok && r == 0 {
			replaceWithValue(f, op, op.Operands[0])
			return true
		}
	case mlir.OpMulF:
		if rok && r == 1 {
			replaceWithValue(f, op, op.Operands[0])
			return true
		}
		if lok && l == 1 {
			replaceWithValue(f, op, op.Operands[1])
			return true
		}
	case mlir.OpDivF:
		if rok && r == 1 {
			replaceWithValue(f, op, op.Operands[0])
			return true
		}
	}
	return false
}

// eraseDeadOps removes pure ops whose results are all unused. Returns true
// when anything was removed.
func eraseDeadOps(f *mlir.Op) bool {
	used := map[*mlir.Value]bool{}
	mlir.Walk(f, func(op *mlir.Op) bool {
		for _, v := range op.Operands {
			used[v] = true
		}
		return true
	})
	changed := false
	mlir.WalkPost(f, func(op *mlir.Op) {
		if !mlir.IsPure(op) || op.Block() == nil {
			return
		}
		for _, r := range op.Results {
			if used[r] {
				return
			}
		}
		op.Erase()
		changed = true
	})
	return changed
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func evalICmp(pred string, l, r int64) bool {
	switch pred {
	case mlir.PredEQ:
		return l == r
	case mlir.PredNE:
		return l != r
	case mlir.PredSLT:
		return l < r
	case mlir.PredSLE:
		return l <= r
	case mlir.PredSGT:
		return l > r
	case mlir.PredSGE:
		return l >= r
	}
	return false
}

func evalFCmp(pred string, l, r float64) bool {
	switch pred {
	case mlir.PredOEQ:
		return l == r
	case mlir.PredONE:
		return l != r
	case mlir.PredOLT:
		return l < r
	case mlir.PredOLE:
		return l <= r
	case mlir.PredOGT:
		return l > r
	case mlir.PredOGE:
		return l >= r
	}
	return false
}

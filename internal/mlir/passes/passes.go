// Package passes implements the MLIR-level transformation passes the HLS
// flow uses: canonicalization, CSE, affine loop unrolling, interchange,
// tiling, and the HLS directive annotation passes (pipeline, array
// partition) whose attributes travel through lowering into LLVM metadata.
package passes

import (
	"context"
	"fmt"

	"repro/internal/mlir"
	"repro/internal/resilience"
)

// Pass transforms a module in place.
type Pass interface {
	Name() string
	Run(m *mlir.Module) error
}

// PassManager runs a pipeline of passes, verifying after each.
type PassManager struct {
	passes []Pass
	// VerifyEach enables module verification after every pass (default on
	// via NewPassManager).
	VerifyEach bool
	// AfterPass, when non-nil, runs after each pass's verification; a
	// non-nil error aborts the pipeline attributed to the named pass. The
	// flow layer injects the lint invariant checks here, keeping this
	// package free of a lint dependency.
	AfterPass func(passName string, m *mlir.Module) error
	// Ctx, when non-nil, is checked at every pass boundary: once it is
	// done the pipeline stops before the next pass with a typed
	// timeout/cancellation failure. This is what lets a timed-out engine
	// job stop at the next boundary instead of running the remaining
	// pipeline in a leaked goroutine.
	Ctx context.Context
	// Isolate runs every pass inside a recovery boundary: a panic (or any
	// failure) surfaces as a *resilience.PassFailure naming this manager's
	// Stage and the pass, instead of killing the process.
	Isolate bool
	// Stage attributes failures under Isolate; defaults to "mlir-opt".
	Stage string
	// BeforePass, when non-nil, runs inside the pass's recovery boundary
	// immediately before the pass body. The flow layer hangs IR
	// snapshotting (bisection replay) and deterministic fault injection
	// (tests) here; a panic in the hook is attributed to the pass.
	BeforePass func(passName string, m *mlir.Module)
}

// NewPassManager returns a pass manager that verifies after each pass.
func NewPassManager() *PassManager { return &PassManager{VerifyEach: true} }

// Add appends passes to the pipeline.
func (pm *PassManager) Add(ps ...Pass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// stage returns the failure-attribution stage name.
func (pm *PassManager) stage() string {
	if pm.Stage != "" {
		return pm.Stage
	}
	return "mlir-opt"
}

// Run executes the pipeline.
func (pm *PassManager) Run(m *mlir.Module) error {
	for _, p := range pm.passes {
		if err := resilience.Interrupted(pm.Ctx, pm.stage(), p.Name()); err != nil {
			return err
		}
		body := func() error {
			if pm.BeforePass != nil {
				pm.BeforePass(p.Name(), m)
			}
			return p.Run(m)
		}
		if pm.Isolate {
			if err := resilience.Guard(pm.stage(), p.Name(), body); err != nil {
				return err
			}
		} else if err := body(); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if pm.VerifyEach {
			if err := m.Verify(); err != nil {
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name(), resilience.KindVerify, err)
				}
				return fmt.Errorf("verification after pass %s: %w", p.Name(), err)
			}
		}
		if pm.AfterPass != nil {
			if err := pm.AfterPass(p.Name(), m); err != nil {
				// An already-typed failure (e.g. the semantic oracle's
				// KindMiscompile) keeps its own attribution and kind.
				if _, typed := resilience.AsPassFailure(err); typed {
					return err
				}
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name(), resilience.KindVerify, err)
				}
				return fmt.Errorf("invariant violation after pass %s: %w", p.Name(), err)
			}
		}
	}
	return nil
}

// funcPass adapts a per-function transformation.
type funcPass struct {
	name string
	fn   func(f *mlir.Op) error
}

// Name implements Pass.
func (p funcPass) Name() string { return p.name }

// Run implements Pass.
func (p funcPass) Run(m *mlir.Module) error {
	for _, f := range m.Funcs() {
		if err := p.fn(f); err != nil {
			return err
		}
	}
	return nil
}

// Package passes implements the MLIR-level transformation passes the HLS
// flow uses: canonicalization, CSE, affine loop unrolling, interchange,
// tiling, and the HLS directive annotation passes (pipeline, array
// partition) whose attributes travel through lowering into LLVM metadata.
package passes

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/mlir"
	"repro/internal/resilience"
)

// Pass transforms a module in place.
type Pass interface {
	Name() string
	Run(m *mlir.Module) error
}

// Parameterized is implemented by passes whose behavior depends on
// constructor arguments (a pipeline II, an unroll factor, a partition
// spec). Params returns a canonical rendering of those arguments; the
// incremental-compilation layer folds it into the unit's memo key so two
// pipelines differing only in a pass parameter never share a record.
type Parameterized interface {
	Params() string
}

// FuncLocal is implemented by passes whose Run visits each function
// independently, touching no cross-function state. The pass manager may
// run such passes across functions in parallel (Parallel option), and the
// flow's unit registry marks them function-local.
type FuncLocal interface {
	RunOnFunc(f *mlir.Op) error
}

// PassManager runs a pipeline of passes, verifying after each.
type PassManager struct {
	passes []Pass
	// VerifyEach enables module verification after every pass (default on
	// via NewPassManager).
	VerifyEach bool
	// AfterPass, when non-nil, runs after each pass's verification; a
	// non-nil error aborts the pipeline attributed to the named pass. The
	// flow layer injects the lint invariant checks here, keeping this
	// package free of a lint dependency.
	AfterPass func(passName string, m *mlir.Module) error
	// Ctx, when non-nil, is checked at every pass boundary: once it is
	// done the pipeline stops before the next pass with a typed
	// timeout/cancellation failure. This is what lets a timed-out engine
	// job stop at the next boundary instead of running the remaining
	// pipeline in a leaked goroutine.
	Ctx context.Context
	// Isolate runs every pass inside a recovery boundary: a panic (or any
	// failure) surfaces as a *resilience.PassFailure naming this manager's
	// Stage and the pass, instead of killing the process.
	Isolate bool
	// Stage attributes failures under Isolate; defaults to "mlir-opt".
	Stage string
	// BeforePass, when non-nil, runs inside the pass's recovery boundary
	// immediately before the pass body. The flow layer hangs IR
	// snapshotting (bisection replay) and deterministic fault injection
	// (tests) here; a panic in the hook is attributed to the pass.
	BeforePass func(passName string, m *mlir.Module)
	// Wrap, when non-nil, intercepts every pass: run executes the pass
	// body, and params is the pass's canonical parameter string (empty
	// for parameterless passes). Returning replayed=true means the pass's
	// effect was applied without executing run — the incremental layer's
	// memoized replay — and the manager then skips after-pass
	// verification and the AfterPass hook, whose module argument would
	// not reflect the (deliberately unmaterialized) replayed state.
	Wrap func(passName, params string, run func() error) (replayed bool, err error)
	// Parallel runs FuncLocal passes across the module's functions
	// concurrently. Passes that do not implement FuncLocal still run
	// serially.
	Parallel bool
}

// NewPassManager returns a pass manager that verifies after each pass.
func NewPassManager() *PassManager { return &PassManager{VerifyEach: true} }

// Add appends passes to the pipeline.
func (pm *PassManager) Add(ps ...Pass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// stage returns the failure-attribution stage name.
func (pm *PassManager) stage() string {
	if pm.Stage != "" {
		return pm.Stage
	}
	return "mlir-opt"
}

// Run executes the pipeline.
func (pm *PassManager) Run(m *mlir.Module) error {
	for _, p := range pm.passes {
		p := p
		if err := resilience.Interrupted(pm.Ctx, pm.stage(), p.Name()); err != nil {
			return err
		}
		replayed := false
		body := func() error {
			if pm.BeforePass != nil {
				pm.BeforePass(p.Name(), m)
			}
			run := func() error { return pm.runPass(p, m) }
			if pm.Wrap != nil {
				var err error
				replayed, err = pm.Wrap(p.Name(), PassParams(p), run)
				return err
			}
			return run()
		}
		if pm.Isolate {
			if err := resilience.Guard(pm.stage(), p.Name(), body); err != nil {
				return err
			}
		} else if err := body(); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if replayed {
			// The module deliberately does not reflect a replayed pass
			// (the incremental layer carries the state as bytes); the
			// after-pass checks ran when the record was stored and their
			// activation participates in the memo key.
			continue
		}
		if pm.VerifyEach {
			if err := m.Verify(); err != nil {
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name(), resilience.KindVerify, err)
				}
				return fmt.Errorf("verification after pass %s: %w", p.Name(), err)
			}
		}
		if pm.AfterPass != nil {
			if err := pm.AfterPass(p.Name(), m); err != nil {
				// An already-typed failure (e.g. the semantic oracle's
				// KindMiscompile) keeps its own attribution and kind.
				if _, typed := resilience.AsPassFailure(err); typed {
					return err
				}
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name(), resilience.KindVerify, err)
				}
				return fmt.Errorf("invariant violation after pass %s: %w", p.Name(), err)
			}
		}
	}
	return nil
}

// runPass executes one pass body, fanning FuncLocal passes across the
// module's functions when Parallel is set and there is more than one
// function to visit.
func (pm *PassManager) runPass(p Pass, m *mlir.Module) error {
	fl, ok := p.(FuncLocal)
	if !pm.Parallel || !ok {
		return p.Run(m)
	}
	funcs := m.Funcs()
	if len(funcs) < 2 {
		return p.Run(m)
	}
	errs := make([]error, len(funcs))
	var wg sync.WaitGroup
	for i, f := range funcs {
		i, f := i, f
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Recover per goroutine: a recovery boundary on the caller's
			// stack cannot catch a panic raised here. Plain errors pass
			// through untyped so the Parallel path reports exactly what a
			// serial visit would.
			errs[i] = func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = resilience.NewFailure(pm.stage(), p.Name(), resilience.KindPanic,
							fmt.Errorf("%v", r))
					}
				}()
				return fl.RunOnFunc(f)
			}()
		}()
	}
	wg.Wait()
	// First failure by function order, matching what a serial visit would
	// have reported.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PassParams returns the pass's canonical parameter string ("" for
// parameterless passes) — the component of the incremental memo key that
// distinguishes two instances of the same pass constructed with different
// arguments.
func PassParams(p Pass) string {
	if pp, ok := p.(Parameterized); ok {
		return pp.Params()
	}
	return ""
}

// funcPass adapts a per-function transformation. params is the canonical
// rendering of the pass's constructor arguments for Parameterized.
type funcPass struct {
	name   string
	params string
	fn     func(f *mlir.Op) error
}

// Name implements Pass.
func (p funcPass) Name() string { return p.name }

// Params implements Parameterized.
func (p funcPass) Params() string { return p.params }

// RunOnFunc implements FuncLocal.
func (p funcPass) RunOnFunc(f *mlir.Op) error { return p.fn(f) }

// Run implements Pass.
func (p funcPass) Run(m *mlir.Module) error {
	for _, f := range m.Funcs() {
		if err := p.fn(f); err != nil {
			return err
		}
	}
	return nil
}

// Package passes implements the MLIR-level transformation passes the HLS
// flow uses: canonicalization, CSE, affine loop unrolling, interchange,
// tiling, and the HLS directive annotation passes (pipeline, array
// partition) whose attributes travel through lowering into LLVM metadata.
package passes

import (
	"fmt"

	"repro/internal/mlir"
)

// Pass transforms a module in place.
type Pass interface {
	Name() string
	Run(m *mlir.Module) error
}

// PassManager runs a pipeline of passes, verifying after each.
type PassManager struct {
	passes []Pass
	// VerifyEach enables module verification after every pass (default on
	// via NewPassManager).
	VerifyEach bool
	// AfterPass, when non-nil, runs after each pass's verification; a
	// non-nil error aborts the pipeline attributed to the named pass. The
	// flow layer injects the lint invariant checks here, keeping this
	// package free of a lint dependency.
	AfterPass func(passName string, m *mlir.Module) error
}

// NewPassManager returns a pass manager that verifies after each pass.
func NewPassManager() *PassManager { return &PassManager{VerifyEach: true} }

// Add appends passes to the pipeline.
func (pm *PassManager) Add(ps ...Pass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// Run executes the pipeline.
func (pm *PassManager) Run(m *mlir.Module) error {
	for _, p := range pm.passes {
		if err := p.Run(m); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if pm.VerifyEach {
			if err := m.Verify(); err != nil {
				return fmt.Errorf("verification after pass %s: %w", p.Name(), err)
			}
		}
		if pm.AfterPass != nil {
			if err := pm.AfterPass(p.Name(), m); err != nil {
				return fmt.Errorf("invariant violation after pass %s: %w", p.Name(), err)
			}
		}
	}
	return nil
}

// funcPass adapts a per-function transformation.
type funcPass struct {
	name string
	fn   func(f *mlir.Op) error
}

// Name implements Pass.
func (p funcPass) Name() string { return p.name }

// Run implements Pass.
func (p funcPass) Run(m *mlir.Module) error {
	for _, f := range m.Funcs() {
		if err := p.fn(f); err != nil {
			return err
		}
	}
	return nil
}

package passes

import (
	"fmt"

	"repro/internal/mlir"
)

// PipelineInnermost returns a pass that marks every innermost affine.for
// with the HLS pipeline directive and target initiation interval ii.
func PipelineInnermost(ii int) Pass {
	return funcPass{name: "hls-pipeline-innermost", params: fmt.Sprintf("ii=%d", ii), fn: func(f *mlir.Op) error {
		mlir.Walk(f, func(op *mlir.Op) bool {
			if op.Name == mlir.OpAffineFor && isInnermostLoop(op) {
				op.SetAttr(mlir.AttrPipeline, mlir.UnitAttr{})
				op.SetAttr(mlir.AttrII, mlir.I(int64(ii)))
			}
			return true
		})
		return nil
	}}
}

// MarkUnroll returns a pass that attaches the hls.unroll directive with the
// given factor to every innermost loop (to be materialized later by
// LoopUnroll(0, true) or carried to the backend as metadata).
func MarkUnroll(factor int) Pass {
	return funcPass{name: "hls-mark-unroll", params: fmt.Sprintf("factor=%d", factor), fn: func(f *mlir.Op) error {
		mlir.Walk(f, func(op *mlir.Op) bool {
			if op.Name == mlir.OpAffineFor && isInnermostLoop(op) {
				op.SetAttr(mlir.AttrUnroll, mlir.I(int64(factor)))
			}
			return true
		})
		return nil
	}}
}

// MarkFlatten returns a pass that attaches the hls.flatten directive to
// every loop whose body is exactly one nested loop (a perfect-nest level),
// mirroring #pragma HLS loop_flatten: the backend then runs the nest as one
// flat pipeline instead of refilling the inner pipeline per outer iteration.
func MarkFlatten() Pass {
	return funcPass{name: "hls-mark-flatten", fn: func(f *mlir.Op) error {
		mlir.Walk(f, func(op *mlir.Op) bool {
			if op.Name != mlir.OpAffineFor {
				return true
			}
			if onlyNestedLoop(op) != nil {
				op.SetAttr(mlir.AttrFlatten, mlir.UnitAttr{})
			}
			return true
		})
		return nil
	}}
}

// PartitionSpec describes an array partitioning directive, mirroring
// #pragma HLS array_partition.
type PartitionSpec struct {
	Kind   string // "cyclic", "block", or "complete"
	Factor int    // ignored for complete
	Dim    int    // 0-based dimension
}

// Attr renders the spec as an attribute payload.
func (s PartitionSpec) Attr() mlir.Attr {
	return mlir.ArrayAttr{
		mlir.StringAttr(s.Kind),
		mlir.I(int64(s.Factor)),
		mlir.I(int64(s.Dim)),
	}
}

// ParsePartitionAttr decodes a partition attribute payload.
func ParsePartitionAttr(a mlir.Attr) (PartitionSpec, bool) {
	arr, ok := a.(mlir.ArrayAttr)
	if !ok || len(arr) != 3 {
		return PartitionSpec{}, false
	}
	kind, ok1 := arr[0].(mlir.StringAttr)
	factor, ok2 := arr[1].(mlir.IntAttr)
	dim, ok3 := arr[2].(mlir.IntAttr)
	if !ok1 || !ok2 || !ok3 {
		return PartitionSpec{}, false
	}
	return PartitionSpec{Kind: string(kind), Factor: int(factor.Value), Dim: int(dim.Value)}, true
}

// PartitionArgAttrKey returns the function attribute key carrying the
// partition spec for argument i.
func PartitionArgAttrKey(i int) string {
	return fmt.Sprintf("%s.arg%d", mlir.AttrPartition, i)
}

// PartitionArg returns a pass that attaches an array-partition directive to
// argument argIdx of the named function.
func PartitionArg(funcName string, argIdx int, spec PartitionSpec) Pass {
	params := fmt.Sprintf("%s/%d/%s/%d/%d", funcName, argIdx, spec.Kind, spec.Factor, spec.Dim)
	return funcPass{name: "hls-array-partition", params: params, fn: func(f *mlir.Op) error {
		if mlir.FuncName(f) != funcName {
			return nil
		}
		if argIdx < 0 || argIdx >= len(mlir.FuncBody(f).Args) {
			return fmt.Errorf("array-partition: %s has no argument %d", funcName, argIdx)
		}
		f.SetAttr(PartitionArgAttrKey(argIdx), spec.Attr())
		return nil
	}}
}

// PartitionAllArgs returns a pass that partitions every memref argument of
// every function with the same spec (the common "partition everything
// cyclically" configuration in HLS DSE).
func PartitionAllArgs(spec PartitionSpec) Pass {
	params := fmt.Sprintf("%s/%d/%d", spec.Kind, spec.Factor, spec.Dim)
	return funcPass{name: "hls-array-partition-all", params: params, fn: func(f *mlir.Op) error {
		for i, a := range mlir.FuncBody(f).Args {
			if a.Type().IsMemRef() {
				f.SetAttr(PartitionArgAttrKey(i), spec.Attr())
			}
		}
		return nil
	}}
}

// MarkDataflow returns a pass that attaches the hls.dataflow directive to
// the named function, mirroring #pragma HLS dataflow: independent top-level
// loops execute as concurrent tasks. The backend checks legality (no shared
// written arrays between tasks) and ignores the directive otherwise, as
// Vitis does for unprovable cases.
func MarkDataflow(funcName string) Pass {
	return funcPass{name: "hls-mark-dataflow", params: funcName, fn: func(f *mlir.Op) error {
		if mlir.FuncName(f) == funcName {
			f.SetAttr(mlir.AttrDataflow, mlir.UnitAttr{})
		}
		return nil
	}}
}

// MarkTop returns a pass that marks the named function as the HLS top-level
// (the synthesis entry point whose ports become the accelerator interface).
func MarkTop(funcName string) Pass {
	return funcPass{name: "hls-mark-top", params: funcName, fn: func(f *mlir.Op) error {
		if mlir.FuncName(f) == funcName {
			f.SetAttr(mlir.AttrTopFunc, mlir.UnitAttr{})
		}
		return nil
	}}
}

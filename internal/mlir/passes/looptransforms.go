package passes

import (
	"fmt"

	"repro/internal/mlir"
)

// LoopInterchange returns a pass that swaps the named function's outermost
// perfectly-nested loop pair (a user-directed transform; legality is the
// caller's responsibility, as with MLIR's own affine-loop-interchange on
// explicit permutation maps).
func LoopInterchange(funcName string) Pass {
	return funcPass{name: "affine-loop-interchange", fn: func(f *mlir.Op) error {
		if mlir.FuncName(f) != funcName {
			return nil
		}
		outer := firstLoop(mlir.FuncBody(f))
		if outer == nil {
			return fmt.Errorf("interchange: no loop in %s", funcName)
		}
		inner := onlyNestedLoop(outer)
		if inner == nil {
			return fmt.Errorf("interchange: %s outermost loop is not perfectly nested", funcName)
		}
		return interchange(outer, inner)
	}}
}

func firstLoop(b *mlir.Block) *mlir.Op {
	for _, op := range b.Ops {
		if op.Name == mlir.OpAffineFor {
			return op
		}
	}
	return nil
}

// onlyNestedLoop returns the single affine.for making up outer's body (plus
// the terminator), or nil when the nest is not perfect.
func onlyNestedLoop(outer *mlir.Op) *mlir.Op {
	body := mlir.AffineForView{Op: outer}.Body()
	var inner *mlir.Op
	for _, op := range body.Ops {
		switch {
		case op.Name == mlir.OpAffineFor:
			if inner != nil {
				return nil
			}
			inner = op
		case op.IsTerminator():
		default:
			return nil
		}
	}
	return inner
}

// interchange swaps two perfectly nested constant-bound loops by exchanging
// their bound/step attributes and induction variables.
func interchange(outer, inner *mlir.Op) error {
	ov := mlir.AffineForView{Op: outer}
	iv := mlir.AffineForView{Op: inner}
	if len(ov.LowerOperands()) != 0 || len(ov.UpperOperands()) != 0 ||
		len(iv.LowerOperands()) != 0 || len(iv.UpperOperands()) != 0 {
		return fmt.Errorf("interchange: only constant-bound loops supported")
	}
	for _, key := range []string{mlir.AttrLowerMap, mlir.AttrUpperMap, mlir.AttrStep} {
		a, b := outer.Attrs[key], inner.Attrs[key]
		outer.SetAttr(key, b)
		inner.SetAttr(key, a)
	}
	// Swap the IV meanings by swapping uses inside the inner body.
	f := mlir.EnclosingFunc(outer)
	outerIV, innerIV := ov.IV(), iv.IV()
	tmp := &mlir.Value{Ty: mlir.Index()}
	mlir.ReplaceAllUses(f, outerIV, tmp)
	mlir.ReplaceAllUses(f, innerIV, outerIV)
	mlir.ReplaceAllUses(f, tmp, innerIV)
	return nil
}

// LoopTile returns a pass that tiles the outermost 2-deep perfect nest of
// the named function by the given tile sizes, producing a 4-deep nest
// (ii, jj, i, j). Bounds must be constant and divisible by the tile sizes.
func LoopTile(funcName string, ti, tj int64) Pass {
	return funcPass{name: "affine-loop-tile", fn: func(f *mlir.Op) error {
		if mlir.FuncName(f) != funcName {
			return nil
		}
		outer := firstLoop(mlir.FuncBody(f))
		if outer == nil {
			return fmt.Errorf("tile: no loop in %s", funcName)
		}
		inner := onlyNestedLoop(outer)
		if inner == nil {
			return fmt.Errorf("tile: %s outermost loop is not perfectly nested", funcName)
		}
		return tileNest(outer, inner, ti, tj)
	}}
}

func tileNest(outer, inner *mlir.Op, ti, tj int64) error {
	ov := mlir.AffineForView{Op: outer}
	iv := mlir.AffineForView{Op: inner}
	oLo, oHi, ok1 := ov.ConstantBounds()
	iLo, iHi, ok2 := iv.ConstantBounds()
	if !ok1 || !ok2 || ov.Step() != 1 || iv.Step() != 1 {
		return fmt.Errorf("tile: loops must have constant bounds and unit step")
	}
	if (oHi-oLo)%ti != 0 || (iHi-iLo)%tj != 0 {
		return fmt.Errorf("tile: bounds not divisible by tile sizes %dx%d", ti, tj)
	}

	parent := outer.Block()
	b := mlir.NewBuilder(parent)
	// Detach the original nest; rebuild as ii/jj outer loops whose bodies
	// iterate the tile and reuse the original inner body via cloning.
	origInnerBody := iv.Body()
	origOuterIV := ov.IV()
	origInnerIV := iv.IV()

	nest := b.AffineForConst(oLo, oHi, ti, func(b *mlir.Builder, ii *mlir.Value) {
		b.AffineForConst(iLo, iHi, tj, func(b *mlir.Builder, jj *mlir.Value) {
			iMap := mlir.NewMap(1, 0, mlir.Dim(0))
			upIMap := mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(ti)))
			b.AffineFor(iMap, []*mlir.Value{ii}, upIMap, []*mlir.Value{ii}, 1, func(b *mlir.Builder, i *mlir.Value) {
				jMap := mlir.NewMap(1, 0, mlir.Dim(0))
				upJMap := mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(tj)))
				b.AffineFor(jMap, []*mlir.Value{jj}, upJMap, []*mlir.Value{jj}, 1, func(b *mlir.Builder, j *mlir.Value) {
					vmap := map[*mlir.Value]*mlir.Value{origOuterIV: i, origInnerIV: j}
					mlir.CloneBlockOpsInto(origInnerBody, b.Block(), vmap, true)
				})
			})
		})
	})
	// Move the new nest before the old one, then drop the old nest.
	parent.Remove(nest)
	parent.InsertBefore(nest, outer)
	outer.Erase()
	return nil
}

package passes

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mlir"
	"repro/internal/resilience"
)

// TestPassManagerIsolatesPanic proves a panicking pass surfaces as a typed
// PassFailure naming the pass instead of killing the process.
func TestPassManagerIsolatesPanic(t *testing.T) {
	bomb := funcPass{name: "bomb", fn: func(f *mlir.Op) error {
		var s []int
		_ = s[3] // index out of range
		return nil
	}}
	m := buildMatMul(2)
	pm := NewPassManager().Add(Canonicalize(), bomb)
	pm.Isolate = true
	err := pm.Run(m)
	f, ok := resilience.AsPassFailure(err)
	if !ok {
		t.Fatalf("want *PassFailure, got %T: %v", err, err)
	}
	if f.Stage != "mlir-opt" || f.Pass != "bomb" || f.Kind != resilience.KindPanic {
		t.Errorf("wrong attribution: %+v", f)
	}
	if f.Stack == "" {
		t.Error("panic stack not captured")
	}
}

// TestPassManagerIsolateTypesVerifyFailure: under Isolate, a post-pass
// verifier violation comes back as a KindVerify failure naming the pass.
func TestPassManagerIsolateTypesVerifyFailure(t *testing.T) {
	breaker := funcPass{name: "breaker", fn: func(f *mlir.Op) error {
		mlir.Walk(f, func(o *mlir.Op) bool {
			if o.Name == mlir.OpAffineFor {
				b := o.Regions[0].Blocks[0]
				b.Remove(b.Terminator())
				return false
			}
			return true
		})
		return nil
	}}
	pm := NewPassManager().Add(breaker)
	pm.Isolate = true
	err := pm.Run(buildMatMul(2))
	f, ok := resilience.AsPassFailure(err)
	if !ok || f.Kind != resilience.KindVerify || f.Pass != "breaker" {
		t.Fatalf("want typed verify failure for breaker, got %v", err)
	}
}

// TestPassManagerStopsAtBoundaryWhenCanceled proves the cooperative
// context check: once the context is done, the pipeline stops before the
// next pass rather than running the rest.
func TestPassManagerStopsAtBoundaryWhenCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran []string
	mark := func(name string) Pass {
		return funcPass{name: name, fn: func(f *mlir.Op) error {
			ran = append(ran, name)
			return nil
		}}
	}
	canceler := funcPass{name: "canceler", fn: func(f *mlir.Op) error {
		cancel() // the deadline fires while this pass runs
		return nil
	}}
	pm := NewPassManager().Add(mark("first"), canceler, mark("after"))
	pm.Ctx = ctx
	err := pm.Run(buildMatMul(2))
	f, ok := resilience.AsPassFailure(err)
	if !ok || f.Kind != resilience.KindCanceled {
		t.Fatalf("want typed cancellation, got %v", err)
	}
	if f.Pass != "after" {
		t.Errorf("cancellation should be observed at the boundary before %q, got %q", "after", f.Pass)
	}
	if len(ran) != 1 || ran[0] != "first" {
		t.Errorf("passes after the cancellation boundary ran: %v", ran)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("cause chain must expose context.Canceled")
	}
}

// TestPassManagerBeforePassInsideGuard: a fault injected via the hook is
// attributed to the pass it targeted.
func TestPassManagerBeforePassInsideGuard(t *testing.T) {
	pm := NewPassManager().Add(Canonicalize(), CSE())
	pm.Isolate = true
	pm.BeforePass = func(name string, m *mlir.Module) {
		if name == "cse" {
			panic("injected fault")
		}
	}
	err := pm.Run(buildMatMul(2))
	f, ok := resilience.AsPassFailure(err)
	if !ok || f.Pass != "cse" || f.Kind != resilience.KindPanic {
		t.Fatalf("hook fault not attributed to cse: %v", err)
	}
}

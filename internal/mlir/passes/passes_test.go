package passes

import (
	"math/rand"
	"testing"

	"repro/internal/mlir"
)

// buildMatMul builds a n x n f64 matmul: C += A*B.
func buildMatMul(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F64())
	_, args := m.AddFunc("matmul", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("matmul")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, k *mlir.Value) {
				a := b.AffineLoad(args[0], i, k)
				x := b.AffineLoad(args[1], k, j)
				c := b.AffineLoad(args[2], i, j)
				p := b.MulF(a, x)
				s := b.AddF(c, p)
				b.AffineStore(s, args[2], i, j)
			})
		})
	})
	b.Return()
	return m
}

// runMatMul interprets the module and returns C.
func runMatMul(t *testing.T, m *mlir.Module, n int64, seed int64) []float64 {
	t.Helper()
	ty := mlir.MemRef([]int64{n, n}, mlir.F64())
	A, B, C := mlir.NewMemBuf(ty), mlir.NewMemBuf(ty), mlir.NewMemBuf(ty)
	r := rand.New(rand.NewSource(seed))
	for i := range A.F {
		A.F[i] = r.Float64()
		B.F[i] = r.Float64()
		C.F[i] = r.Float64()
	}
	if err := m.Interpret("matmul", A, B, C); err != nil {
		t.Fatalf("interpret: %v", err)
	}
	return C.F
}

func sameFloats(t *testing.T, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("element %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

func countOps(m *mlir.Module, name string) int {
	n := 0
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == name {
			n++
		}
		return true
	})
	return n
}

func TestCanonicalizeConstFold(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4}, mlir.F64())
	_, args := m.AddFunc("f", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("f")))
	c2 := b.ConstantFloat(2, mlir.F64())
	c3 := b.ConstantFloat(3, mlir.F64())
	s := b.AddF(c2, c3) // folds to 5
	i0 := b.ConstantIndex(0)
	i1 := b.ConstantIndex(1)
	idx := b.AddI(i0, i1) // folds to 1
	b.AffineStore(s, args[0], idx)
	b.Return()

	if err := Canonicalize().Run(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if n := countOps(m, mlir.OpAddF); n != 0 {
		t.Errorf("addf not folded (%d remain)", n)
	}
	if n := countOps(m, mlir.OpAddI); n != 0 {
		t.Errorf("addi not folded (%d remain)", n)
	}
	// Execute and check the folded program still stores 5 at index 1.
	buf := mlir.NewMemBuf(ty)
	if err := m.Interpret("f", buf); err != nil {
		t.Fatal(err)
	}
	if buf.F[1] != 5 {
		t.Errorf("folded store wrote %g, want 5", buf.F[1])
	}
}

func TestCanonicalizeIdentities(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4}, mlir.F64())
	_, args := m.AddFunc("g", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("g")))
	b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
		x := b.AffineLoad(args[0], i)
		zero := b.ConstantFloat(0, mlir.F64())
		one := b.ConstantFloat(1, mlir.F64())
		y := b.AddF(x, zero) // x
		z := b.MulF(y, one)  // x
		b.AffineStore(z, args[0], i)
	})
	b.Return()
	if err := Canonicalize().Run(m); err != nil {
		t.Fatal(err)
	}
	if n := countOps(m, mlir.OpAddF) + countOps(m, mlir.OpMulF); n != 0 {
		t.Errorf("identities not simplified (%d float ops remain)", n)
	}
	if n := countOps(m, mlir.OpConstant); n != 0 {
		t.Errorf("dead constants not removed (%d remain)", n)
	}
}

func TestCanonicalizeSelectAndApply(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F64())
	_, args := m.AddFunc("h", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("h")))
	i2 := b.ConstantIndex(2)
	i3 := b.ConstantIndex(3)
	cond := b.CmpI(mlir.PredSLT, i2, i3)                                               // true
	sel := b.Select(cond, i2, i3)                                                      // 2
	app := b.AffineApply(mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(1))), sel) // 3
	v := b.ConstantFloat(7, mlir.F64())
	b.AffineStore(v, args[0], app)
	b.Return()
	if err := Canonicalize().Run(m); err != nil {
		t.Fatal(err)
	}
	if countOps(m, mlir.OpSelect) != 0 || countOps(m, mlir.OpCmpI) != 0 ||
		countOps(m, mlir.OpAffineApply) != 0 {
		t.Error("select/cmp/apply chain not fully folded")
	}
	buf := mlir.NewMemBuf(ty)
	if err := m.Interpret("h", buf); err != nil {
		t.Fatal(err)
	}
	if buf.F[3] != 7 {
		t.Errorf("store went to wrong place: %v", buf.F)
	}
}

func TestCSE(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4, 4}, mlir.F64())
	_, args := m.AddFunc("c", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("c")))
	b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
		// Two identical loads (not CSE-able: memory) and two identical
		// adds over the same value (CSE-able).
		x1 := b.AffineLoad(args[0], i, i)
		_ = b.AffineLoad(args[0], i, i)
		s1 := b.AddF(x1, x1)
		s2 := b.AddF(x1, x1)
		tot := b.AddF(s1, s2)
		b.AffineStore(tot, args[0], i, i)
	})
	b.Return()
	before := countOps(m, mlir.OpAddF)
	if err := CSE().Run(m); err != nil {
		t.Fatal(err)
	}
	if err := Canonicalize().Run(m); err != nil { // clean dead dupes
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	after := countOps(m, mlir.OpAddF)
	if after >= before {
		t.Errorf("CSE did not reduce addf count: before=%d after=%d", before, after)
	}
	// affine.load is not pure (memory), so loads must NOT be CSEd by this
	// pass... they are pure reads but stores in the loop could alias; the
	// conservative choice is to keep them.
	if n := countOps(m, mlir.OpAffineLoad); n != 2 {
		t.Errorf("loads should be preserved, have %d", n)
	}
}

func TestCSEScopedAcrossRegions(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4}, mlir.F64())
	_, args := m.AddFunc("s", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("s")))
	one := b.ConstantFloat(1, mlir.F64())
	_ = one
	b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
		inner := b.ConstantFloat(1, mlir.F64()) // dupe of outer constant
		b.AffineStore(inner, args[0], i)
	})
	b.Return()
	if err := CSE().Run(m); err != nil {
		t.Fatal(err)
	}
	if err := Canonicalize().Run(m); err != nil {
		t.Fatal(err)
	}
	if n := countOps(m, mlir.OpConstant); n != 1 {
		t.Errorf("constant not CSEd across region boundary: %d remain", n)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	const n = 6
	ref := runMatMul(t, buildMatMul(n), n, 42)
	for _, factor := range []int{2, 3, 4, 8} {
		m := buildMatMul(n)
		if err := LoopUnroll(factor, false).Run(m); err != nil {
			t.Fatalf("unroll %d: %v", factor, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("unroll %d: verify: %v", factor, err)
		}
		got := runMatMul(t, m, n, 42)
		sameFloats(t, ref, got)
	}
}

func TestUnrollFactorStructure(t *testing.T) {
	m := buildMatMul(8)
	if err := LoopUnroll(4, false).Run(m); err != nil {
		t.Fatal(err)
	}
	// Innermost loop (k) unrolled by 4: 8/4 = 2 iterations; body has 4 copies
	// of 3 loads + 1 store.
	if n := countOps(m, mlir.OpAffineLoad); n != 12 {
		t.Errorf("unrolled body should have 12 loads, got %d", n)
	}
	// 8 % 4 == 0, so no epilogue loop: still 3 loops total.
	if n := countOps(m, mlir.OpAffineFor); n != 3 {
		t.Errorf("want 3 loops after divisible unroll, got %d", n)
	}
}

func TestUnrollRemainderEpilogue(t *testing.T) {
	const n = 7
	ref := runMatMul(t, buildMatMul(n), n, 9)
	m := buildMatMul(n)
	if err := LoopUnroll(2, false).Run(m); err != nil {
		t.Fatal(err)
	}
	// 7 = 3*2 + 1: main loop + epilogue → 4 loops total.
	if c := countOps(m, mlir.OpAffineFor); c != 4 {
		t.Errorf("want 4 loops (epilogue), got %d", c)
	}
	got := runMatMul(t, m, n, 9)
	sameFloats(t, ref, got)
}

func TestFullUnroll(t *testing.T) {
	const n = 3
	ref := runMatMul(t, buildMatMul(n), n, 5)
	m := buildMatMul(n)
	if err := LoopUnroll(64, false).Run(m); err != nil {
		t.Fatal(err)
	}
	// Innermost loop fully unrolled: only 2 loops remain.
	if c := countOps(m, mlir.OpAffineFor); c != 2 {
		t.Errorf("want 2 loops after full unroll, got %d", c)
	}
	got := runMatMul(t, m, n, 5)
	sameFloats(t, ref, got)
}

func TestMarkedUnroll(t *testing.T) {
	m := buildMatMul(4)
	pm := NewPassManager().Add(MarkUnroll(2), LoopUnroll(0, true))
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	ref := runMatMul(t, buildMatMul(4), 4, 1)
	got := runMatMul(t, m, 4, 1)
	sameFloats(t, ref, got)
	// Directive must be consumed.
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.HasAttr(mlir.AttrUnroll) {
			t.Error("hls.unroll directive not consumed")
		}
		return true
	})
}

func TestPipelineDirective(t *testing.T) {
	m := buildMatMul(4)
	if err := PipelineInnermost(1).Run(m); err != nil {
		t.Fatal(err)
	}
	marked := 0
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.HasAttr(mlir.AttrPipeline) {
			marked++
			if !isInnermostLoop(o) {
				t.Error("pipeline directive on non-innermost loop")
			}
			if ii, ok := o.IntAttr(mlir.AttrII); !ok || ii != 1 {
				t.Error("ii attribute wrong")
			}
		}
		return true
	})
	if marked != 1 {
		t.Errorf("want 1 pipelined loop, got %d", marked)
	}
}

func TestPartitionDirectives(t *testing.T) {
	m := buildMatMul(4)
	spec := PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 1}
	pm := NewPassManager().Add(
		PartitionArg("matmul", 0, spec),
		MarkTop("matmul"),
	)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc("matmul")
	if !f.HasAttr(mlir.AttrTopFunc) {
		t.Error("top attribute missing")
	}
	got, ok := ParsePartitionAttr(f.Attrs[PartitionArgAttrKey(0)])
	if !ok || got != spec {
		t.Errorf("partition attr round trip failed: %+v ok=%v", got, ok)
	}
	if err := PartitionArg("matmul", 9, spec).Run(m); err == nil {
		t.Error("out-of-range partition should error")
	}
}

func TestPartitionAllArgs(t *testing.T) {
	m := buildMatMul(4)
	spec := PartitionSpec{Kind: "complete", Factor: 0, Dim: 0}
	if err := PartitionAllArgs(spec).Run(m); err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc("matmul")
	for i := 0; i < 3; i++ {
		if _, ok := ParsePartitionAttr(f.Attrs[PartitionArgAttrKey(i)]); !ok {
			t.Errorf("arg %d missing partition attr", i)
		}
	}
}

func TestLoopInterchange(t *testing.T) {
	// Use a rectangular iteration space to catch bound swapping: copy
	// kernel over 4x8.
	build := func() *mlir.Module {
		m := mlir.NewModule()
		ty := mlir.MemRef([]int64{4, 8}, mlir.F64())
		_, args := m.AddFunc("copy", []*mlir.Type{ty, ty}, nil)
		b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("copy")))
		b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
			b.AffineForConst(0, 8, 1, func(b *mlir.Builder, j *mlir.Value) {
				v := b.AffineLoad(args[0], i, j)
				b.AffineStore(v, args[1], i, j)
			})
		})
		b.Return()
		return m
	}
	m := build()
	if err := LoopInterchange("copy").Run(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// After interchange the outer loop must run to 8.
	outer, _ := mlir.AsAffineFor(mlir.FuncBody(m.FindFunc("copy")).Ops[0])
	if _, hi, _ := outer.ConstantBounds(); hi != 8 {
		t.Errorf("outer bound after interchange = %d, want 8", hi)
	}
	// Semantics preserved.
	ty := mlir.MemRef([]int64{4, 8}, mlir.F64())
	in, out := mlir.NewMemBuf(ty), mlir.NewMemBuf(ty)
	for i := range in.F {
		in.F[i] = float64(i)
	}
	if err := m.Interpret("copy", in, out); err != nil {
		t.Fatal(err)
	}
	for i := range in.F {
		if out.F[i] != in.F[i] {
			t.Fatalf("interchange broke copy at %d", i)
		}
	}
}

func TestLoopTile(t *testing.T) {
	const n = 8
	ref := runMatMul(t, buildMatMul(n), n, 3)
	m := buildMatMul(n)
	if err := LoopTile("matmul", 4, 4).Run(m); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// i/j tiled: ii, jj, i, j + k = 5 loops.
	if c := countOps(m, mlir.OpAffineFor); c != 5 {
		t.Errorf("want 5 loops after tiling, got %d", c)
	}
	got := runMatMul(t, m, n, 3)
	sameFloats(t, ref, got)
}

func TestLoopTileErrors(t *testing.T) {
	m := buildMatMul(6)
	if err := LoopTile("matmul", 4, 4).Run(m); err == nil {
		t.Error("non-divisible tiling should error")
	}
	m2 := buildMatMul(4)
	if err := LoopTile("nosuch", 2, 2).Run(m2); err != nil {
		t.Error("tiling a missing function should be a no-op for other funcs")
	}
}

func TestPassManagerVerifies(t *testing.T) {
	breaker := funcPass{name: "breaker", fn: func(f *mlir.Op) error {
		// Corrupt the IR: remove the terminator.
		body := mlir.FuncBody(f)
		body.Remove(body.Terminator())
		// Add an op using an undefined value would be caught; removing a
		// loop terminator is caught by the affine.for check instead. Here
		// func body has no explicit terminator requirement, so instead break
		// an affine.for.
		mlir.Walk(f, func(o *mlir.Op) bool {
			if o.Name == mlir.OpAffineFor {
				b := o.Regions[0].Blocks[0]
				b.Remove(b.Terminator())
				return false
			}
			return true
		})
		return nil
	}}
	m := buildMatMul(2)
	pm := NewPassManager().Add(breaker)
	if err := pm.Run(m); err == nil {
		t.Error("pass manager should catch broken IR")
	}
}

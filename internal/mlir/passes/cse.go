package passes

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mlir"
)

// CSE returns the common-subexpression-elimination pass. It deduplicates
// pure ops whose operands and attributes match, scoped so that an op can
// reuse an equivalent op from the same block or any structurally enclosing
// block (which always dominates it in structured control flow).
func CSE() Pass {
	return funcPass{name: "cse", fn: cseFunc}
}

func cseFunc(f *mlir.Op) error {
	valueIDs := map[*mlir.Value]int{}
	nextID := 0
	id := func(v *mlir.Value) int {
		if n, ok := valueIDs[v]; ok {
			return n
		}
		nextID++
		valueIDs[v] = nextID
		return nextID
	}

	key := func(op *mlir.Op) string {
		var sb strings.Builder
		sb.WriteString(op.Name)
		for _, v := range op.Operands {
			fmt.Fprintf(&sb, "|%d", id(v))
		}
		keys := make([]string, 0, len(op.Attrs))
		for k := range op.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sb.WriteString("|" + k + "=" + op.Attrs[k].String())
		}
		for _, r := range op.Results {
			sb.WriteString("|" + r.Type().String())
		}
		return sb.String()
	}

	// scope is a stack of available-expression maps; entering a nested
	// block pushes a child scope that can still see ancestors.
	type scope struct {
		parent *scope
		exprs  map[string]*mlir.Op
	}
	lookup := func(s *scope, k string) (*mlir.Op, bool) {
		for cur := s; cur != nil; cur = cur.parent {
			if op, ok := cur.exprs[k]; ok {
				return op, true
			}
		}
		return nil, false
	}

	var visitBlock func(b *mlir.Block, s *scope)
	visitBlock = func(b *mlir.Block, s *scope) {
		ops := make([]*mlir.Op, len(b.Ops))
		copy(ops, b.Ops)
		for _, op := range ops {
			if mlir.IsPure(op) && len(op.Results) == 1 {
				k := key(op)
				if prev, ok := lookup(s, k); ok {
					mlir.ReplaceAllUses(f, op.Result(0), prev.Result(0))
					op.Erase()
					continue
				}
				s.exprs[k] = op
			}
			for _, r := range op.Regions {
				for _, nb := range r.Blocks {
					visitBlock(nb, &scope{parent: s, exprs: map[string]*mlir.Op{}})
				}
			}
		}
	}

	body := mlir.FuncBody(f)
	if body == nil {
		return nil
	}
	// Only apply scoped CSE in the structured (single-block) regime; cf-level
	// functions get per-block CSE without inheritance.
	if len(f.Regions[0].Blocks) == 1 {
		visitBlock(body, &scope{exprs: map[string]*mlir.Op{}})
		return nil
	}
	for _, b := range f.Regions[0].Blocks {
		visitBlock(b, &scope{exprs: map[string]*mlir.Op{}})
	}
	return nil
}

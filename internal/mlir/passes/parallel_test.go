package passes

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mlir"
	"repro/internal/resilience"
)

// buildMultiFunc builds a module with n independent matmul-like functions,
// the shape the Parallel option exists for (the kernel suite itself is
// single-function).
func buildMultiFunc(n int) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8, 8}, mlir.F64())
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("worker%d", i)
		_, args := m.AddFunc(name, []*mlir.Type{ty, ty}, nil)
		b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc(name)))
		b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
			b.AffineForConst(0, 8, 1, func(b *mlir.Builder, j *mlir.Value) {
				x := b.AffineLoad(args[0], i, j)
				y := b.AffineLoad(args[1], i, j)
				s := b.AddF(x, y)
				// A dead duplicate for CSE and a foldable add for
				// canonicalize, so the passes have real work per function.
				_ = b.AddF(x, y)
				b.AffineStore(s, args[1], i, j)
			})
		})
		b.Return()
	}
	return m
}

// TestParallelFuncLocalMatchesSerial pins the Parallel contract: fanning
// function-local passes across functions must print byte-identically to
// the serial visit.
func TestParallelFuncLocalMatchesSerial(t *testing.T) {
	serial := buildMultiFunc(5)
	pmS := NewPassManager().Add(Canonicalize(), CSE())
	if err := pmS.Run(serial); err != nil {
		t.Fatal(err)
	}

	par := buildMultiFunc(5)
	pmP := NewPassManager().Add(Canonicalize(), CSE())
	pmP.Parallel = true
	if err := pmP.Run(par); err != nil {
		t.Fatal(err)
	}

	if serial.Print() != par.Print() {
		t.Fatal("parallel function-local run diverges from serial")
	}
}

// errOnFunc fails on the named functions, proving error selection.
type errOnFunc struct{ bad map[string]bool }

func (p errOnFunc) Name() string { return "err-on-func" }
func (p errOnFunc) Run(m *mlir.Module) error {
	for _, f := range m.Funcs() {
		if err := p.RunOnFunc(f); err != nil {
			return err
		}
	}
	return nil
}
func (p errOnFunc) RunOnFunc(f *mlir.Op) error {
	name := mlir.FuncName(f)
	if p.bad[name] {
		return fmt.Errorf("boom in %s", name)
	}
	return nil
}

// TestParallelErrorOrderDeterministic: when several functions fail, the
// reported error is the first by function order — exactly the serial
// outcome — and plain errors stay untyped.
func TestParallelErrorOrderDeterministic(t *testing.T) {
	m := buildMultiFunc(6)
	pm := NewPassManager()
	pm.Parallel = true
	pm.Add(errOnFunc{bad: map[string]bool{"worker4": true, "worker1": true}})
	err := pm.Run(m)
	if err == nil {
		t.Fatal("expected failure")
	}
	if want := "boom in worker1"; !strings.Contains(err.Error(), want) {
		t.Fatalf("got %q, want first-by-order %q", err, want)
	}
	if _, typed := resilience.AsPassFailure(err); typed {
		t.Fatalf("plain error got typed in the parallel path: %v", err)
	}
}

// panicOnFunc panics on one function.
type panicOnFunc struct{ bad string }

func (p panicOnFunc) Name() string { return "panic-on-func" }
func (p panicOnFunc) Run(m *mlir.Module) error {
	for _, f := range m.Funcs() {
		if err := p.RunOnFunc(f); err != nil {
			return err
		}
	}
	return nil
}
func (p panicOnFunc) RunOnFunc(f *mlir.Op) error {
	if mlir.FuncName(f) == p.bad {
		panic("kaboom")
	}
	return nil
}

// TestParallelPanicIsolated: a panic in one function's goroutine becomes a
// typed KindPanic failure instead of killing the process, even without
// Isolate (a caller-stack recovery boundary cannot catch it).
func TestParallelPanicIsolated(t *testing.T) {
	m := buildMultiFunc(4)
	pm := NewPassManager()
	pm.Parallel = true
	pm.Add(panicOnFunc{bad: "worker2"})
	err := pm.Run(m)
	pf, ok := resilience.AsPassFailure(err)
	if !ok {
		t.Fatalf("panic not typed: %v", err)
	}
	if pf.Kind != resilience.KindPanic || pf.Pass != "panic-on-func" {
		t.Fatalf("wrong attribution: %+v", pf)
	}
}

package mlir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAffineSimplification(t *testing.T) {
	if got := Add(Const(2), Const(3)); !got.IsConst() || got.Val != 5 {
		t.Errorf("2+3 = %v", got)
	}
	d := Dim(0)
	if got := Add(d, Const(0)); got != d {
		t.Error("d0+0 should simplify to d0")
	}
	if got := Add(Const(0), d); got != d {
		t.Error("0+d0 should simplify to d0")
	}
	if got := Mul(d, Const(1)); got != d {
		t.Error("d0*1 should simplify to d0")
	}
	if got := Mul(d, Const(0)); !got.IsConst() || got.Val != 0 {
		t.Error("d0*0 should simplify to 0")
	}
	if got := Mul(Const(4), Const(5)); !got.IsConst() || got.Val != 20 {
		t.Error("4*5 should fold")
	}
	if got := FloorDiv(d, 1); got != d {
		t.Error("d0 floordiv 1 should simplify to d0")
	}
}

func TestAffineNonAffineMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("d0*d1 should panic")
		}
	}()
	Mul(Dim(0), Dim(1))
}

func TestFloorCeilMod(t *testing.T) {
	cases := []struct {
		a, b        int64
		floor, ceil int64
		mod         int64
	}{
		{7, 2, 3, 4, 1},
		{-7, 2, -4, -3, 1},
		{6, 3, 2, 2, 0},
		{-6, 3, -2, -2, 0},
		{5, 4, 1, 2, 1},
		{-5, 4, -2, -1, 3},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorMod(c.a, c.b); got != c.mod {
			t.Errorf("floorMod(%d,%d) = %d, want %d", c.a, c.b, got, c.mod)
		}
	}
}

func TestAffineEval(t *testing.T) {
	// (d0 * 8 + d1) mod 4
	e := Mod(Add(Mul(Dim(0), Const(8)), Dim(1)), 4)
	if got := e.Eval([]int64{3, 5}, nil); got != (3*8+5)%4 {
		t.Errorf("eval = %d", got)
	}
	// s0 floordiv 2 + d0
	e2 := Add(FloorDiv(Sym(0), 2), Dim(0))
	if got := e2.Eval([]int64{10}, []int64{7}); got != 13 {
		t.Errorf("eval = %d, want 13", got)
	}
}

func TestAffineMapBasics(t *testing.T) {
	id := IdentityMap(3)
	if !id.IsIdentity() {
		t.Error("IdentityMap should be identity")
	}
	got := id.Eval([]int64{1, 2, 3}, nil)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("identity eval = %v", got)
	}
	cm := ConstantMap(42)
	if v, ok := cm.IsSingleConstant(); !ok || v != 42 {
		t.Error("ConstantMap should be a single constant")
	}
	if cm.IsIdentity() {
		t.Error("constant map is not identity")
	}
	m := NewMap(2, 1, Add(Dim(0), Sym(0)), Dim(1))
	if m.IsIdentity() {
		t.Error("map with symbol is not identity")
	}
	r := m.Eval([]int64{10, 20}, []int64{5})
	if r[0] != 15 || r[1] != 20 {
		t.Errorf("map eval = %v", r)
	}
}

func TestAffineMapArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMap with out-of-range dim should panic")
		}
	}()
	NewMap(1, 0, Dim(3))
}

func TestAffineMapEvalArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval with wrong arity should panic")
		}
	}()
	IdentityMap(2).Eval([]int64{1}, nil)
}

// randomAffineExpr builds a bounded random affine expression.
func randomAffineExpr(r *rand.Rand, depth, numDims, numSyms int) *AffineExpr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Dim(r.Intn(numDims))
		case 1:
			if numSyms > 0 {
				return Sym(r.Intn(numSyms))
			}
			return Dim(r.Intn(numDims))
		default:
			return Const(int64(r.Intn(21) - 10))
		}
	}
	switch r.Intn(5) {
	case 0:
		return Add(randomAffineExpr(r, depth-1, numDims, numSyms), randomAffineExpr(r, depth-1, numDims, numSyms))
	case 1:
		return Mul(randomAffineExpr(r, depth-1, numDims, numSyms), Const(int64(r.Intn(9)-4)))
	case 2:
		return Mod(randomAffineExpr(r, depth-1, numDims, numSyms), int64(r.Intn(7)+1))
	case 3:
		return FloorDiv(randomAffineExpr(r, depth-1, numDims, numSyms), int64(r.Intn(7)+1))
	default:
		return CeilDiv(randomAffineExpr(r, depth-1, numDims, numSyms), int64(r.Intn(7)+1))
	}
}

func TestAffineExprEqualReflexiveQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		e := randomAffineExpr(rr, 3, 2, 1)
		return e.Equal(e)
	}
	if err := quick.Check(f, &quick.Config{Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestAffineModNonNegativeQuick(t *testing.T) {
	// Property: mod results are always in [0, m).
	f := func(a int64, m uint8) bool {
		mm := int64(m%20) + 1
		got := floorMod(a%100000, mm)
		return got >= 0 && got < mm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAffineDivIdentityQuick(t *testing.T) {
	// Property: a == floorDiv(a,b)*b + floorMod(a,b).
	f := func(a int64, b uint8) bool {
		bb := int64(b%50) + 1
		aa := a % 1000000
		return aa == floorDiv(aa, bb)*bb+floorMod(aa, bb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAffineMaxDimSym(t *testing.T) {
	e := Add(Mul(Dim(2), Const(3)), Sym(1))
	if e.MaxDim() != 2 {
		t.Errorf("MaxDim = %d", e.MaxDim())
	}
	if e.MaxSym() != 1 {
		t.Errorf("MaxSym = %d", e.MaxSym())
	}
	if Const(5).MaxDim() != -1 || Const(5).MaxSym() != -1 {
		t.Error("constants reference no dims/syms")
	}
}

func TestAffineStrings(t *testing.T) {
	e := Add(Mul(Dim(0), Const(32)), Dim(1))
	if got := e.String(); got != "((d0 * 32) + d1)" {
		t.Errorf("String = %q", got)
	}
	m := NewMap(2, 0, e)
	if got := m.String(); got != "(d0, d1) -> (((d0 * 32) + d1))" {
		t.Errorf("map String = %q", got)
	}
	m2 := NewMap(1, 1, Add(Dim(0), Sym(0)))
	if got := m2.String(); got != "(d0)[s0] -> ((d0 + s0))" {
		t.Errorf("map String = %q", got)
	}
}

package diag

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSARIFGolden locks the SARIF rendering byte-for-byte: consumers match
// on this structure (schema, rule table, levels, locations, fingerprints),
// so any change here is a compatibility break that should be deliberate.
func TestSARIFGolden(t *testing.T) {
	ds := Diagnostics{
		{
			Severity: SevWarning, Check: "gep-bounds", Func: "k", Block: "body",
			Instr: "t3", Message: "index spans [0, 63], outside dimension 1 of size 16",
			File: "k.ll", BlockPos: 1, InstrPos: 2,
		},
		{
			Severity: SevError, Check: "uninit-load", Func: "k", Block: "entry",
			Instr: "v", Message: "no path has initialized %buf", BlockPos: 0, InstrPos: 3,
		},
		{
			Severity: SevInfo, Check: "loop-carried-dep", Func: "k",
			Message: "recurrence bounds II", BlockPos: -1, InstrPos: -1,
		},
	}
	ds.Sort()
	ds.AssignIDs()
	got, err := ds.SARIFWithMeta("hls-lint", map[string]RuleMeta{
		"gep-bounds": {
			Short: "statically out-of-range array indexing",
			Full:  "every GEP index is checked against the static array shape",
			Help:  "tighten the loop bound or guard the access",
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const golden = `{
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "hls-lint",
          "rules": [
            {
              "id": "gep-bounds",
              "shortDescription": {
                "text": "statically out-of-range array indexing"
              },
              "fullDescription": {
                "text": "every GEP index is checked against the static array shape"
              },
              "help": {
                "text": "tighten the loop bound or guard the access"
              }
            },
            {
              "id": "loop-carried-dep",
              "shortDescription": {
                "text": "loop-carried-dep"
              }
            },
            {
              "id": "uninit-load",
              "shortDescription": {
                "text": "uninit-load"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "loop-carried-dep",
          "level": "note",
          "message": {
            "text": "recurrence bounds II"
          },
          "locations": [
            {
              "logicalLocations": [
                {
                  "name": "k",
                  "fullyQualifiedName": "k",
                  "kind": "function"
                }
              ]
            }
          ],
          "partialFingerprints": {
            "hlsLintId": "ba83e6d4"
          }
        },
        {
          "ruleId": "uninit-load",
          "level": "error",
          "message": {
            "text": "no path has initialized %buf"
          },
          "locations": [
            {
              "logicalLocations": [
                {
                  "name": "k",
                  "fullyQualifiedName": "k.entry",
                  "kind": "function"
                }
              ]
            }
          ],
          "partialFingerprints": {
            "hlsLintId": "98163d87"
          }
        },
        {
          "ruleId": "gep-bounds",
          "level": "warning",
          "message": {
            "text": "index spans [0, 63], outside dimension 1 of size 16"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "k.ll"
                }
              },
              "logicalLocations": [
                {
                  "name": "k",
                  "fullyQualifiedName": "k.body",
                  "kind": "function"
                }
              ]
            }
          ],
          "partialFingerprints": {
            "hlsLintId": "PLACEHOLDER"
          }
        }
      ]
    }
  ]
}`
	want := strings.Replace(golden, "PLACEHOLDER", ds[2].ID, 1)
	if string(got) != want {
		t.Errorf("SARIF output drifted from the golden:\n--- got\n%s\n--- want\n%s", got, want)
	}

	// The log must round-trip as JSON and validate basic invariants even if
	// the golden is regenerated.
	var generic map[string]any
	if err := json.Unmarshal(got, &generic); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
}

// TestSARIFEmpty: an empty collection still renders a well-formed log with
// the provided rule table and an empty result array.
func TestSARIFEmpty(t *testing.T) {
	got, err := Diagnostics{}.SARIF("hls-lint", map[string]string{"gep-bounds": "d"})
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []any `json:"results"`
			Tool    struct {
				Driver struct {
					Rules []any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(got, &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 0 || len(log.Runs[0].Tool.Driver.Rules) != 1 {
		t.Errorf("unexpected empty-log shape:\n%s", got)
	}
	// The description-only entry point must not invent optional rule fields.
	if strings.Contains(string(got), "fullDescription") || strings.Contains(string(got), "help") {
		t.Errorf("SARIF without metadata should omit optional rule fields:\n%s", got)
	}
}

// Package diag is the shared diagnostics core of the static-analysis layer:
// a severity-tagged, source-located diagnostic record, a deterministic
// ordering over collections of them, and text/JSON renderers. Producers
// (internal/lint, the pass managers' verify-each mode) build Diagnostics;
// consumers (cmd/hls-lint, tests, the DSE pre-check) sort and render them.
package diag

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a diagnostic.
type Severity int

// Severity levels, in ascending order.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("diag: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding. Location is textual (function, block, and the
// defining instruction's SSA name or opcode) so diagnostics survive the IR
// they were produced from; BlockPos/InstrPos carry the positional order for
// deterministic sorting.
type Diagnostic struct {
	Severity   Severity `json:"severity"`
	Check      string   `json:"check"`
	Func       string   `json:"func,omitempty"`
	Block      string   `json:"block,omitempty"`
	Instr      string   `json:"instr,omitempty"`
	Message    string   `json:"message"`
	Suggestion string   `json:"suggestion,omitempty"`

	// File names the input the diagnostic came from, for multi-file runs.
	File string `json:"file,omitempty"`
	// ID is a stable content-derived fingerprint assigned by AssignIDs; it
	// keys hls-lint's -explain lookup and SARIF partial fingerprints.
	ID string `json:"id,omitempty"`
	// Explanation carries the analysis state behind the finding (value
	// ranges, points-to sets, constant branch conditions), shown by
	// hls-lint -explain.
	Explanation string `json:"explanation,omitempty"`

	// BlockPos/InstrPos are the block's index in the function and the
	// instruction's index in its block; -1 marks function- or block-level
	// diagnostics. They order diagnostics deterministically and are
	// reported in JSON for tooling.
	BlockPos int `json:"blockPos"`
	InstrPos int `json:"instrPos"`
}

// String renders the diagnostic as one line (plus an indented suggestion).
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s[%s]", d.Severity, d.Check)
	if d.File != "" {
		fmt.Fprintf(&sb, " %s", d.File)
	}
	if d.Func != "" {
		fmt.Fprintf(&sb, " @%s", d.Func)
	}
	if d.Block != "" {
		fmt.Fprintf(&sb, " %%%s", d.Block)
	}
	if d.Instr != "" {
		fmt.Fprintf(&sb, " %%%s", d.Instr)
	}
	fmt.Fprintf(&sb, ": %s", d.Message)
	if d.ID != "" {
		fmt.Fprintf(&sb, " [%s]", d.ID)
	}
	if d.Suggestion != "" {
		fmt.Fprintf(&sb, "\n    suggestion: %s", d.Suggestion)
	}
	return sb.String()
}

// Diagnostics is an ordered collection of findings.
type Diagnostics []Diagnostic

// Sort orders the collection deterministically: by function, then position
// (function-level diagnostics first), then check name, then message.
func (ds Diagnostics) Sort() {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.BlockPos != b.BlockPos {
			return a.BlockPos < b.BlockPos
		}
		if a.InstrPos != b.InstrPos {
			return a.InstrPos < b.InstrPos
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// AssignIDs stamps every diagnostic with a stable content-derived ID: the
// first 8 hex digits of a SHA-256 over the locating fields plus the message,
// salted with an occurrence counter so duplicates stay distinct. IDs are
// deterministic across runs of the same input, which is what lets a user
// re-run with -explain <id> and hit the same finding.
func (ds Diagnostics) AssignIDs() {
	seen := map[string]int{}
	for i := range ds {
		d := &ds[i]
		key := strings.Join([]string{
			d.File, d.Check, d.Func, d.Block, d.Instr,
			fmt.Sprintf("%d:%d", d.BlockPos, d.InstrPos), d.Message,
		}, "|")
		n := seen[key]
		seen[key] = n + 1
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d", key, n)))
		d.ID = hex.EncodeToString(sum[:])[:8]
	}
}

// FindID returns the diagnostic with the given ID.
func (ds Diagnostics) FindID(id string) (Diagnostic, bool) {
	for _, d := range ds {
		if d.ID == id {
			return d, true
		}
	}
	return Diagnostic{}, false
}

// HasErrors reports whether any diagnostic has error severity.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity >= SevError {
			return true
		}
	}
	return false
}

// Count returns the number of diagnostics at exactly the given severity.
func (ds Diagnostics) Count(sev Severity) int {
	n := 0
	for _, d := range ds {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// Filter returns the diagnostics at or above the given severity, preserving
// order.
func (ds Diagnostics) Filter(min Severity) Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// ByCheck returns the diagnostics produced by the named check, preserving
// order.
func (ds Diagnostics) ByCheck(name string) Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Check == name {
			out = append(out, d)
		}
	}
	return out
}

// Text renders the collection one diagnostic per line, followed by a
// summary line. The collection is sorted first, so output is deterministic.
func (ds Diagnostics) Text() string {
	ds.Sort()
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%d error(s), %d warning(s), %d info(s)\n",
		ds.Count(SevError), ds.Count(SevWarning), ds.Count(SevInfo))
	return sb.String()
}

// jsonReport is the stable JSON envelope.
type jsonReport struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
	Infos       int          `json:"infos"`
}

// JSON renders the collection as an indented, deterministic JSON report.
func (ds Diagnostics) JSON() ([]byte, error) {
	ds.Sort()
	rep := jsonReport{
		Diagnostics: ds,
		Errors:      ds.Count(SevError),
		Warnings:    ds.Count(SevWarning),
		Infos:       ds.Count(SevInfo),
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	return json.MarshalIndent(rep, "", "  ")
}

// AsError converts error-severity diagnostics into a single error (nil when
// none): the first error's text plus a count of the rest. Used by the pass
// managers' verify-each mode to fail a pipeline on broken invariants.
func (ds Diagnostics) AsError() error {
	errs := ds.Filter(SevError)
	if len(errs) == 0 {
		return nil
	}
	errs.Sort()
	if len(errs) == 1 {
		return fmt.Errorf("%s", errs[0])
	}
	return fmt.Errorf("%s (and %d more)", errs[0], len(errs)-1)
}

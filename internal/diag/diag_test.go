package diag

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() Diagnostics {
	return Diagnostics{
		{Severity: SevWarning, Check: "dead-store", Func: "g", Block: "b", Instr: "s", Message: "overwritten", BlockPos: 1, InstrPos: 3},
		{Severity: SevError, Check: "uninit-load", Func: "f", Block: "entry", Instr: "v", Message: "uninitialized", Suggestion: "store first", BlockPos: 0, InstrPos: 2},
		{Severity: SevInfo, Check: "loop-carried-dep", Func: "f", Block: "entry", Instr: "ld", Message: "recurrence", BlockPos: 0, InstrPos: 1},
		{Severity: SevWarning, Check: "hls-directives", Func: "f", Message: "bad partition", BlockPos: -1, InstrPos: -1},
	}
}

func TestSortDeterministic(t *testing.T) {
	ds := sample()
	ds.Sort()
	order := make([]string, len(ds))
	for i, d := range ds {
		order[i] = d.Check
	}
	// f before g; within f: function-level (-1) first, then by position.
	want := []string{"hls-directives", "loop-carried-dep", "uninit-load", "dead-store"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("sort order %v, want %v", order, want)
		}
	}
	// Sorting an already-sorted collection is a fixpoint.
	before := ds.Text()
	ds.Sort()
	if after := ds.Text(); after != before {
		t.Error("Sort is not idempotent")
	}
}

func TestStringRendering(t *testing.T) {
	d := sample()[1]
	s := d.String()
	for _, want := range []string{"error[uninit-load]", "@f", "%entry", "%v", "uninitialized", "suggestion: store first"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTextSummary(t *testing.T) {
	txt := sample().Text()
	if !strings.Contains(txt, "1 error(s), 2 warning(s), 1 info(s)") {
		t.Errorf("summary line wrong:\n%s", txt)
	}
	if empty := (Diagnostics{}).Text(); !strings.Contains(empty, "0 error(s), 0 warning(s), 0 info(s)") {
		t.Errorf("empty collection summary wrong:\n%s", empty)
	}
}

func TestCountFilterByCheck(t *testing.T) {
	ds := sample()
	if ds.Count(SevWarning) != 2 || ds.Count(SevError) != 1 || ds.Count(SevInfo) != 1 {
		t.Errorf("counts wrong: %d/%d/%d", ds.Count(SevError), ds.Count(SevWarning), ds.Count(SevInfo))
	}
	if got := ds.Filter(SevWarning); len(got) != 3 {
		t.Errorf("Filter(warning) kept %d, want 3", len(got))
	}
	if got := ds.ByCheck("uninit-load"); len(got) != 1 || got[0].Func != "f" {
		t.Errorf("ByCheck wrong: %v", got)
	}
	if !ds.HasErrors() || (Diagnostics{sample()[0]}).HasErrors() {
		t.Error("HasErrors wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Diagnostics Diagnostics `json:"diagnostics"`
		Errors      int         `json:"errors"`
		Warnings    int         `json:"warnings"`
		Infos       int         `json:"infos"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if rep.Errors != 1 || rep.Warnings != 2 || rep.Infos != 1 || len(rep.Diagnostics) != 4 {
		t.Errorf("envelope wrong: %+v", rep)
	}
	if rep.Diagnostics[0].Check != "hls-directives" {
		t.Errorf("JSON must be sorted; first check = %s", rep.Diagnostics[0].Check)
	}
	if !strings.Contains(string(b), `"severity": "error"`) {
		t.Errorf("severity must marshal by name:\n%s", b)
	}
	// An empty collection renders an empty array, not null.
	eb, err := (Diagnostics{}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(eb), `"diagnostics": []`) {
		t.Errorf("empty collection must render []:\n%s", eb)
	}
}

func TestSeverityUnmarshalRejectsUnknown(t *testing.T) {
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity name must not parse")
	}
	if err := json.Unmarshal([]byte(`"warning"`), &s); err != nil || s != SevWarning {
		t.Errorf("warning should parse: %v %v", s, err)
	}
}

func TestAsError(t *testing.T) {
	if err := (Diagnostics{sample()[0]}).AsError(); err != nil {
		t.Errorf("warnings alone are not an error: %v", err)
	}
	ds := sample()
	err := ds.AsError()
	if err == nil || !strings.Contains(err.Error(), "uninit-load") {
		t.Errorf("AsError must surface the first error: %v", err)
	}
	ds = append(ds, Diagnostic{Severity: SevError, Check: "gep-bounds", Func: "z", Message: "oob", BlockPos: -1, InstrPos: -1})
	err = ds.AsError()
	if err == nil || !strings.Contains(err.Error(), "(and 1 more)") {
		t.Errorf("AsError must count the remaining errors: %v", err)
	}
}

package diag

import (
	"encoding/json"
	"sort"
)

// This file renders a Diagnostics collection as a minimal SARIF 2.1.0 log,
// the interchange format code-scanning UIs ingest. Only the fields those
// consumers require are emitted; the ID assigned by AssignIDs rides along as
// a partial fingerprint so re-runs match up findings.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string          `json:"id"`
	ShortDescription sarifMultiText  `json:"shortDescription"`
	FullDescription  *sarifMultiText `json:"fullDescription,omitempty"`
	Help             *sarifMultiText `json:"help,omitempty"`
}

type sarifMultiText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMultiText    `json:"message"`
	Locations           []sarifLocation   `json:"locations,omitempty"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysical `json:"physicalLocation,omitempty"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifLogical struct {
	Name               string `json:"name"`
	FullyQualifiedName string `json:"fullyQualifiedName"`
	Kind               string `json:"kind"`
}

// sarifLevel maps severities onto the SARIF level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "note"
}

// RuleMeta describes one rule for the SARIF driver table: the one-line
// short description list views show, an optional full description of what
// the analysis proves, and optional help text with remediation guidance.
type RuleMeta struct {
	Short string
	Full  string
	Help  string
}

// SARIF renders the collection as an indented SARIF 2.1.0 log. RuleDescs
// (check name -> description) fills the driver's rule table; checks seen in
// the diagnostics but absent from the map still get a rule entry.
func (ds Diagnostics) SARIF(toolName string, ruleDescs map[string]string) ([]byte, error) {
	meta := make(map[string]RuleMeta, len(ruleDescs))
	for name, desc := range ruleDescs {
		meta[name] = RuleMeta{Short: desc}
	}
	return ds.SARIFWithMeta(toolName, meta)
}

// SARIFWithMeta is SARIF with schema-complete rule entries: each rule carries
// its full description and help text when the metadata provides them, so
// code-scanning UIs can show documentation next to a finding.
func (ds Diagnostics) SARIFWithMeta(toolName string, ruleMeta map[string]RuleMeta) ([]byte, error) {
	ds.Sort()
	ruleSet := map[string]RuleMeta{}
	for name, m := range ruleMeta {
		if m.Short == "" {
			m.Short = name
		}
		ruleSet[name] = m
	}
	for _, d := range ds {
		if _, ok := ruleSet[d.Check]; !ok {
			ruleSet[d.Check] = RuleMeta{Short: d.Check}
		}
	}
	ruleNames := make([]string, 0, len(ruleSet))
	for name := range ruleSet {
		ruleNames = append(ruleNames, name)
	}
	sort.Strings(ruleNames)
	rules := make([]sarifRule, len(ruleNames))
	for i, name := range ruleNames {
		m := ruleSet[name]
		rules[i] = sarifRule{ID: name, ShortDescription: sarifMultiText{Text: m.Short}}
		if m.Full != "" {
			rules[i].FullDescription = &sarifMultiText{Text: m.Full}
		}
		if m.Help != "" {
			rules[i].Help = &sarifMultiText{Text: m.Help}
		}
	}

	results := make([]sarifResult, 0, len(ds))
	for _, d := range ds {
		res := sarifResult{
			RuleID:  d.Check,
			Level:   sarifLevel(d.Severity),
			Message: sarifMultiText{Text: d.Message},
		}
		if d.ID != "" {
			res.PartialFingerprints = map[string]string{"hlsLintId": d.ID}
		}
		loc := sarifLocation{}
		if d.File != "" {
			loc.PhysicalLocation = &sarifPhysical{ArtifactLocation: sarifArtifact{URI: d.File}}
		}
		if d.Func != "" {
			fq := d.Func
			if d.Block != "" {
				fq += "." + d.Block
			}
			loc.LogicalLocations = []sarifLogical{{Name: d.Func, FullyQualifiedName: fq, Kind: "function"}}
		}
		if loc.PhysicalLocation != nil || len(loc.LogicalLocations) > 0 {
			res.Locations = []sarifLocation{loc}
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: toolName, Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

package flow

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hls"
	llparser "repro/internal/llvm/parser"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	mlirparser "repro/internal/mlir/parser"
	"repro/internal/polybench"
	"repro/internal/translate"
)

// TestTextualToolPipeline mirrors the CLI composition
//
//	mlir-opt | mlir-translate | hls-adaptor | vitis-sim
//
// in-process: every stage is serialized to text and re-parsed before the
// next stage, and the end result must match the in-memory flow exactly.
func TestTextualToolPipeline(t *testing.T) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("MINI")
	d := Directives{Pipeline: true, II: 1}

	// Reference: the in-memory flow.
	ref, err := AdaptorFlow(k.Build(s), k.Name, d, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}

	// Stage 1: mlir-opt (directive passes) -> text.
	m := k.Build(s)
	if err := mlirPrep(m, k.Name, d, true, "adaptor", Options{}); err != nil {
		t.Fatal(err)
	}
	mlirText := m.Print()

	// Stage 2: parse + lower + translate -> .ll text.
	m2, err := mlirparser.Parse(mlirText)
	if err != nil {
		t.Fatalf("stage 2 parse: %v", err)
	}
	if err := lower.AffineToSCF(m2); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m2); err != nil {
		t.Fatal(err)
	}
	lm, err := translate.Translate(m2, translate.Options{EmitLifetimeMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	llText := lm.Print()

	// Stage 3: hls-adaptor on reparsed IR -> adapted text.
	lm2, err := llparser.Parse(llText)
	if err != nil {
		t.Fatalf("stage 3 parse: %v", err)
	}
	if _, err := core.Adapt(lm2, core.Options{}); err != nil {
		t.Fatal(err)
	}
	adaptedText := lm2.Print()

	// Stage 4: vitis-sim on reparsed adapted IR.
	lm3, err := llparser.Parse(adaptedText)
	if err != nil {
		t.Fatalf("stage 4 parse: %v", err)
	}
	rep, err := hls.Synthesize(lm3, k.Name, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}

	// The textual pipeline skips the in-memory flow's llvm-opt phase, so
	// compare against a freshly-synthesized run of the reference IR rather
	// than cycle counts that cleanup could shift. Here both must at least
	// agree on loop structure and II.
	if len(rep.Loops) != len(ref.Report.Loops) {
		t.Fatalf("loop structure diverged: %d vs %d loops",
			len(rep.Loops), len(ref.Report.Loops))
	}
	for i := range rep.Loops {
		if rep.Loops[i].Trip != ref.Report.Loops[i].Trip {
			t.Errorf("loop %d trip: %d vs %d", i, rep.Loops[i].Trip, ref.Report.Loops[i].Trip)
		}
		if rep.Loops[i].Pipelined != ref.Report.Loops[i].Pipelined ||
			rep.Loops[i].II != ref.Report.Loops[i].II {
			t.Errorf("loop %d pipeline: II=%d/%v vs II=%d/%v", i,
				rep.Loops[i].II, rep.Loops[i].Pipelined,
				ref.Report.Loops[i].II, ref.Report.Loops[i].Pipelined)
		}
	}
}

// TestScaleLargerKernel guards against superlinear blowups: a 32^3 gemm
// (32768 iterations) must compile through both flows quickly and still
// verify functionally in the interpreter.
func TestScaleLargerKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test in short mode")
	}
	const n = 32
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F32())
	_, args := m.AddFunc("big", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("big")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, k *mlir.Value) {
				a := b.AffineLoad(args[0], i, k)
				x := b.AffineLoad(args[1], k, j)
				c := b.AffineLoad(args[2], i, j)
				b.AffineStore(b.AddF(c, b.MulF(a, x)), args[2], i, j)
			})
		})
	})
	b.Return()

	clone := func() *mlir.Module {
		m2, err := mlirparser.Parse(m.Print())
		if err != nil {
			t.Fatal(err)
		}
		return m2
	}
	ares, err := AdaptorFlow(clone(), "big", Directives{Pipeline: true, II: 1}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	cres, err := CxxFlow(clone(), "big", Directives{Pipeline: true, II: 1}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if ares.Report.LatencyCycles != cres.Report.LatencyCycles {
		t.Errorf("flows disagree at scale: %d vs %d",
			ares.Report.LatencyCycles, cres.Report.LatencyCycles)
	}
	// Functional spot check: run the adaptor-flow IR on small random data.
	bufs := make([][]float32, 3)
	for i := range bufs {
		bufs[i] = make([]float32, n*n)
		for j := range bufs[i] {
			bufs[i][j] = float32((j+i)%7) / 7
		}
	}
	want := make([]float32, n*n)
	copy(want, bufs[2])
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for kk := 0; kk < n; kk++ {
				want[i*n+j] = want[i*n+j] + bufs[0][i*n+kk]*bufs[1][kk*n+j]
			}
		}
	}
	mems := memsFrom(bufs)
	if err := Execute(ares.LLVM, "big", mems); err != nil {
		t.Fatal(err)
	}
	got := mems[2].Float32Slice()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scale kernel wrong at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

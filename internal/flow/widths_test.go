package flow

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bitwidth"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/polybench"
)

// moduleWidths runs the bitwidth analysis over every defined function of lm
// and returns the forward-sound value width of each integer-typed
// instruction result.
func moduleWidths(lm *llvm.Module) map[*llvm.Instr]bitwidth.Width {
	widths := map[*llvm.Instr]bitwidth.Width{}
	for _, f := range lm.Funcs {
		if f.IsDecl || len(f.Blocks) == 0 {
			continue
		}
		a := bitwidth.Analyze(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Ty != nil && in.Ty.IsInt() {
					widths[in] = a.ValueWidth(in)
				}
			}
		}
	}
	return widths
}

// observeContainment executes lm's top function with an interpreter probe
// asserting that every dynamic integer result stays inside its statically
// inferred width. This is the soundness gate of the whole width oracle: the
// cost model and the lints are only as trustworthy as this containment.
func observeContainment(t *testing.T, flowName, kernel string, lm *llvm.Module, mems []*interp.Mem) {
	t.Helper()
	widths := moduleWidths(lm)
	violations := 0
	machine := interp.NewMachine(lm)
	machine.Observe = func(in *llvm.Instr, v int64) {
		w, ok := widths[in]
		if !ok || w.Contains(v) {
			return
		}
		violations++
		if violations <= 3 {
			t.Errorf("%s/%s: %%%s@%%%s = %d escapes inferred width %s",
				kernel, flowName, in.Name, in.Parent.Name, v, w)
		}
	}
	args := make([]interp.Arg, len(mems))
	for i := range mems {
		args[i] = interp.PtrArg(mems[i], 0)
	}
	if _, _, err := machine.Run(context.Background(), kernel, args...); err != nil {
		t.Fatalf("%s/%s: execute: %v", kernel, flowName, err)
	}
	if violations > 3 {
		t.Errorf("%s/%s: %d containment violations total", kernel, flowName, violations)
	}
}

// TestBitwidthContainmentAllKernelsBothFlows is the dynamic soundness gate:
// every kernel, both flows, every executed integer instruction checked
// against the width the analysis claims is sufficient.
func TestBitwidthContainmentAllKernelsBothFlows(t *testing.T) {
	tgt := hls.DefaultTarget()
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			ares, err := AdaptorFlow(k.Build(s), k.Name, Directives{}, tgt)
			if err != nil {
				t.Fatalf("adaptor flow: %v", err)
			}
			bufs := k.NewBuffers(s)
			polybench.Init(bufs)
			observeContainment(t, "adaptor", k.Name, ares.LLVM, memsFrom(bufs))

			cres, err := CxxFlow(k.Build(s), k.Name, Directives{}, tgt)
			if err != nil {
				t.Fatalf("cxx flow: %v", err)
			}
			bufs2 := k.NewBuffers(s)
			polybench.Init(bufs2)
			observeContainment(t, "cxx", k.Name, cres.LLVM, memsFrom(bufs2))
		})
	}
}

// widthsGoldenReport renders the 18-kernel width summary as stable text:
// kernel order is the corpus order; within a kernel the renderer's own
// deterministic function/value order applies.
func widthsGoldenReport(t *testing.T) string {
	t.Helper()
	tgt := hls.DefaultTarget()
	var sb strings.Builder
	for _, k := range polybench.All() {
		s, err := k.SizeOf("MINI")
		if err != nil {
			t.Fatal(err)
		}
		lm, err := PrepareLLVM(k.Build(s), k.Name, Directives{Pipeline: true, II: 1})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		fmt.Fprintf(&sb, "== %s\n", k.Name)
		lint.WriteWidthsText(&sb, lint.WidthSummary(lm, tgt))
	}
	return sb.String()
}

// TestWidthsGoldenAllKernels locks the complete 18-kernel width report —
// known bits, fused ranges, demanded-narrowed hardware widths, and the
// declared-vs-inferred area deltas — to a checked-in golden. Any transfer
// change shows up as a diff here and must be a deliberate regeneration
// (UPDATE_WIDTHS_GOLDEN=1), never an accident: the inferred cost model
// prices synthesis off these same widths.
func TestWidthsGoldenAllKernels(t *testing.T) {
	got := widthsGoldenReport(t)
	golden := filepath.Join("testdata", "widths_golden.txt")
	if os.Getenv("UPDATE_WIDTHS_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with UPDATE_WIDTHS_GOLDEN=1 go test -run TestWidthsGoldenAllKernels ./internal/flow/): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("width report drifted from the golden at line %d:\n  got:  %s\n  want: %s\n(regenerate deliberately with UPDATE_WIDTHS_GOLDEN=1)", i+1, g, w)
		}
	}
	t.Fatal("width report drifted from the golden (line lengths differ)")
}

// TestInferredWidthsSaveAreaOnMostKernels asserts the analysis pays its way:
// under the inferred cost model the datapath gets cheaper (never more
// expensive) on the pipelined form of at least 12 of the 18 kernels.
func TestInferredWidthsSaveAreaOnMostKernels(t *testing.T) {
	tgt := hls.DefaultTarget()
	saved := 0
	var savers []string
	for _, k := range polybench.All() {
		s, err := k.SizeOf("MINI")
		if err != nil {
			t.Fatal(err)
		}
		lm, err := PrepareLLVM(k.Build(s), k.Name, Directives{Pipeline: true, II: 1})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		lut, ff, dsp := 0, 0, 0
		for _, fw := range lint.WidthSummary(lm, tgt) {
			lut += fw.SavedLUT
			ff += fw.SavedFF
			dsp += fw.SavedDSP
		}
		// Narrowing must never make the datapath dearer.
		if lut < 0 || ff < 0 || dsp < 0 {
			t.Errorf("%s: inferred model costs more than declared (lut=%d ff=%d dsp=%d)",
				k.Name, lut, ff, dsp)
		}
		if lut+ff > 0 {
			saved++
			savers = append(savers, k.Name)
		}
	}
	if saved < 12 {
		t.Errorf("inferred widths save LUT/FF on only %d of 18 kernels (want >= 12): %v",
			saved, savers)
	}
}

// TestInferredModelSemanticsUnchanged runs the full adaptor flow under the
// inferred cost model with the differential oracle armed: re-pricing the
// datapath must never change what the IR computes, on any kernel.
func TestInferredModelSemanticsUnchanged(t *testing.T) {
	tgt := hls.DefaultTarget()
	tgt.CostModel = hls.CostInferred
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			want := k.NewBuffers(s)
			polybench.Init(want)
			k.Ref(s, want)

			res, err := AdaptorFlowWith(k.Build(s), k.Name, Directives{}, tgt,
				Options{VerifySemantics: true})
			if err != nil {
				t.Fatalf("adaptor flow (inferred model): %v", err)
			}
			bufs := k.NewBuffers(s)
			polybench.Init(bufs)
			mems := memsFrom(bufs)
			if err := Execute(res.LLVM, k.Name, mems); err != nil {
				t.Fatalf("execute: %v", err)
			}
			compare(t, "adaptor-inferred", k.Name, readBack(mems), want)
		})
	}
}

// TestDeclaredModelReportUnchangedByWidths pins the compatibility contract:
// under the declared cost model the width machinery is inert — a target
// carrying a (bogus) width map produces byte-identical synthesis reports and
// the same cache key as a pristine one, on every kernel.
func TestDeclaredModelReportUnchangedByWidths(t *testing.T) {
	plain := hls.DefaultTarget()
	// A non-empty width map that can never match a real instruction.
	carrying := plain.WithInferredWidths(map[*llvm.Instr]int{{}: 7})
	if plain.Canon() != carrying.Canon() {
		t.Fatalf("declared-model cache key changed by a width map: %q vs %q",
			plain.Canon(), carrying.Canon())
	}
	for _, k := range polybench.All() {
		s, err := k.SizeOf("MINI")
		if err != nil {
			t.Fatal(err)
		}
		a, err := AdaptorFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1}, plain)
		if err != nil {
			t.Fatalf("%s plain: %v", k.Name, err)
		}
		b, err := AdaptorFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1}, carrying)
		if err != nil {
			t.Fatalf("%s carrying: %v", k.Name, err)
		}
		if a.Report.String() != b.Report.String() {
			t.Errorf("%s: declared-model report changed by an attached width map:\n--- plain\n%s\n--- carrying\n%s",
				k.Name, a.Report.String(), b.Report.String())
		}
	}
}

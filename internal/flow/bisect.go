package flow

import (
	"encoding/json"

	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/resilience"
)

// PipelineUnit names one unit of a flow pipeline as (stage, pass).
type PipelineUnit struct {
	Stage string
	Pass  string
}

// String renders the unit as "stage/pass" — the form bundles store.
func (u PipelineUnit) String() string { return u.Stage + "/" + u.Pass }

// mlirPassNames mirrors mlirPrep's pipeline construction: the registry and
// the runner must agree, and TestPipelineUnitsMatchObserver holds them
// together.
func mlirPassNames(d Directives, materializeUnroll bool) []string {
	names := []string{"hls-mark-top"}
	if d.Pipeline {
		names = append(names, "hls-pipeline-innermost")
	}
	if d.Unroll > 1 {
		names = append(names, "hls-mark-unroll")
		if materializeUnroll {
			names = append(names, "affine-loop-unroll")
		}
	}
	if d.Partition != nil {
		names = append(names, "hls-array-partition-all")
	}
	if d.Flatten {
		names = append(names, "hls-mark-flatten")
	}
	if d.Dataflow {
		names = append(names, "hls-mark-dataflow")
	}
	return append(names, "canonicalize", "cse")
}

// llvmPassNames is the adaptor flow's LLVM cleanup pipeline.
func llvmPassNames() []string {
	return []string{"simplifycfg", "constfold", "strength-reduce", "cse", "dce"}
}

// PipelineUnits enumerates every pipeline unit the named flow kind runs
// under the given directives, in execution order. The resilience tests
// iterate it to prove a panic injected into any single unit is isolated,
// bisected, and degraded rather than fatal.
func PipelineUnits(kind string, d Directives) []PipelineUnit {
	var units []PipelineUnit
	add := func(stage string, passes ...string) {
		for _, p := range passes {
			units = append(units, PipelineUnit{Stage: stage, Pass: p})
		}
	}
	switch kind {
	case "cxx":
		add("mlir-opt", mlirPassNames(d, false)...)
		add("emit-hlscpp", "emit-hlscpp")
		add("c-frontend", "c-frontend")
		add("synthesis", "synthesis")
	case "raw":
		add("mlir-opt", mlirPassNames(d, true)...)
		add("lowering", "affine-to-scf", "scf-to-cf")
		add("translate", "translate")
	default: // adaptor
		add("mlir-opt", mlirPassNames(d, true)...)
		add("lowering", "affine-to-scf", "scf-to-cf")
		add("translate", "translate")
		add("adaptor", "adaptor")
		add("llvm-opt", llvmPassNames()...)
		add("synthesis", "synthesis")
	}
	return units
}

// Bisect replays a failed flow to localize the first offending pipeline
// unit. The replay runs with panic isolation, verify-each (so a pass that
// silently broke the IR is caught where it ran, not at the downstream
// symptom), and per-unit IR snapshotting; the result is a self-contained
// repro bundle carrying the pristine input, the directive configuration,
// the observed pass list, the pinned failure, and the IR entering the
// offending unit. orig is the original run's failure, kept when the
// replay does not reproduce (a transient failure). base carries the
// caller's hooks — notably FaultHook, so injected faults reproduce — and
// an optional Ctx bounding the replay.
func Bisect(build func() *mlir.Module, kind, label, top string, d Directives,
	tgt hls.Target, base Options, orig error) *resilience.Bundle {

	b := &resilience.Bundle{Label: label, Flow: kind, Top: top}
	if data, err := json.Marshal(d); err == nil {
		b.Directives = data
	}
	if data, err := json.Marshal(tgt); err == nil {
		b.Target = data
	}
	if orig != nil {
		if pf, ok := resilience.AsPassFailure(orig); ok {
			b.Failure = *pf
		} else {
			b.Failure = *resilience.NewFailure(kind+"-flow", kind+"-flow", resilience.KindError, orig)
		}
	}
	if build == nil {
		b.Note = "no module builder available; bundle records the original failure only"
		return b
	}
	input := build()
	if input == nil {
		b.Note = "module builder returned nil; bundle records the original failure only"
		return b
	}
	b.InputMLIR = input.Print()

	ropts := base
	ropts.Isolate = true
	ropts.VerifyEach = true
	ropts.Fallback = nil
	// A miscompile only reproduces under the oracle; arm it (and any
	// recorded deterministic corruption) for the replay.
	if b.Failure.Kind == resilience.KindMiscompile {
		ropts.VerifySemantics = true
	}
	b.Inject = ropts.InjectMiscompile
	snaps := map[string]string{}
	ropts.Observer = func(stage, pass, ir string) {
		key := stage + "/" + pass
		b.Passes = append(b.Passes, key)
		snaps[key] = ir
	}

	var err error
	switch kind {
	case "cxx":
		_, err = CxxFlowWith(input, top, d, tgt, ropts)
	case "raw":
		_, _, err = RawFlowWith(input, top, d, ropts)
	default:
		_, err = AdaptorFlowWith(input, top, d, tgt, ropts)
	}
	if err == nil {
		b.Note = "replay with verify-each did not reproduce the failure; the original run's failure was transient or environmental"
		return b
	}
	pf, ok := resilience.AsPassFailure(err)
	if !ok {
		pf = resilience.NewFailure(kind+"-flow", kind+"-flow", resilience.KindError, err)
	}
	b.Failure = *pf
	b.Reproduced = true
	b.SnapshotIR = snaps[pf.Stage+"/"+pf.Pass]
	return b
}

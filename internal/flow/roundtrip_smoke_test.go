package flow

import (
	"testing"

	"repro/internal/hls"
	lparser "repro/internal/llvm/parser"
	"repro/internal/mlir/parser"
	"repro/internal/polybench"
)

// TestPrintParseRoundTripAtEveryUnit pins the property the incremental
// layer's byte-replay rests on: at every pipeline-unit boundary, printing
// the IR, parsing it back, and printing again yields identical bytes, for
// both flows over every kernel.
func TestPrintParseRoundTripAtEveryUnit(t *testing.T) {
	d := Directives{Pipeline: true, II: 1, Unroll: 2}
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			size, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			check := func(stage, pass, ir string) {
				switch stage {
				case "mlir-opt", "lowering", "translate", "emit-hlscpp":
					m2, err := parser.Parse(ir)
					if err != nil {
						t.Fatalf("%s/%s: mlir reparse: %v", stage, pass, err)
					}
					if got := m2.Print(); got != ir {
						t.Fatalf("%s/%s: mlir round-trip diverges", stage, pass)
					}
				case "adaptor", "llvm-opt", "synthesis":
					lm2, err := lparser.Parse(ir)
					if err != nil {
						t.Fatalf("%s/%s: llvm reparse: %v", stage, pass, err)
					}
					if got := lm2.Print(); got != ir {
						t.Fatalf("%s/%s: llvm round-trip diverges", stage, pass)
					}
				}
			}
			opts := Options{Observer: check}
			if _, err := AdaptorFlowWith(k.Build(size), k.Name, d, hls.DefaultTarget(), opts); err != nil {
				t.Fatalf("adaptor flow: %v", err)
			}
			if _, err := CxxFlowWith(k.Build(size), k.Name, d, hls.DefaultTarget(), opts); err != nil {
				t.Fatalf("cxx flow: %v", err)
			}
		})
	}
}

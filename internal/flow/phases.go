package flow

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phases records per-phase wall time for one flow run. Each Result owns its
// own map, so concurrent runs never write to shared state; aggregation
// across runs goes through Merge, which copies instead of aliasing.
type Phases map[string]time.Duration

// Clone returns an independent copy of p.
func (p Phases) Clone() Phases {
	out := make(Phases, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Merge adds other's timings into p and returns p, allocating a fresh map
// when p is nil. The argument is never mutated or retained, so a cached
// result's Phases can be merged into a running total safely.
func (p Phases) Merge(other Phases) Phases {
	if p == nil {
		p = make(Phases, len(other))
	}
	for k, v := range other {
		p[k] += v
	}
	return p
}

// Total returns the sum of all phase timings.
func (p Phases) Total() time.Duration {
	var t time.Duration
	for _, v := range p {
		t += v
	}
	return t
}

// String renders the phases sorted by name, one per line.
func (p Phases) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%-12s %12s\n", k, p[k])
	}
	return sb.String()
}

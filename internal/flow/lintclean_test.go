package flow

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/polybench"
)

// TestLintCleanAllKernelsBothFlows is the no-false-positives property test
// for the abstract-interpretation-backed lint suite: the full check set over
// every kernel's synthesized-from LLVM module, on both flows, must report
// zero errors, and the checks that went from affine pattern-matching to
// interval/points-to reasoning (gep-bounds, dead-store, uninit-load) plus
// the new absint checks (div-by-zero, shift-width, unreachable-code) must
// stay completely silent — generated kernels are correct by construction,
// so any finding from those checks is a false positive.
func TestLintCleanAllKernelsBothFlows(t *testing.T) {
	mustBeSilent := []string{
		"gep-bounds", "dead-store", "uninit-load",
		"div-by-zero", "shift-width", "unreachable-code",
	}
	tgt := hls.DefaultTarget()
	d := Directives{Pipeline: true, II: 1}
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			for _, run := range []struct {
				flow string
				fn   func() (*Result, error)
			}{
				{"adaptor", func() (*Result, error) { return AdaptorFlow(k.Build(s), k.Name, d, tgt) }},
				{"cxx", func() (*Result, error) { return CxxFlow(k.Build(s), k.Name, d, tgt) }},
			} {
				res, err := run.fn()
				if err != nil {
					t.Fatalf("%s flow: %v", run.flow, err)
				}
				ds := lint.Module(res.LLVM, lint.Options{Target: tgt})
				if ds.HasErrors() {
					t.Errorf("%s flow: lint errors on a correct kernel:\n%s", run.flow, ds.Text())
				}
				for _, check := range mustBeSilent {
					if found := ds.ByCheck(check); len(found) != 0 {
						t.Errorf("%s flow: false positive(s) from %s:\n%s",
							run.flow, check, found.Text())
					}
				}
			}
		})
	}
}

package flow

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/polybench"
)

// lintGoldenReport renders the full-check diagnostic set of every kernel's
// prepared module as stable text: kernel order is the corpus order, findings
// are in diag sort order, and IDs are omitted so the golden tracks analysis
// behavior rather than fingerprint hashes.
func lintGoldenReport(t *testing.T) string {
	t.Helper()
	tgt := hls.DefaultTarget()
	var sb strings.Builder
	for _, k := range polybench.All() {
		s, err := k.SizeOf("MINI")
		if err != nil {
			t.Fatal(err)
		}
		lm, err := PrepareLLVM(k.Build(s), k.Name, Directives{Pipeline: true, II: 1})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		ds := lint.Module(lm, lint.Options{Target: tgt})
		fmt.Fprintf(&sb, "== %s (%d finding(s))\n", k.Name, len(ds))
		for _, d := range ds {
			sb.WriteString(lintGoldenLine(d))
		}
	}
	return sb.String()
}

func lintGoldenLine(d diag.Diagnostic) string {
	line := fmt.Sprintf("%s[%s] @%s", d.Severity, d.Check, d.Func)
	if d.Block != "" {
		line += " %" + d.Block
	}
	if d.Instr != "" {
		line += " %" + d.Instr
	}
	return line + ": " + d.Message + "\n"
}

// TestLintGoldenAllKernels locks the complete 18-kernel diagnostic set to a
// checked-in golden. Any change to an analysis — a new dependence verdict, a
// reworded message, a lost or gained finding — shows up as a diff here and
// must be a deliberate regeneration (UPDATE_LINT_GOLDEN=1), never an
// accident: the DSE pre-check and the directive lints consume these same
// verdicts, so silent drift is a soundness hazard.
func TestLintGoldenAllKernels(t *testing.T) {
	got := lintGoldenReport(t)
	golden := filepath.Join("testdata", "lint_golden.txt")
	if os.Getenv("UPDATE_LINT_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with UPDATE_LINT_GOLDEN=1 go test -run TestLintGoldenAllKernels ./internal/flow/): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("lint diagnostics drifted from the golden at line %d:\n  got:  %s\n  want: %s\n(regenerate deliberately with UPDATE_LINT_GOLDEN=1)", i+1, g, w)
		}
	}
	t.Fatal("lint diagnostics drifted from the golden (line lengths differ)")
}

package flow

import (
	"fmt"
	"sync"

	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/oracle"
	"repro/internal/resilience"
)

// semOracle is the per-run differential-execution state behind
// Options.VerifySemantics: one reference execution captured from the
// pristine module, checked against the evolving IR after every pipeline
// unit. A divergence comes back as a typed *resilience.PassFailure with
// KindMiscompile naming the unit that introduced it — the semantic twin of
// Bisect's crash localization — so it flows into the quarantine /
// repro-bundle / -replay machinery unchanged.
type semOracle struct {
	h *oracle.Harness
	// inject, when "stage/pass", deterministically corrupts the IR
	// immediately after that unit completes and before its oracle check —
	// the fixture that proves detection, localization, and replay.
	inject string

	// Lazy capture state (incremental runs): pristine holds the module
	// text the reference execution derives from, parsed and executed only
	// when a live unit actually asks for a check — a fully replayed run
	// never pays for the reference execution.
	pristine string
	top      string
	ulp      uint64
	once     sync.Once
	initErr  error
}

// newSemOracle captures the reference execution. The module must still be
// pristine; flows construct it before the first pass runs.
func newSemOracle(m *mlir.Module, top string, opts Options) (*semOracle, error) {
	h, err := oracle.New(m, top)
	if err != nil {
		return nil, resilience.NewFailure("oracle", "reference", resilience.KindError, err)
	}
	if opts.SemanticULP > 0 {
		h.MaxULP = opts.SemanticULP
	}
	return &semOracle{h: h, inject: opts.InjectMiscompile}, nil
}

// newLazySemOracle defers the reference execution until the first live
// unit check. pristine is the module text before any pass ran — the same
// snapshot the incremental cursor starts from.
func newLazySemOracle(pristine, top string, opts Options) *semOracle {
	return &semOracle{
		inject:   opts.InjectMiscompile,
		pristine: pristine,
		top:      top,
		ulp:      opts.SemanticULP,
	}
}

// harness returns the reference harness, capturing it on first use for a
// lazily constructed oracle. Failures keep the eager path's attribution
// (oracle/reference, KindError): an uncapturable reference is an oracle
// limitation, never a miscompile.
func (s *semOracle) harness() (*oracle.Harness, error) {
	s.once.Do(func() {
		if s.h != nil { // eagerly constructed
			return
		}
		m, err := parser.Parse(s.pristine)
		if err != nil {
			s.initErr = err
			return
		}
		h, err := oracle.New(m, s.top)
		if err != nil {
			s.initErr = err
			return
		}
		if s.ulp > 0 {
			h.MaxULP = s.ulp
		}
		s.h = h
	})
	if s.initErr != nil {
		return nil, resilience.NewFailure("oracle", "reference", resilience.KindError, s.initErr)
	}
	return s.h, nil
}

// failure types an oracle check error: wrong answers (divergence, trap,
// fuel exhaustion) are KindMiscompile; an artifact the oracle cannot
// execute is an oracle limitation, reported as KindError so it is never
// mistaken for a verified miscompile.
func (s *semOracle) failure(stage, pass string, err error) error {
	kind := resilience.KindError
	if oracle.IsMiscompile(err) {
		kind = resilience.KindMiscompile
	}
	return resilience.NewFailure(stage, pass, kind, err)
}

// afterMLIR checks the module after an MLIR-level unit (nil receiver = the
// oracle is off).
func (s *semOracle) afterMLIR(stage, pass string, m *mlir.Module) error {
	if s == nil {
		return nil
	}
	if s.inject == stage+"/"+pass {
		corruptMLIR(m)
	}
	h, err := s.harness()
	if err != nil {
		return err
	}
	if err := h.CheckMLIR(m); err != nil {
		return s.failure(stage, pass, err)
	}
	return nil
}

// afterLLVM checks the module after an LLVM-level unit.
func (s *semOracle) afterLLVM(stage, pass string, lm *llvm.Module) error {
	if s == nil {
		return nil
	}
	if s.inject == stage+"/"+pass {
		corruptLLVM(lm)
	}
	h, err := s.harness()
	if err != nil {
		return err
	}
	if err := h.CheckLLVM(lm); err != nil {
		return s.failure(stage, pass, err)
	}
	return nil
}

// corruptMLIR applies a deterministic wrong-rewrite to the module: the
// first arith.addf becomes arith.subf (falling back to mulf→addf), a
// change that keeps the IR verifiable while changing what it computes.
func corruptMLIR(m *mlir.Module) {
	var addf, mulf *mlir.Op
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		switch o.Name {
		case mlir.OpAddF:
			if addf == nil {
				addf = o
			}
		case mlir.OpMulF:
			if mulf == nil {
				mulf = o
			}
		}
		return true
	})
	if addf != nil {
		addf.Name = mlir.OpSubF
	} else if mulf != nil {
		mulf.Name = mlir.OpAddF
	}
}

// corruptLLVM is corruptMLIR at the LLVM level: first fadd→fsub, falling
// back to fmul→fadd.
func corruptLLVM(lm *llvm.Module) {
	var fadd, fmul *llvm.Instr
	for _, f := range lm.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case llvm.OpFAdd:
					if fadd == nil {
						fadd = in
					}
				case llvm.OpFMul:
					if fmul == nil {
						fmul = in
					}
				}
			}
		}
	}
	if fadd != nil {
		fadd.Op = llvm.OpFSub
	} else if fmul != nil {
		fmul.Op = llvm.OpFAdd
	}
}

// conformanceGate is the adaptor flow's final static stage: the strict
// HLS-readable-IR subset check. Any post-adaptor construct outside the old
// Vitis LLVM's accepted subset is an adaptor bug, reported as a located
// diagnostic; the gate converts a non-empty report into a typed verify
// failure attributed to the "conformance" stage. It is a boundary-style
// check (like boundaryCheck), not a registered pipeline unit, so the
// PipelineUnits registry stays pinned.
func conformanceGate(opts Options, lm *llvm.Module) error {
	ds := hls.Conformance(lm)
	if len(ds) == 0 {
		return nil
	}
	err := fmt.Errorf("%d HLS conformance violation(s); first: %s", len(ds), ds[0].String())
	if opts.Isolate {
		return resilience.NewFailure("conformance", "conformance", resilience.KindVerify, err)
	}
	return fmt.Errorf("conformance gate: %w", err)
}

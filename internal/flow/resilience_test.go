package flow

import (
	"context"
	"strings"
	"testing"

	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

// richDirectives exercises every optional MLIR directive pass except
// dataflow (which gemm's dependence structure refuses).
func richDirectives() Directives {
	return Directives{
		Pipeline: true, II: 1, Unroll: 2, Flatten: true,
		Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0},
	}
}

func gemmBuilder(t *testing.T) func() *mlir.Module {
	t.Helper()
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	return func() *mlir.Module { return k.Build(s) }
}

// TestPipelineUnitsMatchObserver pins the registry to the runner: the
// units the Observer sees during a real run are exactly PipelineUnits, in
// order, for every flow kind.
func TestPipelineUnitsMatchObserver(t *testing.T) {
	build := gemmBuilder(t)
	d := richDirectives()
	tgt := hls.DefaultTarget()
	for _, kind := range []string{"adaptor", "cxx", "raw"} {
		var seen []string
		opts := Options{Observer: func(stage, pass, ir string) {
			seen = append(seen, stage+"/"+pass)
			if ir == "" {
				t.Errorf("%s: empty snapshot entering %s/%s", kind, stage, pass)
			}
		}}
		var err error
		switch kind {
		case "adaptor":
			_, err = AdaptorFlowWith(build(), "gemm", d, tgt, opts)
		case "cxx":
			_, err = CxxFlowWith(build(), "gemm", d, tgt, opts)
		case "raw":
			_, _, err = RawFlowWith(build(), "gemm", d, opts)
		}
		if err != nil {
			t.Fatalf("%s flow: %v", kind, err)
		}
		want := PipelineUnits(kind, d)
		if len(seen) != len(want) {
			t.Fatalf("%s: observer saw %d units, registry lists %d:\nseen: %v\nwant: %v",
				kind, len(seen), len(want), seen, want)
		}
		for i := range want {
			if seen[i] != want[i].String() {
				t.Errorf("%s unit %d: observer %q vs registry %q", kind, i, seen[i], want[i])
			}
		}
	}
}

// TestIsolateConvertsPanic: with Isolate, an injected panic in any unit
// surfaces as a typed failure naming that unit.
func TestIsolateConvertsPanic(t *testing.T) {
	build := gemmBuilder(t)
	opts := Options{
		Isolate: true,
		FaultHook: func(flow, stage, pass string) {
			if flow == "adaptor" && pass == "strength-reduce" {
				panic("injected: slice bounds out of range")
			}
		},
	}
	_, err := AdaptorFlowWith(build(), "gemm", Directives{}, hls.DefaultTarget(), opts)
	f, ok := resilience.AsPassFailure(err)
	if !ok {
		t.Fatalf("want typed failure, got %v", err)
	}
	if f.Stage != "llvm-opt" || f.Pass != "strength-reduce" || f.Kind != resilience.KindPanic {
		t.Errorf("wrong attribution: %+v", f)
	}
}

// TestFallbackDegradesToCxx: a deterministic direct-path failure degrades
// to the C++ flow; the degraded report is identical to a plain C++ run and
// the direct-path failure rides along.
func TestFallbackDegradesToCxx(t *testing.T) {
	build := gemmBuilder(t)
	d := Directives{Pipeline: true, II: 1}
	tgt := hls.DefaultTarget()
	opts := Options{
		Isolate:  true,
		Fallback: build,
		FaultHook: func(flow, stage, pass string) {
			if flow == "adaptor" && pass == "adaptor" {
				panic("injected adaptor crash")
			}
		},
	}
	res, err := AdaptorFlowWith(build(), "gemm", d, tgt, opts)
	if err != nil {
		t.Fatalf("fallback should absorb the failure, got %v", err)
	}
	if !res.Degraded || res.Flow != "cxx-fallback" {
		t.Fatalf("want degraded cxx-fallback result, got %+v", res)
	}
	if res.Failure == nil || res.Failure.Pass != "adaptor" || res.Failure.Kind != resilience.KindPanic {
		t.Errorf("direct-path failure not attached: %+v", res.Failure)
	}
	ref, err := CxxFlow(build(), "gemm", d, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.LatencyCycles != ref.Report.LatencyCycles || res.Report.LUT != ref.Report.LUT {
		t.Errorf("degraded report differs from the C++ baseline: %+v vs %+v", res.Report, ref.Report)
	}
}

// TestNoFallbackOnTransientFailure: a dead context must not trigger
// degradation — retries own transient failures.
func TestNoFallbackOnTransientFailure(t *testing.T) {
	build := gemmBuilder(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Isolate: true, Ctx: ctx, Fallback: build}
	res, err := AdaptorFlowWith(build(), "gemm", Directives{}, hls.DefaultTarget(), opts)
	if err == nil || res != nil {
		t.Fatalf("canceled flow must error, got res=%v err=%v", res, err)
	}
	if !resilience.Transient(err) {
		t.Errorf("cancellation should classify transient: %v", err)
	}
}

// TestBisectPinsInjectedPass: the bisection replay reproduces an injected
// panic, pins the offending unit by name, and captures the IR entering it.
func TestBisectPinsInjectedPass(t *testing.T) {
	build := gemmBuilder(t)
	d := richDirectives()
	tgt := hls.DefaultTarget()
	hook := func(flow, stage, pass string) {
		if flow == "adaptor" && pass == "affine-loop-unroll" {
			panic("injected unroll crash")
		}
	}
	_, orig := AdaptorFlowWith(build(), "gemm", d, tgt, Options{Isolate: true, FaultHook: hook})
	if orig == nil {
		t.Fatal("fault did not fire")
	}
	bundle := Bisect(build, "adaptor", "gemm adaptor", "gemm", d, tgt, Options{FaultHook: hook}, orig)
	if !bundle.Reproduced {
		t.Fatalf("deterministic fault must reproduce: %+v", bundle)
	}
	if bundle.Failure.Pass != "affine-loop-unroll" || bundle.Failure.Stage != "mlir-opt" {
		t.Errorf("bisection pinned %s/%s, want mlir-opt/affine-loop-unroll",
			bundle.Failure.Stage, bundle.Failure.Pass)
	}
	if bundle.SnapshotIR == "" || !strings.Contains(bundle.SnapshotIR, "affine.for") {
		t.Errorf("missing IR snapshot entering the offending pass")
	}
	if bundle.InputMLIR == "" || len(bundle.Passes) == 0 {
		t.Errorf("bundle not self-contained: input=%d bytes, %d passes",
			len(bundle.InputMLIR), len(bundle.Passes))
	}
	// The observed prefix must match the registry up to the failing unit.
	if bundle.Passes[len(bundle.Passes)-1] != "mlir-opt/affine-loop-unroll" {
		t.Errorf("last observed unit %q is not the failing one", bundle.Passes[len(bundle.Passes)-1])
	}
}

// TestBisectKeepsOriginalFailureWhenNotReproduced: without the fault hook
// the replay succeeds, and the bundle keeps the original failure with a
// note instead of claiming reproduction.
func TestBisectKeepsOriginalFailureWhenNotReproduced(t *testing.T) {
	build := gemmBuilder(t)
	orig := resilience.NewFailure("llvm-opt", "cse", resilience.KindTimeout,
		context.DeadlineExceeded)
	bundle := Bisect(build, "adaptor", "gemm adaptor", "gemm", Directives{},
		hls.DefaultTarget(), Options{}, orig)
	if bundle.Reproduced {
		t.Fatal("clean replay must not claim reproduction")
	}
	if bundle.Failure.Pass != "cse" || bundle.Failure.Kind != resilience.KindTimeout {
		t.Errorf("original failure lost: %+v", bundle.Failure)
	}
	if bundle.Note == "" {
		t.Error("non-reproduction should be explained in Note")
	}
}

package flow

import (
	"strings"
	"testing"

	"repro/internal/hls"
	"repro/internal/polybench"
)

// TestDataflowSpeedsIndependentTasks: mvt's two top-level loop nests write
// disjoint vectors (x1, x2) and only share read-only A, so the dataflow
// directive must overlap them in both flows.
func TestDataflowSpeedsIndependentTasks(t *testing.T) {
	k := polybench.Get("mvt")
	s, _ := k.SizeOf("SMALL")
	tgt := hls.DefaultTarget()

	seqA, err := AdaptorFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	dfA, err := AdaptorFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1, Dataflow: true}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if dfA.Report.LatencyCycles >= seqA.Report.LatencyCycles {
		t.Errorf("adaptor flow: dataflow should overlap mvt's tasks: %d -> %d",
			seqA.Report.LatencyCycles, dfA.Report.LatencyCycles)
	}

	seqC, err := CxxFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	dfC, err := CxxFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1, Dataflow: true}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if dfC.Report.LatencyCycles >= seqC.Report.LatencyCycles {
		t.Errorf("cxx flow: dataflow should overlap mvt's tasks: %d -> %d",
			seqC.Report.LatencyCycles, dfC.Report.LatencyCycles)
	}
	if !strings.Contains(dfC.CSource, "#pragma HLS dataflow") {
		t.Error("dataflow pragma missing from emitted C++")
	}
	// Both flows should agree on the overlapped latency.
	if dfA.Report.LatencyCycles != dfC.Report.LatencyCycles {
		t.Errorf("flows disagree under dataflow: %d vs %d",
			dfA.Report.LatencyCycles, dfC.Report.LatencyCycles)
	}
}

// TestDataflowRefusedWhenDependent: atax's loops communicate through tmp and
// y, so the directive must be a no-op (sequential latency preserved).
func TestDataflowRefusedWhenDependent(t *testing.T) {
	k := polybench.Get("atax")
	s, _ := k.SizeOf("MINI")
	tgt := hls.DefaultTarget()
	seq, err := AdaptorFlow(k.Build(s), k.Name, Directives{}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	df, err := AdaptorFlow(k.Build(s), k.Name, Directives{Dataflow: true}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if df.Report.LatencyCycles != seq.Report.LatencyCycles {
		t.Errorf("dependent tasks must stay sequential: %d vs %d",
			seq.Report.LatencyCycles, df.Report.LatencyCycles)
	}
}

// TestDataflowFunctionalCorrectness: the directive changes scheduling only;
// results must stay bit-exact.
func TestDataflowFunctionalCorrectness(t *testing.T) {
	k := polybench.Get("mvt")
	s, _ := k.SizeOf("MINI")
	want := k.NewBuffers(s)
	polybench.Init(want)
	k.Ref(s, want)

	res, err := AdaptorFlow(k.Build(s), k.Name, Directives{Dataflow: true}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	bufs := k.NewBuffers(s)
	polybench.Init(bufs)
	mems := memsFrom(bufs)
	if err := Execute(res.LLVM, k.Name, mems); err != nil {
		t.Fatal(err)
	}
	compare(t, "adaptor-dataflow", k.Name, readBack(mems), want)
}

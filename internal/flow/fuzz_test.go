package flow_test

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/kgen"
	"repro/internal/mlir"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

// fuzzKernel is one entry in the differential-fuzz kernel pool.
type fuzzKernel struct {
	name  string
	build func() *mlir.Module
}

// fuzzKernelPool is the polybench suite (MINI size) followed by the
// checked-in kgen corpus: real benchmark shapes plus generator-minimal
// affine nests, so the fuzzer's kernel axis reaches both families. The
// pool order is append-only (polybench first, corpus seeds in ascending
// order) so existing corpus entries keep selecting the same kernel.
func fuzzKernelPool(f *testing.F) []fuzzKernel {
	f.Helper()
	var pool []fuzzKernel
	for _, k := range polybench.All() {
		k := k
		s, err := k.SizeOf("MINI")
		if err != nil {
			f.Fatal(err)
		}
		pool = append(pool, fuzzKernel{name: k.Name, build: func() *mlir.Module { return k.Build(s) }})
	}
	for _, k := range kgen.CorpusKernels() {
		k := k
		pool = append(pool, fuzzKernel{name: k.Name, build: k.Build})
	}
	return pool
}

// FuzzDifferentialFlows is the mutation-based differential target: it
// perturbs the kernel choice and the directive configuration and runs both
// full flows under the semantic oracle. Every pipeline stage of both
// flows must compute what the pristine kernel computes — any divergence
// the fuzzer can reach is a miscompile, reported with the offending unit's
// name. Directive values are clamped into the valid space (the fuzzer
// explores configurations, it does not test flag validation).
func FuzzDifferentialFlows(f *testing.F) {
	f.Add(uint8(0), false, uint8(1), uint8(1), false, uint8(0), uint8(1))
	f.Add(uint8(7), true, uint8(1), uint8(2), true, uint8(1), uint8(2))
	f.Add(uint8(13), true, uint8(2), uint8(4), false, uint8(2), uint8(4))
	kernels := fuzzKernelPool(f)
	// Seed the kgen half of the pool explicitly: one entry per corpus
	// kernel, each under a different directive shape.
	nPoly := len(polybench.All())
	for i := nPoly; i < len(kernels); i++ {
		f.Add(uint8(i), i%2 == 0, uint8(i%4), uint8(i%3), i%3 == 0, uint8(i%3), uint8(i%4))
	}
	f.Fuzz(func(t *testing.T, ki uint8, pipe bool, ii, unroll uint8, flatten bool, partKind, partFactor uint8) {
		k := kernels[int(ki)%len(kernels)]
		d := flow.Directives{
			Pipeline: pipe,
			II:       1 + int(ii)%4,
			Unroll:   1 + int(unroll)%4,
			Flatten:  flatten,
		}
		switch partKind % 3 {
		case 1:
			d.Partition = &passes.PartitionSpec{Kind: "cyclic", Factor: 1 + int(partFactor)%4, Dim: 0}
		case 2:
			d.Partition = &passes.PartitionSpec{Kind: "block", Factor: 1 + int(partFactor)%4, Dim: 0}
		}
		tgt := hls.DefaultTarget()
		opts := flow.Options{VerifySemantics: true}
		for _, kind := range []string{"adaptor", "cxx"} {
			var ferr error
			if kind == "adaptor" {
				_, ferr = flow.AdaptorFlowWith(k.build(), k.name, d, tgt, opts)
			} else {
				_, ferr = flow.CxxFlowWith(k.build(), k.name, d, tgt, opts)
			}
			if ferr == nil {
				continue
			}
			// A configuration a flow legitimately rejects is not a finding;
			// a localized miscompile is THE finding.
			if pf, ok := resilience.AsPassFailure(ferr); ok && pf.Kind == resilience.KindMiscompile {
				t.Fatalf("%s flow miscompiles %s under %+v at %s/%s: %v",
					kind, k.name, d, pf.Stage, pf.Pass, ferr)
			}
			t.Logf("%s flow rejected %s under %+v: %v", kind, k.name, d, ferr)
		}
	})
}

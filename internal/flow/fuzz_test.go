package flow

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

// FuzzDifferentialFlows is the mutation-based differential target: it
// perturbs the kernel choice and the directive configuration and runs both
// full flows under the semantic oracle. Every pipeline stage of both
// flows must compute what the pristine kernel computes — any divergence
// the fuzzer can reach is a miscompile, reported with the offending unit's
// name. Directive values are clamped into the valid space (the fuzzer
// explores configurations, it does not test flag validation).
func FuzzDifferentialFlows(f *testing.F) {
	f.Add(uint8(0), false, uint8(1), uint8(1), false, uint8(0), uint8(1))
	f.Add(uint8(7), true, uint8(1), uint8(2), true, uint8(1), uint8(2))
	f.Add(uint8(13), true, uint8(2), uint8(4), false, uint8(2), uint8(4))
	kernels := polybench.All()
	f.Fuzz(func(t *testing.T, ki uint8, pipe bool, ii, unroll uint8, flatten bool, partKind, partFactor uint8) {
		k := kernels[int(ki)%len(kernels)]
		s, err := k.SizeOf("MINI")
		if err != nil {
			t.Fatal(err)
		}
		d := Directives{
			Pipeline: pipe,
			II:       1 + int(ii)%4,
			Unroll:   1 + int(unroll)%4,
			Flatten:  flatten,
		}
		switch partKind % 3 {
		case 1:
			d.Partition = &passes.PartitionSpec{Kind: "cyclic", Factor: 1 + int(partFactor)%4, Dim: 0}
		case 2:
			d.Partition = &passes.PartitionSpec{Kind: "block", Factor: 1 + int(partFactor)%4, Dim: 0}
		}
		tgt := hls.DefaultTarget()
		opts := Options{VerifySemantics: true}
		for _, kind := range []string{"adaptor", "cxx"} {
			var ferr error
			if kind == "adaptor" {
				_, ferr = AdaptorFlowWith(k.Build(s), k.Name, d, tgt, opts)
			} else {
				_, ferr = CxxFlowWith(k.Build(s), k.Name, d, tgt, opts)
			}
			if ferr == nil {
				continue
			}
			// A configuration a flow legitimately rejects is not a finding;
			// a localized miscompile is THE finding.
			if pf, ok := resilience.AsPassFailure(ferr); ok && pf.Kind == resilience.KindMiscompile {
				t.Fatalf("%s flow miscompiles %s under %+v at %s/%s: %v",
					kind, k.Name, d, pf.Stage, pf.Pass, ferr)
			}
			t.Logf("%s flow rejected %s under %+v: %v", kind, k.Name, d, ferr)
		}
	})
}

// Package flow wires the complete compilation pipelines the paper compares:
//
//   - AdaptorFlow (the paper's contribution): MLIR passes → affine→scf→cf
//     lowering → translation to LLVM IR → the HLS adaptor → LLVM-level
//     cleanup → HLS synthesis.
//   - CxxFlow (the baseline): MLIR passes → HLS C++ emission → C frontend
//     (Vitis Clang stand-in) → HLS synthesis.
//   - RawFlow: translation without the adaptor, to demonstrate the gate
//     failure the adaptor exists to fix.
package flow

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cfront"
	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/hls"
	"repro/internal/incr"
	"repro/internal/lint"
	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	lpasses "repro/internal/llvm/passes"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/mlir/passes"
	"repro/internal/resilience"
	"repro/internal/translate"
)

// Options tunes how a flow runs beyond the HLS directives.
type Options struct {
	// VerifyEach re-checks the IR invariants after every pass of both pass
	// managers (verifier plus the lint invariant subset), and additionally
	// at each inter-layer boundary (post-translate, post-adaptor, post-C-
	// frontend). A violation fails the flow naming the offending pass or
	// boundary — the -verify-each flag of the cmd tools.
	VerifyEach bool

	// Ctx, when non-nil, is checked cooperatively at every pipeline-unit
	// boundary (each pass of both pass managers, plus every inter-stage
	// boundary): once done, the flow stops at the next boundary with a
	// typed timeout/cancellation failure instead of running to completion
	// in a leaked goroutine.
	Ctx context.Context

	// Isolate runs every pipeline unit inside a recovery boundary: a panic
	// anywhere in a pass, the translation, the adaptor, or synthesis comes
	// back as a *resilience.PassFailure (stage, pass, kind, stack) instead
	// of killing the process.
	Isolate bool

	// FaultHook, when non-nil, is called inside each unit's recovery
	// boundary just before the unit body with (flow, stage, pass) — the
	// deterministic fault-injection point the resilience tests use (a
	// panicking hook is attributed to the unit it targeted).
	FaultHook func(flow, stage, pass string)

	// Observer, when non-nil, receives the IR entering every pipeline unit
	// as (stage, pass, ir) — MLIR text through the MLIR stages, LLVM text
	// after translation, C source entering the C frontend. The bisection
	// replay records per-unit snapshots through it.
	Observer func(stage, pass, ir string)

	// Fallback enables graceful degradation for AdaptorFlowWith: when the
	// direct-IR path fails, the kernel is rebuilt through this function
	// and rerun through the C++ flow, and the result comes back with
	// Degraded set and the direct-path failure attached instead of an
	// error. Flows mutate their input, so Fallback must build a fresh
	// module (engine jobs reuse Job.Build).
	Fallback func() *mlir.Module

	// VerifySemantics runs the differential-execution oracle: a reference
	// execution of the pristine kernel is captured before the first pass,
	// and the evolving IR is re-executed and compared against it after
	// every pipeline unit (integers bitwise, floats within a ULP
	// tolerance). The first divergence fails the flow with a typed
	// KindMiscompile failure naming the unit that introduced it — the
	// -verify-semantics flag of the cmd tools.
	VerifySemantics bool

	// SemanticULP overrides the oracle's float tolerance in units in the
	// last place at the element width; 0 uses oracle.DefaultMaxULP.
	SemanticULP uint64

	// InjectMiscompile, when set to "stage/pass", deterministically
	// corrupts the IR immediately after the named unit completes (first
	// float add becomes a subtract), so the unit's own oracle check — and
	// only it — must catch the wrong answer. Recorded in repro bundles so
	// -replay re-arms the same corruption. Requires VerifySemantics to
	// have any observable effect beyond the corruption itself.
	InjectMiscompile string

	// Incremental enables per-unit memoization: every pipeline unit is
	// keyed by SHA-256 of the flow configuration, the unit's name and
	// parameters, and its exact input-IR bytes, and a hit replays the
	// stored output bytes instead of executing the unit — so a directive
	// change re-runs the flow only from the first affected unit, and a
	// repeated design point replays its whole prefix. Runs with an
	// Observer, FaultHook, or InjectMiscompile execute live regardless:
	// those hooks observe or perturb live units. RawFlow is never
	// memoized (its product is the violation list, not pipeline IR).
	// The -incremental flag of the cmd tools.
	Incremental bool

	// IncrStore is the record store consulted under Incremental. Nil uses
	// incr.Default, the process-wide in-memory store; point it at an
	// incr.DiskStore for cross-process warm starts. Engines share one
	// store across all jobs of a DSE run.
	IncrStore incr.Store

	// IncrSeed, when non-empty under Incremental, identifies the input
	// module without printing it: the memo cursor starts from the seed's
	// digest instead of the module text, saving the pristine Print on
	// every warm run. The caller must guarantee the seed uniquely
	// determines the module bytes — the engine derives it from the job's
	// kernel and size, resting on the same build determinism its
	// whole-flow cache already assumes. Seeded and unseeded runs key
	// disjoint record chains.
	IncrSeed string

	// ParallelFuncs fans function-local passes across a module's
	// functions concurrently in both pass managers. Off by default; the
	// kernel suite is single-function, so this pays off only for
	// multi-function modules.
	ParallelFuncs bool

	// sem is the constructed per-run oracle, populated by the flow entry
	// points when VerifySemantics is set and shared across the run's
	// stages (including the degraded C++ rerun, whose kernel has the same
	// reference semantics).
	sem *semOracle

	// memo is the per-run incremental cursor, populated by the flow entry
	// points when memoEnabled; nil disables memoization for the run.
	memo *memoRun
}

// Directives selects the HLS optimization configuration applied before the
// flows diverge.
type Directives struct {
	// Pipeline marks innermost loops for pipelining with the target II.
	Pipeline bool
	II       int
	// Unroll sets an innermost unroll factor (1 = off). The adaptor flow
	// materializes it at the MLIR level; the C++ flow carries it as a
	// pragma consumed by the backend — exactly the asymmetry between
	// ScaleHLS-style tools and Vitis.
	Unroll int
	// Partition applies an array partition to every memref argument.
	Partition *passes.PartitionSpec
	// Flatten marks perfect nest levels for loop flattening so the inner
	// pipeline keeps issuing across outer iterations.
	Flatten bool
	// Dataflow requests task-level parallelism across independent
	// top-level loops (#pragma HLS dataflow).
	Dataflow bool
}

// Result is the outcome of one flow run.
type Result struct {
	Flow    string
	Report  *hls.Report
	Adaptor *core.Report // adaptor flow only
	LLVM    *llvm.Module
	CSource string // C++ flow only

	// Phases records per-phase wall time. Each Result owns its map;
	// cross-run aggregation must go through Phases.Merge.
	Phases Phases
	Total  time.Duration

	// Degraded marks a result produced by the C++ fallback path after the
	// direct-IR flow failed; Failure carries that direct-path failure.
	Degraded bool
	Failure  *resilience.PassFailure

	// UnitHits and UnitMisses count pipeline units replayed from the
	// incremental store vs executed live (both zero when Incremental is
	// off or suppressed by an observation hook).
	UnitHits, UnitMisses int
}

// mlirPrep runs the shared MLIR-level preparation. flowName tags the
// resilience hooks so fault injection can target one flow's run of the
// shared MLIR stage.
func mlirPrep(m *mlir.Module, top string, d Directives, materializeUnroll bool, flowName string, opts Options) error {
	pm := passes.NewPassManager()
	pm.Ctx = opts.Ctx
	pm.Isolate = opts.Isolate
	pm.Parallel = opts.ParallelFuncs
	if opts.memo != nil {
		mat := mlirMaterializer(m)
		pm.Wrap = func(passName, params string, run func() error) (bool, error) {
			return opts.memo.do(step{
				stage: "mlir-opt", pass: passName, params: params,
				materialize: mat, print: m.Print,
			}, run)
		}
	}
	if opts.Observer != nil || opts.FaultHook != nil {
		pm.BeforePass = func(name string, mm *mlir.Module) {
			if opts.Observer != nil {
				opts.Observer("mlir-opt", name, mm.Print())
			}
			if opts.FaultHook != nil {
				opts.FaultHook(flowName, "mlir-opt", name)
			}
		}
	}
	if opts.VerifyEach || opts.sem != nil {
		pm.AfterPass = func(name string, mm *mlir.Module) error {
			if opts.VerifyEach {
				if err := lint.MLIRInvariants(mm); err != nil {
					return err
				}
			}
			return opts.sem.afterMLIR("mlir-opt", name, mm)
		}
	}
	pm.Add(passes.MarkTop(top))
	if d.Pipeline {
		ii := d.II
		if ii <= 0 {
			ii = 1
		}
		pm.Add(passes.PipelineInnermost(ii))
	}
	if d.Unroll > 1 {
		pm.Add(passes.MarkUnroll(d.Unroll))
		if materializeUnroll {
			pm.Add(passes.LoopUnroll(0, true))
		}
	}
	if d.Partition != nil {
		pm.Add(passes.PartitionAllArgs(*d.Partition))
	}
	if d.Flatten {
		pm.Add(passes.MarkFlatten())
	}
	if d.Dataflow {
		pm.Add(passes.MarkDataflow(top))
	}
	pm.Add(passes.Canonicalize(), passes.CSE())
	return pm.Run(m)
}

// boundaryCheck runs the inter-layer invariant check under VerifyEach: the
// module verifier plus the lint invariant subset, attributed to the named
// flow boundary (typed under Isolate so bisection can pin it).
func boundaryCheck(opts Options, where string, lm *llvm.Module) error {
	if !opts.VerifyEach {
		return nil
	}
	if err := lm.Verify(); err != nil {
		if opts.Isolate {
			return resilience.NewFailure(where, where, resilience.KindVerify, err)
		}
		return fmt.Errorf("verification after %s: %w", where, err)
	}
	if err := lint.Invariants(lm); err != nil {
		if opts.Isolate {
			return resilience.NewFailure(where, where, resilience.KindVerify, err)
		}
		return fmt.Errorf("invariant violation after %s: %w", where, err)
	}
	return nil
}

// unit runs one named pipeline unit under the options' resilience policy:
// cooperative context check at the boundary, snapshot/fault hooks inside
// the recovery boundary, panic isolation when requested. snap renders the
// IR entering the unit for the Observer (nil when there is none).
func unit(opts Options, flowName, stage, pass string, snap func() string, fn func() error) error {
	if err := resilience.Interrupted(opts.Ctx, stage, pass); err != nil {
		return err
	}
	body := func() error {
		if opts.Observer != nil && snap != nil {
			opts.Observer(stage, pass, snap())
		}
		if opts.FaultHook != nil {
			opts.FaultHook(flowName, stage, pass)
		}
		return fn()
	}
	if opts.Isolate {
		return resilience.Guard(stage, pass, body)
	}
	return body()
}

// prepareLLVM runs the adaptor flow's front half — MLIR preparation,
// lowering, translation, adaptation, LLVM cleanup — producing the module
// synthesis would consume. phase wraps each stage for timing; adaptorRep
// receives the adaptor report when non-nil.
func prepareLLVM(m *mlir.Module, top string, d Directives, opts Options,
	phase func(name string, fn func() error) error, adaptorRep **core.Report) (*llvm.Module, error) {

	const flowName = "adaptor"
	mlirSnap := func() string { return m.Print() }
	if err := phase("mlir-opt", func() error { return mlirPrep(m, top, d, true, flowName, opts) }); err != nil {
		return nil, err
	}
	mlirMat := mlirMaterializer(m)
	if err := phase("lowering", func() error {
		if err := memoUnit(opts, flowName,
			step{stage: "lowering", pass: "affine-to-scf", materialize: mlirMat, print: m.Print},
			mlirSnap, func() error {
				if err := lower.AffineToSCF(m); err != nil {
					return err
				}
				return opts.sem.afterMLIR("lowering", "affine-to-scf", m)
			}); err != nil {
			return err
		}
		return memoUnit(opts, flowName,
			step{stage: "lowering", pass: "scf-to-cf", materialize: mlirMat, print: m.Print},
			mlirSnap, func() error {
				if err := lower.SCFToCF(m); err != nil {
					return err
				}
				return opts.sem.afterMLIR("lowering", "scf-to-cf", m)
			})
	}); err != nil {
		return nil, err
	}
	var lm *llvm.Module
	llvmSnap := func() string { return lm.Print() }
	llvmMat := llvmMaterializer(&lm)
	if err := phase("translate", func() error {
		return memoUnit(opts, flowName,
			step{stage: "translate", pass: "translate", materialize: mlirMat, print: llvmSnap},
			mlirSnap, func() error {
				var err error
				lm, err = translate.Translate(m, translate.Options{EmitLifetimeMarkers: true})
				if err != nil {
					return err
				}
				if err := boundaryCheck(opts, "translate", lm); err != nil {
					return err
				}
				return opts.sem.afterLLVM("translate", "translate", lm)
			})
	}); err != nil {
		return nil, err
	}
	if err := phase("adaptor", func() error {
		return memoUnit(opts, flowName,
			step{stage: "adaptor", pass: "adaptor", materialize: llvmMat, print: llvmSnap,
				auxOut: func() (json.RawMessage, error) {
					if adaptorRep == nil || *adaptorRep == nil {
						return nil, nil
					}
					return json.Marshal(*adaptorRep)
				},
				auxIn: func(rec incr.Record) error {
					if adaptorRep == nil {
						return nil
					}
					if len(rec.Aux) == 0 {
						return fmt.Errorf("record lacks adaptor report")
					}
					rep := new(core.Report)
					if err := json.Unmarshal(rec.Aux, rep); err != nil {
						return err
					}
					*adaptorRep = rep
					return nil
				}},
			llvmSnap, func() error {
				rep, err := core.Adapt(lm, core.Options{TopFunc: top})
				if adaptorRep != nil {
					*adaptorRep = rep
				}
				if err != nil {
					return err
				}
				if err := boundaryCheck(opts, "adaptor", lm); err != nil {
					return err
				}
				return opts.sem.afterLLVM("adaptor", "adaptor", lm)
			})
	}); err != nil {
		return nil, err
	}
	if err := phase("llvm-opt", func() error {
		pm := lpasses.NewPassManager().Add(
			lpasses.PassSimplifyCFG,
			lpasses.PassConstFold,
			lpasses.PassStrengthReduce,
			lpasses.PassCSE,
			lpasses.PassDCE,
		)
		pm.Ctx = opts.Ctx
		pm.Isolate = opts.Isolate
		pm.Parallel = opts.ParallelFuncs
		if opts.memo != nil {
			if lm == nil {
				// Every upstream unit replayed; give the manager a module
				// object to point at, filled in by materialization before
				// the first pass that actually runs.
				lm = &llvm.Module{}
			}
			pm.Wrap = func(passName string, run func() error) (bool, error) {
				return opts.memo.do(step{
					stage: "llvm-opt", pass: passName,
					materialize: llvmMat, print: llvmSnap,
				}, run)
			}
		}
		if opts.Observer != nil || opts.FaultHook != nil {
			pm.BeforePass = func(name string, mm *llvm.Module) {
				if opts.Observer != nil {
					opts.Observer("llvm-opt", name, mm.Print())
				}
				if opts.FaultHook != nil {
					opts.FaultHook(flowName, "llvm-opt", name)
				}
			}
		}
		if opts.VerifyEach {
			pm.VerifyEach = true
			pm.Invariants = lint.Invariants
		}
		if opts.sem != nil {
			pm.AfterPass = func(name string, mm *llvm.Module) error {
				return opts.sem.afterLLVM("llvm-opt", name, mm)
			}
		}
		return pm.Run(lm)
	}); err != nil {
		return nil, err
	}
	// The conformance gate is the adaptor flow's final static stage: every
	// module leaving the pipeline must sit inside the old Vitis LLVM's
	// accepted subset, or the adaptor has a bug. The gate always runs on
	// the real module — a replayed tail is materialized first (and
	// verified, mirroring the pass manager's end-of-pipeline verify the
	// replay skipped), so warm runs cannot slip past a gate failure the
	// cold run would have reported.
	if opts.memo != nil {
		if err := opts.memo.finalize(&lm, true); err != nil {
			return nil, err
		}
	}
	if err := conformanceGate(opts, lm); err != nil {
		return nil, err
	}
	return lm, nil
}

// PrepareLLVM runs the adaptor flow up to (but not including) synthesis and
// returns the cleaned LLVM module — the input the DSE feasibility pre-check
// lints without paying for a schedule.
func PrepareLLVM(m *mlir.Module, top string, d Directives) (*llvm.Module, error) {
	noPhases := func(_ string, fn func() error) error { return fn() }
	lm, err := prepareLLVM(m, top, d, Options{}, noPhases, nil)
	if err != nil {
		return nil, fmt.Errorf("prepare: %w", err)
	}
	return lm, nil
}

// AdaptorFlow runs the paper's direct-IR flow end to end.
func AdaptorFlow(m *mlir.Module, top string, d Directives, tgt hls.Target) (*Result, error) {
	return AdaptorFlowWith(m, top, d, tgt, Options{})
}

// AdaptorFlowWith is AdaptorFlow with explicit options.
func AdaptorFlowWith(m *mlir.Module, top string, d Directives, tgt hls.Target, opts Options) (*Result, error) {
	res := &Result{Flow: "adaptor", Phases: Phases{}}
	t0 := time.Now()

	phase := func(name string, fn func() error) error {
		start := time.Now()
		err := fn()
		res.Phases[name] = time.Since(start)
		return err
	}

	if opts.memoEnabled() {
		opts.memo = newMemoRun(opts.incrStore(), "adaptor", top, opts, m)
	}
	if opts.VerifySemantics && opts.sem == nil {
		if opts.memo != nil {
			// Defer the reference execution: a fully replayed run never
			// reaches a live check, so it never pays for one. A seeded
			// cursor skipped the pristine print, so take the snapshot here.
			pristine := opts.memo.bytes
			if pristine == "" {
				pristine = m.Print()
			}
			opts.sem = newLazySemOracle(pristine, top, opts)
		} else {
			sem, err := newSemOracle(m, top, opts)
			if err != nil {
				return nil, fmt.Errorf("adaptor flow: %w", err)
			}
			opts.sem = sem
		}
	}

	lm, err := prepareLLVM(m, top, d, opts, phase, &res.Adaptor)
	if err != nil {
		return degradeOrFail(opts, top, d, tgt, err)
	}
	if err := phase("synthesis", func() error {
		return memoUnit(opts, "adaptor", synthesisStep(&lm, tgt, &res.Report),
			func() string { return lm.Print() }, func() error {
				rep, err := hls.Synthesize(lm, top, tgt)
				res.Report = rep
				if err != nil {
					return err
				}
				return opts.sem.afterLLVM("synthesis", "synthesis", lm)
			})
	}); err != nil {
		return degradeOrFail(opts, top, d, tgt, err)
	}
	res.LLVM = lm
	res.Total = time.Since(t0)
	if opts.memo != nil {
		res.UnitHits, res.UnitMisses = opts.memo.hits, opts.memo.misses
	}
	return res, nil
}

// degradeOrFail implements graceful degradation: with a Fallback builder
// and a deterministic direct-path failure, the kernel reruns through the
// C++ baseline flow and the result is tagged Degraded with the captured
// failure attached. Transient failures (timeout, cancellation) never fall
// back — the context that killed the direct path would kill the fallback
// at its first boundary too, and the caller's retry policy owns them.
func degradeOrFail(opts Options, top string, d Directives, tgt hls.Target, cause error) (*Result, error) {
	if opts.Fallback == nil || resilience.Transient(cause) {
		return nil, fmt.Errorf("adaptor flow: %w", cause)
	}
	pf, ok := resilience.AsPassFailure(cause)
	if !ok {
		pf = resilience.NewFailure("adaptor-flow", "adaptor-flow", resilience.KindError, cause)
	}
	m2 := opts.Fallback()
	if m2 == nil {
		return nil, fmt.Errorf("adaptor flow: %w (fallback builder returned no module)", cause)
	}
	fopts := opts
	fopts.Fallback = nil
	// The fallback rerun gets its own cursor (CxxFlowWith builds one under
	// the cxx configuration); the adaptor run's cursor is meaningless to it.
	fopts.memo = nil
	res, err := CxxFlowWith(m2, top, d, tgt, fopts)
	if err != nil {
		return nil, fmt.Errorf("adaptor flow: %w (C++ fallback also failed: %v)", cause, err)
	}
	res.Flow = "cxx-fallback"
	res.Degraded = true
	res.Failure = pf
	return res, nil
}

// CxxFlow runs the baseline HLS-C++ flow end to end.
func CxxFlow(m *mlir.Module, top string, d Directives, tgt hls.Target) (*Result, error) {
	return CxxFlowWith(m, top, d, tgt, Options{})
}

// CxxFlowWith is CxxFlow with explicit options.
func CxxFlowWith(m *mlir.Module, top string, d Directives, tgt hls.Target, opts Options) (*Result, error) {
	res := &Result{Flow: "cxx", Phases: Phases{}}
	t0 := time.Now()
	phase := func(name string, fn func() error) error {
		start := time.Now()
		err := fn()
		res.Phases[name] = time.Since(start)
		return err
	}

	const flowName = "cxx"
	if opts.memoEnabled() {
		opts.memo = newMemoRun(opts.incrStore(), flowName, top, opts, m)
	}
	if opts.VerifySemantics && opts.sem == nil {
		if opts.memo != nil {
			pristine := opts.memo.bytes
			if pristine == "" {
				pristine = m.Print()
			}
			opts.sem = newLazySemOracle(pristine, top, opts)
		} else {
			sem, err := newSemOracle(m, top, opts)
			if err != nil {
				return nil, fmt.Errorf("cxx flow: %w", err)
			}
			opts.sem = sem
		}
	}
	if err := phase("mlir-opt", func() error { return mlirPrep(m, top, d, false, flowName, opts) }); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	if err := phase("emit-hlscpp", func() error {
		return memoUnit(opts, flowName,
			step{stage: "emit-hlscpp", pass: "emit-hlscpp",
				materialize: mlirMaterializer(m),
				print:       func() string { return res.CSource },
				auxIn: func(rec incr.Record) error {
					res.CSource = rec.IR
					return nil
				}},
			func() string { return m.Print() }, func() error {
				src, err := cgen.Emit(m)
				res.CSource = src
				return err
			})
	}); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	var lm *llvm.Module
	if err := phase("c-frontend", func() error {
		return memoUnit(opts, flowName,
			// The C frontend consumes the emitted source directly, which
			// the cursor and res.CSource both hold — nothing to
			// materialize even after a replayed prefix.
			step{stage: "c-frontend", pass: "c-frontend",
				print: func() string { return lm.Print() }},
			func() string { return res.CSource }, func() error {
				var err error
				lm, err = cfront.Compile(res.CSource, cfront.Options{Top: top})
				if err != nil {
					return err
				}
				if err := boundaryCheck(opts, "c-frontend", lm); err != nil {
					return err
				}
				return opts.sem.afterLLVM("c-frontend", "c-frontend", lm)
			})
	}); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	if err := phase("synthesis", func() error {
		return memoUnit(opts, flowName, synthesisStep(&lm, tgt, &res.Report),
			func() string { return lm.Print() }, func() error {
				rep, err := hls.Synthesize(lm, top, tgt)
				res.Report = rep
				if err != nil {
					return err
				}
				return opts.sem.afterLLVM("synthesis", "synthesis", lm)
			})
	}); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	if opts.memo != nil {
		// A replayed tail leaves the module behind the cursor; the Result
		// must carry the real final module. No post-frontend verify to
		// mirror here — the cold path never ran one.
		if err := opts.memo.finalize(&lm, false); err != nil {
			return nil, fmt.Errorf("cxx flow: %w", err)
		}
		res.UnitHits, res.UnitMisses = opts.memo.hits, opts.memo.misses
	}
	res.LLVM = lm
	res.Total = time.Since(t0)
	return res, nil
}

// RawFlow translates without adapting and returns the gate violations (nil
// error with non-empty violations is the expected outcome).
func RawFlow(m *mlir.Module, top string, d Directives) ([]hls.Violation, *llvm.Module, error) {
	return RawFlowWith(m, top, d, Options{})
}

// RawFlowWith is RawFlow with explicit options (resilience boundaries
// included, so engine-run raw jobs cannot crash the process either).
func RawFlowWith(m *mlir.Module, top string, d Directives, opts Options) ([]hls.Violation, *llvm.Module, error) {
	const flowName = "raw"
	mlirSnap := func() string { return m.Print() }
	if err := mlirPrep(m, top, d, true, flowName, opts); err != nil {
		return nil, nil, err
	}
	if err := unit(opts, flowName, "lowering", "affine-to-scf", mlirSnap,
		func() error { return lower.AffineToSCF(m) }); err != nil {
		return nil, nil, err
	}
	if err := unit(opts, flowName, "lowering", "scf-to-cf", mlirSnap,
		func() error { return lower.SCFToCF(m) }); err != nil {
		return nil, nil, err
	}
	var lm *llvm.Module
	if err := unit(opts, flowName, "translate", "translate", mlirSnap, func() error {
		var err error
		lm, err = translate.Translate(m, translate.Options{EmitLifetimeMarkers: true})
		return err
	}); err != nil {
		return nil, nil, err
	}
	return hls.Check(lm), lm, nil
}

// Execute runs the flow's final LLVM module on the given buffers (one per
// array port, in parameter order), standing in for co-simulation.
func Execute(lm *llvm.Module, top string, mems []*interp.Mem) error {
	f := lm.FindFunc(top)
	if f == nil {
		return fmt.Errorf("execute: @%s not found", top)
	}
	if len(mems) != len(f.Params) {
		return fmt.Errorf("execute: @%s has %d ports, got %d buffers", top, len(f.Params), len(mems))
	}
	args := make([]interp.Arg, len(mems))
	for i := range mems {
		args[i] = interp.PtrArg(mems[i], 0)
	}
	machine := interp.NewMachine(lm)
	_, _, err := machine.Run(context.Background(), top, args...)
	return err
}

// Package flow wires the complete compilation pipelines the paper compares:
//
//   - AdaptorFlow (the paper's contribution): MLIR passes → affine→scf→cf
//     lowering → translation to LLVM IR → the HLS adaptor → LLVM-level
//     cleanup → HLS synthesis.
//   - CxxFlow (the baseline): MLIR passes → HLS C++ emission → C frontend
//     (Vitis Clang stand-in) → HLS synthesis.
//   - RawFlow: translation without the adaptor, to demonstrate the gate
//     failure the adaptor exists to fix.
package flow

import (
	"fmt"
	"time"

	"repro/internal/cfront"
	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	lpasses "repro/internal/llvm/passes"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/mlir/passes"
	"repro/internal/translate"
)

// Directives selects the HLS optimization configuration applied before the
// flows diverge.
type Directives struct {
	// Pipeline marks innermost loops for pipelining with the target II.
	Pipeline bool
	II       int
	// Unroll sets an innermost unroll factor (1 = off). The adaptor flow
	// materializes it at the MLIR level; the C++ flow carries it as a
	// pragma consumed by the backend — exactly the asymmetry between
	// ScaleHLS-style tools and Vitis.
	Unroll int
	// Partition applies an array partition to every memref argument.
	Partition *passes.PartitionSpec
	// Flatten marks perfect nest levels for loop flattening so the inner
	// pipeline keeps issuing across outer iterations.
	Flatten bool
	// Dataflow requests task-level parallelism across independent
	// top-level loops (#pragma HLS dataflow).
	Dataflow bool
}

// Result is the outcome of one flow run.
type Result struct {
	Flow    string
	Report  *hls.Report
	Adaptor *core.Report // adaptor flow only
	LLVM    *llvm.Module
	CSource string // C++ flow only

	// Phases records per-phase wall time. Each Result owns its map;
	// cross-run aggregation must go through Phases.Merge.
	Phases Phases
	Total  time.Duration
}

// mlirPrep runs the shared MLIR-level preparation.
func mlirPrep(m *mlir.Module, top string, d Directives, materializeUnroll bool) error {
	pm := passes.NewPassManager()
	pm.Add(passes.MarkTop(top))
	if d.Pipeline {
		ii := d.II
		if ii <= 0 {
			ii = 1
		}
		pm.Add(passes.PipelineInnermost(ii))
	}
	if d.Unroll > 1 {
		pm.Add(passes.MarkUnroll(d.Unroll))
		if materializeUnroll {
			pm.Add(passes.LoopUnroll(0, true))
		}
	}
	if d.Partition != nil {
		pm.Add(passes.PartitionAllArgs(*d.Partition))
	}
	if d.Flatten {
		pm.Add(passes.MarkFlatten())
	}
	if d.Dataflow {
		pm.Add(passes.MarkDataflow(top))
	}
	pm.Add(passes.Canonicalize(), passes.CSE())
	return pm.Run(m)
}

// AdaptorFlow runs the paper's direct-IR flow end to end.
func AdaptorFlow(m *mlir.Module, top string, d Directives, tgt hls.Target) (*Result, error) {
	res := &Result{Flow: "adaptor", Phases: Phases{}}
	t0 := time.Now()

	phase := func(name string, fn func() error) error {
		start := time.Now()
		err := fn()
		res.Phases[name] = time.Since(start)
		return err
	}

	if err := phase("mlir-opt", func() error { return mlirPrep(m, top, d, true) }); err != nil {
		return nil, fmt.Errorf("adaptor flow: %w", err)
	}
	if err := phase("lowering", func() error {
		if err := lower.AffineToSCF(m); err != nil {
			return err
		}
		return lower.SCFToCF(m)
	}); err != nil {
		return nil, fmt.Errorf("adaptor flow: %w", err)
	}
	var lm *llvm.Module
	if err := phase("translate", func() error {
		var err error
		lm, err = translate.Translate(m, translate.Options{EmitLifetimeMarkers: true})
		return err
	}); err != nil {
		return nil, fmt.Errorf("adaptor flow: %w", err)
	}
	if err := phase("adaptor", func() error {
		rep, err := core.Adapt(lm, core.Options{TopFunc: top})
		res.Adaptor = rep
		return err
	}); err != nil {
		return nil, fmt.Errorf("adaptor flow: %w", err)
	}
	if err := phase("llvm-opt", func() error {
		for _, f := range lm.Funcs {
			if f.IsDecl {
				continue
			}
			lpasses.SimplifyCFG(f)
			lpasses.ConstFold(f)
			lpasses.StrengthReduce(f)
			lpasses.CSE(f)
			lpasses.DCE(f)
		}
		return lm.Verify()
	}); err != nil {
		return nil, fmt.Errorf("adaptor flow: %w", err)
	}
	if err := phase("synthesis", func() error {
		rep, err := hls.Synthesize(lm, top, tgt)
		res.Report = rep
		return err
	}); err != nil {
		return nil, fmt.Errorf("adaptor flow: %w", err)
	}
	res.LLVM = lm
	res.Total = time.Since(t0)
	return res, nil
}

// CxxFlow runs the baseline HLS-C++ flow end to end.
func CxxFlow(m *mlir.Module, top string, d Directives, tgt hls.Target) (*Result, error) {
	res := &Result{Flow: "cxx", Phases: Phases{}}
	t0 := time.Now()
	phase := func(name string, fn func() error) error {
		start := time.Now()
		err := fn()
		res.Phases[name] = time.Since(start)
		return err
	}

	if err := phase("mlir-opt", func() error { return mlirPrep(m, top, d, false) }); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	if err := phase("emit-hlscpp", func() error {
		src, err := cgen.Emit(m)
		res.CSource = src
		return err
	}); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	var lm *llvm.Module
	if err := phase("c-frontend", func() error {
		var err error
		lm, err = cfront.Compile(res.CSource, cfront.Options{Top: top})
		return err
	}); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	if err := phase("synthesis", func() error {
		rep, err := hls.Synthesize(lm, top, tgt)
		res.Report = rep
		return err
	}); err != nil {
		return nil, fmt.Errorf("cxx flow: %w", err)
	}
	res.LLVM = lm
	res.Total = time.Since(t0)
	return res, nil
}

// RawFlow translates without adapting and returns the gate violations (nil
// error with non-empty violations is the expected outcome).
func RawFlow(m *mlir.Module, top string, d Directives) ([]hls.Violation, *llvm.Module, error) {
	if err := mlirPrep(m, top, d, true); err != nil {
		return nil, nil, err
	}
	if err := lower.AffineToSCF(m); err != nil {
		return nil, nil, err
	}
	if err := lower.SCFToCF(m); err != nil {
		return nil, nil, err
	}
	lm, err := translate.Translate(m, translate.Options{EmitLifetimeMarkers: true})
	if err != nil {
		return nil, nil, err
	}
	return hls.Check(lm), lm, nil
}

// Execute runs the flow's final LLVM module on the given buffers (one per
// array port, in parameter order), standing in for co-simulation.
func Execute(lm *llvm.Module, top string, mems []*interp.Mem) error {
	f := lm.FindFunc(top)
	if f == nil {
		return fmt.Errorf("execute: @%s not found", top)
	}
	if len(mems) != len(f.Params) {
		return fmt.Errorf("execute: @%s has %d ports, got %d buffers", top, len(f.Params), len(mems))
	}
	args := make([]interp.Arg, len(mems))
	for i := range mems {
		args[i] = interp.PtrArg(mems[i], 0)
	}
	machine := interp.NewMachine(lm)
	_, _, err := machine.Run(top, args...)
	return err
}

package flow

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/mlir"
	mlirparser "repro/internal/mlir/parser"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

// TestVerifySemanticsAllKernelsBothFlows is the semantic-equivalence
// property test: every polybench kernel through both full flows with the
// differential oracle on must diverge nowhere — after every pipeline unit
// the IR computes exactly what the pristine kernel computes (within the
// ULP tolerance) — and the final adaptor module must clear the HLS
// conformance gate with zero diagnostics.
func TestVerifySemanticsAllKernelsBothFlows(t *testing.T) {
	kernels := polybench.All()
	if len(kernels) < 18 {
		t.Fatalf("expected the full 18-kernel suite, got %d", len(kernels))
	}
	tgt := hls.DefaultTarget()
	d := Directives{Pipeline: true, II: 1}
	opts := Options{VerifySemantics: true}
	for _, k := range kernels {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			res, err := AdaptorFlowWith(k.Build(s), k.Name, d, tgt, opts)
			if err != nil {
				t.Fatalf("adaptor flow with VerifySemantics: %v", err)
			}
			if ds := hls.Conformance(res.LLVM); len(ds) != 0 {
				t.Errorf("adaptor output has %d conformance diagnostics; first: %s", len(ds), ds[0])
			}
			cres, err := CxxFlowWith(k.Build(s), k.Name, d, tgt, opts)
			if err != nil {
				t.Fatalf("cxx flow with VerifySemantics: %v", err)
			}
			if ds := hls.Conformance(cres.LLVM); len(ds) != 0 {
				t.Errorf("cxx output has %d conformance diagnostics; first: %s", len(ds), ds[0])
			}
		})
	}
}

// TestVerifySemanticsMatchesDefault asserts the oracle changes only
// checking, never results.
func TestVerifySemanticsMatchesDefault(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	tgt := hls.DefaultTarget()
	d := richDirectives()
	plain, err := AdaptorFlow(k.Build(s), k.Name, d, tgt)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := AdaptorFlowWith(k.Build(s), k.Name, d, tgt, Options{VerifySemantics: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report.String() != checked.Report.String() {
		t.Errorf("VerifySemantics changed the synthesis report:\n--- default\n%s\n--- verified\n%s",
			plain.Report, checked.Report)
	}
}

// TestInjectedMiscompileSweep is the oracle's acceptance sweep: a
// deliberately wrong rewrite inserted after each of the 18 registered
// adaptor pipeline units must be detected by that unit's own oracle check,
// typed KindMiscompile, and localized to the unit by name.
func TestInjectedMiscompileSweep(t *testing.T) {
	build := gemmBuilder(t)
	d := richDirectives()
	tgt := hls.DefaultTarget()
	units := PipelineUnits("adaptor", d)
	if len(units) != 18 {
		t.Fatalf("adaptor pipeline has %d units under rich directives, want 18", len(units))
	}
	for _, u := range units {
		u := u
		t.Run(u.String(), func(t *testing.T) {
			opts := Options{
				VerifySemantics:  true,
				Isolate:          true,
				InjectMiscompile: u.String(),
			}
			_, err := AdaptorFlowWith(build(), "gemm", d, tgt, opts)
			if err == nil {
				t.Fatalf("injected miscompile after %s went undetected", u)
			}
			pf, ok := resilience.AsPassFailure(err)
			if !ok {
				t.Fatalf("miscompile surfaced untyped: %v", err)
			}
			if pf.Kind != resilience.KindMiscompile {
				t.Fatalf("failure kind = %s, want miscompile (%v)", pf.Kind, err)
			}
			if pf.Stage != u.Stage || pf.Pass != u.Pass {
				t.Fatalf("localized to %s/%s, want %s", pf.Stage, pf.Pass, u)
			}
		})
	}
}

// TestMiscompileBisectAndReplay closes the quarantine loop: a miscompile
// bisects into a bundle that records the injection, reproduces, and
// replays to the same unit — the path hls-adaptor -replay drives.
func TestMiscompileBisectAndReplay(t *testing.T) {
	build := gemmBuilder(t)
	d := richDirectives()
	tgt := hls.DefaultTarget()
	const target = "llvm-opt/strength-reduce"
	opts := Options{VerifySemantics: true, Isolate: true, InjectMiscompile: target}
	_, err := AdaptorFlowWith(build(), "gemm", d, tgt, opts)
	if err == nil {
		t.Fatal("injected miscompile went undetected")
	}

	b := Bisect(build, "adaptor", "gemm miscompile", "gemm", d, tgt, opts, err)
	if !b.Reproduced {
		t.Fatalf("bisection did not reproduce the miscompile: %+v", b.Failure)
	}
	if b.Failure.Kind != resilience.KindMiscompile {
		t.Errorf("bundle failure kind = %s, want miscompile", b.Failure.Kind)
	}
	if got := b.Failure.Stage + "/" + b.Failure.Pass; got != target {
		t.Errorf("bundle localized to %s, want %s", got, target)
	}
	if b.Inject != target {
		t.Errorf("bundle did not record the injection: %q", b.Inject)
	}
	if b.SnapshotIR == "" {
		t.Error("bundle carries no IR snapshot for the offending unit")
	}

	// Replay from the bundle alone, the way hls-adaptor -replay does: the
	// recorded input plus the recorded injection must reproduce the same
	// localized miscompile even from bare options.
	if _, err := mlirparser.Parse(b.InputMLIR); err != nil {
		t.Fatalf("bundle input does not parse: %v", err)
	}
	rebuild := func() *mlir.Module {
		m, err := mlirparser.Parse(b.InputMLIR)
		if err != nil {
			return nil
		}
		return m
	}
	rb := Bisect(rebuild, b.Flow, b.Label, b.Top, d, tgt,
		Options{InjectMiscompile: b.Inject}, &b.Failure)
	if !rb.Reproduced {
		t.Fatal("replay from bundle did not reproduce")
	}
	if got := rb.Failure.Stage + "/" + rb.Failure.Pass; got != target {
		t.Errorf("replay localized to %s, want %s", got, target)
	}
	if rb.Failure.Kind != resilience.KindMiscompile {
		t.Errorf("replay failure kind = %s, want miscompile", rb.Failure.Kind)
	}
}

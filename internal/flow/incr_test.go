package flow

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"repro/internal/hls"
	"repro/internal/incr"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
	"repro/internal/raceflag"
)

// compareRuns asserts a warm (incremental) result is observably identical
// to the cold baseline: final LLVM bytes, reports, emitted source, and the
// set of recorded phases (durations are wall-clock and may differ).
func compareRuns(t *testing.T, label string, cold, warm *Result) {
	t.Helper()
	if cold.Flow != warm.Flow {
		t.Fatalf("%s: flow %q vs %q", label, cold.Flow, warm.Flow)
	}
	if cold.LLVM.Print() != warm.LLVM.Print() {
		t.Fatalf("%s: final LLVM diverges", label)
	}
	cj, _ := json.Marshal(cold.Report)
	wj, _ := json.Marshal(warm.Report)
	if string(cj) != string(wj) {
		t.Fatalf("%s: synthesis report diverges:\ncold %s\nwarm %s", label, cj, wj)
	}
	cj, _ = json.Marshal(cold.Adaptor)
	wj, _ = json.Marshal(warm.Adaptor)
	if string(cj) != string(wj) {
		t.Fatalf("%s: adaptor report diverges:\ncold %s\nwarm %s", label, cj, wj)
	}
	if cold.CSource != warm.CSource {
		t.Fatalf("%s: emitted C source diverges", label)
	}
	for name := range cold.Phases {
		if _, ok := warm.Phases[name]; !ok {
			t.Fatalf("%s: warm run lost phase %q", label, name)
		}
	}
	for name := range warm.Phases {
		if _, ok := cold.Phases[name]; !ok {
			t.Fatalf("%s: warm run gained phase %q", label, name)
		}
	}
}

func runFlow(t *testing.T, kind string, k *polybench.Kernel, d Directives, opts Options) *Result {
	t.Helper()
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	switch kind {
	case "adaptor":
		res, err = AdaptorFlowWith(k.Build(s), k.Name, d, hls.DefaultTarget(), opts)
	case "cxx":
		res, err = CxxFlowWith(k.Build(s), k.Name, d, hls.DefaultTarget(), opts)
	default:
		t.Fatalf("unknown flow kind %q", kind)
	}
	if err != nil {
		t.Fatalf("%s/%s: %v", kind, k.Name, err)
	}
	return res
}

// TestIncrementalMatchesColdAllKernels is the equivalence property over the
// whole suite: for every kernel and both flows, an incremental run against
// an empty store and a second fully-replayed run both produce results
// byte-identical to a plain cold run, and the second run executes nothing.
func TestIncrementalMatchesColdAllKernels(t *testing.T) {
	d := Directives{Pipeline: true, II: 1, Unroll: 2}
	for _, kind := range []string{"adaptor", "cxx"} {
		for _, k := range polybench.All() {
			kind, k := kind, k
			t.Run(kind+"/"+k.Name, func(t *testing.T) {
				cold := runFlow(t, kind, k, d, Options{})
				store := incr.NewMemStore()
				first := runFlow(t, kind, k, d, Options{Incremental: true, IncrStore: store})
				compareRuns(t, "first incremental run", cold, first)
				if first.UnitHits != 0 || first.UnitMisses == 0 {
					t.Fatalf("first run against empty store: hits=%d misses=%d", first.UnitHits, first.UnitMisses)
				}
				warm := runFlow(t, kind, k, d, Options{Incremental: true, IncrStore: store})
				compareRuns(t, "fully replayed run", cold, warm)
				if warm.UnitMisses != 0 || warm.UnitHits != first.UnitMisses {
					t.Fatalf("warm run: hits=%d misses=%d, want %d hits 0 misses",
						warm.UnitHits, warm.UnitMisses, first.UnitMisses)
				}
			})
		}
	}
}

// TestIncrementalRandomDirectiveEdits drives a randomized directive-edit
// sequence through a shared store, comparing every incremental result
// against a fresh cold run of the same configuration — the property that
// prefix replay across arbitrarily ordered, partially overlapping
// configurations never leaks state between design points.
func TestIncrementalRandomDirectiveEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randDirectives := func() Directives {
		d := Directives{}
		if rng.Intn(2) == 1 {
			d.Pipeline = true
			d.II = 1 + rng.Intn(3)
		}
		d.Unroll = []int{0, 2, 4}[rng.Intn(3)]
		if rng.Intn(3) == 0 {
			d.Partition = &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0}
		}
		d.Flatten = rng.Intn(2) == 1
		return d
	}
	store := incr.NewMemStore()
	for _, kind := range []string{"adaptor", "cxx"} {
		for _, name := range []string{"gemm", "jacobi1d", "atax"} {
			k := polybench.Get(name)
			if k == nil {
				t.Fatalf("kernel %s not registered", name)
			}
			for i := 0; i < 6; i++ {
				d := randDirectives()
				cold := runFlow(t, kind, k, d, Options{})
				warm := runFlow(t, kind, k, d, Options{Incremental: true, IncrStore: store})
				compareRuns(t, kind+"/"+name, cold, warm)
			}
		}
	}
}

// TestIncrementalOracleVerdictsMatch proves the semantic-oracle
// interaction: verification options key the records, a replayed run
// reaches the same verdict as cold, and chaos injection disables
// memoization entirely (an injected miscompile must never be masked by —
// or poison — the store).
func TestIncrementalOracleVerdictsMatch(t *testing.T) {
	k := polybench.Get("gemm")
	d := Directives{Pipeline: true, II: 1}
	store := incr.NewMemStore()

	plain := runFlow(t, "adaptor", k, d, Options{Incremental: true, IncrStore: store})
	if plain.UnitHits != 0 {
		t.Fatalf("empty store produced %d hits", plain.UnitHits)
	}

	// Same directives with the oracle on must not reuse the unchecked
	// records: every unit re-runs under the stricter regime.
	opts := Options{Incremental: true, IncrStore: store, VerifySemantics: true, Isolate: true}
	checked := runFlow(t, "adaptor", k, d, opts)
	if checked.UnitHits != 0 {
		t.Fatalf("oracle-checked run replayed %d units recorded without checks", checked.UnitHits)
	}
	cold := runFlow(t, "adaptor", k, d, Options{VerifySemantics: true, Isolate: true})
	compareRuns(t, "oracle cold vs first incremental", cold, checked)

	warm := runFlow(t, "adaptor", k, d, opts)
	if warm.UnitMisses != 0 {
		t.Fatalf("second oracle run executed %d units", warm.UnitMisses)
	}
	compareRuns(t, "oracle warm replay", cold, warm)

	// Injection forces live execution: the corruption must be detected
	// exactly as without a store, and nothing of the poisoned run stored.
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	before := store.Len()
	inj := opts
	inj.InjectMiscompile = "llvm-opt/cse"
	_, err = AdaptorFlowWith(k.Build(s), k.Name, d, hls.DefaultTarget(), inj)
	if err == nil {
		t.Fatal("injected miscompile went undetected under incremental options")
	}
	if store.Len() != before {
		t.Fatalf("injected run grew the store: %d -> %d records", before, store.Len())
	}
	// And the store still replays the clean configuration afterwards.
	again := runFlow(t, "adaptor", k, d, opts)
	if again.UnitMisses != 0 {
		t.Fatalf("store poisoned: clean rerun executed %d units", again.UnitMisses)
	}
}

// TestIncrementalInvalidation pins the re-run frontier: editing one
// directive re-runs the flow from the first affected unit, replaying
// exactly the unchanged prefix. An II change affects the second MLIR pass,
// so exactly one unit (hls-mark-top) replays.
func TestIncrementalInvalidation(t *testing.T) {
	k := polybench.Get("gemm")
	store := incr.NewMemStore()
	d1 := Directives{Pipeline: true, II: 1}
	first := runFlow(t, "adaptor", k, d1, Options{Incremental: true, IncrStore: store})

	d2 := Directives{Pipeline: true, II: 2}
	edited := runFlow(t, "adaptor", k, d2, Options{Incremental: true, IncrStore: store})
	if edited.UnitHits != 1 {
		t.Fatalf("II edit: %d units replayed, want exactly the pre-edit prefix (1)", edited.UnitHits)
	}
	if want := first.UnitMisses - 1; edited.UnitMisses != want {
		t.Fatalf("II edit: %d units executed, want %d (everything from the edited unit down)",
			edited.UnitMisses, want)
	}
	// The edited configuration must itself replay cleanly now.
	warm := runFlow(t, "adaptor", k, d2, Options{Incremental: true, IncrStore: store})
	if warm.UnitMisses != 0 {
		t.Fatalf("edited config not fully recorded: %d misses", warm.UnitMisses)
	}
	compareRuns(t, "edited config replay", edited, warm)
}

// TestIncrementalDiskStoreWarmStart proves the cross-process path: a fresh
// DiskStore handle over a directory populated by a previous handle replays
// the whole flow.
func TestIncrementalDiskStoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	k := polybench.Get("jacobi1d")
	d := Directives{Pipeline: true, II: 1}

	s1, err := incr.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := runFlow(t, "adaptor", k, d, Options{Incremental: true, IncrStore: s1})

	s2, err := incr.OpenDiskStore(dir) // fresh handle = new process
	if err != nil {
		t.Fatal(err)
	}
	warm := runFlow(t, "adaptor", k, d, Options{Incremental: true, IncrStore: s2})
	if warm.UnitMisses != 0 {
		t.Fatalf("disk warm start executed %d units", warm.UnitMisses)
	}
	compareRuns(t, "disk warm start", cold, warm)
}

// TestIncrementalSeededRuns covers the printless cursor: a caller-supplied
// IncrSeed (the engine derives one per job) skips the pristine print, keys
// a chain disjoint from content-addressed runs, and still produces results
// byte-identical to cold — with the oracle on too, since the lazy harness
// must fall back to printing the pristine snapshot itself.
func TestIncrementalSeededRuns(t *testing.T) {
	k := polybench.Get("gemm")
	d := Directives{Pipeline: true, II: 1, Unroll: 2}
	for _, kind := range []string{"adaptor", "cxx"} {
		for _, sem := range []bool{false, true} {
			store := incr.NewMemStore()
			opts := Options{Incremental: true, IncrStore: store,
				IncrSeed: "gemm|MINI", VerifySemantics: sem, Isolate: sem}
			cold := runFlow(t, kind, k, d, Options{VerifySemantics: sem, Isolate: sem})
			first := runFlow(t, kind, k, d, opts)
			compareRuns(t, kind+" seeded first", cold, first)
			if first.UnitHits != 0 {
				t.Fatalf("%s: seeded run hit a fresh store %d times", kind, first.UnitHits)
			}
			warm := runFlow(t, kind, k, d, opts)
			compareRuns(t, kind+" seeded warm", cold, warm)
			if warm.UnitMisses != 0 {
				t.Fatalf("%s: seeded warm run executed %d units", kind, warm.UnitMisses)
			}
			// An unseeded run keys its first unit by content, not seed, so
			// that one unit re-runs — and since its output bytes match the
			// seeded chain's, the digest chains reconverge and everything
			// downstream replays.
			unseeded := opts
			unseeded.IncrSeed = ""
			other := runFlow(t, kind, k, d, unseeded)
			compareRuns(t, kind+" unseeded after seeded", cold, other)
			if other.UnitMisses != 1 || other.UnitHits != first.UnitMisses-1 {
				t.Fatalf("%s: unseeded run after seeded: hits=%d misses=%d, want %d/1",
					kind, other.UnitHits, other.UnitMisses, first.UnitMisses-1)
			}
		}
	}
}

// TestWarmReplaySpeedup is the flow-level timing floor: a fully warm
// re-run must beat the cold flow by at least 3x (the engine-level Fig8
// sweep test holds the 5x acceptance bound, where the cursor is seeded
// and the whole batch amortizes). Warm work is one pristine print and a
// hash per unit — the final module comes from the process-global cache —
// so the margin is wide; best-of-3 keeps scheduler noise out.
func TestWarmReplaySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceflag.Enabled {
		t.Skip("timing bounds are meaningless under the race detector")
	}
	k := polybench.Get("gemm")
	d := Directives{Pipeline: true, II: 1, Unroll: 2}
	store := incr.NewMemStore()
	runFlow(t, "adaptor", k, d, Options{Incremental: true, IncrStore: store}) // populate

	best := func(opts Options) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			s, _ := k.SizeOf("MINI")
			m := k.Build(s)
			start := time.Now()
			if _, err := AdaptorFlowWith(m, k.Name, d, hls.DefaultTarget(), opts); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); el < bestD {
				bestD = el
			}
		}
		return bestD
	}
	coldT := best(Options{})
	warmT := best(Options{Incremental: true, IncrStore: store})
	if warmT*3 > coldT {
		t.Fatalf("warm replay %v vs cold %v: speedup %.1fx < 3x",
			warmT, coldT, float64(coldT)/float64(warmT))
	}
	t.Logf("cold %v, warm %v (%.1fx)", coldT, warmT, float64(coldT)/float64(warmT))
}

// TestParallelFuncsMatchesSerial runs every kernel through both flows with
// function-parallel pass execution and requires byte-identical results: the
// parallel path must be an invisible scheduling change, never a semantic one.
func TestParallelFuncsMatchesSerial(t *testing.T) {
	d := Directives{Pipeline: true, II: 1, Unroll: 2}
	for _, kind := range []string{"adaptor", "cxx"} {
		for _, k := range polybench.All() {
			kind, k := kind, k
			t.Run(kind+"/"+k.Name, func(t *testing.T) {
				serial := runFlow(t, kind, k, d, Options{})
				par := runFlow(t, kind, k, d, Options{ParallelFuncs: true})
				compareRuns(t, "parallel func-local passes", serial, par)
			})
		}
	}
}

package flow

import (
	"strings"
	"testing"

	"repro/internal/hls"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
)

// buildDynamic builds a kernel over a dynamically-shaped memref, which the
// translation ABI cannot expand statically.
func buildDynamic() *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{mlir.DynamicDim}, mlir.F32())
	_, args := m.AddFunc("dyn", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("dyn")))
	b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(v, args[0], i)
	})
	b.Return()
	return m
}

func TestAdaptorFlowRejectsDynamicShapes(t *testing.T) {
	_, err := AdaptorFlow(buildDynamic(), "dyn", Directives{}, hls.DefaultTarget())
	if err == nil {
		t.Fatal("dynamic memref arguments must be rejected")
	}
	if !strings.Contains(err.Error(), "dynamic") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestFlowsErrorOnMissingTop(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4}, mlir.F32())
	_, _ = m.AddFunc("real", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("real")))
	b.Return()
	// AdaptorFlow synthesizes the function named "ghost": must fail at the
	// synthesis step with a clear message.
	if _, err := AdaptorFlow(m, "ghost", Directives{}, hls.DefaultTarget()); err == nil {
		t.Error("missing top function must error")
	}
}

func TestExecuteArityMismatch(t *testing.T) {
	m := buildDynamic()
	_ = m
	k := mlir.NewModule()
	ty := mlir.MemRef([]int64{4}, mlir.F32())
	_, args := k.AddFunc("one", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(k.FindFunc("one")))
	_ = args
	b.Return()
	res, err := AdaptorFlow(k, "one", Directives{}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	// Too few buffers.
	if err := Execute(res.LLVM, "one", nil); err == nil {
		t.Error("buffer arity mismatch must error")
	}
	// Unknown function.
	if err := Execute(res.LLVM, "zzz", []*interp.Mem{interp.NewMem(16)}); err == nil {
		t.Error("unknown function must error")
	}
}

func TestCxxFlowErrorsSurfaceSource(t *testing.T) {
	// An MLIR module containing an op cgen cannot emit must fail in the
	// emit phase with the flow name in the error.
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4}, mlir.F32())
	_, args := m.AddFunc("weird", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("weird")))
	op := mlir.NewOp("exotic.op", []*mlir.Value{args[0]}, nil)
	b.Block().Append(op)
	b.Return()
	_, err := CxxFlow(m, "weird", Directives{}, hls.DefaultTarget())
	if err == nil {
		t.Fatal("unsupported op must fail the C++ flow")
	}
	if !strings.Contains(err.Error(), "cxx flow") {
		t.Errorf("error should identify the flow: %v", err)
	}
}

func TestDirectiveValidation(t *testing.T) {
	// A pipeline II of zero normalizes to 1 rather than failing.
	k := buildDynamicFree(t)
	res, err := AdaptorFlow(k, "ok", Directives{Pipeline: true, II: 0}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Report.Loops {
		if l.Pipelined && l.II < 1 {
			t.Error("II must normalize to >= 1")
		}
	}
}

func buildDynamicFree(t *testing.T) *mlir.Module {
	t.Helper()
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F32())
	_, args := m.AddFunc("ok", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("ok")))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(b.AddF(v, v), args[0], i)
	})
	b.Return()
	return m
}

package flow

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/llvm/interp"
	"repro/internal/mlir/passes"
	"repro/internal/polybench"
)

func memsFrom(bufs [][]float32) []*interp.Mem {
	out := make([]*interp.Mem, len(bufs))
	for i, b := range bufs {
		m := interp.NewMem(int64(len(b)) * 4)
		for j, v := range b {
			m.SetFloat32(j, v)
		}
		out[i] = m
	}
	return out
}

func readBack(mems []*interp.Mem) [][]float32 {
	out := make([][]float32, len(mems))
	for i, m := range mems {
		out[i] = m.Float32Slice()
	}
	return out
}

func compare(t *testing.T, flowName, kernel string, got, want [][]float32) {
	t.Helper()
	for ai := range want {
		for i := range want[ai] {
			if got[ai][i] != want[ai][i] {
				t.Fatalf("%s/%s: arg %d elem %d: flow %g vs reference %g",
					kernel, flowName, ai, i, got[ai][i], want[ai][i])
			}
		}
	}
}

// TestBothFlowsFunctionallyCorrect is the co-simulation stand-in: every
// kernel, both flows, executed and compared bit-exactly against the float32
// Go reference.
func TestBothFlowsFunctionallyCorrect(t *testing.T) {
	tgt := hls.DefaultTarget()
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			want := k.NewBuffers(s)
			polybench.Init(want)
			k.Ref(s, want)

			// Adaptor flow.
			ares, err := AdaptorFlow(k.Build(s), k.Name, Directives{}, tgt)
			if err != nil {
				t.Fatalf("adaptor flow: %v", err)
			}
			bufs := k.NewBuffers(s)
			polybench.Init(bufs)
			mems := memsFrom(bufs)
			if err := Execute(ares.LLVM, k.Name, mems); err != nil {
				t.Fatalf("adaptor flow execute: %v", err)
			}
			compare(t, "adaptor", k.Name, readBack(mems), want)

			// C++ flow.
			cres, err := CxxFlow(k.Build(s), k.Name, Directives{}, tgt)
			if err != nil {
				t.Fatalf("cxx flow: %v", err)
			}
			bufs2 := k.NewBuffers(s)
			polybench.Init(bufs2)
			mems2 := memsFrom(bufs2)
			if err := Execute(cres.LLVM, k.Name, mems2); err != nil {
				t.Fatalf("cxx flow execute: %v", err)
			}
			compare(t, "cxx", k.Name, readBack(mems2), want)
		})
	}
}

// TestFlowsComparableLatency checks the paper's headline claim shape: the
// two flows' latencies track each other within a factor band on every
// kernel.
func TestFlowsComparableLatency(t *testing.T) {
	tgt := hls.DefaultTarget()
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, _ := k.SizeOf("MINI")
			a, err := AdaptorFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1}, tgt)
			if err != nil {
				t.Fatalf("adaptor: %v", err)
			}
			c, err := CxxFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1}, tgt)
			if err != nil {
				t.Fatalf("cxx: %v", err)
			}
			ratio := float64(a.Report.LatencyCycles) / float64(c.Report.LatencyCycles)
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("latency ratio out of comparable band: adaptor=%d cxx=%d (%.2fx)",
					a.Report.LatencyCycles, c.Report.LatencyCycles, ratio)
			}
		})
	}
}

func TestRawFlowRejectedEverywhere(t *testing.T) {
	for _, k := range polybench.All() {
		s, _ := k.SizeOf("MINI")
		vs, lm, err := RawFlow(k.Build(s), k.Name, Directives{})
		if err != nil {
			t.Fatalf("%s: raw flow errored: %v", k.Name, err)
		}
		if len(vs) == 0 {
			t.Errorf("%s: raw translated IR unexpectedly passed the HLS gate", k.Name)
		}
		if lm == nil {
			t.Errorf("%s: raw flow lost the module", k.Name)
		}
	}
}

func TestAdaptorReportPopulated(t *testing.T) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("MINI")
	res, err := AdaptorFlow(k.Build(s), k.Name, Directives{}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptor == nil || res.Adaptor.Total() == 0 {
		t.Error("adaptor fix report empty")
	}
	if res.Phases["translate"] == 0 && res.Phases["adaptor"] == 0 {
		t.Error("phase timing not recorded")
	}
}

func TestDirectivesChangeOutcome(t *testing.T) {
	k := polybench.Get("gemm")
	tgt := hls.DefaultTarget()
	base, err := AdaptorFlow(k.Build(mustSize(t, k, "MINI")), k.Name, Directives{}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := AdaptorFlow(k.Build(mustSize(t, k, "MINI")), k.Name, Directives{
		Pipeline: true, II: 1, Unroll: 2,
		Partition: &passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0},
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Report.LatencyCycles >= base.Report.LatencyCycles {
		t.Errorf("directives should reduce latency: %d -> %d",
			base.Report.LatencyCycles, opt.Report.LatencyCycles)
	}
	// And the optimized design must still be correct.
	s := mustSize(t, k, "MINI")
	want := k.NewBuffers(s)
	polybench.Init(want)
	k.Ref(s, want)
	bufs := k.NewBuffers(s)
	polybench.Init(bufs)
	mems := memsFrom(bufs)
	if err := Execute(opt.LLVM, k.Name, mems); err != nil {
		t.Fatal(err)
	}
	compare(t, "adaptor-optimized", k.Name, readBack(mems), want)
}

func mustSize(t *testing.T, k *polybench.Kernel, name string) polybench.Size {
	t.Helper()
	s, err := k.SizeOf(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCxxFlowKeepsSource(t *testing.T) {
	k := polybench.Get("jacobi2d")
	s, _ := k.SizeOf("MINI")
	res, err := CxxFlow(k.Build(s), k.Name, Directives{Pipeline: true, II: 1}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if res.CSource == "" {
		t.Error("C++ source not captured")
	}
	if res.Report == nil || len(res.Report.Loops) == 0 {
		t.Error("synthesis report missing")
	}
}

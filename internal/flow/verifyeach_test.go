package flow

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/polybench"
)

// TestVerifyEachAllKernelsBothFlows is the pass-pipeline property test: every
// polybench kernel through both full flows with VerifyEach on must report
// zero invariant violations — i.e. every pass of both pass managers, and
// every inter-layer boundary, leaves the IR satisfying the verifier and the
// lint invariant subset. Directives are enabled so the directive-carrying
// paths are exercised too.
func TestVerifyEachAllKernelsBothFlows(t *testing.T) {
	kernels := polybench.All()
	if len(kernels) < 18 {
		t.Fatalf("expected the full 18-kernel suite, got %d", len(kernels))
	}
	tgt := hls.DefaultTarget()
	d := Directives{Pipeline: true, II: 1}
	opts := Options{VerifyEach: true}
	for _, k := range kernels {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := AdaptorFlowWith(k.Build(s), k.Name, d, tgt, opts); err != nil {
				t.Errorf("adaptor flow with VerifyEach: %v", err)
			}
			if _, err := CxxFlowWith(k.Build(s), k.Name, d, tgt, opts); err != nil {
				t.Errorf("cxx flow with VerifyEach: %v", err)
			}
		})
	}
}

// TestVerifyEachMatchesDefault asserts VerifyEach changes only checking, not
// results: reports from both modes are identical.
func TestVerifyEachMatchesDefault(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	tgt := hls.DefaultTarget()
	d := Directives{Pipeline: true, II: 1}
	plain, err := AdaptorFlow(k.Build(s), k.Name, d, tgt)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := AdaptorFlowWith(k.Build(s), k.Name, d, tgt, Options{VerifyEach: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report.String() != checked.Report.String() {
		t.Errorf("VerifyEach changed the synthesis report:\n--- default\n%s\n--- verify-each\n%s",
			plain.Report, checked.Report)
	}
}

// TestPrepareLLVMClean asserts the pre-check entry point produces a module
// the full lint suite finds no errors in (warnings and infos are allowed).
func TestPrepareLLVMClean(t *testing.T) {
	k := polybench.Get("gemm")
	s, err := k.SizeOf("MINI")
	if err != nil {
		t.Fatal(err)
	}
	lm, err := PrepareLLVM(k.Build(s), k.Name, Directives{Pipeline: true, II: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds := lint.Module(lm, lint.Options{}); ds.HasErrors() {
		t.Errorf("prepared module has lint errors:\n%s", ds.Text())
	}
	if _, ok := lint.MinPipelineFloor(lm, k.Name, hls.DefaultTarget()); !ok {
		t.Error("gemm must expose a pipeline feasibility floor")
	}
}

package flow

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/hls"
	"repro/internal/incr"
	"repro/internal/llvm"
	lparser "repro/internal/llvm/parser"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/resilience"
)

// memoRun threads the incremental store through one flow run as a byte
// cursor over the pipeline's evolving artifact. bytes always holds the
// canonical text of the current pipeline state (MLIR through the MLIR
// stages, then LLVM, with an HLS-C++ interlude in the baseline flow); when
// a unit replays from the store the live IR object is deliberately left
// behind (stale) and only re-materialized — one parse — before the first
// unit that actually has to execute, or at the end of the flow. A fully
// warm run therefore costs one hash per unit plus a single final parse.
type memoRun struct {
	store incr.Store
	// cfg is the flow-wide key salt: flow kind, top function, and the
	// verification options. Verification activation must participate in
	// the key because replayed units skip their after-pass checks — a
	// record is only valid under the exact checking regime that ran when
	// it was stored.
	cfg string

	bytes string
	// hash is incr.HashBytes(bytes), threaded through replays via the
	// records' stored digests so a warm run never re-hashes a full
	// artifact to derive the next key.
	hash  string
	stale bool

	hits, misses int
}

// memoEnabled reports whether this run can memoize. Observation hooks and
// chaos injection need live execution of every unit: an Observer must see
// real per-unit IR (bisection replay depends on it), and a FaultHook or
// InjectMiscompile must actually perturb a running unit.
func (o Options) memoEnabled() bool {
	return o.Incremental && o.Observer == nil && o.FaultHook == nil && o.InjectMiscompile == ""
}

// incrStore resolves the record store for this run.
func (o Options) incrStore() incr.Store {
	if o.IncrStore != nil {
		return o.IncrStore
	}
	return incr.Default
}

// newMemoRun starts the cursor on a pristine module. With an IncrSeed the
// module is never printed — the cursor starts from the seed's digest
// (domain-separated from content digests) and bytes stay empty until the
// first replay or live print fills them. Without a seed, the one Print
// here doubles as the pristine snapshot the lazy semantic oracle captures.
func newMemoRun(store incr.Store, flowName, top string, opts Options, m *mlir.Module) *memoRun {
	cfg := fmt.Sprintf("flow=%s|top=%s|verify=%t|sem=%t|ulp=%d",
		flowName, top, opts.VerifyEach, opts.VerifySemantics, opts.SemanticULP)
	if opts.IncrSeed != "" {
		return &memoRun{store: store, cfg: cfg, hash: incr.HashBytes("seed:" + opts.IncrSeed)}
	}
	bytes := m.Print()
	return &memoRun{store: store, cfg: cfg, bytes: bytes, hash: incr.HashBytes(bytes)}
}

// step describes one memoizable pipeline unit to the cursor.
type step struct {
	stage, pass, params string
	// materialize brings the live IR object up to date with the cursor
	// bytes before a live run; nil when the unit consumes the cursor text
	// directly (the C frontend reads the emitted source).
	materialize func(src string) error
	// print renders the live object after a live run; nil when the unit
	// does not rewrite the artifact (synthesis, whose product is only the
	// report in the record's Aux).
	print func() string
	// auxOut encodes the unit's non-IR product after a live run; auxIn
	// applies a stored record's product on replay.
	auxOut func() (json.RawMessage, error)
	auxIn  func(rec incr.Record) error
}

// do runs one unit through the cursor: a store hit replays the record and
// returns replayed=true without executing run; a miss materializes the
// live IR if it lags the cursor, executes run, and stores the outcome.
func (r *memoRun) do(s step, run func() error) (replayed bool, err error) {
	key := incr.UnitKey(r.cfg, s.stage+"/"+s.pass, s.params, r.hash)
	if rec, ok := r.store.Get(key); ok && r.replay(s, rec) {
		r.hits++
		return true, nil
	}
	if r.stale && s.materialize != nil {
		if err := s.materialize(r.bytes); err != nil {
			return false, fmt.Errorf("incr: materialize before %s/%s: %w", s.stage, s.pass, err)
		}
		r.stale = false
	}
	if err := run(); err != nil {
		return false, err
	}
	rec := incr.Record{}
	if s.print != nil {
		r.bytes = s.print()
		r.hash = incr.HashBytes(r.bytes)
		r.stale = false
		rec.IR, rec.Hash = r.bytes, r.hash
	}
	if s.auxOut != nil {
		aux, err := s.auxOut()
		if err != nil {
			// The unit ran fine; only the record is unencodable. Skip
			// storing rather than failing the flow.
			r.misses++
			return false, nil
		}
		rec.Aux = aux
	}
	// A failed persist degrades durability, never the flow: the store
	// counts the error (engine stats surface it as StoreErrors) and the
	// unit simply recomputes next time.
	_ = r.store.Put(key, rec)
	r.misses++
	return false, nil
}

// replay applies one stored record. A record that cannot be applied (torn
// Aux, empty IR where the unit rewrites it) reports false and the unit
// runs live instead — corruption degrades to a miss, never an error.
func (r *memoRun) replay(s step, rec incr.Record) bool {
	if s.print != nil && (rec.IR == "" || rec.Hash == "") {
		return false
	}
	if s.auxIn != nil {
		if err := s.auxIn(rec); err != nil {
			return false
		}
	}
	if s.print != nil {
		r.bytes, r.hash = rec.IR, rec.Hash
		r.stale = true
	}
	return true
}

// finalModules caches parsed (and, where requested, verified) final
// modules by content digest, so repeated warm runs of the same design
// point skip the one parse a replayed tail otherwise costs. Entries are
// shared across Results: under Incremental, a Result's LLVM module must be
// treated as read-only — the same sharing contract the engine's whole-flow
// cache already imposes on its hits.
var finalModules sync.Map // digest|verify -> *llvm.Module

// finalize re-materializes the live LLVM module after a replayed tail so
// the flow's Result carries a real module. verify mirrors the LLVM pass
// manager's unconditional end-of-pipeline verification, which a replayed
// tail skipped (the adaptor flow sets it; the baseline flow never had a
// post-frontend verify to mirror). The pointer is replaced, never filled
// in place: a cache hit aliases a shared module that must stay pristine.
func (r *memoRun) finalize(lmp **llvm.Module, verify bool) error {
	if !r.stale && *lmp != nil {
		return nil
	}
	ck := fmt.Sprintf("%s|v=%t", r.hash, verify)
	if m, ok := finalModules.Load(ck); ok {
		*lmp = m.(*llvm.Module)
		r.stale = false
		return nil
	}
	p, err := lparser.Parse(r.bytes)
	if err != nil {
		return fmt.Errorf("incr: materialize final module: %w", err)
	}
	if verify {
		if err := p.Verify(); err != nil {
			return resilience.NewFailure("llvm-opt", "verify", resilience.KindVerify, err)
		}
	}
	m, _ := finalModules.LoadOrStore(ck, p)
	*lmp = m.(*llvm.Module)
	r.stale = false
	return nil
}

// mlirMaterializer parses cursor bytes back into the existing module
// object in place, so every closure holding the module sees the new state.
func mlirMaterializer(m *mlir.Module) func(src string) error {
	return func(src string) error {
		p, err := parser.Parse(src)
		if err != nil {
			return err
		}
		m.Op = p.Op
		return nil
	}
}

// llvmMaterializer is mlirMaterializer for the LLVM cursor phase. The
// double pointer lets it both create the module the first time (a fully
// replayed translate left it nil) and refill it in place afterwards.
func llvmMaterializer(lmp **llvm.Module) func(src string) error {
	return func(src string) error {
		p, err := lparser.Parse(src)
		if err != nil {
			return err
		}
		if *lmp == nil {
			*lmp = p
		} else {
			**lmp = *p
		}
		return nil
	}
}

// synthesisStep describes the synthesis unit to the cursor: it rewrites
// nothing (the cursor bytes stand), and its whole product is the HLS
// report carried in the record's Aux. The target's cost-model parameters
// are the unit's key parameters — two DSE sweeps over different targets
// never share a schedule.
func synthesisStep(lmp **llvm.Module, tgt hls.Target, rep **hls.Report) step {
	return step{
		stage: "synthesis", pass: "synthesis",
		params:      tgt.Canon(),
		materialize: llvmMaterializer(lmp),
		auxOut: func() (json.RawMessage, error) {
			if *rep == nil {
				return nil, fmt.Errorf("no synthesis report")
			}
			return json.Marshal(*rep)
		},
		auxIn: func(rec incr.Record) error {
			if len(rec.Aux) == 0 {
				return fmt.Errorf("record lacks synthesis report")
			}
			r := new(hls.Report)
			if err := json.Unmarshal(rec.Aux, r); err != nil {
				return err
			}
			*rep = r
			return nil
		},
	}
}

// memoUnit is unit() under memoization: the unit is keyed on the cursor
// and may replay instead of executing. With no memo cursor it falls back
// to the plain resilience wrapper. snap feeds the Observer, which is
// mutually exclusive with memoization (memoEnabled).
func memoUnit(opts Options, flowName string, s step, snap func() string, fn func() error) error {
	if opts.memo == nil {
		return unit(opts, flowName, s.stage, s.pass, snap, fn)
	}
	if err := resilience.Interrupted(opts.Ctx, s.stage, s.pass); err != nil {
		return err
	}
	body := func() error {
		_, err := opts.memo.do(s, fn)
		return err
	}
	if opts.Isolate {
		return resilience.Guard(s.stage, s.pass, body)
	}
	return body()
}

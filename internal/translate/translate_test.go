package translate

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/mlir/passes"
)

func buildGemm(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F64())
	_, args := m.AddFunc("gemm", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("gemm")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, k *mlir.Value) {
				a := b.AffineLoad(args[0], i, k)
				x := b.AffineLoad(args[1], k, j)
				c := b.AffineLoad(args[2], i, j)
				s := b.AddF(c, b.MulF(a, x))
				b.AffineStore(s, args[2], i, j)
			})
		})
	})
	b.Return()
	return m
}

// lowerAll runs the full MLIR lowering pipeline.
func lowerAll(t *testing.T, m *mlir.Module) {
	t.Helper()
	if err := lower.AffineToSCF(m); err != nil {
		t.Fatalf("affine->scf: %v", err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatalf("scf->cf: %v", err)
	}
}

// descriptorArgs builds the interp arguments for the expanded descriptor ABI.
func descriptorArgs(f *llvm.Function, mems []*interp.Mem) []interp.Arg {
	var args []interp.Arg
	mi := 0
	for i := 0; i < len(f.Params); {
		p := f.Params[i]
		if strings.HasSuffix(p.Name, "_base") {
			// Group: base, aligned, offset, sizes..., strides...
			m := mems[mi]
			mi++
			args = append(args, interp.PtrArg(m, 0), interp.PtrArg(m, 0), interp.IntArg(0))
			i += 3
			for i < len(f.Params) && (strings.Contains(f.Params[i].Name, "_size") ||
				strings.Contains(f.Params[i].Name, "_stride")) {
				args = append(args, interp.IntArg(0))
				i++
			}
			continue
		}
		args = append(args, interp.IntArg(0))
		i++
	}
	return args
}

func TestTranslateGemmMatchesMLIRInterp(t *testing.T) {
	const n = 5
	// Reference: MLIR-level interpretation.
	refMod := buildGemm(n)
	ty := mlir.MemRef([]int64{n, n}, mlir.F64())
	A, B, C := mlir.NewMemBuf(ty), mlir.NewMemBuf(ty), mlir.NewMemBuf(ty)
	r := rand.New(rand.NewSource(11))
	for i := range A.F {
		A.F[i] = r.Float64()
		B.F[i] = r.Float64()
		C.F[i] = 0
	}
	if err := refMod.Interpret("gemm", A, B, C); err != nil {
		t.Fatal(err)
	}

	// Flow: lower + translate + LLVM interp.
	m := buildGemm(n)
	lowerAll(t, m)
	lm, err := Translate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := lm.FindFunc("gemm")
	if f == nil {
		t.Fatal("gemm missing in LLVM module")
	}

	mkMem := func(src []float64) *interp.Mem {
		mem := interp.NewMem(int64(len(src)) * 8)
		for i, v := range src {
			mem.SetFloat64(i, v)
		}
		return mem
	}
	r2 := rand.New(rand.NewSource(11))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = r2.Float64()
		b[i] = r2.Float64()
	}
	ma, mb, mc := mkMem(a), mkMem(b), mkMem(c)
	machine := interp.NewMachine(lm)
	if _, _, err := machine.Run(context.Background(), "gemm", descriptorArgs(f, []*interp.Mem{ma, mb, mc})...); err != nil {
		t.Fatalf("llvm interp: %v", err)
	}
	got := mc.Float64Slice()
	for i := range got {
		d := got[i] - C.F[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("element %d: llvm %g vs mlir %g", i, got[i], C.F[i])
		}
	}
}

func TestTranslateDescriptorABI(t *testing.T) {
	m := buildGemm(4)
	lowerAll(t, m)
	lm, err := Translate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := lm.FindFunc("gemm")
	// 3 memrefs of rank 2: 3 * (3 + 2*2) = 21 params.
	if len(f.Params) != 21 {
		t.Errorf("descriptor ABI should expand to 21 params, got %d", len(f.Params))
	}
	if f.Attrs[MemRefArgAttr+"0"] != "4x4xf64" {
		t.Errorf("memref shape attr missing: %v", f.Attrs)
	}
	// Address arithmetic must be linearized: geps have a single index.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpGEP && len(in.Args) != 2 {
				t.Errorf("expected linearized gep (1 index), got %d", len(in.Args)-1)
			}
		}
	}
	// Modern flavor, opaque pointers in print.
	txt := lm.Print()
	if !strings.Contains(txt, "ptr %arg0_aligned") {
		t.Errorf("expected opaque pointer params:\n%s", txt)
	}
	if strings.Contains(txt, "double*") {
		t.Error("modern module should not print typed pointers")
	}
}

func TestTranslateLoopMetadata(t *testing.T) {
	m := buildGemm(4)
	if err := passes.PipelineInnermost(1).Run(m); err != nil {
		t.Fatal(err)
	}
	lowerAll(t, m)
	lm, err := Translate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, b := range lm.FindFunc("gemm").Blocks {
		for _, in := range b.Instrs {
			if in.Loop != nil {
				count++
				if !in.Loop.Pipeline || in.Loop.II != 1 {
					t.Errorf("loop metadata content wrong: %+v", in.Loop)
				}
			}
		}
	}
	if count != 1 {
		t.Errorf("want 1 latch with loop metadata, got %d", count)
	}
	txt := lm.Print()
	if !strings.Contains(txt, "llvm.loop.pipeline.enable") {
		t.Error("printed module missing loop metadata")
	}
}

func TestTranslateAllocBecomesMalloc(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F32())
	_, args := m.AddFunc("scratch", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("scratch")))
	tmp := b.Alloc(mlir.MemRef([]int64{8}, mlir.F32()))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(v, tmp, i)
	})
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(tmp, i)
		b.AffineStore(v, args[0], i)
	})
	b.Return()
	lowerAll(t, m)
	lm, err := Translate(m, Options{EmitLifetimeMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	txt := lm.Print()
	if !strings.Contains(txt, "call ptr @malloc") {
		t.Errorf("memref.alloc should lower to malloc:\n%s", txt)
	}
	if !strings.Contains(txt, "llvm.lifetime.start") {
		t.Error("lifetime markers requested but missing")
	}
}

func TestTranslateMathIntrinsics(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4}, mlir.F64())
	_, args := m.AddFunc("roots", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("roots")))
	b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		s := b.Create(mlir.OpMathSqrt, []*mlir.Value{v}, []*mlir.Type{mlir.F64()}).Result(0)
		b.AffineStore(s, args[0], i)
	})
	b.Return()
	lowerAll(t, m)
	lm, err := Translate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lm.Print(), "@llvm.sqrt.f64") {
		t.Error("math.sqrt should become llvm.sqrt.f64 intrinsic")
	}
	// And it executes correctly.
	mem := interp.NewMem(32)
	for i := 0; i < 4; i++ {
		mem.SetFloat64(i, float64((i+1)*(i+1)))
	}
	f := lm.FindFunc("roots")
	machine := interp.NewMachine(lm)
	if _, _, err := machine.Run(context.Background(), "roots", descriptorArgs(f, []*interp.Mem{mem})...); err != nil {
		t.Fatal(err)
	}
	got := mem.Float64Slice()
	for i := 0; i < 4; i++ {
		if got[i] != float64(i+1) {
			t.Errorf("sqrt result %d = %g", i, got[i])
		}
	}
}

package translate

import (
	"context"
	"strings"
	"testing"

	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
)

// TestTranslateScalarOpsExecute covers the scalar op translations: min/max,
// select, float compare, conversions — verified by execution.
func TestTranslateScalarOpsExecute(t *testing.T) {
	m := mlir.NewModule()
	fty := mlir.MemRef([]int64{8}, mlir.F64())
	_, args := m.AddFunc("scalars", []*mlir.Type{fty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("scalars")))

	i0 := b.ConstantIndex(0)
	i1 := b.ConstantIndex(1)
	i2 := b.ConstantIndex(2)
	i3 := b.ConstantIndex(3)
	i4 := b.ConstantIndex(4)
	i5 := b.ConstantIndex(5)
	i7 := b.ConstantIndex(7)

	// min/max via index values, stored as converted doubles.
	mn := b.MinSI(i3, i7) // 3
	mx := b.MaxSI(i3, i7) // 7
	mnI := b.IndexCast(mn, mlir.I64())
	mxI := b.IndexCast(mx, mlir.I64())
	b.AffineStore(b.SIToFP(mnI, mlir.F64()), args[0], i0)
	b.AffineStore(b.SIToFP(mxI, mlir.F64()), args[0], i1)

	// fcmp + select.
	a := b.ConstantFloat(2.5, mlir.F64())
	c := b.ConstantFloat(1.5, mlir.F64())
	gt := b.CmpF(mlir.PredOGT, a, c)
	b.AffineStore(b.Select(gt, a, c), args[0], i2)

	// negf, subf, divf.
	b.AffineStore(b.NegF(a), args[0], i3)
	b.AffineStore(b.SubF(a, c), args[0], i4)
	b.AffineStore(b.DivF(a, c), args[0], i5)
	b.Return()

	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	lm, err := Translate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	txt := lm.Print()
	for _, want := range []string{"select", "fcmp ogt", "fneg", "fsub", "fdiv", "sitofp"} {
		if !strings.Contains(txt, want) {
			t.Errorf("translation missing %q:\n%s", want, txt)
		}
	}

	mem := interp.NewMem(64)
	f := lm.FindFunc("scalars")
	var cArgs []interp.Arg
	for range f.Params {
		cArgs = append(cArgs, interp.PtrArg(mem, 0))
	}
	// Descriptor ABI: fill properly (base, aligned, offset, size, stride).
	cArgs = []interp.Arg{interp.PtrArg(mem, 0), interp.PtrArg(mem, 0),
		interp.IntArg(0), interp.IntArg(8), interp.IntArg(1)}
	mc := interp.NewMachine(lm)
	if _, _, err := mc.Run(context.Background(), "scalars", cArgs...); err != nil {
		t.Fatal(err)
	}
	got := mem.Float64Slice()
	want := []float64{3, 7, 2.5, -2.5, 1, 2.5 / 1.5}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("slot %d = %g, want %g", i, got[i], w)
		}
	}
}

func TestTranslateScalarParams(t *testing.T) {
	// Scalar (non-memref) parameters translate to value params.
	m := mlir.NewModule()
	fty := mlir.MemRef([]int64{4}, mlir.F64())
	_, args := m.AddFunc("scale", []*mlir.Type{fty, mlir.F64()}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("scale")))
	b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(b.MulF(v, args[1]), args[0], i)
	})
	b.Return()
	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	lm, err := Translate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := lm.FindFunc("scale")
	// 5 descriptor params + 1 scalar.
	if len(f.Params) != 6 {
		t.Fatalf("want 6 params, got %d", len(f.Params))
	}
	last := f.Params[5]
	if last.Ty.Kind != llvm.KindDouble {
		t.Errorf("scalar param type = %s", last.Ty)
	}
	mem := interp.NewMem(32)
	for i := 0; i < 4; i++ {
		mem.SetFloat64(i, float64(i))
	}
	mc := interp.NewMachine(lm)
	if _, _, err := mc.Run(context.Background(), "scale",
		interp.PtrArg(mem, 0), interp.PtrArg(mem, 0), interp.IntArg(0),
		interp.IntArg(4), interp.IntArg(1), interp.FloatArg(3)); err != nil {
		t.Fatal(err)
	}
	got := mem.Float64Slice()
	for i := 0; i < 4; i++ {
		if got[i] != float64(3*i) {
			t.Errorf("scale[%d] = %g", i, got[i])
		}
	}
}

func TestTranslateRejectsUnknownOp(t *testing.T) {
	m := mlir.NewModule()
	_, _ = m.AddFunc("bad", nil, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("bad")))
	b.Block().Append(mlir.NewOp("exotic.thing", nil, nil))
	b.Return()
	if _, err := Translate(m, Options{}); err == nil {
		t.Error("unknown op must fail translation")
	}
}

func TestTranslateCall(t *testing.T) {
	m := mlir.NewModule()
	fty := mlir.MemRef([]int64{2}, mlir.F64())
	_, hargs := m.AddFunc("helper", []*mlir.Type{fty}, nil)
	hb := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("helper")))
	two := hb.ConstantFloat(2, mlir.F64())
	hb.AffineStore(two, hargs[0], hb.ConstantIndex(0))
	hb.Return()

	_, margs := m.AddFunc("main", []*mlir.Type{fty}, nil)
	mb := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("main")))
	mb.Call("helper", nil, margs[0])
	mb.Return()

	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	lm, err := Translate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lm.Print(), "call void @helper") {
		t.Errorf("call not translated:\n%s", lm.Print())
	}
}

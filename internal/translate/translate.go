// Package translate converts cf-level MLIR into LLVM IR the way upstream
// mlir-translate does, faithfully reproducing the artifacts that make the
// raw output unreadable for HLS toolchains and that the adaptor
// (internal/core) must legalize:
//
//   - memref arguments expand into the full descriptor ABI
//     (base ptr, aligned ptr, offset, sizes..., strides...), with addresses
//     computed as linearized i64 arithmetic on the aligned pointer;
//   - memref.alloc becomes a call to @malloc plus lifetime intrinsics;
//   - math ops become modern llvm.* intrinsics;
//   - the module uses opaque pointers (FlavorModern);
//   - loop directives surface only as !llvm.loop metadata on latch branches.
package translate

import (
	"fmt"
	"strings"

	"repro/internal/llvm"
	"repro/internal/mlir"
)

// Options configures translation.
type Options struct {
	// EmitLifetimeMarkers adds llvm.lifetime.start/end around local
	// allocations, as modern toolchains do (the HLS gate rejects them).
	EmitLifetimeMarkers bool
}

// Translate converts a cf-level MLIR module to LLVM IR.
func Translate(m *mlir.Module, opts Options) (*llvm.Module, error) {
	out := llvm.NewModule("mlir-translated")
	for _, f := range m.Funcs() {
		lf, err := translateFunc(f, opts)
		if err != nil {
			return nil, fmt.Errorf("translate @%s: %w", mlir.FuncName(f), err)
		}
		out.AddFunc(lf)
	}
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("translate: produced invalid IR: %w", err)
	}
	return out, nil
}

// MemRefArgAttr is the function-attribute key prefix recording the original
// memref type of an expanded argument group ("memref.arg<N>" = "4x4xf64").
const MemRefArgAttr = "memref.arg"

// DescriptorParams returns the parameter count one memref of the given rank
// expands into: base, aligned, offset, rank sizes, rank strides.
func DescriptorParams(rank int) int { return 3 + 2*rank }

// EncodeShape renders a static memref shape + element for the attr payload.
func EncodeShape(t *mlir.Type) string {
	var parts []string
	for _, d := range t.Shape {
		parts = append(parts, fmt.Sprintf("%d", d))
	}
	parts = append(parts, t.Elem.String())
	return strings.Join(parts, "x")
}

type xlate struct {
	opts Options
	f    *llvm.Function
	b    *llvm.Builder

	vmap map[*mlir.Value]llvm.Value
	bmap map[*mlir.Block]*llvm.Block

	// memrefs maps an MLIR memref value to its aligned pointer and type.
	memrefs map[*mlir.Value]*memrefInfo
}

type memrefInfo struct {
	aligned llvm.Value
	ty      *mlir.Type // original memref type
}

func elemLLVM(t *mlir.Type) *llvm.Type {
	switch {
	case t.IsFloat() && t.Width == 32:
		return llvm.FloatT()
	case t.IsFloat():
		return llvm.DoubleT()
	case t.IsIndex():
		return llvm.I64()
	case t.IsInt():
		return llvm.IntT(t.Width)
	}
	panic("translate: unsupported element type " + t.String())
}

func scalarLLVM(t *mlir.Type) *llvm.Type {
	if t.IsMemRef() {
		panic("translate: memref in scalar position")
	}
	return elemLLVM(t)
}

func translateFunc(f *mlir.Op, opts Options) (*llvm.Function, error) {
	name := mlir.FuncName(f)
	entry := mlir.FuncBody(f)

	lf := llvm.NewFunction(name, llvm.Void())
	x := &xlate{
		opts:    opts,
		f:       lf,
		vmap:    map[*mlir.Value]llvm.Value{},
		bmap:    map[*mlir.Block]*llvm.Block{},
		memrefs: map[*mlir.Value]*memrefInfo{},
	}

	// Expand the signature.
	for i, a := range entry.Args {
		if a.Type().IsMemRef() {
			mt := a.Type()
			if !mt.HasStaticShape() {
				return nil, fmt.Errorf("dynamic memref arguments unsupported")
			}
			rank := len(mt.Shape)
			base := &llvm.Param{Name: fmt.Sprintf("arg%d_base", i), Ty: llvm.Ptr(elemLLVM(mt.Elem))}
			aligned := &llvm.Param{Name: fmt.Sprintf("arg%d_aligned", i), Ty: llvm.Ptr(elemLLVM(mt.Elem))}
			offset := &llvm.Param{Name: fmt.Sprintf("arg%d_offset", i), Ty: llvm.I64()}
			lf.Params = append(lf.Params, base, aligned, offset)
			for d := 0; d < rank; d++ {
				lf.Params = append(lf.Params, &llvm.Param{
					Name: fmt.Sprintf("arg%d_size%d", i, d), Ty: llvm.I64()})
			}
			for d := 0; d < rank; d++ {
				lf.Params = append(lf.Params, &llvm.Param{
					Name: fmt.Sprintf("arg%d_stride%d", i, d), Ty: llvm.I64()})
			}
			lf.SetAttr(fmt.Sprintf("%s%d", MemRefArgAttr, i), EncodeShape(mt))
			x.memrefs[a] = &memrefInfo{aligned: aligned, ty: mt}
			x.vmap[a] = aligned
		} else {
			p := &llvm.Param{Name: fmt.Sprintf("arg%d", i), Ty: scalarLLVM(a.Type())}
			lf.Params = append(lf.Params, p)
			x.vmap[a] = p
		}
	}
	// Carry function-level HLS attributes through as LLVM attributes.
	for k, v := range f.Attrs {
		switch k {
		case mlir.AttrSymName, mlir.AttrResultTypes:
		default:
			lf.SetAttr(k, v.String())
		}
	}

	// Create LLVM blocks for every MLIR block.
	region := f.Regions[0]
	for bi, mb := range region.Blocks {
		bname := fmt.Sprintf("bb%d", bi)
		if bi == 0 {
			bname = "entry"
		}
		lb := lf.AddBlock(bname)
		x.bmap[mb] = lb
		// Non-entry block args become phis (filled in the edge pass).
		if bi > 0 {
			for ai, arg := range mb.Args {
				phi := &llvm.Instr{Op: llvm.OpPhi, Ty: scalarLLVM(arg.Type()),
					Name: fmt.Sprintf("phi%d_%d", bi, ai)}
				lb.Append(phi)
				x.vmap[arg] = phi
			}
		}
	}

	x.b = llvm.NewBuilder(lf)

	// Translate instructions.
	for _, mb := range region.Blocks {
		x.b.SetBlock(x.bmap[mb])
		for _, op := range mb.Ops {
			if err := x.op(op); err != nil {
				return nil, err
			}
		}
	}

	// Fill phi incomings from branch operands.
	for _, mb := range region.Blocks {
		term := mb.Terminator()
		if term == nil {
			continue
		}
		from := x.bmap[mb]
		addIncoming := func(dest *mlir.Block, args []*mlir.Value) {
			lb := x.bmap[dest]
			for ai, a := range args {
				phi := lb.Instrs[ai]
				phi.AddIncoming(x.val(a), from)
			}
			// Destinations with args but no operands on this edge are
			// invalid; the MLIR verifier would have caught that upstream.
		}
		switch term.Name {
		case mlir.OpBr:
			addIncoming(term.Succs[0], term.Operands)
		case mlir.OpCondBr:
			tc, _ := term.IntAttr(mlir.AttrTrueCount)
			addIncoming(term.Succs[0], term.Operands[1:1+tc])
			addIncoming(term.Succs[1], term.Operands[1+tc:])
		}
	}
	return lf, nil
}

func (x *xlate) val(v *mlir.Value) llvm.Value {
	lv, ok := x.vmap[v]
	if !ok {
		panic("translate: unmapped value")
	}
	return lv
}

// address emits the linearized address computation for a static memref
// access, returning an element pointer:
//
//	%lin = i0*stride0 + i1*stride1 + ...   (constant strides, row-major)
//	%ptr = getelementptr elem, ptr %aligned, i64 %lin
func (x *xlate) address(mem *mlir.Value, idxs []*mlir.Value) (llvm.Value, *llvm.Type, error) {
	info := x.memrefs[mem]
	if info == nil {
		return nil, nil, fmt.Errorf("access to unknown memref")
	}
	mt := info.ty
	elem := elemLLVM(mt.Elem)
	// Row-major strides.
	strides := make([]int64, len(mt.Shape))
	s := int64(1)
	for d := len(mt.Shape) - 1; d >= 0; d-- {
		strides[d] = s
		s *= mt.Shape[d]
	}
	var lin llvm.Value = llvm.CI(llvm.I64(), 0)
	for d, idx := range idxs {
		iv := x.val(idx)
		term := iv
		if strides[d] != 1 {
			term = x.b.Mul(iv, llvm.CI(llvm.I64(), strides[d]))
		}
		if ci, ok := lin.(*llvm.ConstInt); ok && ci.Val == 0 {
			lin = term
		} else {
			lin = x.b.Add(lin, term)
		}
	}
	gep := x.b.GEP(elem, info.aligned, lin)
	return gep, elem, nil
}

func (x *xlate) op(op *mlir.Op) error {
	b := x.b
	switch op.Name {
	case mlir.OpConstant:
		switch a := op.Attrs[mlir.AttrValue].(type) {
		case mlir.IntAttr:
			ty := scalarLLVM(op.Result(0).Type())
			x.vmap[op.Result(0)] = llvm.CI(ty, a.Value)
		case mlir.FloatAttr:
			x.vmap[op.Result(0)] = llvm.CF(scalarLLVM(op.Result(0).Type()), a.Value)
		}
		return nil

	case mlir.OpAddI, mlir.OpSubI, mlir.OpMulI, mlir.OpDivSI, mlir.OpRemSI:
		opc := map[string]llvm.Opcode{
			mlir.OpAddI: llvm.OpAdd, mlir.OpSubI: llvm.OpSub, mlir.OpMulI: llvm.OpMul,
			mlir.OpDivSI: llvm.OpSDiv, mlir.OpRemSI: llvm.OpSRem,
		}[op.Name]
		x.vmap[op.Result(0)] = b.Binary(opc, x.val(op.Operands[0]), x.val(op.Operands[1]))
		return nil

	case mlir.OpMinSI, mlir.OpMaxSI:
		pred := "slt"
		if op.Name == mlir.OpMaxSI {
			pred = "sgt"
		}
		l, r := x.val(op.Operands[0]), x.val(op.Operands[1])
		c := b.ICmp(pred, l, r)
		x.vmap[op.Result(0)] = b.Select(c, l, r)
		return nil

	case mlir.OpAddF, mlir.OpSubF, mlir.OpMulF, mlir.OpDivF:
		opc := map[string]llvm.Opcode{
			mlir.OpAddF: llvm.OpFAdd, mlir.OpSubF: llvm.OpFSub,
			mlir.OpMulF: llvm.OpFMul, mlir.OpDivF: llvm.OpFDiv,
		}[op.Name]
		x.vmap[op.Result(0)] = b.Binary(opc, x.val(op.Operands[0]), x.val(op.Operands[1]))
		return nil

	case mlir.OpNegF:
		x.vmap[op.Result(0)] = b.FNeg(x.val(op.Operands[0]))
		return nil

	case mlir.OpCmpI:
		pred, _ := op.StringAttr(mlir.AttrPredicate)
		x.vmap[op.Result(0)] = b.ICmp(pred, x.val(op.Operands[0]), x.val(op.Operands[1]))
		return nil

	case mlir.OpCmpF:
		pred, _ := op.StringAttr(mlir.AttrPredicate)
		x.vmap[op.Result(0)] = b.FCmp(pred, x.val(op.Operands[0]), x.val(op.Operands[1]))
		return nil

	case mlir.OpSelect:
		x.vmap[op.Result(0)] = b.Select(x.val(op.Operands[0]), x.val(op.Operands[1]), x.val(op.Operands[2]))
		return nil

	case mlir.OpIndexCast:
		// index == i64 in this lowering; cast is a no-op or trunc/sext.
		src := x.val(op.Operands[0])
		dst := scalarLLVM(op.Result(0).Type())
		if src.Type().Equal(dst) {
			x.vmap[op.Result(0)] = src
		} else if dst.Bits < src.Type().Bits {
			x.vmap[op.Result(0)] = b.Cast(llvm.OpTrunc, src, dst)
		} else {
			x.vmap[op.Result(0)] = b.Cast(llvm.OpSExt, src, dst)
		}
		return nil

	case mlir.OpSIToFP:
		x.vmap[op.Result(0)] = b.Cast(llvm.OpSIToFP, x.val(op.Operands[0]), scalarLLVM(op.Result(0).Type()))
		return nil

	case mlir.OpFPToSI:
		x.vmap[op.Result(0)] = b.Cast(llvm.OpFPToSI, x.val(op.Operands[0]), scalarLLVM(op.Result(0).Type()))
		return nil

	case mlir.OpExtF:
		x.vmap[op.Result(0)] = b.Cast(llvm.OpFPExt, x.val(op.Operands[0]), scalarLLVM(op.Result(0).Type()))
		return nil

	case mlir.OpTruncF:
		x.vmap[op.Result(0)] = b.Cast(llvm.OpFPTrunc, x.val(op.Operands[0]), scalarLLVM(op.Result(0).Type()))
		return nil

	case mlir.OpMathSqrt, mlir.OpMathExp:
		ty := scalarLLVM(op.Result(0).Type())
		intr := "llvm.sqrt."
		if op.Name == mlir.OpMathExp {
			intr = "llvm.exp."
		}
		suffix := "f64"
		if ty.Kind == llvm.KindFloat {
			suffix = "f32"
		}
		x.vmap[op.Result(0)] = b.Call(intr+suffix, ty, x.val(op.Operands[0]))
		return nil

	case mlir.OpAlloc:
		// Heap path, as upstream: call @malloc, lifetime markers optional.
		mt := op.Result(0).Type()
		bytes := mt.NumElements() * elemLLVM(mt.Elem).SizeBytes()
		ptr := b.Call("malloc", llvm.Ptr(elemLLVM(mt.Elem)), llvm.CI(llvm.I64(), bytes))
		if x.opts.EmitLifetimeMarkers {
			b.Call("llvm.lifetime.start.p0", llvm.Void(), llvm.CI(llvm.I64(), bytes), ptr)
		}
		x.memrefs[op.Result(0)] = &memrefInfo{aligned: ptr, ty: mt}
		x.vmap[op.Result(0)] = ptr
		return nil

	case mlir.OpAlloca:
		mt := op.Result(0).Type()
		elem := elemLLVM(mt.Elem)
		a := b.Alloca(llvm.ArrayOf(mt.NumElements(), elem))
		// The pointer to element 0 (decay), as clang would produce.
		dec := b.GEP(llvm.ArrayOf(mt.NumElements(), elem), a,
			llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0))
		x.memrefs[op.Result(0)] = &memrefInfo{aligned: dec, ty: mt}
		x.vmap[op.Result(0)] = dec
		return nil

	case mlir.OpDealloc:
		b.Call("free", llvm.Void(), x.val(op.Operands[0]))
		return nil

	case mlir.OpLoad:
		ptr, elem, err := x.address(op.Operands[0], op.Operands[1:])
		if err != nil {
			return err
		}
		x.vmap[op.Result(0)] = x.b.Load(elem, ptr)
		return nil

	case mlir.OpStore:
		ptr, _, err := x.address(op.Operands[1], op.Operands[2:])
		if err != nil {
			return err
		}
		x.b.Store(x.val(op.Operands[0]), ptr)
		return nil

	case mlir.OpBr:
		br := b.Br(x.bmap[op.Succs[0]])
		br.Loop = loopMDFromAttrs(op)
		return nil

	case mlir.OpCondBr:
		cbr := b.CondBr(x.val(op.Operands[0]), x.bmap[op.Succs[0]], x.bmap[op.Succs[1]])
		cbr.Loop = loopMDFromAttrs(op)
		return nil

	case mlir.OpReturn:
		if len(op.Operands) > 0 {
			b.Ret(x.val(op.Operands[0]))
		} else {
			b.Ret(nil)
		}
		return nil

	case mlir.OpCall:
		callee, _ := op.Attrs[mlir.AttrCallee].(mlir.SymbolRefAttr)
		var args []llvm.Value
		for _, a := range op.Operands {
			args = append(args, x.val(a))
		}
		ret := llvm.Void()
		if len(op.Results) > 0 {
			ret = scalarLLVM(op.Result(0).Type())
		}
		call := b.Call(string(callee), ret, args...)
		if len(op.Results) > 0 {
			x.vmap[op.Result(0)] = call
		}
		return nil
	}
	return fmt.Errorf("unsupported op %s at cf level", op.Name)
}

// loopMDFromAttrs converts latch-branch HLS attrs into LLVM loop metadata.
func loopMDFromAttrs(op *mlir.Op) *llvm.LoopMD {
	md := &llvm.LoopMD{}
	has := false
	if op.HasAttr(mlir.AttrPipeline) {
		md.Pipeline = true
		has = true
		if ii, ok := op.IntAttr(mlir.AttrII); ok {
			md.II = int(ii)
		}
	}
	if u, ok := op.IntAttr(mlir.AttrUnroll); ok {
		md.Unroll = int(u)
		has = true
	}
	if op.HasAttr(mlir.AttrFlatten) {
		md.Flatten = true
		has = true
	}
	if !has {
		return nil
	}
	return md
}

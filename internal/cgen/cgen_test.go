package cgen

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cfront"
	"repro/internal/hls"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
	"repro/internal/mlir/passes"
)

func buildGemm(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F32())
	_, args := m.AddFunc("gemm", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("gemm")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, k *mlir.Value) {
				a := b.AffineLoad(args[0], i, k)
				x := b.AffineLoad(args[1], k, j)
				c := b.AffineLoad(args[2], i, j)
				s := b.AddF(c, b.MulF(a, x))
				b.AffineStore(s, args[2], i, j)
			})
		})
	})
	b.Return()
	return m
}

func TestEmitGemmStructure(t *testing.T) {
	m := buildGemm(8)
	pm := passes.NewPassManager().Add(
		passes.PipelineInnermost(1),
		passes.PartitionArg("gemm", 0, passes.PartitionSpec{Kind: "cyclic", Factor: 2, Dim: 0}),
	)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	src, err := Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"void gemm(float v0[8][8], float v1[8][8], float v2[8][8])",
		"#pragma HLS interface ap_memory port=v0",
		"#pragma HLS array_partition variable=v0 cyclic factor=2 dim=1",
		"#pragma HLS pipeline II=1",
		"for (int v",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted C++ missing %q:\n%s", want, src)
		}
	}
}

func TestEmittedCodeCompilesAndMatches(t *testing.T) {
	const n = 5
	// Reference through the MLIR interpreter.
	ref := buildGemm(n)
	ty := mlir.MemRef([]int64{n, n}, mlir.F32())
	A, B, C := mlir.NewMemBuf(ty), mlir.NewMemBuf(ty), mlir.NewMemBuf(ty)
	r := rand.New(rand.NewSource(5))
	for i := range A.F {
		A.F[i] = float64(float32(r.Float64()))
		B.F[i] = float64(float32(r.Float64()))
	}
	if err := ref.Interpret("gemm", A, B, C); err != nil {
		t.Fatal(err)
	}

	// Baseline flow: emit C++, re-frontend, execute.
	src, err := Emit(buildGemm(n))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := cfront.Compile(src, cfront.Options{Top: "gemm"})
	if err != nil {
		t.Fatalf("emitted C++ failed to compile: %v\n%s", err, src)
	}
	mk := func(src []float64) *interp.Mem {
		m := interp.NewMem(int64(len(src)) * 4)
		for i, v := range src {
			m.SetFloat32(i, float32(v))
		}
		return m
	}
	ma, mb, mc := mk(A.F), mk(B.F), mk(make([]float64, n*n))
	machine := interp.NewMachine(lm)
	if _, _, err := machine.Run(context.Background(), "gemm",
		interp.PtrArg(ma, 0), interp.PtrArg(mb, 0), interp.PtrArg(mc, 0)); err != nil {
		t.Fatal(err)
	}
	got := mc.Float32Slice()
	for i := range got {
		if float64(got[i]) != C.F[i] {
			t.Fatalf("element %d: C++ flow %g vs reference %g", i, got[i], C.F[i])
		}
	}
}

func TestEmitStencilNegativeOffsets(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{16}, mlir.F64())
	_, args := m.AddFunc("sten", []*mlir.Type{ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("sten")))
	b.AffineForConst(1, 15, 1, func(b *mlir.Builder, i *mlir.Value) {
		l := b.AffineLoadMap(args[0], mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(-1))), i)
		c := b.AffineLoad(args[0], i)
		r := b.AffineLoadMap(args[0], mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(1))), i)
		s := b.AddF(b.AddF(l, c), r)
		b.AffineStore(s, args[1], i)
	})
	b.Return()

	src, err := Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "- 1)]") {
		t.Errorf("negative stencil offset not emitted:\n%s", src)
	}
	lm, err := cfront.Compile(src, cfront.Options{Top: "sten"})
	if err != nil {
		t.Fatalf("stencil C++ failed to compile: %v\n%s", err, src)
	}
	in := interp.NewMem(16 * 8)
	out := interp.NewMem(16 * 8)
	for i := 0; i < 16; i++ {
		in.SetFloat64(i, float64(i))
	}
	machine := interp.NewMachine(lm)
	if _, _, err := machine.Run(context.Background(), "sten", interp.PtrArg(in, 0), interp.PtrArg(out, 0)); err != nil {
		t.Fatal(err)
	}
	got := out.Float64Slice()
	for i := 1; i < 15; i++ {
		want := float64(i-1) + float64(i) + float64(i+1)
		if got[i] != want {
			t.Errorf("sten[%d] = %g, want %g", i, got[i], want)
		}
	}
}

func TestEmittedFlowSynthesizes(t *testing.T) {
	m := buildGemm(8)
	if err := passes.PipelineInnermost(1).Run(m); err != nil {
		t.Fatal(err)
	}
	src, err := Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := cfront.Compile(src, cfront.Options{Top: "gemm"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hls.Synthesize(lm, "gemm", hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyCycles == 0 || len(rep.Loops) != 3 {
		t.Errorf("implausible synthesis of emitted flow: %s", rep)
	}
}

func TestEmitLocalBuffer(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8}, mlir.F32())
	_, args := m.AddFunc("buf", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("buf")))
	tmp := b.Alloc(mlir.MemRef([]int64{8}, mlir.F32()))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(args[0], i)
		b.AffineStore(v, tmp, i)
	})
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		v := b.AffineLoad(tmp, i)
		b.AffineStore(v, args[0], i)
	})
	b.Return()
	src, err := Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "float v1[8];") {
		t.Errorf("local buffer declaration missing:\n%s", src)
	}
	if _, err := cfront.Compile(src, cfront.Options{Top: "buf"}); err != nil {
		t.Fatalf("local-buffer C++ failed to compile: %v\n%s", err, src)
	}
}

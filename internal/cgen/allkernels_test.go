package cgen

import (
	"context"
	"testing"

	"repro/internal/cfront"
	"repro/internal/llvm/interp"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

// TestEmitAllKernels pushes every polybench kernel through the full baseline
// path — emit C++, re-compile with the C frontend, execute — and compares
// bit-exactly against the float32 reference. This is the C++ flow's
// equivalent of co-simulation across the whole suite, and guards cgen and
// cfront against kernels added later.
func TestEmitAllKernels(t *testing.T) {
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			src, err := Emit(k.Build(s))
			if err != nil {
				t.Fatalf("emit: %v", err)
			}
			lm, err := cfront.Compile(src, cfront.Options{Top: k.Name})
			if err != nil {
				t.Fatalf("compile emitted C++: %v\n%s", err, src)
			}

			want := k.NewBuffers(s)
			polybench.Init(want)
			k.Ref(s, want)

			bufs := k.NewBuffers(s)
			polybench.Init(bufs)
			mems := make([]*interp.Mem, len(bufs))
			args := make([]interp.Arg, len(bufs))
			for i, b := range bufs {
				mems[i] = interp.NewMem(int64(len(b)) * 4)
				for j, v := range b {
					mems[i].SetFloat32(j, v)
				}
				args[i] = interp.PtrArg(mems[i], 0)
			}
			mc := interp.NewMachine(lm)
			if _, _, err := mc.Run(context.Background(), k.Name, args...); err != nil {
				t.Fatalf("execute: %v", err)
			}
			for ai := range want {
				got := mems[ai].Float32Slice()
				for i := range want[ai] {
					if got[i] != want[ai][i] {
						t.Fatalf("arg %d elem %d: %g vs %g", ai, i, got[i], want[ai][i])
					}
				}
			}
		})
	}
}

// TestEmitParsesBackAsValidMLIRInput checks emission determinism: emitting
// the same module twice yields identical text.
func TestEmitDeterministic(t *testing.T) {
	k := polybench.Get("k3mm")
	s, _ := k.SizeOf("MINI")
	m := k.Build(s)
	a, err := Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Emit(m)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("emission is not deterministic")
	}
}

func TestEmitRejectsCFLevel(t *testing.T) {
	// cgen works at the affine level; a cf-level module (multi-block) must
	// be rejected, not silently mis-emitted.
	m := mlir.NewModule()
	f, _ := m.AddFunc("cf", nil, nil)
	r := f.Regions[0]
	b2 := mlir.NewBlock()
	r.AddBlock(b2)
	b := mlir.NewBuilder(r.Entry())
	b.Br(b2)
	b2b := mlir.NewBuilder(b2)
	b2b.Return()
	if _, err := Emit(m); err == nil {
		t.Error("cf-level module must be rejected by the C++ emitter")
	}
}

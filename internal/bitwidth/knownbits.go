// Package bitwidth infers the minimal sound hardware width of every integer
// SSA value: a forward known-bits domain (per-bit zero/one/unknown lattice on
// the generic absint solver) fused with the interval analysis into a
// signedness-aware value range, plus a backward demanded-bits pass over the
// SSA graph that finds the bits downstream consumers can actually observe.
// The HLS resource model's inferred cost mode, the width lints, and the
// `hls-lint -widths` report all consume this package.
//
// Values are modeled at the interpreter's working representation: 64-bit
// two's complement, with every iN value sign-extended to 64 bits (the
// invariant truncInt maintains). A KnownBits fact therefore speaks about the
// representation bit-for-bit, and type truncation re-establishes the
// sign-extension invariant explicitly.
package bitwidth

import (
	"math/bits"

	"repro/internal/llvm"
)

// KnownBits is the per-bit three-valued abstraction of one 64-bit value:
// bit i is known to be zero when Zero has bit i set, known to be one when
// One has it set, and unknown otherwise. Zero & One == 0 always; Top is the
// all-unknown fact {0, 0}.
type KnownBits struct {
	Zero, One uint64
}

// TopKB returns the all-unknown fact.
func TopKB() KnownBits { return KnownBits{} }

// ConstKB returns the exact fact for a constant.
func ConstKB(c int64) KnownBits { return KnownBits{Zero: ^uint64(c), One: uint64(c)} }

// IsConst reports whether every bit is known, returning the value.
func (k KnownBits) IsConst() (int64, bool) {
	if k.Zero|k.One == ^uint64(0) {
		return int64(k.One), true
	}
	return 0, false
}

// Join is the lattice join: a bit stays known only when both facts agree.
func (k KnownBits) Join(o KnownBits) KnownBits {
	return KnownBits{Zero: k.Zero & o.Zero, One: k.One & o.One}
}

// Meet intersects two facts about the same value. A conflict (a bit known
// both zero and one) means the program point is unreachable; the caller
// detects it via ok=false.
func (k KnownBits) Meet(o KnownBits) (KnownBits, bool) {
	m := KnownBits{Zero: k.Zero | o.Zero, One: k.One | o.One}
	return m, m.Zero&m.One == 0
}

// Equal reports fact equality.
func (k KnownBits) Equal(o KnownBits) bool { return k == o }

// String renders the fact MSB-first with '?' for unknown bits, compressing
// the leading run (the 64-bit representation's replicated top) to one
// character followed by '*': ConstKB(5) prints "0b0*101", top is "0b?*".
func (k KnownBits) String() string {
	ch := func(i int) byte {
		m := uint64(1) << uint(i)
		switch {
		case k.Zero&m != 0:
			return '0'
		case k.One&m != 0:
			return '1'
		}
		return '?'
	}
	top := ch(63)
	i := 62
	for i >= 0 && ch(i) == top {
		i--
	}
	out := []byte{'0', 'b', top, '*'}
	for j := i; j >= 0; j-- {
		out = append(out, ch(j))
	}
	return string(out)
}

// SignKnownZero reports whether the representation is known nonnegative.
func (k KnownBits) SignKnownZero() bool { return k.Zero&(1<<63) != 0 }

// SignKnownOne reports whether the representation is known negative.
func (k KnownBits) SignKnownOne() bool { return k.One&(1<<63) != 0 }

// Range returns the tightest signed interval consistent with the fact: the
// minimum sets every unknown bit to match "as negative as possible" (sign
// bit one when allowed, other unknown bits zero), the maximum the reverse.
func (k KnownBits) Range() (lo, hi int64) {
	const sign = uint64(1) << 63
	lo64 := k.One
	if k.Zero&sign == 0 {
		lo64 |= sign
	}
	hi64 := ^k.Zero
	if k.One&sign == 0 {
		hi64 &^= sign
	}
	return int64(lo64), int64(hi64)
}

// TruncTy re-establishes the sign-extended representation after an operation
// whose result has type ty: bits at and above the type width become copies
// of the (possibly unknown) sign bit, bit ty.Bits-1.
func (k KnownBits) TruncTy(ty *llvm.Type) KnownBits {
	if ty == nil || !ty.IsInt() || ty.Bits <= 0 || ty.Bits >= 64 {
		return k
	}
	n := uint(ty.Bits)
	low := uint64(1)<<n - 1
	high := ^low
	signBit := uint64(1) << (n - 1)
	out := KnownBits{Zero: k.Zero & low, One: k.One & low}
	switch {
	case k.Zero&signBit != 0:
		out.Zero |= high
	case k.One&signBit != 0:
		out.One |= high
	}
	return out
}

// zextMask returns the fact viewed as the type-width unsigned value: bits at
// and above the width become known zero (what a logical shift or zext sees).
func (k KnownBits) zextMask(ty *llvm.Type) KnownBits {
	if ty == nil || !ty.IsInt() || ty.Bits <= 0 || ty.Bits >= 64 {
		return k
	}
	low := uint64(1)<<uint(ty.Bits) - 1
	return KnownBits{Zero: k.Zero&low | ^low, One: k.One & low}
}

// And returns the fact for k & o.
func (k KnownBits) And(o KnownBits) KnownBits {
	return KnownBits{Zero: k.Zero | o.Zero, One: k.One & o.One}
}

// Or returns the fact for k | o.
func (k KnownBits) Or(o KnownBits) KnownBits {
	return KnownBits{Zero: k.Zero & o.Zero, One: k.One | o.One}
}

// Xor returns the fact for k ^ o.
func (k KnownBits) Xor(o KnownBits) KnownBits {
	return KnownBits{
		Zero: k.Zero&o.Zero | k.One&o.One,
		One:  k.Zero&o.One | k.One&o.Zero,
	}
}

// Not returns the fact for ^k.
func (k KnownBits) Not() KnownBits { return KnownBits{Zero: k.One, One: k.Zero} }

// Add returns the fact for k + o, simulating the ripple carry bit by bit
// with a possible-carry set: a result bit is known exactly when both operand
// bits and every feeding carry are known.
func (k KnownBits) Add(o KnownBits) KnownBits {
	return addWithCarry(k, o, carryZero)
}

// Sub returns the fact for k - o (as k + ^o + 1).
func (k KnownBits) Sub(o KnownBits) KnownBits {
	return addWithCarry(k, o.Not(), carryOne)
}

// possible-carry sets for the ripple simulation.
const (
	carryZero = 1 << iota // carry may be 0
	carryOne              // carry may be 1
)

func addWithCarry(a, b KnownBits, carry int) KnownBits {
	var out KnownBits
	for i := uint(0); i < 64; i++ {
		m := uint64(1) << i
		// Possible values of each operand bit.
		av := bitSet(a, m)
		bv := bitSet(b, m)
		var sum0, sum1 bool // can the result bit be 0 / 1?
		next := 0
		for _, x := range av {
			for _, y := range bv {
				if carry&carryZero != 0 {
					s := x + y
					if s&1 == 0 {
						sum0 = true
					} else {
						sum1 = true
					}
					if s >= 2 {
						next |= carryOne
					} else {
						next |= carryZero
					}
				}
				if carry&carryOne != 0 {
					s := x + y + 1
					if s&1 == 0 {
						sum0 = true
					} else {
						sum1 = true
					}
					if s >= 2 {
						next |= carryOne
					} else {
						next |= carryZero
					}
				}
			}
		}
		if sum0 && !sum1 {
			out.Zero |= m
		}
		if sum1 && !sum0 {
			out.One |= m
		}
		carry = next
	}
	return out
}

// bitSet returns the possible values {0}, {1}, or {0,1} of the masked bit.
func bitSet(k KnownBits, m uint64) []int {
	switch {
	case k.Zero&m != 0:
		return []int{0}
	case k.One&m != 0:
		return []int{1}
	}
	return []int{0, 1}
}

// Mul returns the fact for k * o: exact when both are constants; otherwise
// the low bits stay known as far as both operands' contiguous known-low runs
// reach (the product modulo 2^m depends only on the operands modulo 2^m),
// and the trailing known zeros of both operands accumulate.
func (k KnownBits) Mul(o KnownBits) KnownBits {
	if a, ok := k.IsConst(); ok {
		if b, ok := o.IsConst(); ok {
			return ConstKB(a * b)
		}
	}
	knownLow := func(x KnownBits) uint {
		return uint(bits.TrailingZeros64(^(x.Zero | x.One)))
	}
	m := knownLow(k)
	if n := knownLow(o); n < m {
		m = n
	}
	var out KnownBits
	if m > 0 {
		if m > 64 {
			m = 64
		}
		var low uint64
		if m == 64 {
			low = ^uint64(0)
		} else {
			low = uint64(1)<<m - 1
		}
		prod := (k.One & low) * (o.One & low)
		out.One = prod & low
		out.Zero = ^prod & low
	}
	// Trailing zeros multiply through even past the known-low run.
	tz := bits.TrailingZeros64(k.One | ^k.Zero)
	tz += bits.TrailingZeros64(o.One | ^o.Zero)
	if tz >= 64 {
		return ConstKB(0)
	}
	out.Zero |= uint64(1)<<uint(tz) - 1
	out.Zero &^= out.One
	return out
}

// Shl returns the fact for k << o under the result type ty.
func (k KnownBits) Shl(o KnownBits, ty *llvm.Type) KnownBits {
	if s, ok := o.IsConst(); ok && s >= 0 && s < 64 {
		return KnownBits{
			Zero: k.Zero<<uint(s) | (uint64(1)<<uint(s) - 1),
			One:  k.One << uint(s),
		}.TruncTy(ty)
	}
	// Unknown amount: shifting left never clears the trailing zeros already
	// present (a nonnegative shift only adds more).
	tz := bits.TrailingZeros64(k.One | ^k.Zero)
	if tz >= 64 {
		return ConstKB(0)
	}
	return KnownBits{Zero: uint64(1)<<uint(tz) - 1}
}

// LShr returns the fact for k >>u o on the ty-width unsigned value.
func (k KnownBits) LShr(o KnownBits, ty *llvm.Type) KnownBits {
	u := k.zextMask(ty)
	if s, ok := o.IsConst(); ok && s >= 0 && s < 64 {
		return KnownBits{
			Zero: u.Zero>>uint(s) | ^(^uint64(0) >> uint(s)),
			One:  u.One >> uint(s),
		}.TruncTy(ty)
	}
	return TopKB().TruncTy(ty)
}

// AShr returns the fact for k >>s o: both masks shift arithmetically, so a
// known sign propagates into the vacated bits and an unknown sign leaves
// them unknown.
func (k KnownBits) AShr(o KnownBits) KnownBits {
	if s, ok := o.IsConst(); ok && s >= 0 && s < 64 {
		return KnownBits{
			Zero: uint64(int64(k.Zero) >> uint(s)),
			One:  uint64(int64(k.One) >> uint(s)),
		}
	}
	// Unknown amount: only a known sign survives (the result converges
	// toward it).
	var out KnownBits
	if k.SignKnownZero() {
		out.Zero = 1 << 63
	}
	if k.SignKnownOne() {
		out.One = 1 << 63
	}
	return out
}

// ZExt returns the fact after zero-extending from fromTy: the representation
// becomes the type-width unsigned value.
func (k KnownBits) ZExt(fromTy *llvm.Type) KnownBits { return k.zextMask(fromTy) }

// SExt is the identity on the sign-extended representation.
func (k KnownBits) SExt() KnownBits { return k }

// Trunc re-truncates the representation to the destination type.
func (k KnownBits) Trunc(toTy *llvm.Type) KnownBits { return k.TruncTy(toTy) }

// Bool returns the fact for an i1-producing comparison: bits 1..63 known
// zero, bit 0 unknown (the interpreter materializes icmp results as 0/1
// without sign extension).
func Bool() KnownBits { return KnownBits{Zero: ^uint64(1)} }

package bitwidth

import (
	"math/rand"
	"testing"

	"repro/internal/llvm"
)

// truncRep mirrors the interpreter's truncInt: values live sign-extended to
// 64 bits.
func truncRep(x int64, bits int) int64 {
	if bits <= 0 || bits >= 64 {
		return x
	}
	return x << uint(64-bits) >> uint(64-bits)
}

// lshrRep mirrors the interpreter's OpLShr: view as type-width unsigned,
// shift in zeros, re-establish the representation.
func lshrRep(x int64, s int, bits int) int64 {
	u := uint64(x)
	if bits < 64 {
		u &= uint64(1)<<uint(bits) - 1
	}
	return truncRep(int64(u>>uint(s)), bits)
}

// TestKnownBitsTable is the known-answer table: one row per transfer,
// including the sign-extension behavior of negative constants.
func TestKnownBitsTable(t *testing.T) {
	i8 := llvm.IntT(8)
	i32 := llvm.I32()
	lowByteUnknown := KnownBits{Zero: ^uint64(0xFF)} // value in [0, 255]
	cases := []struct {
		name string
		got  KnownBits
		want KnownBits
	}{
		{"const-negative", ConstKB(-1), KnownBits{Zero: 0, One: ^uint64(0)}},
		{"trunc-negative-const", ConstKB(-1).Trunc(i8), ConstKB(-1)},
		{"trunc-wraps-sign", ConstKB(200).Trunc(i8), ConstKB(-56)},
		{"add-const", ConstKB(3).Add(ConstKB(5)).TruncTy(i32), ConstKB(8)},
		{"add-overflow-signext", ConstKB(100).Add(ConstKB(28)).TruncTy(i8), ConstKB(-128)},
		{"add-partial-carryfree",
			KnownBits{Zero: ^uint64(0xF)}.Add(ConstKB(16)).TruncTy(i32),
			KnownBits{Zero: ^uint64(0x1F), One: 0x10}},
		{"sub-negative-result", ConstKB(5).Sub(ConstKB(9)).TruncTy(i32), ConstKB(-4)},
		{"mul-negative-const", ConstKB(-3).Mul(ConstKB(7)).TruncTy(i8), ConstKB(-21)},
		{"mul-trailing-zeros",
			KnownBits{Zero: 3}.Mul(KnownBits{Zero: 1}),
			KnownBits{Zero: 7}},
		{"and-mask", TopKB().And(ConstKB(7)), KnownBits{Zero: ^uint64(7)}},
		{"or-negative-mask", TopKB().Or(ConstKB(-16)), KnownBits{One: ^uint64(15)}},
		{"xor-not-of-nonneg",
			lowByteUnknown.Xor(ConstKB(-1)),
			KnownBits{One: ^uint64(0xFF)}},
		{"not-zero", ConstKB(0).Not(), ConstKB(-1)},
		{"shl-negative-const", ConstKB(-1).Shl(ConstKB(4), i8), ConstKB(-16)},
		{"shl-unknown-amount-keeps-evenness",
			KnownBits{Zero: 3}.Shl(TopKB(), i32),
			KnownBits{Zero: 3}},
		{"lshr-clears-sign", ConstKB(-1).LShr(ConstKB(1), i8), ConstKB(127)},
		{"ashr-keeps-sign", ConstKB(-128).AShr(ConstKB(3)), ConstKB(-16)},
		{"ashr-unknown-amount-sign-survives",
			KnownBits{One: 1 << 63}.AShr(TopKB()),
			KnownBits{One: 1 << 63}},
		{"zext-negative", ConstKB(-1).ZExt(i8), ConstKB(255)},
		{"sext-identity", ConstKB(-5).SExt(), ConstKB(-5)},
		{"bool", Bool(), KnownBits{Zero: ^uint64(1)}},
	}
	for _, c := range cases {
		if !c.got.Equal(c.want) {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

func TestKnownBitsRange(t *testing.T) {
	i8 := llvm.IntT(8)
	check := func(name string, k KnownBits, wantLo, wantHi int64) {
		t.Helper()
		lo, hi := k.Range()
		if lo != wantLo || hi != wantHi {
			t.Errorf("%s: range [%d, %d], want [%d, %d]", name, lo, hi, wantLo, wantHi)
		}
	}
	check("const", ConstKB(-42), -42, -42)
	check("bool", Bool(), 0, 1)
	// The fact domain cannot express "high bits replicate bit 7", so the
	// type top is the full lattice top; the interval side supplies the type
	// bound when the two fuse.
	check("i8-top", typeTopKB(i8), -1<<63, 1<<63-1)
	check("nonneg-byte", KnownBits{Zero: ^uint64(0xFF)}, 0, 255)
	check("neg-mask", KnownBits{One: ^uint64(15)}, -16, -1)
	check("top", TopKB(), -1<<63, 1<<63-1)
}

func TestKnownBitsString(t *testing.T) {
	cases := []struct {
		k    KnownBits
		want string
	}{
		{ConstKB(5), "0b0*101"},
		{ConstKB(-1), "0b1*"},
		{TopKB(), "0b?*"},
		{Bool(), "0b0*?"},
		{KnownBits{Zero: ^uint64(0xF), One: 0x8}, "0b0*1???"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.k, got, c.want)
		}
	}
}

// contains reports whether concrete representation value x is consistent
// with fact k.
func contains(k KnownBits, x int64) bool {
	return uint64(x)&k.Zero == 0 && ^uint64(x)&k.One == 0
}

// checkTransfers builds partially-known facts around concrete values a, b
// (maskA/maskB select the bits left unknown) and asserts, per opcode and
// type width, that the transfer's result fact contains the result the
// interpreter would compute.
func checkTransfers(t *testing.T, a, b int64, maskA, maskB uint64) {
	t.Helper()
	for _, bitsN := range []int{8, 32, 64} {
		ty := llvm.IntT(bitsN)
		av := truncRep(a, bitsN)
		bv := truncRep(b, bitsN)
		ka := KnownBits{Zero: ^uint64(av) &^ maskA, One: uint64(av) &^ maskA}
		kb := KnownBits{Zero: ^uint64(bv) &^ maskB, One: uint64(bv) &^ maskB}
		s := int(uint64(b) % 64)
		ks := ConstKB(int64(s))
		rows := []struct {
			op   string
			fact KnownBits
			conc int64
		}{
			{"add", ka.Add(kb).TruncTy(ty), truncRep(av+bv, bitsN)},
			{"sub", ka.Sub(kb).TruncTy(ty), truncRep(av-bv, bitsN)},
			{"mul", ka.Mul(kb).TruncTy(ty), truncRep(av*bv, bitsN)},
			{"and", ka.And(kb).TruncTy(ty), truncRep(av&bv, bitsN)},
			{"or", ka.Or(kb).TruncTy(ty), truncRep(av|bv, bitsN)},
			{"xor", ka.Xor(kb).TruncTy(ty), truncRep(av^bv, bitsN)},
			{"shl-const", ka.Shl(ks, ty), truncRep(av<<uint(s), bitsN)},
			{"shl-unknown", ka.Shl(kb, ty), truncRep(av<<uint(bv&63), bitsN)},
			{"lshr-const", ka.LShr(ks, ty), lshrRep(av, s, bitsN)},
			{"ashr-const", ka.AShr(ks).TruncTy(ty), truncRep(av>>uint(s), bitsN)},
			{"ashr-unknown", ka.AShr(kb).TruncTy(ty), truncRep(av>>uint(bv&63), bitsN)},
			{"trunc-i8", ka.Trunc(llvm.IntT(8)), truncRep(av, 8)},
			{"zext", ka.ZExt(ty), int64(uint64(av) & lowMask(bitsN))},
			{"sext", ka.SExt(), av},
		}
		for _, r := range rows {
			if r.fact.Zero&r.fact.One != 0 {
				t.Fatalf("%s/i%d: invariant broken, Zero&One != 0 in %s (a=%d b=%d maskA=%#x maskB=%#x)",
					r.op, bitsN, r.fact, a, b, maskA, maskB)
			}
			if !contains(r.fact, r.conc) {
				t.Fatalf("%s/i%d: fact %s excludes concrete result %d (a=%d b=%d maskA=%#x maskB=%#x)",
					r.op, bitsN, r.fact, r.conc, a, b, maskA, maskB)
			}
		}
		// Range must also contain the concrete value.
		if lo, hi := ka.Range(); av < lo || av > hi {
			t.Fatalf("i%d: Range [%d, %d] excludes %d", bitsN, lo, hi, av)
		}
	}
}

// TestKnownBitsCrossCheck drives the transfer/concrete cross-check over a
// deterministic random sample.
func TestKnownBitsCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := int64(rng.Uint64()), int64(rng.Uint64())
		maskA, maskB := rng.Uint64()&rng.Uint64(), rng.Uint64()&rng.Uint64()
		if i%4 == 0 {
			maskA, maskB = 0, 0 // fully-known operands: results must be exact too
		}
		checkTransfers(t, a, b, maskA, maskB)
	}
}

// FuzzKnownBitsTransfers is the fuzz entry over the same property: no
// transfer may ever exclude the concretely computed result.
func FuzzKnownBitsTransfers(f *testing.F) {
	f.Add(int64(0), int64(0), uint64(0), uint64(0))
	f.Add(int64(-1), int64(1), uint64(0), uint64(0))
	f.Add(int64(-128), int64(63), uint64(0xFF), uint64(0))
	f.Add(int64(1)<<62, int64(-1)<<32, ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, a, b int64, maskA, maskB uint64) {
		checkTransfers(t, a, b, maskA, maskB)
	})
}

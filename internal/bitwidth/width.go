package bitwidth

import (
	"fmt"
	"math/bits"

	"repro/internal/absint"
	"repro/internal/llvm"
)

// Width is the minimal sound hardware width of a value: Bits datapath bits,
// interpreted two's-complement when Signed. An unsigned width W covers
// [0, 2^W-1]; a signed width W covers [-2^(W-1), 2^(W-1)-1].
type Width struct {
	Bits   int
	Signed bool
}

func (w Width) String() string {
	if w.Signed {
		return fmt.Sprintf("s%d", w.Bits)
	}
	return fmt.Sprintf("u%d", w.Bits)
}

// Contains reports whether the dynamic (sign-extended representation) value
// x fits the width — the predicate the soundness gate asserts.
func (w Width) Contains(x int64) bool {
	if w.Bits >= 64 {
		return true
	}
	if w.Signed {
		lo := -(int64(1) << uint(w.Bits-1))
		hi := int64(1)<<uint(w.Bits-1) - 1
		return x >= lo && x <= hi
	}
	return x >= 0 && x <= int64(1)<<uint(w.Bits)-1
}

// Analysis fuses the three per-function analyses — forward known bits,
// forward intervals, backward demanded bits — into the width oracle.
type Analysis struct {
	F        *llvm.Function
	kb       *KnownBitsResult
	iv       *absint.IntervalResult
	demanded map[*llvm.Instr]uint64
}

// Analyze runs the bitwidth analyses over f.
func Analyze(f *llvm.Function) *Analysis {
	return &Analysis{
		F:        f,
		kb:       Known(f),
		iv:       absint.Intervals(f),
		demanded: DemandedBits(f),
	}
}

// WidthAt returns the forward-sound width of v observed at block b: the
// tightest signed range consistent with both the known-bits fact and the
// interval, converted to a width. This is the containment-sound width — the
// soundness gate asserts every dynamic value stays inside it.
func (a *Analysis) WidthAt(b *llvm.Block, v llvm.Value) Width {
	lo, hi, live := a.rangeAt(b, v)
	if !live {
		return Width{Bits: 1, Signed: false} // unreachable: any width holds
	}
	return widthOfRange(lo, hi, intBits(v.Type()))
}

// ValueWidth returns the forward-sound width of an instruction's result at
// its definition.
func (a *Analysis) ValueWidth(in *llvm.Instr) Width {
	return a.WidthAt(in.Parent, in)
}

// KnownAt returns the solved known-bits fact of v at block b.
func (a *Analysis) KnownAt(b *llvm.Block, v llvm.Value) KnownBits { return a.kb.At(b, v) }

// IntervalAt returns the solved interval of v at block b.
func (a *Analysis) IntervalAt(b *llvm.Block, v llvm.Value) absint.Interval { return a.iv.At(b, v) }

// Demanded returns the demanded-bits mask of an instruction's result.
func (a *Analysis) Demanded(in *llvm.Instr) uint64 {
	d, ok := a.demanded[in]
	if !ok && in.HasResult() {
		return 0
	}
	return d
}

// HWWidth returns the hardware width of an instruction's result: the
// forward-sound width further narrowed by the bits downstream consumers can
// observe. This is a datapath fact, not a value fact — the dynamic value may
// exceed it — so only the cost model consumes it.
func (a *Analysis) HWWidth(in *llvm.Instr) Width {
	w := a.ValueWidth(in)
	d, tracked := a.demanded[in]
	if !tracked {
		return w
	}
	if d == 0 {
		// Never demanded: the result is dead; one wire suffices.
		return Width{Bits: 1, Signed: w.Signed}
	}
	if db := 64 - bits.LeadingZeros64(d); db < w.Bits {
		w.Bits = db
	}
	return w
}

// RangeAt returns the fused signed range of v at block b; ok=false means the
// point is unreachable (or the meet of the two analyses is empty).
func (a *Analysis) RangeAt(b *llvm.Block, v llvm.Value) (lo, hi int64, ok bool) {
	return a.rangeAt(b, v)
}

// rangeAt intersects the known-bits range with the interval. live=false
// means the program point is unreachable or the meet is empty.
func (a *Analysis) rangeAt(b *llvm.Block, v llvm.Value) (lo, hi int64, live bool) {
	klo, khi := a.kb.At(b, v).Range()
	iv := a.iv.At(b, v)
	if iv.Empty {
		return 0, 0, false
	}
	if iv.Lo > klo {
		klo = iv.Lo
	}
	if iv.Hi < khi {
		khi = iv.Hi
	}
	if klo > khi {
		return 0, 0, false
	}
	return klo, khi, true
}

// widthOfRange converts a signed range to a width, capped at the declared
// type width: nonnegative ranges become unsigned, anything else signed.
func widthOfRange(lo, hi int64, typeBits int) Width {
	var w Width
	if lo >= 0 {
		w = Width{Bits: maxInt(1, bitsFor(uint64(hi))), Signed: false}
	} else {
		n := signedBitsFor(lo)
		if m := signedBitsFor(hi); m > n {
			n = m
		}
		w = Width{Bits: n, Signed: true}
	}
	if w.Bits > typeBits {
		w.Bits = typeBits
		// At full declared width the signed form is the sound default for a
		// range that reaches negative values; nonnegative full-width stays
		// unsigned (e.g. an i1 comparison result).
	}
	return w
}

// bitsFor returns the bits needed to represent u unsigned (0 for u == 0).
func bitsFor(u uint64) int { return 64 - bits.LeadingZeros64(u) }

// signedBitsFor returns the minimal N with -2^(N-1) <= x < 2^(N-1).
func signedBitsFor(x int64) int {
	if x >= 0 {
		return bitsFor(uint64(x)) + 1
	}
	return bitsFor(^uint64(x)) + 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OpWidth returns the effective datapath width the operator of in must be
// built at: the comparator sees its operands in full, data-carrying ops are
// exactly as wide as their (demand-narrowed) result — sound for the modular
// ops the cost model widths, since an N-bit ring op on truncated operands
// reproduces the N-bit result.
func (a *Analysis) OpWidth(in *llvm.Instr) int {
	switch in.Op {
	case llvm.OpICmp:
		w := 1
		for _, arg := range in.Args {
			if arg.Type() != nil && arg.Type().IsInt() {
				if ow := a.WidthAt(in.Parent, arg); ow.Bits > w {
					w = ow.Bits
				}
			}
		}
		return w
	}
	if in.Ty == nil || !in.Ty.IsInt() {
		return intBits(in.Ty)
	}
	return a.HWWidth(in).Bits
}

// OpWidths computes the per-instruction effective widths of every operator
// in f — the map the inferred cost model consumes.
func OpWidths(f *llvm.Function) map[*llvm.Instr]int {
	a := Analyze(f)
	out := map[*llvm.Instr]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpICmp || (in.Ty != nil && in.Ty.IsInt()) {
				out[in] = a.OpWidth(in)
			}
		}
	}
	return out
}

// ValueReport is one value's row of the deterministic width report.
type ValueReport struct {
	Name     string `json:"name"`
	Block    string `json:"block"`
	TypeBits int    `json:"type_bits"`
	Known    string `json:"known"`
	Interval string `json:"interval"`
	Width    string `json:"width"`
	HWBits   int    `json:"hw_bits"`
	Demanded string `json:"demanded"`
}

// Report lists every named integer value of f in block/instruction order —
// the stable basis of the widths golden and `hls-lint -widths`.
func (a *Analysis) Report() []ValueReport {
	var out []ValueReport
	for _, b := range a.F.Blocks {
		for _, in := range b.Instrs {
			if !in.HasResult() || in.Ty == nil || !in.Ty.IsInt() || in.Name == "" {
				continue
			}
			out = append(out, ValueReport{
				Name:     in.Name,
				Block:    b.Name,
				TypeBits: intBits(in.Ty),
				Known:    a.kb.At(b, in).String(),
				Interval: a.iv.At(b, in).String(),
				Width:    a.ValueWidth(in).String(),
				HWBits:   a.HWWidth(in).Bits,
				Demanded: fmt.Sprintf("%#x", a.Demanded(in)),
			})
		}
	}
	return out
}

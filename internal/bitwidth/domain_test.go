package bitwidth

import (
	"testing"

	"repro/internal/llvm"
)

// TestKnownBitsBranchRefinement checks the masked-compare edge refinement:
// inside `if (x & 7) == 5`, the low three bits of x are known.
func TestKnownBitsBranchRefinement(t *testing.T) {
	i64 := llvm.I64()
	f := llvm.NewFunction("masked", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := f.AddBlock("entry")
	yes := f.AddBlock("yes")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	x := f.Params[0]
	masked := b.Binary(llvm.OpAnd, x, llvm.CI(i64, 7))
	cmp := b.ICmp("eq", masked, llvm.CI(i64, 5))
	b.CondBr(cmp, yes, exit)

	b.SetBlock(yes)
	tagged := b.Binary(llvm.OpOr, x, llvm.CI(i64, 2))
	tagged.Name = "tagged"
	b.Br(exit)

	b.SetBlock(exit)
	b.Ret(nil)

	kb := Known(f)
	kx := kb.At(yes, x)
	want := KnownBits{Zero: 2, One: 5} // low bits ...101
	if kx.Zero&7 != want.Zero || kx.One&7 != want.One {
		t.Errorf("x at yes: got %s, want low bits 101", kx)
	}
	// x|2 pins bit 1 too: low three bits become 111.
	kt := kb.At(yes, tagged)
	if kt.One&7 != 7 {
		t.Errorf("x|2 at yes: got %s, want low bits 111", kt)
	}
}

// TestKnownBitsInfeasibleEdge checks that a contradictory masked compare
// kills the edge: (x & 4) == 4 and then x == 0 cannot both hold.
func TestKnownBitsInfeasibleEdge(t *testing.T) {
	i64 := llvm.I64()
	f := llvm.NewFunction("infeasible", llvm.Void(), &llvm.Param{Name: "x", Ty: i64})
	entry := f.AddBlock("entry")
	mid := f.AddBlock("mid")
	dead := f.AddBlock("dead")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	x := f.Params[0]
	masked := b.Binary(llvm.OpAnd, x, llvm.CI(i64, 4))
	cmp := b.ICmp("eq", masked, llvm.CI(i64, 4))
	b.CondBr(cmp, mid, exit)

	b.SetBlock(mid)
	zero := b.ICmp("eq", x, llvm.CI(i64, 0))
	b.CondBr(zero, dead, exit)

	b.SetBlock(dead)
	b.Br(exit)

	b.SetBlock(exit)
	b.Ret(nil)

	kb := Known(f)
	if kb.Reached(dead) {
		t.Errorf("dead block reached: bit 2 of x is pinned to one on this path")
	}
}

// TestDemandedBits checks the backward mask propagation through a
// mask-at-the-bottom chain.
func TestDemandedBits(t *testing.T) {
	i32 := llvm.I32()
	f := llvm.NewFunction("dem", llvm.Void(),
		&llvm.Param{Name: "x", Ty: i32},
		&llvm.Param{Name: "p", Ty: llvm.Ptr(i32)})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	x := f.Params[0]
	sq := b.Mul(x, x)
	inc := b.Add(sq, llvm.CI(i32, 1))
	low := b.Binary(llvm.OpAnd, inc, llvm.CI(i32, 0xFF))
	b.Store(low, f.Params[1])
	hi := b.Binary(llvm.OpLShr, low, llvm.CI(i32, 4))
	b.Store(hi, f.Params[1])
	b.Ret(nil)

	d := DemandedBits(f)
	if got := d[low]; got != demandAll {
		t.Errorf("demanded[and] = %#x, want all (stored)", got)
	}
	// The and masks the store's demand down to the low byte; add/mul demand
	// low bits only (carries travel upward).
	if got := d[inc]; got != 0xFF {
		t.Errorf("demanded[add] = %#x, want 0xff", got)
	}
	if got := d[sq]; got != 0xFF {
		t.Errorf("demanded[mul] = %#x, want 0xff", got)
	}
}

// TestWidthOracle runs the fused analysis end to end: a guarded value gets a
// narrow forward width, and a downstream mask narrows the hardware width of
// producers above it without touching their value width.
func TestWidthOracle(t *testing.T) {
	i32 := llvm.I32()
	f := llvm.NewFunction("widths", llvm.Void(),
		&llvm.Param{Name: "x", Ty: i32},
		&llvm.Param{Name: "p", Ty: llvm.Ptr(i32)})
	entry := f.AddBlock("entry")
	body := f.AddBlock("body")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	x := f.Params[0]
	guard := b.ICmp("ult", x, llvm.CI(i32, 100))
	b.CondBr(guard, body, exit)

	b.SetBlock(body)
	doubled := b.Add(x, x) // [0, 198]: u8
	doubled.Name = "doubled"
	neg := b.Sub(llvm.CI(i32, 0), doubled) // [-198, 0]: s9
	neg.Name = "neg"
	masked := b.Binary(llvm.OpAnd, doubled, llvm.CI(i32, 0xF)) // [0, 15]: u4
	masked.Name = "masked"
	b.Store(masked, f.Params[1])
	b.Store(neg, f.Params[1])
	b.Br(exit)

	b.SetBlock(exit)
	b.Ret(nil)

	a := Analyze(f)
	if w := a.ValueWidth(doubled); w != (Width{Bits: 8, Signed: false}) {
		t.Errorf("doubled: value width %s, want u8", w)
	}
	if w := a.ValueWidth(neg); w != (Width{Bits: 9, Signed: true}) {
		t.Errorf("neg: value width %s, want s9", w)
	}
	if w := a.ValueWidth(masked); w != (Width{Bits: 4, Signed: false}) {
		t.Errorf("masked: value width %s, want u4", w)
	}
	// The and only observes doubled's low 4 bits, but neg observes all 8: the
	// hardware width of doubled is max over consumers as lowDemand sees it.
	if w := a.HWWidth(doubled); w.Bits != 8 {
		t.Errorf("doubled: hw width %d, want 8 (neg still demands low 8)", w.Bits)
	}
	if w := a.OpWidth(guard); w != 32 {
		t.Errorf("guard comparator width %d, want 32 (x unbounded before the guard)", w)
	}

	// Containment: the widths really hold the dynamic values.
	for _, v := range []int64{0, 99} {
		d := truncRep(v+v, 32)
		if !a.ValueWidth(doubled).Contains(d) {
			t.Errorf("u8 does not contain doubled=%d", d)
		}
		if !a.ValueWidth(neg).Contains(-d) {
			t.Errorf("s9 does not contain neg=%d", -d)
		}
	}

	rep := a.Report()
	if len(rep) != 4 { // guard icmp, doubled, neg, masked
		t.Fatalf("report rows = %d, want 4", len(rep))
	}
	if rep[1].Name != "doubled" || rep[1].Width != "u8" {
		t.Errorf("report[1] = %+v, want doubled u8", rep[1])
	}
}

// TestHWWidthDeadAndNarrow checks the demanded-bits side of HWWidth: a value
// only consumed through a narrow mask shrinks, a value never consumed
// collapses to one wire.
func TestHWWidthDeadAndNarrow(t *testing.T) {
	i32 := llvm.I32()
	f := llvm.NewFunction("hw", llvm.Void(),
		&llvm.Param{Name: "x", Ty: i32},
		&llvm.Param{Name: "p", Ty: llvm.Ptr(i32)})
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	x := f.Params[0]
	wide := b.Mul(x, x)
	wide.Name = "wide"
	lowNib := b.Binary(llvm.OpAnd, wide, llvm.CI(i32, 0xF))
	b.Store(lowNib, f.Params[1])
	dead := b.Add(x, llvm.CI(i32, 1))
	dead.Name = "dead"
	b.Ret(nil)

	a := Analyze(f)
	if w := a.ValueWidth(wide); w.Bits != 32 {
		t.Errorf("wide: value width %d, want 32", w.Bits)
	}
	if w := a.HWWidth(wide); w.Bits != 4 {
		t.Errorf("wide: hw width %d, want 4 (only low nibble observed)", w.Bits)
	}
	if w := a.HWWidth(dead); w.Bits != 1 {
		t.Errorf("dead: hw width %d, want 1", w.Bits)
	}

	ws := OpWidths(f)
	if ws[wide] != 4 {
		t.Errorf("OpWidths[wide] = %d, want 4", ws[wide])
	}
}

package bitwidth

import (
	"repro/internal/absint"
	"repro/internal/llvm"
)

// kenv maps integer-typed SSA values to known-bits facts. Missing values are
// implicitly the top of their type (only the sign-extension replication of
// the type width is known). Environments are treated immutably by the
// solver: every producing operation clones.
type kenv struct {
	m map[llvm.Value]KnownBits
}

func newKEnv() *kenv { return &kenv{m: map[llvm.Value]KnownBits{}} }

func (e *kenv) clone() *kenv {
	n := &kenv{m: make(map[llvm.Value]KnownBits, len(e.m))}
	for k, v := range e.m {
		n.m[k] = v
	}
	return n
}

// typeTopKB is the baseline fact of an integer type: nothing known inside
// the width, the sign-extended top replicated (unknown, since the sign is).
func typeTopKB(ty *llvm.Type) KnownBits {
	return TopKB().TruncTy(ty)
}

func (e *kenv) get(v llvm.Value) KnownBits {
	if c, ok := v.(*llvm.ConstInt); ok {
		return ConstKB(c.Val)
	}
	if kb, ok := e.m[v]; ok {
		return kb
	}
	return typeTopKB(v.Type())
}

// kbDomain is the known-bits client of the generic solver. The lattice has
// finite height (known bits only disappear along joins, 128 bits of state),
// so Widen can simply join.
type kbDomain struct{}

func (kbDomain) Entry(f *llvm.Function) *kenv { return newKEnv() }

func (kbDomain) Join(a, b *kenv) *kenv {
	out := a.clone()
	for k, vb := range b.m {
		if va, ok := out.m[k]; ok {
			out.m[k] = va.Join(vb)
		} else {
			// Present on one path only: any dominated use sees exactly that
			// path's value (SSA), so keeping it loses nothing.
			out.m[k] = vb
		}
	}
	return out
}

func (d kbDomain) Widen(at *llvm.Block, prev, next *kenv) *kenv {
	return d.Join(prev, next)
}

func (kbDomain) Equal(a, b *kenv) bool {
	if len(a.m) != len(b.m) {
		return false
	}
	for k, va := range a.m {
		vb, ok := b.m[k]
		if !ok || !va.Equal(vb) {
			return false
		}
	}
	return true
}

func (kbDomain) Transfer(b *llvm.Block, in *kenv) *kenv {
	out := in.clone()
	for _, ins := range b.Instrs {
		if ins.Op == llvm.OpPhi {
			continue // bound per-edge by FlowEdge; the joined in-state holds it
		}
		if ins.Ty == nil || !ins.Ty.IsInt() {
			continue
		}
		out.m[ins] = evalKB(out, ins)
	}
	return out
}

// evalKB computes one integer instruction's known bits under env. Every
// arithmetic result passes through TruncTy, mirroring the interpreter's
// truncInt: the fact always describes the sign-extended representation.
func evalKB(env *kenv, in *llvm.Instr) KnownBits {
	arg := func(i int) KnownBits { return env.get(in.Args[i]) }
	switch in.Op {
	case llvm.OpAdd:
		return arg(0).Add(arg(1)).TruncTy(in.Ty)
	case llvm.OpSub:
		return arg(0).Sub(arg(1)).TruncTy(in.Ty)
	case llvm.OpMul:
		return arg(0).Mul(arg(1)).TruncTy(in.Ty)
	case llvm.OpSDiv, llvm.OpSRem:
		a, aok := arg(0).IsConst()
		b, bok := arg(1).IsConst()
		if aok && bok && b != 0 {
			if in.Op == llvm.OpSDiv {
				return ConstKB(a / b).TruncTy(in.Ty)
			}
			return ConstKB(a % b).TruncTy(in.Ty)
		}
		return typeTopKB(in.Ty)
	case llvm.OpAnd:
		return arg(0).And(arg(1)).TruncTy(in.Ty)
	case llvm.OpOr:
		return arg(0).Or(arg(1)).TruncTy(in.Ty)
	case llvm.OpXor:
		return arg(0).Xor(arg(1)).TruncTy(in.Ty)
	case llvm.OpShl:
		return arg(0).Shl(arg(1), in.Ty)
	case llvm.OpLShr:
		return arg(0).LShr(arg(1), argTy(in, 0))
	case llvm.OpAShr:
		return arg(0).AShr(arg(1)).TruncTy(in.Ty)
	case llvm.OpZExt:
		return arg(0).ZExt(argTy(in, 0))
	case llvm.OpSExt:
		return arg(0).SExt()
	case llvm.OpTrunc:
		return arg(0).Trunc(in.Ty)
	case llvm.OpICmp:
		a, b := arg(0), arg(1)
		if v, decided := foldICmpKB(a, b, in.Pred); decided {
			return ConstKB(v)
		}
		return Bool()
	case llvm.OpSelect:
		c := arg(0)
		if v, ok := c.IsConst(); ok {
			if v != 0 {
				return arg(1)
			}
			return arg(2)
		}
		return arg(1).Join(arg(2))
	}
	// Loads, calls, ptrtoint, ...: only the type is known.
	return typeTopKB(in.Ty)
}

func argTy(in *llvm.Instr, i int) *llvm.Type {
	if i < len(in.Args) && in.Args[i] != nil {
		return in.Args[i].Type()
	}
	return nil
}

// foldICmpKB decides a comparison from known bits alone: exact when both
// sides are constants, and for eq/ne also when some known bit disagrees.
func foldICmpKB(a, b KnownBits, pred string) (int64, bool) {
	ca, aok := a.IsConst()
	cb, bok := b.IsConst()
	disagree := a.One&b.Zero != 0 || a.Zero&b.One != 0
	switch pred {
	case "eq":
		if aok && bok {
			return b2i(ca == cb), true
		}
		if disagree {
			return 0, true
		}
	case "ne":
		if aok && bok {
			return b2i(ca != cb), true
		}
		if disagree {
			return 1, true
		}
	default:
		if aok && bok {
			switch pred {
			case "slt":
				return b2i(ca < cb), true
			case "sle":
				return b2i(ca <= cb), true
			case "sgt":
				return b2i(ca > cb), true
			case "sge":
				return b2i(ca >= cb), true
			case "ult":
				return b2i(uint64(ca) < uint64(cb)), true
			case "ule":
				return b2i(uint64(ca) <= uint64(cb)), true
			case "ugt":
				return b2i(uint64(ca) > uint64(cb)), true
			case "uge":
				return b2i(uint64(ca) >= uint64(cb)), true
			}
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// FlowEdge refines the out-state along a conditional branch edge — the
// masked-compare patterns `(x & C) == K` and the single-bit `!=` forms give
// bitwise facts the interval domain cannot represent — and binds the target
// block's phis to this edge's incoming values.
func (d kbDomain) FlowEdge(from, to *llvm.Block, out *kenv) (*kenv, bool) {
	env := out.clone()
	term := from.Terminator()
	if term != nil && term.Op == llvm.OpCondBr && len(term.Blocks) == 2 && term.Blocks[0] != term.Blocks[1] {
		takenTrue := term.Blocks[0] == to
		cond := env.get(term.Args[0])
		if v, ok := cond.IsConst(); ok && (v != 0) != takenTrue {
			return nil, false // branch provably goes the other way
		}
		if cmp, ok := term.Args[0].(*llvm.Instr); ok && cmp.Op == llvm.OpICmp {
			if !refineICmpKB(env, cmp, takenTrue) {
				return nil, false
			}
		}
	}
	for _, ins := range to.Instrs {
		if ins.Op != llvm.OpPhi {
			break
		}
		if ins.Ty == nil || !ins.Ty.IsInt() {
			continue
		}
		for i, blk := range ins.Blocks {
			if blk == from && i < len(ins.Args) {
				env.m[ins] = env.get(ins.Args[i])
			}
		}
	}
	return env, true
}

// refineICmpKB narrows known bits under "cmp is taken-true/false". Returns
// false when the refinement is contradictory (edge infeasible).
func refineICmpKB(env *kenv, cmp *llvm.Instr, taken bool) bool {
	pred := cmp.Pred
	if !taken {
		pred = negatePred(pred)
	}
	a, b := cmp.Args[0], cmp.Args[1]
	switch pred {
	case "eq":
		// x == y: both sides meet; through `and x, C` the masked bits of x
		// become known.
		ka, kb := env.get(a), env.get(b)
		m, ok := ka.Meet(kb)
		if !ok {
			return false
		}
		if !setFact(env, a, m) || !setFact(env, b, m) {
			return false
		}
		if c, ok := kb.IsConst(); ok {
			return refineMaskedEq(env, a, c)
		}
		if c, ok := ka.IsConst(); ok {
			return refineMaskedEq(env, b, c)
		}
	case "ne":
		// Only the single-possible-bit forms are informative: (x & C) != 0
		// with C a power of two pins that bit to one; x != C with exactly one
		// unknown bit pins it to the other value.
		if c, ok := env.get(b).IsConst(); ok {
			return refineNe(env, a, c)
		}
		if c, ok := env.get(a).IsConst(); ok {
			return refineNe(env, b, c)
		}
	}
	return true
}

// refineMaskedEq pushes `v == c` through a mask: when v is `and x, C` with C
// constant, the bits C selects of x must equal the corresponding bits of c
// (and c must lie inside C, else the edge is infeasible).
func refineMaskedEq(env *kenv, v llvm.Value, c int64) bool {
	in, ok := v.(*llvm.Instr)
	if !ok || in.Op != llvm.OpAnd || len(in.Args) != 2 {
		return true
	}
	for i := 0; i < 2; i++ {
		mc, isConst := in.Args[i].(*llvm.ConstInt)
		if !isConst {
			continue
		}
		mask := uint64(mc.Val)
		if uint64(c)&^mask != 0 {
			return false // and with C can never produce bits outside C
		}
		x := in.Args[1-i]
		kx := env.get(x)
		refined, ok := kx.Meet(KnownBits{Zero: mask &^ uint64(c), One: mask & uint64(c)})
		if !ok {
			return false
		}
		return setFact(env, x, refined)
	}
	return true
}

// refineNe handles `v != c` for the bit-exact cases: when all but one bit of
// v is known and the remaining bit's two completions include c, that bit
// must take the non-c value.
func refineNe(env *kenv, v llvm.Value, c int64) bool {
	kv := env.get(v)
	unknown := ^(kv.Zero | kv.One)
	if unknown == 0 {
		if got, _ := kv.IsConst(); got == c {
			return false // v is exactly c: the edge is infeasible
		}
		return true
	}
	if unknown&(unknown-1) != 0 {
		return true // more than one unknown bit: nothing forced
	}
	// One unknown bit: the two completions are kv.One (bit zero) and
	// kv.One|unknown (bit one); excluding c forces the other.
	switch {
	case int64(kv.One) == c:
		kv.One |= unknown // the unknown bit must be one
	case int64(kv.One|unknown) == c:
		kv.Zero |= unknown // the unknown bit must be zero
	default:
		return true
	}
	return setFact(env, v, kv)
}

// setFact records a refined fact for a non-constant value.
func setFact(env *kenv, v llvm.Value, kb KnownBits) bool {
	if kb.Zero&kb.One != 0 {
		return false
	}
	if _, isConst := v.(*llvm.ConstInt); !isConst {
		env.m[v] = kb
	}
	return true
}

func negatePred(pred string) string {
	switch pred {
	case "eq":
		return "ne"
	case "ne":
		return "eq"
	case "slt":
		return "sge"
	case "sle":
		return "sgt"
	case "sgt":
		return "sle"
	case "sge":
		return "slt"
	case "ult":
		return "uge"
	case "ule":
		return "ugt"
	case "ugt":
		return "ule"
	case "uge":
		return "ult"
	}
	return pred
}

// KnownBitsResult exposes one function's solved known-bits facts.
type KnownBitsResult struct {
	res *absint.Result[*kenv]
}

// Known runs the known-bits analysis over f.
func Known(f *llvm.Function) *KnownBitsResult {
	return &KnownBitsResult{res: absint.Solve[*kenv](f, kbDomain{})}
}

// At returns v's fact at the program point of block b: the block's out-state
// for values defined in b, the (branch-refined) in-state otherwise.
func (r *KnownBitsResult) At(b *llvm.Block, v llvm.Value) KnownBits {
	if !r.res.Reached(b) {
		return typeTopKB(v.Type())
	}
	env := r.res.In[b]
	if in, ok := v.(*llvm.Instr); ok && in.Parent == b {
		env = r.res.Out[b]
	}
	if env == nil {
		return typeTopKB(v.Type())
	}
	return env.get(v)
}

// Reached reports whether the analysis found b reachable.
func (r *KnownBitsResult) Reached(b *llvm.Block) bool { return r.res.Reached(b) }

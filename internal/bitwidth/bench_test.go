package bitwidth_test

import (
	"testing"

	"repro/internal/bitwidth"
	"repro/internal/flow"
	"repro/internal/polybench"
)

// BenchmarkBitwidth measures the full width-oracle cost on the kernel with
// the deepest loop structure (seidel2d): the known-bits fixpoint with branch
// refinement, the interval fixpoint it fuses with, the backward
// demanded-bits pass, and every per-instruction OpWidth query the inferred
// cost model issues during synthesis. cmd/benchjson folds the result into
// the BENCH_micro.json artifact.
func BenchmarkBitwidth(b *testing.B) {
	k := polybench.Get("seidel2d")
	s, err := k.SizeOf("MINI")
	if err != nil {
		b.Fatal(err)
	}
	lm, err := flow.PrepareLLVM(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1})
	if err != nil {
		b.Fatal(err)
	}
	f := lm.FindFunc(k.Name)
	if f == nil {
		b.Fatalf("@%s not found", k.Name)
	}
	var ints int
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Ty != nil && in.Ty.IsInt() {
				ints++
			}
		}
	}
	b.ReportMetric(float64(ints), "intvals")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := bitwidth.Analyze(f)
		var w bitwidth.Width
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Ty != nil && in.Ty.IsInt() {
					w = a.ValueWidth(in)
					_ = a.HWWidth(in)
				}
			}
		}
		ws := bitwidth.OpWidths(f)
		if len(ws) == 0 || w.Bits == 0 {
			b.Fatal("analysis returned nothing")
		}
	}
}

package bitwidth

import (
	"math/bits"

	"repro/internal/llvm"
)

// Demanded-bits: a backward pass over the SSA use-def graph computing, for
// every integer-valued instruction, the mask of representation bits some
// consumer can observe. Effectful sinks (stores, branches, addresses, calls,
// returns, comparisons) demand everything their operand's type carries; pure
// dataflow ops propagate the demand of their own result into their operands
// per opcode. Bits never demanded can be pruned from the datapath — that is
// a hardware-width fact, not a value fact: a value may dynamically exceed
// its demanded width, so only the cost model (never the soundness gate)
// consumes these masks.

// demandAll is the demand a sink places on an operand.
const demandAll = ^uint64(0)

// DemandedBits computes the demanded mask of every integer-typed
// instruction in f.
func DemandedBits(f *llvm.Function) map[*llvm.Instr]uint64 {
	demanded := map[*llvm.Instr]uint64{}
	// Seed every integer result at zero so a value with no consumers is
	// explicitly tracked as dead rather than absent.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() && in.Ty != nil && in.Ty.IsInt() {
				demanded[in] = 0
			}
		}
	}
	// Fixpoint: demands only grow (bitwise or), the lattice is finite, and
	// functions are small; iterate until stable.
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, a := range in.Args {
					op, ok := a.(*llvm.Instr)
					if !ok || op.Ty == nil || !op.Ty.IsInt() {
						continue
					}
					d := operandDemand(in, i, demanded[in])
					if d&^demanded[op] != 0 {
						demanded[op] |= d
						changed = true
					}
				}
			}
		}
	}
	return demanded
}

// operandDemand returns the demand instruction `in` places on its i-th
// operand, given the demand dRes on in's own result.
func operandDemand(in *llvm.Instr, i int, dRes uint64) uint64 {
	switch in.Op {
	case llvm.OpAnd:
		// Bits the constant mask clears are never observed through the and.
		if c, ok := otherConst(in, i); ok {
			return dRes & uint64(c)
		}
		return dRes
	case llvm.OpOr:
		// Bits the constant mask sets are produced by the mask, not the
		// operand.
		if c, ok := otherConst(in, i); ok {
			return dRes &^ uint64(c)
		}
		return dRes
	case llvm.OpXor:
		return dRes
	case llvm.OpAdd, llvm.OpSub, llvm.OpMul:
		// Carries only travel upward: operand bits at or below the highest
		// demanded result bit can matter, higher ones cannot.
		return lowDemand(dRes)
	case llvm.OpShl:
		if i == 0 {
			if s, ok := constArg(in, 1); ok && s >= 0 && s < 64 {
				return dRes >> uint(s)
			}
			return demandAll
		}
		return demandAll // the shift amount always matters in full
	case llvm.OpLShr:
		if i == 0 {
			if s, ok := constArg(in, 1); ok && s >= 0 && s < 64 {
				return typeMask(argTy(in, 0)) & (dRes << uint(s))
			}
			return demandAll
		}
		return demandAll
	case llvm.OpAShr:
		if i == 0 {
			if s, ok := constArg(in, 1); ok && s >= 0 && s < 64 {
				d := dRes << uint(s)
				if dRes&^(^uint64(0)>>uint(s)) != 0 {
					// Demanded result bits shifted out the top came from the
					// operand's sign: demand it.
					d |= signBitOf(argTy(in, 0))
				}
				return d
			}
			return demandAll
		}
		return demandAll
	case llvm.OpTrunc:
		// High result bits are replicas of the new sign bit; demand on them
		// is demand on that bit of the operand.
		n := intBits(in.Ty)
		d := dRes & lowMask(n)
		if dRes&^lowMask(n) != 0 {
			d |= uint64(1) << uint(n-1)
		}
		return d
	case llvm.OpZExt:
		return dRes & lowMask(intBits(argTy(in, 0)))
	case llvm.OpSExt:
		n := intBits(argTy(in, 0))
		d := dRes & lowMask(n)
		if dRes&^lowMask(n) != 0 {
			d |= uint64(1) << uint(n-1)
		}
		return d
	case llvm.OpSelect:
		if i == 0 {
			return demandAll // the condition is consumed whole (one bit wide)
		}
		return dRes
	case llvm.OpPhi:
		return dRes
	}
	// Sinks and opaque consumers: stores, branches, returns, calls,
	// comparisons, divisions, GEP indices, addresses.
	return demandAll
}

// lowDemand widens a demand mask downward: every bit at or below the
// highest demanded bit is demanded (carry/ripple propagation).
func lowDemand(d uint64) uint64 {
	if d == 0 {
		return 0
	}
	top := 63 - bits.LeadingZeros64(d)
	if top >= 63 {
		return demandAll
	}
	return uint64(1)<<uint(top+1) - 1
}

func otherConst(in *llvm.Instr, i int) (int64, bool) {
	if len(in.Args) != 2 {
		return 0, false
	}
	return constArg(in, 1-i)
}

func constArg(in *llvm.Instr, i int) (int64, bool) {
	if i >= len(in.Args) {
		return 0, false
	}
	c, ok := in.Args[i].(*llvm.ConstInt)
	if !ok {
		return 0, false
	}
	return c.Val, true
}

// intBits returns the width of an integer type, 64 for anything else.
func intBits(ty *llvm.Type) int {
	if ty != nil && ty.IsInt() && ty.Bits > 0 && ty.Bits <= 64 {
		return ty.Bits
	}
	return 64
}

func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

func typeMask(ty *llvm.Type) uint64 { return lowMask(intBits(ty)) }

func signBitOf(ty *llvm.Type) uint64 { return uint64(1) << uint(intBits(ty)-1) }

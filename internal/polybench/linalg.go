package polybench

import "repro/internal/mlir"

// boundIPlus1 is the affine upper bound (d0) -> (d0 + 1) used for
// triangular j <= i loops.
func boundIPlus1() *mlir.AffineMap {
	return mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(1)))
}

// boundIdentity is the affine lower bound (d0) -> (d0 + c).
func boundPlus(c int64) *mlir.AffineMap {
	return mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(c)))
}

func init() {
	registerGemm()
	register2mm()
	register3mm()
	registerSyrk()
	registerSyr2k()
	registerTrmm()
}

func registerGemm() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"NI": 8, "NJ": 10, "NK": 12}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"NI": 16, "NJ": 18, "NK": 22}},
	}
	register(&Kernel{
		Name:        "gemm",
		Description: "C = alpha*A*B + beta*C",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			ni, nj, nk := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK")
			return []*mlir.Type{mem2(ni, nk), mem2(nk, nj), mem2(ni, nj)}
		},
		Build: func(s Size) *mlir.Module {
			ni, nj, nk := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK")
			m, b, args := kernelFunc("gemm", []*mlir.Type{mem2(ni, nk), mem2(nk, nj), mem2(ni, nj)})
			A, B, C := args[0], args[1], args[2]
			alpha, beta := cAlpha(b), cBeta(b)
			b.AffineForConst(0, ni, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, nj, 1, func(b *mlir.Builder, j *mlir.Value) {
					c := b.AffineLoad(C, i, j)
					b.AffineStore(b.MulF(c, beta), C, i, j)
				})
				b.AffineForConst(0, nk, 1, func(b *mlir.Builder, k *mlir.Value) {
					b.AffineForConst(0, nj, 1, func(b *mlir.Builder, j *mlir.Value) {
						a := b.AffineLoad(A, i, k)
						x := b.AffineLoad(B, k, j)
						t := b.MulF(b.MulF(alpha, a), x)
						c := b.AffineLoad(C, i, j)
						b.AffineStore(b.AddF(c, t), C, i, j)
					})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			ni, nj, nk := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK")
			A, B, C := bufs[0], bufs[1], bufs[2]
			for i := int64(0); i < ni; i++ {
				for j := int64(0); j < nj; j++ {
					C[i*nj+j] = C[i*nj+j] * Beta
				}
				for k := int64(0); k < nk; k++ {
					for j := int64(0); j < nj; j++ {
						t := (Alpha * A[i*nk+k]) * B[k*nj+j]
						C[i*nj+j] = C[i*nj+j] + t
					}
				}
			}
		},
	})
}

func register2mm() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"NI": 6, "NJ": 7, "NK": 8, "NL": 9}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"NI": 12, "NJ": 14, "NK": 16, "NL": 18}},
	}
	register(&Kernel{
		Name:        "k2mm",
		Description: "D = alpha*A*B*C + beta*D (tmp buffered locally)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			ni, nj, nk, nl := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK"), s.Dim("NL")
			return []*mlir.Type{mem2(ni, nk), mem2(nk, nj), mem2(nj, nl), mem2(ni, nl)}
		},
		Build: func(s Size) *mlir.Module {
			ni, nj, nk, nl := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK"), s.Dim("NL")
			m, b, args := kernelFunc("k2mm", []*mlir.Type{mem2(ni, nk), mem2(nk, nj), mem2(nj, nl), mem2(ni, nl)})
			A, B, C, D := args[0], args[1], args[2], args[3]
			alpha, beta := cAlpha(b), cBeta(b)
			zero := b.ConstantFloat(0, mlir.F32())
			tmp := b.Alloc(mem2(ni, nj))
			b.AffineForConst(0, ni, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, nj, 1, func(b *mlir.Builder, j *mlir.Value) {
					b.AffineStore(zero, tmp, i, j)
					b.AffineForConst(0, nk, 1, func(b *mlir.Builder, k *mlir.Value) {
						a := b.AffineLoad(A, i, k)
						x := b.AffineLoad(B, k, j)
						t := b.MulF(b.MulF(alpha, a), x)
						cur := b.AffineLoad(tmp, i, j)
						b.AffineStore(b.AddF(cur, t), tmp, i, j)
					})
				})
			})
			b.AffineForConst(0, ni, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, nl, 1, func(b *mlir.Builder, j *mlir.Value) {
					d := b.AffineLoad(D, i, j)
					b.AffineStore(b.MulF(d, beta), D, i, j)
					b.AffineForConst(0, nj, 1, func(b *mlir.Builder, k *mlir.Value) {
						t := b.AffineLoad(tmp, i, k)
						c := b.AffineLoad(C, k, j)
						p := b.MulF(t, c)
						d2 := b.AffineLoad(D, i, j)
						b.AffineStore(b.AddF(d2, p), D, i, j)
					})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			ni, nj, nk, nl := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK"), s.Dim("NL")
			A, B, C, D := bufs[0], bufs[1], bufs[2], bufs[3]
			tmp := make([]float32, ni*nj)
			for i := int64(0); i < ni; i++ {
				for j := int64(0); j < nj; j++ {
					tmp[i*nj+j] = 0
					for k := int64(0); k < nk; k++ {
						t := (Alpha * A[i*nk+k]) * B[k*nj+j]
						tmp[i*nj+j] = tmp[i*nj+j] + t
					}
				}
			}
			for i := int64(0); i < ni; i++ {
				for j := int64(0); j < nl; j++ {
					D[i*nl+j] = D[i*nl+j] * Beta
					for k := int64(0); k < nj; k++ {
						p := tmp[i*nj+k] * C[k*nl+j]
						D[i*nl+j] = D[i*nl+j] + p
					}
				}
			}
		},
	})
}

func register3mm() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"NI": 6, "NJ": 7, "NK": 8, "NL": 9, "NM": 10}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"NI": 12, "NJ": 14, "NK": 16, "NL": 18, "NM": 20}},
	}
	register(&Kernel{
		Name:        "k3mm",
		Description: "G = (A*B)*(C*D) with two local products",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			ni, nj, nk, nl, nm := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK"), s.Dim("NL"), s.Dim("NM")
			return []*mlir.Type{mem2(ni, nk), mem2(nk, nj), mem2(nj, nm), mem2(nm, nl), mem2(ni, nl)}
		},
		Build: func(s Size) *mlir.Module {
			ni, nj, nk, nl, nm := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK"), s.Dim("NL"), s.Dim("NM")
			m, b, args := kernelFunc("k3mm",
				[]*mlir.Type{mem2(ni, nk), mem2(nk, nj), mem2(nj, nm), mem2(nm, nl), mem2(ni, nl)})
			A, B, C, D, G := args[0], args[1], args[2], args[3], args[4]
			zero := b.ConstantFloat(0, mlir.F32())
			E := b.Alloc(mem2(ni, nj))
			F := b.Alloc(mem2(nj, nl))
			matmulZero := func(dst, l, r *mlir.Value, n1, n2, n3 int64) {
				b.AffineForConst(0, n1, 1, func(b *mlir.Builder, i *mlir.Value) {
					b.AffineForConst(0, n2, 1, func(b *mlir.Builder, j *mlir.Value) {
						b.AffineStore(zero, dst, i, j)
						b.AffineForConst(0, n3, 1, func(b *mlir.Builder, k *mlir.Value) {
							x := b.AffineLoad(l, i, k)
							y := b.AffineLoad(r, k, j)
							p := b.MulF(x, y)
							cur := b.AffineLoad(dst, i, j)
							b.AffineStore(b.AddF(cur, p), dst, i, j)
						})
					})
				})
			}
			matmulZero(E, A, B, ni, nj, nk)
			matmulZero(F, C, D, nj, nl, nm)
			matmulZero(G, E, F, ni, nl, nj)
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			ni, nj, nk, nl, nm := s.Dim("NI"), s.Dim("NJ"), s.Dim("NK"), s.Dim("NL"), s.Dim("NM")
			A, B, C, D, G := bufs[0], bufs[1], bufs[2], bufs[3], bufs[4]
			E := make([]float32, ni*nj)
			F := make([]float32, nj*nl)
			mm := func(dst, l, r []float32, n1, n2, n3 int64) {
				for i := int64(0); i < n1; i++ {
					for j := int64(0); j < n2; j++ {
						dst[i*n2+j] = 0
						for k := int64(0); k < n3; k++ {
							p := l[i*n3+k] * r[k*n2+j]
							dst[i*n2+j] = dst[i*n2+j] + p
						}
					}
				}
			}
			mm(E, A, B, ni, nj, nk)
			mm(F, C, D, nj, nl, nm)
			mm(G, E, F, ni, nl, nj)
		},
	})
}

func registerSyrk() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"N": 8, "M": 10}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"N": 16, "M": 20}},
	}
	register(&Kernel{
		Name:        "syrk",
		Description: "C = alpha*A*A^T + beta*C (lower triangle)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n, mm := s.Dim("N"), s.Dim("M")
			return []*mlir.Type{mem2(n, mm), mem2(n, n)}
		},
		Build: func(s Size) *mlir.Module {
			n, mm := s.Dim("N"), s.Dim("M")
			m, b, args := kernelFunc("syrk", []*mlir.Type{mem2(n, mm), mem2(n, n)})
			A, C := args[0], args[1]
			alpha, beta := cAlpha(b), cBeta(b)
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineFor(mlir.ConstantMap(0), nil, boundIPlus1(), []*mlir.Value{i}, 1,
					func(b *mlir.Builder, j *mlir.Value) {
						c := b.AffineLoad(C, i, j)
						b.AffineStore(b.MulF(c, beta), C, i, j)
					})
				b.AffineForConst(0, mm, 1, func(b *mlir.Builder, k *mlir.Value) {
					b.AffineFor(mlir.ConstantMap(0), nil, boundIPlus1(), []*mlir.Value{i}, 1,
						func(b *mlir.Builder, j *mlir.Value) {
							a1 := b.AffineLoad(A, i, k)
							a2 := b.AffineLoad(A, j, k)
							t := b.MulF(b.MulF(alpha, a1), a2)
							c := b.AffineLoad(C, i, j)
							b.AffineStore(b.AddF(c, t), C, i, j)
						})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n, mm := s.Dim("N"), s.Dim("M")
			A, C := bufs[0], bufs[1]
			for i := int64(0); i < n; i++ {
				for j := int64(0); j <= i; j++ {
					C[i*n+j] = C[i*n+j] * Beta
				}
				for k := int64(0); k < mm; k++ {
					for j := int64(0); j <= i; j++ {
						t := (Alpha * A[i*mm+k]) * A[j*mm+k]
						C[i*n+j] = C[i*n+j] + t
					}
				}
			}
		},
	})
}

func registerSyr2k() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"N": 8, "M": 10}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"N": 16, "M": 20}},
	}
	register(&Kernel{
		Name:        "syr2k",
		Description: "C = alpha*(A*B^T + B*A^T) + beta*C (lower triangle)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n, mm := s.Dim("N"), s.Dim("M")
			return []*mlir.Type{mem2(n, mm), mem2(n, mm), mem2(n, n)}
		},
		Build: func(s Size) *mlir.Module {
			n, mm := s.Dim("N"), s.Dim("M")
			m, b, args := kernelFunc("syr2k", []*mlir.Type{mem2(n, mm), mem2(n, mm), mem2(n, n)})
			A, B, C := args[0], args[1], args[2]
			alpha, beta := cAlpha(b), cBeta(b)
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineFor(mlir.ConstantMap(0), nil, boundIPlus1(), []*mlir.Value{i}, 1,
					func(b *mlir.Builder, j *mlir.Value) {
						c := b.AffineLoad(C, i, j)
						b.AffineStore(b.MulF(c, beta), C, i, j)
					})
				b.AffineForConst(0, mm, 1, func(b *mlir.Builder, k *mlir.Value) {
					b.AffineFor(mlir.ConstantMap(0), nil, boundIPlus1(), []*mlir.Value{i}, 1,
						func(b *mlir.Builder, j *mlir.Value) {
							aj := b.AffineLoad(A, j, k)
							bi := b.AffineLoad(B, i, k)
							t1 := b.MulF(b.MulF(aj, alpha), bi)
							bj := b.AffineLoad(B, j, k)
							ai := b.AffineLoad(A, i, k)
							t2 := b.MulF(b.MulF(bj, alpha), ai)
							c := b.AffineLoad(C, i, j)
							b.AffineStore(b.AddF(b.AddF(c, t1), t2), C, i, j)
						})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n, mm := s.Dim("N"), s.Dim("M")
			A, B, C := bufs[0], bufs[1], bufs[2]
			for i := int64(0); i < n; i++ {
				for j := int64(0); j <= i; j++ {
					C[i*n+j] = C[i*n+j] * Beta
				}
				for k := int64(0); k < mm; k++ {
					for j := int64(0); j <= i; j++ {
						t1 := (A[j*mm+k] * Alpha) * B[i*mm+k]
						t2 := (B[j*mm+k] * Alpha) * A[i*mm+k]
						C[i*n+j] = (C[i*n+j] + t1) + t2
					}
				}
			}
		},
	})
}

func registerTrmm() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"M": 8, "N": 10}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"M": 16, "N": 20}},
	}
	register(&Kernel{
		Name:        "trmm",
		Description: "B = alpha*A^T*B, A unit lower triangular",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			mm, n := s.Dim("M"), s.Dim("N")
			return []*mlir.Type{mem2(mm, mm), mem2(mm, n)}
		},
		Build: func(s Size) *mlir.Module {
			mm, n := s.Dim("M"), s.Dim("N")
			m, b, args := kernelFunc("trmm", []*mlir.Type{mem2(mm, mm), mem2(mm, n)})
			A, B := args[0], args[1]
			alpha := cAlpha(b)
			b.AffineForConst(0, mm, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					b.AffineFor(boundPlus(1), []*mlir.Value{i}, mlir.ConstantMap(mm), nil, 1,
						func(b *mlir.Builder, k *mlir.Value) {
							a := b.AffineLoad(A, k, i)
							x := b.AffineLoad(B, k, j)
							p := b.MulF(a, x)
							cur := b.AffineLoad(B, i, j)
							b.AffineStore(b.AddF(cur, p), B, i, j)
						})
					v := b.AffineLoad(B, i, j)
					b.AffineStore(b.MulF(alpha, v), B, i, j)
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			mm, n := s.Dim("M"), s.Dim("N")
			A, B := bufs[0], bufs[1]
			for i := int64(0); i < mm; i++ {
				for j := int64(0); j < n; j++ {
					for k := i + 1; k < mm; k++ {
						p := A[k*mm+i] * B[k*n+j]
						B[i*n+j] = B[i*n+j] + p
					}
					B[i*n+j] = Alpha * B[i*n+j]
				}
			}
		},
	})
}

package polybench

import "repro/internal/mlir"

func init() {
	registerDoitgen()
	registerGemver()
	registerFdtd2D()
	registerSymm()
}

// mem3 returns an NxMxK f32 memref type.
func mem3(n, m, k int64) *mlir.Type { return mlir.MemRef([]int64{n, m, k}, mlir.F32()) }

func registerDoitgen() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"NR": 4, "NQ": 5, "NP": 6}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"NR": 8, "NQ": 10, "NP": 12}},
	}
	register(&Kernel{
		Name:        "doitgen",
		Description: "multiresolution analysis: A[r][q][*] = A[r][q][*] x C4",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			nr, nq, np := s.Dim("NR"), s.Dim("NQ"), s.Dim("NP")
			return []*mlir.Type{mem3(nr, nq, np), mem2(np, np)}
		},
		Build: func(s Size) *mlir.Module {
			nr, nq, np := s.Dim("NR"), s.Dim("NQ"), s.Dim("NP")
			m, b, args := kernelFunc("doitgen", []*mlir.Type{mem3(nr, nq, np), mem2(np, np)})
			A, C4 := args[0], args[1]
			zero := b.ConstantFloat(0, mlir.F32())
			sum := b.Alloc(mem1(np))
			b.AffineForConst(0, nr, 1, func(b *mlir.Builder, r *mlir.Value) {
				b.AffineForConst(0, nq, 1, func(b *mlir.Builder, q *mlir.Value) {
					b.AffineForConst(0, np, 1, func(b *mlir.Builder, p *mlir.Value) {
						b.AffineStore(zero, sum, p)
						b.AffineForConst(0, np, 1, func(b *mlir.Builder, sIV *mlir.Value) {
							a := b.AffineLoad(A, r, q, sIV)
							c := b.AffineLoad(C4, sIV, p)
							t := b.MulF(a, c)
							cur := b.AffineLoad(sum, p)
							b.AffineStore(b.AddF(cur, t), sum, p)
						})
					})
					b.AffineForConst(0, np, 1, func(b *mlir.Builder, p *mlir.Value) {
						v := b.AffineLoad(sum, p)
						b.AffineStore(v, A, r, q, p)
					})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			nr, nq, np := s.Dim("NR"), s.Dim("NQ"), s.Dim("NP")
			A, C4 := bufs[0], bufs[1]
			sum := make([]float32, np)
			for r := int64(0); r < nr; r++ {
				for q := int64(0); q < nq; q++ {
					for p := int64(0); p < np; p++ {
						sum[p] = 0
						for sv := int64(0); sv < np; sv++ {
							t := A[(r*nq+q)*np+sv] * C4[sv*np+p]
							sum[p] = sum[p] + t
						}
					}
					for p := int64(0); p < np; p++ {
						A[(r*nq+q)*np+p] = sum[p]
					}
				}
			}
		},
	})
}

func registerGemver() {
	sizes := sizes1(10, 20, "N")
	register(&Kernel{
		Name:        "gemver",
		Description: "A += u1*v1^T + u2*v2^T; x = beta*A^T*y + z; w = alpha*A*x",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n := s.Dim("N")
			// A, u1, v1, u2, v2, x, y, z, w
			return []*mlir.Type{mem2(n, n), mem1(n), mem1(n), mem1(n), mem1(n),
				mem1(n), mem1(n), mem1(n), mem1(n)}
		},
		Build: func(s Size) *mlir.Module {
			n := s.Dim("N")
			m, b, args := kernelFunc("gemver", []*mlir.Type{mem2(n, n), mem1(n),
				mem1(n), mem1(n), mem1(n), mem1(n), mem1(n), mem1(n), mem1(n)})
			A, u1, v1, u2, v2, x, y, z, w := args[0], args[1], args[2], args[3],
				args[4], args[5], args[6], args[7], args[8]
			alpha, beta := cAlpha(b), cBeta(b)
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					a := b.AffineLoad(A, i, j)
					u1v := b.AffineLoad(u1, i)
					v1v := b.AffineLoad(v1, j)
					u2v := b.AffineLoad(u2, i)
					v2v := b.AffineLoad(v2, j)
					t := b.AddF(b.AddF(a, b.MulF(u1v, v1v)), b.MulF(u2v, v2v))
					b.AffineStore(t, A, i, j)
				})
			})
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					xv := b.AffineLoad(x, i)
					a := b.AffineLoad(A, j, i)
					yv := b.AffineLoad(y, j)
					t := b.AddF(xv, b.MulF(b.MulF(beta, a), yv))
					b.AffineStore(t, x, i)
				})
			})
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				xv := b.AffineLoad(x, i)
				zv := b.AffineLoad(z, i)
				b.AffineStore(b.AddF(xv, zv), x, i)
			})
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					wv := b.AffineLoad(w, i)
					a := b.AffineLoad(A, i, j)
					xv := b.AffineLoad(x, j)
					t := b.AddF(wv, b.MulF(b.MulF(alpha, a), xv))
					b.AffineStore(t, w, i)
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n := s.Dim("N")
			A, u1, v1, u2, v2, x, y, z, w := bufs[0], bufs[1], bufs[2], bufs[3],
				bufs[4], bufs[5], bufs[6], bufs[7], bufs[8]
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < n; j++ {
					A[i*n+j] = (A[i*n+j] + u1[i]*v1[j]) + u2[i]*v2[j]
				}
			}
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < n; j++ {
					x[i] = x[i] + (Beta*A[j*n+i])*y[j]
				}
			}
			for i := int64(0); i < n; i++ {
				x[i] = x[i] + z[i]
			}
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < n; j++ {
					w[i] = w[i] + (Alpha*A[i*n+j])*x[j]
				}
			}
		},
	})
}

func registerFdtd2D() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"NX": 6, "NY": 8, "T": 2}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"NX": 12, "NY": 14, "T": 3}},
	}
	register(&Kernel{
		Name:        "fdtd2d",
		Description: "2-D finite-difference time-domain (ex/ey/hz updates)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			nx, ny := s.Dim("NX"), s.Dim("NY")
			return []*mlir.Type{mem2(nx, ny), mem2(nx, ny), mem2(nx, ny)}
		},
		Build: func(s Size) *mlir.Module {
			nx, ny, T := s.Dim("NX"), s.Dim("NY"), s.Dim("T")
			m, b, args := kernelFunc("fdtd2d",
				[]*mlir.Type{mem2(nx, ny), mem2(nx, ny), mem2(nx, ny)})
			ex, ey, hz := args[0], args[1], args[2]
			half := b.ConstantFloat(0.5, mlir.F32())
			seven := b.ConstantFloat(0.7, mlir.F32())
			im1 := mlir.NewMap(2, 0, mlir.Add(mlir.Dim(0), mlir.Const(-1)), mlir.Dim(1))
			jm1 := mlir.NewMap(2, 0, mlir.Dim(0), mlir.Add(mlir.Dim(1), mlir.Const(-1)))
			ip1 := mlir.NewMap(2, 0, mlir.Add(mlir.Dim(0), mlir.Const(1)), mlir.Dim(1))
			jp1 := mlir.NewMap(2, 0, mlir.Dim(0), mlir.Add(mlir.Dim(1), mlir.Const(1)))
			b.AffineForConst(0, T, 1, func(b *mlir.Builder, t *mlir.Value) {
				b.AffineForConst(1, nx, 1, func(b *mlir.Builder, i *mlir.Value) {
					b.AffineForConst(0, ny, 1, func(b *mlir.Builder, j *mlir.Value) {
						e := b.AffineLoad(ey, i, j)
						h1 := b.AffineLoad(hz, i, j)
						h2 := b.AffineLoadMap(hz, im1, i, j)
						b.AffineStore(b.SubF(e, b.MulF(half, b.SubF(h1, h2))), ey, i, j)
					})
				})
				b.AffineForConst(0, nx, 1, func(b *mlir.Builder, i *mlir.Value) {
					b.AffineForConst(1, ny, 1, func(b *mlir.Builder, j *mlir.Value) {
						e := b.AffineLoad(ex, i, j)
						h1 := b.AffineLoad(hz, i, j)
						h2 := b.AffineLoadMap(hz, jm1, i, j)
						b.AffineStore(b.SubF(e, b.MulF(half, b.SubF(h1, h2))), ex, i, j)
					})
				})
				b.AffineForConst(0, nx-1, 1, func(b *mlir.Builder, i *mlir.Value) {
					b.AffineForConst(0, ny-1, 1, func(b *mlir.Builder, j *mlir.Value) {
						h := b.AffineLoad(hz, i, j)
						x1 := b.AffineLoadMap(ex, jp1, i, j)
						x0 := b.AffineLoad(ex, i, j)
						y1 := b.AffineLoadMap(ey, ip1, i, j)
						y0 := b.AffineLoad(ey, i, j)
						sum := b.AddF(b.SubF(x1, x0), b.SubF(y1, y0))
						b.AffineStore(b.SubF(h, b.MulF(seven, sum)), hz, i, j)
					})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			nx, ny, T := s.Dim("NX"), s.Dim("NY"), s.Dim("T")
			ex, ey, hz := bufs[0], bufs[1], bufs[2]
			for t := int64(0); t < T; t++ {
				for i := int64(1); i < nx; i++ {
					for j := int64(0); j < ny; j++ {
						ey[i*ny+j] = ey[i*ny+j] - float32(0.5)*(hz[i*ny+j]-hz[(i-1)*ny+j])
					}
				}
				for i := int64(0); i < nx; i++ {
					for j := int64(1); j < ny; j++ {
						ex[i*ny+j] = ex[i*ny+j] - float32(0.5)*(hz[i*ny+j]-hz[i*ny+j-1])
					}
				}
				for i := int64(0); i < nx-1; i++ {
					for j := int64(0); j < ny-1; j++ {
						sum := (ex[i*ny+j+1] - ex[i*ny+j]) + (ey[(i+1)*ny+j] - ey[i*ny+j])
						hz[i*ny+j] = hz[i*ny+j] - float32(0.7)*sum
					}
				}
			}
		},
	})
}

func registerSymm() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"M": 8, "N": 10}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"M": 14, "N": 18}},
	}
	register(&Kernel{
		Name:        "symm",
		Description: "C = alpha*A*B + beta*C with A symmetric (lower stored)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			mm, n := s.Dim("M"), s.Dim("N")
			return []*mlir.Type{mem2(mm, mm), mem2(mm, n), mem2(mm, n)}
		},
		Build: func(s Size) *mlir.Module {
			mm, n := s.Dim("M"), s.Dim("N")
			m, b, args := kernelFunc("symm", []*mlir.Type{mem2(mm, mm), mem2(mm, n), mem2(mm, n)})
			A, B, C := args[0], args[1], args[2]
			alpha, beta := cAlpha(b), cBeta(b)
			zero := b.ConstantFloat(0, mlir.F32())
			temp2 := b.Alloc(mem1(1))
			b.AffineForConst(0, mm, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					c0 := b.ConstantIndex(0)
					b.AffineStore(zero, temp2, c0)
					// for k < i: C[k][j] += alpha*B[i][j]*A[i][k]; temp2 += B[k][j]*A[i][k]
					b.AffineFor(mlir.ConstantMap(0), nil,
						mlir.NewMap(1, 0, mlir.Dim(0)), []*mlir.Value{i}, 1,
						func(b *mlir.Builder, k *mlir.Value) {
							bij := b.AffineLoad(B, i, j)
							aik := b.AffineLoad(A, i, k)
							ckj := b.AffineLoad(C, k, j)
							b.AffineStore(b.AddF(ckj, b.MulF(b.MulF(alpha, bij), aik)), C, k, j)
							bkj := b.AffineLoad(B, k, j)
							t2 := b.AffineLoad(temp2, c0)
							b.AffineStore(b.AddF(t2, b.MulF(bkj, aik)), temp2, c0)
						})
					cij := b.AffineLoad(C, i, j)
					bij := b.AffineLoad(B, i, j)
					aii := b.AffineLoad(A, i, i)
					t2 := b.AffineLoad(temp2, c0)
					v := b.AddF(b.AddF(b.MulF(beta, cij), b.MulF(b.MulF(alpha, bij), aii)),
						b.MulF(alpha, t2))
					b.AffineStore(v, C, i, j)
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			mm, n := s.Dim("M"), s.Dim("N")
			A, B, C := bufs[0], bufs[1], bufs[2]
			for i := int64(0); i < mm; i++ {
				for j := int64(0); j < n; j++ {
					var temp2 float32
					for k := int64(0); k < i; k++ {
						C[k*n+j] = C[k*n+j] + (Alpha*B[i*n+j])*A[i*mm+k]
						temp2 = temp2 + B[k*n+j]*A[i*mm+k]
					}
					C[i*n+j] = (Beta*C[i*n+j] + (Alpha*B[i*n+j])*A[i*mm+i]) + Alpha*temp2
				}
			}
		},
	})
}

package polybench

import "repro/internal/mlir"

func init() {
	registerAtax()
	registerBicg()
	registerGesummv()
	registerMvt()
}

func registerAtax() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"M": 9, "N": 11}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"M": 19, "N": 23}},
	}
	register(&Kernel{
		Name:        "atax",
		Description: "y = A^T (A x)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			mm, n := s.Dim("M"), s.Dim("N")
			return []*mlir.Type{mem2(mm, n), mem1(n), mem1(n)}
		},
		Build: func(s Size) *mlir.Module {
			mm, n := s.Dim("M"), s.Dim("N")
			m, b, args := kernelFunc("atax", []*mlir.Type{mem2(mm, n), mem1(n), mem1(n)})
			A, x, y := args[0], args[1], args[2]
			zero := b.ConstantFloat(0, mlir.F32())
			tmp := b.Alloc(mem1(mm))
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineStore(zero, y, i)
			})
			b.AffineForConst(0, mm, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineStore(zero, tmp, i)
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					a := b.AffineLoad(A, i, j)
					xv := b.AffineLoad(x, j)
					p := b.MulF(a, xv)
					cur := b.AffineLoad(tmp, i)
					b.AffineStore(b.AddF(cur, p), tmp, i)
				})
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					a := b.AffineLoad(A, i, j)
					t := b.AffineLoad(tmp, i)
					p := b.MulF(a, t)
					cur := b.AffineLoad(y, j)
					b.AffineStore(b.AddF(cur, p), y, j)
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			mm, n := s.Dim("M"), s.Dim("N")
			A, x, y := bufs[0], bufs[1], bufs[2]
			tmp := make([]float32, mm)
			for i := int64(0); i < n; i++ {
				y[i] = 0
			}
			for i := int64(0); i < mm; i++ {
				tmp[i] = 0
				for j := int64(0); j < n; j++ {
					p := A[i*n+j] * x[j]
					tmp[i] = tmp[i] + p
				}
				for j := int64(0); j < n; j++ {
					p := A[i*n+j] * tmp[i]
					y[j] = y[j] + p
				}
			}
		},
	})
}

func registerBicg() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"M": 9, "N": 11}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"M": 19, "N": 23}},
	}
	register(&Kernel{
		Name:        "bicg",
		Description: "s = A^T r; q = A p",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			mm, n := s.Dim("M"), s.Dim("N")
			// A[N][M], s[M], q[N], p[M], r[N]
			return []*mlir.Type{mem2(n, mm), mem1(mm), mem1(n), mem1(mm), mem1(n)}
		},
		Build: func(s Size) *mlir.Module {
			mm, n := s.Dim("M"), s.Dim("N")
			m, b, args := kernelFunc("bicg",
				[]*mlir.Type{mem2(n, mm), mem1(mm), mem1(n), mem1(mm), mem1(n)})
			A, sv, q, p, r := args[0], args[1], args[2], args[3], args[4]
			zero := b.ConstantFloat(0, mlir.F32())
			b.AffineForConst(0, mm, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineStore(zero, sv, i)
			})
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineStore(zero, q, i)
				b.AffineForConst(0, mm, 1, func(b *mlir.Builder, j *mlir.Value) {
					rv := b.AffineLoad(r, i)
					a := b.AffineLoad(A, i, j)
					p1 := b.MulF(rv, a)
					cur := b.AffineLoad(sv, j)
					b.AffineStore(b.AddF(cur, p1), sv, j)
					a2 := b.AffineLoad(A, i, j)
					pv := b.AffineLoad(p, j)
					p2 := b.MulF(a2, pv)
					qv := b.AffineLoad(q, i)
					b.AffineStore(b.AddF(qv, p2), q, i)
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			mm, n := s.Dim("M"), s.Dim("N")
			A, sv, q, p, r := bufs[0], bufs[1], bufs[2], bufs[3], bufs[4]
			for i := int64(0); i < mm; i++ {
				sv[i] = 0
			}
			for i := int64(0); i < n; i++ {
				q[i] = 0
				for j := int64(0); j < mm; j++ {
					p1 := r[i] * A[i*mm+j]
					sv[j] = sv[j] + p1
					p2 := A[i*mm+j] * p[j]
					q[i] = q[i] + p2
				}
			}
		},
	})
}

func registerGesummv() {
	sizes := sizes1(10, 20, "N")
	register(&Kernel{
		Name:        "gesummv",
		Description: "y = alpha*A*x + beta*B*x",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n := s.Dim("N")
			return []*mlir.Type{mem2(n, n), mem2(n, n), mem1(n), mem1(n)}
		},
		Build: func(s Size) *mlir.Module {
			n := s.Dim("N")
			m, b, args := kernelFunc("gesummv",
				[]*mlir.Type{mem2(n, n), mem2(n, n), mem1(n), mem1(n)})
			A, B, x, y := args[0], args[1], args[2], args[3]
			alpha, beta := cAlpha(b), cBeta(b)
			zero := b.ConstantFloat(0, mlir.F32())
			tmp := b.Alloc(mem1(n))
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineStore(zero, tmp, i)
				b.AffineStore(zero, y, i)
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					a := b.AffineLoad(A, i, j)
					xv := b.AffineLoad(x, j)
					t := b.AffineLoad(tmp, i)
					b.AffineStore(b.AddF(b.MulF(a, xv), t), tmp, i)
					bb := b.AffineLoad(B, i, j)
					xv2 := b.AffineLoad(x, j)
					yv := b.AffineLoad(y, i)
					b.AffineStore(b.AddF(b.MulF(bb, xv2), yv), y, i)
				})
				t := b.AffineLoad(tmp, i)
				yv := b.AffineLoad(y, i)
				b.AffineStore(b.AddF(b.MulF(alpha, t), b.MulF(beta, yv)), y, i)
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n := s.Dim("N")
			A, B, x, y := bufs[0], bufs[1], bufs[2], bufs[3]
			tmp := make([]float32, n)
			for i := int64(0); i < n; i++ {
				tmp[i] = 0
				y[i] = 0
				for j := int64(0); j < n; j++ {
					tmp[i] = A[i*n+j]*x[j] + tmp[i]
					y[i] = B[i*n+j]*x[j] + y[i]
				}
				y[i] = Alpha*tmp[i] + Beta*y[i]
			}
		},
	})
}

func registerMvt() {
	sizes := sizes1(10, 20, "N")
	register(&Kernel{
		Name:        "mvt",
		Description: "x1 += A*y1; x2 += A^T*y2",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n := s.Dim("N")
			return []*mlir.Type{mem2(n, n), mem1(n), mem1(n), mem1(n), mem1(n)}
		},
		Build: func(s Size) *mlir.Module {
			n := s.Dim("N")
			m, b, args := kernelFunc("mvt",
				[]*mlir.Type{mem2(n, n), mem1(n), mem1(n), mem1(n), mem1(n)})
			A, x1, x2, y1, y2 := args[0], args[1], args[2], args[3], args[4]
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					cur := b.AffineLoad(x1, i)
					a := b.AffineLoad(A, i, j)
					yv := b.AffineLoad(y1, j)
					b.AffineStore(b.AddF(cur, b.MulF(a, yv)), x1, i)
				})
			})
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
					cur := b.AffineLoad(x2, i)
					a := b.AffineLoad(A, j, i)
					yv := b.AffineLoad(y2, j)
					b.AffineStore(b.AddF(cur, b.MulF(a, yv)), x2, i)
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n := s.Dim("N")
			A, x1, x2, y1, y2 := bufs[0], bufs[1], bufs[2], bufs[3], bufs[4]
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < n; j++ {
					x1[i] = x1[i] + A[i*n+j]*y1[j]
				}
			}
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < n; j++ {
					x2[i] = x2[i] + A[j*n+i]*y2[j]
				}
			}
		},
	})
}

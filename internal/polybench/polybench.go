// Package polybench provides the kernel suite of the evaluation: MLIR
// builders, Go float32 reference implementations (mirroring each kernel's
// exact operation order so the interpreter comparison is bit-exact), input
// generators, and size presets in the PolyBench MINI/SMALL tradition scaled
// to simulator-friendly extents.
package polybench

import (
	"fmt"
	"sort"

	"repro/internal/mlir"
)

// Size is a named dimension assignment.
type Size struct {
	Name string
	D    map[string]int64
}

// Dim returns dimension k, panicking when absent (kernel bug).
func (s Size) Dim(k string) int64 {
	v, ok := s.D[k]
	if !ok {
		panic("polybench: size " + s.Name + " lacks dim " + k)
	}
	return v
}

// Kernel describes one benchmark.
type Kernel struct {
	Name        string
	Description string
	// Sizes holds the presets, keyed MINI and SMALL.
	Sizes map[string]Size
	// Build constructs the MLIR module with a single top function named
	// after the kernel taking only memref arguments.
	Build func(s Size) *mlir.Module
	// ArgTypes lists the argument memref types for buffer allocation.
	ArgTypes func(s Size) []*mlir.Type
	// Ref runs the float32 reference on flat row-major buffers (one per
	// argument, mutated in place).
	Ref func(s Size, bufs [][]float32)
}

// Alpha and Beta are the scalar constants used by the BLAS-style kernels.
const (
	Alpha = float32(1.5)
	Beta  = float32(1.2)
)

var registry = map[string]*Kernel{}

func register(k *Kernel) {
	if _, dup := registry[k.Name]; dup {
		panic("polybench: duplicate kernel " + k.Name)
	}
	registry[k.Name] = k
}

// All returns every kernel sorted by name.
func All() []*Kernel {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Kernel, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Get returns the named kernel, or nil.
func Get(name string) *Kernel { return registry[name] }

// SizeOf returns the kernel's preset by name (MINI or SMALL).
func (k *Kernel) SizeOf(name string) (Size, error) {
	s, ok := k.Sizes[name]
	if !ok {
		return Size{}, fmt.Errorf("polybench: kernel %s has no size %q", k.Name, name)
	}
	return s, nil
}

// Init fills the argument buffers with the deterministic PolyBench-style
// pattern (values in [0,1), dependent on position and argument index).
func Init(bufs [][]float32) {
	for ai, b := range bufs {
		for i := range b {
			b[i] = float32((i*7+ai*13)%17) / 17
		}
	}
}

// NewBuffers allocates flat buffers matching the kernel's argument types.
func (k *Kernel) NewBuffers(s Size) [][]float32 {
	types := k.ArgTypes(s)
	out := make([][]float32, len(types))
	for i, t := range types {
		out[i] = make([]float32, t.NumElements())
	}
	return out
}

// sizes2 is a helper for kernels parameterized by a single extent.
func sizes1(mini, small int64, key string) map[string]Size {
	return map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{key: mini}},
		"SMALL": {Name: "SMALL", D: map[string]int64{key: small}},
	}
}

// mem2 returns an NxM f32 memref type.
func mem2(n, m int64) *mlir.Type { return mlir.MemRef([]int64{n, m}, mlir.F32()) }

// mem1 returns an N-element f32 memref type.
func mem1(n int64) *mlir.Type { return mlir.MemRef([]int64{n}, mlir.F32()) }

// kernelFunc starts a module with one function and returns the builder and
// argument values.
func kernelFunc(name string, argTypes []*mlir.Type) (*mlir.Module, *mlir.Builder, []*mlir.Value) {
	m := mlir.NewModule()
	_, args := m.AddFunc(name, argTypes, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc(name)))
	return m, b, args
}

// cAlpha materializes the alpha constant.
func cAlpha(b *mlir.Builder) *mlir.Value { return b.ConstantFloat(float64(Alpha), mlir.F32()) }

// cBeta materializes the beta constant.
func cBeta(b *mlir.Builder) *mlir.Value { return b.ConstantFloat(float64(Beta), mlir.F32()) }

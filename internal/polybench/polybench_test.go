package polybench

import (
	"testing"

	"repro/internal/mlir"
)

// interpBuffers runs the kernel through the MLIR interpreter on initialized
// buffers and returns them alongside an identically-initialized reference
// copy processed by Ref.
func runBoth(t *testing.T, k *Kernel, sizeName string) (got, want [][]float32) {
	t.Helper()
	s, err := k.SizeOf(sizeName)
	if err != nil {
		t.Fatal(err)
	}
	got = k.NewBuffers(s)
	want = k.NewBuffers(s)
	Init(got)
	Init(want)

	m := k.Build(s)
	if err := m.Verify(); err != nil {
		t.Fatalf("%s: invalid module: %v", k.Name, err)
	}
	types := k.ArgTypes(s)
	bufs := make([]*mlir.MemBuf, len(types))
	for i, ty := range types {
		bufs[i] = mlir.NewMemBuf(ty)
		for j, v := range got[i] {
			bufs[i].F[j] = float64(v)
		}
	}
	if err := m.Interpret(k.Name, bufs...); err != nil {
		t.Fatalf("%s: interpret: %v", k.Name, err)
	}
	for i := range bufs {
		for j, v := range bufs[i].F {
			got[i][j] = float32(v)
		}
	}
	k.Ref(s, want)
	return got, want
}

func TestAllKernelsMatchReference(t *testing.T) {
	kernels := All()
	if len(kernels) < 14 {
		t.Fatalf("expected at least 14 kernels, have %d", len(kernels))
	}
	for _, k := range kernels {
		for _, sz := range []string{"MINI", "SMALL"} {
			t.Run(k.Name+"/"+sz, func(t *testing.T) {
				got, want := runBoth(t, k, sz)
				for ai := range want {
					for i := range want[ai] {
						if got[ai][i] != want[ai][i] {
							t.Fatalf("%s arg %d elem %d: kernel %g vs reference %g",
								k.Name, ai, i, got[ai][i], want[ai][i])
						}
					}
				}
			})
		}
	}
}

func TestKernelsMutateOutputs(t *testing.T) {
	// Guard against degenerate kernels: at least one buffer must change.
	for _, k := range All() {
		s, _ := k.SizeOf("MINI")
		bufs := k.NewBuffers(s)
		Init(bufs)
		before := make([][]float32, len(bufs))
		for i := range bufs {
			before[i] = append([]float32(nil), bufs[i]...)
		}
		k.Ref(s, bufs)
		changed := false
		for i := range bufs {
			for j := range bufs[i] {
				if bufs[i][j] != before[i][j] {
					changed = true
				}
			}
		}
		if !changed {
			t.Errorf("%s reference left all buffers unchanged", k.Name)
		}
	}
}

func TestRegistryLookups(t *testing.T) {
	if Get("gemm") == nil {
		t.Error("gemm missing from registry")
	}
	if Get("nonexistent") != nil {
		t.Error("lookup of missing kernel should be nil")
	}
	if _, err := Get("gemm").SizeOf("HUGE"); err == nil {
		t.Error("unknown size should error")
	}
}

func TestArgTypesMatchFunctionSignature(t *testing.T) {
	for _, k := range All() {
		s, _ := k.SizeOf("MINI")
		m := k.Build(s)
		f := m.FindFunc(k.Name)
		if f == nil {
			t.Fatalf("%s: top function missing", k.Name)
		}
		args := mlir.FuncBody(f).Args
		types := k.ArgTypes(s)
		if len(args) != len(types) {
			t.Fatalf("%s: %d args vs %d declared types", k.Name, len(args), len(types))
		}
		for i := range args {
			if !args[i].Type().Equal(types[i]) {
				t.Errorf("%s arg %d: %s vs %s", k.Name, i, args[i].Type(), types[i])
			}
		}
	}
}

func TestInitDeterministic(t *testing.T) {
	a := [][]float32{make([]float32, 8), make([]float32, 8)}
	b := [][]float32{make([]float32, 8), make([]float32, 8)}
	Init(a)
	Init(b)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("Init is not deterministic")
			}
			if a[i][j] < 0 || a[i][j] >= 1 {
				t.Fatalf("Init value out of range: %g", a[i][j])
			}
		}
	}
	if a[0][1] == a[1][1] {
		t.Error("different args should get different patterns")
	}
}

package polybench

import "repro/internal/mlir"

func init() {
	registerJacobi1D()
	registerJacobi2D()
	registerSeidel2D()
	registerConv2D()
}

// oneThird is the stencil scaling constant (multiplication, as the HLS
// variants of PolyBench use, to avoid a divider in the datapath).
const oneThird = float32(1.0 / 3.0)

func registerJacobi1D() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"N": 16, "T": 2}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"N": 30, "T": 4}},
	}
	register(&Kernel{
		Name:        "jacobi1d",
		Description: "T sweeps of the 3-point Jacobi stencil (ping-pong A/B)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n := s.Dim("N")
			return []*mlir.Type{mem1(n), mem1(n)}
		},
		Build: func(s Size) *mlir.Module {
			n, T := s.Dim("N"), s.Dim("T")
			m, b, args := kernelFunc("jacobi1d", []*mlir.Type{mem1(n), mem1(n)})
			A, B := args[0], args[1]
			third := b.ConstantFloat(float64(oneThird), mlir.F32())
			sweep := func(src, dst *mlir.Value) func(*mlir.Builder, *mlir.Value) {
				return func(b *mlir.Builder, i *mlir.Value) {
					l := b.AffineLoadMap(src, mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(-1))), i)
					c := b.AffineLoad(src, i)
					r := b.AffineLoadMap(src, mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(1))), i)
					sum := b.AddF(b.AddF(l, c), r)
					b.AffineStore(b.MulF(oneThirdVal(b, third), sum), dst, i)
				}
			}
			b.AffineForConst(0, T, 1, func(b *mlir.Builder, t *mlir.Value) {
				b.AffineForConst(1, n-1, 1, sweep(A, B))
				b.AffineForConst(1, n-1, 1, sweep(B, A))
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n, T := s.Dim("N"), s.Dim("T")
			A, B := bufs[0], bufs[1]
			for t := int64(0); t < T; t++ {
				for i := int64(1); i < n-1; i++ {
					sum := (A[i-1] + A[i]) + A[i+1]
					B[i] = oneThird * sum
				}
				for i := int64(1); i < n-1; i++ {
					sum := (B[i-1] + B[i]) + B[i+1]
					A[i] = oneThird * sum
				}
			}
		},
	})
}

// oneThirdVal just returns the captured constant (hook for per-sweep
// rematerialization if a variant needs it).
func oneThirdVal(_ *mlir.Builder, v *mlir.Value) *mlir.Value { return v }

func registerJacobi2D() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"N": 8, "T": 2}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"N": 14, "T": 3}},
	}
	register(&Kernel{
		Name:        "jacobi2d",
		Description: "T sweeps of the 5-point Jacobi stencil (ping-pong A/B)",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n := s.Dim("N")
			return []*mlir.Type{mem2(n, n), mem2(n, n)}
		},
		Build: func(s Size) *mlir.Module {
			n, T := s.Dim("N"), s.Dim("T")
			m, b, args := kernelFunc("jacobi2d", []*mlir.Type{mem2(n, n), mem2(n, n)})
			A, B := args[0], args[1]
			fifth := b.ConstantFloat(0.2, mlir.F32())
			up := mlir.NewMap(2, 0, mlir.Add(mlir.Dim(0), mlir.Const(-1)), mlir.Dim(1))
			down := mlir.NewMap(2, 0, mlir.Add(mlir.Dim(0), mlir.Const(1)), mlir.Dim(1))
			left := mlir.NewMap(2, 0, mlir.Dim(0), mlir.Add(mlir.Dim(1), mlir.Const(-1)))
			right := mlir.NewMap(2, 0, mlir.Dim(0), mlir.Add(mlir.Dim(1), mlir.Const(1)))
			sweep := func(b *mlir.Builder, src, dst *mlir.Value) {
				b.AffineForConst(1, n-1, 1, func(b *mlir.Builder, i *mlir.Value) {
					b.AffineForConst(1, n-1, 1, func(b *mlir.Builder, j *mlir.Value) {
						c := b.AffineLoad(src, i, j)
						u := b.AffineLoadMap(src, up, i, j)
						d := b.AffineLoadMap(src, down, i, j)
						l := b.AffineLoadMap(src, left, i, j)
						r := b.AffineLoadMap(src, right, i, j)
						sum := b.AddF(b.AddF(b.AddF(b.AddF(c, u), d), l), r)
						b.AffineStore(b.MulF(fifth, sum), dst, i, j)
					})
				})
			}
			b.AffineForConst(0, T, 1, func(b *mlir.Builder, t *mlir.Value) {
				sweep(b, A, B)
				sweep(b, B, A)
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n, T := s.Dim("N"), s.Dim("T")
			A, B := bufs[0], bufs[1]
			sweep := func(src, dst []float32) {
				for i := int64(1); i < n-1; i++ {
					for j := int64(1); j < n-1; j++ {
						sum := (((src[i*n+j] + src[(i-1)*n+j]) + src[(i+1)*n+j]) +
							src[i*n+j-1]) + src[i*n+j+1]
						dst[i*n+j] = 0.2 * sum
					}
				}
			}
			for t := int64(0); t < T; t++ {
				sweep(A, B)
				sweep(B, A)
			}
		},
	})
}

func registerSeidel2D() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"N": 8, "T": 2}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"N": 14, "T": 3}},
	}
	register(&Kernel{
		Name:        "seidel2d",
		Description: "T sweeps of the in-place 9-point Gauss-Seidel stencil",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n := s.Dim("N")
			return []*mlir.Type{mem2(n, n)}
		},
		Build: func(s Size) *mlir.Module {
			n, T := s.Dim("N"), s.Dim("T")
			m, b, args := kernelFunc("seidel2d", []*mlir.Type{mem2(n, n)})
			A := args[0]
			ninth := b.ConstantFloat(float64(float32(1.0/9.0)), mlir.F32())
			off := func(di, dj int64) *mlir.AffineMap {
				return mlir.NewMap(2, 0,
					mlir.Add(mlir.Dim(0), mlir.Const(di)),
					mlir.Add(mlir.Dim(1), mlir.Const(dj)))
			}
			b.AffineForConst(0, T, 1, func(b *mlir.Builder, t *mlir.Value) {
				b.AffineForConst(1, n-1, 1, func(b *mlir.Builder, i *mlir.Value) {
					b.AffineForConst(1, n-1, 1, func(b *mlir.Builder, j *mlir.Value) {
						var sum *mlir.Value
						for _, d := range [][2]int64{{-1, -1}, {-1, 0}, {-1, 1},
							{0, -1}, {0, 0}, {0, 1}, {1, -1}, {1, 0}, {1, 1}} {
							v := b.AffineLoadMap(A, off(d[0], d[1]), i, j)
							if sum == nil {
								sum = v
							} else {
								sum = b.AddF(sum, v)
							}
						}
						b.AffineStore(b.MulF(sum, ninth), A, i, j)
					})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n, T := s.Dim("N"), s.Dim("T")
			A := bufs[0]
			ninth := float32(1.0 / 9.0)
			for t := int64(0); t < T; t++ {
				for i := int64(1); i < n-1; i++ {
					for j := int64(1); j < n-1; j++ {
						var sum float32
						first := true
						for _, d := range [][2]int64{{-1, -1}, {-1, 0}, {-1, 1},
							{0, -1}, {0, 0}, {0, 1}, {1, -1}, {1, 0}, {1, 1}} {
							v := A[(i+d[0])*n+(j+d[1])]
							if first {
								sum = v
								first = false
							} else {
								sum = sum + v
							}
						}
						A[i*n+j] = sum * ninth
					}
				}
			}
		},
	})
}

func registerConv2D() {
	sizes := map[string]Size{
		"MINI":  {Name: "MINI", D: map[string]int64{"N": 10}},
		"SMALL": {Name: "SMALL", D: map[string]int64{"N": 18}},
	}
	register(&Kernel{
		Name:        "conv2d",
		Description: "3x3 convolution with a weight array port",
		Sizes:       sizes,
		ArgTypes: func(s Size) []*mlir.Type {
			n := s.Dim("N")
			return []*mlir.Type{mem2(n, n), mem2(3, 3), mem2(n, n)}
		},
		Build: func(s Size) *mlir.Module {
			n := s.Dim("N")
			m, b, args := kernelFunc("conv2d", []*mlir.Type{mem2(n, n), mem2(3, 3), mem2(n, n)})
			in, w, out := args[0], args[1], args[2]
			zero := b.ConstantFloat(0, mlir.F32())
			// out[i][j] = sum_{ki,kj} in[i+ki][j+kj] * w[ki][kj]
			inOff := mlir.NewMap(4, 0,
				mlir.Add(mlir.Dim(0), mlir.Dim(2)),
				mlir.Add(mlir.Dim(1), mlir.Dim(3)))
			b.AffineForConst(0, n-2, 1, func(b *mlir.Builder, i *mlir.Value) {
				b.AffineForConst(0, n-2, 1, func(b *mlir.Builder, j *mlir.Value) {
					b.AffineStore(zero, out, i, j)
					b.AffineForConst(0, 3, 1, func(b *mlir.Builder, ki *mlir.Value) {
						b.AffineForConst(0, 3, 1, func(b *mlir.Builder, kj *mlir.Value) {
							x := b.AffineLoadMap(in, inOff, i, j, ki, kj)
							wv := b.AffineLoad(w, ki, kj)
							p := b.MulF(x, wv)
							cur := b.AffineLoad(out, i, j)
							b.AffineStore(b.AddF(cur, p), out, i, j)
						})
					})
				})
			})
			b.Return()
			return m
		},
		Ref: func(s Size, bufs [][]float32) {
			n := s.Dim("N")
			in, w, out := bufs[0], bufs[1], bufs[2]
			for i := int64(0); i < n-2; i++ {
				for j := int64(0); j < n-2; j++ {
					out[i*n+j] = 0
					for ki := int64(0); ki < 3; ki++ {
						for kj := int64(0); kj < 3; kj++ {
							p := in[(i+ki)*n+(j+kj)] * w[ki*3+kj]
							out[i*n+j] = out[i*n+j] + p
						}
					}
				}
			}
		},
	})
}

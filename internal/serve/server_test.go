package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/hls"
	"repro/internal/mlir"
	"repro/internal/polybench"
)

// newTestServer builds a server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeEval(t *testing.T, resp *http.Response) EvalResponse {
	t.Helper()
	defer resp.Body.Close()
	var out EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func miniEval(client string) EvalRequest {
	return EvalRequest{
		Client: client,
		Kernel: "gemm",
		Size:   "MINI",
		Directives: DirectivesSpec{
			Pipeline: true, II: 1,
		},
	}
}

func TestEvalRoundTripAndCacheSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/eval", miniEval("t"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	first := decodeEval(t, resp)
	if first.Report == nil || first.Report.LatencyCycles <= 0 {
		t.Fatalf("no report: %+v", first)
	}
	if first.Source != "computed" {
		t.Fatalf("cold source = %q, want computed", first.Source)
	}
	second := decodeEval(t, postJSON(t, ts.URL+"/v1/eval", miniEval("t")))
	if second.Source != "cache" {
		t.Fatalf("warm source = %q, want cache", second.Source)
	}
	if second.Report.LatencyCycles != first.Report.LatencyCycles {
		t.Fatalf("cached report diverges")
	}
}

func TestEvalServedFromSharedStoreAcrossServers(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	first := decodeEval(t, postJSON(t, ts1.URL+"/v1/eval", miniEval("a")))
	if first.Source != "computed" {
		t.Fatalf("cold source = %q", first.Source)
	}

	// A second daemon over the same store serves without evaluating.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	second := decodeEval(t, postJSON(t, ts2.URL+"/v1/eval", miniEval("b")))
	if second.Source != "store" {
		t.Fatalf("shared-store source = %q, want store", second.Source)
	}
	if second.Report.LatencyCycles != first.Report.LatencyCycles ||
		second.Report.LUT != first.Report.LUT {
		t.Fatalf("store-served report diverges: %+v vs %+v", second.Report, first.Report)
	}
	if st := s2.Engine().Stats(); st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}
}

func TestEvalBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  EvalRequest
	}{
		{"unknown kernel", EvalRequest{Kernel: "nope"}},
		{"no input", EvalRequest{}},
		{"mlir without top", EvalRequest{MLIR: "func { }"}},
		{"bad kind", EvalRequest{Kernel: "gemm", Kind: "raw"}},
		{"bad cost model", EvalRequest{Kernel: "gemm", Target: &TargetSpec{CostModel: "psychic"}}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/eval", tc.req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed json: status %d, want 400", resp.StatusCode)
	}
}

// TestEvalMLIRInput drives the raw-MLIR path end to end through HTTP.
func TestEvalMLIRInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `
module {
  func.func @axpy(%arg0: memref<16xf32>, %arg1: memref<16xf32>) {
    affine.for %1 = 0 to 16 step 1 {
      %2 = affine.load %arg0[%1] : memref<16xf32>
      %3 = affine.load %arg1[%1] : memref<16xf32>
      %4 = arith.addf %2, %3 : f32
      affine.store %4, %arg1[%1] : memref<16xf32>
    }
    func.return
  }
}
`
	out := decodeEval(t, postJSON(t, ts.URL+"/v1/eval", EvalRequest{
		MLIR: src, Top: "axpy",
	}))
	if out.Err != "" || out.Report == nil {
		t.Fatalf("mlir eval failed: %+v", out)
	}
}

// TestConcurrentIdenticalRequestsEvaluateOnce: N clients race the same
// design point; admission and singleflight make the daemon evaluate it
// exactly once.
func TestConcurrentIdenticalRequestsEvaluateOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{Slots: 8, QueueDepth: 8})
	const n = 8
	var wg sync.WaitGroup
	responses := make([]EvalResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/eval", miniEval(fmt.Sprintf("c%d", i)))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				resp.Body.Close()
				return
			}
			responses[i] = decodeEval(t, resp)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if responses[i].Report == nil || responses[i].Report.LatencyCycles != responses[0].Report.LatencyCycles {
			t.Fatalf("client %d diverges: %+v", i, responses[i])
		}
	}
	st := s.Engine().Stats()
	executed := st.Jobs - st.CacheHits
	if executed != 1 {
		t.Fatalf("engine executed %d evaluations for %d identical requests", executed, n)
	}
}

func TestSheddingReturns429WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Slots: 1, QueueDepth: 1})
	// Occupy the only slot so queued work stays queued.
	release, err := s.adm.Acquire(context.Background(), "squatter")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// First request queues (depth 1)...
	done := make(chan *http.Response, 1)
	go func() { done <- postJSON(t, ts.URL+"/v1/eval", miniEval("flood")) }()
	waitFor(t, func() bool { return s.adm.QueueDepth("flood") == 1 })

	// ...second is shed.
	resp := postJSON(t, ts.URL+"/v1/eval", miniEval("flood"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.Stats().Shed == 0 {
		t.Fatal("shed counter not incremented")
	}

	release()
	first := <-done
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("queued request: status %d", first.StatusCode)
	}
}

func TestBreakerOpenReturns503(t *testing.T) {
	s, ts := newTestServer(t, Config{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	s.brk.Record("adaptor", passFailure())
	s.brk.Record("adaptor", passFailure())
	resp := postJSON(t, ts.URL+"/v1/eval", miniEval("t"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if s.Stats().BreakerOpen == 0 {
		t.Fatal("breaker_open counter not incremented")
	}
	// cxx requests still flow.
	req := miniEval("t")
	req.Kind = "cxx"
	resp = postJSON(t, ts.URL+"/v1/eval", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cxx blocked by adaptor breaker: %d", resp.StatusCode)
	}
}

func TestHealthEndpointsAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Liveness stays up, readiness flips, work is refused.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/eval", miniEval("t"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("eval after drain: %d, want 503", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	decodeEval(t, postJSON(t, ts.URL+"/v1/eval", miniEval("t")))
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Engine.Jobs != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSweepStreamsAndMatchesEmbeddedFrontier runs a full sweep through
// the daemon and checks the streamed frontier is byte-identical to the
// embedded explorer's on the same input.
func TestSweepStreamsAndMatchesEmbeddedFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("full space sweep")
	}
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(SweepRequest{Kernel: "gemm", Size: "MINI", Client: "t"})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var points, errs int
	var done *SweepEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "point":
			points++
		case "error":
			errs++
		case "done":
			e := ev
			done = &e
		}
	}
	if done == nil {
		t.Fatal("stream ended without done event")
	}
	space := len(dse.Space())
	if points+errs != space {
		t.Fatalf("streamed %d points + %d errors, space is %d", points, errs, space)
	}

	k := kernelFor(t, "gemm", "MINI")
	ref, err := dse.Explore(k.build, k.top, k.tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Frontier) != len(ref.Pareto) {
		t.Fatalf("frontier sizes: server %d, embedded %d", len(done.Frontier), len(ref.Pareto))
	}
	for i, p := range ref.Pareto {
		sp := done.Frontier[i]
		if sp.Label != p.Label || sp.Latency != p.Latency() || sp.Area != p.Area {
			t.Fatalf("frontier[%d]: server {%s %d %.0f}, embedded {%s %d %.0f}",
				i, sp.Label, sp.Latency, sp.Area, p.Label, p.Latency(), p.Area)
		}
	}
}

// TestClientRemoteFallback wires the thin client's Remote hook into an
// embedded engine: with the daemon up the job is served remotely; with it
// down the engine falls back to local execution and results agree.
func TestClientRemoteFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := NewClient(ts.URL, "test")
	if !client.Ready() {
		t.Fatal("daemon not ready")
	}

	k := kernelFor(t, "gemm", "MINI")
	job := engine.Job{
		Label: "gemm", Kind: engine.KindAdaptor, Build: k.build, Top: k.top,
		Target: k.tgt, CacheScope: "MINI",
		Spec: &engine.RemoteSpec{Kernel: "gemm", Size: "MINI"},
	}
	eng := engine.New(engine.Options{Remote: client.Remote()})
	rs, err := eng.Run(context.Background(), []engine.Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Remote || rs[0].Res == nil {
		t.Fatalf("not remote-served: %+v", rs[0])
	}
	remoteLat := rs[0].Res.Report.LatencyCycles

	// Daemon gone: same engine options, local fallback, same numbers.
	ts.Close()
	dead := NewClient(ts.URL, "test")
	eng2 := engine.New(engine.Options{Remote: dead.Remote()})
	rs, err = eng2.Run(context.Background(), []engine.Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Remote {
		t.Fatal("served by a dead daemon?")
	}
	if rs[0].Res.Report.LatencyCycles != remoteLat {
		t.Fatalf("fallback diverges: %d vs %d", rs[0].Res.Report.LatencyCycles, remoteLat)
	}
	if eng2.Stats().RemoteHits != 0 {
		t.Fatal("fallback counted as remote hit")
	}
}

// testKernel bundles a test kernel's build closure and identity.
type testKernel struct {
	build func() *mlir.Module
	top   string
	tgt   hls.Target
}

func kernelFor(t *testing.T, name, size string) testKernel {
	t.Helper()
	k := polybench.Get(name)
	if k == nil {
		t.Fatalf("unknown kernel %q", name)
	}
	s, err := k.SizeOf(size)
	if err != nil {
		t.Fatal(err)
	}
	return testKernel{
		build: func() *mlir.Module { return k.Build(s) },
		top:   k.Name,
		tgt:   hls.DefaultTarget(),
	}
}

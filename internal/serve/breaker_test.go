package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/resilience"
)

func passFailure() *resilience.PassFailure {
	return &resilience.PassFailure{Stage: "mlir-opt", Pass: "pipeline", Kind: resilience.KindPanic, Msg: "boom"}
}

// fakeClock drives the breaker's injectable clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterConsecutivePassFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.Record("adaptor", passFailure())
		if err := b.Allow("adaptor"); err != nil {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	b.Record("adaptor", passFailure())
	if err := b.Allow("adaptor"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen after 3 consecutive, got %v", err)
	}
	// Another kind is unaffected.
	if err := b.Allow("cxx"); err != nil {
		t.Fatalf("cxx breaker tripped by adaptor failures: %v", err)
	}
}

func TestBreakerSuccessResetsTheRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Record("adaptor", passFailure())
	b.Record("adaptor", passFailure())
	b.Record("adaptor", nil) // success breaks the run
	b.Record("adaptor", passFailure())
	b.Record("adaptor", passFailure())
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", err)
	}
}

// TestBreakerPlainErrorsDoNotTrip: only typed pass failures count — a
// stream of user-fault errors (nil failure) never opens the breaker.
func TestBreakerPlainErrorsDoNotTrip(t *testing.T) {
	b, _ := newTestBreaker(2, time.Minute)
	for i := 0; i < 10; i++ {
		b.Record("adaptor", nil)
	}
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("plain errors tripped the breaker: %v", err)
	}
}

func TestBreakerProbeAndRecovery(t *testing.T) {
	b, clk := newTestBreaker(2, time.Minute)
	b.Record("adaptor", passFailure())
	b.Record("adaptor", passFailure())
	if err := b.Allow("adaptor"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker should be open")
	}
	// Cooldown not elapsed: still rejecting.
	clk.advance(30 * time.Second)
	if err := b.Allow("adaptor"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("probe admitted before cooldown")
	}
	// Cooldown elapsed: exactly one probe goes through.
	clk.advance(31 * time.Second)
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
	if err := b.Allow("adaptor"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe succeeds: breaker closes for everyone.
	b.Record("adaptor", nil)
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("breaker still open after successful probe: %v", err)
	}
	if b.Open("adaptor") {
		t.Fatal("Open() disagrees")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(2, time.Minute)
	b.Record("adaptor", passFailure())
	b.Record("adaptor", passFailure())
	clk.advance(2 * time.Minute)
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record("adaptor", passFailure()) // probe fails
	if err := b.Allow("adaptor"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("failed probe did not reopen the breaker")
	}
	// Fresh cooldown from the failed probe, then a successful probe closes.
	clk.advance(2 * time.Minute)
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record("adaptor", nil)
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("breaker stuck open: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(-1, time.Minute)
	for i := 0; i < 100; i++ {
		b.Record("adaptor", passFailure())
	}
	if err := b.Allow("adaptor"); err != nil {
		t.Fatalf("disabled breaker rejected: %v", err)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/flow"
)

// Client is the thin-client side of the compile service: it ships
// EvalRequests to a daemon and adapts the responses to engine results.
// Server conditions (unreachable, shedding, draining, breaker open) are
// reported as "not served" so callers fall back to embedded execution;
// a 422 evaluation failure is the job's genuine outcome.
type Client struct {
	base string
	id   string
	http *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"). id names this client for fair admission.
func NewClient(base, id string) *Client {
	return &Client{
		base: base,
		id:   id,
		http: &http.Client{Timeout: 5 * time.Minute},
	}
}

// Ready reports whether the daemon is reachable and accepting work.
func (c *Client) Ready() bool {
	resp, err := c.http.Get(c.base + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// errNotServed marks server conditions that mean "run it yourself".
var errNotServed = errors.New("serve client: not served")

// Eval ships one request. The error is errNotServed-wrapped for
// conditions where the caller should fall back to embedded execution.
func (c *Client) Eval(req EvalRequest) (*EvalResponse, error) {
	if req.Client == "" {
		req.Client = c.id
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errNotServed, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusUnprocessableEntity:
		var out EvalResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, fmt.Errorf("%w: bad response: %v", errNotServed, err)
		}
		return &out, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%w: server busy (%d)", errNotServed, resp.StatusCode)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("serve client: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// Remote adapts the client to engine.Options.Remote: jobs carrying a
// RemoteSpec are shipped to the daemon; every server condition — network
// failure, shedding, draining, malformed response — returns ok=false so
// the engine falls back to embedded execution. A 422 comes back as
// ok=true with the evaluation error attached: the server ran the job and
// it failed, which is the job's outcome, not the server's.
func (c *Client) Remote() func(engine.Job) (engine.JobResult, bool) {
	return func(job engine.Job) (engine.JobResult, bool) {
		if job.Spec == nil {
			return engine.JobResult{}, false
		}
		req := EvalRequest{
			Client:     c.id,
			Kernel:     job.Spec.Kernel,
			Size:       job.Spec.Size,
			MLIR:       job.Spec.MLIR,
			Top:        job.Top,
			Kind:       string(job.Kind),
			Directives: DirectivesFrom(job.Directives),
			Target:     TargetFrom(job.Target),
			Verify:     job.VerifySemantics,
		}
		resp, err := c.Eval(req)
		if err != nil {
			return engine.JobResult{}, false
		}
		out := engine.JobResult{Label: job.Label, Kind: job.Kind}
		if resp.Err != "" {
			out.Err = errors.New(resp.Err)
			return out, true
		}
		if resp.Report == nil {
			return engine.JobResult{}, false
		}
		out.Degraded = resp.Degraded
		out.Res = &flow.Result{
			Flow:    string(job.Kind),
			Report:  resp.Report,
			Adaptor: resp.Adaptor,
			CSource: resp.CSource,
		}
		return out, true
	}
}

package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/castore"
	"repro/internal/dse"
	"repro/internal/engine"
	"repro/internal/incr"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/polybench"
	"repro/internal/resilience"
)

// Config tunes a Server. The zero value is usable for tests: an in-memory
// engine with no persistence and default admission bounds.
type Config struct {
	// StoreDir is the shared persistent layer: whole-flow results land in
	// StoreDir/results, incremental unit records in StoreDir/units, and
	// the pending-jobs journal in StoreDir/pending.jsonl. Empty disables
	// persistence (results live only in the in-memory cache).
	StoreDir string
	// Workers bounds each evaluation batch's engine pool (0 = GOMAXPROCS).
	Workers int
	// Slots bounds concurrently admitted requests (default 2).
	Slots int
	// QueueDepth bounds each client's wait queue (default 8); a request
	// beyond it is shed with 429.
	QueueDepth int
	// DefaultDeadline bounds a request that carries none (default 2m).
	DefaultDeadline time.Duration
	// BreakerThreshold is the consecutive pass-failure count that opens a
	// flow's circuit breaker (default 5; < 0 disables).
	BreakerThreshold int
	// BreakerCooldown is the open interval before a probe (default 30s).
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	return c
}

// Server is the compile-service daemon: one shared evaluation engine
// behind admission control, request deduplication, per-flow circuit
// breakers, and a persistent digest-verified result store.
type Server struct {
	cfg     Config
	eng     *engine.Engine
	store   *castore.Store
	adm     *Admission
	brk     *Breaker
	sf      group
	pending *resilience.Journal

	mux      *http.ServeMux
	inflight sync.WaitGroup
	draining atomic.Bool

	requests    atomic.Int64
	shed        atomic.Int64
	deduped     atomic.Int64
	breakerOpen atomic.Int64
	recovered   atomic.Int64
}

// New builds a server, opening (or creating) the shared store and
// re-admitting any journaled jobs a previous process left unfinished.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		adm: NewAdmission(cfg.Slots, cfg.QueueDepth),
		brk: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	eopts := engine.Options{
		Workers:         cfg.Workers,
		Cache:           true,
		ContinueOnError: true,
	}
	if cfg.StoreDir != "" {
		store, err := castore.Open(cfg.StoreDir + "/results")
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		units, err := incr.OpenDiskStore(cfg.StoreDir + "/units")
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		pending, err := resilience.OpenJournal(cfg.StoreDir + "/pending.jsonl")
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.store = store
		s.pending = pending
		eopts.ResultStore = store
		eopts.Incremental = true
		eopts.IncrStore = units
	}
	s.eng = engine.New(eopts)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.recoverPending()
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the underlying engine (tests and embedded use).
func (s *Server) Engine() *engine.Engine { return s.eng }

// pendingEntry is the write-ahead record of one admitted evaluation: the
// request (so a restarted daemon can re-run it) and whether it finished.
type pendingEntry struct {
	Req  EvalRequest `json:"req"`
	Done bool        `json:"done,omitempty"`
}

// recoverPending re-admits journaled jobs that never completed — queued
// or in-flight work a crash or drain left behind. They run in the
// background at startup; their results land in the shared store, so the
// clients that originally submitted them get store hits on retry.
func (s *Server) recoverPending() {
	if s.pending == nil {
		return
	}
	type recovery struct {
		key string
		e   pendingEntry
	}
	var todo []recovery
	for _, key := range s.pending.Keys() {
		var e pendingEntry
		if ok, err := s.pending.Get(key, &e); ok && err == nil && !e.Done {
			todo = append(todo, recovery{key, e})
		}
	}
	if len(todo) == 0 {
		return
	}
	s.recovered.Add(int64(len(todo)))
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		for _, r := range todo {
			if s.draining.Load() {
				return
			}
			in, err := buildInput(r.e.Req.Kernel, r.e.Req.Size, r.e.Req.MLIR, r.e.Req.Top)
			if err != nil {
				// Unbuildable request (kernel renamed, garbage entry): mark
				// done so it is not re-admitted forever.
				_ = s.pending.Put(r.key, pendingEntry{Req: r.e.Req, Done: true})
				continue
			}
			job, err := evalJob(in, r.e.Req)
			if err != nil {
				_ = s.pending.Put(r.key, pendingEntry{Req: r.e.Req, Done: true})
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultDeadline)
			if _, _, err := s.runJob(ctx, r.e.Req.Client, job); err == nil {
				// runJob marked engine.Key(job) done; the original entry may
				// have been journaled under a different key — mark it too.
				_ = s.pending.Put(r.key, pendingEntry{Req: r.e.Req, Done: true})
			}
			cancel()
		}
	}()
}

// input is a validated evaluation input: a module builder plus the
// identity fields every job derives from it.
type input struct {
	build func() *mlir.Module
	top   string
	scope string
	name  string
}

// buildInput resolves the kernel+size / MLIR+top pair shared by eval and
// sweep requests.
func buildInput(kernel, size, mlirText, top string) (*input, error) {
	switch {
	case kernel != "":
		k := polybench.Get(kernel)
		if k == nil {
			return nil, fmt.Errorf("unknown kernel %q", kernel)
		}
		if size == "" {
			size = "SMALL"
		}
		sz, err := k.SizeOf(size)
		if err != nil {
			return nil, err
		}
		return &input{
			build: func() *mlir.Module { return k.Build(sz) },
			top:   k.Name, scope: size, name: k.Name,
		}, nil
	case mlirText != "":
		if top == "" {
			return nil, fmt.Errorf("top is required for MLIR input")
		}
		if _, err := parser.Parse(mlirText); err != nil {
			return nil, fmt.Errorf("mlir: %w", err)
		}
		return &input{
			build: func() *mlir.Module {
				m, err := parser.Parse(mlirText)
				if err != nil {
					return nil
				}
				return m
			},
			top: top, scope: fmt.Sprintf("%x", sha256.Sum256([]byte(mlirText))), name: top,
		}, nil
	default:
		return nil, fmt.Errorf("request needs kernel or mlir")
	}
}

// evalJob assembles the engine job for one eval request.
func evalJob(in *input, req EvalRequest) (engine.Job, error) {
	kind := engine.KindAdaptor
	switch req.Kind {
	case "", "adaptor":
	case "cxx":
		kind = engine.KindCxx
	default:
		return engine.Job{}, fmt.Errorf("unknown kind %q (want adaptor or cxx)", req.Kind)
	}
	tgt, err := req.Target.Target()
	if err != nil {
		return engine.Job{}, err
	}
	return engine.Job{
		Label:           in.name,
		Kind:            kind,
		Build:           in.build,
		Top:             in.top,
		Directives:      req.Directives.Flow(),
		Target:          tgt,
		CacheScope:      in.scope,
		VerifySemantics: req.Verify,
	}, nil
}

// deadline resolves a request's evaluation budget.
func (s *Server) deadline(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.cfg.DefaultDeadline
}

// runJob evaluates one job on the shared engine, deduplicating identical
// in-flight requests and feeding the circuit breaker. The returned shared
// flag reports dedup; the error is an admission/breaker condition, never
// an evaluation outcome (that travels inside the JobResult).
func (s *Server) runJob(ctx context.Context, client string, job engine.Job) (engine.JobResult, bool, error) {
	if err := s.brk.Allow(string(job.Kind)); err != nil {
		s.breakerOpen.Add(1)
		return engine.JobResult{}, false, err
	}
	release, err := s.adm.Acquire(ctx, client)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.shed.Add(1)
		}
		return engine.JobResult{}, false, err
	}
	defer release()
	s.requests.Add(1)

	key := engine.Key(job)
	if s.pending != nil {
		_ = s.pending.Put(key, pendingEntry{Req: requestOf(job), Done: false})
	}
	v, _, shared := s.sf.Do(key, func() (any, error) {
		timeout := s.cfg.DefaultDeadline
		if dl, ok := ctx.Deadline(); ok {
			timeout = time.Until(dl)
		}
		rs, _ := s.eng.RunBatch(ctx, []engine.Job{job}, engine.BatchOptions{
			ContinueOnError: true,
			Timeout:         timeout,
		})
		r := rs[0]
		var pf *resilience.PassFailure
		if r.Err != nil {
			pf = r.Failure
		}
		s.brk.Record(string(job.Kind), pf)
		return r, nil
	})
	if shared {
		s.deduped.Add(1)
	}
	r := v.(engine.JobResult)
	if s.pending != nil {
		_ = s.pending.Put(key, pendingEntry{Req: requestOf(job), Done: true})
	}
	return r, shared, nil
}

// requestOf reconstructs the journalable request for a job. Only jobs
// built from requests reach the journal, so every field round-trips.
func requestOf(job engine.Job) EvalRequest {
	req := EvalRequest{
		Kind:       string(job.Kind),
		Directives: DirectivesFrom(job.Directives),
		Target:     TargetFrom(job.Target),
		Verify:     job.VerifySemantics,
	}
	if job.Spec != nil {
		req.Kernel, req.Size, req.MLIR = job.Spec.Kernel, job.Spec.Size, job.Spec.MLIR
		if req.MLIR != "" {
			req.Top = job.Top
		}
	} else if polybench.Get(job.Top) != nil {
		req.Kernel, req.Size = job.Top, job.CacheScope
	}
	return req
}

// source maps a job result's provenance flags to the wire Source field.
func source(r engine.JobResult, shared bool) string {
	switch {
	case shared:
		return "dedup"
	case r.CacheHit:
		return "cache"
	case r.DiskHit:
		return "store"
	case r.Remote:
		return "remote"
	default:
		return "computed"
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeAdmissionError maps admission/breaker conditions to HTTP status
// codes with Retry-After.
func (s *Server) writeAdmissionError(w http.ResponseWriter, client string, kind string, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(1+s.adm.QueueDepth(client)))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"err": err.Error()})
	case errors.Is(err, ErrBreakerOpen):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.brk.RetryAfter(kind).Seconds())))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"err": err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"err": err.Error()})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"err": err.Error()})
	}
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAdmissionError(w, "", "", ErrDraining)
		return
	}
	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"err": "bad json: " + err.Error()})
		return
	}
	in, err := buildInput(req.Kernel, req.Size, req.MLIR, req.Top)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"err": err.Error()})
		return
	}
	job, err := evalJob(in, req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"err": err.Error()})
		return
	}
	// Preserve the wire identity so the pending journal can re-admit the
	// job after a restart.
	job.Spec = &engine.RemoteSpec{Kernel: req.Kernel, Size: req.Size, MLIR: req.MLIR}

	s.inflight.Add(1)
	defer s.inflight.Done()
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMs))
	defer cancel()

	res, shared, err := s.runJob(ctx, req.Client, job)
	if err != nil {
		s.writeAdmissionError(w, req.Client, string(job.Kind), err)
		return
	}
	resp := EvalResponse{
		Label:  res.Label,
		Kind:   string(job.Kind),
		Source: source(res, shared),
	}
	if res.Err != nil {
		resp.Err = res.Err.Error()
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	resp.Degraded = res.Degraded
	if res.Res != nil {
		resp.Report = res.Res.Report
		resp.Adaptor = res.Res.Adaptor
		resp.CSource = res.Res.CSource
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAdmissionError(w, "", "", ErrDraining)
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"err": "bad json: " + err.Error()})
		return
	}
	in, err := buildInput(req.Kernel, req.Size, req.MLIR, req.Top)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"err": err.Error()})
		return
	}
	tgt, err := req.Target.Target()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"err": err.Error()})
		return
	}
	if err := s.brk.Allow(string(engine.KindAdaptor)); err != nil {
		s.breakerOpen.Add(1)
		s.writeAdmissionError(w, req.Client, string(engine.KindAdaptor), err)
		return
	}

	s.inflight.Add(1)
	defer s.inflight.Done()
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMs))
	defer cancel()

	// A sweep holds one admission slot for its whole run: the engine pool
	// underneath parallelizes the points, and fairness stays per-client at
	// request granularity.
	release, err := s.adm.Acquire(ctx, req.Client)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.shed.Add(1)
		}
		s.writeAdmissionError(w, req.Client, string(engine.KindAdaptor), err)
		return
	}
	defer release()
	s.requests.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	emit := func(ev SweepEvent) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = json.NewEncoder(w).Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	space := dse.Space()
	jobs := make([]engine.Job, len(space))
	for i, cfg := range space {
		jobs[i] = engine.Job{
			Label:      cfg.Label,
			Kind:       engine.KindAdaptor,
			Build:      in.build,
			Top:        in.top,
			Directives: cfg.D,
			Target:     tgt,
			CacheScope: in.scope,
		}
	}
	rs, _ := s.eng.RunBatch(ctx, jobs, engine.BatchOptions{
		ContinueOnError: true,
		OnResult: func(i int, r engine.JobResult) {
			var pf *resilience.PassFailure
			if r.Err != nil {
				pf = r.Failure
			}
			s.brk.Record(string(engine.KindAdaptor), pf)
			if r.Err != nil {
				emit(SweepEvent{Type: "error", Label: r.Label, Err: r.Err.Error()})
				return
			}
			emit(SweepEvent{Type: "point", Point: &SweepPoint{
				Label:   r.Label,
				Latency: r.Res.Report.LatencyCycles,
				Area:    dse.Area(r.Res.Report),
				Report:  r.Res.Report,
				Source:  source(r, false),
			}})
		},
	})

	var points []dse.Point
	nerr := 0
	for i, r := range rs {
		if r.Err != nil {
			nerr++
			continue
		}
		points = append(points, dse.Point{
			Label: r.Label, D: space[i].D, Report: r.Res.Report,
			Area: dse.Area(r.Res.Report), Degraded: r.Degraded,
		})
	}
	frontier := dse.Frontier(points)
	done := SweepEvent{Type: "done", Errors: nerr}
	for _, p := range frontier {
		done.Frontier = append(done.Frontier, SweepPoint{
			Label: p.Label, Latency: p.Latency(), Area: p.Area, Report: p.Report,
		})
	}
	emit(done)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the serving counters.
func (s *Server) Stats() StatsResponse {
	resp := StatsResponse{
		Engine:      s.eng.Stats(),
		Requests:    s.requests.Load(),
		Shed:        s.shed.Load(),
		Deduped:     s.deduped.Load(),
		BreakerOpen: s.breakerOpen.Load(),
		Recovered:   s.recovered.Load(),
		Draining:    s.draining.Load(),
	}
	if s.store != nil {
		resp.StoreLen = s.store.Len()
	}
	return resp
}

// Drain gracefully stops the daemon: readiness flips to 503, queued
// waiters are shed, in-flight evaluations finish (bounded by ctx), and
// the pending journal closes. Jobs that were journaled but never finished
// stay marked pending; the next start re-admits them.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.Drain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if s.pending != nil {
		_ = s.pending.Close()
	}
	return err
}

package serve

import "sync"

// group is a hand-rolled single-flight: concurrent Do calls with the same
// key share one execution of fn — the duplicates block until the leader
// finishes and receive its result. Identical design points racing in from
// different clients cost one evaluation, not N (and the persistent store
// then serves every later request for free).
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done    chan struct{}
	waiters int
	val     any
	err     error
}

// waiting returns how many callers are blocked on key's in-flight call.
func (g *group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}

// Do executes fn under key, coalescing duplicates. shared reports whether
// this caller received another caller's result.
func (g *group) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

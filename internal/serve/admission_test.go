package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionImmediateWhenFree(t *testing.T) {
	a := NewAdmission(2, 4)
	r1, err := a.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	if _, err := a.Acquire(context.Background(), "a"); err != nil {
		t.Fatalf("slot not returned: %v", err)
	}
}

func TestAdmissionShedsBeyondQueueDepth(t *testing.T) {
	a := NewAdmission(1, 2)
	release, err := a.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	// Fill client b's queue to its bound.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := a.Acquire(ctx, "b"); err == nil {
				r()
			}
		}()
	}
	waitFor(t, func() bool { return a.QueueDepth("b") == 2 })
	if _, err := a.Acquire(context.Background(), "b"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	// Another client is not shed by b's full queue.
	done := make(chan struct{})
	go func() {
		if r, err := a.Acquire(ctx, "c"); err == nil {
			r()
		}
		close(done)
	}()
	waitFor(t, func() bool { return a.QueueDepth("c") == 1 })
	release()
	wg.Wait()
	<-done
}

// TestAdmissionRoundRobinFairness: with client a holding a deep queue and
// client b one waiter, the slot alternates — b's single waiter does not
// sit behind all of a's.
func TestAdmissionRoundRobinFairness(t *testing.T) {
	a := NewAdmission(1, 8)
	release, err := a.Acquire(context.Background(), "greedy")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(client string, depth int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := a.Acquire(context.Background(), client)
			if err != nil {
				t.Errorf("%s: %v", client, err)
				return
			}
			mu.Lock()
			order = append(order, client)
			mu.Unlock()
			r()
		}()
		waitFor(t, func() bool { return a.QueueDepth(client) >= depth })
	}
	enqueue("greedy", 1)
	enqueue("greedy", 2)
	enqueue("greedy", 3)
	enqueue("meek", 1)
	release()
	wg.Wait()
	// meek joined fourth but must not run last: round-robin gives it the
	// first or second dispatch after the greedy head.
	pos := -1
	for i, c := range order {
		if c == "meek" {
			pos = i
		}
	}
	if pos == -1 || pos > 1 {
		t.Fatalf("round-robin starved meek: dispatch order %v", order)
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, "b")
		errc <- err
	}()
	waitFor(t, func() bool { return a.QueueDepth("b") == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancelled waiter must not absorb the slot.
	release()
	if _, err := a.Acquire(context.Background(), "c"); err != nil {
		t.Fatalf("slot lost to cancelled waiter: %v", err)
	}
}

func TestAdmissionDrainShedsWaiters(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background(), "b")
		errc <- err
	}()
	waitFor(t, func() bool { return a.QueueDepth("b") == 1 })
	a.Drain()
	if err := <-errc; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter: want ErrDraining, got %v", err)
	}
	if _, err := a.Acquire(context.Background(), "c"); !errors.Is(err, ErrDraining) {
		t.Fatalf("new acquire: want ErrDraining, got %v", err)
	}
	release()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

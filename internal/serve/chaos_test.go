package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/castore"
	"repro/internal/dse"
)

// TestHelperServeDaemon is not a test: it is the subprocess body for the
// chaos test — a real daemon over the given store directory, killed with
// SIGKILL by the parent. It writes its listen address to the given file
// once serving.
func TestHelperServeDaemon(t *testing.T) {
	dir := os.Getenv("SERVE_CHAOS_DIR")
	addrFile := os.Getenv("SERVE_CHAOS_ADDRFILE")
	if dir == "" || addrFile == "" {
		t.Skip("subprocess helper; driven by TestChaosKillMidSweepRestart")
	}
	s, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	// Serve until the parent kills us; the error return is the kill.
	_ = http.Serve(ln, s.Handler())
}

// startChaosDaemon launches the helper subprocess and waits for its
// address.
func startChaosDaemon(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperServeDaemon$")
	cmd.Env = append(os.Environ(),
		"SERVE_CHAOS_DIR="+dir, "SERVE_CHAOS_ADDRFILE="+addrFile)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, "http://" + string(b)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosKillMidSweepRestart is the crash-safety proof: a daemon is
// SIGKILLed in the middle of a sweep — no drain, no journal close, no
// store flush beyond what already happened — and a fresh daemon over the
// same store directory completes the sweep with every already-evaluated
// point served from the persistent store (zero re-evaluations, proven by
// the engine's disk-hit counter) and a Pareto frontier byte-identical to
// an uninterrupted embedded run.
func TestChaosKillMidSweepRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemons")
	}
	dir := t.TempDir()
	cmd, base := startChaosDaemon(t, dir)

	// Start a sweep and kill the daemon after a few points stream back.
	body, _ := json.Marshal(SweepRequest{Kernel: "gemm", Size: "MINI", Client: "chaos"})
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	seen := 0
	for sc.Scan() && seen < 3 {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err == nil && ev.Type == "point" {
			seen++
		}
	}
	if seen < 3 {
		cmd.Process.Kill()
		t.Fatalf("sweep streamed only %d points before ending", seen)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup of any kind
		t.Fatal(err)
	}
	cmd.Wait()
	resp.Body.Close()

	// The store holds whatever completed before the kill — at least the
	// streamed points (a write-ahead: results persist before they stream).
	store := openResultStoreDir(t, dir)
	preserved := store.Len()
	if preserved < seen {
		t.Fatalf("store has %d records after kill, streamed %d", preserved, seen)
	}

	// Restart over the same directory and run the sweep to completion.
	cmd2, base2 := startChaosDaemon(t, dir)
	defer func() { cmd2.Process.Kill(); cmd2.Wait() }()
	resp, err = http.Post(base2+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var done *SweepEvent
	fromStore := 0
	sc = bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "point":
			if ev.Point.Source == "store" {
				fromStore++
			}
		case "error":
			t.Errorf("post-restart sweep error on %s: %s", ev.Label, ev.Err)
		case "done":
			e := ev
			done = &e
		}
	}
	if done == nil {
		t.Fatal("post-restart sweep ended without done event")
	}
	// Zero re-evaluations of store-resident points: every record that
	// survived the kill is served from the store.
	if fromStore != preserved {
		t.Fatalf("store hits = %d, store records preserved = %d — restarted daemon re-evaluated persisted work", fromStore, preserved)
	}

	// /stats agrees: the engine's own disk-hit counter proves the reuse.
	var st StatsResponse
	sresp, err := http.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Engine.DiskHits != int64(preserved) {
		t.Fatalf("engine DiskHits = %d, want %d", st.Engine.DiskHits, preserved)
	}

	// Byte-identical recovery: the frontier matches an uninterrupted
	// embedded exploration of the same input exactly.
	k := kernelFor(t, "gemm", "MINI")
	ref, err := dse.Explore(k.build, k.top, k.tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Frontier) != len(ref.Pareto) {
		t.Fatalf("frontier sizes: restarted %d, reference %d", len(done.Frontier), len(ref.Pareto))
	}
	for i, p := range ref.Pareto {
		sp := done.Frontier[i]
		if sp.Label != p.Label || sp.Latency != p.Latency() || sp.Area != p.Area {
			t.Fatalf("frontier[%d] diverges after kill/restart: {%s %d %.0f} vs {%s %d %.0f}",
				i, sp.Label, sp.Latency, sp.Area, p.Label, p.Latency(), p.Area)
		}
	}
}

// openResultStoreDir opens the results castore under a server store dir.
func openResultStoreDir(t *testing.T, dir string) *castore.Store {
	t.Helper()
	s, err := castore.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/resilience"
)

// ErrBreakerOpen is returned while a flow's circuit breaker is open —
// mapped to 503 with Retry-After so clients fall back to embedded
// execution instead of queueing onto a backend that keeps failing.
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// Breaker is a per-key (flow kind) circuit breaker over typed pass
// failures. Plain evaluation errors — a directive the kernel rejects, a
// user's malformed MLIR — never trip it: those are the job's fault, not
// the backend's. A run of consecutive resilience.PassFailures is the
// signal that a flow stage itself is sick; the breaker then opens, sheds
// that kind's requests for a cooldown, and re-admits exactly one probe.
// The probe's outcome decides: success closes the breaker, another pass
// failure re-opens it for a fresh cooldown.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	// now is the clock, injectable for tests.
	now func() time.Time

	mu     sync.Mutex
	states map[string]*breakerState
}

type breakerState struct {
	consecutive int
	open        bool
	openedAt    time.Time
	probing     bool
}

// NewBreaker builds a breaker that opens after threshold consecutive pass
// failures and probes again after cooldown. threshold <= 0 disables it.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		states:    make(map[string]*breakerState),
	}
}

// Allow reports whether a request for key may proceed. While open it
// returns ErrBreakerOpen until the cooldown elapses, then admits a single
// probe (concurrent requests during the probe are still rejected).
func (b *Breaker) Allow(key string) error {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.open {
		return nil
	}
	if st.probing || b.now().Sub(st.openedAt) < b.cooldown {
		return ErrBreakerOpen
	}
	st.probing = true
	return nil
}

// Record feeds one evaluation outcome back. Only typed pass failures
// count against the backend; any other outcome (success, or a plain
// error) resets the consecutive count and closes an open breaker.
func (b *Breaker) Record(key string, failure *resilience.PassFailure) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	if failure == nil {
		st.consecutive = 0
		st.open = false
		st.probing = false
		return
	}
	st.consecutive++
	if st.open && st.probing {
		// The probe failed: fresh cooldown.
		st.openedAt = b.now()
		st.probing = false
		return
	}
	if !st.open && st.consecutive >= b.threshold {
		st.open = true
		st.openedAt = b.now()
		st.probing = false
	}
}

// Open reports whether key's breaker is currently open.
func (b *Breaker) Open(key string) bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	return st != nil && st.open
}

// RetryAfter returns the remaining cooldown for key, clamped to >= 1s,
// for the Retry-After header.
func (b *Breaker) RetryAfter(key string) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.open {
		return time.Second
	}
	left := b.cooldown - b.now().Sub(st.openedAt)
	if left < time.Second {
		left = time.Second
	}
	return left
}

package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrOverloaded is returned by Admission.Acquire when the client's queue
// is full — the load-shedding signal the HTTP layer maps to 429.
var ErrOverloaded = errors.New("serve: client queue full")

// ErrDraining is returned once the admission controller stops accepting
// new work — mapped to 503.
var ErrDraining = errors.New("serve: draining")

// Admission is the fair-share gate in front of the evaluation engine:
// a fixed number of evaluation slots, a bounded FIFO queue per client,
// and round-robin dispatch across clients with waiters. One client
// flooding the daemon fills its own queue and starts shedding (429)
// without starving anyone else — the next free slot goes to the next
// client in rotation, not the deepest queue.
type Admission struct {
	mu       sync.Mutex
	free     int // open evaluation slots
	maxQueue int // per-client queue bound

	queues map[string][]*waiter
	// rotation is the round-robin order of client names; clients enter
	// when their first waiter enqueues and leave when their queue empties.
	rotation []string
	next     int
	draining bool
}

type waiter struct {
	ready     chan struct{}
	cancelled bool
	// err is set (before ready closes) when the waiter is woken without a
	// slot — draining.
	err error
}

// NewAdmission builds a controller with the given concurrent-evaluation
// slots and per-client queue depth (minimums of 1 are enforced).
func NewAdmission(slots, perClientQueue int) *Admission {
	if slots < 1 {
		slots = 1
	}
	if perClientQueue < 1 {
		perClientQueue = 1
	}
	return &Admission{free: slots, maxQueue: perClientQueue, queues: make(map[string][]*waiter)}
}

// Acquire blocks until the client holds an evaluation slot, its context
// expires, or the controller sheds the request. On success the caller
// must invoke the returned release exactly once.
func (a *Admission) Acquire(ctx context.Context, client string) (release func(), err error) {
	if client == "" {
		client = "anon"
	}
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	if a.free > 0 && len(a.queues[client]) == 0 {
		a.free--
		a.mu.Unlock()
		return a.releaseFn(), nil
	}
	if len(a.queues[client]) >= a.maxQueue {
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &waiter{ready: make(chan struct{})}
	if len(a.queues[client]) == 0 {
		a.rotation = append(a.rotation, client)
	}
	a.queues[client] = append(a.queues[client], w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return a.releaseFn(), nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			a.mu.Unlock()
			if w.err != nil {
				return nil, w.err
			}
			// Dispatch won the race: the slot is ours and must be returned
			// through the normal path so the next waiter runs.
			a.releaseFn()()
		default:
			w.cancelled = true
			a.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// releaseFn hands the slot back and dispatches the next waiter in
// round-robin order.
func (a *Admission) releaseFn() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.free++
			a.dispatchLocked()
			a.mu.Unlock()
		})
	}
}

// dispatchLocked hands free slots to waiters, one client per rotation
// step, skipping cancelled waiters and retiring empty queues.
func (a *Admission) dispatchLocked() {
	for a.free > 0 && len(a.rotation) > 0 {
		if a.next >= len(a.rotation) {
			a.next = 0
		}
		client := a.rotation[a.next]
		q := a.queues[client]
		// Drop cancelled waiters at the head; they never take a slot.
		for len(q) > 0 && q[0].cancelled {
			q = q[1:]
		}
		if len(q) == 0 {
			delete(a.queues, client)
			a.rotation = append(a.rotation[:a.next], a.rotation[a.next+1:]...)
			continue
		}
		w := q[0]
		a.queues[client] = q[1:]
		if len(q) == 1 {
			delete(a.queues, client)
			a.rotation = append(a.rotation[:a.next], a.rotation[a.next+1:]...)
		} else {
			a.next++
		}
		a.free--
		close(w.ready)
	}
	if len(a.rotation) == 0 {
		a.next = 0
	}
}

// QueueDepth returns the client's current queue length (for Retry-After).
func (a *Admission) QueueDepth(client string) int {
	if client == "" {
		client = "anon"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queues[client])
}

// Drain stops admitting: new Acquire calls and every queued waiter fail
// with ErrDraining immediately. Slots already held run to completion; the
// server's WaitGroup tracks those.
func (a *Admission) Drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	for client, q := range a.queues {
		for _, w := range q {
			if !w.cancelled {
				w.err = ErrDraining
				close(w.ready)
			}
		}
		delete(a.queues, client)
	}
	a.rotation, a.next = nil, 0
}

// Draining reports whether Drain was called.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/resilience"
)

// TestRestartRecoversPendingJobs: a job journaled as admitted but never
// completed — the crash shape — is re-admitted by the next daemon over
// the same store, evaluated in the background, and its result lands in
// the shared store so the original client's retry is a store hit.
func TestRestartRecoversPendingJobs(t *testing.T) {
	dir := t.TempDir()

	// Simulate the dying daemon's journal: admitted, not completed.
	j, err := resilience.OpenJournal(dir + "/pending.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	req := miniEval("orphan")
	if err := j.Put("job-key", pendingEntry{Req: req, Done: false}); err != nil {
		t.Fatal(err)
	}
	// A completed entry must NOT be re-admitted.
	doneReq := miniEval("finished")
	doneReq.Kind = "cxx"
	if err := j.Put("done-key", pendingEntry{Req: doneReq, Done: true}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	s, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Recovered; got != 1 {
		t.Fatalf("Recovered = %d, want 1 (done entries must not re-admit)", got)
	}
	// The background recovery lands the result in the shared store.
	deadline := time.Now().Add(30 * time.Second)
	for s.store.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovered job never reached the store")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.store.Len() != 1 {
		t.Fatalf("store has %d records, want 1", s.store.Len())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// The journal now marks the job done: a third daemon re-admits nothing.
	s3, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Stats().Recovered; got != 0 {
		t.Fatalf("third start re-admitted %d jobs, want 0", got)
	}
	if err := s3.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDrainWaitsForInflight: Drain returns only after in-flight work
// finishes, and respects its context bound.
func TestDrainWaitsForInflight(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.inflight.Add(1) // a fake in-flight request
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain returned while work was in flight")
	}
	s.inflight.Done()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("Drain after work finished: %v", err)
	}
}

// Package serve implements the hls-serve compile-service daemon: an
// HTTP/JSON front end over the flow-evaluation engine that accepts
// kernel+directives+target jobs from many clients, admits them under
// per-client fairness with load shedding, deduplicates identical in-flight
// requests, and persists every clean result in the digest-verified shared
// store so a crashed or restarted daemon — or a CLI pointed at the same
// directory — serves byte-identical results without re-evaluating.
//
// Endpoint summary:
//
//	POST /v1/eval    evaluate one design point (JSON in, JSON out)
//	POST /v1/sweep   evaluate the whole DSE space, streaming NDJSON events
//	GET  /healthz    liveness: 200 while the process serves
//	GET  /readyz     readiness: 503 once draining, 200 otherwise
//	GET  /stats      engine + admission counters as JSON
//
// HTTP status contract (mirrored by the thin clients in hls-dse and
// flowbench, which fall back to embedded execution on 429/503/network
// errors but treat 422 as the job's genuine outcome):
//
//	200  evaluated (or served from cache/store/dedup)
//	400  malformed request (unknown kernel, bad JSON, missing top)
//	422  the evaluation itself failed — a real compile error, not a
//	     server condition; never retried
//	429  client's queue is full, Retry-After set
//	503  draining or the flow's circuit breaker is open, Retry-After set
package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/mlir/passes"
)

// PartitionSpec is the wire form of passes.PartitionSpec.
type PartitionSpec struct {
	Kind   string `json:"kind"`
	Factor int    `json:"factor,omitempty"`
	Dim    int    `json:"dim,omitempty"`
}

// DirectivesSpec is the wire form of flow.Directives.
type DirectivesSpec struct {
	Pipeline  bool           `json:"pipeline,omitempty"`
	II        int            `json:"ii,omitempty"`
	Unroll    int            `json:"unroll,omitempty"`
	Partition *PartitionSpec `json:"partition,omitempty"`
	Flatten   bool           `json:"flatten,omitempty"`
	Dataflow  bool           `json:"dataflow,omitempty"`
}

// Flow converts the wire directives to the flow package's form.
func (d DirectivesSpec) Flow() flow.Directives {
	out := flow.Directives{
		Pipeline: d.Pipeline, II: d.II, Unroll: d.Unroll,
		Flatten: d.Flatten, Dataflow: d.Dataflow,
	}
	if d.Partition != nil {
		out.Partition = &passes.PartitionSpec{
			Kind: d.Partition.Kind, Factor: d.Partition.Factor, Dim: d.Partition.Dim,
		}
	}
	return out
}

// DirectivesFrom converts flow directives to their wire form.
func DirectivesFrom(d flow.Directives) DirectivesSpec {
	out := DirectivesSpec{
		Pipeline: d.Pipeline, II: d.II, Unroll: d.Unroll,
		Flatten: d.Flatten, Dataflow: d.Dataflow,
	}
	if d.Partition != nil {
		out.Partition = &PartitionSpec{
			Kind: d.Partition.Kind, Factor: d.Partition.Factor, Dim: d.Partition.Dim,
		}
	}
	return out
}

// TargetSpec is the wire form of the client-settable hls.Target knobs.
// The zero value means "the server's default target".
type TargetSpec struct {
	ClockNs   float64 `json:"clock_ns,omitempty"`
	CostModel string  `json:"cost_model,omitempty"` // "declared" or "inferred"
}

// Target materializes the spec over the default target.
func (t *TargetSpec) Target() (hls.Target, error) {
	tgt := hls.DefaultTarget()
	if t == nil {
		return tgt, nil
	}
	if t.ClockNs > 0 {
		tgt.ClockNs = t.ClockNs
	}
	switch t.CostModel {
	case "", "declared":
		tgt.CostModel = hls.CostDeclared
	case "inferred":
		tgt.CostModel = hls.CostInferred
	default:
		return tgt, fmt.Errorf("unknown cost_model %q (want declared or inferred)", t.CostModel)
	}
	return tgt, nil
}

// TargetFrom converts a target to its wire form (nil for the default).
func TargetFrom(tgt hls.Target) *TargetSpec {
	spec := &TargetSpec{}
	if def := hls.DefaultTarget(); tgt.ClockNs != def.ClockNs {
		spec.ClockNs = tgt.ClockNs
	}
	if tgt.CostModel == hls.CostInferred {
		spec.CostModel = "inferred"
	}
	if spec.ClockNs == 0 && spec.CostModel == "" {
		return nil
	}
	return spec
}

// EvalRequest asks the server to evaluate one design point. The input
// module is either a registered polybench kernel at a size preset
// (Kernel+Size) or raw MLIR text (MLIR+Top) — the same identity
// engine.RemoteSpec ships.
type EvalRequest struct {
	// Client identifies the requester for fair admission; empty means the
	// shared "anon" queue.
	Client string `json:"client,omitempty"`

	Kernel string `json:"kernel,omitempty"`
	Size   string `json:"size,omitempty"`
	MLIR   string `json:"mlir,omitempty"`
	Top    string `json:"top,omitempty"`

	// Kind selects the flow: "adaptor" (default) or "cxx". The raw flow's
	// result is a live LLVM module and is not served remotely.
	Kind       string         `json:"kind,omitempty"`
	Directives DirectivesSpec `json:"directives"`
	Target     *TargetSpec    `json:"target,omitempty"`
	// Verify runs the point under the differential semantic oracle.
	Verify bool `json:"verify,omitempty"`
	// DeadlineMs bounds the evaluation's wall time including queueing;
	// 0 uses the server default.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// EvalResponse is one evaluated point. Err is set (with HTTP 422) when
// the evaluation itself failed.
type EvalResponse struct {
	Label    string       `json:"label,omitempty"`
	Kind     string       `json:"kind"`
	Report   *hls.Report  `json:"report,omitempty"`
	Adaptor  *core.Report `json:"adaptor,omitempty"`
	CSource  string       `json:"csource,omitempty"`
	Degraded bool         `json:"degraded,omitempty"`
	Err      string       `json:"err,omitempty"`
	// Source records where the result came from: "cache" (in-memory),
	// "store" (shared persistent store), "dedup" (coalesced with an
	// identical in-flight request), or "computed".
	Source string `json:"source"`
}

// SweepRequest asks the server to evaluate the full DSE directive space
// for one input, streaming progress as NDJSON SweepEvents.
type SweepRequest struct {
	Client string `json:"client,omitempty"`

	Kernel string `json:"kernel,omitempty"`
	Size   string `json:"size,omitempty"`
	MLIR   string `json:"mlir,omitempty"`
	Top    string `json:"top,omitempty"`

	Target     *TargetSpec `json:"target,omitempty"`
	DeadlineMs int64       `json:"deadline_ms,omitempty"`
}

// SweepPoint is one evaluated configuration inside a sweep stream.
type SweepPoint struct {
	Label   string      `json:"label"`
	Latency int64       `json:"latency"`
	Area    float64     `json:"area"`
	Report  *hls.Report `json:"report,omitempty"`
	Source  string      `json:"source"`
}

// SweepEvent is one NDJSON line of a sweep stream: Type "point" carries
// one completed configuration, "error" one failed configuration, and the
// final "done" carries the Pareto frontier in ascending-latency order.
type SweepEvent struct {
	Type     string       `json:"type"` // "point", "error", "done"
	Point    *SweepPoint  `json:"point,omitempty"`
	Label    string       `json:"label,omitempty"`
	Err      string       `json:"err,omitempty"`
	Frontier []SweepPoint `json:"frontier,omitempty"`
	Errors   int          `json:"errors,omitempty"`
}

// StatsResponse is the /stats payload: engine counters plus the serving
// layer's own admission and dedup counters.
type StatsResponse struct {
	Engine engine.Stats `json:"engine"`
	// Requests counts admitted evaluations; Shed counts 429s; Deduped
	// counts requests coalesced onto an identical in-flight evaluation;
	// BreakerOpen counts requests rejected by an open circuit breaker;
	// Recovered counts journaled jobs re-admitted on startup.
	Requests    int64 `json:"requests"`
	Shed        int64 `json:"shed"`
	Deduped     int64 `json:"deduped"`
	BreakerOpen int64 `json:"breaker_open"`
	Recovered   int64 `json:"recovered"`
	Draining    bool  `json:"draining"`
	// StoreLen is the number of records in the shared result store.
	StoreLen int `json:"store_len"`
}

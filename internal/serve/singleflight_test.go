package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSingleflightCoalesces(t *testing.T) {
	var g group
	var executions atomic.Int64
	started := make(chan struct{})
	block := make(chan struct{})

	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	leaderDone := make(chan any, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, shared := g.Do("k", func() (any, error) {
			executions.Add(1)
			close(started)
			<-block
			return 42, nil
		})
		if err != nil || shared {
			t.Errorf("leader: err=%v shared=%v", err, shared)
		}
		leaderDone <- v
	}()
	<-started
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (any, error) {
				executions.Add(1)
				return -1, nil
			})
			if err != nil || v != 42 {
				t.Errorf("follower: v=%v err=%v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// A different key runs independently even while k is in flight.
	v, err, shared := g.Do("other", func() (any, error) { return "own", nil })
	if err != nil || shared || v != "own" {
		t.Errorf("other key coalesced: v=%v err=%v shared=%v", v, err, shared)
	}
	// Release the leader only after every follower is parked on its call —
	// otherwise the leader could finish and delete the entry first, and the
	// late followers would each run their own evaluation.
	waitFor(t, func() bool { return g.waiting("k") == 5 })
	close(block)
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != 5 {
		t.Fatalf("shared count = %d, want 5", n)
	}
	if v := <-leaderDone; v != 42 {
		t.Fatalf("leader value %v", v)
	}
}

// TestSingleflightSequentialRunsFresh: after the in-flight call finishes,
// the next Do with the same key executes again — singleflight is dedup,
// not a cache.
func TestSingleflightSequentialRunsFresh(t *testing.T) {
	var g group
	n := 0
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do("k", func() (any, error) { n++; return n, nil })
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%v err=%v shared=%v", i, v, err, shared)
		}
	}
}

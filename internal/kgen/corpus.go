package kgen

import (
	"embed"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The checked-in corpus: minimal kgen kernels under the default Config,
// one file per seed (corpus/k<seed>.mlir). It is the shared seed set for
// the repo's fuzz targets (parser round-trip, differential flows, journal
// recovery) and a drift alarm — TestCorpusMatchesGenerator fails the
// moment generator output changes for a checked-in seed, so determinism
// regressions are caught at test time, not mid-campaign. Regenerate with
// UPDATE_KGEN_CORPUS=1 go test ./internal/kgen/.

//go:embed corpus/*.mlir
var corpusFS embed.FS

// DefaultCorpusSeeds is the canonical seed list the checked-in corpus is
// generated from (the UPDATE_KGEN_CORPUS regen target).
var DefaultCorpusSeeds = func() []int64 {
	s := make([]int64, 16)
	for i := range s {
		s[i] = int64(i + 1)
	}
	return s
}()

// CorpusSeeds are the seeds of the checked-in corpus, in file order.
func CorpusSeeds() []int64 {
	ents, err := corpusFS.ReadDir("corpus")
	if err != nil {
		panic(fmt.Sprintf("kgen: embedded corpus unreadable: %v", err))
	}
	seeds := make([]int64, 0, len(ents))
	for _, e := range ents {
		name := strings.TrimSuffix(e.Name(), ".mlir")
		s, err := strconv.ParseInt(strings.TrimPrefix(name, "k"), 10, 64)
		if err != nil {
			panic(fmt.Sprintf("kgen: bad corpus file name %q", e.Name()))
		}
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return seeds
}

// CorpusText returns the checked-in module text for one seed.
func CorpusText(seed int64) (string, bool) {
	b, err := corpusFS.ReadFile(fmt.Sprintf("corpus/k%d.mlir", seed))
	if err != nil {
		return "", false
	}
	return string(b), true
}

// CorpusKernels reconstructs the full corpus (text, directives, label)
// from the checked-in seeds via the generator; the corpus-match test
// guarantees the reconstruction equals the committed files.
func CorpusKernels() []Kernel {
	seeds := CorpusSeeds()
	ks := make([]Kernel, len(seeds))
	for i, s := range seeds {
		ks[i] = Generate(s, Config{})
	}
	return ks
}

// WriteCorpus regenerates dir from the given seeds under the default
// config (the UPDATE_KGEN_CORPUS path), removing stale k*.mlir files.
func WriteCorpus(dir string, seeds []int64) error {
	stale, _ := filepath.Glob(filepath.Join(dir, "k*.mlir"))
	for _, f := range stale {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range seeds {
		k := Generate(s, Config{})
		path := filepath.Join(dir, fmt.Sprintf("k%d.mlir", s))
		if err := os.WriteFile(path, []byte(k.MLIR), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Package kgen is a seeded, deterministic generator of well-defined HLS
// kernels in the affine subset both flows accept: random loop nests with
// affine accesses, mixed int/float arithmetic guarded against undefined
// behavior by construction, and random-but-valid directive sets sampled
// from the DSE space. It manufactures the adversarial inputs the
// differential-fuzzing campaign (cmd/hls-fuzz) feeds through the oracle,
// and populates the shared fuzz-seed corpus the parser/flow/journal fuzz
// targets start from.
//
// Determinism is a hard contract: the same seed yields a byte-identical
// kernel (module text, directive set, and label), across runs and
// platforms. Everything random flows through one math/rand source seeded
// by the caller; no map iteration feeds generation.
//
// Well-definedness is structural, not sampled around:
//
//   - every affine access is in bounds, because loop ranges are derived
//     from the extents of the arrays they index (stencil offsets shrink
//     the range by their margin);
//   - there is no integer division, and float division only divides by
//     constants of magnitude >= 1;
//   - integer terms stay far below 31 bits, so the i64 adaptor path and
//     the C frontend's int agree exactly;
//   - stored float expressions are damped convex combinations (statement
//     coefficients sum to 1) and reduction statements are budgeted, so
//     values never overflow to Inf/NaN no matter how nests compose.
package kgen

import (
	"fmt"
	"math/rand"

	"repro/internal/flow"
	"repro/internal/mlir"
	"repro/internal/mlir/parser"
	"repro/internal/mlir/passes"
)

// Config bounds the generated program shapes. The zero value selects the
// defaults (the corpus configuration).
type Config struct {
	// MaxArrays bounds the memref argument count (default 3; min 1).
	MaxArrays int
	// MinExtent/MaxExtent bound every array dimension (defaults 4 and 8).
	MinExtent, MaxExtent int64
	// MaxNests bounds the top-level loop nests (default 2).
	MaxNests int
	// MaxStmts bounds the statements per innermost body (default 2).
	MaxStmts int
	// MaxRedStmts budgets gemm-style true-accumulation statements per
	// kernel; each one can square the value bound, so the budget is what
	// keeps the overflow-freedom argument closed (default 3).
	MaxRedStmts int
}

func (c Config) withDefaults() Config {
	if c.MaxArrays <= 0 {
		c.MaxArrays = 3
	}
	if c.MinExtent <= 0 {
		c.MinExtent = 4
	}
	if c.MaxExtent < c.MinExtent {
		c.MaxExtent = c.MinExtent + 4
	}
	if c.MaxNests <= 0 {
		c.MaxNests = 2
	}
	if c.MaxStmts <= 0 {
		c.MaxStmts = 2
	}
	if c.MaxRedStmts <= 0 {
		c.MaxRedStmts = 3
	}
	return c
}

// Kernel is one generated program: the pristine module text (the
// deterministic artifact), plus a directive configuration sampled from
// the DSE space under the same seed.
type Kernel struct {
	// Name is the top function ("kg<seed>"), a valid C identifier so the
	// C++ flow emits it unchanged.
	Name string
	// Seed reproduces the kernel: Generate(Seed, cfg) is byte-identical.
	Seed int64
	// MLIR is the pristine module text; Build parses it.
	MLIR string
	// Directives is the sampled configuration, valid for both flows.
	Directives flow.Directives
	// DirectiveLabel names the configuration in DSE-label style.
	DirectiveLabel string
}

// Build parses a fresh module from the kernel text. Flows mutate their
// input, so every call constructs a new module (the engine's fresh-module
// contract). A nil return means the generator emitted text its own parser
// rejects — a kgen bug the caller surfaces, not a fuzzing finding.
func (k Kernel) Build() *mlir.Module {
	m, err := parser.Parse(k.MLIR)
	if err != nil {
		return nil
	}
	return m
}

// Generate produces the kernel for one seed under the given config.
func Generate(seed int64, cfg Config) Kernel {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	name := fmt.Sprintf("kg%d", uint64(seed))
	g := &gen{rng: rng, cfg: cfg}
	m := g.module(name)
	d, label := sampleDirectives(rng)
	return Kernel{
		Name:           name,
		Seed:           seed,
		MLIR:           m.Print(),
		Directives:     d,
		DirectiveLabel: label,
	}
}

// Corpus generates n kernels from consecutive seeds starting at base.
func Corpus(base int64, n int, cfg Config) []Kernel {
	out := make([]Kernel, n)
	for i := range out {
		out[i] = Generate(base+int64(i), cfg)
	}
	return out
}

// SampleDirectives draws one random-but-valid directive configuration
// from the DSE space axes (pipeline II, unroll, partition, flatten) using
// the caller's source, mirroring dse.Space's value ranges.
func SampleDirectives(rng *rand.Rand) (flow.Directives, string) {
	return sampleDirectives(rng)
}

func sampleDirectives(rng *rand.Rand) (flow.Directives, string) {
	var d flow.Directives
	label := "base"
	if rng.Intn(2) == 0 {
		d.Pipeline = true
		d.II = 1 + rng.Intn(4)
		label = fmt.Sprintf("pipeII%d", d.II)
		if rng.Intn(4) == 0 {
			d.Flatten = true
			label += "+flat"
		}
	} else if rng.Intn(2) == 0 {
		d.Unroll = 2 + rng.Intn(3)
		label = fmt.Sprintf("unroll%d", d.Unroll)
	}
	switch rng.Intn(3) {
	case 1:
		f := 2 + rng.Intn(3)
		d.Partition = &passes.PartitionSpec{Kind: "cyclic", Factor: f, Dim: 0}
		label += fmt.Sprintf("+cyc%d", f)
	case 2:
		f := 2 + rng.Intn(3)
		d.Partition = &passes.PartitionSpec{Kind: "block", Factor: f, Dim: 0}
		label += fmt.Sprintf("+blk%d", f)
	}
	return d, label
}

// arr is one memref argument and its static shape.
type arr struct {
	v    *mlir.Value
	dims []int64
}

// scopeIV is an in-scope induction variable with its static value range
// [lo, hi) — the fact every in-bounds argument rests on. For triangular
// loops the range is the conservative rectangular hull.
type scopeIV struct {
	v      *mlir.Value
	lo, hi int64
}

type gen struct {
	rng      *rand.Rand
	cfg      Config
	arrs     []*arr
	redStmts int           // reduction statements emitted so far
	written  map[*arr]bool // arrays already targeted by an earlier nest
}

// module builds the whole program: argument arrays, then 1..MaxNests
// top-level nests, then return.
func (g *gen) module(name string) *mlir.Module {
	narr := 1 + g.rng.Intn(g.cfg.MaxArrays)
	types := make([]*mlir.Type, narr)
	shapes := make([][]int64, narr)
	for i := range types {
		rank := 1 + g.rng.Intn(2)
		dims := make([]int64, rank)
		for d := range dims {
			dims[d] = g.extent()
		}
		shapes[i] = dims
		types[i] = mlir.MemRef(dims, mlir.F32())
	}
	m := mlir.NewModule()
	f, args := m.AddFunc(name, types, nil)
	b := mlir.NewBuilder(mlir.FuncBody(f))
	for i, a := range args {
		g.arrs = append(g.arrs, &arr{v: a, dims: shapes[i]})
	}
	g.written = make(map[*arr]bool)
	nests := 1 + g.rng.Intn(g.cfg.MaxNests)
	for i := 0; i < nests; i++ {
		g.nest(b)
	}
	b.Return()
	return m
}

func (g *gen) extent() int64 {
	return g.cfg.MinExtent + g.rng.Int63n(g.cfg.MaxExtent-g.cfg.MinExtent+1)
}

// nest emits one top-level loop nest writing a randomly chosen
// destination array. The loops cover the destination's dimensions
// exactly (shrunk by the stencil margin when offsets are in play), so
// every store is in bounds and — absent a reduction loop — every cell is
// visited once per nest.
func (g *gen) nest(b *mlir.Builder) {
	dst := g.arrs[g.rng.Intn(len(g.arrs))]
	margin := int64(0)
	if g.rng.Intn(2) == 0 {
		margin = 1 // leave room for ±1 stencil offsets on every axis
	}
	kind := g.rng.Intn(3) // 0 = map, 1 = reduce, 2 = stencil-flavored map
	if kind == 1 && g.redStmts >= g.cfg.MaxRedStmts {
		kind = 0
	}

	// Dead-store avoidance keeps every statement observable at the
	// outputs (a miscompile anywhere must be able to diverge the final
	// state): a statement after the first, or the first statement of a
	// nest re-targeting an already-written array, must read the current
	// cell, chaining earlier stores into the value that survives.
	rewrite := g.written[dst]
	g.written[dst] = true
	var ivs []scopeIV
	var body func(*mlir.Builder)
	body = func(bb *mlir.Builder) {
		switch kind {
		case 1:
			g.reduceStmt(bb, dst, ivs, rewrite)
		default:
			n := 1 + g.rng.Intn(g.cfg.MaxStmts)
			for i := 0; i < n; i++ {
				g.mapStmt(bb, dst, ivs, margin, rewrite || i > 0)
			}
		}
	}

	// Build the loops inside-out via closures: loop d wraps loop d+1.
	var emit func(bb *mlir.Builder, d int)
	emit = func(bb *mlir.Builder, d int) {
		if d == len(dst.dims) {
			body(bb)
			return
		}
		lo, hi := margin, dst.dims[d]-margin
		// Triangular inner bound (trmm/syrk shape): j < i+1, valid when
		// the outer range fits inside this dimension.
		if d > 0 && margin == 0 && g.rng.Intn(4) == 0 && ivs[d-1].hi <= dst.dims[d] {
			outer := ivs[d-1]
			bb.AffineForUpTo(mlir.NewMap(1, 0, mlir.Add(mlir.Dim(0), mlir.Const(1))),
				[]*mlir.Value{outer.v}, func(bb *mlir.Builder, iv *mlir.Value) {
					ivs = append(ivs, scopeIV{v: iv, lo: 0, hi: outer.hi})
					emit(bb, d+1)
					ivs = ivs[:len(ivs)-1]
				})
			return
		}
		bb.AffineForConst(lo, hi, 1, func(bb *mlir.Builder, iv *mlir.Value) {
			ivs = append(ivs, scopeIV{v: iv, lo: lo, hi: hi})
			emit(bb, d+1)
			ivs = ivs[:len(ivs)-1]
		})
	}
	emit(b, 0)
}

// mapStmt emits dst[ivs] = expr or the damped accumulation
// dst[ivs] = 0.5*dst[ivs] + 0.5*expr. Both keep |cell| bounded by the
// maximum leaf magnitude, so repeated sweeps (time loops, revisits
// through constant indices) never amplify values.
func (g *gen) mapStmt(b *mlir.Builder, dst *arr, ivs []scopeIV, margin int64, damp bool) {
	idx := g.storeIndex(b, dst, ivs)
	rhs := g.sumExpr(b, ivs, margin)
	if damp || g.rng.Intn(3) == 0 {
		cur := b.AffineLoad(dst.v, idx...)
		half := b.ConstantFloat(0.5, mlir.F32())
		rhs = b.AddF(b.MulF(half, cur), b.MulF(half, rhs))
	}
	b.AffineStore(rhs, dst.v, idx...)
}

// reduceStmt emits the gemm pattern: an init statement at this level,
// then an inner reduction loop accumulating a damped product into the
// same cell. The cell is visited once per nest (the store index covers
// every enclosing loop), so the accumulation is bounded by the trip
// count of the one reduction loop.
func (g *gen) reduceStmt(b *mlir.Builder, dst *arr, ivs []scopeIV, rewrite bool) {
	idx := g.storeIndex(b, dst, ivs)
	// Init: dst = c or dst = c*dst (beta-scaling; forced when an earlier
	// nest wrote dst, so its stores stay live), once per cell.
	c := b.ConstantFloat(g.coeff(), mlir.F32())
	if !rewrite && g.rng.Intn(2) == 0 {
		b.AffineStore(c, dst.v, idx...)
	} else {
		b.AffineStore(b.MulF(c, b.AffineLoad(dst.v, idx...)), dst.v, idx...)
	}
	g.redStmts++
	trip := 2 + g.rng.Int63n(7)
	eighth := b.ConstantFloat(0.125, mlir.F32())
	b.AffineForConst(0, trip, 1, func(b *mlir.Builder, k *mlir.Value) {
		inner := append(append([]scopeIV(nil), ivs...), scopeIV{v: k, lo: 0, hi: trip})
		p := b.MulF(g.leaf(b, inner, 0), g.leaf(b, inner, 0))
		cur := b.AffineLoad(dst.v, idx...)
		b.AffineStore(b.AddF(cur, b.MulF(eighth, p)), dst.v, idx...)
	})
}

// storeIndex maps the destination's dimensions to the enclosing loop
// IVs, in order — the invariant that makes stores in bounds and cell
// visits unique.
func (g *gen) storeIndex(_ *mlir.Builder, dst *arr, ivs []scopeIV) []*mlir.Value {
	idx := make([]*mlir.Value, len(dst.dims))
	for d := range dst.dims {
		idx[d] = ivs[d].v
	}
	return idx
}

// sumExpr builds a damped convex combination: sum of 1..3 terms whose
// coefficients sum to 1, each term a product of one or two leaves. With
// every leaf bounded, the result is bounded by the largest leaf product.
func (g *gen) sumExpr(b *mlir.Builder, ivs []scopeIV, margin int64) *mlir.Value {
	weights := [][]float64{
		{1},
		{0.5, 0.5},
		{0.75, 0.25},
		{0.5, 0.25, 0.25},
	}
	ws := weights[g.rng.Intn(len(weights))]
	var sum *mlir.Value
	for _, w := range ws {
		if g.rng.Intn(4) == 0 {
			w = -w
		}
		term := b.MulF(b.ConstantFloat(w, mlir.F32()), g.product(b, ivs, margin))
		if sum == nil {
			sum = term
		} else {
			sum = b.AddF(sum, term)
		}
	}
	if g.rng.Intn(6) == 0 {
		// A guarded divide: |divisor| >= 1 keeps the damping intact.
		divisors := []float64{2, 4, -2, 1.5}
		sum = b.DivF(sum, b.ConstantFloat(divisors[g.rng.Intn(len(divisors))], mlir.F32()))
	}
	return sum
}

// product is one or two leaves multiplied (values stay bounded since
// every leaf is).
func (g *gen) product(b *mlir.Builder, ivs []scopeIV, margin int64) *mlir.Value {
	l := g.loadOrLeaf(b, ivs, margin)
	if g.rng.Intn(3) == 0 {
		return b.MulF(l, g.loadOrLeaf(b, ivs, margin))
	}
	return l
}

func (g *gen) loadOrLeaf(b *mlir.Builder, ivs []scopeIV, margin int64) *mlir.Value {
	if g.rng.Intn(5) == 0 {
		return g.leaf(b, ivs, margin)
	}
	return g.load(b, ivs, margin)
}

// leaf is a non-load operand: a float constant, or a normalized
// mixed-integer term (index arithmetic cast to float and scaled below
// magnitude one — exercising index_cast/addi/muli/sitofp through every
// layer while keeping both flows' integer widths equivalent).
func (g *gen) leaf(b *mlir.Builder, ivs []scopeIV, margin int64) *mlir.Value {
	switch g.rng.Intn(3) {
	case 0:
		return b.ConstantFloat(g.coeff(), mlir.F32())
	case 1:
		iv := ivs[g.rng.Intn(len(ivs))]
		x := b.IndexCast(iv.v, mlir.I64())
		if g.rng.Intn(2) == 0 {
			x = b.AddI(x, b.ConstantInt(int64(1+g.rng.Intn(7)), mlir.I64()))
		}
		if g.rng.Intn(2) == 0 {
			x = b.MulI(x, b.ConstantInt(int64(1+g.rng.Intn(4)), mlir.I64()))
		}
		// iv < MaxExtent, so |x| <= (MaxExtent+7)*4 < 64 under the default
		// extents; 1/64 normalizes the term under the damping bound.
		return b.MulF(b.SIToFP(x, mlir.F32()), b.ConstantFloat(1.0/64, mlir.F32()))
	default:
		return g.load(b, ivs, margin)
	}
}

func (g *gen) coeff() float64 {
	consts := []float64{0.5, 0.25, 0.75, 1.0, -0.5, -0.25, 0.125}
	return consts[g.rng.Intn(len(consts))]
}

// load reads a random array at an in-bounds affine index: per dimension,
// an in-scope IV whose range fits the extent (with an optional ±1 offset
// when both the IV range and the stencil margin allow), else a constant
// index inside the extent.
func (g *gen) load(b *mlir.Builder, ivs []scopeIV, margin int64) *mlir.Value {
	src := g.arrs[g.rng.Intn(len(g.arrs))]
	exprs := make([]*mlir.AffineExpr, len(src.dims))
	var operands []*mlir.Value
	plain := true
	for d, e := range src.dims {
		var fits []scopeIV
		for _, iv := range ivs {
			if iv.hi <= e {
				fits = append(fits, iv)
			}
		}
		if len(fits) == 0 {
			exprs[d] = mlir.Const(g.rng.Int63n(e))
			plain = false
			continue
		}
		iv := fits[g.rng.Intn(len(fits))]
		off := int64(0)
		if margin > 0 && g.rng.Intn(2) == 0 {
			// Valid offsets: lo+off >= 0 and hi-1+off < e.
			var ok []int64
			for _, c := range []int64{-1, 1} {
				if iv.lo+c >= 0 && iv.hi-1+c < e {
					ok = append(ok, c)
				}
			}
			if len(ok) > 0 {
				off = ok[g.rng.Intn(len(ok))]
			}
		}
		pos := len(operands)
		operands = append(operands, iv.v)
		if off == 0 {
			exprs[d] = mlir.Dim(pos)
		} else {
			exprs[d] = mlir.Add(mlir.Dim(pos), mlir.Const(off))
			plain = false
		}
	}
	if plain && len(operands) == len(src.dims) {
		return b.AffineLoad(src.v, operands...)
	}
	return b.AffineLoadMap(src.v, mlir.NewMap(len(operands), 0, exprs...), operands...)
}

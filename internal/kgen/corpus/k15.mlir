module {
  func.func @kg15(%arg0: memref<6xf32>) {
    affine.for %0 = 0 to 6 step 1 {
      %1 = arith.constant 0.5 : f32
      %2 = affine.load %arg0[%0] : memref<6xf32>
      %3 = affine.load %arg0[%0] : memref<6xf32>
      %4 = arith.mulf %2, %3 : f32
      %5 = arith.mulf %1, %4 : f32
      %6 = arith.constant -0.5 : f32
      %7 = affine.load %arg0[%0] : memref<6xf32>
      %8 = arith.mulf %6, %7 : f32
      %9 = arith.addf %5, %8 : f32
      affine.store %9, %arg0[%0] : memref<6xf32>
    }
    func.return
  }
}

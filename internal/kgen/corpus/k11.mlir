module {
  func.func @kg11(%arg0: memref<8x8xf32>) {
    affine.for %0 = 0 to 8 step 1 {
      affine.for %1 = 0 to affine_map<(d0) -> ((d0 + 1))>(%0) step 1 {
        %2 = arith.constant 0.5 : f32
        %3 = arith.index_cast %0 : index to i64
        %4 = arith.constant 1 : i64
        %5 = arith.muli %3, %4 : i64
        %6 = arith.sitofp %5 : i64 to f32
        %7 = arith.constant 0.015625 : f32
        %8 = arith.mulf %6, %7 : f32
        %9 = affine.load %arg0[%0, %0] : memref<8x8xf32>
        %10 = arith.mulf %8, %9 : f32
        %11 = arith.mulf %2, %10 : f32
        %12 = arith.constant -0.5 : f32
        %13 = arith.index_cast %1 : index to i64
        %14 = arith.constant 2 : i64
        %15 = arith.addi %13, %14 : i64
        %16 = arith.constant 2 : i64
        %17 = arith.muli %15, %16 : i64
        %18 = arith.sitofp %17 : i64 to f32
        %19 = arith.constant 0.015625 : f32
        %20 = arith.mulf %18, %19 : f32
        %21 = arith.mulf %12, %20 : f32
        %22 = arith.addf %11, %21 : f32
        affine.store %22, %arg0[%0, %1] : memref<8x8xf32>
      }
    }
    func.return
  }
}

module {
  func.func @kg1(%arg0: memref<5x5xf32>, %arg1: memref<4x7xf32>, %arg2: memref<5xf32>) {
    affine.for %0 = 0 to 5 step 1 {
      %1 = arith.constant 1.0 : f32
      %2 = affine.load %arg2[%0] : memref<5xf32>
      %3 = arith.mulf %1, %2 : f32
      %4 = affine.load %arg2[%0] : memref<5xf32>
      %5 = arith.constant 0.5 : f32
      %6 = arith.mulf %5, %4 : f32
      %7 = arith.mulf %5, %3 : f32
      %8 = arith.addf %6, %7 : f32
      affine.store %8, %arg2[%0] : memref<5xf32>
      %9 = arith.constant 1.0 : f32
      %10 = affine.load %arg1[%0] map affine_map<(d0) -> (0, d0)> : memref<4x7xf32>
      %11 = arith.index_cast %0 : index to i64
      %12 = arith.sitofp %11 : i64 to f32
      %13 = arith.constant 0.015625 : f32
      %14 = arith.mulf %12, %13 : f32
      %15 = arith.mulf %10, %14 : f32
      %16 = arith.mulf %9, %15 : f32
      %17 = affine.load %arg2[%0] : memref<5xf32>
      %18 = arith.constant 0.5 : f32
      %19 = arith.mulf %18, %17 : f32
      %20 = arith.mulf %18, %16 : f32
      %21 = arith.addf %19, %20 : f32
      affine.store %21, %arg2[%0] : memref<5xf32>
    }
    func.return
  }
}

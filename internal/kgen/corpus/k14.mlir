module {
  func.func @kg14(%arg0: memref<4xf32>, %arg1: memref<5xf32>, %arg2: memref<8xf32>) {
    affine.for %0 = 1 to 7 step 1 {
      %1 = arith.constant -0.5 : f32
      %2 = affine.load %arg2[%0] : memref<8xf32>
      %3 = arith.mulf %1, %2 : f32
      affine.store %3, %arg2[%0] : memref<8xf32>
      %4 = arith.constant 0.125 : f32
      affine.for %5 = 0 to 8 step 1 {
        %6 = affine.load %arg2[%0] : memref<8xf32>
        %7 = arith.index_cast %0 : index to i64
        %8 = arith.constant 4 : i64
        %9 = arith.addi %7, %8 : i64
        %10 = arith.sitofp %9 : i64 to f32
        %11 = arith.constant 0.015625 : f32
        %12 = arith.mulf %10, %11 : f32
        %13 = arith.mulf %6, %12 : f32
        %14 = affine.load %arg2[%0] : memref<8xf32>
        %15 = arith.mulf %4, %13 : f32
        %16 = arith.addf %14, %15 : f32
        affine.store %16, %arg2[%0] : memref<8xf32>
      }
    }
    func.return
  }
}

module {
  func.func @kg6(%arg0: memref<6x7xf32>) {
    affine.for %0 = 1 to 5 step 1 {
      affine.for %1 = 1 to 6 step 1 {
        %2 = arith.constant 0.5 : f32
        %3 = affine.load %arg0[%1, %1] map affine_map<(d0, d1) -> (d0, (d1 + 1))> : memref<6x7xf32>
        %4 = affine.load %arg0[%1, %0] map affine_map<(d0, d1) -> ((d0 - 1), (d1 - 1))> : memref<6x7xf32>
        %5 = arith.mulf %3, %4 : f32
        %6 = arith.mulf %2, %5 : f32
        %7 = arith.constant 0.25 : f32
        %8 = affine.load %arg0[%0, %0] map affine_map<(d0, d1) -> ((d0 + 1), d1)> : memref<6x7xf32>
        %9 = arith.mulf %7, %8 : f32
        %10 = arith.addf %6, %9 : f32
        %11 = arith.constant 0.25 : f32
        %12 = affine.load %arg0[%0, %1] map affine_map<(d0, d1) -> ((d0 + 1), (d1 - 1))> : memref<6x7xf32>
        %13 = arith.mulf %11, %12 : f32
        %14 = arith.addf %10, %13 : f32
        affine.store %14, %arg0[%0, %1] : memref<6x7xf32>
        %15 = arith.constant 1.0 : f32
        %16 = affine.load %arg0[%0, %1] map affine_map<(d0, d1) -> ((d0 + 1), d1)> : memref<6x7xf32>
        %17 = affine.load %arg0[%1, %0] : memref<6x7xf32>
        %18 = arith.mulf %16, %17 : f32
        %19 = arith.mulf %15, %18 : f32
        %20 = arith.constant 4.0 : f32
        %21 = arith.divf %19, %20 : f32
        %22 = affine.load %arg0[%0, %1] : memref<6x7xf32>
        %23 = arith.constant 0.5 : f32
        %24 = arith.mulf %23, %22 : f32
        %25 = arith.mulf %23, %21 : f32
        %26 = arith.addf %24, %25 : f32
        affine.store %26, %arg0[%0, %1] : memref<6x7xf32>
      }
    }
    func.return
  }
}

module {
  func.func @kg8(%arg0: memref<5xf32>, %arg1: memref<5xf32>) {
    affine.for %0 = 0 to 5 step 1 {
      %1 = arith.constant -0.5 : f32
      %2 = affine.load %arg0[%0] : memref<5xf32>
      %3 = arith.constant 0.75 : f32
      %4 = arith.mulf %2, %3 : f32
      %5 = arith.mulf %1, %4 : f32
      %6 = arith.constant -0.5 : f32
      %7 = affine.load %arg0[%0] : memref<5xf32>
      %8 = arith.mulf %6, %7 : f32
      %9 = arith.addf %5, %8 : f32
      affine.store %9, %arg1[%0] : memref<5xf32>
    }
    func.return
  }
}

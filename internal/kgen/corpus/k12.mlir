module {
  func.func @kg12(%arg0: memref<7x5xf32>) {
    affine.for %0 = 0 to 7 step 1 {
      affine.for %1 = 0 to 5 step 1 {
        %2 = arith.constant 1.0 : f32
        %3 = affine.load %arg0[%0, %1] : memref<7x5xf32>
        %4 = affine.load %arg0[%0, %1] : memref<7x5xf32>
        %5 = arith.mulf %3, %4 : f32
        %6 = arith.mulf %2, %5 : f32
        affine.store %6, %arg0[%0, %1] : memref<7x5xf32>
      }
    }
    func.return
  }
}

module {
  func.func @kg5(%arg0: memref<5xf32>) {
    affine.for %0 = 1 to 4 step 1 {
      %1 = arith.constant 0.75 : f32
      affine.store %1, %arg0[%0] : memref<5xf32>
      %2 = arith.constant 0.125 : f32
      affine.for %3 = 0 to 5 step 1 {
        %4 = affine.load %arg0[%3] : memref<5xf32>
        %5 = arith.index_cast %0 : index to i64
        %6 = arith.constant 4 : i64
        %7 = arith.addi %5, %6 : i64
        %8 = arith.sitofp %7 : i64 to f32
        %9 = arith.constant 0.015625 : f32
        %10 = arith.mulf %8, %9 : f32
        %11 = arith.mulf %4, %10 : f32
        %12 = affine.load %arg0[%0] : memref<5xf32>
        %13 = arith.mulf %2, %11 : f32
        %14 = arith.addf %12, %13 : f32
        affine.store %14, %arg0[%0] : memref<5xf32>
      }
    }
    func.return
  }
}

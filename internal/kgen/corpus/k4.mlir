module {
  func.func @kg4(%arg0: memref<7xf32>, %arg1: memref<6x8xf32>) {
    affine.for %0 = 0 to 6 step 1 {
      affine.for %1 = 0 to 8 step 1 {
        %2 = arith.constant 0.5 : f32
        %3 = arith.index_cast %1 : index to i64
        %4 = arith.constant 1 : i64
        %5 = arith.addi %3, %4 : i64
        %6 = arith.constant 2 : i64
        %7 = arith.muli %5, %6 : i64
        %8 = arith.sitofp %7 : i64 to f32
        %9 = arith.constant 0.015625 : f32
        %10 = arith.mulf %8, %9 : f32
        %11 = arith.mulf %2, %10 : f32
        %12 = arith.constant 0.25 : f32
        %13 = affine.load %arg0[%0] : memref<7xf32>
        %14 = arith.mulf %12, %13 : f32
        %15 = arith.addf %11, %14 : f32
        %16 = arith.constant 0.25 : f32
        %17 = affine.load %arg1[%0, %0] : memref<6x8xf32>
        %18 = arith.mulf %16, %17 : f32
        %19 = arith.addf %15, %18 : f32
        %20 = arith.constant 1.5 : f32
        %21 = arith.divf %19, %20 : f32
        affine.store %21, %arg1[%0, %1] : memref<6x8xf32>
      }
    }
    func.return
  }
}

module {
  func.func @kg9(%arg0: memref<4xf32>, %arg1: memref<8x6xf32>, %arg2: memref<5x8xf32>) {
    affine.for %0 = 1 to 4 step 1 {
      affine.for %1 = 1 to 7 step 1 {
        %2 = arith.constant 0.5 : f32
        %3 = affine.load %arg2[%0, %1] : memref<5x8xf32>
        %4 = arith.mulf %2, %3 : f32
        %5 = arith.constant 0.5 : f32
        %6 = affine.load %arg1[%0, %0] map affine_map<(d0, d1) -> (d0, (d1 + 1))> : memref<8x6xf32>
        %7 = arith.mulf %5, %6 : f32
        %8 = arith.addf %4, %7 : f32
        %9 = arith.constant -2.0 : f32
        %10 = arith.divf %8, %9 : f32
        affine.store %10, %arg2[%0, %1] : memref<5x8xf32>
      }
    }
    func.return
  }
}

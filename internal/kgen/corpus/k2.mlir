module {
  func.func @kg2(%arg0: memref<6xf32>, %arg1: memref<6xf32>) {
    affine.for %0 = 1 to 5 step 1 {
      %1 = arith.constant 0.75 : f32
      affine.store %1, %arg0[%0] : memref<6xf32>
      %2 = arith.constant 0.125 : f32
      affine.for %3 = 0 to 3 step 1 {
        %4 = arith.constant -0.25 : f32
        %5 = affine.load %arg1[%3] : memref<6xf32>
        %6 = arith.mulf %4, %5 : f32
        %7 = affine.load %arg0[%0] : memref<6xf32>
        %8 = arith.mulf %2, %6 : f32
        %9 = arith.addf %7, %8 : f32
        affine.store %9, %arg0[%0] : memref<6xf32>
      }
    }
    func.return
  }
}

module {
  func.func @kg3(%arg0: memref<8x5xf32>, %arg1: memref<7x6xf32>) {
    affine.for %0 = 0 to 8 step 1 {
      affine.for %1 = 0 to 5 step 1 {
        %2 = arith.constant 0.5 : f32
        %3 = affine.load %arg0[%0, %1] : memref<8x5xf32>
        %4 = arith.mulf %2, %3 : f32
        %5 = arith.constant 0.25 : f32
        %6 = affine.load %arg1[%1, %1] : memref<7x6xf32>
        %7 = arith.mulf %5, %6 : f32
        %8 = arith.addf %4, %7 : f32
        %9 = arith.constant 0.25 : f32
        %10 = affine.load %arg0[%0, %1] : memref<8x5xf32>
        %11 = arith.mulf %9, %10 : f32
        %12 = arith.addf %8, %11 : f32
        %13 = arith.constant 2.0 : f32
        %14 = arith.divf %12, %13 : f32
        affine.store %14, %arg0[%0, %1] : memref<8x5xf32>
        %15 = arith.constant 1.0 : f32
        %16 = affine.load %arg1[%1, %1] : memref<7x6xf32>
        %17 = arith.mulf %15, %16 : f32
        %18 = affine.load %arg0[%0, %1] : memref<8x5xf32>
        %19 = arith.constant 0.5 : f32
        %20 = arith.mulf %19, %18 : f32
        %21 = arith.mulf %19, %17 : f32
        %22 = arith.addf %20, %21 : f32
        affine.store %22, %arg0[%0, %1] : memref<8x5xf32>
      }
    }
    affine.for %23 = 1 to 6 step 1 {
      affine.for %24 = 1 to 5 step 1 {
        %25 = arith.constant 0.5 : f32
        %26 = affine.load %arg1[%24, %24] map affine_map<(d0, d1) -> ((d0 + 1), (d1 - 1))> : memref<7x6xf32>
        %27 = arith.mulf %25, %26 : f32
        %28 = arith.constant -0.5 : f32
        %29 = affine.load %arg1[%24, %24] map affine_map<(d0, d1) -> ((d0 - 1), d1)> : memref<7x6xf32>
        %30 = affine.load %arg1[%24, %23] map affine_map<(d0, d1) -> (d0, (d1 - 1))> : memref<7x6xf32>
        %31 = arith.mulf %29, %30 : f32
        %32 = arith.mulf %28, %31 : f32
        %33 = arith.addf %27, %32 : f32
        %34 = arith.constant 4.0 : f32
        %35 = arith.divf %33, %34 : f32
        affine.store %35, %arg1[%23, %24] : memref<7x6xf32>
        %36 = arith.constant 1.0 : f32
        %37 = arith.index_cast %23 : index to i64
        %38 = arith.constant 7 : i64
        %39 = arith.addi %37, %38 : i64
        %40 = arith.constant 1 : i64
        %41 = arith.muli %39, %40 : i64
        %42 = arith.sitofp %41 : i64 to f32
        %43 = arith.constant 0.015625 : f32
        %44 = arith.mulf %42, %43 : f32
        %45 = affine.load %arg0[%24, %24] : memref<8x5xf32>
        %46 = arith.mulf %44, %45 : f32
        %47 = arith.mulf %36, %46 : f32
        %48 = affine.load %arg1[%23, %24] : memref<7x6xf32>
        %49 = arith.constant 0.5 : f32
        %50 = arith.mulf %49, %48 : f32
        %51 = arith.mulf %49, %47 : f32
        %52 = arith.addf %50, %51 : f32
        affine.store %52, %arg1[%23, %24] : memref<7x6xf32>
      }
    }
    func.return
  }
}

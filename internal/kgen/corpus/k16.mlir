module {
  func.func @kg16(%arg0: memref<7x6xf32>) {
    affine.for %0 = 1 to 6 step 1 {
      affine.for %1 = 1 to 5 step 1 {
        %2 = arith.constant 1.0 : f32
        affine.store %2, %arg0[%0, %1] : memref<7x6xf32>
        %3 = arith.constant 0.125 : f32
        affine.for %4 = 0 to 5 step 1 {
          %5 = arith.constant 0.125 : f32
          %6 = arith.constant 1.0 : f32
          %7 = arith.mulf %5, %6 : f32
          %8 = affine.load %arg0[%0, %1] : memref<7x6xf32>
          %9 = arith.mulf %3, %7 : f32
          %10 = arith.addf %8, %9 : f32
          affine.store %10, %arg0[%0, %1] : memref<7x6xf32>
        }
      }
    }
    affine.for %11 = 0 to 7 step 1 {
      affine.for %12 = 0 to 6 step 1 {
        %13 = arith.constant -0.5 : f32
        %14 = affine.load %arg0[%11, %12] : memref<7x6xf32>
        %15 = arith.mulf %13, %14 : f32
        affine.store %15, %arg0[%11, %12] : memref<7x6xf32>
        %16 = arith.constant 0.125 : f32
        affine.for %17 = 0 to 7 step 1 {
          %18 = affine.load %arg0[%17, %12] : memref<7x6xf32>
          %19 = affine.load %arg0[%12, %12] : memref<7x6xf32>
          %20 = arith.mulf %18, %19 : f32
          %21 = affine.load %arg0[%11, %12] : memref<7x6xf32>
          %22 = arith.mulf %16, %20 : f32
          %23 = arith.addf %21, %22 : f32
          affine.store %23, %arg0[%11, %12] : memref<7x6xf32>
        }
      }
    }
    func.return
  }
}

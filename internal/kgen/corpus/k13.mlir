module {
  func.func @kg13(%arg0: memref<6x7xf32>, %arg1: memref<8xf32>) {
    affine.for %0 = 1 to 7 step 1 {
      %1 = arith.constant 0.5 : f32
      %2 = arith.constant 0.25 : f32
      %3 = arith.mulf %1, %2 : f32
      %4 = arith.constant 0.25 : f32
      %5 = arith.constant -0.5 : f32
      %6 = affine.load %arg0[%0] map affine_map<(d0) -> (2, d0)> : memref<6x7xf32>
      %7 = arith.mulf %5, %6 : f32
      %8 = arith.mulf %4, %7 : f32
      %9 = arith.addf %3, %8 : f32
      %10 = arith.constant 0.25 : f32
      %11 = arith.constant 0.125 : f32
      %12 = arith.mulf %10, %11 : f32
      %13 = arith.addf %9, %12 : f32
      %14 = affine.load %arg1[%0] : memref<8xf32>
      %15 = arith.constant 0.5 : f32
      %16 = arith.mulf %15, %14 : f32
      %17 = arith.mulf %15, %13 : f32
      %18 = arith.addf %16, %17 : f32
      affine.store %18, %arg1[%0] : memref<8xf32>
    }
    affine.for %19 = 1 to 7 step 1 {
      %20 = arith.constant 1.0 : f32
      %21 = affine.load %arg0[%19] map affine_map<(d0) -> (5, (d0 - 1))> : memref<6x7xf32>
      %22 = arith.mulf %20, %21 : f32
      %23 = arith.constant -2.0 : f32
      %24 = arith.divf %22, %23 : f32
      %25 = affine.load %arg1[%19] : memref<8xf32>
      %26 = arith.constant 0.5 : f32
      %27 = arith.mulf %26, %25 : f32
      %28 = arith.mulf %26, %24 : f32
      %29 = arith.addf %27, %28 : f32
      affine.store %29, %arg1[%19] : memref<8xf32>
    }
    func.return
  }
}

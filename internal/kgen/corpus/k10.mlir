module {
  func.func @kg10(%arg0: memref<6xf32>, %arg1: memref<7x4xf32>, %arg2: memref<8x7xf32>) {
    affine.for %0 = 0 to 6 step 1 {
      %1 = arith.constant 1.0 : f32
      %2 = affine.load %arg2[%0, %0] : memref<8x7xf32>
      %3 = arith.constant -0.25 : f32
      %4 = arith.mulf %2, %3 : f32
      %5 = arith.mulf %1, %4 : f32
      affine.store %5, %arg0[%0] : memref<6xf32>
      %6 = arith.constant -0.75 : f32
      %7 = affine.load %arg0[%0] : memref<6xf32>
      %8 = affine.load %arg0[%0] : memref<6xf32>
      %9 = arith.mulf %7, %8 : f32
      %10 = arith.mulf %6, %9 : f32
      %11 = arith.constant -0.25 : f32
      %12 = arith.index_cast %0 : index to i64
      %13 = arith.sitofp %12 : i64 to f32
      %14 = arith.constant 0.015625 : f32
      %15 = arith.mulf %13, %14 : f32
      %16 = arith.mulf %11, %15 : f32
      %17 = arith.addf %10, %16 : f32
      %18 = affine.load %arg0[%0] : memref<6xf32>
      %19 = arith.constant 0.5 : f32
      %20 = arith.mulf %19, %18 : f32
      %21 = arith.mulf %19, %17 : f32
      %22 = arith.addf %20, %21 : f32
      affine.store %22, %arg0[%0] : memref<6xf32>
    }
    func.return
  }
}

package kgen_test

import (
	"os"
	"testing"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/kgen"
	"repro/internal/resilience"
)

// Determinism is the generator's hard contract: same seed, byte-identical
// kernel — module text, directives, and label.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := kgen.Generate(seed, kgen.Config{})
		b := kgen.Generate(seed, kgen.Config{})
		if a.MLIR != b.MLIR {
			t.Fatalf("seed %d: module text differs between runs", seed)
		}
		if a.Directives != b.Directives && (a.Directives.Partition == nil ||
			b.Directives.Partition == nil || *a.Directives.Partition != *b.Directives.Partition) {
			t.Fatalf("seed %d: directives differ between runs", seed)
		}
		if a.DirectiveLabel != b.DirectiveLabel {
			t.Fatalf("seed %d: label differs between runs", seed)
		}
		if a.Build() == nil {
			t.Fatalf("seed %d: generated module does not re-parse", seed)
		}
	}
}

// Every generated kernel must satisfy the engine's fresh-module contract:
// two Build calls return distinct, verifier-clean modules.
func TestBuildFreshModules(t *testing.T) {
	k := kgen.Generate(42, kgen.Config{})
	m1, m2 := k.Build(), k.Build()
	if m1 == nil || m2 == nil {
		t.Fatal("Build returned nil")
	}
	if m1 == m2 {
		t.Fatal("Build returned the same module twice")
	}
	if err := m1.Verify(); err != nil {
		t.Fatalf("generated module fails verification: %v", err)
	}
}

// The checked-in corpus must match the generator exactly; any drift means
// generation became nondeterministic or changed shape, and every consumer
// of the shared fuzz corpus would silently re-seed. Regenerate with
// UPDATE_KGEN_CORPUS=1 after intentional generator changes.
func TestCorpusMatchesGenerator(t *testing.T) {
	if os.Getenv("UPDATE_KGEN_CORPUS") == "1" {
		if err := kgen.WriteCorpus("corpus", kgen.DefaultCorpusSeeds); err != nil {
			t.Fatal(err)
		}
	}
	seeds := kgen.CorpusSeeds()
	if len(seeds) < 8 {
		t.Fatalf("corpus has only %d kernels; want >= 8", len(seeds))
	}
	for _, s := range seeds {
		want, ok := kgen.CorpusText(s)
		if !ok {
			t.Fatalf("seed %d listed but unreadable", s)
		}
		got := kgen.Generate(s, kgen.Config{}).MLIR
		if got != want {
			t.Errorf("seed %d: generator output drifted from checked-in corpus (regen with UPDATE_KGEN_CORPUS=1)", s)
		}
	}
}

// The 500-kernel differential smoke: every generated kernel must run
// through BOTH flows under the semantic oracle with zero divergences and
// zero conformance diagnostics (both surface as flow errors). This is the
// well-definedness guarantee the fuzz campaign rests on: a pristine
// kernel that trips the oracle would make every campaign finding suspect.
func TestCorpusSmokeBothFlows(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 40
	}
	tgt := hls.DefaultTarget()
	opts := flow.Options{VerifySemantics: true}
	for seed := 0; seed < n; seed++ {
		k := kgen.Generate(int64(seed), kgen.Config{})
		if _, err := flow.AdaptorFlowWith(k.Build(), k.Name, k.Directives, tgt, opts); err != nil {
			t.Fatalf("seed %d (%s): adaptor flow failed under %s: %v", seed, k.Name, k.DirectiveLabel, err)
		}
		if _, err := flow.CxxFlowWith(k.Build(), k.Name, k.Directives, tgt, opts); err != nil {
			t.Fatalf("seed %d (%s): cxx flow failed under %s: %v", seed, k.Name, k.DirectiveLabel, err)
		}
	}
}

// Injected miscompiles must be observable on kgen kernels — the fuzz
// campaign's findings channel. The failure must localize as KindMiscompile
// (or KindInjected when the corruption site reports itself).
func TestInjectedMiscompileDetected(t *testing.T) {
	k := kgen.Generate(1, kgen.Config{})
	tgt := hls.DefaultTarget()
	opts := flow.Options{VerifySemantics: true, InjectMiscompile: "mlir-opt/canonicalize"}
	_, err := flow.AdaptorFlowWith(k.Build(), k.Name, k.Directives, tgt, opts)
	if err == nil {
		t.Fatal("injected miscompile went undetected")
	}
	pf, ok := resilience.AsPassFailure(err)
	if !ok {
		t.Fatalf("want PassFailure, got %T: %v", err, err)
	}
	if pf.Kind != resilience.KindMiscompile && pf.Kind != resilience.KindInjected {
		t.Fatalf("want miscompile/injected kind, got %s: %v", pf.Kind, err)
	}
}

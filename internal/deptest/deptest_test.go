package deptest_test

import (
	"strings"
	"testing"

	"repro/internal/deptest"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// loopFixture is a built single loop with its engine and the store/load pair
// under test.
type loopFixture struct {
	eng    *deptest.Engine
	loop   *analysis.Loop
	st, ld *llvm.Instr
}

// singleLoop builds a canonical counted loop over a pointer-to-[n x float]
// parameter: for (i = 0; i < trip; i++) { arr[stIdx(i)] = arr[ldIdx(i)] }.
// The load is emitted first (source order load-then-store, like a real
// read-modify-write body).
func singleLoop(t *testing.T, trip, n int64,
	stIdx, ldIdx func(b *llvm.Builder, iv llvm.Value) llvm.Value) loopFixture {
	t.Helper()
	arrTy := llvm.ArrayOf(n, llvm.FloatT())
	arr := &llvm.Param{Name: "arr", Ty: llvm.Ptr(arrTy)}
	f := llvm.NewFunction("loop", llvm.Void(), arr)
	entry := f.AddBlock("entry")
	h := f.AddBlock("h")
	bb := f.AddBlock("body")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(h)
	b.SetBlock(h)
	iv := b.Phi(llvm.I64())
	cond := b.ICmp("slt", iv, llvm.CI(llvm.I64(), trip))
	b.CondBr(cond, bb, exit)
	b.SetBlock(bb)
	lp := b.GEP(arrTy, arr, llvm.CI(llvm.I64(), 0), ldIdx(b, iv))
	ld := b.Load(llvm.FloatT(), lp)
	sp := b.GEP(arrTy, arr, llvm.CI(llvm.I64(), 0), stIdx(b, iv))
	st := b.Store(ld, sp)
	next := b.Add(iv, llvm.CI(llvm.I64(), 1))
	b.Br(h)
	b.SetBlock(exit)
	b.Ret(nil)
	iv.AddIncoming(llvm.CI(llvm.I64(), 0), entry)
	iv.AddIncoming(next, bb)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	cfg := analysis.NewCFG(f)
	li := analysis.FindLoops(cfg, analysis.NewDomTree(cfg))
	l := li.ByHeader[h]
	if l == nil {
		t.Fatal("fixture loop not recovered")
	}
	return loopFixture{
		eng:  deptest.New(f, li, nil),
		loop: l, st: st, ld: ld,
	}
}

func ci(v int64) llvm.Value { return llvm.CI(llvm.I64(), v) }

// TestCarriedKnownAnswers drives the test hierarchy — ZIV, strong-SIV,
// weak-SIV, MIV classification with the exact-distance, GCD, and Banerjee
// deciders — through subscript pairs with known answers.
func TestCarriedKnownAnswers(t *testing.T) {
	cases := []struct {
		name      string
		trip, n   int64
		stIdx     func(b *llvm.Builder, iv llvm.Value) llvm.Value
		ldIdx     func(b *llvm.Builder, iv llvm.Value) llvm.Value
		wantRes   deptest.Result
		wantDist  int64
		wantExact bool
		wantTest  string // must appear in Tests
	}{
		{
			// arr[0] = arr[0]: the loop-invariant accumulation cell, a
			// distance-1 recurrence every iteration.
			name: "ziv-same-cell", trip: 16, n: 16,
			stIdx:   func(b *llvm.Builder, iv llvm.Value) llvm.Value { return ci(0) },
			ldIdx:   func(b *llvm.Builder, iv llvm.Value) llvm.Value { return ci(0) },
			wantRes: deptest.Dependent, wantDist: 1, wantExact: true, wantTest: "ziv",
		},
		{
			// arr[0] = arr[1]: distinct constant cells never collide.
			name: "ziv-distinct-cells", trip: 16, n: 16,
			stIdx:   func(b *llvm.Builder, iv llvm.Value) llvm.Value { return ci(0) },
			ldIdx:   func(b *llvm.Builder, iv llvm.Value) llvm.Value { return ci(1) },
			wantRes: deptest.Independent, wantTest: "ziv",
		},
		{
			// arr[i] = arr[i-1]: the classic distance-1 stream recurrence.
			name: "strong-siv-distance-1", trip: 16, n: 16,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
			ldIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Sub(iv, ci(1))
			},
			wantRes: deptest.Dependent, wantDist: 1, wantExact: true, wantTest: "strong-siv",
		},
		{
			// arr[i] = arr[i-3]: exact distance 3.
			name: "strong-siv-distance-3", trip: 16, n: 16,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
			ldIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Sub(iv, ci(3))
			},
			wantRes: deptest.Dependent, wantDist: 3, wantExact: true, wantTest: "strong-siv",
		},
		{
			// arr[i] = arr[i]: same location only within one iteration — no
			// loop-carried flow dependence (this is the pair the structural
			// model could not exonerate without the IV-dependence heuristic).
			name: "strong-siv-distance-0", trip: 16, n: 16,
			stIdx:   func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
			ldIdx:   func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
			wantRes: deptest.Independent, wantTest: "strong-siv",
		},
		{
			// arr[i] = arr[i+1]: the value read was never written by an
			// EARLIER iteration's store (the dependence is anti, not flow).
			name: "strong-siv-negative-distance", trip: 16, n: 16,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
			ldIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Add(iv, ci(1))
			},
			wantRes: deptest.Independent, wantTest: "strong-siv",
		},
		{
			// arr[2i] = arr[2i+1]: evens never meet odds — the distance
			// equation 2d = 1 has no integer solution.
			name: "same-coef-parity", trip: 8, n: 17,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Mul(iv, ci(2))
			},
			ldIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Add(b.Mul(iv, ci(2)), ci(1))
			},
			wantRes: deptest.Independent, wantTest: "strong-siv",
		},
		{
			// arr[4i] = arr[2i+1]: unequal coefficients, gcd(2,4,2)=2 does
			// not divide the constant 1 — the GCD test kills it.
			name: "gcd-infeasible", trip: 8, n: 33,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Mul(iv, ci(4))
			},
			ldIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Add(b.Mul(iv, ci(2)), ci(1))
			},
			wantRes: deptest.Independent, wantTest: "gcd",
		},
		{
			// arr[2i] = arr[i+40], trip 16: integer solutions exist (gcd=1)
			// but none within the iteration space — only the Banerjee bounds
			// test over [0, 15] can exclude it.
			name: "banerjee-infeasible", trip: 16, n: 80,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Mul(iv, ci(2))
			},
			ldIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Add(iv, ci(40))
			},
			wantRes: deptest.Independent, wantTest: "banerjee",
		},
		{
			// arr[2i] = arr[i]: a weak-SIV pair with real collisions
			// (store at i=2 writes arr[4], load at i=4 reads it) but no
			// single distance — reported as a conservative direction-only
			// dependence at the minimum distance 1.
			name: "weak-siv-feasible", trip: 16, n: 32,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Mul(iv, ci(2))
			},
			ldIdx:   func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
			wantRes: deptest.Dependent, wantDist: 1, wantExact: false, wantTest: "weak-siv",
		},
		{
			// Shifted linearized form: arr[8i] = arr[8i-8] via shl — the
			// adaptor's flattened addressing idiom; exact distance 1.
			name: "shl-linearized", trip: 8, n: 64,
			stIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Binary(llvm.OpShl, iv, ci(3))
			},
			ldIdx: func(b *llvm.Builder, iv llvm.Value) llvm.Value {
				return b.Sub(b.Binary(llvm.OpShl, iv, ci(3)), ci(8))
			},
			wantRes: deptest.Dependent, wantDist: 1, wantExact: true, wantTest: "strong-siv",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fx := singleLoop(t, tc.trip, tc.n, tc.stIdx, tc.ldIdx)
			cd := fx.eng.Carried(fx.loop, fx.st, fx.ld)
			if cd.Res != tc.wantRes {
				t.Fatalf("Carried = %v (tests %v), want %v", cd.Res, cd.Tests, tc.wantRes)
			}
			if tc.wantRes == deptest.Dependent {
				if cd.Dist != tc.wantDist || cd.Exact != tc.wantExact {
					t.Errorf("dist=%d exact=%v, want dist=%d exact=%v (tests %v)",
						cd.Dist, cd.Exact, tc.wantDist, tc.wantExact, cd.Tests)
				}
			}
			if !hasTest(cd.Tests, tc.wantTest) {
				t.Errorf("tests %v missing %q", cd.Tests, tc.wantTest)
			}
		})
	}
}

func hasTest(tests []string, want string) bool {
	for _, tt := range tests {
		if tt == want {
			return true
		}
	}
	return false
}

// nestFixture is a built two-deep nest (i outer, j inner) with multi-dim
// accesses A[stI][stJ] = A[ldI][ldJ] over an [8 x [8 x float]] parameter.
type nestFixture struct {
	eng          *deptest.Engine
	outer, inner *analysis.Loop
	st, ld       *llvm.Instr
}

func doubleLoop(t *testing.T, trip int64,
	stI, stJ, ldI, ldJ func(b *llvm.Builder, i, j llvm.Value) llvm.Value) nestFixture {
	t.Helper()
	rowTy := llvm.ArrayOf(8, llvm.FloatT())
	arrTy := llvm.ArrayOf(8, rowTy)
	arr := &llvm.Param{Name: "A", Ty: llvm.Ptr(arrTy)}
	f := llvm.NewFunction("nest", llvm.Void(), arr)
	entry := f.AddBlock("entry")
	hi := f.AddBlock("hi")
	hj := f.AddBlock("hj")
	body := f.AddBlock("body")
	latchI := f.AddBlock("latch.i")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(hi)
	b.SetBlock(hi)
	i := b.Phi(llvm.I64())
	condI := b.ICmp("slt", i, llvm.CI(llvm.I64(), trip))
	b.CondBr(condI, hj, exit)
	b.SetBlock(hj)
	j := b.Phi(llvm.I64())
	condJ := b.ICmp("slt", j, llvm.CI(llvm.I64(), trip))
	b.CondBr(condJ, body, latchI)
	b.SetBlock(body)
	lp := b.GEP(arrTy, arr, ci(0), ldI(b, i, j), ldJ(b, i, j))
	ld := b.Load(llvm.FloatT(), lp)
	sp := b.GEP(arrTy, arr, ci(0), stI(b, i, j), stJ(b, i, j))
	st := b.Store(ld, sp)
	nextJ := b.Add(j, ci(1))
	b.Br(hj)
	b.SetBlock(latchI)
	nextI := b.Add(i, ci(1))
	b.Br(hi)
	b.SetBlock(exit)
	b.Ret(nil)
	i.AddIncoming(ci(0), entry)
	i.AddIncoming(nextI, latchI)
	j.AddIncoming(ci(0), hi)
	j.AddIncoming(nextJ, body)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	cfg := analysis.NewCFG(f)
	li := analysis.FindLoops(cfg, analysis.NewDomTree(cfg))
	outer, inner := li.ByHeader[hi], li.ByHeader[hj]
	if outer == nil || inner == nil {
		t.Fatal("fixture nest not recovered")
	}
	return nestFixture{
		eng:   deptest.New(f, li, nil),
		outer: outer, inner: inner, st: st, ld: ld,
	}
}

func keepI(b *llvm.Builder, i, j llvm.Value) llvm.Value { return i }
func keepJ(b *llvm.Builder, i, j llvm.Value) llvm.Value { return j }

// TestCarriedNestLevels: A[i][j] = A[i-1][j] is carried at the outer level
// with exact distance 1 and NOT at the inner level — the per-level query
// must exonerate the inner loop that the structural model would have left
// ambiguous.
func TestCarriedNestLevels(t *testing.T) {
	fx := doubleLoop(t, 8, keepI, keepJ,
		func(b *llvm.Builder, i, j llvm.Value) llvm.Value { return b.Sub(i, ci(1)) },
		keepJ)
	if cd := fx.eng.Carried(fx.outer, fx.st, fx.ld); cd.Res != deptest.Dependent ||
		!cd.Exact || cd.Dist != 1 {
		t.Errorf("outer: got %+v, want exact distance-1 dependence", cd)
	}
	if cd := fx.eng.Carried(fx.inner, fx.st, fx.ld); cd.Res != deptest.Independent {
		t.Errorf("inner: got %+v, want independent (different rows never meet at fixed i)", cd)
	}
}

// TestCarriedMIVLinearized: the adaptor's flattened form A[8i+j] =
// A[8i+j-8] (one MIV subscript) is carried at the outer level; the inner
// level is excluded because the needed distance 8 exceeds the j-trip of 8.
func TestCarriedMIVLinearized(t *testing.T) {
	fx := singleLoopMIV(t)
	if cd := fx.eng.Carried(fx.outer, fx.st, fx.ld); cd.Res != deptest.Dependent {
		t.Errorf("outer: got %+v, want dependent", cd)
	} else if !hasTest(cd.Tests, "miv") {
		t.Errorf("outer tests %v missing miv", cd.Tests)
	}
	if cd := fx.eng.Carried(fx.inner, fx.st, fx.ld); cd.Res != deptest.Independent {
		t.Errorf("inner: got %+v, want independent (distance 8 > trip-1)", cd)
	}
}

func singleLoopMIV(t *testing.T) nestFixture {
	t.Helper()
	rowTy := llvm.ArrayOf(64, llvm.FloatT())
	arr := &llvm.Param{Name: "A", Ty: llvm.Ptr(rowTy)}
	f := llvm.NewFunction("miv", llvm.Void(), arr)
	entry := f.AddBlock("entry")
	hi := f.AddBlock("hi")
	hj := f.AddBlock("hj")
	body := f.AddBlock("body")
	latchI := f.AddBlock("latch.i")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(hi)
	b.SetBlock(hi)
	i := b.Phi(llvm.I64())
	b.CondBr(b.ICmp("slt", i, ci(8)), hj, exit)
	b.SetBlock(hj)
	j := b.Phi(llvm.I64())
	b.CondBr(b.ICmp("slt", j, ci(8)), body, latchI)
	b.SetBlock(body)
	lin := b.Add(b.Mul(i, ci(8)), j)
	lp := b.GEP(rowTy, arr, ci(0), b.Sub(lin, ci(8)))
	ld := b.Load(llvm.FloatT(), lp)
	sp := b.GEP(rowTy, arr, ci(0), lin)
	st := b.Store(ld, sp)
	nextJ := b.Add(j, ci(1))
	b.Br(hj)
	b.SetBlock(latchI)
	nextI := b.Add(i, ci(1))
	b.Br(hi)
	b.SetBlock(exit)
	b.Ret(nil)
	i.AddIncoming(ci(0), entry)
	i.AddIncoming(nextI, latchI)
	j.AddIncoming(ci(0), hi)
	j.AddIncoming(nextJ, body)
	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	cfg := analysis.NewCFG(f)
	li := analysis.FindLoops(cfg, analysis.NewDomTree(cfg))
	return nestFixture{
		eng:   deptest.New(f, li, nil),
		outer: li.ByHeader[hi], inner: li.ByHeader[hj], st: st, ld: ld,
	}
}

// TestEdgesVectors: arr[i] = arr[i-1] produces a flow edge store→load with
// the exact vector (1), an anti edge (0) (the load precedes the store in
// the body), and no other feasible directions.
func TestEdgesVectors(t *testing.T) {
	fx := singleLoop(t, 16, 16,
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return b.Sub(iv, ci(1)) })
	edges := fx.eng.Edges(fx.loop)
	var flow, anti, output *deptest.Edge
	for k := range edges {
		ed := &edges[k]
		switch ed.Kind {
		case "flow":
			flow = ed
		case "anti":
			anti = ed
		case "output":
			output = ed
		}
	}
	if flow == nil || flow.Res != deptest.Dependent || len(flow.Vectors) != 1 ||
		flow.Vectors[0].String() != "(1)" {
		t.Errorf("flow edge: %+v, want one vector (1)", flow)
	}
	if anti == nil || anti.Res != deptest.Independent {
		t.Errorf("anti edge: %+v, want independent (arr[i-1] is never re-stored later)", anti)
	}
	if output == nil || output.Res != deptest.Independent {
		t.Errorf("output edge: %+v, want independent (each cell stored once)", output)
	}
}

// TestLegalityInterchange: A[i][j] = A[i-1][j+1] carries the vector (1, -1);
// interchanging i and j turns it into (-1, 1), lexicographically negative —
// illegal. A[i][j] = A[i-1][j-1] carries (1, 1) and interchanges fine; its
// band is fully permutable (tilable).
func TestLegalityInterchange(t *testing.T) {
	bad := doubleLoop(t, 8, keepI, keepJ,
		func(b *llvm.Builder, i, j llvm.Value) llvm.Value { return b.Sub(i, ci(1)) },
		func(b *llvm.Builder, i, j llvm.Value) llvm.Value { return b.Add(j, ci(1)) })
	lg := bad.eng.LegalityOf(bad.outer)
	if v := lg.Interchange(bad.outer, bad.inner); v.Legal {
		t.Error("interchange over a (1, -1) dependence must be illegal")
	} else if !strings.Contains(v.Reason, "negative") {
		t.Errorf("unexpected reason: %s", v.Reason)
	}
	if v := lg.PermutableBand([]*analysis.Loop{bad.outer, bad.inner}); v.Legal {
		t.Error("a (1, -1) dependence is not fully permutable")
	}

	good := doubleLoop(t, 8, keepI, keepJ,
		func(b *llvm.Builder, i, j llvm.Value) llvm.Value { return b.Sub(i, ci(1)) },
		func(b *llvm.Builder, i, j llvm.Value) llvm.Value { return b.Sub(j, ci(1)) })
	lg = good.eng.LegalityOf(good.outer)
	if v := lg.Interchange(good.outer, good.inner); !v.Legal {
		t.Errorf("interchange over (1, 1) must be legal: %s", v.Reason)
	}
	if v := lg.Tilable([]*analysis.Loop{good.outer, good.inner}); !v.Legal {
		t.Errorf("a (1, 1) band is tilable: %s", v.Reason)
	}
}

// TestLegalityUnknownConservative: a non-affine access (IV multiplied by
// itself) must push every legality answer to illegal.
func TestLegalityUnknownConservative(t *testing.T) {
	fx := doubleLoop(t, 8, keepI, keepJ,
		func(b *llvm.Builder, i, j llvm.Value) llvm.Value { return b.Mul(i, i) },
		keepJ)
	lg := fx.eng.LegalityOf(fx.outer)
	if v := lg.Interchange(fx.outer, fx.inner); v.Legal {
		t.Error("unknown dependence must make interchange illegal")
	}
	if v := lg.PermutableBand([]*analysis.Loop{fx.outer, fx.inner}); v.Legal {
		t.Error("unknown dependence must make the band non-permutable")
	}
}

// TestAccessForm: the rendered access functions drive diagnostics; check
// the shape on a shifted access.
func TestAccessForm(t *testing.T) {
	fx := singleLoop(t, 16, 16,
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv },
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return b.Sub(iv, ci(1)) })
	form, ok := fx.eng.AccessForm(fx.ld.Args[0])
	if !ok {
		t.Fatal("load access should be affine")
	}
	if !strings.Contains(form, "- 1") || !strings.Contains(form, "[") {
		t.Errorf("unexpected access form %q", form)
	}
	lo, hi, ok := fx.eng.IndexRange(fx.st.Args[1].(*llvm.Instr).Args[2])
	if !ok || lo != 0 || hi != 15 {
		t.Errorf("IndexRange = [%d, %d] ok=%v, want [0, 15]", lo, hi, ok)
	}
}

// TestNonAffineUnknown: products of two IVs are outside the model and must
// come back Unknown, never a wrong Independent.
func TestNonAffineUnknown(t *testing.T) {
	fx := singleLoop(t, 8, 64,
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return b.Mul(iv, iv) },
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return iv })
	if cd := fx.eng.Carried(fx.loop, fx.st, fx.ld); cd.Res != deptest.Unknown {
		t.Errorf("got %+v, want Unknown for a quadratic subscript", cd)
	}
}

// TestZeroTripIndependent: a loop that never runs carries nothing.
func TestZeroTripIndependent(t *testing.T) {
	fx := singleLoop(t, 0, 16,
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return ci(0) },
		func(b *llvm.Builder, iv llvm.Value) llvm.Value { return ci(0) })
	if cd := fx.eng.Carried(fx.loop, fx.st, fx.ld); cd.Res != deptest.Independent {
		t.Errorf("got %+v, want Independent for a zero-trip loop", cd)
	}
}

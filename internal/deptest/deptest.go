// Package deptest is the exact affine dependence-test engine of the
// static-analysis layer. Over the loop nests recovered from LLVM IR
// (analysis.FindLoops/InductionVar) it extracts affine access functions
// (c0 + Σ ci·ivi) from GEP chains, classifies each subscript pair
// (ZIV / strong-SIV / weak-SIV / MIV), and runs the GCD and Banerjee bounds
// tests with trip-count-derived iteration bounds to decide, per load/store
// pair, whether a dependence exists — and when it does, its distance or
// direction vector per loop level.
//
// Three layers consume the verdicts: lint's loop-carried-dep and gep-bounds
// checks (provably independent pairs stop firing and diagnostics report
// exact distances), the scheduler's distance-aware RecMII
// (hls.Target.RecMIIWith: a distance-d recurrence bounds the II at
// ceil(latency/d) instead of the latency itself), and the Legality API that
// answers loop interchange/tiling questions from direction vectors.
//
// The engine is strictly conservative: whenever an access is not affine
// (unrecognized induction variable, chained GEPs, products of variables) the
// verdict is Unknown and callers fall back to the alias-plus-structural
// model that predates this package.
package deptest

import (
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// Result is a dependence verdict.
type Result int

// Verdicts, from least to most informative.
const (
	// Unknown means the engine could not decide (non-affine access, no
	// recognized loop structure): callers must stay conservative.
	Unknown Result = iota
	// Independent means the pair provably never touches the same location
	// under the queried direction constraints.
	Independent
	// Dependent means a dependence exists (or cannot be excluded) with the
	// reported distance/direction information.
	Dependent
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case Independent:
		return "independent"
	case Dependent:
		return "dependent"
	}
	return "unknown"
}

// Dir is a per-level dependence direction.
type Dir byte

// Directions: '=' (same iteration), '<' (source in an earlier iteration),
// '>' (source in a later iteration), '*' (unconstrained).
const (
	DirEq   Dir = '='
	DirLt   Dir = '<'
	DirGt   Dir = '>'
	DirStar Dir = '*'
)

// Level is one loop level of a dependence vector.
type Level struct {
	Loop *analysis.Loop
	Dir  Dir
	// Dist is the exact signed iteration distance (sink minus source) when
	// Known; direction-only levels leave it zero.
	Dist  int64
	Known bool
}

// Vector is a dependence vector, outermost level first.
type Vector []Level

// String renders the vector in the classic notation, exact distances as
// numbers and direction-only levels as their direction character:
// "(1, 0)" or "(<, *)".
func (v Vector) String() string {
	s := "("
	for i, lv := range v {
		if i > 0 {
			s += ", "
		}
		if lv.Known {
			s += itoa64(lv.Dist)
		} else {
			s += string(lv.Dir)
		}
	}
	return s + ")"
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// CarriedDep is the verdict of a carried-dependence query at one loop level.
type CarriedDep struct {
	Res Result
	// Dist is the dependence distance in iterations of the queried loop
	// (>= 1 when Res == Dependent). Exact marks a distance the subscript
	// equations pin down; inexact dependences conservatively report the
	// minimum distance 1.
	Dist  int64
	Exact bool
	// Tests lists the subscript classifications and tests applied, for
	// diagnostics ("ziv", "strong-siv", "weak-siv", "miv", "gcd",
	// "banerjee", "points-to", "non-affine").
	Tests []string
}

// Edge is one dependence between two memory instructions of a loop nest.
type Edge struct {
	Src, Dst *llvm.Instr
	// Kind is "flow" (store→load), "anti" (load→store), or "output"
	// (store→store).
	Kind string
	Base llvm.Value
	Res  Result
	// Vectors enumerates the feasible lexicographically non-negative
	// dependence vectors over the pair's common loop nest (empty for
	// Unknown edges).
	Vectors []Vector
	Tests   []string
}

// loopIV pairs a recognized induction phi with its loop.
type loopIV struct {
	loop *analysis.Loop
	iv   analysis.IndVar
}

type carriedKey struct {
	l      *analysis.Loop
	st, ld *llvm.Instr
}

// Engine caches per-function dependence state: recognized induction
// variables, loop nests, decomposed accesses, and carried-dependence
// verdicts. An Engine is not safe for concurrent use.
type Engine struct {
	f        *llvm.Function
	li       *analysis.LoopInfo
	mayAlias func(a, b llvm.Value) bool

	ivLoops map[*llvm.Instr]loopIV
	// trips maps each loop to its constant trip count, -1 when unknown.
	trips map[*analysis.Loop]int64
	nests map[*llvm.Block][]*analysis.Loop
	pos   map[*llvm.Instr]int
	acc   map[llvm.Value]accessInfo
	cache map[carriedKey]CarriedDep
}

// New builds a dependence engine for f over its loop structure. mayAlias
// (may be nil) is a points-to oracle consulted before any subscript test:
// pairs it disproves are Independent outright.
func New(f *llvm.Function, li *analysis.LoopInfo, mayAlias func(a, b llvm.Value) bool) *Engine {
	e := &Engine{
		f: f, li: li, mayAlias: mayAlias,
		ivLoops: map[*llvm.Instr]loopIV{},
		trips:   map[*analysis.Loop]int64{},
		nests:   map[*llvm.Block][]*analysis.Loop{},
		pos:     map[*llvm.Instr]int{},
		acc:     map[llvm.Value]accessInfo{},
		cache:   map[carriedKey]CarriedDep{},
	}
	for _, l := range li.Loops {
		if iv, ok := analysis.InductionVar(l); ok {
			e.ivLoops[iv.Phi] = loopIV{loop: l, iv: iv}
			e.trips[l] = iv.Trip()
		} else {
			e.trips[l] = -1
		}
	}
	n := 0
	for _, b := range f.Blocks {
		e.nests[b] = li.NestOf(b)
		for _, in := range b.Instrs {
			e.pos[in] = n
			n++
		}
	}
	return e
}

// nestOf returns the loops enclosing an instruction, outermost first.
func (e *Engine) nestOf(in *llvm.Instr) []*analysis.Loop {
	if in.Parent == nil {
		return nil
	}
	return e.nests[in.Parent]
}

// pairCtx is the loop context of one access pair: the common nest (loops
// enclosing both instructions, outermost first) and the loops enclosing
// exactly one side, whose iteration variables are free in the equations.
type pairCtx struct {
	common       []*analysis.Loop
	freeS, freeL []*analysis.Loop
}

func (e *Engine) pairContext(src, dst *llvm.Instr) pairCtx {
	ns, nd := e.nestOf(src), e.nestOf(dst)
	inDst := map[*analysis.Loop]bool{}
	for _, l := range nd {
		inDst[l] = true
	}
	var pc pairCtx
	common := map[*analysis.Loop]bool{}
	for _, l := range ns {
		if inDst[l] {
			pc.common = append(pc.common, l)
			common[l] = true
		} else {
			pc.freeS = append(pc.freeS, l)
		}
	}
	for _, l := range nd {
		if !common[l] {
			pc.freeL = append(pc.freeL, l)
		}
	}
	return pc
}

// coeffsContained checks that every loop an affine form references encloses
// the access (loops outside the nest would mean a phi value read after its
// loop exited, which these tests do not model).
func coeffsContained(a affineExpr, nest []*analysis.Loop) bool {
	in := map[*analysis.Loop]bool{}
	for _, l := range nest {
		in[l] = true
	}
	for _, l := range a.loops() {
		if !in[l] {
			return false
		}
	}
	return true
}

func addrOf(in *llvm.Instr) llvm.Value {
	if in.Op == llvm.OpStore {
		return in.Args[1]
	}
	return in.Args[0]
}

// Carried answers the recurrence query behind RecMII and the
// loop-carried-dep lint: does the store's value, written in some iteration
// of l, reach the load in a LATER iteration of l (outer common loops at
// equal iterations, inner loops unconstrained)? The result distinguishes a
// proven absence (Independent), a dependence with an exact or
// direction-only distance (Dependent), and the conservative Unknown for
// non-affine accesses.
func (e *Engine) Carried(l *analysis.Loop, st, ld *llvm.Instr) CarriedDep {
	if l == nil || st == nil || ld == nil ||
		st.Op != llvm.OpStore || ld.Op != llvm.OpLoad {
		return CarriedDep{Res: Unknown}
	}
	key := carriedKey{l, st, ld}
	if cd, ok := e.cache[key]; ok {
		return cd
	}
	cd := e.carried(l, st, ld)
	e.cache[key] = cd
	return cd
}

func (e *Engine) carried(l *analysis.Loop, st, ld *llvm.Instr) CarriedDep {
	stPtr, ldPtr := st.Args[1], ld.Args[0]
	if e.mayAlias != nil && !e.mayAlias(stPtr, ldPtr) {
		return CarriedDep{Res: Independent, Tests: []string{"points-to"}}
	}
	sa, sb := e.accessOf(stPtr), e.accessOf(ldPtr)
	if !sa.ok || !sb.ok {
		return CarriedDep{Res: Unknown, Tests: []string{"non-affine"}}
	}
	if sa.base != sb.base {
		// May-alias but distinct SSA roots: outside the affine model.
		return CarriedDep{Res: Unknown, Tests: []string{"distinct-bases"}}
	}
	if len(sa.subs) != len(sb.subs) {
		return CarriedDep{Res: Unknown, Tests: []string{"shape-mismatch"}}
	}
	pc := e.pairContext(st, ld)
	p := -1
	for i, cl := range pc.common {
		if cl == l {
			p = i
		}
	}
	if p < 0 {
		return CarriedDep{Res: Unknown, Tests: []string{"outside-nest"}}
	}
	if !coeffsContained(allSubs(sa), e.nestOf(st)) ||
		!coeffsContained(allSubs(sb), e.nestOf(ld)) {
		return CarriedDep{Res: Unknown, Tests: []string{"non-affine"}}
	}
	if e.zeroTrip(pc) {
		return CarriedDep{Res: Independent, Tests: []string{"zero-trip"}}
	}
	// A carried dependence needs at least two iterations of l.
	if t := e.trips[l]; t >= 0 && t < 2 {
		return CarriedDep{Res: Independent, Tests: []string{"trip"}}
	}

	cfg := make([]Dir, len(pc.common))
	for i := range cfg {
		switch {
		case i < p:
			cfg[i] = DirEq
		case i == p:
			cfg[i] = DirLt
		default:
			cfg[i] = DirStar
		}
	}

	if len(sa.subs) == 0 {
		// Direct pointer accesses to the same cell: a distance-1 recurrence.
		return CarriedDep{Res: Dependent, Dist: 1, Exact: true, Tests: []string{"scalar"}}
	}

	var tests []string
	pinned := false
	var pinDist int64
	allAny := true
	for k := range sa.subs {
		r := e.testSubscript(sa.subs[k], sb.subs[k], pc, cfg, p)
		tests = appendUnique(tests, r.tests...)
		if !r.feasible {
			return CarriedDep{Res: Independent, Tests: tests}
		}
		if r.pinned {
			if pinned && r.dist != pinDist {
				// Two subscripts demand contradictory distances.
				return CarriedDep{Res: Independent, Tests: tests}
			}
			pinned, pinDist = true, r.dist
		}
		if !r.anyDist && !r.pinned {
			allAny = false
		}
	}
	switch {
	case pinned:
		return CarriedDep{Res: Dependent, Dist: pinDist, Exact: true, Tests: tests}
	case allAny:
		// Every subscript is satisfied at every distance: the minimum
		// distance 1 is realized (the loop-invariant-address recurrence).
		return CarriedDep{Res: Dependent, Dist: 1, Exact: true, Tests: tests}
	default:
		return CarriedDep{Res: Dependent, Dist: 1, Exact: false, Tests: tests}
	}
}

func allSubs(a accessInfo) affineExpr {
	out := affineExpr{coeff: map[*analysis.Loop]int64{}}
	for _, s := range a.subs {
		for l, c := range s.coeff {
			if c != 0 {
				out.coeff[l] = 1
			}
		}
	}
	return out
}

// zeroTrip reports whether any loop of the pair context provably never
// iterates, in which case one of the accesses never executes.
func (e *Engine) zeroTrip(pc pairCtx) bool {
	for _, ls := range [][]*analysis.Loop{pc.common, pc.freeS, pc.freeL} {
		for _, l := range ls {
			if e.trips[l] == 0 {
				return true
			}
		}
	}
	return false
}

func appendUnique(dst []string, vs ...string) []string {
	for _, v := range vs {
		dup := false
		for _, h := range dst {
			if h == v {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, v)
		}
	}
	return dst
}

// maxNestLevels caps direction-vector enumeration (3^k configurations).
const maxNestLevels = 6

// Edges enumerates the dependences among the memory accesses of the loop
// nest rooted at root: every ordered (src, dst) pair involving a store whose
// addresses may alias, with the feasible lexicographically non-negative
// direction vectors over the pair's common nest. Pairs the points-to
// analysis already separates are omitted; affine-proven independent pairs
// are reported with Res == Independent so consumers can see the precision.
func (e *Engine) Edges(root *analysis.Loop) []Edge {
	var mems []*llvm.Instr
	for _, b := range e.f.Blocks {
		if !root.Contains(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == llvm.OpLoad || in.Op == llvm.OpStore {
				mems = append(mems, in)
			}
		}
	}
	var out []Edge
	for _, src := range mems {
		for _, dst := range mems {
			if src.Op != llvm.OpStore && dst.Op != llvm.OpStore {
				continue // input dependences are irrelevant
			}
			if e.mayAlias != nil && !e.mayAlias(addrOf(src), addrOf(dst)) {
				continue
			}
			out = append(out, e.edge(src, dst))
		}
	}
	return out
}

func depKind(src, dst *llvm.Instr) string {
	switch {
	case src.Op == llvm.OpStore && dst.Op == llvm.OpLoad:
		return "flow"
	case src.Op == llvm.OpLoad && dst.Op == llvm.OpStore:
		return "anti"
	default:
		return "output"
	}
}

func (e *Engine) edge(src, dst *llvm.Instr) Edge {
	ed := Edge{Src: src, Dst: dst, Kind: depKind(src, dst), Res: Unknown}
	sa, sb := e.accessOf(addrOf(src)), e.accessOf(addrOf(dst))
	if !sa.ok || !sb.ok {
		ed.Tests = []string{"non-affine"}
		return ed
	}
	if sa.base != sb.base {
		ed.Tests = []string{"distinct-bases"}
		return ed
	}
	ed.Base = sa.base
	if len(sa.subs) != len(sb.subs) {
		ed.Tests = []string{"shape-mismatch"}
		return ed
	}
	pc := e.pairContext(src, dst)
	if len(pc.common) > maxNestLevels {
		ed.Tests = []string{"nest-too-deep"}
		return ed
	}
	if !coeffsContained(allSubs(sa), e.nestOf(src)) ||
		!coeffsContained(allSubs(sb), e.nestOf(dst)) {
		ed.Tests = []string{"non-affine"}
		return ed
	}
	if e.zeroTrip(pc) {
		ed.Res = Independent
		ed.Tests = []string{"zero-trip"}
		return ed
	}

	cfg := make([]Dir, len(pc.common))
	var tests []string
	var vectors []Vector
	var enum func(i int)
	enum = func(i int) {
		if i == len(cfg) {
			if !lexNonNegative(cfg) {
				return
			}
			if allEq(cfg) && (src == dst || e.pos[src] >= e.pos[dst]) {
				return // same-iteration dep needs source before sink
			}
			feasible := true
			for k := range sa.subs {
				r := e.testSubscript(sa.subs[k], sb.subs[k], pc, cfg, -1)
				tests = appendUnique(tests, r.tests...)
				if !r.feasible {
					feasible = false
					break
				}
			}
			if !feasible {
				return
			}
			vectors = append(vectors, e.annotate(cfg, pc, sa, sb))
			return
		}
		for _, d := range [...]Dir{DirEq, DirLt, DirGt} {
			cfg[i] = d
			enum(i + 1)
		}
	}
	// An empty common nest falls out of the same enumeration: the zero-length
	// configuration is all-'=', so plain program order decides.
	enum(0)
	ed.Tests = tests
	if len(vectors) == 0 {
		ed.Res = Independent
		return ed
	}
	ed.Res = Dependent
	ed.Vectors = vectors
	return ed
}

func lexNonNegative(cfg []Dir) bool {
	for _, d := range cfg {
		switch d {
		case DirLt:
			return true
		case DirGt:
			return false
		}
	}
	return true // all '='
}

func allEq(cfg []Dir) bool {
	for _, d := range cfg {
		if d != DirEq {
			return false
		}
	}
	return true
}

// annotate converts a feasible direction configuration into a Vector,
// pinning exact distances where the subscript equations determine them.
func (e *Engine) annotate(cfg []Dir, pc pairCtx, sa, sb accessInfo) Vector {
	vec := make(Vector, len(cfg))
	for i, d := range cfg {
		vec[i] = Level{Loop: pc.common[i], Dir: d}
		if d == DirEq {
			vec[i].Dist, vec[i].Known = 0, true
			continue
		}
		pinned := false
		var dist int64
		consistent := true
		for k := range sa.subs {
			pd, ok := e.pinAt(sa.subs[k], sb.subs[k], pc, cfg, i)
			if !ok {
				continue
			}
			if pinned && pd != dist {
				consistent = false
				break
			}
			pinned, dist = true, pd
		}
		if pinned && consistent {
			vec[i].Dist, vec[i].Known = dist, true
		}
	}
	return vec
}

package deptest

import (
	"repro/internal/llvm/analysis"
)

// This file holds the per-subscript dependence tests: classification
// (ZIV / strong-SIV / weak-SIV / MIV), the exact strong-SIV distance
// solution, the GCD integer-solvability test, and the Banerjee bounds test
// evaluated over trip-count-derived iteration ranges under per-level
// direction constraints.

// subResult is the verdict of one subscript pair under one direction
// configuration.
type subResult struct {
	// feasible: the subscript equation admits an integer solution under the
	// configuration (conservatively true when a test is inconclusive).
	feasible bool
	// pinned: the equation forces a unique distance at the queried level.
	pinned bool
	dist   int64
	// anyDist: the equation is satisfied at EVERY distance of the queried
	// level (the loop-invariant subscript, coefficient zero both sides).
	anyDist bool
	tests   []string
}

// wideBound saturates Banerjee sums when a referenced loop's trip count is
// unknown; it never excludes zero, keeping the test conservative.
const wideBound = int64(1) << 40

// classify names the subscript pair for diagnostics.
func classify(sS, sL affineExpr, pc pairCtx) string {
	seen := map[*analysis.Loop]bool{}
	for _, l := range sS.loops() {
		seen[l] = true
	}
	for _, l := range sL.loops() {
		seen[l] = true
	}
	switch len(seen) {
	case 0:
		return "ziv"
	case 1:
		for l := range seen {
			for _, cl := range pc.common {
				if cl == l && sS.coefOf(l) == sL.coefOf(l) {
					return "strong-siv"
				}
			}
		}
		return "weak-siv"
	default:
		return "miv"
	}
}

// testSubscript runs the dependence tests for one subscript pair under a
// direction configuration over the pair's common nest. pin >= 0 asks for an
// exact distance at that common-nest level (the Carried query); pin < 0 is
// pure feasibility (direction-vector enumeration).
func (e *Engine) testSubscript(sS, sL affineExpr, pc pairCtx, cfg []Dir, pin int) subResult {
	res := subResult{tests: []string{classify(sS, sL, pc)}}
	c := sS.c - sL.c

	// Exact path: when every term other than the queried level's vanishes
	// identically, the equation pins the distance (or rules the level out).
	if pin >= 0 && e.termsVanishExcept(sS, sL, pc, cfg, pin) {
		l := pc.common[pin]
		a := sS.coefOf(l)
		switch {
		case a == 0:
			if c == 0 {
				res.feasible, res.anyDist = true, true
			}
			return res
		case c%a != 0:
			return res // no integer iteration distance solves it
		default:
			d := c / a
			u := e.upperOf(l)
			if d >= 1 && (u < 0 || d <= u) {
				res.feasible, res.pinned, res.dist = true, true, d
			}
			return res
		}
	}

	// GCD test: integer solvability of the linear equation, with the
	// direction constraints substituted in.
	res.tests = append(res.tests, "gcd")
	var g int64
	addCoef := func(v int64) {
		if v < 0 {
			v = -v
		}
		if v != 0 {
			g = gcd64(g, v)
		}
	}
	for i, l := range pc.common {
		aS, aL := sS.coefOf(l), sL.coefOf(l)
		switch cfg[i] {
		case DirEq:
			addCoef(aS - aL)
		case DirLt:
			addCoef(aS - aL)
			addCoef(aL)
		case DirGt:
			addCoef(aS - aL)
			addCoef(aS)
		default: // DirStar
			addCoef(aS)
			addCoef(aL)
		}
	}
	for _, l := range pc.freeS {
		addCoef(sS.coefOf(l))
	}
	for _, l := range pc.freeL {
		addCoef(sL.coefOf(l))
	}
	if g == 0 {
		res.feasible = c == 0
		return res
	}
	if c%g != 0 {
		return res
	}

	// Banerjee bounds test: the equation's value range over the constrained
	// iteration space must contain zero.
	res.tests = append(res.tests, "banerjee")
	lo, hi := c, c
	add := func(tlo, thi int64) {
		lo += tlo
		hi += thi
	}
	for i, l := range pc.common {
		aS, aL := sS.coefOf(l), sL.coefOf(l)
		tlo, thi, ok := e.dirTermBounds(aS, aL, cfg[i], l)
		if !ok {
			return res // a '<'/'>' level with trip < 2: no such iteration pair
		}
		add(tlo, thi)
	}
	for _, l := range pc.freeS {
		add(e.freeTermBounds(sS.coefOf(l), l))
	}
	for _, l := range pc.freeL {
		tlo, thi := e.freeTermBounds(sL.coefOf(l), l)
		add(-thi, -tlo)
	}
	res.feasible = lo <= 0 && 0 <= hi
	return res
}

// termsVanishExcept reports whether the equation's terms vanish identically
// at every level and free variable other than common-nest level pin: equal
// coefficients on '=' levels, zero coefficients everywhere else.
func (e *Engine) termsVanishExcept(sS, sL affineExpr, pc pairCtx, cfg []Dir, pin int) bool {
	for i, l := range pc.common {
		if i == pin {
			continue
		}
		aS, aL := sS.coefOf(l), sL.coefOf(l)
		if cfg[i] == DirEq {
			if aS != aL {
				return false
			}
		} else if aS != 0 || aL != 0 {
			return false
		}
	}
	for _, l := range pc.freeS {
		if sS.coefOf(l) != 0 {
			return false
		}
	}
	for _, l := range pc.freeL {
		if sL.coefOf(l) != 0 {
			return false
		}
	}
	return sS.coefOf(pc.common[pin]) == sL.coefOf(pc.common[pin])
}

// pinAt attempts to pin the exact distance of one subscript at common-nest
// level i under a full direction configuration. Dist follows the sink-minus-
// source convention: positive for '<' levels, negative for '>' levels.
func (e *Engine) pinAt(sS, sL affineExpr, pc pairCtx, cfg []Dir, i int) (int64, bool) {
	if cfg[i] != DirLt && cfg[i] != DirGt {
		return 0, false
	}
	if !e.termsVanishExcept(sS, sL, pc, cfg, i) {
		return 0, false
	}
	l := pc.common[i]
	a := sS.coefOf(l)
	if a == 0 || (sS.c-sL.c)%a != 0 {
		return 0, false
	}
	d := (sS.c - sL.c) / a
	u := e.upperOf(l)
	switch cfg[i] {
	case DirLt:
		if d >= 1 && (u < 0 || d <= u) {
			return d, true
		}
	case DirGt:
		if d <= -1 && (u < 0 || -d <= u) {
			return d, true
		}
	}
	return 0, false
}

// upperOf returns the largest normalized iteration number of l (trip-1), or
// -1 when the trip count is unknown.
func (e *Engine) upperOf(l *analysis.Loop) int64 {
	t, ok := e.trips[l]
	if !ok || t < 0 {
		return -1
	}
	return t - 1
}

// dirTermBounds bounds the term aS·x − aL·y for one common-nest level under
// its direction constraint, with x, y ranging over [0, trip-1]. ok=false
// when the direction requires an iteration pair the trip count excludes.
func (e *Engine) dirTermBounds(aS, aL int64, dir Dir, l *analysis.Loop) (lo, hi int64, ok bool) {
	if aS == 0 && aL == 0 {
		// The level does not appear; any direction over a non-zero-trip loop
		// is fine except '<'/'>' over a single-iteration loop.
		if dir == DirLt || dir == DirGt {
			if u := e.upperOf(l); u == 0 {
				return 0, 0, false
			}
		}
		return 0, 0, true
	}
	u := e.upperOf(l)
	if u < 0 {
		// Referenced loop with unknown trip (cannot happen for recognized
		// IVs, kept for safety): no exclusion possible.
		return -wideBound, wideBound, true
	}
	var pts [][2]int64
	switch dir {
	case DirEq:
		pts = [][2]int64{{0, 0}, {u, u}}
	case DirLt:
		if u < 1 {
			return 0, 0, false
		}
		pts = [][2]int64{{0, 1}, {0, u}, {u - 1, u}}
	case DirGt:
		if u < 1 {
			return 0, 0, false
		}
		pts = [][2]int64{{1, 0}, {u, 0}, {u, u - 1}}
	default: // DirStar
		pts = [][2]int64{{0, 0}, {0, u}, {u, 0}, {u, u}}
	}
	first := true
	for _, p := range pts {
		v := aS*p[0] - aL*p[1]
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return lo, hi, true
}

// freeTermBounds bounds b·y for a one-sided loop variable y ∈ [0, trip-1].
func (e *Engine) freeTermBounds(b int64, l *analysis.Loop) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	u := e.upperOf(l)
	if u < 0 {
		return -wideBound, wideBound
	}
	v := b * u
	if v < 0 {
		return v, 0
	}
	return 0, v
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

package deptest_test

import (
	"testing"

	"repro/internal/absint"
	"repro/internal/deptest"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
	"repro/internal/polybench"
)

// TestNeverLessConservativeThanAlias is the corpus-wide soundness property:
// on every kernel × both flows, wherever the alias-plus-structural model
// detects a loop-carried recurrence (may-alias, same address, loop-invariant
// across the queried loop), the affine engine must answer Dependent or
// Unknown — never Independent — and the distance-aware RecMII must be at
// least the structural one. The engine is allowed to find MORE dependences
// (that is the point); it must never lose one the old model had.
func TestNeverLessConservativeThanAlias(t *testing.T) {
	tgt := hls.DefaultTarget()
	for _, k := range polybench.All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			s, err := k.SizeOf("MINI")
			if err != nil {
				t.Fatal(err)
			}
			runs := []struct {
				name string
				run  func() (*flow.Result, error)
			}{
				{"adaptor", func() (*flow.Result, error) {
					return flow.AdaptorFlow(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1}, tgt)
				}},
				{"cxx", func() (*flow.Result, error) {
					return flow.CxxFlow(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1}, tgt)
				}},
			}
			for _, fr := range runs {
				res, err := fr.run()
				if err != nil {
					t.Fatalf("%s flow: %v", fr.name, err)
				}
				f := res.LLVM.FindFunc(k.Name)
				if f == nil {
					t.Fatalf("%s flow: top @%s missing", fr.name, k.Name)
				}
				checkConservative(t, fr.name, f, tgt)
			}
		})
	}
}

func checkConservative(t *testing.T, flowName string, f *llvm.Function, tgt hls.Target) {
	t.Helper()
	cfg := analysis.NewCFG(f)
	li := analysis.FindLoops(cfg, analysis.NewDomTree(cfg))
	pts := absint.PointsTo(f)
	eng := deptest.New(f, li, pts.MayAlias)
	for _, l := range li.Loops {
		var instrs []*llvm.Instr
		for _, b := range cfg.Order {
			if l.Contains(b) {
				instrs = append(instrs, b.Instrs...)
			}
		}
		header := l.Header
		for _, ld := range instrs {
			if ld.Op != llvm.OpLoad {
				continue
			}
			for _, st := range instrs {
				if st.Op != llvm.OpStore || !pts.MayAlias(ld.Args[0], st.Args[1]) {
					continue
				}
				structuralRec := hls.SameAddress(ld.Args[0], st.Args[1]) &&
					!hls.DependsOnLoopPhi(ld.Args[0], header)
				if !structuralRec {
					continue
				}
				if cd := eng.Carried(l, st, ld); cd.Res == deptest.Independent {
					t.Errorf("%s flow, loop %%%s: engine exonerates a structural recurrence "+
						"(%%%s -> %%%s, tests %v)", flowName, header.Name, st.Name, ld.Name, cd.Tests)
				}
			}
		}
		if !l.IsInnermost() {
			continue
		}
		ivDep := func(v llvm.Value) bool { return hls.DependsOnLoopPhi(v, header) }
		structural := tgt.RecMII(instrs, ivDep, pts.MayAlias)
		distanceAware := tgt.RecMIIWith(eng, l, instrs, ivDep, pts.MayAlias)
		if distanceAware < structural {
			t.Errorf("%s flow, loop %%%s: distance-aware RecMII=%d below structural RecMII=%d",
				flowName, header.Name, distanceAware, structural)
		}
	}
}

package deptest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// affineExpr is an affine function of normalized loop iteration numbers:
// c + Σ coeff[l]·n_l, where n_l ∈ [0, trip(l)-1] is the iteration number of
// loop l (the recognized induction variable's value is Start + Step·n_l, so
// an IV reference contributes constant Start and coefficient Step). Working
// over iteration numbers instead of IV values makes distances directly
// comparable across loops with different starts and strides.
type affineExpr struct {
	c     int64
	coeff map[*analysis.Loop]int64
}

func (a affineExpr) coefOf(l *analysis.Loop) int64 { return a.coeff[l] }

// loops returns the loops with nonzero coefficients, outermost first.
func (a affineExpr) loops() []*analysis.Loop {
	out := make([]*analysis.Loop, 0, len(a.coeff))
	for l, c := range a.coeff {
		if c != 0 {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if d1, d2 := out[i].Depth(), out[j].Depth(); d1 != d2 {
			return d1 < d2
		}
		return out[i].Header.Name < out[j].Header.Name
	})
	return out
}

func addAffine(a, b affineExpr, sign int64) affineExpr {
	out := affineExpr{c: a.c + sign*b.c, coeff: map[*analysis.Loop]int64{}}
	for l, v := range a.coeff {
		out.coeff[l] += v
	}
	for l, v := range b.coeff {
		out.coeff[l] += sign * v
	}
	return out
}

func scaleAffine(a affineExpr, k int64) affineExpr {
	out := affineExpr{c: a.c * k, coeff: map[*analysis.Loop]int64{}}
	for l, v := range a.coeff {
		out.coeff[l] = v * k
	}
	return out
}

// affineOf extracts the affine form of an integer value over recognized
// induction variables. ok=false for anything the engine cannot prove affine
// (unrecognized phis, products of two variables, truncations, calls, ...):
// the caller must then fall back to the conservative alias-only model.
func (e *Engine) affineOf(v llvm.Value, depth int) (affineExpr, bool) {
	if depth <= 0 {
		return affineExpr{}, false
	}
	switch x := v.(type) {
	case *llvm.ConstInt:
		return affineExpr{c: x.Val, coeff: map[*analysis.Loop]int64{}}, true
	case *llvm.Instr:
		switch x.Op {
		case llvm.OpPhi:
			ivl, ok := e.ivLoops[x]
			if !ok {
				return affineExpr{}, false
			}
			return affineExpr{
				c:     ivl.iv.Start,
				coeff: map[*analysis.Loop]int64{ivl.loop: ivl.iv.Step},
			}, true
		case llvm.OpAdd, llvm.OpSub:
			a, ok1 := e.affineOf(x.Args[0], depth-1)
			b, ok2 := e.affineOf(x.Args[1], depth-1)
			if !ok1 || !ok2 {
				return affineExpr{}, false
			}
			sign := int64(1)
			if x.Op == llvm.OpSub {
				sign = -1
			}
			return addAffine(a, b, sign), true
		case llvm.OpMul:
			a, ok1 := e.affineOf(x.Args[0], depth-1)
			b, ok2 := e.affineOf(x.Args[1], depth-1)
			if !ok1 || !ok2 {
				return affineExpr{}, false
			}
			// One side must be constant for the product to stay affine.
			if len(a.loops()) == 0 {
				return scaleAffine(b, a.c), true
			}
			if len(b.loops()) == 0 {
				return scaleAffine(a, b.c), true
			}
			return affineExpr{}, false
		case llvm.OpShl:
			a, ok1 := e.affineOf(x.Args[0], depth-1)
			sh, isC := x.Args[1].(*llvm.ConstInt)
			if !ok1 || !isC || sh.Val < 0 || sh.Val > 32 {
				return affineExpr{}, false
			}
			return scaleAffine(a, int64(1)<<uint(sh.Val)), true
		case llvm.OpSExt, llvm.OpZExt:
			// Width changes preserve the value for the in-range indices both
			// flows emit (inbounds GEPs over static shapes).
			return e.affineOf(x.Args[0], depth-1)
		}
	}
	return affineExpr{}, false
}

// accessInfo is one memory access decomposed into a base allocation plus a
// vector of affine subscripts (one per GEP index beyond the pointer operand;
// empty for a direct pointer access). dims holds the static extent of each
// subscript's dimension, -1 when unknown (the leading object-level index).
type accessInfo struct {
	base llvm.Value
	subs []affineExpr
	dims []int64
	ok   bool
}

// stripCasts walks through pointer casts to the underlying value.
func stripCasts(v llvm.Value) llvm.Value {
	for {
		in, ok := v.(*llvm.Instr)
		if !ok {
			return v
		}
		switch in.Op {
		case llvm.OpBitcast, llvm.OpIntToPtr, llvm.OpPtrToInt:
			v = in.Args[0]
		default:
			return v
		}
	}
}

// accessOf decomposes a load/store pointer operand. Handles both IR shapes
// the two flows produce: the adaptor's flattened one-dimensional GEPs over a
// linearized index (8·i + j built from shl/mul/add over i64 phis) and the
// C++ flow's multi-dimensional GEPs with sign-extended i32 indices.
func (e *Engine) accessOf(ptr llvm.Value) accessInfo {
	if cached, ok := e.acc[ptr]; ok {
		return cached
	}
	info := e.accessOfUncached(ptr)
	e.acc[ptr] = info
	return info
}

func (e *Engine) accessOfUncached(ptr llvm.Value) accessInfo {
	v := stripCasts(ptr)
	gep, isInstr := v.(*llvm.Instr)
	if !isInstr || gep.Op != llvm.OpGEP {
		// Direct pointer access: a scalar cell, no subscripts.
		return accessInfo{base: v, ok: true}
	}
	base := stripCasts(gep.Args[0])
	if b, ok := base.(*llvm.Instr); ok && b.Op == llvm.OpGEP {
		return accessInfo{ok: false} // chained GEPs: unsupported shape
	}
	info := accessInfo{base: base, ok: true}
	ty := gep.SrcElem
	for i := 1; i < len(gep.Args); i++ {
		sub, ok := e.affineOf(gep.Args[i], maxAffineDepth)
		if !ok {
			return accessInfo{ok: false}
		}
		info.subs = append(info.subs, sub)
		if i == 1 {
			info.dims = append(info.dims, -1) // object-level index
			continue
		}
		if ty != nil && ty.IsArray() {
			info.dims = append(info.dims, ty.N)
			ty = ty.Elem
		} else {
			info.dims = append(info.dims, -1)
		}
	}
	return info
}

const maxAffineDepth = 32

// IndexRange returns the exact value range of an affine integer index over
// all executions: the affine form evaluated over every referenced loop's
// full iteration space. ok=false when the value is not affine or a
// referenced loop's trip count is unknown — the interval analysis is the
// fallback then.
func (e *Engine) IndexRange(v llvm.Value) (lo, hi int64, ok bool) {
	aff, affOK := e.affineOf(v, maxAffineDepth)
	if !affOK {
		return 0, 0, false
	}
	lo, hi = aff.c, aff.c
	for _, l := range aff.loops() {
		trip := e.trips[l]
		if trip < 0 {
			return 0, 0, false
		}
		if trip == 0 {
			// The enclosing loop never runs; the index is never evaluated.
			return 0, 0, false
		}
		a := aff.coeff[l] * (trip - 1)
		if a < 0 {
			lo += a
		} else {
			hi += a
		}
	}
	return lo, hi, true
}

// IndexForm renders an affine index as a human-readable expression over loop
// iteration numbers named by their headers, e.g. "8*h3 + h5 - 9".
func (e *Engine) IndexForm(v llvm.Value) (string, bool) {
	aff, ok := e.affineOf(v, maxAffineDepth)
	if !ok {
		return "", false
	}
	return renderAffine(aff), true
}

func renderAffine(aff affineExpr) string {
	var sb strings.Builder
	for _, l := range aff.loops() {
		co := aff.coeff[l]
		name := l.Header.Name
		switch {
		case sb.Len() == 0:
			if co == 1 {
				sb.WriteString(name)
			} else if co == -1 {
				sb.WriteString("-" + name)
			} else {
				fmt.Fprintf(&sb, "%d*%s", co, name)
			}
		case co > 0:
			if co == 1 {
				fmt.Fprintf(&sb, " + %s", name)
			} else {
				fmt.Fprintf(&sb, " + %d*%s", co, name)
			}
		default:
			if co == -1 {
				fmt.Fprintf(&sb, " - %s", name)
			} else {
				fmt.Fprintf(&sb, " - %d*%s", -co, name)
			}
		}
	}
	switch {
	case sb.Len() == 0:
		fmt.Fprintf(&sb, "%d", aff.c)
	case aff.c > 0:
		fmt.Fprintf(&sb, " + %d", aff.c)
	case aff.c < 0:
		fmt.Fprintf(&sb, " - %d", -aff.c)
	}
	return sb.String()
}

// AccessForm renders a load/store pointer operand as base[sub][sub]...,
// e.g. "arg0[8*h3 + h5 - 9]". ok=false for non-affine accesses.
func (e *Engine) AccessForm(ptr llvm.Value) (string, bool) {
	info := e.accessOf(ptr)
	if !info.ok {
		return "", false
	}
	var sb strings.Builder
	sb.WriteString(info.base.Ident())
	for i, sub := range info.subs {
		// Suppress the constant-zero object-level index for readability.
		if i == 0 && len(info.subs) > 1 && sub.c == 0 && len(sub.loops()) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "[%s]", renderAffine(sub))
	}
	return sb.String(), true
}

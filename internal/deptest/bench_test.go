package deptest_test

import (
	"testing"

	"repro/internal/absint"
	"repro/internal/deptest"
	"repro/internal/flow"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
	"repro/internal/polybench"
)

// BenchmarkDepTest measures the full dependence-analysis cost on the kernel
// that exercises the engine hardest (seidel2d: a 3-deep nest with nine
// may-alias stencil accesses): engine construction, every per-level Carried
// query the lint and scheduler issue, and the complete direction-vector
// enumeration of the nest. cmd/benchjson folds the result into the
// BENCH_micro.json artifact.
func BenchmarkDepTest(b *testing.B) {
	k := polybench.Get("seidel2d")
	s, err := k.SizeOf("MINI")
	if err != nil {
		b.Fatal(err)
	}
	lm, err := flow.PrepareLLVM(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1})
	if err != nil {
		b.Fatal(err)
	}
	f := lm.FindFunc(k.Name)
	cfg := analysis.NewCFG(f)
	li := analysis.FindLoops(cfg, analysis.NewDomTree(cfg))
	pts := absint.PointsTo(f)

	var mems []*llvm.Instr
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == llvm.OpLoad || in.Op == llvm.OpStore {
				mems = append(mems, in)
			}
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := deptest.New(f, li, pts.MayAlias)
		for _, l := range li.Loops {
			for _, ld := range mems {
				if ld.Op != llvm.OpLoad {
					continue
				}
				for _, st := range mems {
					if st.Op == llvm.OpStore {
						eng.Carried(l, st, ld)
					}
				}
			}
		}
		for _, l := range li.Loops {
			if l.Parent == nil {
				eng.Edges(l)
			}
		}
	}
}

package deptest

import (
	"fmt"

	"repro/internal/llvm/analysis"
)

// Legality answers loop-transform legality questions from the dependence
// vectors of a nest. The rules are the classic ones: a transform is legal
// when every dependence vector stays lexicographically non-negative after
// the corresponding permutation of its levels, and a band of loops is
// tilable when it is fully permutable (every dependence direction within the
// band is '=' or '<'). Any Unknown edge makes the answer conservatively
// illegal.
type Legality struct {
	edges []Edge
}

// LegalityOf collects the dependence edges of the nest rooted at root.
func (e *Engine) LegalityOf(root *analysis.Loop) *Legality {
	return &Legality{edges: e.Edges(root)}
}

// Verdict is a legality answer with the blocking reason when illegal.
type Verdict struct {
	Legal  bool
	Reason string
}

func illegal(format string, args ...interface{}) Verdict {
	return Verdict{Reason: fmt.Sprintf(format, args...)}
}

// levelOf returns the index of l in a vector, -1 if the vector's common nest
// does not include it.
func levelOf(v Vector, l *analysis.Loop) int {
	for i, lv := range v {
		if lv.Loop == l {
			return i
		}
	}
	return -1
}

// Interchange reports whether swapping the two (not necessarily adjacent)
// loops preserves every dependence: each vector with both levels present
// must remain lexicographically non-negative after the swap.
func (lg *Legality) Interchange(a, b *analysis.Loop) Verdict {
	for _, ed := range lg.edges {
		if ed.Res == Unknown {
			return illegal("unresolved dependence (%s): %v",
				ed.Kind, ed.Tests)
		}
		for _, v := range ed.Vectors {
			ia, ib := levelOf(v, a), levelOf(v, b)
			if ia < 0 && ib < 0 {
				continue // dependence does not involve either loop
			}
			if ia < 0 || ib < 0 {
				// The dependence sees only one of the two loops (the other
				// does not enclose both endpoints): swapping would move an
				// access across that loop, which the vectors do not model.
				return illegal("%s dependence %s spans only one of the loops",
					ed.Kind, v)
			}
			sw := make(Vector, len(v))
			copy(sw, v)
			sw[ia], sw[ib] = sw[ib], sw[ia]
			if !vecNonNegative(sw) {
				return illegal("%s dependence %s becomes lexicographically negative",
					ed.Kind, v)
			}
		}
	}
	return Verdict{Legal: true}
}

// PermutableBand reports whether the given loops form a fully permutable
// band — every dependence direction at every band level is '=' or '<'
// (distance >= 0) — the precondition for rectangular tiling and arbitrary
// permutation within the band.
func (lg *Legality) PermutableBand(band []*analysis.Loop) Verdict {
	inBand := map[*analysis.Loop]bool{}
	for _, l := range band {
		inBand[l] = true
	}
	for _, ed := range lg.edges {
		if ed.Res == Unknown {
			return illegal("unresolved dependence (%s): %v",
				ed.Kind, ed.Tests)
		}
		for _, v := range ed.Vectors {
			for _, lv := range v {
				if !inBand[lv.Loop] {
					continue
				}
				if lv.Known && lv.Dist >= 0 {
					continue
				}
				if !lv.Known && lv.Dir == DirLt {
					continue
				}
				if lv.Dir == DirEq {
					continue
				}
				return illegal("%s dependence %s has direction '%c' at loop %%%s",
					ed.Kind, v, lv.Dir, lv.Loop.Header.Name)
			}
		}
	}
	return Verdict{Legal: true}
}

// Tilable is PermutableBand for the band rooted at the nest's loops: tiling
// a band is legal exactly when the band is fully permutable.
func (lg *Legality) Tilable(band []*analysis.Loop) Verdict {
	return lg.PermutableBand(band)
}

// vecNonNegative reports lexicographic non-negativity of a (possibly
// permuted) vector: the first non-'=' level must be '<' (or a known positive
// distance); a '*' level is conservatively assumed able to be negative.
func vecNonNegative(v Vector) bool {
	for _, lv := range v {
		if lv.Known {
			if lv.Dist > 0 {
				return true
			}
			if lv.Dist < 0 {
				return false
			}
			continue // exact zero: look deeper
		}
		switch lv.Dir {
		case DirEq:
			continue
		case DirLt:
			return true
		default: // '>' or '*'
			return false
		}
	}
	return true // all-zero vector: same iteration, program order decides
}

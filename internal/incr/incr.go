// Package incr is the per-unit incremental-compilation store behind
// flow.Options.Incremental: a content-addressed memo of pipeline-unit
// outputs keyed by SHA-256 of (flow configuration, unit name and
// parameters, canonical input-IR bytes). A flow run consults it before
// every unit; a hit replays the stored output bytes instead of executing
// the unit, so a directive change re-runs the pipeline only from the
// first affected unit, and a repeated design point replays its whole
// prefix from stored snapshots without recomputing anything.
//
// Soundness rests on two properties the flow layer maintains:
//
//   - every pipeline unit is a deterministic function of its input IR
//     bytes and its parameters (pass options, top name, target fields),
//     all of which participate in the key; and
//   - the printers and parsers round-trip byte-identically, so replaying
//     a stored snapshot leaves the pipeline in exactly the state a live
//     run would have produced (proven by the incremental-vs-cold
//     equivalence property test over every kernel and both flows).
//
// Two stores are provided: MemStore (per-process, used by default) and
// DiskStore (digest-verified content-addressed files via castore, shared
// across processes and restarts — the warm-start path for CLIs and the
// compile-service daemon).
package incr

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strconv"
	"sync"

	"repro/internal/castore"
)

// Record is one memoized unit outcome.
type Record struct {
	// IR holds the unit's output artifact bytes — MLIR text through the
	// MLIR stages, LLVM text from translation on, HLS-C++ source for the
	// C++ flow's emit stage. Empty for units that do not rewrite the IR
	// (synthesis, whose product is only the report in Aux).
	IR string `json:"ir,omitempty"`
	// Hash is HashBytes(IR), stored so a replaying run can derive the
	// next unit's key without re-hashing the full artifact — the digest
	// chain that makes a fully warm run cost a few dozen bytes of hashing
	// per unit instead of the whole IR.
	Hash string `json:"hash,omitempty"`
	// Aux carries the unit's non-IR product as JSON: the adaptor's fix
	// report, synthesis's HLS report.
	Aux json.RawMessage `json:"aux,omitempty"`
}

// HashBytes returns the hex SHA-256 of s — the digest stored in Record.Hash
// and fed to UnitKey as the input field.
func HashBytes(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// Store is a content-addressed record store. Implementations must be safe
// for concurrent use: engine workers share one store across jobs. Put
// reports the write failure so a full or read-only disk surfaces in the
// caller's counters instead of presenting as a mysteriously cold cache; a
// failed Put must leave Get behavior unchanged (miss or previous record).
type Store interface {
	Get(key string) (Record, bool)
	Put(key string, rec Record) error
	// Len returns the number of distinct records stored.
	Len() int
}

// Default is the process-wide in-memory store used when a flow is run
// Incremental without an explicit store — the zero-configuration path for
// CLIs and tests. Content-addressed keys make sharing across unrelated
// runs sound by construction.
var Default Store = NewMemStore()

// keyVersion invalidates every stored record when the key derivation or
// record layout changes incompatibly (v2: digest-verified castore
// envelopes on disk).
const keyVersion = "incr-v2"

// UnitKey derives the content-addressed key for one pipeline unit
// execution. cfg is the flow-wide configuration salt (flow kind, top
// function, verification options — see flow's memo construction), unit is
// "stage/pass", params carries the unit's own parameters (pass options,
// target fields for synthesis), and input identifies the canonical
// input-IR bytes entering the unit — the bytes themselves or, as the flow
// layer does, their HashBytes digest (equivalent addressing, cheaper to
// rekey on replay). Every field is length-prefixed so no two distinct
// tuples collide by concatenation.
func UnitKey(cfg, unit, params, input string) string {
	h := sha256.New()
	for _, s := range [...]string{keyVersion, cfg, unit, params} {
		writeField(h, s)
	}
	writeField(h, input)
	return hex.EncodeToString(h.Sum(nil))
}

func writeField(h interface{ Write([]byte) (int, error) }, s string) {
	var lenBuf [20]byte
	h.Write(strconv.AppendInt(lenBuf[:0], int64(len(s)), 10))
	h.Write([]byte{'|'})
	h.Write([]byte(s))
}

// MemStore is the in-memory store: a concurrent map from key to record.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]Record)}
}

// Get implements Store.
func (s *MemStore) Get(key string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[key]
	return r, ok
}

// Put implements Store. The first write for a key wins, so records served
// to concurrent readers never change underneath them.
func (s *MemStore) Put(key string, rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; !dup {
		s.m[key] = rec
	}
	return nil
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// DiskStore is the on-disk content-addressed store: digest-verified
// record files managed by castore, written atomically (temp + rename) so
// a killed writer never leaves a torn record, safe for any number of
// daemons and CLIs sharing one directory. A fresh process pointed at the
// same directory replays everything a previous process compiled — the
// cross-restart warm path. A record that fails the envelope digest or the
// Record schema — a corrupt-but-valid-JSON file included — is detected
// once, counted, and moved aside as <key>.json.quarantined, never
// silently trusted.
type DiskStore struct {
	ca *castore.Store
	// mem front-caches records this process has read or written, so a hot
	// sweep does not re-read files for every unit of every point.
	mem *MemStore
}

// OpenDiskStore opens (creating if needed) the store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	ca, err := castore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &DiskStore{ca: ca, mem: NewMemStore()}, nil
}

// Get implements Store. A missing, torn, foreign, or digest-corrupt file
// is a miss, never an error: the unit re-runs and the record is
// rewritten. Corruption is quarantined and front-cached by the castore
// layer, so a hot key's bad record is inspected once, not re-read and
// re-unmarshaled on every sweep point.
func (s *DiskStore) Get(key string) (Record, bool) {
	if r, ok := s.mem.Get(key); ok {
		return r, ok
	}
	payload, ok := s.ca.Get(key)
	if !ok {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		// Digest-valid envelope wrapping bytes that are not a Record —
		// some other tool's content shares the key. Quarantine it like
		// any other corruption.
		s.ca.Quarantine(key)
		return Record{}, false
	}
	s.mem.Put(key, rec)
	return rec, true
}

// Put implements Store, returning the write failure (also counted in
// Counters) so a full or read-only disk is visible to callers instead of
// presenting as a cache that never warms. The front cache is updated
// first either way: within this process the record is good even when the
// disk is not.
func (s *DiskStore) Put(key string, rec Record) error {
	s.mem.Put(key, rec)
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return s.ca.Put(key, payload)
}

// Counters returns the underlying store's activity and health counters
// (put/get I/O errors, quarantined records); the engine surfaces them as
// StoreErrors/StoreCorrupt in its stats.
func (s *DiskStore) Counters() castore.Counters { return s.ca.Counters() }

// Len implements Store. It counts records on disk, not the front cache.
func (s *DiskStore) Len() int { return s.ca.Len() }

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.ca.Dir() }

// Package incr is the per-unit incremental-compilation store behind
// flow.Options.Incremental: a content-addressed memo of pipeline-unit
// outputs keyed by SHA-256 of (flow configuration, unit name and
// parameters, canonical input-IR bytes). A flow run consults it before
// every unit; a hit replays the stored output bytes instead of executing
// the unit, so a directive change re-runs the pipeline only from the
// first affected unit, and a repeated design point replays its whole
// prefix from stored snapshots without recomputing anything.
//
// Soundness rests on two properties the flow layer maintains:
//
//   - every pipeline unit is a deterministic function of its input IR
//     bytes and its parameters (pass options, top name, target fields),
//     all of which participate in the key; and
//   - the printers and parsers round-trip byte-identically, so replaying
//     a stored snapshot leaves the pipeline in exactly the state a live
//     run would have produced (proven by the incremental-vs-cold
//     equivalence property test over every kernel and both flows).
//
// Two stores are provided: MemStore (per-process, used by default) and
// DiskStore (content-addressed files, shared across processes and
// restarts — the warm-start path for CLIs and services).
package incr

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Record is one memoized unit outcome.
type Record struct {
	// IR holds the unit's output artifact bytes — MLIR text through the
	// MLIR stages, LLVM text from translation on, HLS-C++ source for the
	// C++ flow's emit stage. Empty for units that do not rewrite the IR
	// (synthesis, whose product is only the report in Aux).
	IR string `json:"ir,omitempty"`
	// Hash is HashBytes(IR), stored so a replaying run can derive the
	// next unit's key without re-hashing the full artifact — the digest
	// chain that makes a fully warm run cost a few dozen bytes of hashing
	// per unit instead of the whole IR.
	Hash string `json:"hash,omitempty"`
	// Aux carries the unit's non-IR product as JSON: the adaptor's fix
	// report, synthesis's HLS report.
	Aux json.RawMessage `json:"aux,omitempty"`
}

// HashBytes returns the hex SHA-256 of s — the digest stored in Record.Hash
// and fed to UnitKey as the input field.
func HashBytes(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// Store is a content-addressed record store. Implementations must be safe
// for concurrent use: engine workers share one store across jobs.
type Store interface {
	Get(key string) (Record, bool)
	Put(key string, rec Record)
	// Len returns the number of distinct records stored.
	Len() int
}

// Default is the process-wide in-memory store used when a flow is run
// Incremental without an explicit store — the zero-configuration path for
// CLIs and tests. Content-addressed keys make sharing across unrelated
// runs sound by construction.
var Default Store = NewMemStore()

// keyVersion invalidates every stored record when the key derivation or
// record layout changes incompatibly.
const keyVersion = "incr-v1"

// UnitKey derives the content-addressed key for one pipeline unit
// execution. cfg is the flow-wide configuration salt (flow kind, top
// function, verification options — see flow's memo construction), unit is
// "stage/pass", params carries the unit's own parameters (pass options,
// target fields for synthesis), and input identifies the canonical
// input-IR bytes entering the unit — the bytes themselves or, as the flow
// layer does, their HashBytes digest (equivalent addressing, cheaper to
// rekey on replay). Every field is length-prefixed so no two distinct
// tuples collide by concatenation.
func UnitKey(cfg, unit, params, input string) string {
	h := sha256.New()
	for _, s := range [...]string{keyVersion, cfg, unit, params} {
		writeField(h, s)
	}
	writeField(h, input)
	return hex.EncodeToString(h.Sum(nil))
}

func writeField(h interface{ Write([]byte) (int, error) }, s string) {
	var lenBuf [20]byte
	h.Write(strconv.AppendInt(lenBuf[:0], int64(len(s)), 10))
	h.Write([]byte{'|'})
	h.Write([]byte(s))
}

// MemStore is the in-memory store: a concurrent map from key to record.
type MemStore struct {
	mu sync.RWMutex
	m  map[string]Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string]Record)}
}

// Get implements Store.
func (s *MemStore) Get(key string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[key]
	return r, ok
}

// Put implements Store. The first write for a key wins, so records served
// to concurrent readers never change underneath them.
func (s *MemStore) Put(key string, rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[key]; !dup {
		s.m[key] = rec
	}
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// DiskStore is the on-disk content-addressed store: one JSON file per
// record under dir, sharded by key prefix, written atomically
// (temp + rename) so a killed writer never leaves a torn record. A fresh
// process pointed at the same directory replays everything a previous
// process compiled — the cross-restart warm path.
type DiskStore struct {
	dir string
	// mem front-caches records this process has read or written, so a hot
	// sweep does not re-read files for every unit of every point.
	mem *MemStore
}

// OpenDiskStore opens (creating if needed) the store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("incr: open store: %w", err)
	}
	return &DiskStore{dir: dir, mem: NewMemStore()}, nil
}

// path shards records by the first byte of the key to keep directories
// from growing unboundedly flat.
func (s *DiskStore) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key+".json")
}

// Get implements Store.
func (s *DiskStore) Get(key string) (Record, bool) {
	if r, ok := s.mem.Get(key); ok {
		return r, ok
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		// A torn or foreign file is a miss, never an error: the unit
		// re-runs and the record is rewritten.
		return Record{}, false
	}
	s.mem.Put(key, rec)
	return rec, true
}

// Put implements Store.
func (s *DiskStore) Put(key string, rec Record) {
	s.mem.Put(key, rec)
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	// Rename is atomic within the directory; a concurrent writer of the
	// same key writes identical content, so either rename winning is fine.
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

// Len implements Store. It counts records on disk, not the front cache.
func (s *DiskStore) Len() int {
	n := 0
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				n++
			}
		}
	}
	return n
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

package incr

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
)

// sharedRecord builds the deterministic record for key index i: every
// writer — handle or process — produces identical content for a key, the
// content-addressing contract the store's last-write-wins rename rests on.
func sharedRecord(i int) (string, Record) {
	ir := fmt.Sprintf("module { func shared%d }\n", i)
	key := UnitKey("share-cfg", "stage/pass", "params", fmt.Sprintf("input-%d", i))
	return key, Record{IR: ir, Hash: HashBytes(ir)}
}

const sharingKeys = 23

// TestHelperStoreWriter is not a test: it is the subprocess body for
// TestDiskStoreSharedAcrossProcesses, re-executing this test binary to
// race Put/Get against the parent from a genuinely separate process.
func TestHelperStoreWriter(t *testing.T) {
	dir := os.Getenv("INCR_SHARING_DIR")
	if dir == "" {
		t.Skip("subprocess helper; driven by TestDiskStoreSharedAcrossProcesses")
	}
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < sharingKeys; i++ {
			key, rec := sharedRecord(i)
			if err := s.Put(key, rec); err != nil {
				t.Fatalf("subprocess Put: %v", err)
			}
			if got, ok := s.Get(key); ok && got.IR != rec.IR {
				t.Fatalf("subprocess torn read: %q", got.IR)
			}
		}
	}
}

// TestDiskStoreSharedAcrossProcesses races two in-process DiskStore
// handles and one subprocess over the same directory and the same keys:
// no torn reads, no lost records, digest-verified contents, zero
// corruption counted. This is the contract the compile-service daemon
// rests on when CLIs share its store directory.
func TestDiskStoreSharedAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperStoreWriter$")
	cmd.Env = append(os.Environ(), "INCR_SHARING_DIR="+dir)
	out, errc := make(chan []byte, 1), make(chan error, 1)
	go func() {
		b, err := cmd.CombinedOutput()
		out <- b
		errc <- err
	}()

	handles := make([]*DiskStore, 2)
	for h := range handles {
		s, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		handles[h] = s
	}
	var wg sync.WaitGroup
	for h, s := range handles {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(h, w int, s *DiskStore) {
				defer wg.Done()
				for round := 0; round < 10; round++ {
					for i := 0; i < sharingKeys; i++ {
						key, rec := sharedRecord(i)
						if err := s.Put(key, rec); err != nil {
							t.Errorf("handle %d worker %d Put: %v", h, w, err)
						}
						if got, ok := s.Get(key); ok {
							if got.IR != rec.IR || got.Hash != rec.Hash {
								t.Errorf("handle %d torn read on %s: %q", h, key[:8], got.IR)
							}
						}
					}
				}
			}(h, w, s)
		}
	}
	wg.Wait()
	if b, err := <-out, <-errc; err != nil {
		t.Fatalf("subprocess writer failed: %v\n%s", err, b)
	}

	// No lost records: a fresh handle — cold front cache, reading purely
	// from disk — sees every key with digest-verified contents.
	fresh, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sharingKeys; i++ {
		key, rec := sharedRecord(i)
		got, ok := fresh.Get(key)
		if !ok {
			t.Fatalf("record %d lost after cross-process race", i)
		}
		if got.IR != rec.IR || got.Hash != rec.Hash {
			t.Fatalf("record %d content wrong after race: %q", i, got.IR)
		}
	}
	if n := fresh.Len(); n != sharingKeys {
		t.Fatalf("Len = %d, want %d", n, sharingKeys)
	}
	c := fresh.Counters()
	if c.Corrupt != 0 || c.GetErrors != 0 {
		t.Fatalf("fresh handle counters after race: %+v", c)
	}
	for _, s := range handles {
		if c := s.Counters(); c.Corrupt != 0 {
			t.Fatalf("racing handle saw corruption: %+v", c)
		}
	}
}

package incr

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestUnitKeyDistinguishesEveryField(t *testing.T) {
	base := UnitKey("cfg", "stage/pass", "params", "input")
	variants := []string{
		UnitKey("cfg2", "stage/pass", "params", "input"),
		UnitKey("cfg", "stage/pass2", "params", "input"),
		UnitKey("cfg", "stage/pass", "params2", "input"),
		UnitKey("cfg", "stage/pass", "params", "input2"),
		// Concatenation ambiguity: shifting a byte between adjacent
		// fields must change the key.
		UnitKey("cfgs", "tage/pass", "params", "input"),
		UnitKey("cfg", "stage/passp", "arams", "input"),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides: %s", i, v)
		}
		seen[v] = true
	}
	if again := UnitKey("cfg", "stage/pass", "params", "input"); again != base {
		t.Fatalf("key not deterministic: %s vs %s", again, base)
	}
}

func TestMemStoreFirstWriteWins(t *testing.T) {
	s := NewMemStore()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put("k", Record{IR: "first"})
	s.Put("k", Record{IR: "second"})
	r, ok := s.Get("k")
	if !ok || r.IR != "first" {
		t.Fatalf("got %+v ok=%v, want first record", r, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestDiskStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	aux, _ := json.Marshal(map[string]int{"latency": 42})
	key := UnitKey("cfg", "synthesis/synthesis", "tgt", "ir-bytes")
	s.Put(key, Record{IR: "module {}\n", Aux: aux})

	// A fresh handle on the same directory sees the record (cross-process
	// warm path).
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s2.Get(key)
	if !ok || r.IR != "module {}\n" || string(r.Aux) != string(aux) {
		t.Fatalf("reopened store: got %+v ok=%v", r, ok)
	}
	if n := s2.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

// recordPath mirrors the castore sharding so tests can plant files.
func recordPath(dir, key string) string {
	return filepath.Join(dir, key[:2], key+".json")
}

func TestDiskStoreTornRecordIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := UnitKey("cfg", "u", "p", "in")
	path := recordPath(dir, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"ir": "trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("torn record served as a hit")
	}
	// The torn file was quarantined for inspection, and the decision is
	// front-cached: later gets never re-read it.
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("torn record not moved aside: %v", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("quarantined key served")
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1 (quarantine decision not cached)", c.Corrupt)
	}
	// The unit re-runs and rewrites the record.
	if err := s.Put(key, Record{IR: "fixed"}); err != nil {
		t.Fatal(err)
	}
	if r, ok := s.Get(key); !ok || r.IR != "fixed" {
		t.Fatalf("rewrite after torn record: got %+v ok=%v", r, ok)
	}
	// A fresh handle — no front cache — reads the rewritten file.
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := s2.Get(key); !ok || r.IR != "fixed" {
		t.Fatalf("fresh handle after rewrite: got %+v ok=%v", r, ok)
	}
}

// TestDiskStoreCorruptButValidJSONQuarantined plants a record that parses
// as JSON but fails the envelope digest — the case naive stores silently
// trust.
func TestDiskStoreCorruptButValidJSONQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := UnitKey("cfg", "u", "p", "corrupt")
	path := recordPath(dir, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	// A well-formed legacy-style record with no digest envelope: valid
	// JSON, untrustworthy content.
	if err := os.WriteFile(path, []byte(`{"ir":"module { tampered }"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("undigested record served as a hit")
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", c.Corrupt)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("corrupt record not quarantined: %v", err)
	}
}

// TestDiskStorePutErrorSurfaces proves a write failure is returned and
// counted instead of swallowed (the full-disk / read-only-tree case).
func TestDiskStorePutErrorSurfaces(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("directory permissions do not bind as root")
	}
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	key := UnitKey("cfg", "u", "p", "rofs")
	if err := s.Put(key, Record{IR: "x"}); err == nil {
		t.Fatal("Put on read-only tree returned nil")
	}
	if c := s.Counters(); c.PutErrors != 1 {
		t.Fatalf("PutErrors = %d, want 1", c.PutErrors)
	}
	// Within this process the record still serves from the front cache —
	// a failed persist degrades durability, not correctness.
	if r, ok := s.Get(key); !ok || r.IR != "x" {
		t.Fatalf("front cache lost the record: %+v ok=%v", r, ok)
	}
}

func TestStoresAreConcurrencySafe(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Store{NewMemStore(), ds} {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					key := UnitKey("cfg", "u", "p", string(rune('a'+i%7)))
					s.Put(key, Record{IR: "payload"})
					if r, ok := s.Get(key); ok && r.IR != "payload" {
						t.Errorf("worker %d: wrong payload %q", w, r.IR)
					}
				}
			}(w)
		}
		wg.Wait()
	}
}

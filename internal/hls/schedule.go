package hls

import (
	"math"

	"repro/internal/deptest"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// baseOf resolves a pointer operand to its root allocation (parameter or
// alloca) by walking back through GEPs and casts.
func baseOf(v llvm.Value) llvm.Value {
	for {
		in, ok := v.(*llvm.Instr)
		if !ok {
			return v
		}
		switch in.Op {
		case llvm.OpGEP, llvm.OpBitcast, llvm.OpIntToPtr, llvm.OpPtrToInt:
			v = in.Args[0]
		default:
			return v
		}
	}
}

// blockSchedule is the result of scheduling one straight-line instruction
// sequence.
type blockSchedule struct {
	// Cycles is the schedule length.
	Cycles int64
	// MemAccesses counts load/store operations per base array.
	MemAccesses map[llvm.Value]int
	// MaxChainNs is the longest combinational chain packed into one cycle
	// (the critical path bounding the achievable clock).
	MaxChainNs float64
	// finish records each instruction's finish time in ns.
	finish map[*llvm.Instr]float64
}

// scheduleInstrs is scheduleInstrsPorts with the default port width for
// every array.
func (t Target) scheduleInstrs(instrs []*llvm.Instr) blockSchedule {
	return t.scheduleInstrsPorts(instrs, nil)
}

// scheduleInstrsPorts runs chaining-aware, memory-port-constrained list
// scheduling over an instruction sequence (one block, or a loop iteration's
// blocks concatenated). Values defined outside the sequence are ready at
// time zero. portsOf overrides the per-array port count (array
// partitioning multiplies the default dual ports); nil uses the default.
func (t Target) scheduleInstrsPorts(instrs []*llvm.Instr, portsOf func(llvm.Value) int) blockSchedule {
	clk := t.ClockNs
	finish := map[*llvm.Instr]float64{}
	inSeq := map[*llvm.Instr]bool{}
	for _, in := range instrs {
		inSeq[in] = true
	}
	// Memory ordering state per base.
	lastStoreFinish := map[llvm.Value]float64{}
	lastAccessFinish := map[llvm.Value]float64{}
	// Port occupancy per base per cycle.
	ports := map[llvm.Value]map[int64]int{}
	mem := map[llvm.Value]int{}
	portWidth := func(base llvm.Value) int {
		if portsOf != nil {
			if n := portsOf(base); n > 0 {
				return n
			}
		}
		return t.MemPorts
	}

	var maxFinish float64
	var maxChain float64
	for _, in := range instrs {
		cost := t.CostOf(in)
		// Any single stage's delay bounds the achievable clock.
		if cost.Delay > maxChain {
			maxChain = cost.Delay
		}
		ready := 0.0
		for _, a := range in.Args {
			if d, ok := a.(*llvm.Instr); ok && inSeq[d] {
				if f, ok := finish[d]; ok && f > ready {
					ready = f
				}
			}
		}
		var base llvm.Value
		switch in.Op {
		case llvm.OpLoad:
			base = baseOf(in.Args[0])
			if f := lastStoreFinish[base]; f > ready {
				ready = f
			}
		case llvm.OpStore:
			base = baseOf(in.Args[1])
			if f := lastAccessFinish[base]; f > ready {
				ready = f
			}
		}

		var end float64
		if cost.Latency == 0 {
			// Combinational: chain if the delay fits in the current cycle.
			start := ready
			cycleEnd := (math.Floor(start/clk) + 1) * clk
			if start+cost.Delay > cycleEnd {
				start = math.Ceil(start/clk) * clk
				if start == ready && start+cost.Delay > start+clk {
					// Single op longer than a cycle: takes one full cycle.
					cost.Delay = clk
				}
			}
			end = start + cost.Delay
			if chain := end - math.Floor(end/clk)*clk; chain > maxChain && chain <= clk {
				maxChain = chain
			}
		} else {
			// Sequential: starts at a cycle boundary.
			startCycle := int64(math.Ceil(ready / clk))
			if base != nil {
				if ports[base] == nil {
					ports[base] = map[int64]int{}
				}
				for ports[base][startCycle] >= portWidth(base) {
					startCycle++
				}
				ports[base][startCycle]++
				mem[base]++
			}
			end = float64(startCycle+int64(cost.Latency)) * clk
		}
		finish[in] = end
		if end > maxFinish {
			maxFinish = end
		}
		switch in.Op {
		case llvm.OpLoad:
			if end > lastAccessFinish[base] {
				lastAccessFinish[base] = end
			}
		case llvm.OpStore:
			if end > lastStoreFinish[base] {
				lastStoreFinish[base] = end
			}
			if end > lastAccessFinish[base] {
				lastAccessFinish[base] = end
			}
		}
	}
	cycles := int64(math.Ceil(maxFinish / clk))
	if cycles == 0 && len(instrs) > 0 {
		cycles = 1
	}
	return blockSchedule{Cycles: cycles, MemAccesses: mem, MaxChainNs: maxChain, finish: finish}
}

// recMII computes the recurrence-constrained minimum initiation interval of
// a loop iteration. With a dependence engine (eng and l non-nil) it is
// distance-aware: a loop-carried flow dependence of exact distance d bounds
// the II at ceil(latency/d) — the cycle closes every d iterations, so its
// latency amortizes over d initiations — and pairs the engine proves
// independent constrain nothing. Without the engine (or when a pair's
// accesses are non-affine) it falls back to the structural model: a load
// that reads a location stored at a loop-INVARIANT address (the classic
// accumulation recurrence C[i][j] += ... in a k-loop) is a distance-1
// recurrence; addresses varying with the induction variable are assumed
// recurrence-free.
// ivDependent reports whether a value depends on the loop's induction phi.
// mayAlias (may be nil) is a points-to oracle: pairs it disproves carry no
// dependence and are skipped before any dependence test.
func (t Target) recMII(eng *deptest.Engine, l *analysis.Loop,
	instrs []*llvm.Instr, ivDependent func(llvm.Value) bool,
	mayAlias func(a, b llvm.Value) bool) int {
	rec := 1
	for _, ld := range instrs {
		if ld.Op != llvm.OpLoad {
			continue
		}
		for _, st := range instrs {
			if st.Op != llvm.OpStore {
				continue
			}
			if mayAlias != nil && !mayAlias(ld.Args[0], st.Args[1]) {
				continue
			}
			dist := int64(0) // 0: undecided, fall back to the structural model
			if eng != nil && l != nil {
				switch cd := eng.Carried(l, st, ld); cd.Res {
				case deptest.Independent:
					continue
				case deptest.Dependent:
					dist = 1
					if cd.Exact {
						dist = cd.Dist
					}
				}
			}
			if dist == 0 {
				if !sameAddress(ld.Args[0], st.Args[1]) {
					continue
				}
				if ivDependent != nil && ivDependent(ld.Args[0]) {
					continue
				}
				dist = 1
			}
			// Path from the load to the stored value through def-use edges.
			if depth, ok := t.pathLatency(ld, st.Args[0], instrs); ok {
				// The recurrence is load -> compute -> store -> (next load),
				// closed every dist iterations.
				total := (int64(depth) + 1 + dist - 1) / dist // +1 for the store write
				if int(total) > rec {
					rec = int(total)
				}
			}
		}
	}
	return rec
}

// sameAddress reports whether two pointer operands are provably the same
// address: the same SSA value, or GEPs off the same base with identical
// index operands.
func sameAddress(a, b llvm.Value) bool {
	if a == b {
		return true
	}
	ga, ok1 := a.(*llvm.Instr)
	gb, ok2 := b.(*llvm.Instr)
	if !ok1 || !ok2 || ga.Op != llvm.OpGEP || gb.Op != llvm.OpGEP {
		return false
	}
	if ga.Args[0] != gb.Args[0] || len(ga.Args) != len(gb.Args) {
		return false
	}
	for i := 1; i < len(ga.Args); i++ {
		if !sameIndexValue(ga.Args[i], gb.Args[i], 8) {
			return false
		}
	}
	return true
}

// sameIndexValue compares two index computations structurally: identical
// SSA values, equal constants, or pure arithmetic trees of the same shape
// over the same leaves (both flows rematerialize the address chain per
// access, so pointer identity alone misses equal addresses).
func sameIndexValue(a, b llvm.Value, depth int) bool {
	if a == b {
		return true
	}
	if depth == 0 {
		return false
	}
	if ca, ok := a.(*llvm.ConstInt); ok {
		cb, ok := b.(*llvm.ConstInt)
		return ok && ca.Val == cb.Val
	}
	ia, ok1 := a.(*llvm.Instr)
	ib, ok2 := b.(*llvm.Instr)
	if !ok1 || !ok2 || ia.Op != ib.Op || len(ia.Args) != len(ib.Args) {
		return false
	}
	switch ia.Op {
	case llvm.OpAdd, llvm.OpSub, llvm.OpMul, llvm.OpShl, llvm.OpAShr,
		llvm.OpAnd, llvm.OpOr, llvm.OpXor, llvm.OpZExt, llvm.OpSExt,
		llvm.OpTrunc, llvm.OpGEP:
	default:
		return false // non-pure ops: only pointer identity counts
	}
	for i := range ia.Args {
		if !sameIndexValue(ia.Args[i], ib.Args[i], depth-1) {
			return false
		}
	}
	return true
}

// pathLatency returns the cycle latency of the def-use path from src's
// result to dst (inclusive of src's own latency), with ok=false when dst
// does not depend on src. Phi operands are not traversed: a path through a
// phi crosses iterations and is not part of this same-iteration recurrence.
func (t Target) pathLatency(src *llvm.Instr, dst llvm.Value, instrs []*llvm.Instr) (int, bool) {
	visiting := map[*llvm.Instr]bool{}
	var walk func(v llvm.Value) (int, bool)
	walk = func(v llvm.Value) (int, bool) {
		if v == src {
			c := t.CostOf(src)
			return maxInt(c.Latency, 1), true
		}
		din, ok := v.(*llvm.Instr)
		if !ok || din.Op == llvm.OpPhi || visiting[din] {
			return 0, false
		}
		visiting[din] = true
		best := -1
		for _, a := range din.Args {
			if d, ok := walk(a); ok && d > best {
				best = d
			}
		}
		visiting[din] = false
		if best < 0 {
			return 0, false
		}
		c := t.CostOf(din)
		return best + c.Latency, true
	}
	return walk(dst)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

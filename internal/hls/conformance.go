package hls

import (
	"fmt"
	"strings"

	"repro/internal/diag"
	"repro/internal/llvm"
)

// This file is the strict HLS-readable-IR conformance gate: an explicit
// model of the accepted input subset of the old Vitis-era LLVM frontend,
// checked over every module the adaptor flow emits. Where Check rejects
// the handful of modern-IR constructs that motivate the adaptor, the
// conformance gate is a whitelist — every opcode, type, comparison
// predicate, and callee must be affirmatively inside the subset. Any
// post-adaptor construct outside it is an adaptor bug by definition, and
// is reported as a located diagnostic through internal/diag.

// Conformance opcode whitelist: the instruction set the old HLS frontend's
// scheduler and binder understand. Deliberately absent: bitcast, ptrtoint,
// inttoptr (type punning defeats BRAM inference), extractvalue/insertvalue
// (descriptor aggregates must have been dismantled), unreachable (the
// control FSM needs a single well-formed exit).
var conformantOps = map[llvm.Opcode]bool{
	llvm.OpAdd: true, llvm.OpSub: true, llvm.OpMul: true,
	llvm.OpSDiv: true, llvm.OpSRem: true,
	llvm.OpAnd: true, llvm.OpOr: true, llvm.OpXor: true,
	llvm.OpShl: true, llvm.OpLShr: true, llvm.OpAShr: true,
	llvm.OpFAdd: true, llvm.OpFSub: true, llvm.OpFMul: true,
	llvm.OpFDiv: true, llvm.OpFNeg: true,
	llvm.OpICmp: true, llvm.OpFCmp: true, llvm.OpSelect: true,
	llvm.OpZExt: true, llvm.OpSExt: true, llvm.OpTrunc: true,
	llvm.OpSIToFP: true, llvm.OpFPToSI: true,
	llvm.OpFPExt: true, llvm.OpFPTrunc: true,
	llvm.OpLoad: true, llvm.OpStore: true, llvm.OpGEP: true,
	llvm.OpAlloca: true, llvm.OpPhi: true,
	llvm.OpBr: true, llvm.OpCondBr: true, llvm.OpRet: true,
	llvm.OpCall: true,
}

// conformantIntPreds / conformantFloatPreds are the comparison predicates
// the backend's comparator library implements (signed and ordered only —
// the kernels' index/f32 arithmetic never needs unsigned or unordered
// forms, and the old frontend did not model them).
var conformantIntPreds = map[string]bool{
	"eq": true, "ne": true, "slt": true, "sle": true, "sgt": true, "sge": true,
}

var conformantFloatPreds = map[string]bool{
	"oeq": true, "one": true, "olt": true, "ole": true, "ogt": true, "oge": true,
}

// Conformance checks every defined function of m against the old HLS
// LLVM's accepted subset and returns one located error diagnostic per
// violation (empty = fully conformant). It subsumes Check's blacklist: a
// module with readable-subset violations also fails conformance.
func Conformance(m *llvm.Module) diag.Diagnostics {
	var ds diag.Diagnostics
	if m.Flavor != llvm.FlavorHLS {
		ds = append(ds, diag.Diagnostic{
			Severity: diag.SevError, Check: "conformance-flavor",
			Message:  "module is not in the HLS (typed-pointer) dialect",
			BlockPos: -1, InstrPos: -1,
		})
	}
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		ds = append(ds, conformFunc(m, f)...)
	}
	ds.Sort()
	return ds
}

func conformFunc(m *llvm.Module, f *llvm.Function) diag.Diagnostics {
	var ds diag.Diagnostics
	fnDiag := func(check, msg, suggestion string) {
		ds = append(ds, diag.Diagnostic{
			Severity: diag.SevError, Check: check, Func: f.Name,
			Message: msg, Suggestion: suggestion, BlockPos: -1, InstrPos: -1,
		})
	}

	for _, p := range f.Params {
		if strings.HasSuffix(p.Name, "_base") || strings.HasSuffix(p.Name, "_aligned") ||
			strings.HasSuffix(p.Name, "_offset") || strings.Contains(p.Name, "_size") ||
			strings.Contains(p.Name, "_stride") {
			fnDiag("conformance-descriptor-param",
				fmt.Sprintf("parameter %%%s is a memref-descriptor leftover", p.Name),
				"the adaptor's descriptor-to-array rewrite did not fire for this argument")
			continue
		}
		if !conformantParamType(p.Ty) {
			fnDiag("conformance-param-type",
				fmt.Sprintf("parameter %%%s has type outside the HLS subset", p.Name),
				"interface parameters must be scalars or pointers to statically-shaped arrays")
		}
	}
	if !f.Ret.IsVoid() && !conformantScalar(f.Ret) {
		fnDiag("conformance-return-type", "return type outside the HLS subset", "")
	}

	rets := 0
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs {
			loc := func(check, msg string) {
				name := in.Name
				if name == "" {
					name = string(in.Op)
				}
				ds = append(ds, diag.Diagnostic{
					Severity: diag.SevError, Check: check, Func: f.Name,
					Block: b.Name, Instr: name, Message: msg,
					BlockPos: bi, InstrPos: ii,
				})
			}
			if !conformantOps[in.Op] {
				loc("conformance-opcode", fmt.Sprintf("opcode %q outside the HLS subset", in.Op))
				continue
			}
			if in.HasResult() && !conformantValueType(in.Ty) {
				loc("conformance-type", "result type outside the HLS subset")
			}
			switch in.Op {
			case llvm.OpICmp:
				if !conformantIntPreds[in.Pred] {
					loc("conformance-predicate", fmt.Sprintf("icmp predicate %q outside the HLS subset", in.Pred))
				}
			case llvm.OpFCmp:
				if !conformantFloatPreds[in.Pred] {
					loc("conformance-predicate", fmt.Sprintf("fcmp predicate %q outside the HLS subset", in.Pred))
				}
			case llvm.OpCall:
				if strings.HasPrefix(in.Callee, "llvm.") {
					loc("conformance-call", "intrinsic "+in.Callee+" unknown to the HLS LLVM")
				} else if !supportedCalls[in.Callee] && m.FindFunc(in.Callee) == nil {
					loc("conformance-call", "call to unknown function @"+in.Callee)
				}
			case llvm.OpAlloca:
				if in.SrcElem == nil || !conformantMemType(in.SrcElem) {
					loc("conformance-alloca", "alloca of a type outside the HLS subset")
				}
			case llvm.OpRet:
				rets++
			}
		}
	}
	if rets > 1 {
		fnDiag("conformance-multi-exit",
			fmt.Sprintf("%d return sites; the control FSM requires one", rets), "")
	}
	return ds
}

// conformantScalar accepts the scalar value types the backend models:
// i1/i8/i32/i64, float, double.
func conformantScalar(t *llvm.Type) bool {
	if t == nil {
		return false
	}
	if t.IsInt() {
		switch t.Bits {
		case 1, 8, 32, 64:
			return true
		}
		return false
	}
	return t.IsFP()
}

// conformantMemType accepts what may live in memory: scalars and
// (possibly nested) statically-sized arrays of them.
func conformantMemType(t *llvm.Type) bool {
	for t != nil && t.IsArray() {
		if t.N <= 0 {
			return false
		}
		t = t.Elem
	}
	return conformantScalar(t)
}

// conformantParamType accepts scalars and typed pointers to
// statically-shaped arrays (the BRAM-mappable interface forms).
func conformantParamType(t *llvm.Type) bool {
	if conformantScalar(t) {
		return true
	}
	if t.IsPtr() && t.Elem != nil && t.Elem.IsArray() {
		return conformantMemType(t.Elem)
	}
	return false
}

// conformantValueType accepts SSA value types: scalars plus typed
// pointers into conformant memory.
func conformantValueType(t *llvm.Type) bool {
	if conformantScalar(t) {
		return true
	}
	if t.IsPtr() {
		return t.Elem != nil && conformantMemType(t.Elem)
	}
	return false
}

package hls

import (
	"strings"
	"testing"

	"repro/internal/llvm"
)

// conformantKernel builds a minimal in-subset function: void @k([4 x float]* %a)
// with a single load/fadd/store and one return.
func conformantKernel() *llvm.Module {
	m := llvm.NewModule("t")
	m.Flavor = llvm.FlavorHLS
	arr := llvm.ArrayOf(4, llvm.FloatT())
	f := llvm.NewFunction("k", llvm.Void(), &llvm.Param{Name: "a", Ty: llvm.Ptr(arr)})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	g := b.GEP(arr, f.Params[0], llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 1))
	v := b.Load(llvm.FloatT(), g)
	s := b.FAdd(v, llvm.CF(llvm.FloatT(), 1))
	b.Store(s, g)
	b.Ret(nil)
	return m
}

func TestConformanceAcceptsSubset(t *testing.T) {
	if ds := Conformance(conformantKernel()); len(ds) != 0 {
		t.Fatalf("in-subset module has %d diagnostics; first: %s", len(ds), ds[0])
	}
}

func TestConformanceRejectsModernFlavor(t *testing.T) {
	m := conformantKernel()
	m.Flavor = llvm.FlavorModern
	ds := Conformance(m)
	if len(ds) == 0 {
		t.Fatal("modern-flavor module must fail conformance")
	}
	if ds[0].Check != "conformance-flavor" {
		t.Errorf("check = %s, want conformance-flavor", ds[0].Check)
	}
}

func TestConformanceRejectsOpcode(t *testing.T) {
	m := conformantKernel()
	f := m.FindFunc("k")
	// Retype an instruction into a non-subset opcode.
	f.Blocks[0].Instrs[0].Op = llvm.OpPtrToInt
	ds := Conformance(m)
	found := false
	for _, d := range ds {
		if d.Check == "conformance-opcode" && strings.Contains(d.Message, "ptrtoint") {
			found = true
			if d.Func != "k" || d.Block != "entry" || d.BlockPos != 0 {
				t.Errorf("diagnostic not located: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("ptrtoint not flagged; got %v", ds)
	}
}

func TestConformanceRejectsDescriptorParams(t *testing.T) {
	m := conformantKernel()
	f := m.FindFunc("k")
	f.Params = append(f.Params, &llvm.Param{Name: "a_offset", Ty: llvm.I64()})
	ds := Conformance(m)
	found := false
	for _, d := range ds {
		if d.Check == "conformance-descriptor-param" {
			found = true
		}
	}
	if !found {
		t.Fatalf("descriptor leftover not flagged; got %v", ds)
	}
}

func TestConformanceRejectsUnshapedPointerParam(t *testing.T) {
	m := llvm.NewModule("t")
	m.Flavor = llvm.FlavorHLS
	f := llvm.NewFunction("k", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.FloatT())})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.Ret(nil)
	ds := Conformance(m)
	found := false
	for _, d := range ds {
		if d.Check == "conformance-param-type" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unshaped pointer param not flagged; got %v", ds)
	}
}

func TestConformanceRejectsIntrinsicAndPredicate(t *testing.T) {
	m := conformantKernel()
	f := m.FindFunc("k")
	b := llvm.NewBuilder(f)
	b.SetBlock(f.Blocks[0])
	// Rebuild the terminator after appending: pull the ret off, add the
	// violations, put it back.
	instrs := f.Blocks[0].Instrs
	ret := instrs[len(instrs)-1]
	f.Blocks[0].Instrs = instrs[:len(instrs)-1]
	b.Call("llvm.lifetime.start.p0", llvm.Void())
	c := b.ICmp("ult", llvm.CI(llvm.I32(), 1), llvm.CI(llvm.I32(), 2))
	_ = c
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, ret)
	ds := Conformance(m)
	var gotCall, gotPred bool
	for _, d := range ds {
		switch d.Check {
		case "conformance-call":
			gotCall = true
		case "conformance-predicate":
			gotPred = true
		}
	}
	if !gotCall {
		t.Error("llvm.* intrinsic not flagged")
	}
	if !gotPred {
		t.Error("unsigned icmp predicate not flagged")
	}
}

func TestConformanceSubsumesCheck(t *testing.T) {
	// Anything the readable-subset blacklist rejects must also fail the
	// conformance whitelist.
	m := conformantKernel()
	f := m.FindFunc("k")
	instrs := f.Blocks[0].Instrs
	ret := instrs[len(instrs)-1]
	f.Blocks[0].Instrs = instrs[:len(instrs)-1]
	b := llvm.NewBuilder(f)
	b.SetBlock(f.Blocks[0])
	b.Call("malloc", llvm.Ptr(llvm.I8()), llvm.CI(llvm.I64(), 64))
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs, ret)
	if vs := Check(m); len(vs) == 0 {
		t.Fatal("readable check should reject malloc")
	}
	if ds := Conformance(m); len(ds) == 0 {
		t.Fatal("conformance must subsume the readable check")
	}
}

package hls

import (
	"strconv"
	"strings"

	"repro/internal/llvm"
)

// This file exports the scheduler's dependence/address reasoning for the
// static-analysis layer (internal/lint), so lint diagnostics and the DSE
// feasibility pre-check agree with the estimator instead of re-deriving a
// divergent model.

// RecMII computes the recurrence-constrained minimum initiation interval of
// one loop iteration's instruction sequence. ivDependent (may be nil)
// reports whether a value varies with the loop's induction variable; loads
// at IV-dependent addresses touch a different location each iteration and do
// not constrain the II.
func (t Target) RecMII(instrs []*llvm.Instr, ivDependent func(llvm.Value) bool) int {
	return t.recMII(instrs, ivDependent)
}

// SameAddress reports whether two pointer operands are provably the same
// address: the same SSA value, or GEPs off the same base with structurally
// identical index computations.
func SameAddress(a, b llvm.Value) bool { return sameAddress(a, b) }

// BaseOf resolves a pointer operand to its root allocation (parameter or
// alloca) by walking back through GEPs and casts.
func BaseOf(v llvm.Value) llvm.Value { return baseOf(v) }

// DependsOnLoopPhi reports whether v's computation reads any phi of the
// given loop header, i.e. whether v varies across that loop's iterations.
func DependsOnLoopPhi(v llvm.Value, header *llvm.Block) bool {
	return dependsOnHeaderPhi(v, header, map[llvm.Value]bool{})
}

// ParsePartitionSpec decodes an array-partition attribute value of the form
// "kind,factor,dim" (e.g. "cyclic,2,0"; factor and dim optional) as attached
// by the adaptor under hls.array_partition.argN keys.
func ParsePartitionSpec(spec string) (kind string, factor, dim int) {
	kind, factor = parsePartition(spec)
	if parts := strings.Split(spec, ","); len(parts) > 2 {
		dim, _ = strconv.Atoi(parts[2])
	}
	return kind, factor, dim
}

package hls

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/deptest"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// This file exports the scheduler's dependence/address reasoning for the
// static-analysis layer (internal/lint), so lint diagnostics and the DSE
// feasibility pre-check agree with the estimator instead of re-deriving a
// divergent model.

// RecMII computes the recurrence-constrained minimum initiation interval of
// one loop iteration's instruction sequence. ivDependent (may be nil)
// reports whether a value varies with the loop's induction variable; loads
// at IV-dependent addresses touch a different location each iteration and do
// not constrain the II. mayAlias (may be nil) is a points-to oracle used to
// discard load/store pairs that provably address disjoint memory.
func (t Target) RecMII(instrs []*llvm.Instr, ivDependent func(llvm.Value) bool,
	mayAlias func(a, b llvm.Value) bool) int {
	return t.recMII(nil, nil, instrs, ivDependent, mayAlias)
}

// RecMIIWith is RecMII with an affine dependence engine: eng's exact
// distance/direction verdicts for loop l replace the structural
// same-address heuristic wherever both accesses are affine — a distance-d
// recurrence bounds the II at ceil(latency/d), and provably independent
// pairs constrain nothing. Pairs the engine cannot decide fall back to the
// structural model, so the result is never looser than RecMII.
func (t Target) RecMIIWith(eng *deptest.Engine, l *analysis.Loop,
	instrs []*llvm.Instr, ivDependent func(llvm.Value) bool,
	mayAlias func(a, b llvm.Value) bool) int {
	return t.recMII(eng, l, instrs, ivDependent, mayAlias)
}

// MemAccessCounts returns the per-base load/store counts of one iteration's
// instruction sequence, exactly as the port-constrained scheduler tallies
// them (access counts are independent of port widths and partitioning).
func (t Target) MemAccessCounts(instrs []*llvm.Instr) map[llvm.Value]int {
	return t.scheduleInstrsPorts(instrs, nil).MemAccesses
}

// ResMII computes the resource-constrained minimum initiation interval from
// per-base access counts: the maximum over bases of ceil(accesses/ports).
// portsOf (may be nil) overrides the default per-base port count.
func (t Target) ResMII(counts map[llvm.Value]int, portsOf func(llvm.Value) int) int {
	resMII := 1
	for base, n := range counts {
		ports := t.MemPorts
		if portsOf != nil {
			if p := portsOf(base); p > 0 {
				ports = p
			}
		}
		if m := (n + ports - 1) / ports; m > resMII {
			resMII = m
		}
	}
	return resMII
}

// PartitionPorts builds the effective-port-count oracle for f's parameter
// arrays from its hls.array_partition.argN attributes — the same closure the
// synthesis estimator schedules with, exported so the lint layer and the DSE
// pre-check price partition directives identically.
func (t Target) PartitionPorts(f *llvm.Function) func(llvm.Value) int {
	paramIdx := map[llvm.Value]int{}
	for i, p := range f.Params {
		paramIdx[p] = i
	}
	return func(base llvm.Value) int {
		i, ok := paramIdx[base]
		if !ok {
			return 0
		}
		kind, factor := parsePartition(f.Attrs[fmt.Sprintf("hls.array_partition.arg%d", i)])
		switch kind {
		case "complete":
			return 1 << 20 // registers: effectively unlimited ports
		case "cyclic", "block":
			if factor > 1 {
				return t.MemPorts * factor
			}
		}
		return 0
	}
}

// SameAddress reports whether two pointer operands are provably the same
// address: the same SSA value, or GEPs off the same base with structurally
// identical index computations.
func SameAddress(a, b llvm.Value) bool { return sameAddress(a, b) }

// BaseOf resolves a pointer operand to its root allocation (parameter or
// alloca) by walking back through GEPs and casts.
func BaseOf(v llvm.Value) llvm.Value { return baseOf(v) }

// DependsOnLoopPhi reports whether v's computation reads any phi of the
// given loop header, i.e. whether v varies across that loop's iterations.
func DependsOnLoopPhi(v llvm.Value, header *llvm.Block) bool {
	return dependsOnHeaderPhi(v, header, map[llvm.Value]bool{})
}

// ParsePartitionSpec decodes an array-partition attribute value of the form
// "kind,factor,dim" (e.g. "cyclic,2,0"; factor and dim optional) as attached
// by the adaptor under hls.array_partition.argN keys.
func ParsePartitionSpec(spec string) (kind string, factor, dim int) {
	kind, factor = parsePartition(spec)
	if parts := strings.Split(spec, ","); len(parts) > 2 {
		dim, _ = strconv.Atoi(parts[2])
	}
	return kind, factor, dim
}

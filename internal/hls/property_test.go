package hls

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mlir"
	"repro/internal/mlir/passes"
)

// randomKernel builds a random but well-formed 2-level loop nest over two
// arrays with a configurable body size.
func randomKernel(r *rand.Rand) *mlir.Module {
	n := int64(r.Intn(12) + 4)
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F32())
	_, args := m.AddFunc("rk", []*mlir.Type{ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("rk")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			v := b.AffineLoad(args[0], i, j)
			ops := r.Intn(5) + 1
			for k := 0; k < ops; k++ {
				switch r.Intn(4) {
				case 0:
					v = b.AddF(v, v)
				case 1:
					v = b.MulF(v, v)
				case 2:
					v = b.NegF(v)
				default:
					w := b.AffineLoad(args[1], i, j)
					v = b.AddF(v, w)
				}
			}
			b.AffineStore(v, args[1], i, j)
		})
	})
	b.Return()
	if err := passes.MarkTop("rk").Run(m); err != nil {
		panic(err)
	}
	return m
}

func synthRandom(t *testing.T, seed int64, ps ...passes.Pass) *Report {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	m := randomKernel(r)
	lm := adapted(t, m, ps...)
	rep, err := Synthesize(lm, "rk", DefaultTarget())
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return rep
}

// Property: latency is at least the iteration count (every iteration costs
// at least one cycle) and every loop's latency is positive.
func TestPropertyLatencyLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rep := synthRandom(t, seed)
		if rep.LatencyCycles <= 0 {
			return false
		}
		for _, l := range rep.Loops {
			if l.Latency <= 0 || l.IterLatency <= 0 {
				return false
			}
			if l.Trip > 0 && l.Latency < l.Trip {
				return false // cannot finish faster than 1 cycle/iter
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: pipelining never increases latency, and II >= 1.
func TestPropertyPipeliningMonotone(t *testing.T) {
	f := func(seed int64) bool {
		base := synthRandom(t, seed)
		piped := synthRandom(t, seed, passes.PipelineInnermost(1))
		for _, l := range piped.Loops {
			if l.Pipelined && l.II < 1 {
				return false
			}
		}
		return piped.LatencyCycles <= base.LatencyCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: a pipelined loop's latency formula holds: depth + (trip-1)*II.
func TestPropertyPipelineFormula(t *testing.T) {
	f := func(seed int64) bool {
		rep := synthRandom(t, seed, passes.PipelineInnermost(1))
		for _, l := range rep.Loops {
			if !l.Pipelined || l.Trip <= 0 {
				continue
			}
			if l.Latency != l.IterLatency+(l.Trip-1)*int64(l.II) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: widening the target II never lowers the achieved II below the
// target, and latency grows monotonically with the target II.
func TestPropertyIIRespectsTarget(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		var prev int64
		for _, ii := range []int{1, 2, 4} {
			rep := synthRandom(t, seed, passes.PipelineInnermost(ii))
			for _, l := range rep.Loops {
				if l.Pipelined && l.II < ii {
					t.Fatalf("seed %d: achieved II %d below target %d", seed, l.II, ii)
				}
			}
			if prev != 0 && rep.LatencyCycles < prev {
				t.Fatalf("seed %d: latency decreased when target II grew", seed)
			}
			prev = rep.LatencyCycles
		}
	}
}

// Property: resources are non-negative and BRAM grows (weakly) with the
// cyclic partition factor.
func TestPropertyPartitionResources(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		var prevBRAM int
		for i, factor := range []int{1, 2, 4} {
			rep := synthRandom(t, seed,
				passes.PipelineInnermost(1),
				passes.PartitionAllArgs(passes.PartitionSpec{Kind: "cyclic", Factor: factor, Dim: 0}))
			if rep.LUT < 0 || rep.FF < 0 || rep.DSP < 0 || rep.BRAM < 0 {
				t.Fatalf("seed %d: negative resources", seed)
			}
			if i > 0 && rep.BRAM < prevBRAM {
				t.Fatalf("seed %d: BRAM shrank with larger partition factor", seed)
			}
			prevBRAM = rep.BRAM
		}
	}
}

// Property: scheduling respects memory ordering — a store and subsequent
// load of the same array never land in the same cycle when ports are
// exhausted; indirectly: doubling the ports never slows a block down.
func TestPropertyMorePortsNeverSlower(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := randomKernel(r)
		lm := adapted(t, m)
		f := lm.FindFunc("rk")
		tgt := DefaultTarget()
		var widePorts = tgt
		widePorts.MemPorts = tgt.MemPorts * 4
		for _, blk := range f.Blocks {
			narrow := tgt.scheduleInstrs(blk.Instrs)
			wide := widePorts.scheduleInstrs(blk.Instrs)
			if wide.Cycles > narrow.Cycles {
				t.Fatalf("seed %d: wider ports slowed a block: %d -> %d",
					seed, narrow.Cycles, wide.Cycles)
			}
		}
	}
}

// Property: the critical path bound — a block's schedule is at least as long
// as its longest pure dependency chain of multi-cycle ops.
func TestPropertyCriticalPathBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := randomKernel(r)
		lm := adapted(t, m)
		f := lm.FindFunc("rk")
		tgt := DefaultTarget()
		tgt.addrOnly = computeAddrOnly(f)
		for _, blk := range f.Blocks {
			sched := tgt.scheduleInstrs(blk.Instrs)
			// Longest chain in cycles via per-instruction latencies.
			chain := map[interface{}]int64{}
			var longest int64
			for _, in := range blk.Instrs {
				c := tgt.CostOf(in)
				best := int64(0)
				for _, a := range in.Args {
					if v, ok := chain[a]; ok && v > best {
						best = v
					}
				}
				mine := best + int64(c.Latency)
				chain[interface{}(in)] = mine
				if mine > longest {
					longest = mine
				}
			}
			if sched.Cycles < longest {
				t.Fatalf("seed %d: schedule (%d) shorter than critical path (%d)",
					seed, sched.Cycles, longest)
			}
		}
	}
}

// Package hls implements the synthesis-estimator stand-in for the Xilinx
// Vitis HLS backend used in the paper's evaluation. It has two halves:
//
//   - a legality gate (Check) modeling the older in-tool LLVM frontend: it
//     rejects the modern-IR constructs that motivate the adaptor (opaque
//     pointers, descriptor ABIs, dynamic allocation, new intrinsics);
//   - a synthesis estimator (Synthesize) producing latency cycles, loop
//     initiation intervals, and LUT/FF/DSP/BRAM utilization from a
//     chaining-aware resource-constrained schedule, with modulo-scheduling
//     II = max(target, RecMII, ResMII) for pipelined loops.
//
// Absolute numbers are model numbers, not silicon numbers; the experiments
// compare flows through the same model, which preserves the paper's
// comparisons.
package hls

import (
	"fmt"
	"strings"

	"repro/internal/llvm"
)

// Violation is one reason the HLS frontend rejects a module.
type Violation struct {
	Func   string
	Kind   string
	Detail string
}

// String renders the violation with its kind and location.
func (v Violation) String() string {
	if v.Func == "" {
		return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("[%s] @%s: %s", v.Kind, v.Func, v.Detail)
}

// Violation kinds.
const (
	VOpaque       = "opaque-pointers"
	VDescriptor   = "descriptor-abi"
	VDynamicAlloc = "dynamic-allocation"
	VIntrinsic    = "unsupported-intrinsic"
	VInterface    = "unshaped-interface"
	VMultiExit    = "multiple-exits"
)

// supportedCalls is the older toolchain's call whitelist.
var supportedCalls = map[string]bool{
	"sqrt": true, "sqrtf": true, "exp": true, "expf": true,
	"fabs": true, "fabsf": true,
}

// Check returns every readability violation in the module. An empty result
// means the HLS frontend accepts the IR.
func Check(m *llvm.Module) []Violation {
	var out []Violation
	if m.Flavor != llvm.FlavorHLS {
		out = append(out, Violation{Kind: VOpaque,
			Detail: "module uses the modern opaque-pointer dialect; the HLS LLVM requires typed pointers"})
	}
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		out = append(out, checkFunc(m, f)...)
	}
	return out
}

func checkFunc(m *llvm.Module, f *llvm.Function) []Violation {
	var out []Violation
	// Descriptor ABI leftovers: grouped base/aligned/offset params.
	for _, p := range f.Params {
		if strings.HasSuffix(p.Name, "_aligned") || strings.HasSuffix(p.Name, "_base") ||
			strings.HasSuffix(p.Name, "_offset") || strings.Contains(p.Name, "_stride") ||
			strings.Contains(p.Name, "_size") {
			out = append(out, Violation{Func: f.Name, Kind: VDescriptor,
				Detail: fmt.Sprintf("parameter %%%s belongs to a memref descriptor expansion", p.Name)})
			continue
		}
		if p.Ty.IsPtr() && (p.Ty.Elem == nil || !(p.Ty.Elem.IsArray() || !p.Ty.Elem.IsPtr() && p.Ty.Elem.IsStruct())) {
			// A pointer param must carry a static array shape for BRAM
			// inference; scalar pointers are also rejected here.
			if p.Ty.Elem == nil || !p.Ty.Elem.IsArray() {
				out = append(out, Violation{Func: f.Name, Kind: VInterface,
					Detail: fmt.Sprintf("pointer parameter %%%s has no static array shape", p.Name)})
			}
		}
	}
	rets := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case llvm.OpCall:
				switch {
				case in.Callee == "malloc" || in.Callee == "free":
					out = append(out, Violation{Func: f.Name, Kind: VDynamicAlloc,
						Detail: "dynamic allocation (" + in.Callee + ") cannot be synthesized"})
				case strings.HasPrefix(in.Callee, "llvm."):
					out = append(out, Violation{Func: f.Name, Kind: VIntrinsic,
						Detail: "intrinsic " + in.Callee + " unknown to the HLS LLVM"})
				case !supportedCalls[in.Callee] && m.FindFunc(in.Callee) == nil:
					out = append(out, Violation{Func: f.Name, Kind: VIntrinsic,
						Detail: "call to unknown function @" + in.Callee})
				}
			case llvm.OpRet:
				rets++
			}
		}
	}
	if rets > 1 {
		out = append(out, Violation{Func: f.Name, Kind: VMultiExit,
			Detail: fmt.Sprintf("%d return sites; the control FSM requires one", rets)})
	}
	return out
}

package hls

import (
	"strings"
	"testing"

	"repro/internal/mlir"
	"repro/internal/mlir/passes"
)

// buildCopy2D builds a perfect 2-deep copy nest (flattenable).
func buildCopy2D(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F32())
	_, args := m.AddFunc("copy2d", []*mlir.Type{ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("copy2d")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			v := b.AffineLoad(args[0], i, j)
			b.AffineStore(v, args[1], i, j)
		})
	})
	b.Return()
	return m
}

func TestFlattenReducesLatency(t *testing.T) {
	const n = 16
	piped, err := Synthesize(adapted(t, buildCopy2D(n),
		passes.MarkTop("copy2d"), passes.PipelineInnermost(1)),
		"copy2d", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Synthesize(adapted(t, buildCopy2D(n),
		passes.MarkTop("copy2d"), passes.PipelineInnermost(1), passes.MarkFlatten()),
		"copy2d", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if flat.LatencyCycles >= piped.LatencyCycles {
		t.Errorf("flattening should reduce latency: %d -> %d",
			piped.LatencyCycles, flat.LatencyCycles)
	}
	// The flattened nest: one merged loop entry with trip n*n.
	var flattened *LoopReport
	for i := range flat.Loops {
		if flat.Loops[i].Flattened {
			flattened = &flat.Loops[i]
		}
	}
	if flattened == nil {
		t.Fatal("no flattened loop reported")
	}
	if flattened.Trip != n*n {
		t.Errorf("flattened trip = %d, want %d", flattened.Trip, n*n)
	}
	// Ideal flattened latency ~ depth + (n*n-1)*II.
	if flattened.Latency > flattened.IterLatency+int64(n*n-1)*int64(flattened.II) {
		t.Errorf("flattened latency formula violated: %+v", flattened)
	}
	if !strings.Contains(flat.String(), "flattened") {
		t.Error("report should mark the flattened loop")
	}
}

func TestFlattenRequiresPerfectNest(t *testing.T) {
	// The outer body stores a value before entering the inner loop, so the
	// nest level is imperfect and flatten must NOT fire there.
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8, 8}, mlir.F32())
	vty := mlir.MemRef([]int64{8}, mlir.F32())
	_, args := m.AddFunc("rowinit", []*mlir.Type{ty, vty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("rowinit")))
	zero := b.ConstantFloat(0, mlir.F32())
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineStore(zero, args[1], i) // imperfection
		b.AffineForConst(0, 8, 1, func(b *mlir.Builder, j *mlir.Value) {
			v := b.AffineLoad(args[0], i, j)
			acc := b.AffineLoad(args[1], i)
			b.AffineStore(b.AddF(acc, v), args[1], i)
			_ = j
		})
	})
	b.Return()
	pm := passes.NewPassManager().Add(passes.MarkTop("rowinit"),
		passes.PipelineInnermost(1))
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	// Force the directive onto the outer loop despite the imperfection (a
	// user could always write the pragma); the backend must refuse.
	mlir.Walk(m.Op, func(o *mlir.Op) bool {
		if o.Name == mlir.OpAffineFor && !o.HasAttr(mlir.AttrPipeline) {
			o.SetAttr(mlir.AttrFlatten, mlir.UnitAttr{})
		}
		return true
	})
	lm := adapted(t, m)
	rep, err := Synthesize(lm, "rowinit", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range rep.Loops {
		if l.Flattened {
			t.Errorf("imperfect nest level must not flatten: %+v", l)
		}
	}
	// And MarkFlatten itself must not tag imperfect levels.
	m2 := mlir.NewModule()
	_, args2 := m2.AddFunc("rowinit", []*mlir.Type{ty, vty}, nil)
	b2 := mlir.NewBuilder(mlir.FuncBody(m2.FindFunc("rowinit")))
	z2 := b2.ConstantFloat(0, mlir.F32())
	b2.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineStore(z2, args2[1], i)
		b.AffineForConst(0, 8, 1, func(b *mlir.Builder, j *mlir.Value) {
			v := b.AffineLoad(args2[0], i, j)
			b.AffineStore(v, args2[0], i, j)
		})
	})
	b2.Return()
	if err := passes.MarkFlatten().Run(m2); err != nil {
		t.Fatal(err)
	}
	mlir.Walk(m2.Op, func(o *mlir.Op) bool {
		if o.HasAttr(mlir.AttrFlatten) {
			// Only the (perfect) inner level could be tagged; the outer
			// (imperfect) one must not be. The outer loop is the first op.
			outer := mlir.FuncBody(m2.FindFunc("rowinit")).Ops[0]
			if o == outer {
				t.Error("MarkFlatten tagged an imperfect nest level")
			}
		}
		return true
	})
}

func TestFlattenChainsThroughLevels(t *testing.T) {
	// 3-deep perfect nest: every level should flatten into one pipeline.
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{4, 4, 0 + 4}, mlir.F32())
	_ = ty
	ty3 := mlir.MemRef([]int64{4, 4, 4}, mlir.F32())
	_, args := m.AddFunc("copy3d", []*mlir.Type{ty3, ty3}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("copy3d")))
	b.AffineForConst(0, 4, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, 4, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, 4, 1, func(b *mlir.Builder, k *mlir.Value) {
				v := b.AffineLoad(args[0], i, j, k)
				b.AffineStore(v, args[1], i, j, k)
			})
		})
	})
	b.Return()
	pm := passes.NewPassManager().Add(passes.MarkTop("copy3d"),
		passes.PipelineInnermost(1), passes.MarkFlatten())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	rep, err := Synthesize(adapted(t, m), "copy3d", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	flattened := 0
	var outermost *LoopReport
	for i := range rep.Loops {
		if rep.Loops[i].Flattened {
			flattened++
			if rep.Loops[i].Depth == 1 {
				outermost = &rep.Loops[i]
			}
		}
	}
	if flattened != 2 {
		t.Errorf("want 2 flattened levels, got %d: %s", flattened, rep)
	}
	if outermost == nil || outermost.Trip != 64 {
		t.Errorf("outermost flattened trip should be 64: %+v", outermost)
	}
}

func TestAddrFoldingAblation(t *testing.T) {
	// Disabling address folding must penalize the direct-IR style
	// (explicit i64 muls) — this is the ablation justifying the model.
	lm := adapted(t, buildGemm(8), passes.MarkTop("gemm"), passes.PipelineInnermost(1))
	normal, err := Synthesize(lm, "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	noFold := DefaultTarget()
	noFold.DisableAddrFolding = true
	penalized, err := Synthesize(lm, "gemm", noFold)
	if err != nil {
		t.Fatal(err)
	}
	if penalized.LatencyCycles <= normal.LatencyCycles {
		t.Errorf("disabling addr folding should increase latency: %d -> %d",
			normal.LatencyCycles, penalized.LatencyCycles)
	}
	if penalized.DSP <= normal.DSP {
		t.Errorf("unfolded index muls should consume DSPs: %d -> %d",
			normal.DSP, penalized.DSP)
	}
}

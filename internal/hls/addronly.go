package hls

import "repro/internal/llvm"

// computeAddrOnly marks integer instructions whose results feed only
// address computations (GEP indices) or loop control (compares, branches,
// induction phis). HLS address-generation logic absorbs these, so they must
// not be costed as datapath operators — otherwise the direct-IR flow's
// explicit index arithmetic would be unfairly penalized against a frontend
// that hides the same math inside multi-dimensional accesses.
func computeAddrOnly(f *llvm.Function) map[*llvm.Instr]bool {
	// Users of each instruction, with the operand position kind.
	type useKind int
	const (
		useAddr useKind = iota // GEP index position or control (icmp/br)
		useFlow                // phi or candidate integer op: inherits
		useData                // anything else: datapath
	)
	type use struct {
		user *llvm.Instr
		kind useKind
	}
	uses := map[llvm.Value][]use{}
	candidate := map[*llvm.Instr]bool{}

	isCandidateOp := func(in *llvm.Instr) bool {
		if in.Ty == nil || !in.Ty.IsInt() {
			return in.Op == llvm.OpPhi && in.Ty != nil && in.Ty.IsInt()
		}
		switch in.Op {
		case llvm.OpAdd, llvm.OpSub, llvm.OpMul, llvm.OpShl, llvm.OpAShr,
			llvm.OpAnd, llvm.OpOr, llvm.OpXor, llvm.OpZExt, llvm.OpSExt,
			llvm.OpTrunc, llvm.OpPhi, llvm.OpSDiv, llvm.OpSRem:
			return true
		}
		return false
	}

	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if isCandidateOp(in) {
				candidate[in] = true
			}
			for ai, a := range in.Args {
				k := useData
				switch in.Op {
				case llvm.OpGEP:
					if ai >= 1 {
						k = useAddr
					} else {
						k = useFlow // pointer operand of a gep
					}
				case llvm.OpICmp, llvm.OpCondBr, llvm.OpBr:
					k = useAddr
				case llvm.OpPhi:
					k = useFlow
				default:
					if isCandidateOp(in) {
						k = useFlow
					}
				}
				uses[a] = append(uses[a], use{user: in, kind: k})
			}
		}
	}

	// Fixpoint: demote candidates with data uses or flow uses into
	// non-candidates.
	changed := true
	for changed {
		changed = false
		for in := range candidate {
			if !candidate[in] {
				continue
			}
			for _, u := range uses[in] {
				switch u.kind {
				case useData:
					candidate[in] = false
					changed = true
				case useFlow:
					if !candidate[u.user] && u.user.Op != llvm.OpGEP {
						candidate[in] = false
						changed = true
					}
				}
				if !candidate[in] {
					break
				}
			}
		}
	}

	out := map[*llvm.Instr]bool{}
	for in, ok := range candidate {
		if ok {
			out[in] = true
		}
	}
	return out
}

package hls

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/absint"
	"repro/internal/deptest"
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// LoopReport describes one synthesized loop.
type LoopReport struct {
	Header        string
	Depth         int
	Trip          int64
	TripEstimated bool
	Pipelined     bool
	// Flattened marks a nest level merged into its inner pipeline
	// (loop_flatten): the inner II continues across outer iterations.
	Flattened   bool
	II          int
	IterLatency int64
	Latency     int64
}

// Report is the synthesis result for one top function.
type Report struct {
	Top     string
	ClockNs float64

	LatencyCycles int64
	Loops         []LoopReport

	// CriticalPathNs is the longest combinational chain packed into a
	// cycle; EstimatedFmaxMHz derives from it.
	CriticalPathNs float64

	LUT  int
	FF   int
	DSP  int
	BRAM int
}

// EstimatedFmaxMHz returns the achievable clock implied by the critical
// path (capped at the target clock).
func (r *Report) EstimatedFmaxMHz() float64 {
	cp := r.CriticalPathNs
	if cp < r.ClockNs {
		cp = r.ClockNs // timing met: report the target
	}
	return 1000 / cp
}

// String renders the report like a synthesis log summary.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== Synthesis report: %s (clock %.1f ns) ==\n", r.Top, r.ClockNs)
	fmt.Fprintf(&sb, "Latency: %d cycles\n", r.LatencyCycles)
	fmt.Fprintf(&sb, "Timing: critical path %.2f ns, est. Fmax %.1f MHz\n",
		r.CriticalPathNs, r.EstimatedFmaxMHz())
	fmt.Fprintf(&sb, "Resources: LUT=%d FF=%d DSP=%d BRAM=%d\n", r.LUT, r.FF, r.DSP, r.BRAM)
	for _, l := range r.Loops {
		pipe := "no"
		if l.Pipelined {
			pipe = fmt.Sprintf("yes II=%d", l.II)
		}
		if l.Flattened {
			pipe = fmt.Sprintf("flattened II=%d", l.II)
		}
		est := ""
		if l.TripEstimated {
			est = " (est)"
		}
		fmt.Fprintf(&sb, "  loop %-10s depth=%d trip=%d%s iterLat=%d pipeline=%s latency=%d\n",
			l.Header, l.Depth, l.Trip, est, l.IterLatency, pipe, l.Latency)
	}
	return sb.String()
}

// UnreadableError is returned when the module fails the HLS frontend gate.
type UnreadableError struct {
	Violations []Violation
}

// Error implements the error interface.
func (e *UnreadableError) Error() string {
	var parts []string
	for _, v := range e.Violations {
		parts = append(parts, v.String())
	}
	return fmt.Sprintf("HLS frontend rejected the IR (%d violations):\n  %s",
		len(e.Violations), strings.Join(parts, "\n  "))
}

// Synthesize runs the legality gate and the synthesis estimator on the named
// top function.
func Synthesize(m *llvm.Module, top string, tgt Target) (*Report, error) {
	if vs := Check(m); len(vs) > 0 {
		return nil, &UnreadableError{Violations: vs}
	}
	f := m.FindFunc(top)
	if f == nil {
		return nil, fmt.Errorf("hls: top function @%s not found", top)
	}
	s := &synth{tgt: tgt, f: f}
	return s.run()
}

type synth struct {
	tgt Target
	f   *llvm.Function

	cfg *analysis.CFG
	li  *analysis.LoopInfo

	// portsOf returns the effective port count of an array base (partition
	// directives widen the default dual-port BRAM).
	portsOf func(llvm.Value) int
	// pts disproves load/store dependences at provably disjoint addresses
	// before the recurrence-II search considers them.
	pts *absint.PointsToResult
	// dep refines the recurrence-II search with exact affine
	// distance/direction verdicts wherever both accesses are affine.
	dep *deptest.Engine

	loopLat map[*analysis.Loop]int64
	repOf   map[*analysis.Loop]*LoopReport
	reports []LoopReport

	// Area accumulation.
	lut, ff, dsp int

	// maxChain tracks the longest single-cycle combinational chain seen.
	maxChain float64
}

// sched runs port-aware scheduling and accumulates the critical path.
func (s *synth) sched(instrs []*llvm.Instr) blockSchedule {
	bs := s.tgt.scheduleInstrsPorts(instrs, s.portsOf)
	if bs.MaxChainNs > s.maxChain {
		s.maxChain = bs.MaxChainNs
	}
	return bs
}

func (s *synth) run() (*Report, error) {
	s.cfg = analysis.NewCFG(s.f)
	dt := analysis.NewDomTree(s.cfg)
	s.li = analysis.FindLoops(s.cfg, dt)
	s.loopLat = map[*analysis.Loop]int64{}
	s.repOf = map[*analysis.Loop]*LoopReport{}
	if !s.tgt.DisableAddrFolding {
		s.tgt.addrOnly = computeAddrOnly(s.f)
	}
	s.tgt = s.tgt.ResolveWidths(s.f)

	s.portsOf = s.tgt.PartitionPorts(s.f)
	s.pts = absint.PointsTo(s.f)
	s.dep = deptest.New(s.f, s.li, s.pts.MayAlias)

	// Synthesize loops innermost-first.
	ordered := append([]*analysis.Loop(nil), s.li.Loops...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Depth() > ordered[j].Depth()
	})
	for _, l := range ordered {
		s.synthLoop(l)
	}

	latency := s.functionLatency()
	if s.f.Attrs["hls.dataflow"] != "" {
		if dfLat, ok := s.dataflowLatency(latency); ok {
			latency = dfLat
		}
	}
	rep := &Report{
		Top:            s.f.Name,
		ClockNs:        s.tgt.ClockNs,
		CriticalPathNs: s.maxChain,
		LatencyCycles:  latency,
		Loops:          s.reports,
		LUT:            s.lut,
		FF:             s.ff,
		DSP:            s.dsp,
	}
	s.estimateMemories(rep)
	s.estimateControl(rep)
	sort.SliceStable(rep.Loops, func(i, j int) bool { return rep.Loops[i].Header < rep.Loops[j].Header })
	return rep, nil
}

// dataflowLatency models #pragma HLS dataflow: when every pair of top-level
// loops is independent (no array written by one is touched by another), the
// loops run as concurrent tasks and the function latency becomes the
// non-loop overhead plus the slowest task. Returns ok=false when the
// directive is not legal (dependent tasks), matching the tool behavior of
// silently keeping the sequential schedule.
func (s *synth) dataflowLatency(seqLatency int64) (int64, bool) {
	var tops []*analysis.Loop
	for _, l := range s.li.Loops {
		if l.Parent == nil {
			tops = append(tops, l)
		}
	}
	if len(tops) < 2 {
		return 0, false
	}
	type access struct{ reads, writes map[llvm.Value]bool }
	accOf := func(l *analysis.Loop) access {
		a := access{reads: map[llvm.Value]bool{}, writes: map[llvm.Value]bool{}}
		for b := range l.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case llvm.OpLoad:
					a.reads[baseOf(in.Args[0])] = true
				case llvm.OpStore:
					a.writes[baseOf(in.Args[1])] = true
				}
			}
		}
		return a
	}
	accs := make([]access, len(tops))
	for i, l := range tops {
		accs[i] = accOf(l)
	}
	for i := range tops {
		for j := range tops {
			if i == j {
				continue
			}
			for w := range accs[i].writes {
				if accs[j].reads[w] || accs[j].writes[w] {
					return 0, false // dependent tasks: keep sequential
				}
			}
		}
	}
	var sum, slowest int64
	for _, l := range tops {
		sum += s.loopLat[l]
		if s.loopLat[l] > slowest {
			slowest = s.loopLat[l]
		}
	}
	overhead := seqLatency - sum
	if overhead < 0 {
		overhead = 0
	}
	return overhead + slowest, true
}

// tripOf estimates a loop's trip count.
func (s *synth) tripOf(l *analysis.Loop) (int64, bool) {
	if tc, ok := analysis.TripCount(l); ok {
		return tc, false
	}
	// IV-dependent bound (triangular loop): average half the constant bound
	// if one exists anywhere in the compare.
	for _, in := range l.Header.Instrs {
		if in.Op == llvm.OpICmp {
			if c, ok := in.Args[1].(*llvm.ConstInt); ok && c.Val > 1 {
				return c.Val / 2, true
			}
		}
	}
	return 16, true
}

// iterInstrs returns the instructions of one loop iteration, excluding
// nested loops' bodies (which are collapsed separately).
func (s *synth) iterInstrs(l *analysis.Loop, excludeNested bool) []*llvm.Instr {
	var out []*llvm.Instr
	for _, b := range s.cfg.Order {
		if !l.Contains(b) {
			continue
		}
		if excludeNested && s.inNestedLoop(l, b) {
			continue
		}
		out = append(out, b.Instrs...)
	}
	return out
}

func (s *synth) inNestedLoop(l *analysis.Loop, b *llvm.Block) bool {
	for _, c := range l.Children {
		if c.Contains(b) {
			return true
		}
	}
	return false
}

func (s *synth) synthLoop(l *analysis.Loop) {
	trip, estimated := s.tripOf(l)
	md := l.MD
	pipelined := md != nil && md.Pipeline && l.IsInnermost()

	var iterLat, totalLat int64
	ii := 1
	flattened := false

	// loop_flatten: merge this level into a flattened/pipelined only child
	// when the nest level is perfect — the inner pipeline keeps issuing
	// across outer iterations instead of refilling.
	if !pipelined && md != nil && md.Flatten && len(l.Children) == 1 {
		child := s.repOf[l.Children[0]]
		if child != nil && (child.Pipelined || child.Flattened) &&
			s.perfectNestLevel(l, l.Children[0]) && trip > 0 && child.Trip > 0 {
			flattened = true
			ii = child.II
			iterLat = child.IterLatency
			totalTrip := trip * child.Trip
			totalLat = iterLat + (totalTrip-1)*int64(ii)
			s.loopLat[l] = totalLat
			rep := LoopReport{
				Header: l.Header.Name, Depth: l.Depth(), Trip: totalTrip,
				TripEstimated: estimated || child.TripEstimated,
				Flattened:     true, II: ii, IterLatency: iterLat, Latency: totalLat,
			}
			s.repOf[l] = &rep
			s.reports = append(s.reports, rep)
			return
		}
	}

	if pipelined {
		instrs := s.iterInstrs(l, true)
		sched := s.sched(instrs)
		iterLat = sched.Cycles

		resMII := s.tgt.ResMII(sched.MemAccesses, s.portsOf)
		rec := s.tgt.recMII(s.dep, l, instrs, func(v llvm.Value) bool {
			return dependsOnHeaderPhi(v, l.Header, map[llvm.Value]bool{})
		}, s.pts.MayAlias)
		target := 1
		if md.II > 0 {
			target = md.II
		}
		ii = maxInt(target, maxInt(resMII, rec))
		if trip <= 0 {
			totalLat = 0
		} else {
			totalLat = iterLat + (trip-1)*int64(ii)
		}
		// Pipelined ops replicate: unit count = ops per iteration / II.
		s.accumulateArea(instrs, ii)
	} else {
		iterLat = s.loopBodyLatency(l)
		// Loop control adds one cycle per iteration (exit test).
		iterLat++
		unroll := int64(1)
		if md != nil && md.Unroll > 0 {
			unroll = int64(md.Unroll)
		} else if md != nil && md.Unroll == -1 {
			unroll = trip
			if unroll <= 0 {
				unroll = 1
			}
		}
		if unroll > 1 {
			// Backend unroll (the pragma path): schedule the body replicated
			// unroll times, exactly as materialized unrolling would present
			// it — copies share ports and keep conservative same-array
			// store/load ordering.
			instrs := s.iterInstrs(l, true)
			cloned := s.cloneForUnroll(instrs, int(unroll))
			sched := s.sched(cloned)
			iterLat = sched.Cycles + 1 // loop exit test
			trip = (trip + unroll - 1) / unroll
			s.accumulateArea(cloned, 1) // replicated datapath
		} else {
			instrs := s.iterInstrs(l, true)
			// Shared datapath: units amortized over the iteration.
			s.accumulateAreaShared(instrs)
		}
		if trip <= 0 {
			totalLat = 1
		} else {
			totalLat = trip*iterLat + 1
		}
	}

	s.loopLat[l] = totalLat
	rep := LoopReport{
		Header:        l.Header.Name,
		Depth:         l.Depth(),
		Trip:          trip,
		TripEstimated: estimated,
		Pipelined:     pipelined,
		Flattened:     flattened,
		II:            ii,
		IterLatency:   iterLat,
		Latency:       totalLat,
	}
	s.repOf[l] = &rep
	s.reports = append(s.reports, rep)
}

// perfectNestLevel reports whether l's body consists only of the child loop
// plus loop control (the condition for loop_flatten to apply).
func (s *synth) perfectNestLevel(l, child *analysis.Loop) bool {
	for b := range l.Blocks {
		if child.Contains(b) {
			continue
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case llvm.OpPhi, llvm.OpICmp, llvm.OpBr, llvm.OpCondBr,
				llvm.OpAdd, llvm.OpSub, llvm.OpSExt, llvm.OpZExt, llvm.OpTrunc:
			default:
				return false
			}
		}
	}
	return true
}

// dependsOnHeaderPhi reports whether v's computation reads any phi of the
// given loop header (i.e. varies across iterations).
func dependsOnHeaderPhi(v llvm.Value, header *llvm.Block, seen map[llvm.Value]bool) bool {
	if seen[v] {
		return false
	}
	seen[v] = true
	in, ok := v.(*llvm.Instr)
	if !ok {
		return false
	}
	if in.Op == llvm.OpPhi && in.Parent == header {
		return true
	}
	for _, a := range in.Args {
		if dependsOnHeaderPhi(a, header, seen) {
			return true
		}
	}
	return false
}

// cloneForUnroll replicates an instruction list u times with intra-copy
// value remapping, so the scheduler sees what materialized unrolling would
// produce. Clones inherit the originals' address-only classification.
func (s *synth) cloneForUnroll(instrs []*llvm.Instr, u int) []*llvm.Instr {
	out := make([]*llvm.Instr, 0, len(instrs)*u)
	for c := 0; c < u; c++ {
		vmap := map[llvm.Value]llvm.Value{}
		for _, in := range instrs {
			if in.IsTerminator() || in.Op == llvm.OpPhi {
				continue
			}
			ni := &llvm.Instr{Op: in.Op, Name: fmt.Sprintf("%s.u%d", in.Name, c),
				Ty: in.Ty, Pred: in.Pred, Callee: in.Callee,
				SrcElem: in.SrcElem, Indices: in.Indices, Align: in.Align}
			for _, a := range in.Args {
				if m, ok := vmap[a]; ok {
					ni.Args = append(ni.Args, m)
				} else {
					ni.Args = append(ni.Args, a)
				}
			}
			vmap[in] = ni
			if s.tgt.addrOnly[in] {
				s.tgt.addrOnly[ni] = true
			}
			if w, ok := s.tgt.widths[in]; ok {
				s.tgt.widths[ni] = w
			}
			out = append(out, ni)
		}
	}
	return out
}

// loopBodyLatency computes one iteration's latency as the longest path over
// the loop's collapsed body DAG (nested loops count as single nodes with
// their synthesized latency).
func (s *synth) loopBodyLatency(l *analysis.Loop) int64 {
	return s.longestPath(func(b *llvm.Block) bool { return l.Contains(b) }, l.Children, l.Header, l)
}

// functionLatency is the longest path through the function with top-level
// loops collapsed.
func (s *synth) functionLatency() int64 {
	var tops []*analysis.Loop
	for _, l := range s.li.Loops {
		if l.Parent == nil {
			tops = append(tops, l)
		}
	}
	return s.longestPath(func(b *llvm.Block) bool { return true }, tops, s.f.Entry(), nil)
}

// longestPath computes the longest latency path over the collapsed DAG of
// blocks satisfying in(), with each loop in loops collapsed to one node.
// start is the entry node; self (may be nil) identifies the enclosing loop
// whose back edge is ignored.
func (s *synth) longestPath(in func(*llvm.Block) bool, loops []*analysis.Loop,
	start *llvm.Block, self *analysis.Loop) int64 {

	// node is either a block or a collapsed loop (keyed by header).
	loopOf := map[*llvm.Block]*analysis.Loop{}
	for _, l := range loops {
		for b := range l.Blocks {
			loopOf[b] = l
		}
	}
	type node struct {
		blk  *llvm.Block
		loop *analysis.Loop
	}
	nodeOf := func(b *llvm.Block) node {
		if l, ok := loopOf[b]; ok {
			return node{loop: l}
		}
		return node{blk: b}
	}
	latOf := func(n node) int64 {
		if n.loop != nil {
			return s.loopLat[n.loop]
		}
		sched := s.sched(n.blk.Instrs)
		return maxInt64(sched.Cycles, 1)
	}
	succsOf := func(n node) []node {
		seen := map[node]bool{}
		var out []node
		add := func(b *llvm.Block) {
			if !in(b) {
				return
			}
			if self != nil && b == self.Header {
				return // ignore enclosing back edge
			}
			sn := nodeOf(b)
			if sn == n || seen[sn] {
				return
			}
			seen[sn] = true
			out = append(out, sn)
		}
		if n.loop != nil {
			for b := range n.loop.Blocks {
				for _, sb := range b.Succs() {
					if !n.loop.Contains(sb) {
						add(sb)
					}
				}
			}
		} else {
			for _, sb := range n.blk.Succs() {
				add(sb)
			}
		}
		return out
	}

	memo := map[node]int64{}
	visiting := map[node]bool{}
	var dfs func(n node) int64
	dfs = func(n node) int64 {
		if v, ok := memo[n]; ok {
			return v
		}
		if visiting[n] {
			return 0 // defensive: should not happen on a proper DAG
		}
		visiting[n] = true
		best := int64(0)
		for _, sn := range succsOf(n) {
			if v := dfs(sn); v > best {
				best = v
			}
		}
		visiting[n] = false
		v := latOf(n) + best
		memo[n] = v
		return v
	}
	if start == nil {
		return 0
	}
	return dfs(nodeOf(start))
}

// accumulateArea adds replicated datapath area (pipelined/unrolled regions):
// unit count = ops of a kind divided by the initiation interval.
func (s *synth) accumulateArea(instrs []*llvm.Instr, ii int) {
	counts := map[llvm.Opcode]int{}
	costs := map[llvm.Opcode]OpCost{}
	for _, in := range instrs {
		c := s.tgt.CostOf(in)
		if c.DSP == 0 && c.LUT == 0 && c.FF == 0 {
			continue
		}
		counts[opKey(in)]++
		costs[opKey(in)] = c
	}
	for k, n := range counts {
		units := (n + ii - 1) / ii
		c := costs[k]
		s.dsp += units * c.DSP
		s.lut += units * c.LUT
		s.ff += units * c.FF
	}
}

// accumulateAreaShared adds shared-datapath area: one unit per operator
// kind present (the default sharing HLS applies outside pipelined regions).
func (s *synth) accumulateAreaShared(instrs []*llvm.Instr) {
	seen := map[llvm.Opcode]OpCost{}
	for _, in := range instrs {
		c := s.tgt.CostOf(in)
		if c.DSP == 0 && c.LUT == 0 && c.FF == 0 {
			continue
		}
		if old, ok := seen[opKey(in)]; !ok || c.DSP > old.DSP {
			seen[opKey(in)] = c
		}
	}
	for _, c := range seen {
		s.dsp += c.DSP
		s.lut += c.LUT
		s.ff += c.FF
	}
}

func opKey(in *llvm.Instr) llvm.Opcode {
	if in.Op == llvm.OpCall {
		return llvm.Opcode("call." + in.Callee)
	}
	if in.Ty != nil && in.Ty.Kind == llvm.KindDouble {
		return in.Op + ".d"
	}
	return in.Op
}

// estimateMemories sizes BRAM for array ports and local allocas, applying
// partition directives.
func (s *synth) estimateMemories(rep *Report) {
	addArray := func(argIdx int, ty *llvm.Type) {
		bits := ty.SizeBytes() * 8
		spec := ""
		if argIdx >= 0 {
			spec = s.f.Attrs[fmt.Sprintf("hls.array_partition.arg%d", argIdx)]
		}
		kind, factor := parsePartition(spec)
		switch kind {
		case "complete":
			// Fully partitioned into registers.
			rep.FF += int(bits)
			rep.LUT += int(bits / 2)
		case "cyclic", "block":
			if factor < 1 {
				factor = 1
			}
			per := (bits + int64(factor) - 1) / int64(factor)
			banks := factor * int((per+s.tgt.BRAMBits-1)/s.tgt.BRAMBits)
			rep.BRAM += banks
		default:
			if bits <= 1024 {
				rep.LUT += int(bits / 2) // LUTRAM
			} else {
				rep.BRAM += int((bits + s.tgt.BRAMBits - 1) / s.tgt.BRAMBits)
			}
		}
	}
	for i, p := range s.f.Params {
		if p.Ty.IsPtr() && p.Ty.Elem != nil && p.Ty.Elem.IsArray() {
			addArray(i, p.Ty.Elem)
		}
	}
	for _, b := range s.f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpAlloca && in.SrcElem.IsArray() {
				addArray(-1, in.SrcElem)
			}
		}
	}
}

// estimateControl adds FSM and loop-control overhead.
func (s *synth) estimateControl(rep *Report) {
	rep.LUT += 50 * len(s.f.Blocks)
	rep.FF += 80 * len(s.f.Blocks)
	rep.LUT += 100 * len(s.li.Loops)
	rep.FF += 64 * len(s.li.Loops)
}

// parsePartition decodes "cyclic,2,0" into kind and factor.
func parsePartition(s string) (string, int) {
	if s == "" {
		return "", 0
	}
	parts := strings.Split(s, ",")
	kind := parts[0]
	factor := 0
	if len(parts) > 1 {
		factor, _ = strconv.Atoi(parts[1])
	}
	return kind, factor
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

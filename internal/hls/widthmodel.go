package hls

import (
	"repro/internal/bitwidth"
	"repro/internal/llvm"
)

// Width-exact operator costing: under Target.CostModel == CostInferred the
// integer datapath is priced at the widths the bitwidth analysis proves
// sufficient instead of the declared type widths. The formulas are tuned so
// that an operator at its full declared width (32-bit ops, i1 compares)
// prices exactly as the declared model does — the inferred model only ever
// moves costs by narrowing.

// WithInferredWidths returns a copy of the target carrying an explicit
// per-instruction width map (as produced by bitwidth.OpWidths).
func (t Target) WithInferredWidths(w map[*llvm.Instr]int) Target {
	t.widths = w
	return t
}

// ResolveWidths runs the bitwidth analysis over f and attaches the inferred
// operator widths to the target. A no-op under the declared model, so
// callers can invoke it unconditionally.
func (t Target) ResolveWidths(f *llvm.Function) Target {
	if t.CostModel != CostInferred {
		return t
	}
	merged := map[*llvm.Instr]int{}
	for k, v := range t.widths {
		merged[k] = v
	}
	for k, v := range bitwidth.OpWidths(f) {
		merged[k] = v
	}
	t.widths = merged
	return t
}

// opWidth returns the effective width of in: the inferred width when one was
// resolved, else the declared width (operand width for comparisons — the
// comparator's size, not its i1 result).
func (t Target) opWidth(in *llvm.Instr) int {
	if w, ok := t.widths[in]; ok && w > 0 {
		return w
	}
	if in.Op == llvm.OpICmp && len(in.Args) > 0 {
		return intWidthLUT(in.Args[0].Type())
	}
	return intWidthLUT(in.Ty)
}

// inferredCostOf prices the integer ops the width analysis can narrow;
// ok=false defers every other opcode to the declared model.
func (t Target) inferredCostOf(in *llvm.Instr) (OpCost, bool) {
	switch in.Op {
	case llvm.OpAdd, llvm.OpSub, llvm.OpMul,
		llvm.OpAnd, llvm.OpOr, llvm.OpXor,
		llvm.OpShl, llvm.OpLShr, llvm.OpAShr,
		llvm.OpICmp, llvm.OpSelect:
	default:
		return OpCost{}, false
	}
	if in.Ty != nil && !in.Ty.IsInt() {
		return OpCost{}, false // float selects etc. keep declared pricing
	}
	w := lutWidth(t.opWidth(in))
	if t.addrOnly[in] {
		// Folded into address generation: LUT-only, but still width-priced.
		return OpCost{Latency: 0, Delay: 1.8, LUT: w}, true
	}
	switch in.Op {
	case llvm.OpAdd, llvm.OpSub:
		// Carry chain: delay grows with width; 32 bits reproduces 1.8ns.
		return OpCost{Delay: 0.9 + 0.028125*float64(w), LUT: w}, true
	case llvm.OpAnd, llvm.OpOr, llvm.OpXor, llvm.OpShl, llvm.OpLShr, llvm.OpAShr:
		// Bitwise/shift network: 32 bits reproduces 0.9ns.
		return OpCost{Delay: 0.45 + 0.0140625*float64(w), LUT: w}, true
	case llvm.OpMul:
		// DSP-tier model: narrow products fit LUT fabric, mid widths take
		// one to three DSP slices, and only >32 bits needs the 8-DSP
		// compose. The 26..32 tier matches the declared 32-bit cost.
		switch {
		case w <= 10:
			return OpCost{Latency: 1, Delay: 3.5, LUT: w * w, FF: 2 * w}, true
		case w <= 18:
			return OpCost{Latency: 2, Delay: 4.0, DSP: 1, LUT: 50, FF: 100}, true
		case w <= 25:
			return OpCost{Latency: 2, Delay: 4.0, DSP: 2, LUT: 80, FF: 150}, true
		case w <= 32:
			return OpCost{Latency: 2, Delay: 4.0, DSP: 3, LUT: 100, FF: 200}, true
		}
		return OpCost{Latency: 3, Delay: 4.5, DSP: 8, LUT: 200, FF: 400}, true
	case llvm.OpICmp:
		// Comparator tree over the operand width; 32 bits reproduces the
		// declared 1.5ns / 40 LUT.
		return OpCost{Delay: 0.9 + 0.01875*float64(w), LUT: w + 8}, true
	case llvm.OpSelect:
		// One mux bit per data bit; 32 bits reproduces 35 LUT.
		return OpCost{Delay: 1.2, LUT: w + 3}, true
	}
	return OpCost{}, false
}

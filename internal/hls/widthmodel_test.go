package hls

import (
	"strings"
	"testing"

	"repro/internal/llvm"
)

// TestLutWidth pins the width-grid rounding, including the edge cases that
// used to leak through raw type bits (i1 and non-power-of-two widths).
func TestLutWidth(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 32}, {0, 32}, // unknown widths price as the 32-bit default
		{1, 1},                         // a lone flag bit stays one LUT
		{2, 2}, {3, 4}, {5, 6}, {7, 8}, // odd widths round up to even
		{8, 8}, {9, 10}, {31, 32}, {32, 32},
		{33, 34}, {63, 64}, {64, 64},
		{65, 64}, {128, 64}, // clamp at the 64-bit datapath
	}
	for _, c := range cases {
		if got := lutWidth(c.in); got != c.want {
			t.Errorf("lutWidth(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// The declared-model widths present in the kernels are fixed points.
	for _, w := range []int{1, 8, 32, 64} {
		if got := lutWidth(w); got != w {
			t.Errorf("lutWidth(%d) = %d, must be a fixed point", w, got)
		}
	}
}

// TestCanonCostModel keeps the declared-model cache key byte-identical to
// the historical form and gives the inferred model its own key.
func TestCanonCostModel(t *testing.T) {
	tgt := DefaultTarget()
	if got := tgt.Canon(); strings.Contains(got, "costmodel") {
		t.Errorf("declared Canon %q must not mention costmodel", got)
	}
	tgt.CostModel = CostInferred
	if got := tgt.Canon(); !strings.HasSuffix(got, "|costmodel=inferred") {
		t.Errorf("inferred Canon %q must end with |costmodel=inferred", got)
	}
}

// TestInferredCostCoincidesAtDeclaredWidth: with no width map resolved, the
// inferred formulas reproduce the declared costs for the kernel-typical
// 32-bit operators — the models only diverge when the analysis narrows.
func TestInferredCostCoincidesAtDeclaredWidth(t *testing.T) {
	i32 := llvm.I32()
	decl := DefaultTarget()
	inf := DefaultTarget()
	inf.CostModel = CostInferred
	x := llvm.CI(i32, 1)
	ops := []*llvm.Instr{
		{Op: llvm.OpAdd, Ty: i32, Args: []llvm.Value{x, x}},
		{Op: llvm.OpSub, Ty: i32, Args: []llvm.Value{x, x}},
		{Op: llvm.OpMul, Ty: i32, Args: []llvm.Value{x, x}},
		{Op: llvm.OpAnd, Ty: i32, Args: []llvm.Value{x, x}},
		{Op: llvm.OpXor, Ty: i32, Args: []llvm.Value{x, x}},
		{Op: llvm.OpShl, Ty: i32, Args: []llvm.Value{x, x}},
		{Op: llvm.OpICmp, Ty: llvm.IntT(1), Pred: "slt", Args: []llvm.Value{x, x}},
		{Op: llvm.OpSelect, Ty: i32, Args: []llvm.Value{x, x, x}},
	}
	for _, in := range ops {
		d, i := decl.CostOf(in), inf.CostOf(in)
		if d != i {
			t.Errorf("%s at declared width: declared %+v != inferred %+v", in.Op, d, i)
		}
	}
}

// TestInferredCostNarrows: an explicit width map shrinks LUT/DSP/delay, and
// the declared model ignores it entirely.
func TestInferredCostNarrows(t *testing.T) {
	i32 := llvm.I32()
	x := llvm.CI(i32, 1)
	add := &llvm.Instr{Op: llvm.OpAdd, Ty: i32, Args: []llvm.Value{x, x}}
	mul := &llvm.Instr{Op: llvm.OpMul, Ty: i32, Args: []llvm.Value{x, x}}
	widths := map[*llvm.Instr]int{add: 8, mul: 9}

	decl := DefaultTarget().WithInferredWidths(widths)
	if got := decl.CostOf(add); got.LUT != 32 {
		t.Errorf("declared model consulted the width map: add LUT %d, want 32", got.LUT)
	}

	inf := DefaultTarget().WithInferredWidths(widths)
	inf.CostModel = CostInferred
	addC := inf.CostOf(add)
	if addC.LUT != 8 {
		t.Errorf("narrowed add LUT = %d, want 8", addC.LUT)
	}
	if full := DefaultTarget().CostOf(add); addC.Delay >= full.Delay {
		t.Errorf("narrowed add delay %.3f not below full-width %.3f", addC.Delay, full.Delay)
	}
	mulC := inf.CostOf(mul)
	if mulC.DSP != 0 {
		t.Errorf("10-bit-tier mul DSP = %d, want 0 (LUT fabric)", mulC.DSP)
	}
	if mulC.LUT != 100 { // lutWidth(9) = 10, 10*10
		t.Errorf("narrow mul LUT = %d, want 100", mulC.LUT)
	}
}

package hls

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/llvm"
	"repro/internal/mlir"
	"repro/internal/mlir/lower"
	"repro/internal/mlir/passes"
	"repro/internal/translate"
)

func buildGemm(n int64) *mlir.Module {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{n, n}, mlir.F32())
	_, args := m.AddFunc("gemm", []*mlir.Type{ty, ty, ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("gemm")))
	b.AffineForConst(0, n, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineForConst(0, n, 1, func(b *mlir.Builder, j *mlir.Value) {
			b.AffineForConst(0, n, 1, func(b *mlir.Builder, k *mlir.Value) {
				a := b.AffineLoad(args[0], i, k)
				x := b.AffineLoad(args[1], k, j)
				c := b.AffineLoad(args[2], i, j)
				s := b.AddF(c, b.MulF(a, x))
				b.AffineStore(s, args[2], i, j)
			})
		})
	})
	b.Return()
	return m
}

// pipeline runs the full adaptor flow on a module with optional passes.
func pipeline(t *testing.T, m *mlir.Module, ps ...passes.Pass) *llvm.Module {
	t.Helper()
	pm := passes.NewPassManager().Add(ps...)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.AffineToSCF(m); err != nil {
		t.Fatal(err)
	}
	if err := lower.SCFToCF(m); err != nil {
		t.Fatal(err)
	}
	lm, err := translate.Translate(m, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return lm
}

func adapted(t *testing.T, m *mlir.Module, ps ...passes.Pass) *llvm.Module {
	t.Helper()
	lm := pipeline(t, m, ps...)
	if _, err := core.Adapt(lm, core.Options{}); err != nil {
		t.Fatal(err)
	}
	return lm
}

func TestCheckRejectsRawTranslatedIR(t *testing.T) {
	lm := pipeline(t, buildGemm(8))
	vs := Check(lm)
	if len(vs) == 0 {
		t.Fatal("raw mlir-translate output must be rejected by the HLS gate")
	}
	kinds := map[string]bool{}
	for _, v := range vs {
		kinds[v.Kind] = true
	}
	if !kinds[VOpaque] {
		t.Error("missing opaque-pointer violation")
	}
	if !kinds[VDescriptor] {
		t.Error("missing descriptor-abi violation")
	}
	// Synthesize must fail with an UnreadableError.
	if _, err := Synthesize(lm, "gemm", DefaultTarget()); err == nil {
		t.Fatal("Synthesize should reject raw IR")
	} else if _, ok := err.(*UnreadableError); !ok {
		t.Fatalf("want UnreadableError, got %v", err)
	}
}

func TestCheckAcceptsAdaptedIR(t *testing.T) {
	lm := adapted(t, buildGemm(8), passes.MarkTop("gemm"))
	if vs := Check(lm); len(vs) != 0 {
		t.Fatalf("adapted IR must pass the gate, got: %v", vs)
	}
}

func TestSynthesizeGemmBaseline(t *testing.T) {
	lm := adapted(t, buildGemm(8), passes.MarkTop("gemm"))
	rep, err := Synthesize(lm, "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 3 {
		t.Fatalf("want 3 loops, got %d: %s", len(rep.Loops), rep)
	}
	if rep.LatencyCycles <= 8*8*8 {
		t.Errorf("latency %d implausibly small for 512 iterations", rep.LatencyCycles)
	}
	if rep.BRAM == 0 {
		t.Error("8x8 f32 arrays should consume BRAM or the model is off")
	}
	if rep.DSP == 0 {
		t.Error("fmul should consume DSPs")
	}
	for _, l := range rep.Loops {
		if l.Pipelined {
			t.Error("no loop should be pipelined without the directive")
		}
		if l.Trip != 8 {
			t.Errorf("loop %s trip = %d, want 8", l.Header, l.Trip)
		}
		if l.TripEstimated {
			t.Errorf("loop %s trip should be exact", l.Header)
		}
	}
}

func TestPipeliningReducesLatency(t *testing.T) {
	base, err := Synthesize(adapted(t, buildGemm(8), passes.MarkTop("gemm")), "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Synthesize(adapted(t, buildGemm(8), passes.MarkTop("gemm"),
		passes.PipelineInnermost(1)), "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if piped.LatencyCycles >= base.LatencyCycles {
		t.Errorf("pipelining should reduce latency: %d -> %d",
			base.LatencyCycles, piped.LatencyCycles)
	}
	// The accumulation recurrence on C[i][j] must keep II above 1.
	var inner *LoopReport
	for i := range piped.Loops {
		if piped.Loops[i].Pipelined {
			inner = &piped.Loops[i]
		}
	}
	if inner == nil {
		t.Fatal("no pipelined loop in report")
	}
	if inner.II <= 1 {
		t.Errorf("gemm k-loop II should exceed 1 (load-add-store recurrence), got %d", inner.II)
	}
}

func TestPartitionRaisesPortsAndBRAM(t *testing.T) {
	mk := func(ps ...passes.Pass) *Report {
		rep, err := Synthesize(adapted(t, buildGemm(8), ps...), "gemm", DefaultTarget())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := mk(passes.MarkTop("gemm"), passes.PipelineInnermost(1))
	part := mk(passes.MarkTop("gemm"), passes.PipelineInnermost(1),
		passes.PartitionAllArgs(passes.PartitionSpec{Kind: "cyclic", Factor: 4, Dim: 0}))
	if part.BRAM <= plain.BRAM {
		t.Errorf("cyclic partitioning should increase BRAM banks: %d -> %d",
			plain.BRAM, part.BRAM)
	}
	if part.LatencyCycles > plain.LatencyCycles {
		t.Errorf("partitioning should not slow the design: %d -> %d",
			plain.LatencyCycles, part.LatencyCycles)
	}
}

func TestUnrollMetadataSpeedsLoop(t *testing.T) {
	// Unroll via backend metadata (the C++-flow path where the pragma is
	// consumed by the tool): compare trip/latency.
	base, err := Synthesize(adapted(t, buildGemm(8), passes.MarkTop("gemm")), "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := Synthesize(adapted(t, buildGemm(8), passes.MarkTop("gemm"),
		passes.MarkUnroll(4)), "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if unrolled.LatencyCycles >= base.LatencyCycles {
		t.Errorf("unroll should reduce latency: %d -> %d",
			base.LatencyCycles, unrolled.LatencyCycles)
	}
}

func TestTriangularLoopTripEstimated(t *testing.T) {
	m := mlir.NewModule()
	ty := mlir.MemRef([]int64{8, 8}, mlir.F32())
	_, args := m.AddFunc("tri", []*mlir.Type{ty}, nil)
	b := mlir.NewBuilder(mlir.FuncBody(m.FindFunc("tri")))
	b.AffineForConst(0, 8, 1, func(b *mlir.Builder, i *mlir.Value) {
		b.AffineFor(mlir.NewMap(1, 0, mlir.Dim(0)), []*mlir.Value{i},
			mlir.ConstantMap(8), nil, 1, func(b *mlir.Builder, j *mlir.Value) {
				v := b.AffineLoad(args[0], i, j)
				b.AffineStore(v, args[0], j, i)
			})
	})
	b.Return()
	rep, err := Synthesize(adapted(t, m, passes.MarkTop("tri")), "tri", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	est := 0
	for _, l := range rep.Loops {
		if l.TripEstimated {
			est++
		}
	}
	if est != 1 {
		t.Errorf("triangular inner loop should have estimated trip, got %d estimated", est)
	}
}

func TestReportString(t *testing.T) {
	rep, err := Synthesize(adapted(t, buildGemm(4), passes.MarkTop("gemm"),
		passes.PipelineInnermost(1)), "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"Latency:", "Resources:", "pipeline=yes"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestLatencyScalesWithProblemSize(t *testing.T) {
	small, err := Synthesize(adapted(t, buildGemm(4), passes.MarkTop("gemm")), "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	big, err := Synthesize(adapted(t, buildGemm(8), passes.MarkTop("gemm")), "gemm", DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.LatencyCycles) / float64(small.LatencyCycles)
	if ratio < 6 || ratio > 10 {
		t.Errorf("8^3/4^3 = 8x work should give ~8x latency, got %.2fx (%d vs %d)",
			ratio, big.LatencyCycles, small.LatencyCycles)
	}
}

func TestUnreadableErrorMessage(t *testing.T) {
	lm := pipeline(t, buildGemm(4))
	_, err := Synthesize(lm, "gemm", DefaultTarget())
	ue, ok := err.(*UnreadableError)
	if !ok {
		t.Fatal("expected UnreadableError")
	}
	if !strings.Contains(ue.Error(), "rejected") {
		t.Errorf("unhelpful error: %v", ue)
	}
	if len(ue.Violations) == 0 {
		t.Error("violations missing")
	}
}

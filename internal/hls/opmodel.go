package hls

import (
	"fmt"
	"strings"

	"repro/internal/llvm"
)

// OpCost describes one operator's timing and area in the target device
// model (7-series-like, default 10ns clock).
type OpCost struct {
	// Latency is the pipeline depth in cycles (0 = combinational).
	Latency int
	// Delay is the combinational delay in ns (per stage for multi-cycle).
	Delay float64
	// DSP, LUT, FF are the area costs of one operator instance.
	DSP int
	LUT int
	FF  int
}

// Target models the device and clock.
type Target struct {
	// ClockNs is the target clock period in ns.
	ClockNs float64
	// BRAMBits is the capacity of one BRAM bank (18Kb).
	BRAMBits int64
	// MemPorts is the number of same-array accesses per cycle (dual-port).
	MemPorts int
	// MemReadLatency is the BRAM read latency in cycles.
	MemReadLatency int

	// DisableAddrFolding turns off the address-generation cost model that
	// treats index arithmetic as free-ish AGU logic. With it disabled,
	// index muls/adds are costed like datapath operators — the ablation
	// showing why an HLS cost model must fold address math (the direct-IR
	// flow would otherwise be unfairly penalized for its explicit
	// linearized addressing).
	DisableAddrFolding bool

	// CostModel selects how operator widths are chosen: CostDeclared (the
	// zero value) takes them from declared types, CostInferred from the
	// bitwidth analysis (see ResolveWidths).
	CostModel CostModel

	// addrOnly marks instructions that only feed address or loop-control
	// computations; the address generation units absorb them (set by the
	// synthesizer, nil outside a synthesis run).
	addrOnly map[*llvm.Instr]bool

	// widths holds per-instruction inferred operator widths, consulted only
	// under CostInferred (set by ResolveWidths / WithInferredWidths).
	widths map[*llvm.Instr]int
}

// CostModel names a width source for the operator cost model.
type CostModel string

const (
	// CostDeclared prices operators at their declared type widths.
	CostDeclared CostModel = ""
	// CostInferred prices operators at bitwidth-analysis widths.
	CostInferred CostModel = "inferred"
)

// Canon renders the target's cost-model parameters in a canonical form,
// the shared currency of the engine's whole-flow cache key and the
// incremental layer's synthesis-unit key.
func (t Target) Canon() string {
	s := fmt.Sprintf("clock=%g|brambits=%d|memports=%d|memlat=%d|noaddrfold=%t",
		t.ClockNs, t.BRAMBits, t.MemPorts, t.MemReadLatency, t.DisableAddrFolding)
	// The declared model keeps the historical key byte-for-byte so caches
	// and goldens survive; only the inferred model tags itself.
	if t.CostModel != CostDeclared {
		s += "|costmodel=" + string(t.CostModel)
	}
	return s
}

// DefaultTarget returns the default 100 MHz dual-port-BRAM target.
func DefaultTarget() Target {
	return Target{ClockNs: 10, BRAMBits: 18 * 1024, MemPorts: 2, MemReadLatency: 2}
}

// CostOf returns the operator cost for an instruction under the target.
func (t Target) CostOf(in *llvm.Instr) OpCost {
	if t.CostModel == CostInferred {
		if c, ok := t.inferredCostOf(in); ok {
			return c
		}
	}
	if t.addrOnly[in] {
		// Folded into address generation / loop control: combinational,
		// LUT-only, regardless of the nominal operator cost.
		return OpCost{Latency: 0, Delay: 1.8, LUT: intWidthLUT(in.Ty)}
	}
	isDouble := in.Ty != nil && in.Ty.Kind == llvm.KindDouble
	switch in.Op {
	case llvm.OpFAdd, llvm.OpFSub:
		if isDouble {
			return OpCost{Latency: 7, Delay: 4.3, DSP: 3, LUT: 800, FF: 1200}
		}
		return OpCost{Latency: 4, Delay: 4.0, DSP: 2, LUT: 400, FF: 600}
	case llvm.OpFMul:
		if isDouble {
			return OpCost{Latency: 6, Delay: 4.5, DSP: 11, LUT: 300, FF: 600}
		}
		return OpCost{Latency: 3, Delay: 4.2, DSP: 3, LUT: 150, FF: 300}
	case llvm.OpFDiv:
		if isDouble {
			return OpCost{Latency: 29, Delay: 5.0, DSP: 0, LUT: 3200, FF: 6000}
		}
		return OpCost{Latency: 12, Delay: 5.0, DSP: 0, LUT: 800, FF: 1500}
	case llvm.OpFNeg:
		return OpCost{Latency: 0, Delay: 0.8, LUT: 30, FF: 0}
	case llvm.OpAdd, llvm.OpSub:
		return OpCost{Latency: 0, Delay: 1.8, LUT: intWidthLUT(in.Ty), FF: 0}
	case llvm.OpMul:
		w := 32
		if in.Ty != nil {
			w = in.Ty.Bits
		}
		if w > 32 {
			return OpCost{Latency: 3, Delay: 4.5, DSP: 8, LUT: 200, FF: 400}
		}
		return OpCost{Latency: 2, Delay: 4.0, DSP: 3, LUT: 100, FF: 200}
	case llvm.OpSDiv, llvm.OpSRem:
		return OpCost{Latency: 35, Delay: 5.0, LUT: 1800, FF: 3500}
	case llvm.OpAnd, llvm.OpOr, llvm.OpXor, llvm.OpShl, llvm.OpLShr, llvm.OpAShr:
		return OpCost{Latency: 0, Delay: 0.9, LUT: intWidthLUT(in.Ty)}
	case llvm.OpICmp:
		return OpCost{Latency: 0, Delay: 1.5, LUT: 40}
	case llvm.OpFCmp:
		if in.Args[0].Type().Kind == llvm.KindDouble {
			return OpCost{Latency: 1, Delay: 3.0, LUT: 120, FF: 100}
		}
		return OpCost{Latency: 1, Delay: 3.0, LUT: 70, FF: 60}
	case llvm.OpSelect:
		return OpCost{Latency: 0, Delay: 1.2, LUT: 35}
	case llvm.OpZExt, llvm.OpSExt, llvm.OpTrunc, llvm.OpBitcast,
		llvm.OpPtrToInt, llvm.OpIntToPtr:
		return OpCost{Latency: 0, Delay: 0.0}
	case llvm.OpSIToFP, llvm.OpFPToSI:
		return OpCost{Latency: 3, Delay: 4.0, LUT: 250, FF: 300}
	case llvm.OpFPExt, llvm.OpFPTrunc:
		return OpCost{Latency: 1, Delay: 2.0, LUT: 100, FF: 80}
	case llvm.OpLoad:
		return OpCost{Latency: t.MemReadLatency, Delay: 2.5}
	case llvm.OpStore:
		return OpCost{Latency: 1, Delay: 2.0}
	case llvm.OpGEP:
		// Address computation (adders folded into the port).
		return OpCost{Latency: 0, Delay: 1.5, LUT: 50}
	case llvm.OpCall:
		return t.callCost(in)
	case llvm.OpPhi, llvm.OpBr, llvm.OpCondBr, llvm.OpRet, llvm.OpAlloca,
		llvm.OpUnreachable, llvm.OpExtractValue, llvm.OpInsertValue:
		return OpCost{Latency: 0, Delay: 0}
	}
	return OpCost{Latency: 1, Delay: 3.0, LUT: 100}
}

func (t Target) callCost(in *llvm.Instr) OpCost {
	name := in.Callee
	switch {
	case strings.HasPrefix(name, "sqrt") || strings.HasPrefix(name, "llvm.sqrt"):
		if strings.HasSuffix(name, "f64") || name == "sqrt" {
			return OpCost{Latency: 28, Delay: 5.0, LUT: 3000, FF: 5600}
		}
		return OpCost{Latency: 16, Delay: 5.0, LUT: 800, FF: 1500}
	case strings.HasPrefix(name, "exp") || strings.HasPrefix(name, "llvm.exp"):
		return OpCost{Latency: 20, Delay: 5.0, DSP: 7, LUT: 1500, FF: 2500}
	case strings.HasPrefix(name, "llvm.fmuladd"):
		return OpCost{Latency: 7, Delay: 4.5, DSP: 5, LUT: 500, FF: 900}
	}
	// Sub-function call: scheduled separately; placeholder cost.
	return OpCost{Latency: 1, Delay: 2.0}
}

func intWidthLUT(t *llvm.Type) int {
	if t == nil || !t.IsInt() {
		return 32
	}
	return lutWidth(t.Bits)
}

// lutWidth snaps a width onto the deterministic LUT-costing grid: unknown or
// nonpositive widths price as 32, a single bit stays 1, anything else rounds
// up to the next even width and clamps at 64. The kernel-relevant widths
// (1, 8, 32, 64) are fixed points, so declared-model costs are unchanged.
func lutWidth(w int) int {
	switch {
	case w <= 0:
		return 32
	case w == 1:
		return 1
	case w >= 64:
		return 64
	}
	return (w + 1) &^ 1
}

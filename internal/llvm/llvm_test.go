package llvm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeStrings(t *testing.T) {
	cases := []struct {
		ty     *Type
		opaque string
		typed  string
	}{
		{Void(), "void", "void"},
		{I1(), "i1", "i1"},
		{I32(), "i32", "i32"},
		{I64(), "i64", "i64"},
		{FloatT(), "float", "float"},
		{DoubleT(), "double", "double"},
		{Ptr(FloatT()), "ptr", "float*"},
		{Ptr(nil), "ptr", "ptr"},
		{ArrayOf(8, DoubleT()), "[8 x double]", "[8 x double]"},
		{Ptr(ArrayOf(4, FloatT())), "ptr", "[4 x float]*"},
		{StructOf(I64(), Ptr(FloatT())), "{ i64, ptr }", "{ i64, float* }"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.opaque {
			t.Errorf("String() = %q, want %q", got, c.opaque)
		}
		if got := c.ty.TypedString(); got != c.typed {
			t.Errorf("TypedString() = %q, want %q", got, c.typed)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int64
	}{
		{I1(), 1}, {I8(), 1}, {I32(), 4}, {I64(), 8},
		{FloatT(), 4}, {DoubleT(), 8}, {Ptr(nil), 8},
		{ArrayOf(10, FloatT()), 40},
		{ArrayOf(2, ArrayOf(3, DoubleT())), 48},
		{StructOf(I32(), DoubleT()), 12},
	}
	for _, c := range cases {
		if got := c.ty.SizeBytes(); got != c.size {
			t.Errorf("%s SizeBytes = %d, want %d", c.ty, got, c.size)
		}
	}
}

func TestTypeEqualityOpaquePointers(t *testing.T) {
	// Pointers compare equal regardless of pointee (opaque semantics).
	if !Ptr(FloatT()).Equal(Ptr(DoubleT())) {
		t.Error("pointers should compare equal regardless of pointee")
	}
	if ArrayOf(4, FloatT()).Equal(ArrayOf(5, FloatT())) {
		t.Error("different array lengths should differ")
	}
	if ArrayOf(4, FloatT()).Equal(ArrayOf(4, DoubleT())) {
		t.Error("different element types should differ")
	}
	if !StructOf(I32()).Equal(StructOf(I32())) {
		t.Error("identical structs should be equal")
	}
	if I32().Equal(nil) {
		t.Error("type should not equal nil")
	}
}

func TestIntTypeInterningQuick(t *testing.T) {
	f := func(w uint8) bool {
		width := int(w%64) + 1
		return IntT(width).Equal(IntT(width)) && IntT(width).Bits == width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstIdent(t *testing.T) {
	if CI(I1(), 1).Ident() != "true" || CI(I1(), 0).Ident() != "false" {
		t.Error("i1 constants should print true/false")
	}
	if CI(I32(), -7).Ident() != "-7" {
		t.Error("negative int constant")
	}
	if (&Undef{Ty: I32()}).Ident() != "undef" {
		t.Error("undef ident")
	}
	if got := CF(DoubleT(), 1.5).Ident(); got != "1.5e+00" {
		t.Errorf("float ident = %q", got)
	}
}

// buildLoop constructs a canonical counted loop function.
func buildLoop(t *testing.T) (*Module, *Function) {
	t.Helper()
	m := NewModule("t")
	arr := ArrayOf(16, FloatT())
	f := NewFunction("k", Void(), &Param{Name: "x", Ty: Ptr(arr)})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	header := f.AddBlock("header")
	body := f.AddBlock("body")
	exit := f.AddBlock("exit")
	b := NewBuilder(f)
	b.SetBlock(entry)
	b.Br(header)
	b.SetBlock(header)
	iv := b.Phi(I64())
	cond := b.ICmp("slt", iv, CI(I64(), 16))
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	p := b.GEP(arr, f.Params[0], CI(I64(), 0), iv)
	v := b.Load(FloatT(), p)
	s := b.FAdd(v, CF(FloatT(), 1))
	b.Store(s, p)
	next := b.Add(iv, CI(I64(), 1))
	latch := b.Br(header)
	latch.Loop = &LoopMD{Pipeline: true, II: 1}
	b.SetBlock(exit)
	b.Ret(nil)
	iv.AddIncoming(CI(I64(), 0), entry)
	iv.AddIncoming(next, body)
	return m, f
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	m, _ := buildLoop(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("well-formed module rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	t.Run("missing terminator", func(t *testing.T) {
		m := NewModule("x")
		f := NewFunction("f", Void())
		m.AddFunc(f)
		f.AddBlock("entry") // empty, no terminator
		if err := m.Verify(); err == nil {
			t.Error("should reject block without terminator")
		}
	})
	t.Run("phi pred mismatch", func(t *testing.T) {
		m, f := buildLoop(t)
		// Remove one incoming edge from the phi.
		phi := f.FindBlock("header").Instrs[0]
		phi.Args = phi.Args[:1]
		phi.Blocks = phi.Blocks[:1]
		if err := m.Verify(); err == nil {
			t.Error("should reject phi with missing incoming")
		}
	})
	t.Run("type mismatch", func(t *testing.T) {
		m := NewModule("x")
		f := NewFunction("f", Void())
		m.AddFunc(f)
		blk := f.AddBlock("entry")
		b := NewBuilder(f)
		b.SetBlock(blk)
		bad := &Instr{Op: OpFAdd, Name: "bad", Ty: FloatT(),
			Args: []Value{CF(FloatT(), 1), CF(DoubleT(), 1)}}
		blk.Append(bad)
		b.Ret(nil)
		if err := m.Verify(); err == nil {
			t.Error("should reject fadd float/double mix")
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		m := NewModule("x")
		f := NewFunction("f", Void())
		m.AddFunc(f)
		blk := f.AddBlock("entry")
		a := &Instr{Op: OpAdd, Name: "dup", Ty: I32(), Args: []Value{CI(I32(), 1), CI(I32(), 2)}}
		c := &Instr{Op: OpAdd, Name: "dup", Ty: I32(), Args: []Value{CI(I32(), 1), CI(I32(), 2)}}
		blk.Append(a)
		blk.Append(c)
		blk.Append(&Instr{Op: OpRet})
		if err := m.Verify(); err == nil {
			t.Error("should reject duplicate SSA names")
		}
	})
	t.Run("non-i1 branch", func(t *testing.T) {
		m := NewModule("x")
		f := NewFunction("f", Void())
		m.AddFunc(f)
		e := f.AddBlock("entry")
		x := f.AddBlock("x")
		cbr := &Instr{Op: OpCondBr, Args: []Value{CI(I32(), 1)}, Blocks: []*Block{x, x}}
		e.Append(cbr)
		x.Append(&Instr{Op: OpRet})
		if err := m.Verify(); err == nil {
			t.Error("should reject i32 branch condition")
		}
	})
}

func TestPrintFormats(t *testing.T) {
	m, _ := buildLoop(t)
	txt := m.Print()
	for _, want := range []string{
		"define void @k(ptr %x)",
		"phi i64 [ 0, %entry ], [ %",
		"icmp slt i64",
		"getelementptr inbounds [16 x float], ptr %x, i64 0, i64",
		"load float, ptr",
		"fadd float",
		"br label %header, !llvm.loop !0",
		`!"llvm.loop.pipeline.enable", i1 true`,
		"ret void",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("printed module missing %q:\n%s", want, txt)
		}
	}
	// Typed flavor.
	m.Flavor = FlavorHLS
	typed := m.Print()
	if !strings.Contains(typed, "[16 x float]* %x") {
		t.Errorf("typed printing missing typed pointer:\n%s", typed)
	}
}

func TestBlockOps(t *testing.T) {
	f := NewFunction("f", Void())
	blk := f.AddBlock("entry")
	a := &Instr{Op: OpAdd, Name: "a", Ty: I32(), Args: []Value{CI(I32(), 1), CI(I32(), 2)}}
	c := &Instr{Op: OpAdd, Name: "c", Ty: I32(), Args: []Value{CI(I32(), 3), CI(I32(), 4)}}
	blk.Append(a)
	blk.Append(c)
	mid := &Instr{Op: OpAdd, Name: "b", Ty: I32(), Args: []Value{a, a}}
	blk.InsertBefore(mid, c)
	if blk.Instrs[1] != mid {
		t.Error("InsertBefore misplaced")
	}
	blk.Remove(mid)
	if len(blk.Instrs) != 2 || mid.Parent != nil {
		t.Error("Remove failed")
	}
	if blk.Terminator() != nil {
		t.Error("non-terminator tail should not be a terminator")
	}
}

func TestReplaceAllUsesAndHasUses(t *testing.T) {
	m, f := buildLoop(t)
	_ = m
	// Replace the +1.0 constant with +2.0 everywhere.
	var target *Instr
	for _, in := range f.FindBlock("body").Instrs {
		if in.Op == OpFAdd {
			target = in
		}
	}
	oldC := target.Args[1]
	newC := CF(FloatT(), 2)
	f.ReplaceAllUses(oldC, newC)
	if f.HasUses(oldC) {
		t.Error("old constant still used")
	}
	if target.Args[1] != newC {
		t.Error("replacement did not land")
	}
}

func TestSuccsAndFindBlock(t *testing.T) {
	_, f := buildLoop(t)
	header := f.FindBlock("header")
	succs := header.Succs()
	if len(succs) != 2 {
		t.Fatalf("header should have 2 successors, got %d", len(succs))
	}
	if f.FindBlock("nonexistent") != nil {
		t.Error("FindBlock should return nil for unknown block")
	}
	if f.Entry().Name != "entry" {
		t.Error("Entry() wrong")
	}
}

func TestBuilderNames(t *testing.T) {
	f := NewFunction("f", Void())
	blk := f.AddBlock("entry")
	b := NewBuilder(f)
	b.SetBlock(blk)
	x := b.Add(CI(I32(), 1), CI(I32(), 2))
	y := b.Add(x, x)
	if x.Name == y.Name || x.Name == "" {
		t.Errorf("builder names must be unique and non-empty: %q %q", x.Name, y.Name)
	}
	st := b.Store(x, &Undef{Ty: Ptr(I32())})
	if st.HasResult() {
		t.Error("store must not have a result")
	}
}

func TestGEPResultElem(t *testing.T) {
	arr := ArrayOf(4, ArrayOf(8, FloatT()))
	f := NewFunction("f", Void(), &Param{Name: "p", Ty: Ptr(arr)})
	blk := f.AddBlock("entry")
	b := NewBuilder(f)
	b.SetBlock(blk)
	g := b.GEP(arr, f.Params[0], CI(I64(), 0), CI(I64(), 1), CI(I64(), 2))
	if !g.Ty.IsPtr() || g.Ty.Elem.Kind != KindFloat {
		t.Errorf("3-index gep through [4 x [8 x float]] should yield float*, got %s",
			g.Ty.TypedString())
	}
}

package passes

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/llvm"
	"repro/internal/resilience"
)

// Pass is one named LLVM-level transformation, applied per function.
type Pass struct {
	Name string
	Run  func(f *llvm.Function)
}

// Standard passes, wrapping this package's transformations.
var (
	PassMem2Reg        = Pass{Name: "mem2reg", Run: Mem2Reg}
	PassSimplifyCFG    = Pass{Name: "simplifycfg", Run: SimplifyCFG}
	PassConstFold      = Pass{Name: "constfold", Run: ConstFold}
	PassStrengthReduce = Pass{Name: "strength-reduce", Run: StrengthReduce}
	PassCSE            = Pass{Name: "cse", Run: CSE}
	PassDCE            = Pass{Name: "dce", Run: DCE}
)

// PassManager runs a pipeline of LLVM passes over a module's defined
// functions, optionally re-establishing invariants after every pass.
type PassManager struct {
	passes []Pass
	// VerifyEach runs the module verifier (plus Invariants, when set) after
	// every pass, and names the offending pass on failure — so a
	// miscompiling pass is caught where it runs, not at the legality gate.
	VerifyEach bool
	// Invariants, when non-nil, is consulted after each pass under
	// VerifyEach. The flow layer injects lint.Invariants here; keeping it a
	// function value keeps this package free of a lint dependency.
	Invariants func(*llvm.Module) error
	// Ctx, when non-nil, is checked at every pass boundary: once done, the
	// pipeline stops before the next pass with a typed failure instead of
	// running to completion in a leaked goroutine.
	Ctx context.Context
	// Isolate runs each pass (across all functions) inside a recovery
	// boundary, converting a panic into a *resilience.PassFailure naming
	// Stage and the pass.
	Isolate bool
	// Stage attributes failures under Isolate; defaults to "llvm-opt".
	Stage string
	// BeforePass, when non-nil, runs inside the pass's recovery boundary
	// before the pass visits any function — the flow layer's snapshot and
	// fault-injection hook.
	BeforePass func(passName string, m *llvm.Module)
	// AfterPass, when non-nil, runs after each pass's verification (and
	// regardless of VerifyEach). An error aborts the pipeline attributed to
	// the named pass; an already-typed *resilience.PassFailure passes
	// through unchanged so the semantic oracle can report miscompiles with
	// its own failure kind. The flow layer hangs differential-execution
	// checks here.
	AfterPass func(passName string, m *llvm.Module) error
	// Wrap, when non-nil, intercepts every pass: run executes the pass
	// body over all defined functions. Returning replayed=true means the
	// pass's effect was applied without executing run (the incremental
	// layer's memoized replay), and the manager then skips after-pass
	// verification, invariants, and the AfterPass hook, whose module
	// argument would not reflect the unmaterialized replayed state. LLVM
	// passes carry no constructor parameters, so no params string is
	// threaded here.
	Wrap func(passName string, run func() error) (replayed bool, err error)
	// Parallel runs each pass across the module's defined functions
	// concurrently. Every LLVM pass is function-local by construction
	// (Pass.Run takes one function), so this applies to all of them.
	Parallel bool
}

// NewPassManager returns an empty pass manager with VerifyEach off (the
// historical behavior: verify once at the end).
func NewPassManager() *PassManager { return &PassManager{} }

// Add appends passes to the pipeline.
func (pm *PassManager) Add(ps ...Pass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// stage returns the failure-attribution stage name.
func (pm *PassManager) stage() string {
	if pm.Stage != "" {
		return pm.Stage
	}
	return "llvm-opt"
}

// Run executes the pipeline over every defined function of m, then runs a
// final module verification.
func (pm *PassManager) Run(m *llvm.Module) error {
	lastReplayed := false
	for _, p := range pm.passes {
		p := p
		if err := resilience.Interrupted(pm.Ctx, pm.stage(), p.Name); err != nil {
			return err
		}
		replayed := false
		body := func() error {
			if pm.BeforePass != nil {
				pm.BeforePass(p.Name, m)
			}
			run := func() error { return pm.runPass(p, m) }
			if pm.Wrap != nil {
				var err error
				replayed, err = pm.Wrap(p.Name, run)
				return err
			}
			return run()
		}
		if pm.Isolate {
			if err := resilience.Guard(pm.stage(), p.Name, body); err != nil {
				return err
			}
		} else if err := body(); err != nil {
			return err
		}
		lastReplayed = replayed
		if replayed {
			// The module deliberately does not reflect a replayed pass (the
			// incremental layer carries the state as bytes); the after-pass
			// checks ran when the record was stored, and their activation
			// participates in the memo key.
			continue
		}
		if pm.VerifyEach {
			if err := m.Verify(); err != nil {
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name, resilience.KindVerify, err)
				}
				return fmt.Errorf("verification after LLVM pass %s: %w", p.Name, err)
			}
			if pm.Invariants != nil {
				if err := pm.Invariants(m); err != nil {
					if pm.Isolate {
						return resilience.NewFailure(pm.stage(), p.Name, resilience.KindVerify, err)
					}
					return fmt.Errorf("invariant violation after LLVM pass %s: %w", p.Name, err)
				}
			}
		}
		if pm.AfterPass != nil {
			if err := pm.AfterPass(p.Name, m); err != nil {
				if _, typed := resilience.AsPassFailure(err); typed {
					return err
				}
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name, resilience.KindVerify, err)
				}
				return fmt.Errorf("check after LLVM pass %s: %w", p.Name, err)
			}
		}
	}
	if lastReplayed {
		// The module does not reflect the replayed tail; the incremental
		// layer verifies the true final state when it materializes the
		// stored bytes.
		return nil
	}
	return m.Verify()
}

// runPass applies one pass to every defined function, fanning across
// functions when Parallel is set and there is more than one to visit.
func (pm *PassManager) runPass(p Pass, m *llvm.Module) error {
	var funcs []*llvm.Function
	for _, f := range m.Funcs {
		if !f.IsDecl {
			funcs = append(funcs, f)
		}
	}
	if !pm.Parallel || len(funcs) < 2 {
		for _, f := range funcs {
			p.Run(f)
		}
		return nil
	}
	errs := make([]error, len(funcs))
	var wg sync.WaitGroup
	for i, f := range funcs {
		i, f := i, f
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Recover per goroutine: a recovery boundary on the caller's
			// stack cannot catch a panic raised here.
			errs[i] = func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = resilience.NewFailure(pm.stage(), p.Name, resilience.KindPanic,
							fmt.Errorf("%v", r))
					}
				}()
				p.Run(f)
				return nil
			}()
		}()
	}
	wg.Wait()
	// First failure by function order, matching a serial visit.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package passes

import (
	"context"
	"fmt"

	"repro/internal/llvm"
	"repro/internal/resilience"
)

// Pass is one named LLVM-level transformation, applied per function.
type Pass struct {
	Name string
	Run  func(f *llvm.Function)
}

// Standard passes, wrapping this package's transformations.
var (
	PassMem2Reg        = Pass{Name: "mem2reg", Run: Mem2Reg}
	PassSimplifyCFG    = Pass{Name: "simplifycfg", Run: SimplifyCFG}
	PassConstFold      = Pass{Name: "constfold", Run: ConstFold}
	PassStrengthReduce = Pass{Name: "strength-reduce", Run: StrengthReduce}
	PassCSE            = Pass{Name: "cse", Run: CSE}
	PassDCE            = Pass{Name: "dce", Run: DCE}
)

// PassManager runs a pipeline of LLVM passes over a module's defined
// functions, optionally re-establishing invariants after every pass.
type PassManager struct {
	passes []Pass
	// VerifyEach runs the module verifier (plus Invariants, when set) after
	// every pass, and names the offending pass on failure — so a
	// miscompiling pass is caught where it runs, not at the legality gate.
	VerifyEach bool
	// Invariants, when non-nil, is consulted after each pass under
	// VerifyEach. The flow layer injects lint.Invariants here; keeping it a
	// function value keeps this package free of a lint dependency.
	Invariants func(*llvm.Module) error
	// Ctx, when non-nil, is checked at every pass boundary: once done, the
	// pipeline stops before the next pass with a typed failure instead of
	// running to completion in a leaked goroutine.
	Ctx context.Context
	// Isolate runs each pass (across all functions) inside a recovery
	// boundary, converting a panic into a *resilience.PassFailure naming
	// Stage and the pass.
	Isolate bool
	// Stage attributes failures under Isolate; defaults to "llvm-opt".
	Stage string
	// BeforePass, when non-nil, runs inside the pass's recovery boundary
	// before the pass visits any function — the flow layer's snapshot and
	// fault-injection hook.
	BeforePass func(passName string, m *llvm.Module)
	// AfterPass, when non-nil, runs after each pass's verification (and
	// regardless of VerifyEach). An error aborts the pipeline attributed to
	// the named pass; an already-typed *resilience.PassFailure passes
	// through unchanged so the semantic oracle can report miscompiles with
	// its own failure kind. The flow layer hangs differential-execution
	// checks here.
	AfterPass func(passName string, m *llvm.Module) error
}

// NewPassManager returns an empty pass manager with VerifyEach off (the
// historical behavior: verify once at the end).
func NewPassManager() *PassManager { return &PassManager{} }

// Add appends passes to the pipeline.
func (pm *PassManager) Add(ps ...Pass) *PassManager {
	pm.passes = append(pm.passes, ps...)
	return pm
}

// stage returns the failure-attribution stage name.
func (pm *PassManager) stage() string {
	if pm.Stage != "" {
		return pm.Stage
	}
	return "llvm-opt"
}

// Run executes the pipeline over every defined function of m, then runs a
// final module verification.
func (pm *PassManager) Run(m *llvm.Module) error {
	for _, p := range pm.passes {
		if err := resilience.Interrupted(pm.Ctx, pm.stage(), p.Name); err != nil {
			return err
		}
		body := func() error {
			if pm.BeforePass != nil {
				pm.BeforePass(p.Name, m)
			}
			for _, f := range m.Funcs {
				if f.IsDecl {
					continue
				}
				p.Run(f)
			}
			return nil
		}
		if pm.Isolate {
			if err := resilience.Guard(pm.stage(), p.Name, body); err != nil {
				return err
			}
		} else if err := body(); err != nil {
			return err
		}
		if pm.VerifyEach {
			if err := m.Verify(); err != nil {
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name, resilience.KindVerify, err)
				}
				return fmt.Errorf("verification after LLVM pass %s: %w", p.Name, err)
			}
			if pm.Invariants != nil {
				if err := pm.Invariants(m); err != nil {
					if pm.Isolate {
						return resilience.NewFailure(pm.stage(), p.Name, resilience.KindVerify, err)
					}
					return fmt.Errorf("invariant violation after LLVM pass %s: %w", p.Name, err)
				}
			}
		}
		if pm.AfterPass != nil {
			if err := pm.AfterPass(p.Name, m); err != nil {
				if _, typed := resilience.AsPassFailure(err); typed {
					return err
				}
				if pm.Isolate {
					return resilience.NewFailure(pm.stage(), p.Name, resilience.KindVerify, err)
				}
				return fmt.Errorf("check after LLVM pass %s: %w", p.Name, err)
			}
		}
	}
	return m.Verify()
}

package passes

import (
	"context"
	"testing"

	"repro/internal/llvm"
	"repro/internal/resilience"
)

// TestLLVMPassManagerIsolatesPanic: a panicking LLVM pass surfaces as a
// typed PassFailure naming the pass.
func TestLLVMPassManagerIsolatesPanic(t *testing.T) {
	m, _ := buildCountdown(t)
	bomb := Pass{Name: "bomb", Run: func(f *llvm.Function) {
		panic("nil map write")
	}}
	pm := NewPassManager().Add(PassMem2Reg, bomb, PassDCE)
	pm.Isolate = true
	err := pm.Run(m)
	f, ok := resilience.AsPassFailure(err)
	if !ok {
		t.Fatalf("want *PassFailure, got %T: %v", err, err)
	}
	if f.Stage != "llvm-opt" || f.Pass != "bomb" || f.Kind != resilience.KindPanic {
		t.Errorf("wrong attribution: %+v", f)
	}
}

// TestLLVMPassManagerStopsAtBoundaryWhenCanceled mirrors the MLIR-side
// cooperative-cancellation regression test.
func TestLLVMPassManagerStopsAtBoundaryWhenCanceled(t *testing.T) {
	m, _ := buildCountdown(t)
	ctx, cancel := context.WithCancel(context.Background())
	var ran []string
	canceler := Pass{Name: "canceler", Run: func(f *llvm.Function) {
		ran = append(ran, "canceler")
		cancel()
	}}
	after := Pass{Name: "late", Run: func(f *llvm.Function) {
		ran = append(ran, "late")
	}}
	pm := NewPassManager().Add(canceler, after)
	pm.Ctx = ctx
	err := pm.Run(m)
	f, ok := resilience.AsPassFailure(err)
	if !ok || f.Kind != resilience.KindCanceled || f.Pass != "late" {
		t.Fatalf("want cancellation observed before %q, got %v", "late", err)
	}
	if len(ran) != 1 {
		t.Errorf("pass after cancellation boundary ran: %v", ran)
	}
}

// TestLLVMPassManagerHookFaultAttribution: a BeforePass fault lands on the
// targeted pass.
func TestLLVMPassManagerHookFaultAttribution(t *testing.T) {
	m, _ := buildCountdown(t)
	pm := NewPassManager().Add(PassMem2Reg, PassDCE)
	pm.Isolate = true
	pm.BeforePass = func(name string, mm *llvm.Module) {
		if name == "dce" {
			panic("injected fault")
		}
	}
	err := pm.Run(m)
	f, ok := resilience.AsPassFailure(err)
	if !ok || f.Pass != "dce" || f.Kind != resilience.KindPanic {
		t.Fatalf("hook fault not attributed to dce: %v", err)
	}
}

// Package passes implements LLVM-level transformations: mem2reg (SSA
// promotion of scalar allocas), SimplifyCFG, dead-code elimination, constant
// folding, and a dominance-scoped CSE. The C-frontend path depends on
// mem2reg to recover SSA form; both flows use the cleanup passes so the
// backend sees comparable IR.
package passes

import (
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// Mem2Reg promotes scalar allocas whose only uses are loads and stores into
// SSA values, inserting phis at joins (dense insertion + trivial-phi
// pruning).
func Mem2Reg(f *llvm.Function) {
	cfg := analysis.NewCFG(f)

	// Find promotable allocas.
	var allocas []*llvm.Instr
	promotable := map[*llvm.Instr]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpAlloca && !in.SrcElem.IsArray() && !in.SrcElem.IsStruct() {
				allocas = append(allocas, in)
				promotable[in] = true
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				al, ok := a.(*llvm.Instr)
				if !ok || al.Op != llvm.OpAlloca || !promotable[al] {
					continue
				}
				switch {
				case in.Op == llvm.OpLoad && ai == 0:
				case in.Op == llvm.OpStore && ai == 1:
				default:
					promotable[al] = false // address escapes
				}
			}
		}
	}
	var vars []*llvm.Instr
	for _, a := range allocas {
		if promotable[a] {
			vars = append(vars, a)
		}
	}
	if len(vars) == 0 {
		return
	}

	// Dense phi insertion: one phi per variable per multi-pred block.
	phiFor := map[*llvm.Block]map[*llvm.Instr]*llvm.Instr{}
	phiCtr := 0
	for _, b := range f.Blocks {
		if len(cfg.Preds[b]) < 2 && b != f.Entry() {
			continue
		}
		if len(cfg.Preds[b]) < 2 {
			continue
		}
		phiFor[b] = map[*llvm.Instr]*llvm.Instr{}
		for _, v := range vars {
			phi := &llvm.Instr{Op: llvm.OpPhi, Ty: v.SrcElem,
				Name: v.Name + "_p" + itoa(phiCtr)}
			phiCtr++
			phiFor[b][v] = phi
		}
	}

	// Rename pass over reverse postorder.
	endVal := map[*llvm.Block]map[*llvm.Instr]llvm.Value{}
	for _, b := range cfg.Order {
		cur := map[*llvm.Instr]llvm.Value{}
		if phis, ok := phiFor[b]; ok {
			for v, phi := range phis {
				cur[v] = phi
			}
		} else if len(cfg.Preds[b]) == 1 {
			// Single predecessor: inherit (preds appear before b in RPO for
			// reducible CFGs except back edges; back edges only target
			// multi-pred headers, which got phis).
			if pv, ok := endVal[cfg.Preds[b][0]]; ok {
				for v, x := range pv {
					cur[v] = x
				}
			}
		}
		var toRemove []*llvm.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case llvm.OpLoad:
				if al, ok := in.Args[0].(*llvm.Instr); ok && al.Op == llvm.OpAlloca && promotable[al] {
					repl := cur[al]
					if repl == nil {
						repl = &llvm.Undef{Ty: al.SrcElem}
					}
					f.ReplaceAllUses(in, repl)
					toRemove = append(toRemove, in)
				}
			case llvm.OpStore:
				if al, ok := in.Args[1].(*llvm.Instr); ok && al.Op == llvm.OpAlloca && promotable[al] {
					cur[al] = in.Args[0]
					toRemove = append(toRemove, in)
				}
			}
		}
		for _, in := range toRemove {
			b.Remove(in)
		}
		endVal[b] = cur
	}

	// Wire phi incomings and insert the phis.
	for b, phis := range phiFor {
		for v, phi := range phis {
			for _, p := range cfg.Preds[b] {
				inc := endVal[p][v]
				if inc == nil {
					inc = &llvm.Undef{Ty: v.SrcElem}
				}
				phi.AddIncoming(inc, p)
			}
		}
		// Insert in deterministic order (by variable position).
		for _, v := range vars {
			if phi, ok := phis[v]; ok {
				if len(b.Instrs) == 0 {
					b.Append(phi)
				} else {
					b.InsertBefore(phi, b.Instrs[0])
				}
			}
		}
	}

	// Remove the promoted allocas.
	for _, v := range vars {
		if v.Parent != nil {
			v.Parent.Remove(v)
		}
	}

	pruneTrivialPhis(f)
}

// pruneTrivialPhis removes phis whose incoming values are all identical (or
// the phi itself), then eliminates dead phi webs: phis used only by other
// phis that are themselves dead.
func pruneTrivialPhis(f *llvm.Function) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			instrs := append([]*llvm.Instr(nil), b.Instrs...)
			for _, in := range instrs {
				if in.Op != llvm.OpPhi {
					continue
				}
				var uniq llvm.Value
				trivial := true
				for _, a := range in.Args {
					if a == in {
						continue
					}
					if _, isUndef := a.(*llvm.Undef); isUndef {
						continue
					}
					if uniq == nil {
						uniq = a
						continue
					}
					if a != uniq {
						trivial = false
						break
					}
				}
				if !trivial || uniq == nil {
					continue
				}
				f.ReplaceAllUses(in, uniq)
				b.Remove(in)
				changed = true
			}
		}
		if removeDeadPhiWebs(f) {
			changed = true
		}
	}
}

// removeDeadPhiWebs deletes phis that no non-phi instruction (transitively)
// uses: liveness seeds at non-phi uses and propagates backward through phi
// operands.
func removeDeadPhiWebs(f *llvm.Function) bool {
	live := map[*llvm.Instr]bool{}
	var queue []*llvm.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpPhi {
				continue
			}
			for _, a := range in.Args {
				if phi, ok := a.(*llvm.Instr); ok && phi.Op == llvm.OpPhi && !live[phi] {
					live[phi] = true
					queue = append(queue, phi)
				}
			}
		}
	}
	for len(queue) > 0 {
		phi := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, a := range phi.Args {
			if p2, ok := a.(*llvm.Instr); ok && p2.Op == llvm.OpPhi && !live[p2] {
				live[p2] = true
				queue = append(queue, p2)
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		instrs := append([]*llvm.Instr(nil), b.Instrs...)
		for _, in := range instrs {
			if in.Op == llvm.OpPhi && !live[in] {
				b.Remove(in)
				changed = true
			}
		}
	}
	return changed
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

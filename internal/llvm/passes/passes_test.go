package passes

import (
	"context"
	"testing"

	"repro/internal/llvm"
	"repro/internal/llvm/interp"
)

// buildCountdown builds, in alloca form (pre-mem2reg):
//
//	void f(i32* out) { int s = 0; for (i=0; i<10; i++) s += i; *out = s; }
func buildCountdown(t *testing.T) (*llvm.Module, *llvm.Function) {
	t.Helper()
	m := llvm.NewModule("t")
	f := llvm.NewFunction("f", llvm.Void(), &llvm.Param{Name: "out", Ty: llvm.Ptr(llvm.I32())})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	header := f.AddBlock("header")
	body := f.AddBlock("body")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	sSlot := b.Alloca(llvm.I32())
	iSlot := b.Alloca(llvm.I32())
	b.Store(llvm.CI(llvm.I32(), 0), sSlot)
	b.Store(llvm.CI(llvm.I32(), 0), iSlot)
	b.Br(header)

	b.SetBlock(header)
	iv := b.Load(llvm.I32(), iSlot)
	cond := b.ICmp("slt", iv, llvm.CI(llvm.I32(), 10))
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	i2 := b.Load(llvm.I32(), iSlot)
	s2 := b.Load(llvm.I32(), sSlot)
	sum := b.Add(s2, i2)
	b.Store(sum, sSlot)
	inext := b.Add(i2, llvm.CI(llvm.I32(), 1))
	b.Store(inext, iSlot)
	b.Br(header)

	b.SetBlock(exit)
	final := b.Load(llvm.I32(), sSlot)
	b.Store(final, f.Params[0])
	b.Ret(nil)

	if err := m.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return m, f
}

func runCountdown(t *testing.T, m *llvm.Module) int32 {
	t.Helper()
	out := interp.NewMem(4)
	mc := interp.NewMachine(m)
	if _, _, err := mc.Run(context.Background(), "f", interp.PtrArg(out, 0)); err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	return out.Int32Slice()[0]
}

func TestMem2RegPromotesAndPreserves(t *testing.T) {
	m, f := buildCountdown(t)
	before := runCountdown(t, m)
	if before != 45 {
		t.Fatalf("fixture computes %d, want 45", before)
	}
	Mem2Reg(f)
	if err := m.Verify(); err != nil {
		t.Fatalf("mem2reg broke the module: %v", err)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvm.OpAlloca {
				t.Error("scalar alloca survived mem2reg")
			}
		}
	}
	// Phis must appear in the loop header.
	phis := 0
	for _, in := range f.FindBlock("header").Instrs {
		if in.Op == llvm.OpPhi {
			phis++
		}
	}
	if phis != 2 {
		t.Errorf("want 2 header phis (i, s), got %d", phis)
	}
	if after := runCountdown(t, m); after != 45 {
		t.Errorf("mem2reg changed semantics: %d", after)
	}
}

func TestMem2RegSkipsEscapingAlloca(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("g", llvm.Void())
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	slot := b.Alloca(llvm.I32())
	b.Store(llvm.CI(llvm.I32(), 1), slot)
	// Address escapes into a call.
	b.Call("consume", llvm.Void(), slot)
	b.Ret(nil)
	Mem2Reg(f)
	found := false
	for _, in := range entry.Instrs {
		if in.Op == llvm.OpAlloca {
			found = true
		}
	}
	if !found {
		t.Error("escaping alloca must not be promoted")
	}
}

func TestMem2RegArrayAllocaKept(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("h", llvm.Void())
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	arr := b.Alloca(llvm.ArrayOf(8, llvm.FloatT()))
	g := b.GEP(llvm.ArrayOf(8, llvm.FloatT()), arr, llvm.CI(llvm.I64(), 0), llvm.CI(llvm.I64(), 0))
	b.Store(llvm.CF(llvm.FloatT(), 1), g)
	b.Ret(nil)
	Mem2Reg(f)
	if entry.Instrs[0].Op != llvm.OpAlloca {
		t.Error("array alloca must be preserved")
	}
}

func TestDCE(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("d", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.I32())})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	dead1 := b.Add(llvm.CI(llvm.I32(), 1), llvm.CI(llvm.I32(), 2))
	dead2 := b.Mul(dead1, dead1) // chain: removing dead2 makes dead1 dead
	_ = dead2
	live := b.Add(llvm.CI(llvm.I32(), 3), llvm.CI(llvm.I32(), 4))
	b.Store(live, f.Params[0])
	b.Ret(nil)
	DCE(f)
	if n := len(entry.Instrs); n != 3 {
		t.Errorf("want 3 instrs after DCE (add/store/ret), got %d", n)
	}
}

func TestConstFold(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("c", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.I32())})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	x := b.Add(llvm.CI(llvm.I32(), 2), llvm.CI(llvm.I32(), 3)) // 5
	y := b.Mul(x, llvm.CI(llvm.I32(), 4))                      // 20
	z := b.Add(y, llvm.CI(llvm.I32(), 0))                      // identity
	b.Store(z, f.Params[0])
	b.Ret(nil)
	ConstFold(f)
	st := entry.Instrs[0]
	if st.Op != llvm.OpStore {
		t.Fatalf("expected folded store first, got %s", st.Op)
	}
	c, ok := st.Args[0].(*llvm.ConstInt)
	if !ok || c.Val != 20 {
		t.Errorf("folded value = %v", st.Args[0])
	}
}

func TestSimplifyCFGConstantBranchAndMerge(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("s", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.I32())})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	thenB := f.AddBlock("then")
	elseB := f.AddBlock("else")
	join := f.AddBlock("join")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	b.CondBr(llvm.CI(llvm.I1(), 1), thenB, elseB)
	b.SetBlock(thenB)
	b.Store(llvm.CI(llvm.I32(), 7), f.Params[0])
	b.Br(join)
	b.SetBlock(elseB)
	b.Store(llvm.CI(llvm.I32(), 9), f.Params[0])
	b.Br(join)
	b.SetBlock(join)
	b.Ret(nil)

	SimplifyCFG(f)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// else is unreachable and then/join merge into entry: 1 block remains.
	if len(f.Blocks) != 1 {
		t.Errorf("want 1 block after simplification, got %d", len(f.Blocks))
	}
	out := interp.NewMem(4)
	mc := interp.NewMachine(m)
	if _, _, err := mc.Run(context.Background(), "s", interp.PtrArg(out, 0)); err != nil {
		t.Fatal(err)
	}
	if out.Int32Slice()[0] != 7 {
		t.Errorf("constant-folded branch took the wrong arm: %d", out.Int32Slice()[0])
	}
}

func TestSimplifyCFGKeepsLoopMetadata(t *testing.T) {
	m, f := buildCountdown(t)
	// Attach loop metadata to the latch.
	latch := f.FindBlock("body").Terminator()
	latch.Loop = &llvm.LoopMD{Pipeline: true, II: 3}
	Cleanup(f)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Loop != nil && in.Loop.II == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Error("loop metadata lost in cleanup")
	}
	if got := runCountdown(t, m); got != 45 {
		t.Errorf("cleanup changed semantics: %d", got)
	}
}

func TestCSEDedupes(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("e", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.I32())},
		&llvm.Param{Name: "x", Ty: llvm.I32()})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	a1 := b.Add(f.Params[1], llvm.CI(llvm.I32(), 1))
	a2 := b.Add(f.Params[1], llvm.CI(llvm.I32(), 1)) // duplicate
	s := b.Add(a1, a2)
	b.Store(s, f.Params[0])
	b.Ret(nil)
	CSE(f)
	DCE(f)
	adds := 0
	for _, in := range entry.Instrs {
		if in.Op == llvm.OpAdd {
			adds++
		}
	}
	if adds != 2 {
		t.Errorf("want 2 adds after CSE (x+1 and the sum), got %d", adds)
	}
}

func TestStrengthReduce(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("sr", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.I64())},
		&llvm.Param{Name: "x", Ty: llvm.I64()})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	m8 := b.Mul(f.Params[1], llvm.CI(llvm.I64(), 8))   // -> shl 3
	m16 := b.Mul(llvm.CI(llvm.I64(), 16), f.Params[1]) // -> shl 4 (const lhs)
	m10 := b.Mul(f.Params[1], llvm.CI(llvm.I64(), 10)) // stays mul
	s := b.Add(b.Add(m8, m16), m10)
	b.Store(s, f.Params[0])
	b.Ret(nil)

	StrengthReduce(f)
	shl, mul := 0, 0
	for _, in := range entry.Instrs {
		switch in.Op {
		case llvm.OpShl:
			shl++
		case llvm.OpMul:
			mul++
		}
	}
	if shl != 2 || mul != 1 {
		t.Errorf("want 2 shl + 1 mul, got %d shl %d mul", shl, mul)
	}
	// Semantics: x=3 → 3*8 + 16*3 + 3*10 = 24+48+30 = 102.
	out := interp.NewMem(8)
	mc := interp.NewMachine(m)
	if _, _, err := mc.Run(context.Background(), "sr", interp.PtrArg(out, 0), interp.IntArg(3)); err != nil {
		t.Fatal(err)
	}
	v := int64(out.Bytes[0]) | int64(out.Bytes[1])<<8
	if v != 102 {
		t.Errorf("sr(3) stored %d, want 102", v)
	}
}

func TestCSEDoesNotMergeLoads(t *testing.T) {
	m := llvm.NewModule("t")
	f := llvm.NewFunction("l", llvm.Void(), &llvm.Param{Name: "p", Ty: llvm.Ptr(llvm.I32())})
	m.AddFunc(f)
	entry := f.AddBlock("entry")
	b := llvm.NewBuilder(f)
	b.SetBlock(entry)
	l1 := b.Load(llvm.I32(), f.Params[0])
	b.Store(b.Add(l1, llvm.CI(llvm.I32(), 1)), f.Params[0])
	l2 := b.Load(llvm.I32(), f.Params[0]) // must NOT merge with l1
	b.Store(l2, f.Params[0])
	b.Ret(nil)
	CSE(f)
	loads := 0
	for _, in := range entry.Instrs {
		if in.Op == llvm.OpLoad {
			loads++
		}
	}
	if loads != 2 {
		t.Errorf("CSE must not merge loads across a store: %d loads", loads)
	}
}

package passes

import (
	"repro/internal/llvm"
	"repro/internal/llvm/analysis"
)

// DCE removes side-effect-free instructions without uses, iterating to a
// fixpoint.
func DCE(f *llvm.Function) {
	for changed := true; changed; {
		changed = false
		used := map[llvm.Value]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
			}
		}
		for _, b := range f.Blocks {
			instrs := append([]*llvm.Instr(nil), b.Instrs...)
			for _, in := range instrs {
				if used[in] || !isPure(in) {
					continue
				}
				b.Remove(in)
				changed = true
			}
		}
	}
}

func isPure(in *llvm.Instr) bool {
	switch in.Op {
	case llvm.OpStore, llvm.OpBr, llvm.OpCondBr, llvm.OpRet, llvm.OpCall,
		llvm.OpUnreachable:
		return false
	}
	return true
}

// SimplifyCFG removes unreachable blocks, merges straight-line block pairs,
// and folds branches on constant conditions.
func SimplifyCFG(f *llvm.Function) {
	for changed := true; changed; {
		changed = false

		// Fold constant conditional branches.
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != llvm.OpCondBr {
				continue
			}
			c, ok := t.Args[0].(*llvm.ConstInt)
			if !ok {
				continue
			}
			dest := t.Blocks[0]
			dead := t.Blocks[1]
			if c.Val == 0 {
				dest, dead = dead, dest
			}
			removePhiIncoming(dead, b)
			b.Remove(t)
			br := &llvm.Instr{Op: llvm.OpBr, Blocks: []*llvm.Block{dest}, Loop: t.Loop}
			b.Append(br)
			changed = true
		}

		// Drop unreachable blocks.
		cfg := analysis.NewCFG(f)
		var live []*llvm.Block
		for _, b := range f.Blocks {
			if cfg.Reachable(b) {
				live = append(live, b)
				continue
			}
			for _, s := range b.Succs() {
				removePhiIncoming(s, b)
			}
			changed = true
		}
		f.Blocks = live

		// Merge b -> s when b's only successor is s and s's only
		// predecessor is b.
		cfg = analysis.NewCFG(f)
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != llvm.OpBr {
				continue
			}
			s := t.Blocks[0]
			if s == b || len(cfg.Preds[s]) != 1 || s == f.Entry() {
				continue
			}
			// Phis in s with one predecessor are trivial; inline them.
			for len(s.Instrs) > 0 && s.Instrs[0].Op == llvm.OpPhi {
				phi := s.Instrs[0]
				f.ReplaceAllUses(phi, phi.Args[0])
				s.Remove(phi)
			}
			// Keep loop metadata on the merged terminator.
			loopMD := t.Loop
			b.Remove(t)
			for _, in := range s.Instrs {
				in.Parent = b
				b.Instrs = append(b.Instrs, in)
			}
			if loopMD != nil {
				if nt := b.Terminator(); nt != nil && nt.Loop == nil {
					nt.Loop = loopMD
				}
			}
			// Phis elsewhere referencing s as an incoming block now come
			// from b.
			for _, ob := range f.Blocks {
				for _, in := range ob.Instrs {
					if in.Op != llvm.OpPhi {
						continue
					}
					for i, blk := range in.Blocks {
						if blk == s {
							in.Blocks[i] = b
						}
					}
				}
			}
			// Delete s.
			var rest []*llvm.Block
			for _, x := range f.Blocks {
				if x != s {
					rest = append(rest, x)
				}
			}
			f.Blocks = rest
			changed = true
			break // CFG changed; recompute
		}
	}
}

func removePhiIncoming(b *llvm.Block, pred *llvm.Block) {
	for _, in := range b.Instrs {
		if in.Op != llvm.OpPhi {
			continue
		}
		for i := 0; i < len(in.Blocks); i++ {
			if in.Blocks[i] == pred {
				in.Blocks = append(in.Blocks[:i], in.Blocks[i+1:]...)
				in.Args = append(in.Args[:i], in.Args[i+1:]...)
				i--
			}
		}
	}
}

// ConstFold folds instructions with constant operands, then cleans up.
func ConstFold(f *llvm.Function) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if v, ok := foldInstr(in); ok {
					f.ReplaceAllUses(in, v)
					changed = true
				}
			}
		}
		if changed {
			DCE(f)
		}
	}
}

func foldInstr(in *llvm.Instr) (llvm.Value, bool) {
	ci := func(i int) (int64, bool) {
		c, ok := in.Args[i].(*llvm.ConstInt)
		if !ok {
			return 0, false
		}
		return c.Val, true
	}
	cf := func(i int) (float64, bool) {
		c, ok := in.Args[i].(*llvm.ConstFloat)
		if !ok {
			return 0, false
		}
		return c.Val, true
	}
	switch in.Op {
	case llvm.OpAdd, llvm.OpSub, llvm.OpMul:
		l, ok1 := ci(0)
		r, ok2 := ci(1)
		if ok1 && ok2 {
			var v int64
			switch in.Op {
			case llvm.OpAdd:
				v = l + r
			case llvm.OpSub:
				v = l - r
			case llvm.OpMul:
				v = l * r
			}
			return llvm.CI(in.Ty, v), true
		}
		// Identities.
		if in.Op == llvm.OpAdd {
			if ok2 && r == 0 {
				return in.Args[0], true
			}
			if ok1 && l == 0 {
				return in.Args[1], true
			}
		}
		if in.Op == llvm.OpMul {
			if ok2 && r == 1 {
				return in.Args[0], true
			}
			if ok1 && l == 1 {
				return in.Args[1], true
			}
		}
	case llvm.OpFAdd, llvm.OpFSub, llvm.OpFMul:
		l, ok1 := cf(0)
		r, ok2 := cf(1)
		if ok1 && ok2 {
			var v float64
			switch in.Op {
			case llvm.OpFAdd:
				v = l + r
			case llvm.OpFSub:
				v = l - r
			case llvm.OpFMul:
				v = l * r
			}
			return llvm.CF(in.Ty, v), true
		}
	case llvm.OpSExt, llvm.OpZExt, llvm.OpTrunc:
		if v, ok := ci(0); ok {
			return llvm.CI(in.Ty, v), true
		}
	case llvm.OpSIToFP:
		if v, ok := ci(0); ok {
			return llvm.CF(in.Ty, float64(v)), true
		}
	case llvm.OpICmp:
		l, ok1 := ci(0)
		r, ok2 := ci(1)
		if ok1 && ok2 {
			res := int64(0)
			ok := false
			switch in.Pred {
			case "eq":
				res, ok = b2i(l == r), true
			case "ne":
				res, ok = b2i(l != r), true
			case "slt":
				res, ok = b2i(l < r), true
			case "sle":
				res, ok = b2i(l <= r), true
			case "sgt":
				res, ok = b2i(l > r), true
			case "sge":
				res, ok = b2i(l >= r), true
			}
			if ok {
				return llvm.CI(llvm.I1(), res), true
			}
		}
	}
	return nil, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// CSE deduplicates pure instructions with identical opcode/operands within
// dominating scopes (a GVN-lite).
func CSE(f *llvm.Function) {
	cfg := analysis.NewCFG(f)
	dt := analysis.NewDomTree(cfg)
	type key struct {
		op   llvm.Opcode
		pred string
		a0   llvm.Value
		a1   llvm.Value
		a2   llvm.Value
	}
	avail := map[key][]*llvm.Instr{}
	// Constants are not interned in the IR; canonicalize them so equal
	// literals compare equal in keys.
	type constKey struct {
		ty string
		i  int64
		f  float64
	}
	canonConsts := map[constKey]llvm.Value{}
	canon := func(v llvm.Value) llvm.Value {
		switch c := v.(type) {
		case *llvm.ConstInt:
			k := constKey{ty: c.Ty.String(), i: c.Val}
			if prev, ok := canonConsts[k]; ok {
				return prev
			}
			canonConsts[k] = v
			return v
		case *llvm.ConstFloat:
			k := constKey{ty: c.Ty.String(), f: c.Val}
			if prev, ok := canonConsts[k]; ok {
				return prev
			}
			canonConsts[k] = v
			return v
		}
		return v
	}
	mk := func(in *llvm.Instr) (key, bool) {
		if !isPure(in) || in.Op == llvm.OpPhi || in.Op == llvm.OpAlloca ||
			in.Op == llvm.OpLoad || len(in.Args) > 3 {
			return key{}, false
		}
		k := key{op: in.Op, pred: in.Pred}
		if len(in.Args) > 0 {
			k.a0 = canon(in.Args[0])
		}
		if len(in.Args) > 1 {
			k.a1 = canon(in.Args[1])
		}
		if len(in.Args) > 2 {
			k.a2 = canon(in.Args[2])
		}
		return k, true
	}
	for _, b := range cfg.Order {
		instrs := append([]*llvm.Instr(nil), b.Instrs...)
		for _, in := range instrs {
			k, ok := mk(in)
			if !ok {
				continue
			}
			replaced := false
			for _, prev := range avail[k] {
				if prev.Parent != nil && dt.Dominates(prev.Parent, b) &&
					prev.SrcElem.Equal(in.SrcElem) && typesEqual(prev.Ty, in.Ty) {
					f.ReplaceAllUses(in, prev)
					b.Remove(in)
					replaced = true
					break
				}
			}
			if !replaced {
				avail[k] = append(avail[k], in)
			}
		}
	}
}

func typesEqual(a, b *llvm.Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Equal(b)
}

// StrengthReduce rewrites integer multiplies by power-of-two constants into
// shifts — address arithmetic over power-of-two array extents then costs a
// wire instead of a multiplier.
func StrengthReduce(f *llvm.Function) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != llvm.OpMul || !in.Ty.IsInt() {
				continue
			}
			for i := 0; i < 2; i++ {
				c, ok := in.Args[i].(*llvm.ConstInt)
				if !ok || c.Val <= 0 || c.Val&(c.Val-1) != 0 {
					continue
				}
				shift := int64(0)
				for v := c.Val; v > 1; v >>= 1 {
					shift++
				}
				other := in.Args[1-i]
				in.Op = llvm.OpShl
				in.Args = []llvm.Value{other, llvm.CI(in.Ty, shift)}
				break
			}
		}
	}
}

// Cleanup runs the standard post-frontend pipeline.
func Cleanup(f *llvm.Function) {
	Mem2Reg(f)
	SimplifyCFG(f)
	ConstFold(f)
	StrengthReduce(f)
	CSE(f)
	DCE(f)
	SimplifyCFG(f)
}

package llvm

import "fmt"

// Verify checks structural invariants: every block has a terminator, phis
// match their predecessors, operand types line up for known ops, and every
// instruction with a result has a unique name.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if f.IsDecl {
			continue
		}
		if err := f.Verify(); err != nil {
			return fmt.Errorf("function @%s: %w", f.Name, err)
		}
	}
	return nil
}

// Verify checks one function.
func (f *Function) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	names := map[string]bool{}
	for _, p := range f.Params {
		if names[p.Name] {
			return fmt.Errorf("duplicate parameter name %%%s", p.Name)
		}
		names[p.Name] = true
	}
	preds := map[*Block][]*Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			return fmt.Errorf("block %%%s lacks a terminator", b.Name)
		}
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("block %%%s has a terminator mid-block", b.Name)
			}
			if in.HasResult() {
				if in.Name == "" {
					return fmt.Errorf("unnamed result in block %%%s (op %s)", b.Name, in.Op)
				}
				if names[in.Name] {
					return fmt.Errorf("duplicate SSA name %%%s", in.Name)
				}
				names[in.Name] = true
			}
			if err := verifyInstr(in, preds); err != nil {
				return fmt.Errorf("block %%%s: %s: %w", b.Name, in.Op, err)
			}
		}
	}
	return nil
}

func verifyInstr(in *Instr, preds map[*Block][]*Block) error {
	want := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	nonNil := func() error {
		for i, a := range in.Args {
			if a == nil {
				return fmt.Errorf("nil operand %d", i)
			}
		}
		return nil
	}
	if err := nonNil(); err != nil {
		return err
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		if err := want(2); err != nil {
			return err
		}
		if !in.Args[0].Type().IsInt() {
			return fmt.Errorf("integer op on %s", in.Args[0].Type())
		}
		if !in.Args[0].Type().Equal(in.Args[1].Type()) {
			return fmt.Errorf("operand type mismatch")
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if err := want(2); err != nil {
			return err
		}
		if !in.Args[0].Type().IsFP() {
			return fmt.Errorf("float op on %s", in.Args[0].Type())
		}
		if !in.Args[0].Type().Equal(in.Args[1].Type()) {
			return fmt.Errorf("operand type mismatch")
		}
	case OpFNeg:
		if err := want(1); err != nil {
			return err
		}
		if !in.Args[0].Type().IsFP() {
			return fmt.Errorf("fneg on %s", in.Args[0].Type())
		}
	case OpICmp:
		if err := want(2); err != nil {
			return err
		}
		if !in.Args[0].Type().IsInt() && !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("icmp on %s", in.Args[0].Type())
		}
	case OpFCmp:
		if err := want(2); err != nil {
			return err
		}
		if !in.Args[0].Type().IsFP() {
			return fmt.Errorf("fcmp on %s", in.Args[0].Type())
		}
	case OpSelect:
		if err := want(3); err != nil {
			return err
		}
		if !in.Args[0].Type().Equal(I1()) {
			return fmt.Errorf("select condition must be i1")
		}
	case OpLoad:
		if err := want(1); err != nil {
			return err
		}
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("load from non-pointer")
		}
		if in.SrcElem == nil {
			return fmt.Errorf("load without element type")
		}
	case OpStore:
		if err := want(2); err != nil {
			return err
		}
		if !in.Args[1].Type().IsPtr() {
			return fmt.Errorf("store to non-pointer")
		}
	case OpGEP:
		if len(in.Args) < 2 {
			return fmt.Errorf("gep needs pointer and at least one index")
		}
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("gep base must be a pointer")
		}
		if in.SrcElem == nil {
			return fmt.Errorf("gep without source element type")
		}
		for _, a := range in.Args[1:] {
			if !a.Type().IsInt() {
				return fmt.Errorf("gep index must be integer")
			}
		}
	case OpAlloca:
		if in.SrcElem == nil {
			return fmt.Errorf("alloca without allocated type")
		}
	case OpPhi:
		if len(in.Args) != len(in.Blocks) {
			return fmt.Errorf("phi args/blocks length mismatch")
		}
		if in.Parent != nil {
			ps := preds[in.Parent]
			if len(ps) != len(in.Blocks) {
				return fmt.Errorf("phi has %d incoming, block has %d predecessors",
					len(in.Blocks), len(ps))
			}
			for _, p := range ps {
				found := false
				for _, ib := range in.Blocks {
					if ib == p {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("phi missing incoming for predecessor %%%s", p.Name)
				}
			}
		}
		for _, a := range in.Args {
			if !a.Type().Equal(in.Ty) {
				return fmt.Errorf("phi incoming type mismatch")
			}
		}
	case OpBr:
		if len(in.Blocks) != 1 {
			return fmt.Errorf("br needs one target")
		}
	case OpCondBr:
		if err := want(1); err != nil {
			return err
		}
		if len(in.Blocks) != 2 {
			return fmt.Errorf("conditional br needs two targets")
		}
		if !in.Args[0].Type().Equal(I1()) {
			return fmt.Errorf("branch condition must be i1")
		}
	case OpCall:
		if in.Callee == "" {
			return fmt.Errorf("call without callee")
		}
	}
	return nil
}

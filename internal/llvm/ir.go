package llvm

import (
	"strconv"
)

// Value is an SSA value or constant.
type Value interface {
	Type() *Type
	// Ident renders the value reference as it appears in instruction
	// operand position (%name, literal, or @global).
	Ident() string
}

// ConstInt is an integer constant.
type ConstInt struct {
	Ty  *Type
	Val int64
}

// CI builds an integer constant of the given type.
func CI(ty *Type, v int64) *ConstInt { return &ConstInt{Ty: ty, Val: v} }

// Type implements Value.
func (c *ConstInt) Type() *Type { return c.Ty }

// Ident implements Value.
func (c *ConstInt) Ident() string {
	if c.Ty.Bits == 1 {
		if c.Val != 0 {
			return "true"
		}
		return "false"
	}
	return strconv.FormatInt(c.Val, 10)
}

// ConstFloat is a floating-point constant.
type ConstFloat struct {
	Ty  *Type
	Val float64
}

// CF builds a float constant of the given type.
func CF(ty *Type, v float64) *ConstFloat { return &ConstFloat{Ty: ty, Val: v} }

// Type implements Value.
func (c *ConstFloat) Type() *Type { return c.Ty }

// Ident implements Value.
func (c *ConstFloat) Ident() string {
	// Real LLVM prints a hexadecimal form to avoid precision loss; the
	// shortest round-trippable scientific form serves the same purpose here.
	return strconv.FormatFloat(c.Val, 'e', -1, 64)
}

// Undef is an undefined value of a given type.
type Undef struct{ Ty *Type }

// Type implements Value.
func (u *Undef) Type() *Type { return u.Ty }

// Ident implements Value.
func (u *Undef) Ident() string { return "undef" }

// Param is a function parameter.
type Param struct {
	Name string
	Ty   *Type
	// Attrs holds parameter attributes (e.g. "noalias"). HLS interface
	// directives from the adaptor also land here.
	Attrs []string
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Ty }

// Ident implements Value.
func (p *Param) Ident() string { return "%" + p.Name }

// Opcode enumerates supported instructions.
type Opcode string

// Instruction opcodes.
const (
	OpAdd         Opcode = "add"
	OpSub         Opcode = "sub"
	OpMul         Opcode = "mul"
	OpSDiv        Opcode = "sdiv"
	OpSRem        Opcode = "srem"
	OpAnd         Opcode = "and"
	OpOr          Opcode = "or"
	OpXor         Opcode = "xor"
	OpShl         Opcode = "shl"
	OpLShr        Opcode = "lshr"
	OpAShr        Opcode = "ashr"
	OpFAdd        Opcode = "fadd"
	OpFSub        Opcode = "fsub"
	OpFMul        Opcode = "fmul"
	OpFDiv        Opcode = "fdiv"
	OpFNeg        Opcode = "fneg"
	OpICmp        Opcode = "icmp"
	OpFCmp        Opcode = "fcmp"
	OpSelect      Opcode = "select"
	OpZExt        Opcode = "zext"
	OpSExt        Opcode = "sext"
	OpTrunc       Opcode = "trunc"
	OpSIToFP      Opcode = "sitofp"
	OpFPToSI      Opcode = "fptosi"
	OpFPExt       Opcode = "fpext"
	OpFPTrunc     Opcode = "fptrunc"
	OpBitcast     Opcode = "bitcast"
	OpPtrToInt    Opcode = "ptrtoint"
	OpIntToPtr    Opcode = "inttoptr"
	OpLoad        Opcode = "load"
	OpStore       Opcode = "store"
	OpGEP         Opcode = "getelementptr"
	OpAlloca      Opcode = "alloca"
	OpPhi         Opcode = "phi"
	OpBr          Opcode = "br"
	OpCondBr      Opcode = "condbr" // printed as br i1 ...
	OpRet         Opcode = "ret"
	OpCall        Opcode = "call"
	OpUnreachable Opcode = "unreachable"
	// Aggregate ops produced by upstream memref-descriptor lowering.
	OpExtractValue Opcode = "extractvalue"
	OpInsertValue  Opcode = "insertvalue"
)

// LoopMD carries structured loop metadata attached to a loop latch branch
// (the in-memory form of !llvm.loop).
type LoopMD struct {
	Pipeline  bool
	II        int
	Unroll    int // 0 = none, -1 = full
	Flatten   bool
	TripCount int // hint, 0 when unknown
}

// Instr is an instruction. A single struct covers all opcodes; opcode-
// specific fields are documented inline.
type Instr struct {
	Op   Opcode
	Name string // SSA result name (without %); "" for void results
	Ty   *Type  // result type; for store/br/ret it is nil

	Args []Value

	Pred string // icmp/fcmp predicate

	// Blocks: br target(s); for phi, the incoming block per Args entry.
	Blocks []*Block

	// Callee is the called function name (without @) for OpCall.
	Callee string

	// SrcElem is the pointee element type: gep source element type, load
	// result memory type, store value memory type, alloca allocated type.
	SrcElem *Type

	// Indices for extractvalue/insertvalue.
	Indices []int

	// Loop metadata on a latch branch.
	Loop *LoopMD

	// Align in bytes (0 = natural).
	Align int

	Parent *Block
}

// Type implements Value.
func (in *Instr) Type() *Type { return in.Ty }

// Ident implements Value.
func (in *Instr) Ident() string { return "%" + in.Name }

// IsTerminator reports whether the instruction ends a block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpBr, OpCondBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

// HasResult reports whether the instruction defines an SSA value.
func (in *Instr) HasResult() bool {
	return in.Ty != nil && !in.Ty.IsVoid() && in.Op != OpStore
}

// Block is a basic block.
type Block struct {
	Name   string
	Instrs []*Instr
	Parent *Function
}

// Append adds an instruction at the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts in before ref.
func (b *Block) InsertBefore(in, ref *Instr) {
	idx := b.index(ref)
	if idx < 0 {
		panic("llvm: InsertBefore ref not in block")
	}
	in.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// Remove unlinks in from the block.
func (b *Block) Remove(in *Instr) {
	idx := b.index(in)
	if idx < 0 {
		return
	}
	copy(b.Instrs[idx:], b.Instrs[idx+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	in.Parent = nil
}

func (b *Block) index(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// Terminator returns the block's final instruction (nil when empty).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr, OpCondBr:
		return t.Blocks
	}
	return nil
}

// Function is a function definition or declaration.
type Function struct {
	Name   string
	Ret    *Type
	Params []*Param
	Blocks []*Block
	// Attrs carries function attributes; the adaptor records HLS interface
	// and partition directives here (keys prefixed "hls.").
	Attrs  map[string]string
	IsDecl bool
}

// NewFunction creates an empty function definition.
func NewFunction(name string, ret *Type, params ...*Param) *Function {
	return &Function{Name: name, Ret: ret, Params: params, Attrs: map[string]string{}}
}

// AddBlock appends a new named block.
func (f *Function) AddBlock(name string) *Block {
	b := &Block{Name: name, Parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// FindBlock returns the block with the given name, or nil.
func (f *Function) FindBlock(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// SetAttr sets a function attribute.
func (f *Function) SetAttr(k, v string) {
	if f.Attrs == nil {
		f.Attrs = map[string]string{}
	}
	f.Attrs[k] = v
}

// Module is a translation unit.
type Module struct {
	Name string
	// Flavor documents the pointer/intrinsic dialect of the module:
	// FlavorModern for mlir-translate output, FlavorHLS after adaptation.
	Flavor string
	Funcs  []*Function
}

// Module flavors.
const (
	// FlavorModern marks IR as emitted by a current LLVM (opaque pointers,
	// modern intrinsics) — what mlir-translate produces.
	FlavorModern = "modern"
	// FlavorHLS marks IR as legalized for the HLS toolchain's older LLVM
	// (typed pointers, restricted intrinsic set).
	FlavorHLS = "hls"
)

// NewModule creates an empty modern-flavored module.
func NewModule(name string) *Module {
	return &Module{Name: name, Flavor: FlavorModern}
}

// AddFunc appends a function.
func (m *Module) AddFunc(f *Function) *Function {
	m.Funcs = append(m.Funcs, f)
	return f
}

// FindFunc returns the named function, or nil.
func (m *Module) FindFunc(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ReplaceAllUses rewrites every operand use of old with repl in f.
func (f *Function) ReplaceAllUses(old, repl Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = repl
				}
			}
		}
	}
}

// HasUses reports whether v is used as an operand anywhere in f.
func (f *Function) HasUses(v Value) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}

package parser_test

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/kgen"
	"repro/internal/llvm/parser"
	"repro/internal/polybench"
)

// fuzzSeeds covers the textual surface the parser accepts: every instruction
// family, both interface attribute spellings, loop metadata, declarations,
// and a few near-miss inputs that must be rejected without panicking.
var fuzzSeeds = []string{
	"",
	"define void @f() {\nentry:\n  ret void\n}\n",
	`define void @k([16 x float]* "hls.interface=ap_memory" %a) {
entry:
  br label %h
h:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %iv, 16
  br i1 %c, label %body, label %exit
body:
  %p = getelementptr inbounds [16 x float], [16 x float]* %a, i64 0, i64 %iv
  %v = load float, float* %p
  %d = fmul float %v, 2.0
  store float %d, float* %p
  %next = add i64 %iv, 1
  br label %h, !llvm.loop !0
exit:
  ret void
}
`,
	`define i64 @g(i64 %x) {
entry:
  %a = alloca [4 x i64]
  %s = sub i64 %x, 3
  %m = mul i64 %s, %s
  %q = sdiv i64 %m, 7
  %r = srem i64 %q, 5
  %an = and i64 %r, 15
  %o = or i64 %an, 1
  %xo = xor i64 %o, 2
  %sh = shl i64 %xo, 2
  %ar = ashr i64 %sh, 1
  %t = trunc i64 %ar to i32
  %se = sext i32 %t to i64
  %ze = zext i32 %t to i64
  %c = icmp eq i64 %se, %ze
  %sel = select i1 %c, i64 %se, i64 %ze
  ret i64 %sel
}
`,
	"declare void @ext(float*)\n",
	"define void @h() {\nentry:\n  call void @ext(float* null)\n  ret void\n}\ndeclare void @ext(float*)\n",
	"define void @bad() {\n", // truncated: must error, not panic
	"define void @x() {}\n",
	"%\x00",
	"define void @u() {\ne:\n  unreachable\n}\n",
}

// FuzzParseRoundTrip drives Parse with arbitrary input. Inputs the parser
// accepts must verify, print, and re-parse to a module that prints
// identically (print is the parser's inverse on its own output); inputs it
// rejects must produce an error, never a panic.
func FuzzParseRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for _, s := range kernelSeeds(f) {
		f.Add(s)
	}
	for _, s := range kgenSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := parser.Parse(src)
		if err != nil {
			return // rejection is fine; panics are the bug class under test
		}
		text := m.Print()
		m2, err := parser.Parse(text)
		if err != nil {
			t.Fatalf("printed module does not re-parse: %v\n--- printed\n%s\n--- input\n%q", err, text, src)
		}
		if text2 := m2.Print(); text2 != text {
			t.Fatalf("print is not a fixpoint after one round trip:\n--- first\n%s\n--- second\n%s", text, text2)
		}
	})
}

// kernelSeeds runs every polybench kernel through the adaptor flow and
// seeds the corpus with the post-adaptor module text — the richest real IR
// this repository produces, so the fuzzer mutates from the shapes the
// parser must actually survive rather than from toy snippets only.
func kernelSeeds(f *testing.F) []string {
	f.Helper()
	var seeds []string
	tgt := hls.DefaultTarget()
	d := flow.Directives{Pipeline: true, II: 1}
	for _, k := range polybench.All() {
		s, err := k.SizeOf("MINI")
		if err != nil {
			f.Fatal(err)
		}
		res, err := flow.AdaptorFlow(k.Build(s), k.Name, d, tgt)
		if err != nil {
			f.Fatalf("%s: %v", k.Name, err)
		}
		seeds = append(seeds, res.LLVM.Print())
	}
	return seeds
}

// kgenSeeds lowers the shared checked-in kgen corpus through the adaptor
// flow, each kernel under its own sampled directive set, and seeds the
// fuzzer with the resulting LLVM text — generator-minimal loop nests with
// directive-shaped metadata, complementing the polybench shapes.
func kgenSeeds(f *testing.F) []string {
	f.Helper()
	var seeds []string
	tgt := hls.DefaultTarget()
	for _, k := range kgen.CorpusKernels() {
		res, err := flow.AdaptorFlow(k.Build(), k.Name, k.Directives, tgt)
		if err != nil {
			f.Fatalf("%s: %v", k.Name, err)
		}
		seeds = append(seeds, res.LLVM.Print())
	}
	return seeds
}

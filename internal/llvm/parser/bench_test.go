package parser_test

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm/parser"
	"repro/internal/polybench"
)

// benchText synthesizes the gemm MINI kernel through the adaptor flow and
// returns its final LLVM text — the artifact the incremental layer parses
// back on cursor materialization and prints at every unit boundary.
func benchText(b *testing.B) string {
	b.Helper()
	k := polybench.Get("gemm")
	if k == nil {
		b.Fatal("gemm not registered")
	}
	s, err := k.SizeOf("MINI")
	if err != nil {
		b.Fatal(err)
	}
	res, err := flow.AdaptorFlow(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1}, hls.DefaultTarget())
	if err != nil {
		b.Fatal(err)
	}
	return res.LLVM.Print()
}

// BenchmarkParseClonePrint measures the LLVM-side halves of the
// parse→print hot path (the LLVM IR has no clone; the flow copies modules
// by reparsing, which is exactly the parse case).
func BenchmarkParseClonePrint(b *testing.B) {
	text := benchText(b)
	m, err := parser.Parse(text)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parser.Parse(text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("print", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if m.Print() == "" {
				b.Fatal("empty print")
			}
		}
	})
}

package parser

import (
	"fmt"
	"strconv"

	"repro/internal/llvm"
)

// Parse parses .ll text into a module. The flavor is inferred: any typed
// pointer in a signature marks the module FlavorHLS, otherwise FlavorModern.
func Parse(src string) (*llvm.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &llParser{toks: toks, attrGroups: map[string]map[string]string{},
		loopMDs: map[string]*llvm.LoopMD{}}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if name, ok := moduleIDComment(src); ok {
		m.Name = name
	}
	return m, nil
}

// moduleIDComment recovers the module name from the "; ModuleID = '...'"
// header comment so printing round-trips.
func moduleIDComment(src string) (string, bool) {
	const marker = "; ModuleID = '"
	i := indexOf(src, marker)
	if i < 0 {
		return "", false
	}
	rest := src[i+len(marker):]
	j := indexOf(rest, "'")
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

type llParser struct {
	toks []token
	pos  int

	sawTypedPtr bool

	// Per-function state.
	values map[string]llvm.Value
	blocks map[string]*llvm.Block
	// pending fixups: instruction arg slots referencing not-yet-defined locals.
	fixups []fixup
	// attribute groups and loop metadata resolved after the module body.
	attrGroups map[string]map[string]string
	funcAttrs  map[*llvm.Function]string
	loopMDs    map[string]*llvm.LoopMD
	mdUses     []mdUse

	// slab batch-allocates instruction nodes: a module's instructions share
	// lifetime, so carving them from fixed arrays trades per-instr heap
	// traffic for a few larger allocations on the parse hot path.
	slab []llvm.Instr
}

// instr copies proto into the next slab slot and returns its address.
func (p *llParser) instr(proto llvm.Instr) *llvm.Instr {
	if len(p.slab) == 0 {
		p.slab = make([]llvm.Instr, 64)
	}
	in := &p.slab[0]
	p.slab = p.slab[1:]
	*in = proto
	return in
}

type fixup struct {
	in   *llvm.Instr
	arg  int
	name string
	line int
}

type mdUse struct {
	in *llvm.Instr
	id string
}

func (p *llParser) cur() token { return p.toks[p.pos] }

func (p *llParser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *llParser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("llvm parser: line %d (near %q): %s", t.line, t.text,
		fmt.Sprintf(format, args...))
}

func (p *llParser) isPunct(s string) bool {
	return p.cur().kind == tPunct && p.cur().text == s
}

func (p *llParser) isIdent(s string) bool {
	return p.cur().kind == tIdent && p.cur().text == s
}

func (p *llParser) expect(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q", s)
	}
	p.next()
	return nil
}

func (p *llParser) parseModule() (*llvm.Module, error) {
	m := llvm.NewModule("parsed")
	p.funcAttrs = map[*llvm.Function]string{}
	for p.cur().kind != tEOF {
		t := p.cur()
		switch {
		case t.kind == tIdent && (t.text == "define" || t.text == "declare"):
			f, err := p.parseFunc(t.text == "declare")
			if err != nil {
				return nil, err
			}
			m.AddFunc(f)
		case t.kind == tIdent && t.text == "attributes":
			if err := p.parseAttrGroup(); err != nil {
				return nil, err
			}
		case t.kind == tMDRef:
			if err := p.parseMDNode(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected top-level entity")
		}
	}
	// Resolve attribute groups.
	for f, id := range p.funcAttrs {
		if attrs, ok := p.attrGroups[id]; ok {
			for k, v := range attrs {
				f.SetAttr(k, v)
			}
		}
	}
	// Resolve loop metadata.
	for _, u := range p.mdUses {
		if md, ok := p.loopMDs[u.id]; ok {
			u.in.Loop = md
		}
	}
	if p.sawTypedPtr {
		m.Flavor = llvm.FlavorHLS
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("llvm parser: parsed module invalid: %w", err)
	}
	return m, nil
}

// parseType parses a type, including postfix '*' pointers.
func (p *llParser) parseType() (*llvm.Type, error) {
	var base *llvm.Type
	t := p.cur()
	switch {
	case t.kind == tIdent && t.text == "void":
		p.next()
		base = llvm.Void()
	case t.kind == tIdent && t.text == "float":
		p.next()
		base = llvm.FloatT()
	case t.kind == tIdent && t.text == "double":
		p.next()
		base = llvm.DoubleT()
	case t.kind == tIdent && t.text == "ptr":
		p.next()
		base = llvm.Ptr(nil)
	case t.kind == tIdent && len(t.text) > 1 && t.text[0] == 'i':
		bits, err := strconv.Atoi(t.text[1:])
		if err != nil {
			return nil, p.errf("bad integer type")
		}
		p.next()
		base = llvm.IntT(bits)
	case t.kind == tPunct && t.text == "[":
		p.next()
		nTok := p.cur()
		if nTok.kind != tInt {
			return nil, p.errf("expected array length")
		}
		p.next()
		if !p.isIdent("x") {
			return nil, p.errf("expected 'x' in array type")
		}
		p.next()
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		nv, _ := strconv.ParseInt(nTok.text, 10, 64)
		base = llvm.ArrayOf(nv, elem)
	case t.kind == tPunct && t.text == "{":
		p.next()
		var fields []*llvm.Type
		for !p.isPunct("}") {
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, ft)
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
		base = llvm.StructOf(fields...)
	default:
		return nil, p.errf("expected type")
	}
	for p.isPunct("*") {
		p.next()
		p.sawTypedPtr = true
		base = llvm.Ptr(base)
	}
	return base, nil
}

func (p *llParser) parseFunc(isDecl bool) (*llvm.Function, error) {
	p.next() // define/declare
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok := p.cur()
	if nameTok.kind != tGlobal {
		return nil, p.errf("expected function name")
	}
	p.next()
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := llvm.NewFunction(nameTok.text, ret)
	f.IsDecl = isDecl
	p.values = map[string]llvm.Value{}
	p.blocks = map[string]*llvm.Block{}
	p.fixups = nil

	for !p.isPunct(")") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		var attrs []string
		for p.cur().kind == tIdent || p.cur().kind == tString {
			if p.cur().kind == tString {
				attrs = append(attrs, `"`+p.next().text+`"`)
			} else {
				attrs = append(attrs, p.next().text)
			}
		}
		pn := p.cur()
		if pn.kind != tLocal {
			return nil, p.errf("expected parameter name")
		}
		p.next()
		param := &llvm.Param{Name: pn.text, Ty: ty, Attrs: attrs}
		f.Params = append(f.Params, param)
		p.values[pn.text] = param
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next() // )

	if p.cur().kind == tAttrRef {
		p.funcAttrs[f] = p.next().text
	}
	if isDecl {
		return f, nil
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}

	var blk *llvm.Block
	for !p.isPunct("}") {
		t := p.cur()
		if t.kind == tEOF {
			return nil, p.errf("unexpected EOF in function body")
		}
		// Block label: IDENT ':'
		if t.kind == tIdent && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == ":" {
			blk = p.getOrCreateBlock(f, t.text)
			p.placeBlock(f, blk)
			p.next()
			p.next()
			continue
		}
		if blk == nil {
			return nil, p.errf("instruction before first block label")
		}
		if err := p.parseInstr(f, blk); err != nil {
			return nil, err
		}
	}
	p.next() // }

	// Resolve forward references.
	for _, fx := range p.fixups {
		v, ok := p.values[fx.name]
		if !ok {
			return nil, fmt.Errorf("llvm parser: line %d: undefined value %%%s", fx.line, fx.name)
		}
		fx.in.Args[fx.arg] = v
	}
	return f, nil
}

// getOrCreateBlock returns the named block, creating it detached for
// forward branch references; placeBlock appends it to the function in label
// order so printing round-trips.
func (p *llParser) getOrCreateBlock(f *llvm.Function, name string) *llvm.Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := &llvm.Block{Name: name, Parent: f}
	p.blocks[name] = b
	return b
}

func (p *llParser) placeBlock(f *llvm.Function, b *llvm.Block) {
	for _, x := range f.Blocks {
		if x == b {
			return
		}
	}
	f.Blocks = append(f.Blocks, b)
}

// parseOperand parses a value reference of known type. Unresolved locals
// yield a placeholder patched via fixups (the caller must register).
func (p *llParser) parseOperand(ty *llvm.Type) (llvm.Value, string, error) {
	t := p.cur()
	switch t.kind {
	case tLocal:
		p.next()
		if v, ok := p.values[t.text]; ok {
			return v, "", nil
		}
		return nil, t.text, nil
	case tInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, "", p.errf("bad integer literal")
		}
		if ty != nil && ty.IsFP() {
			return llvm.CF(ty, float64(v)), "", nil
		}
		return llvm.CI(orI64(ty), v), "", nil
	case tFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, "", p.errf("bad float literal")
		}
		return llvm.CF(orF64(ty), v), "", nil
	case tIdent:
		switch t.text {
		case "true":
			p.next()
			return llvm.CI(llvm.I1(), 1), "", nil
		case "false":
			p.next()
			return llvm.CI(llvm.I1(), 0), "", nil
		case "undef":
			p.next()
			return &llvm.Undef{Ty: ty}, "", nil
		}
	}
	return nil, "", p.errf("expected operand")
}

func orI64(t *llvm.Type) *llvm.Type {
	if t == nil {
		return llvm.I64()
	}
	return t
}

func orF64(t *llvm.Type) *llvm.Type {
	if t == nil {
		return llvm.DoubleT()
	}
	return t
}

// typedOperand parses "TYPE VALUE".
func (p *llParser) typedOperand(in *llvm.Instr) (*llvm.Type, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	v, fwd, err := p.parseOperand(ty)
	if err != nil {
		return nil, err
	}
	in.Args = append(in.Args, v)
	if fwd != "" {
		p.fixups = append(p.fixups, fixup{in: in, arg: len(in.Args) - 1, name: fwd, line: p.cur().line})
	}
	return ty, nil
}

func (p *llParser) parseAttrGroup() error {
	p.next() // attributes
	id := p.cur()
	if id.kind != tAttrRef {
		return p.errf("expected attribute group id")
	}
	p.next()
	if err := p.expect("="); err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	attrs := map[string]string{}
	for !p.isPunct("}") {
		k := p.cur()
		if k.kind != tString {
			return p.errf("expected attribute key string")
		}
		p.next()
		if err := p.expect("="); err != nil {
			return err
		}
		v := p.cur()
		if v.kind != tString {
			return p.errf("expected attribute value string")
		}
		p.next()
		attrs[k.text] = v.text
	}
	p.next()
	p.attrGroups[id.text] = attrs
	return nil
}

// parseMDNode parses "!N = distinct !{!N, !"key", i32 V, ...}".
func (p *llParser) parseMDNode() error {
	id := p.next().text // !N
	if err := p.expect("="); err != nil {
		return err
	}
	if p.isIdent("distinct") {
		p.next()
	}
	if !p.isPunct("!{") {
		return p.errf("expected metadata tuple")
	}
	p.next()
	md := &llvm.LoopMD{}
	var key string
	for !p.isPunct("}") {
		t := p.cur()
		switch t.kind {
		case tMDRef:
			p.next() // self reference
		case tMDString:
			key = t.text
			p.next()
		case tIdent: // i1 / i32 typed payloads
			p.next()
			val := p.cur()
			var num int64
			switch val.kind {
			case tInt:
				num, _ = strconv.ParseInt(val.text, 10, 64)
				p.next()
			case tIdent:
				if val.text == "true" {
					num = 1
				}
				p.next()
			default:
				return p.errf("expected metadata payload")
			}
			switch key {
			case "llvm.loop.pipeline.enable":
				md.Pipeline = num != 0
			case "llvm.loop.pipeline.ii":
				md.II = int(num)
			case "llvm.loop.unroll.count":
				md.Unroll = int(num)
			case "llvm.loop.unroll.full":
				if num != 0 {
					md.Unroll = -1
				}
			case "llvm.loop.flatten.enable":
				md.Flatten = num != 0
			case "llvm.loop.tripcount":
				md.TripCount = int(num)
			}
		default:
			return p.errf("unexpected metadata token")
		}
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next()
	p.loopMDs[id] = md
	return nil
}

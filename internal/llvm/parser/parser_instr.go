package parser

import (
	"strconv"

	"repro/internal/llvm"
)

// binaryOps maps .ll mnemonics to opcodes for simple binary instructions.
var binaryOps = map[string]llvm.Opcode{
	"add": llvm.OpAdd, "sub": llvm.OpSub, "mul": llvm.OpMul,
	"sdiv": llvm.OpSDiv, "srem": llvm.OpSRem,
	"and": llvm.OpAnd, "or": llvm.OpOr, "xor": llvm.OpXor,
	"shl": llvm.OpShl, "lshr": llvm.OpLShr, "ashr": llvm.OpAShr,
	"fadd": llvm.OpFAdd, "fsub": llvm.OpFSub, "fmul": llvm.OpFMul, "fdiv": llvm.OpFDiv,
}

var castOps = map[string]llvm.Opcode{
	"zext": llvm.OpZExt, "sext": llvm.OpSExt, "trunc": llvm.OpTrunc,
	"sitofp": llvm.OpSIToFP, "fptosi": llvm.OpFPToSI,
	"fpext": llvm.OpFPExt, "fptrunc": llvm.OpFPTrunc,
	"bitcast": llvm.OpBitcast, "ptrtoint": llvm.OpPtrToInt, "inttoptr": llvm.OpIntToPtr,
}

// parseInstr parses one instruction line into blk.
func (p *llParser) parseInstr(f *llvm.Function, blk *llvm.Block) error {
	var resName string
	if p.cur().kind == tLocal {
		resName = p.next().text
		if err := p.expect("="); err != nil {
			return err
		}
	}
	op := p.cur()
	if op.kind != tIdent {
		return p.errf("expected instruction mnemonic")
	}
	mnemonic := op.text
	p.next()

	register := func(in *llvm.Instr) {
		blk.Append(in)
		if resName != "" {
			in.Name = resName
			p.values[resName] = in
		}
	}

	// operand parses an untyped value of known type with fixup support.
	operand := func(in *llvm.Instr, ty *llvm.Type) error {
		v, fwd, err := p.parseOperand(ty)
		if err != nil {
			return err
		}
		in.Args = append(in.Args, v)
		if fwd != "" {
			p.fixups = append(p.fixups, fixup{in: in, arg: len(in.Args) - 1, name: fwd, line: p.cur().line})
		}
		return nil
	}

	if opc, ok := binaryOps[mnemonic]; ok {
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		in := p.instr(llvm.Instr{Op: opc, Ty: ty})
		if err := operand(in, ty); err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		if err := operand(in, ty); err != nil {
			return err
		}
		register(in)
		return nil
	}

	if opc, ok := castOps[mnemonic]; ok {
		in := p.instr(llvm.Instr{Op: opc})
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		if !p.isIdent("to") {
			return p.errf("expected 'to' in cast")
		}
		p.next()
		to, err := p.parseType()
		if err != nil {
			return err
		}
		in.Ty = to
		register(in)
		return nil
	}

	switch mnemonic {
	case "fneg":
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		in := p.instr(llvm.Instr{Op: llvm.OpFNeg, Ty: ty})
		if err := operand(in, ty); err != nil {
			return err
		}
		register(in)
		return nil

	case "icmp", "fcmp":
		pred := p.cur()
		if pred.kind != tIdent {
			return p.errf("expected predicate")
		}
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		opc := llvm.OpICmp
		if mnemonic == "fcmp" {
			opc = llvm.OpFCmp
		}
		in := p.instr(llvm.Instr{Op: opc, Ty: llvm.I1(), Pred: pred.text})
		if err := operand(in, ty); err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		if err := operand(in, ty); err != nil {
			return err
		}
		register(in)
		return nil

	case "select":
		in := p.instr(llvm.Instr{Op: llvm.OpSelect})
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		ty, err := p.typedOperand(in)
		if err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		in.Ty = ty
		register(in)
		return nil

	case "load":
		elem, err := p.parseType()
		if err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		in := p.instr(llvm.Instr{Op: llvm.OpLoad, Ty: elem, SrcElem: elem})
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		p.maybeAlign(in)
		register(in)
		return nil

	case "store":
		in := p.instr(llvm.Instr{Op: llvm.OpStore})
		ty, err := p.typedOperand(in)
		if err != nil {
			return err
		}
		in.SrcElem = ty
		if err := p.expect(","); err != nil {
			return err
		}
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		p.maybeAlign(in)
		register(in)
		return nil

	case "getelementptr":
		if p.isIdent("inbounds") {
			p.next()
		}
		src, err := p.parseType()
		if err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		in := p.instr(llvm.Instr{Op: llvm.OpGEP, SrcElem: src})
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		for p.isPunct(",") {
			p.next()
			if _, err := p.typedOperand(in); err != nil {
				return err
			}
		}
		in.Ty = llvm.Ptr(gepResultType(src, len(in.Args)-1))
		register(in)
		return nil

	case "alloca":
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		in := p.instr(llvm.Instr{Op: llvm.OpAlloca, Ty: llvm.Ptr(ty), SrcElem: ty})
		if p.isPunct(",") {
			p.next()
			p.maybeAlignBare(in)
		}
		register(in)
		return nil

	case "phi":
		ty, err := p.parseType()
		if err != nil {
			return err
		}
		in := p.instr(llvm.Instr{Op: llvm.OpPhi, Ty: ty})
		for {
			if err := p.expect("["); err != nil {
				return err
			}
			if err := operand(in, ty); err != nil {
				return err
			}
			if err := p.expect(","); err != nil {
				return err
			}
			pb := p.cur()
			if pb.kind != tLocal {
				return p.errf("expected incoming block")
			}
			p.next()
			in.Blocks = append(in.Blocks, p.getOrCreateBlock(f, pb.text))
			if err := p.expect("]"); err != nil {
				return err
			}
			if !p.isPunct(",") {
				break
			}
			p.next()
		}
		register(in)
		return nil

	case "br":
		if p.isIdent("label") {
			p.next()
			dest := p.cur()
			if dest.kind != tLocal {
				return p.errf("expected branch target")
			}
			p.next()
			in := p.instr(llvm.Instr{Op: llvm.OpBr, Blocks: []*llvm.Block{p.getOrCreateBlock(f, dest.text)}})
			p.maybeLoopMD(in)
			register(in)
			return nil
		}
		in := p.instr(llvm.Instr{Op: llvm.OpCondBr})
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if err := p.expect(","); err != nil {
				return err
			}
			if !p.isIdent("label") {
				return p.errf("expected 'label'")
			}
			p.next()
			dest := p.cur()
			if dest.kind != tLocal {
				return p.errf("expected branch target")
			}
			p.next()
			in.Blocks = append(in.Blocks, p.getOrCreateBlock(f, dest.text))
		}
		p.maybeLoopMD(in)
		register(in)
		return nil

	case "ret":
		in := p.instr(llvm.Instr{Op: llvm.OpRet})
		if p.isIdent("void") {
			p.next()
			register(in)
			return nil
		}
		if _, err := p.typedOperand(in); err != nil {
			return err
		}
		register(in)
		return nil

	case "call":
		ret, err := p.parseType()
		if err != nil {
			return err
		}
		callee := p.cur()
		if callee.kind != tGlobal {
			return p.errf("expected callee")
		}
		p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		in := p.instr(llvm.Instr{Op: llvm.OpCall, Ty: ret, Callee: callee.text})
		for !p.isPunct(")") {
			if _, err := p.typedOperand(in); err != nil {
				return err
			}
			if p.isPunct(",") {
				p.next()
			}
		}
		p.next()
		register(in)
		return nil

	case "extractvalue", "insertvalue":
		opc := llvm.OpExtractValue
		if mnemonic == "insertvalue" {
			opc = llvm.OpInsertValue
		}
		in := p.instr(llvm.Instr{Op: opc})
		aggTy, err := p.typedOperand(in)
		if err != nil {
			return err
		}
		if opc == llvm.OpInsertValue {
			if err := p.expect(","); err != nil {
				return err
			}
			if _, err := p.typedOperand(in); err != nil {
				return err
			}
		}
		for p.isPunct(",") {
			p.next()
			idx := p.cur()
			if idx.kind != tInt {
				return p.errf("expected aggregate index")
			}
			p.next()
			v, _ := strconv.Atoi(idx.text)
			in.Indices = append(in.Indices, v)
		}
		if opc == llvm.OpInsertValue {
			in.Ty = aggTy
		} else {
			in.Ty = extractType(aggTy, in.Indices)
		}
		register(in)
		return nil

	case "unreachable":
		register(p.instr(llvm.Instr{Op: llvm.OpUnreachable}))
		return nil
	}
	return p.errf("unknown instruction %q", mnemonic)
}

// maybeAlign consumes an optional ", align N" suffix.
func (p *llParser) maybeAlign(in *llvm.Instr) {
	if p.isPunct(",") && p.toks[p.pos+1].kind == tIdent && p.toks[p.pos+1].text == "align" {
		p.next()
		p.maybeAlignBare(in)
	}
}

func (p *llParser) maybeAlignBare(in *llvm.Instr) {
	if p.isIdent("align") {
		p.next()
		if p.cur().kind == tInt {
			v, _ := strconv.Atoi(p.next().text)
			in.Align = v
		}
	}
}

// maybeLoopMD consumes an optional ", !llvm.loop !N" suffix.
func (p *llParser) maybeLoopMD(in *llvm.Instr) {
	if p.isPunct(",") && p.toks[p.pos+1].kind == tMDRef {
		p.next()
		ref := p.next() // "llvm.loop"
		if ref.text != "llvm.loop" {
			return
		}
		id := p.cur()
		if id.kind == tMDRef {
			p.next()
			p.mdUses = append(p.mdUses, mdUse{in: in, id: id.text})
		}
	}
}

func gepResultType(src *llvm.Type, nIdx int) *llvm.Type {
	t := src
	for i := 1; i < nIdx; i++ {
		switch {
		case t.IsArray():
			t = t.Elem
		case t.IsStruct():
			if len(t.Fields) > 0 {
				t = t.Fields[0]
			}
		}
	}
	return t
}

func extractType(agg *llvm.Type, idxs []int) *llvm.Type {
	t := agg
	for _, i := range idxs {
		switch {
		case t.IsStruct() && i < len(t.Fields):
			t = t.Fields[i]
		case t.IsArray():
			t = t.Elem
		}
	}
	return t
}

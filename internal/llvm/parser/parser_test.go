package parser_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/hls"
	"repro/internal/llvm"
	"repro/internal/llvm/interp"
	"repro/internal/llvm/parser"
	"repro/internal/polybench"
)

// roundTrip asserts print(parse(print(m))) == print(m).
func roundTrip(t *testing.T, m *llvm.Module) *llvm.Module {
	t.Helper()
	first := m.Print()
	m2, err := parser.Parse(first)
	if err != nil {
		t.Fatalf("parse failed: %v\ninput:\n%s", err, first)
	}
	second := m2.Print()
	if first != second {
		t.Fatalf("round trip unstable.\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	return m2
}

func TestRoundTripModernTranslatedIR(t *testing.T) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("MINI")
	_, lm, err := flow.RawFlow(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, lm)
	if m2.Flavor != llvm.FlavorModern {
		t.Error("opaque module should parse as modern flavor")
	}
	// Loop metadata must survive.
	found := false
	for _, f := range m2.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Loop != nil && in.Loop.Pipeline {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("loop metadata lost in round trip")
	}
}

func TestRoundTripAdaptedIR(t *testing.T) {
	for _, name := range []string{"gemm", "atax", "jacobi2d", "k2mm", "trmm"} {
		k := polybench.Get(name)
		s, _ := k.SizeOf("MINI")
		res, err := flow.AdaptorFlow(k.Build(s), k.Name, flow.Directives{Pipeline: true, II: 1},
			hls.DefaultTarget())
		if err != nil {
			t.Fatal(err)
		}
		m2 := roundTrip(t, res.LLVM)
		if m2.Flavor != llvm.FlavorHLS {
			t.Errorf("%s: typed-pointer module should parse as HLS flavor", name)
		}
		// The reparsed module must still pass the gate and synthesize to the
		// same latency.
		rep2, err := hls.Synthesize(m2, name, hls.DefaultTarget())
		if err != nil {
			t.Fatalf("%s: reparsed module failed synthesis: %v", name, err)
		}
		if rep2.LatencyCycles != res.Report.LatencyCycles {
			t.Errorf("%s: latency changed across round trip: %d vs %d",
				name, res.Report.LatencyCycles, rep2.LatencyCycles)
		}
	}
}

func TestParsedModuleExecutes(t *testing.T) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("MINI")
	res, err := flow.AdaptorFlow(k.Build(s), k.Name, flow.Directives{}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, res.LLVM)

	want := k.NewBuffers(s)
	polybench.Init(want)
	k.Ref(s, want)
	bufs := k.NewBuffers(s)
	polybench.Init(bufs)
	mems := make([]*interp.Mem, len(bufs))
	for i, b := range bufs {
		mems[i] = interp.NewMem(int64(len(b)) * 4)
		for j, v := range b {
			mems[i].SetFloat32(j, v)
		}
	}
	if err := flow.Execute(m2, k.Name, mems); err != nil {
		t.Fatal(err)
	}
	got := mems[2].Float32Slice()
	for i := range got {
		if got[i] != want[2][i] {
			t.Fatalf("parsed module computed wrong value at %d: %g vs %g", i, got[i], want[2][i])
		}
	}
}

func TestParseAttrsSurvive(t *testing.T) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("MINI")
	res, err := flow.AdaptorFlow(k.Build(s), k.Name, flow.Directives{}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, res.LLVM)
	f := m2.FindFunc("gemm")
	if f.Attrs["hls.top"] != "1" {
		t.Errorf("function attributes lost: %v", f.Attrs)
	}
	// Param interface annotations survive as attrs.
	joined := strings.Join(f.Params[0].Attrs, " ")
	if !strings.Contains(joined, "ap_memory") {
		t.Errorf("param attributes lost: %v", f.Params[0].Attrs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"garbage", "hello world"},
		{"bad type", "define banana @f() {\nentry:\n  ret void\n}"},
		{"missing block", "define void @f() {\n  ret void\n}"},
		{"undefined value", "define void @f() {\nentry:\n  %x = add i32 %y, 1\n  ret void\n}"},
		{"unterminated", "define void @f() {\nentry:\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := parser.Parse(c.src); err == nil {
				t.Errorf("expected error for %s", c.name)
			}
		})
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `
; hand-written kernel
define void @saxpy([16 x float]* %x, [16 x float]* %y) #0 {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cond = icmp slt i64 %iv, 16
  br i1 %cond, label %body, label %exit
body:
  %px = getelementptr inbounds [16 x float], [16 x float]* %x, i64 0, i64 %iv
  %vx = load float, float* %px
  %scaled = fmul float %vx, 2.000000e+00
  %py = getelementptr inbounds [16 x float], [16 x float]* %y, i64 0, i64 %iv
  %vy = load float, float* %py
  %sum = fadd float %scaled, %vy
  store float %sum, float* %py
  %next = add i64 %iv, 1
  br label %header, !llvm.loop !0
exit:
  ret void
}

attributes #0 = { "hls.top"="1" }
!0 = distinct !{!0, !"llvm.loop.pipeline.enable", i1 true, !"llvm.loop.pipeline.ii", i32 1}
`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if vs := hls.Check(m); len(vs) != 0 {
		t.Fatalf("hand-written kernel should be readable: %v", vs)
	}
	rep, err := hls.Synthesize(m, "saxpy", hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 1 || !rep.Loops[0].Pipelined {
		t.Errorf("saxpy loop should be pipelined: %s", rep)
	}
	if rep.Loops[0].Trip != 16 {
		t.Errorf("trip = %d, want 16", rep.Loops[0].Trip)
	}
	// Execute it too.
	x := interp.NewMem(64)
	y := interp.NewMem(64)
	for i := 0; i < 16; i++ {
		x.SetFloat32(i, float32(i))
		y.SetFloat32(i, 1)
	}
	machine := interp.NewMachine(m)
	if _, _, err := machine.Run(context.Background(), "saxpy", interp.PtrArg(x, 0), interp.PtrArg(y, 0)); err != nil {
		t.Fatal(err)
	}
	got := y.Float32Slice()
	for i := 0; i < 16; i++ {
		if got[i] != float32(2*i)+1 {
			t.Errorf("saxpy[%d] = %g, want %d", i, got[i], 2*i+1)
		}
	}
}

// Guard against misuse of the adaptor on already-adapted IR: adapting twice
// must be harmless (idempotent on the fix counts that matter).
func TestAdaptParsedIdempotent(t *testing.T) {
	k := polybench.Get("gemm")
	s, _ := k.SizeOf("MINI")
	res, err := flow.AdaptorFlow(k.Build(s), k.Name, flow.Directives{}, hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, res.LLVM)
	rep, err := core.Adapt(m2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountByKind(core.FixDescriptor) != 0 {
		t.Error("re-adapting should find no descriptor groups")
	}
	if rep.CountByKind(core.FixMalloc) != 0 {
		t.Error("re-adapting should find no mallocs")
	}
}

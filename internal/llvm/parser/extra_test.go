package parser_test

import (
	"strings"
	"testing"

	"repro/internal/llvm"
	"repro/internal/llvm/parser"
)

func TestParseDeclaration(t *testing.T) {
	src := `
declare double @sqrt(double %x)

define void @f(double* %p) {
entry:
  %v = load double, double* %p
  %r = call double @sqrt(double %v)
  store double %r, double* %p
  ret void
}
`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := m.FindFunc("sqrt")
	if d == nil || !d.IsDecl {
		t.Fatal("declaration not parsed")
	}
	if m.Flavor != llvm.FlavorHLS {
		t.Error("typed pointers should select HLS flavor")
	}
	roundTrip(t, m)
}

func TestParseStructAndAggregateOps(t *testing.T) {
	src := `
define void @agg({ i64, double } %pair, double* %out) {
entry:
  %x = extractvalue { i64, double } %pair, 1
  store double %x, double* %out
  ret void
}
`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc("agg")
	if !f.Params[0].Ty.IsStruct() || len(f.Params[0].Ty.Fields) != 2 {
		t.Errorf("struct param type lost: %s", f.Params[0].Ty)
	}
	var ev *llvm.Instr
	for _, in := range f.Entry().Instrs {
		if in.Op == llvm.OpExtractValue {
			ev = in
		}
	}
	if ev == nil || len(ev.Indices) != 1 || ev.Indices[0] != 1 {
		t.Fatalf("extractvalue indices lost: %+v", ev)
	}
	if ev.Ty.Kind != llvm.KindDouble {
		t.Errorf("extractvalue result type = %s", ev.Ty)
	}
	roundTrip(t, m)
}

func TestParseSelectAndCasts(t *testing.T) {
	src := `
define void @sc(i32* %p, i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  %w = sext i32 %x to i64
  %n = trunc i64 %w to i32
  %fp = sitofp i32 %n to double
  %back = fptosi double %fp to i32
  %sel = select i1 %c, i32 %back, i32 0
  store i32 %sel, i32* %p
  ret void
}
`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m)
	txt := m.Print()
	for _, want := range []string{"select i1", "sext i32", "trunc i64", "sitofp", "fptosi"} {
		if !strings.Contains(txt, want) {
			t.Errorf("missing %q in reprint", want)
		}
	}
}

func TestParseUnreachableAndAlign(t *testing.T) {
	src := `
define void @u(float* %p) {
entry:
  %a = alloca [4 x float], align 16
  %g = getelementptr inbounds [4 x float], [4 x float]* %a, i64 0, i64 0
  %v = load float, float* %g, align 4
  store float %v, float* %p, align 4
  ret void
dead:
  unreachable
}
`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc("u")
	var alloca *llvm.Instr
	for _, in := range f.Entry().Instrs {
		if in.Op == llvm.OpAlloca {
			alloca = in
		}
	}
	if alloca == nil || alloca.Align != 16 {
		t.Errorf("alloca align lost: %+v", alloca)
	}
	roundTrip(t, m)
}

func TestParseNegativeAndScientificFloats(t *testing.T) {
	src := `
define void @consts(double* %p) {
entry:
  %a = fadd double -1.5e+00, 2.5e-01
  %b = fmul double %a, 1.2000000476837158e+00
  store double %b, double* %p
  ret void
}
`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.FindFunc("consts")
	add := f.Entry().Instrs[0]
	c0 := add.Args[0].(*llvm.ConstFloat)
	if c0.Val != -1.5 {
		t.Errorf("negative float constant = %g", c0.Val)
	}
	roundTrip(t, m)
}

func TestParseUnrollMetadata(t *testing.T) {
	src := `
define void @um(i64* %p) {
entry:
  br label %h
h:
  %iv = phi i64 [ 0, %entry ], [ %n, %b ]
  %c = icmp slt i64 %iv, 8
  br i1 %c, label %b, label %e
b:
  store i64 %iv, i64* %p
  %n = add i64 %iv, 1
  br label %h, !llvm.loop !0
e:
  ret void
}

!0 = distinct !{!0, !"llvm.loop.unroll.count", i32 4, !"llvm.loop.flatten.enable", i1 true}
`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range m.FindFunc("um").Blocks {
		for _, in := range b.Instrs {
			if in.Loop != nil {
				found = true
				if in.Loop.Unroll != 4 || !in.Loop.Flatten {
					t.Errorf("metadata payload wrong: %+v", in.Loop)
				}
			}
		}
	}
	if !found {
		t.Error("unroll metadata lost")
	}
	roundTrip(t, m)
}

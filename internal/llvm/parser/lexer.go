// Package parser parses the .ll text produced by llvm.Module.Print (both
// opaque- and typed-pointer spellings), giving the command-line tools a file
// interface and closing the print/parse round trip.
package parser

import (
	"fmt"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tLocal    // %name
	tGlobal   // @name
	tAttrRef  // #0
	tMDRef    // !0
	tMDString // !"..."
	tInt
	tFloat
	tString
	tPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i, n := 0, len(src)
	readName := func() string {
		start := i
		for i < n && (isIdentChar(src[i]) || src[i] == '.') {
			i++
		}
		return src[start:i]
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '%':
			i++
			toks = append(toks, token{tLocal, readName(), line})
		case c == '@':
			i++
			toks = append(toks, token{tGlobal, readName(), line})
		case c == '#':
			i++
			toks = append(toks, token{tAttrRef, readName(), line})
		case c == '!':
			i++
			if i < n && src[i] == '"' {
				i++
				start := i
				for i < n && src[i] != '"' {
					i++
				}
				toks = append(toks, token{tMDString, src[start:i], line})
				i++
				continue
			}
			if i < n && src[i] == '{' {
				toks = append(toks, token{tPunct, "!{", line})
				i++
				continue
			}
			toks = append(toks, token{tMDRef, readName(), line})
		case c == '"':
			i++
			start := i
			for i < n && src[i] != '"' {
				i++
			}
			toks = append(toks, token{tString, src[start:i], line})
			i++
		case isLetter(c):
			toks = append(toks, token{tIdent, readName(), line})
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(src[i+1])):
			start := i
			if c == '-' {
				i++
			}
			isF := false
			for i < n {
				ch := src[i]
				if isDigit(ch) || ch == '.' {
					if ch == '.' {
						isF = true
					}
					i++
					continue
				}
				if (ch == 'e' || ch == 'E') && i+1 < n &&
					(isDigit(src[i+1]) || src[i+1] == '+' || src[i+1] == '-') {
					isF = true
					i += 2
					continue
				}
				break
			}
			k := tInt
			if isF {
				k = tFloat
			}
			toks = append(toks, token{k, src[start:i], line})
		default:
			switch c {
			case '(', ')', '{', '}', '[', ']', '<', '>', ',', '=', '*', ':':
				toks = append(toks, token{tPunct, string(c), line})
				i++
			default:
				return nil, fmt.Errorf("llvm parser: line %d: unexpected %q", line, string(c))
			}
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentChar(c byte) bool { return isLetter(c) || isDigit(c) }

package llvm

import (
	"fmt"
	"sort"
	"strings"
)

// Print renders the module as .ll text. FlavorHLS modules print typed
// pointers; modern modules print opaque pointers.
func (m *Module) Print() string {
	opaque := m.Flavor != FlavorHLS
	p := &llPrinter{opaque: opaque}
	var sb strings.Builder
	fmt.Fprintf(&sb, "; ModuleID = '%s'\n", m.Name)
	fmt.Fprintf(&sb, "; Flavor: %s\n\n", flavorOrModern(m.Flavor))
	for _, f := range m.Funcs {
		p.printFunc(&sb, f)
		sb.WriteString("\n")
	}
	p.printAttrGroups(&sb)
	p.printMetadata(&sb)
	return sb.String()
}

func flavorOrModern(f string) string {
	if f == "" {
		return FlavorModern
	}
	return f
}

type llPrinter struct {
	opaque bool
	// attribute groups: rendered dict -> id
	attrGroups []string
	// loop metadata nodes in emission order
	loopMDs []*LoopMD
}

func (p *llPrinter) ty(t *Type) string {
	if t == nil {
		return "void"
	}
	return t.str(p.opaque)
}

func (p *llPrinter) printFunc(sb *strings.Builder, f *Function) {
	kw := "define"
	if f.IsDecl {
		kw = "declare"
	}
	fmt.Fprintf(sb, "%s %s @%s(", kw, p.ty(f.Ret), f.Name)
	for i, a := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.ty(a.Ty))
		for _, at := range a.Attrs {
			sb.WriteString(" " + at)
		}
		sb.WriteString(" %" + a.Name)
	}
	sb.WriteString(")")
	if len(f.Attrs) > 0 {
		id := p.attrGroupID(f.Attrs)
		fmt.Fprintf(sb, " #%d", id)
	}
	if f.IsDecl {
		sb.WriteString("\n")
		return
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  " + p.instr(in) + "\n")
		}
	}
	sb.WriteString("}\n")
}

func (p *llPrinter) attrGroupID(attrs map[string]string) int {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%q=%q", k, attrs[k])
	}
	dict := "{ " + strings.Join(parts, " ") + " }"
	for i, g := range p.attrGroups {
		if g == dict {
			return i
		}
	}
	p.attrGroups = append(p.attrGroups, dict)
	return len(p.attrGroups) - 1
}

func (p *llPrinter) printAttrGroups(sb *strings.Builder) {
	for i, g := range p.attrGroups {
		fmt.Fprintf(sb, "attributes #%d = %s\n", i, g)
	}
}

func (p *llPrinter) loopMDID(md *LoopMD) int {
	p.loopMDs = append(p.loopMDs, md)
	return len(p.loopMDs) - 1
}

func (p *llPrinter) printMetadata(sb *strings.Builder) {
	for i, md := range p.loopMDs {
		var parts []string
		parts = append(parts, fmt.Sprintf("!%d", i))
		if md.Pipeline {
			parts = append(parts, `!"llvm.loop.pipeline.enable", i1 true`)
			if md.II > 0 {
				parts = append(parts, fmt.Sprintf(`!"llvm.loop.pipeline.ii", i32 %d`, md.II))
			}
		}
		if md.Unroll == -1 {
			parts = append(parts, `!"llvm.loop.unroll.full", i1 true`)
		} else if md.Unroll > 0 {
			parts = append(parts, fmt.Sprintf(`!"llvm.loop.unroll.count", i32 %d`, md.Unroll))
		}
		if md.Flatten {
			parts = append(parts, `!"llvm.loop.flatten.enable", i1 true`)
		}
		if md.TripCount > 0 {
			parts = append(parts, fmt.Sprintf(`!"llvm.loop.tripcount", i32 %d`, md.TripCount))
		}
		fmt.Fprintf(sb, "!%d = distinct !{%s}\n", i, strings.Join(parts, ", "))
	}
}

// val renders an operand with its type prefix.
func (p *llPrinter) val(v Value) string {
	return p.ty(v.Type()) + " " + v.Ident()
}

func (p *llPrinter) instr(in *Instr) string {
	res := ""
	if in.HasResult() && in.Op != OpStore {
		res = "%" + in.Name + " = "
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv:
		return fmt.Sprintf("%s%s %s %s, %s", res, in.Op, p.ty(in.Ty),
			in.Args[0].Ident(), in.Args[1].Ident())
	case OpFNeg:
		return fmt.Sprintf("%s%s %s %s", res, in.Op, p.ty(in.Ty), in.Args[0].Ident())
	case OpICmp, OpFCmp:
		return fmt.Sprintf("%s%s %s %s %s, %s", res, in.Op, in.Pred,
			p.ty(in.Args[0].Type()), in.Args[0].Ident(), in.Args[1].Ident())
	case OpSelect:
		return fmt.Sprintf("%sselect %s, %s, %s", res, p.val(in.Args[0]),
			p.val(in.Args[1]), p.val(in.Args[2]))
	case OpZExt, OpSExt, OpTrunc, OpSIToFP, OpFPToSI, OpFPExt, OpFPTrunc,
		OpBitcast, OpPtrToInt, OpIntToPtr:
		return fmt.Sprintf("%s%s %s to %s", res, in.Op, p.val(in.Args[0]), p.ty(in.Ty))
	case OpLoad:
		s := fmt.Sprintf("%sload %s, %s", res, p.ty(in.SrcElem), p.val(in.Args[0]))
		if in.Align > 0 {
			s += fmt.Sprintf(", align %d", in.Align)
		}
		return s
	case OpStore:
		s := fmt.Sprintf("store %s, %s", p.val(in.Args[0]), p.val(in.Args[1]))
		if in.Align > 0 {
			s += fmt.Sprintf(", align %d", in.Align)
		}
		return s
	case OpGEP:
		parts := []string{p.ty(in.SrcElem), p.val(in.Args[0])}
		for _, a := range in.Args[1:] {
			parts = append(parts, p.val(a))
		}
		return fmt.Sprintf("%sgetelementptr inbounds %s", res, strings.Join(parts, ", "))
	case OpAlloca:
		s := fmt.Sprintf("%salloca %s", res, p.ty(in.SrcElem))
		if in.Align > 0 {
			s += fmt.Sprintf(", align %d", in.Align)
		}
		return s
	case OpPhi:
		var inc []string
		for i, a := range in.Args {
			inc = append(inc, fmt.Sprintf("[ %s, %%%s ]", a.Ident(), in.Blocks[i].Name))
		}
		return fmt.Sprintf("%sphi %s %s", res, p.ty(in.Ty), strings.Join(inc, ", "))
	case OpBr:
		s := fmt.Sprintf("br label %%%s", in.Blocks[0].Name)
		if in.Loop != nil {
			s += fmt.Sprintf(", !llvm.loop !%d", p.loopMDID(in.Loop))
		}
		return s
	case OpCondBr:
		s := fmt.Sprintf("br %s, label %%%s, label %%%s", p.val(in.Args[0]),
			in.Blocks[0].Name, in.Blocks[1].Name)
		if in.Loop != nil {
			s += fmt.Sprintf(", !llvm.loop !%d", p.loopMDID(in.Loop))
		}
		return s
	case OpRet:
		if len(in.Args) == 0 {
			return "ret void"
		}
		return "ret " + p.val(in.Args[0])
	case OpCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, p.val(a))
		}
		return fmt.Sprintf("%scall %s @%s(%s)", res, p.ty(in.Ty), in.Callee,
			strings.Join(args, ", "))
	case OpExtractValue:
		idx := make([]string, len(in.Indices))
		for i, x := range in.Indices {
			idx[i] = fmt.Sprintf("%d", x)
		}
		return fmt.Sprintf("%sextractvalue %s, %s", res, p.val(in.Args[0]),
			strings.Join(idx, ", "))
	case OpInsertValue:
		idx := make([]string, len(in.Indices))
		for i, x := range in.Indices {
			idx[i] = fmt.Sprintf("%d", x)
		}
		return fmt.Sprintf("%sinsertvalue %s, %s, %s", res, p.val(in.Args[0]),
			p.val(in.Args[1]), strings.Join(idx, ", "))
	case OpUnreachable:
		return "unreachable"
	}
	return fmt.Sprintf("; <unknown op %s>", in.Op)
}

package analysis

import (
	"testing"

	"repro/internal/llvm"
)

// buildNestedLoops builds:
//
//	entry -> oh -> ob -> ih -> ib -> ih(latch) ; ih->oe ; oe -> oh(latch) ; oh -> exit
//
// a 2-deep nest with canonical phi/icmp/add shape (outer trip 4, inner 8).
func buildNestedLoops(t *testing.T) (*llvm.Function, map[string]*llvm.Block) {
	t.Helper()
	f := llvm.NewFunction("nest", llvm.Void())
	blocks := map[string]*llvm.Block{}
	for _, n := range []string{"entry", "oh", "ob", "ih", "ib", "oe", "exit"} {
		blocks[n] = f.AddBlock(n)
	}
	b := llvm.NewBuilder(f)

	b.SetBlock(blocks["entry"])
	b.Br(blocks["oh"])

	b.SetBlock(blocks["oh"])
	oiv := b.Phi(llvm.I64())
	ocond := b.ICmp("slt", oiv, llvm.CI(llvm.I64(), 4))
	b.CondBr(ocond, blocks["ob"], blocks["exit"])

	b.SetBlock(blocks["ob"])
	b.Br(blocks["ih"])

	b.SetBlock(blocks["ih"])
	iiv := b.Phi(llvm.I64())
	icond := b.ICmp("slt", iiv, llvm.CI(llvm.I64(), 8))
	b.CondBr(icond, blocks["ib"], blocks["oe"])

	b.SetBlock(blocks["ib"])
	inext := b.Add(iiv, llvm.CI(llvm.I64(), 1))
	innerLatch := b.Br(blocks["ih"])
	innerLatch.Loop = &llvm.LoopMD{Pipeline: true, II: 2}

	b.SetBlock(blocks["oe"])
	onext := b.Add(oiv, llvm.CI(llvm.I64(), 1))
	b.Br(blocks["oh"])

	b.SetBlock(blocks["exit"])
	b.Ret(nil)

	oiv.AddIncoming(llvm.CI(llvm.I64(), 0), blocks["entry"])
	oiv.AddIncoming(onext, blocks["oe"])
	iiv.AddIncoming(llvm.CI(llvm.I64(), 0), blocks["ob"])
	iiv.AddIncoming(inext, blocks["ib"])

	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return f, blocks
}

func TestCFGOrderAndPreds(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	if len(cfg.Order) != 7 {
		t.Fatalf("RPO should cover 7 blocks, got %d", len(cfg.Order))
	}
	if cfg.Order[0] != blocks["entry"] {
		t.Error("RPO must start at entry")
	}
	if got := len(cfg.Preds[blocks["oh"]]); got != 2 {
		t.Errorf("outer header should have 2 preds, got %d", got)
	}
	if got := len(cfg.Preds[blocks["ih"]]); got != 2 {
		t.Errorf("inner header should have 2 preds, got %d", got)
	}
	if !cfg.Reachable(blocks["exit"]) {
		t.Error("exit must be reachable")
	}
}

func TestCFGUnreachableBlock(t *testing.T) {
	f, _ := buildNestedLoops(t)
	orphan := f.AddBlock("orphan")
	orphan.Append(&llvm.Instr{Op: llvm.OpRet})
	cfg := NewCFG(f)
	if cfg.Reachable(orphan) {
		t.Error("orphan block should be unreachable")
	}
}

func TestDominators(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	dt := NewDomTree(cfg)
	cases := []struct {
		a, b string
		want bool
	}{
		{"entry", "exit", true},
		{"oh", "ih", true},
		{"oh", "exit", true},
		{"ih", "ib", true},
		{"ib", "oe", false},
		{"oe", "oh", false}, // back edge source does not dominate header
		{"ih", "ih", true},  // reflexive
	}
	for _, c := range cases {
		if got := dt.Dominates(blocks[c.a], blocks[c.b]); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if dt.IDom(blocks["ih"]) != blocks["ob"] {
		t.Errorf("idom(ih) = %v", dt.IDom(blocks["ih"]).Name)
	}
}

func TestLoopDetection(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	dt := NewDomTree(cfg)
	li := FindLoops(cfg, dt)
	if len(li.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(li.Loops))
	}
	outer := li.ByHeader[blocks["oh"]]
	inner := li.ByHeader[blocks["ih"]]
	if outer == nil || inner == nil {
		t.Fatal("loops not keyed by header")
	}
	if inner.Parent != outer {
		t.Error("inner loop must nest inside outer")
	}
	if outer.Depth() != 1 || inner.Depth() != 2 {
		t.Errorf("depths: outer=%d inner=%d", outer.Depth(), inner.Depth())
	}
	if !inner.IsInnermost() || outer.IsInnermost() {
		t.Error("innermost classification wrong")
	}
	if !outer.Contains(blocks["ib"]) {
		t.Error("outer loop must contain the inner body")
	}
	if inner.Contains(blocks["oe"]) {
		t.Error("inner loop must not contain the outer latch")
	}
	// Loop metadata from the latch.
	if inner.MD == nil || !inner.MD.Pipeline || inner.MD.II != 2 {
		t.Errorf("inner loop metadata lost: %+v", inner.MD)
	}
	// Ordering: outer before inner.
	if li.Loops[0] != outer || li.Loops[1] != inner {
		t.Error("loops must be ordered outer-first")
	}
}

func TestTripCount(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	dt := NewDomTree(cfg)
	li := FindLoops(cfg, dt)
	if tc, ok := TripCount(li.ByHeader[blocks["oh"]]); !ok || tc != 4 {
		t.Errorf("outer trip = %d ok=%v, want 4", tc, ok)
	}
	if tc, ok := TripCount(li.ByHeader[blocks["ih"]]); !ok || tc != 8 {
		t.Errorf("inner trip = %d ok=%v, want 8", tc, ok)
	}
}

func TestTripCountNonCanonical(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	dt := NewDomTree(cfg)
	li := FindLoops(cfg, dt)
	// Make the inner bound non-constant: compare against the outer IV.
	ih := blocks["ih"]
	var cmp *llvm.Instr
	for _, in := range ih.Instrs {
		if in.Op == llvm.OpICmp {
			cmp = in
		}
	}
	cmp.Args[1] = blocks["oh"].Instrs[0] // outer phi
	if _, ok := TripCount(li.ByHeader[ih]); ok {
		t.Error("variable-bound loop should not report a constant trip count")
	}
}

// buildTwoLatchLoop builds a loop whose header has two back edges:
//
//	entry -> h ; h -> body|exit ; body -> l1|l2 ; l1 -> h ; l2 -> h
func buildTwoLatchLoop(t *testing.T) (*llvm.Function, map[string]*llvm.Block) {
	t.Helper()
	f := llvm.NewFunction("twolatch", llvm.Void())
	blocks := map[string]*llvm.Block{}
	for _, n := range []string{"entry", "h", "body", "l1", "l2", "exit"} {
		blocks[n] = f.AddBlock(n)
	}
	b := llvm.NewBuilder(f)

	b.SetBlock(blocks["entry"])
	b.Br(blocks["h"])

	b.SetBlock(blocks["h"])
	iv := b.Phi(llvm.I64())
	cond := b.ICmp("slt", iv, llvm.CI(llvm.I64(), 10))
	b.CondBr(cond, blocks["body"], blocks["exit"])

	b.SetBlock(blocks["body"])
	next := b.Add(iv, llvm.CI(llvm.I64(), 1))
	parity := b.ICmp("slt", next, llvm.CI(llvm.I64(), 5))
	b.CondBr(parity, blocks["l1"], blocks["l2"])

	b.SetBlock(blocks["l1"])
	t1 := b.Br(blocks["h"])
	t1.Loop = &llvm.LoopMD{Pipeline: true, II: 1}

	b.SetBlock(blocks["l2"])
	t2 := b.Br(blocks["h"])
	t2.Loop = &llvm.LoopMD{Unroll: 2}

	b.SetBlock(blocks["exit"])
	b.Ret(nil)

	iv.AddIncoming(llvm.CI(llvm.I64(), 0), blocks["entry"])
	iv.AddIncoming(next, blocks["l1"])
	iv.AddIncoming(next, blocks["l2"])

	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return f, blocks
}

func TestFindLoopsMultiLatch(t *testing.T) {
	f, blocks := buildTwoLatchLoop(t)
	cfg := NewCFG(f)
	dt := NewDomTree(cfg)
	li := FindLoops(cfg, dt)
	if len(li.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(li.Loops))
	}
	l := li.ByHeader[blocks["h"]]
	if l == nil {
		t.Fatal("loop not keyed by header")
	}
	if len(l.Latches) != 2 {
		t.Fatalf("want 2 latches, got %d", len(l.Latches))
	}
	seen := map[*llvm.Block]bool{l.Latches[0]: true, l.Latches[1]: true}
	if !seen[blocks["l1"]] || !seen[blocks["l2"]] {
		t.Errorf("latches = %v, want l1 and l2", []string{l.Latches[0].Name, l.Latches[1].Name})
	}
	if l.Latch != nil {
		t.Errorf("multi-latch loop must expose Latch=nil, got %s", l.Latch.Name)
	}
	if l.MD != nil {
		t.Errorf("conflicting latch metadata must yield MD=nil, got %+v", l.MD)
	}
	if !l.Contains(blocks["l1"]) || !l.Contains(blocks["l2"]) || !l.Contains(blocks["body"]) {
		t.Error("loop body must include both latches and the branch block")
	}
}

func TestFindLoopsSingleLatchStillExposed(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	dt := NewDomTree(cfg)
	li := FindLoops(cfg, dt)
	inner := li.ByHeader[blocks["ih"]]
	if inner.Latch != blocks["ib"] {
		t.Errorf("single-latch loop must keep Latch, got %v", inner.Latch)
	}
	if len(inner.Latches) != 1 || inner.Latches[0] != blocks["ib"] {
		t.Errorf("Latches must mirror the unique latch, got %v", inner.Latches)
	}
}

// buildCountedLoop builds a single canonical loop with the given compare
// predicate, start, step, and bound constants.
func buildCountedLoop(t *testing.T, pred string, start, step, bound int64) (*llvm.Function, *Loop) {
	t.Helper()
	f := llvm.NewFunction("counted", llvm.Void())
	entry := f.AddBlock("entry")
	h := f.AddBlock("h")
	body := f.AddBlock("body")
	exit := f.AddBlock("exit")
	b := llvm.NewBuilder(f)

	b.SetBlock(entry)
	b.Br(h)

	b.SetBlock(h)
	iv := b.Phi(llvm.I64())
	cond := b.ICmp(pred, iv, llvm.CI(llvm.I64(), bound))
	b.CondBr(cond, body, exit)

	b.SetBlock(body)
	next := b.Add(iv, llvm.CI(llvm.I64(), step))
	b.Br(h)

	b.SetBlock(exit)
	b.Ret(nil)

	iv.AddIncoming(llvm.CI(llvm.I64(), start), entry)
	iv.AddIncoming(next, body)

	if err := f.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	cfg := NewCFG(f)
	li := FindLoops(cfg, NewDomTree(cfg))
	if len(li.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(li.Loops))
	}
	return f, li.Loops[0]
}

func TestTripCountPredicates(t *testing.T) {
	cases := []struct {
		pred               string
		start, step, bound int64
		want               int64
		ok                 bool
	}{
		{"slt", 0, 1, 8, 8, true},
		{"sle", 0, 1, 8, 9, true},
		{"ult", 0, 1, 8, 8, true},
		{"ule", 0, 1, 8, 9, true},
		{"slt", 2, 3, 11, 3, true},    // 2,5,8 < 11
		{"sle", 2, 3, 11, 4, true},    // 2,5,8,11 <= 11
		{"ult", 4, 2, 4, 0, true},     // bound == start: empty
		{"sle", 5, 1, 4, 0, true},     // bound < start: empty
		{"sgt", 8, 1, 0, 0, false},    // down-counting guard over an up-counting step
		{"slt", 0, -1, 8, 0, false},   // up-counting guard over a down-counting step
		{"ult", -1, 1, 8, 0, false},   // unsigned with negative start
		{"ule", 0, 1, -1, 0, false},   // unsigned with negative bound
		{"sgt", 8, -1, 0, 8, true},    // 8,7,...,1 > 0
		{"sge", 8, -1, 0, 9, true},    // 8,7,...,0 >= 0
		{"sgt", 11, -3, 2, 3, true},   // 11,8,5 > 2
		{"sge", 11, -3, 2, 4, true},   // 11,8,5,2 >= 2
		{"sgt", 0, -1, 8, 0, true},    // start below bound: empty
		{"sge", 3, -2, 4, 0, true},    // start below bound: empty
		{"sgt", -2, -4, -15, 4, true}, // -2,-6,-10,-14 > -15
	}
	for _, c := range cases {
		_, l := buildCountedLoop(t, c.pred, c.start, c.step, c.bound)
		got, ok := TripCount(l)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("TripCount(%s start=%d step=%d bound=%d) = %d,%v want %d,%v",
				c.pred, c.start, c.step, c.bound, got, ok, c.want, c.ok)
		}
	}
}

func TestInductionVarLast(t *testing.T) {
	_, l := buildCountedLoop(t, "slt", 0, 2, 9)
	iv, ok := InductionVar(l)
	if !ok {
		t.Fatal("canonical loop must be recognized")
	}
	if iv.Trip() != 5 { // 0,2,4,6,8
		t.Errorf("trip = %d, want 5", iv.Trip())
	}
	if iv.Last() != 8 {
		t.Errorf("last = %d, want 8", iv.Last())
	}
	if iv.Phi != l.Header.Instrs[0] {
		t.Error("IndVar.Phi must be the header phi")
	}
}

func TestInductionVarLastNegativeStep(t *testing.T) {
	_, l := buildCountedLoop(t, "sgt", 9, -2, 0)
	iv, ok := InductionVar(l)
	if !ok {
		t.Fatal("down-counting loop must be recognized")
	}
	if iv.Step != -2 || iv.Pred != "sgt" {
		t.Errorf("iv = %+v, want step -2 pred sgt", iv)
	}
	if iv.Trip() != 5 { // 9,7,5,3,1
		t.Errorf("trip = %d, want 5", iv.Trip())
	}
	if iv.Last() != 1 { // smallest value for a negative step
		t.Errorf("last = %d, want 1", iv.Last())
	}
}

func TestTripCountZero(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	dt := NewDomTree(cfg)
	li := FindLoops(cfg, dt)
	var cmp *llvm.Instr
	for _, in := range blocks["ih"].Instrs {
		if in.Op == llvm.OpICmp {
			cmp = in
		}
	}
	cmp.Args[1] = llvm.CI(llvm.I64(), 0) // bound below start
	if tc, ok := TripCount(li.ByHeader[blocks["ih"]]); !ok || tc != 0 {
		t.Errorf("empty loop trip = %d ok=%v, want 0", tc, ok)
	}
	_ = f
}

func TestNestOf(t *testing.T) {
	f, blocks := buildNestedLoops(t)
	cfg := NewCFG(f)
	li := FindLoops(cfg, NewDomTree(cfg))
	outer := li.ByHeader[blocks["oh"]]
	inner := li.ByHeader[blocks["ih"]]
	cases := []struct {
		block string
		want  []*Loop
	}{
		{"entry", nil},
		{"exit", nil},
		{"oh", []*Loop{outer}},
		{"oe", []*Loop{outer}},
		{"ih", []*Loop{outer, inner}},
		{"ib", []*Loop{outer, inner}},
	}
	for _, c := range cases {
		got := li.NestOf(blocks[c.block])
		if len(got) != len(c.want) {
			t.Errorf("NestOf(%s): got %d levels, want %d", c.block, len(got), len(c.want))
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("NestOf(%s)[%d]: wrong loop (want outermost-first)", c.block, i)
			}
		}
	}
}

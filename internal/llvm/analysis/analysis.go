// Package analysis provides CFG utilities over the llvm package: predecessor
// maps, reverse postorder, dominator trees, natural-loop detection, and a
// minimal induction-variable scalar evolution, as required by mem2reg, the
// adaptor, and the HLS scheduler.
package analysis

import (
	"repro/internal/llvm"
)

// CFG caches predecessor/successor relations of a function.
type CFG struct {
	F     *llvm.Function
	Preds map[*llvm.Block][]*llvm.Block
	Order []*llvm.Block // reverse postorder from entry
	index map[*llvm.Block]int
}

// NewCFG computes the CFG for f.
func NewCFG(f *llvm.Function) *CFG {
	c := &CFG{F: f, Preds: map[*llvm.Block][]*llvm.Block{}, index: map[*llvm.Block]int{}}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			c.Preds[s] = append(c.Preds[s], b)
		}
	}
	// Reverse postorder via iterative DFS.
	seen := map[*llvm.Block]bool{}
	var post []*llvm.Block
	type frame struct {
		b *llvm.Block
		i int
	}
	if f.Entry() != nil {
		stack := []frame{{f.Entry(), 0}}
		seen[f.Entry()] = true
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			succs := top.b.Succs()
			if top.i < len(succs) {
				s := succs[top.i]
				top.i++
				if !seen[s] {
					seen[s] = true
					stack = append(stack, frame{s, 0})
				}
				continue
			}
			post = append(post, top.b)
			stack = stack[:len(stack)-1]
		}
	}
	for i := len(post) - 1; i >= 0; i-- {
		c.index[post[i]] = len(c.Order)
		c.Order = append(c.Order, post[i])
	}
	return c
}

// Reachable reports whether b is reachable from entry.
func (c *CFG) Reachable(b *llvm.Block) bool {
	_, ok := c.index[b]
	return ok
}

// DomTree is a dominator tree (Cooper-Harvey-Kennedy).
type DomTree struct {
	cfg  *CFG
	idom map[*llvm.Block]*llvm.Block
}

// NewDomTree computes the dominator tree for f's CFG.
func NewDomTree(c *CFG) *DomTree {
	d := &DomTree{cfg: c, idom: map[*llvm.Block]*llvm.Block{}}
	if len(c.Order) == 0 {
		return d
	}
	entry := c.Order[0]
	d.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range c.Order[1:] {
			var newIdom *llvm.Block
			for _, p := range c.Preds[b] {
				if _, ok := d.idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
					continue
				}
				newIdom = d.intersect(p, newIdom)
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b *llvm.Block) *llvm.Block {
	for a != b {
		for d.cfg.index[a] > d.cfg.index[b] {
			a = d.idom[a]
		}
		for d.cfg.index[b] > d.cfg.index[a] {
			b = d.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator (entry's idom is itself).
func (d *DomTree) IDom(b *llvm.Block) *llvm.Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (d *DomTree) Dominates(a, b *llvm.Block) bool {
	for {
		if a == b {
			return true
		}
		i, ok := d.idom[b]
		if !ok || i == b {
			return false
		}
		b = i
	}
}

// Loop is a natural loop.
type Loop struct {
	Header *llvm.Block
	// Latch is the unique back-edge source, or nil when the header has
	// several back edges (consult Latches in that case).
	Latch *llvm.Block
	// Latches lists every back-edge source, in reverse postorder.
	Latches []*llvm.Block
	Blocks  map[*llvm.Block]bool
	Parent  *Loop
	// Children are loops nested directly inside this one.
	Children []*Loop
	// MD is the loop metadata found on the latch terminators. When several
	// latches carry distinct metadata the loop's intent is ambiguous and MD
	// is nil (the hls-directives lint diagnoses this).
	MD *llvm.LoopMD
}

// Depth returns the nesting depth (outermost = 1).
func (l *Loop) Depth() int {
	d := 1
	for p := l.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *llvm.Block) bool { return l.Blocks[b] }

// IsInnermost reports whether the loop has no children.
func (l *Loop) IsInnermost() bool { return len(l.Children) == 0 }

// LoopInfo is the set of natural loops of a function.
type LoopInfo struct {
	Loops []*Loop // all loops, outer before inner
	// ByHeader maps header blocks to their loop.
	ByHeader map[*llvm.Block]*Loop
}

// FindLoops detects natural loops via back edges (latch -> header where
// header dominates latch) and nests them by block containment.
func FindLoops(c *CFG, d *DomTree) *LoopInfo {
	li := &LoopInfo{ByHeader: map[*llvm.Block]*Loop{}}
	for _, b := range c.Order {
		for _, s := range b.Succs() {
			if d.Dominates(s, b) {
				// back edge b -> s
				l := li.ByHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*llvm.Block]bool{s: true}}
					li.ByHeader[s] = l
					li.Loops = append(li.Loops, l)
				}
				l.Latches = append(l.Latches, b)
				// Collect body: reverse reachability from latch to header.
				var stack []*llvm.Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range c.Preds[x] {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Finalize latch/metadata views. A unique latch is exposed as Latch; a
	// multi-latch loop keeps Latch nil so callers cannot silently act on an
	// arbitrary back edge. Metadata survives only when exactly one latch
	// terminator carries it (several identical-intent latches would need a
	// merge policy; the lint layer flags them instead).
	for _, l := range li.Loops {
		if len(l.Latches) == 1 {
			l.Latch = l.Latches[0]
		}
		var md *llvm.LoopMD
		ambiguous := false
		for _, latch := range l.Latches {
			if t := latch.Terminator(); t != nil && t.Loop != nil {
				if md != nil && md != t.Loop {
					ambiguous = true
				}
				md = t.Loop
			}
		}
		if !ambiguous {
			l.MD = md
		}
	}
	// Establish nesting: loop A is a child of the smallest loop strictly
	// containing its header.
	for _, l := range li.Loops {
		var best *Loop
		for _, o := range li.Loops {
			if o == l || !o.Blocks[l.Header] {
				continue
			}
			if best == nil || len(o.Blocks) < len(best.Blocks) {
				best = o
			}
		}
		if best != nil {
			l.Parent = best
			best.Children = append(best.Children, l)
		}
	}
	// Order outer loops before inner (stable by depth).
	ordered := make([]*Loop, 0, len(li.Loops))
	var emit func(ls []*Loop)
	emit = func(ls []*Loop) {
		for _, l := range ls {
			ordered = append(ordered, l)
			emit(l.Children)
		}
	}
	var tops []*Loop
	for _, l := range li.Loops {
		if l.Parent == nil {
			tops = append(tops, l)
		}
	}
	emit(tops)
	li.Loops = ordered
	return li
}

// NestOf returns the loops enclosing b, outermost first (empty when b is not
// inside any loop).
func (li *LoopInfo) NestOf(b *llvm.Block) []*Loop {
	var innermost *Loop
	for _, l := range li.Loops {
		if !l.Blocks[b] {
			continue
		}
		if innermost == nil || len(l.Blocks) < len(innermost.Blocks) {
			innermost = l
		}
	}
	if innermost == nil {
		return nil
	}
	var nest []*Loop
	for l := innermost; l != nil; l = l.Parent {
		nest = append(nest, l)
	}
	for i, j := 0, len(nest)-1; i < j; i, j = i+1, j-1 {
		nest[i], nest[j] = nest[j], nest[i]
	}
	return nest
}

// IndVar describes a loop's canonical induction variable: an integer phi in
// the header starting at Start, stepping by Step each iteration, and guarded
// by `icmp Pred iv, Bound` on the header's conditional branch.
type IndVar struct {
	Phi   *llvm.Instr
	Start int64
	Step  int64 // nonzero; negative for down-counting loops
	Bound int64
	Pred  string // slt, sle, ult, ule (Step > 0) or sgt, sge (Step < 0)
}

// Trip returns the number of iterations the guard admits (0 when the bound
// excludes even the start value).
func (iv IndVar) Trip() int64 {
	switch iv.Pred {
	case "slt", "ult":
		if iv.Bound <= iv.Start {
			return 0
		}
		return (iv.Bound - iv.Start + iv.Step - 1) / iv.Step
	case "sle", "ule":
		if iv.Bound < iv.Start {
			return 0
		}
		return (iv.Bound-iv.Start)/iv.Step + 1
	case "sgt":
		if iv.Start <= iv.Bound {
			return 0
		}
		return (iv.Start - iv.Bound + (-iv.Step) - 1) / (-iv.Step)
	case "sge":
		if iv.Start < iv.Bound {
			return 0
		}
		return (iv.Start-iv.Bound)/(-iv.Step) + 1
	}
	return 0
}

// Last returns the final value the induction variable takes inside the loop
// body: the largest for positive steps, the smallest for negative ones. Only
// meaningful when Trip() >= 1.
func (iv IndVar) Last() int64 {
	return iv.Start + (iv.Trip()-1)*iv.Step
}

// InductionVar recognizes the canonical phi/icmp/add induction variable of
// a loop, with ok=false when the shape is not recognized.
//
// Recognized shape (as produced by both flows; instcombine-lite may rewrite
// the exit compare to sle, and unsigned forms appear after retyping):
//
//	header: %iv = phi [ C0, pre ], [ %next, latch ]
//	        %c = icmp {slt|sle|ult|ule|sgt|sge} %iv, C1
//	        br %c, body, exit
//	...     %next = add %iv, C2
//
// The signed greater-than forms are the down-counting loops (C2 < 0); the
// less-than forms require C2 > 0.
func InductionVar(l *Loop) (IndVar, bool) {
	var cmp *llvm.Instr
	for _, in := range l.Header.Instrs {
		if in.Op == llvm.OpICmp {
			cmp = in
		}
	}
	term := l.Header.Terminator()
	if cmp == nil || term == nil || term.Op != llvm.OpCondBr || term.Args[0] != cmp {
		return IndVar{}, false
	}
	// The induction phi is the compare's left operand.
	phi, ok := cmp.Args[0].(*llvm.Instr)
	if !ok || phi.Op != llvm.OpPhi || phi.Parent != l.Header || !phi.Ty.IsInt() {
		return IndVar{}, false
	}
	switch cmp.Pred {
	case "slt", "sle", "ult", "ule", "sgt", "sge":
	default:
		return IndVar{}, false
	}
	bound, ok := cmp.Args[1].(*llvm.ConstInt)
	if !ok {
		return IndVar{}, false
	}
	var start *llvm.ConstInt
	var step *llvm.ConstInt
	for i, inc := range phi.Args {
		if l.Blocks[phi.Blocks[i]] && phi.Blocks[i] != l.Header {
			// Back-edge value: expect add(iv, step).
			add, ok := inc.(*llvm.Instr)
			if !ok || add.Op != llvm.OpAdd {
				return IndVar{}, false
			}
			if add.Args[0] == phi {
				step, _ = add.Args[1].(*llvm.ConstInt)
			} else if add.Args[1] == phi {
				step, _ = add.Args[0].(*llvm.ConstInt)
			}
		} else {
			start, _ = inc.(*llvm.ConstInt)
		}
	}
	if start == nil || step == nil || step.Val == 0 {
		return IndVar{}, false
	}
	down := cmp.Pred == "sgt" || cmp.Pred == "sge"
	if down != (step.Val < 0) {
		// An up-counting guard over a negative step (or vice versa) is not a
		// counted loop: it exits immediately or never via the guard.
		return IndVar{}, false
	}
	if (cmp.Pred == "ult" || cmp.Pred == "ule") && (start.Val < 0 || bound.Val < 0) {
		// Unsigned compares over negative constants would need modular
		// reasoning; bail out rather than report a wrong count.
		return IndVar{}, false
	}
	return IndVar{Phi: phi, Start: start.Val, Step: step.Val, Bound: bound.Val, Pred: cmp.Pred}, true
}

// TripCount returns the constant trip count of a loop in canonical
// phi/icmp/add form, with ok=false when the shape is not recognized.
func TripCount(l *Loop) (int64, bool) {
	iv, ok := InductionVar(l)
	if !ok {
		return 0, false
	}
	return iv.Trip(), true
}

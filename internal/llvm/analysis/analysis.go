// Package analysis provides CFG utilities over the llvm package: predecessor
// maps, reverse postorder, dominator trees, natural-loop detection, and a
// minimal induction-variable scalar evolution, as required by mem2reg, the
// adaptor, and the HLS scheduler.
package analysis

import (
	"repro/internal/llvm"
)

// CFG caches predecessor/successor relations of a function.
type CFG struct {
	F     *llvm.Function
	Preds map[*llvm.Block][]*llvm.Block
	Order []*llvm.Block // reverse postorder from entry
	index map[*llvm.Block]int
}

// NewCFG computes the CFG for f.
func NewCFG(f *llvm.Function) *CFG {
	c := &CFG{F: f, Preds: map[*llvm.Block][]*llvm.Block{}, index: map[*llvm.Block]int{}}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			c.Preds[s] = append(c.Preds[s], b)
		}
	}
	// Reverse postorder via iterative DFS.
	seen := map[*llvm.Block]bool{}
	var post []*llvm.Block
	type frame struct {
		b *llvm.Block
		i int
	}
	if f.Entry() != nil {
		stack := []frame{{f.Entry(), 0}}
		seen[f.Entry()] = true
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			succs := top.b.Succs()
			if top.i < len(succs) {
				s := succs[top.i]
				top.i++
				if !seen[s] {
					seen[s] = true
					stack = append(stack, frame{s, 0})
				}
				continue
			}
			post = append(post, top.b)
			stack = stack[:len(stack)-1]
		}
	}
	for i := len(post) - 1; i >= 0; i-- {
		c.index[post[i]] = len(c.Order)
		c.Order = append(c.Order, post[i])
	}
	return c
}

// Reachable reports whether b is reachable from entry.
func (c *CFG) Reachable(b *llvm.Block) bool {
	_, ok := c.index[b]
	return ok
}

// DomTree is a dominator tree (Cooper-Harvey-Kennedy).
type DomTree struct {
	cfg  *CFG
	idom map[*llvm.Block]*llvm.Block
}

// NewDomTree computes the dominator tree for f's CFG.
func NewDomTree(c *CFG) *DomTree {
	d := &DomTree{cfg: c, idom: map[*llvm.Block]*llvm.Block{}}
	if len(c.Order) == 0 {
		return d
	}
	entry := c.Order[0]
	d.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range c.Order[1:] {
			var newIdom *llvm.Block
			for _, p := range c.Preds[b] {
				if _, ok := d.idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
					continue
				}
				newIdom = d.intersect(p, newIdom)
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b *llvm.Block) *llvm.Block {
	for a != b {
		for d.cfg.index[a] > d.cfg.index[b] {
			a = d.idom[a]
		}
		for d.cfg.index[b] > d.cfg.index[a] {
			b = d.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator (entry's idom is itself).
func (d *DomTree) IDom(b *llvm.Block) *llvm.Block { return d.idom[b] }

// Dominates reports whether a dominates b (reflexive).
func (d *DomTree) Dominates(a, b *llvm.Block) bool {
	for {
		if a == b {
			return true
		}
		i, ok := d.idom[b]
		if !ok || i == b {
			return false
		}
		b = i
	}
}

// Loop is a natural loop.
type Loop struct {
	Header *llvm.Block
	Latch  *llvm.Block // the back-edge source (single-latch loops only)
	Blocks map[*llvm.Block]bool
	Parent *Loop
	// Children are loops nested directly inside this one.
	Children []*Loop
	// MD is the loop metadata found on the latch terminator, if any.
	MD *llvm.LoopMD
}

// Depth returns the nesting depth (outermost = 1).
func (l *Loop) Depth() int {
	d := 1
	for p := l.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *llvm.Block) bool { return l.Blocks[b] }

// IsInnermost reports whether the loop has no children.
func (l *Loop) IsInnermost() bool { return len(l.Children) == 0 }

// LoopInfo is the set of natural loops of a function.
type LoopInfo struct {
	Loops []*Loop // all loops, outer before inner
	// ByHeader maps header blocks to their loop.
	ByHeader map[*llvm.Block]*Loop
}

// FindLoops detects natural loops via back edges (latch -> header where
// header dominates latch) and nests them by block containment.
func FindLoops(c *CFG, d *DomTree) *LoopInfo {
	li := &LoopInfo{ByHeader: map[*llvm.Block]*Loop{}}
	for _, b := range c.Order {
		for _, s := range b.Succs() {
			if d.Dominates(s, b) {
				// back edge b -> s
				l := li.ByHeader[s]
				if l == nil {
					l = &Loop{Header: s, Latch: b, Blocks: map[*llvm.Block]bool{s: true}}
					li.ByHeader[s] = l
					li.Loops = append(li.Loops, l)
				}
				// Collect body: reverse reachability from latch to header.
				var stack []*llvm.Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range c.Preds[x] {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
				if t := b.Terminator(); t != nil && t.Loop != nil {
					l.MD = t.Loop
				}
			}
		}
	}
	// Establish nesting: loop A is a child of the smallest loop strictly
	// containing its header.
	for _, l := range li.Loops {
		var best *Loop
		for _, o := range li.Loops {
			if o == l || !o.Blocks[l.Header] {
				continue
			}
			if best == nil || len(o.Blocks) < len(best.Blocks) {
				best = o
			}
		}
		if best != nil {
			l.Parent = best
			best.Children = append(best.Children, l)
		}
	}
	// Order outer loops before inner (stable by depth).
	ordered := make([]*Loop, 0, len(li.Loops))
	var emit func(ls []*Loop)
	emit = func(ls []*Loop) {
		for _, l := range ls {
			ordered = append(ordered, l)
			emit(l.Children)
		}
	}
	var tops []*Loop
	for _, l := range li.Loops {
		if l.Parent == nil {
			tops = append(tops, l)
		}
	}
	emit(tops)
	li.Loops = ordered
	return li
}

// TripCount returns the constant trip count of a loop in canonical
// phi/icmp/add form, with ok=false when the shape is not recognized.
//
// Recognized shape (as produced by both flows):
//
//	header: %iv = phi [ C0, pre ], [ %next, latch ]
//	        %c = icmp slt %iv, C1
//	        br %c, body, exit
//	...     %next = add %iv, C2
func TripCount(l *Loop) (int64, bool) {
	var cmp *llvm.Instr
	for _, in := range l.Header.Instrs {
		if in.Op == llvm.OpICmp {
			cmp = in
		}
	}
	term := l.Header.Terminator()
	if cmp == nil || term == nil || term.Op != llvm.OpCondBr || term.Args[0] != cmp {
		return 0, false
	}
	// The induction phi is the compare's left operand.
	phi, ok := cmp.Args[0].(*llvm.Instr)
	if !ok || phi.Op != llvm.OpPhi || phi.Parent != l.Header || !phi.Ty.IsInt() {
		return 0, false
	}
	if cmp.Pred != "slt" {
		return 0, false
	}
	bound, ok := cmp.Args[1].(*llvm.ConstInt)
	if !ok {
		return 0, false
	}
	var start *llvm.ConstInt
	var step *llvm.ConstInt
	for i, inc := range phi.Args {
		if l.Blocks[phi.Blocks[i]] && phi.Blocks[i] != l.Header {
			// Back-edge value: expect add(iv, step).
			add, ok := inc.(*llvm.Instr)
			if !ok || add.Op != llvm.OpAdd {
				return 0, false
			}
			if add.Args[0] == phi {
				step, _ = add.Args[1].(*llvm.ConstInt)
			} else if add.Args[1] == phi {
				step, _ = add.Args[0].(*llvm.ConstInt)
			}
		} else {
			start, _ = inc.(*llvm.ConstInt)
		}
	}
	if start == nil || step == nil || step.Val <= 0 {
		return 0, false
	}
	if bound.Val <= start.Val {
		return 0, true
	}
	return (bound.Val - start.Val + step.Val - 1) / step.Val, true
}

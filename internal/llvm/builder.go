package llvm

import "fmt"

// Builder constructs instructions at the end of a block.
type Builder struct {
	fn  *Function
	blk *Block
	ctr *int
}

// NewBuilder returns a builder for fn, initially without a block.
func NewBuilder(fn *Function) *Builder {
	ctr := 0
	return &Builder{fn: fn, ctr: &ctr}
}

// SetBlock retargets the builder.
func (b *Builder) SetBlock(blk *Block) { b.blk = blk }

// Block returns the current block.
func (b *Builder) Block() *Block { return b.blk }

// Func returns the function under construction.
func (b *Builder) Func() *Function { return b.fn }

// NewName returns a fresh SSA name.
func (b *Builder) NewName() string {
	n := fmt.Sprintf("t%d", *b.ctr)
	*b.ctr++
	return n
}

func (b *Builder) emit(in *Instr) *Instr {
	if in.HasResult() && in.Name == "" {
		in.Name = b.NewName()
	}
	b.blk.Append(in)
	return in
}

// Binary emits a binary arithmetic instruction.
func (b *Builder) Binary(op Opcode, l, r Value) *Instr {
	return b.emit(&Instr{Op: op, Ty: l.Type(), Args: []Value{l, r}})
}

// Add emits add.
func (b *Builder) Add(l, r Value) *Instr { return b.Binary(OpAdd, l, r) }

// Sub emits sub.
func (b *Builder) Sub(l, r Value) *Instr { return b.Binary(OpSub, l, r) }

// Mul emits mul.
func (b *Builder) Mul(l, r Value) *Instr { return b.Binary(OpMul, l, r) }

// SDiv emits sdiv.
func (b *Builder) SDiv(l, r Value) *Instr { return b.Binary(OpSDiv, l, r) }

// SRem emits srem.
func (b *Builder) SRem(l, r Value) *Instr { return b.Binary(OpSRem, l, r) }

// FAdd emits fadd.
func (b *Builder) FAdd(l, r Value) *Instr { return b.Binary(OpFAdd, l, r) }

// FSub emits fsub.
func (b *Builder) FSub(l, r Value) *Instr { return b.Binary(OpFSub, l, r) }

// FMul emits fmul.
func (b *Builder) FMul(l, r Value) *Instr { return b.Binary(OpFMul, l, r) }

// FDiv emits fdiv.
func (b *Builder) FDiv(l, r Value) *Instr { return b.Binary(OpFDiv, l, r) }

// FNeg emits fneg.
func (b *Builder) FNeg(v Value) *Instr {
	return b.emit(&Instr{Op: OpFNeg, Ty: v.Type(), Args: []Value{v}})
}

// ICmp emits icmp with the given predicate.
func (b *Builder) ICmp(pred string, l, r Value) *Instr {
	return b.emit(&Instr{Op: OpICmp, Ty: I1(), Pred: pred, Args: []Value{l, r}})
}

// FCmp emits fcmp with the given predicate.
func (b *Builder) FCmp(pred string, l, r Value) *Instr {
	return b.emit(&Instr{Op: OpFCmp, Ty: I1(), Pred: pred, Args: []Value{l, r}})
}

// Select emits select.
func (b *Builder) Select(c, t, f Value) *Instr {
	return b.emit(&Instr{Op: OpSelect, Ty: t.Type(), Args: []Value{c, t, f}})
}

// Cast emits a conversion instruction to the target type.
func (b *Builder) Cast(op Opcode, v Value, to *Type) *Instr {
	return b.emit(&Instr{Op: op, Ty: to, Args: []Value{v}})
}

// Load emits a typed load through ptr.
func (b *Builder) Load(elem *Type, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpLoad, Ty: elem, SrcElem: elem, Args: []Value{ptr}})
}

// Store emits a store of val through ptr.
func (b *Builder) Store(val, ptr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, SrcElem: val.Type(), Args: []Value{val, ptr}})
}

// GEP emits getelementptr with the given source element type.
func (b *Builder) GEP(srcElem *Type, ptr Value, idxs ...Value) *Instr {
	resElem := gepResultElem(srcElem, len(idxs))
	return b.emit(&Instr{Op: OpGEP, Ty: Ptr(resElem), SrcElem: srcElem,
		Args: append([]Value{ptr}, idxs...)})
}

// gepResultElem computes the pointee type after stepping through n indices
// (first index steps the pointer itself).
func gepResultElem(src *Type, n int) *Type {
	t := src
	for i := 1; i < n; i++ {
		switch {
		case t.IsArray():
			t = t.Elem
		case t.IsStruct():
			// Field index constant is required to be precise; callers in
			// this repo always GEP arrays, so keep the first field type.
			if len(t.Fields) > 0 {
				t = t.Fields[0]
			}
		}
	}
	return t
}

// Alloca emits a stack allocation of ty.
func (b *Builder) Alloca(ty *Type) *Instr {
	return b.emit(&Instr{Op: OpAlloca, Ty: Ptr(ty), SrcElem: ty})
}

// Phi emits an empty phi of type ty; use AddIncoming to populate it.
func (b *Builder) Phi(ty *Type) *Instr {
	return b.emit(&Instr{Op: OpPhi, Ty: ty})
}

// AddIncoming appends an incoming edge to a phi.
func (in *Instr) AddIncoming(v Value, blk *Block) {
	if in.Op != OpPhi {
		panic("llvm: AddIncoming on non-phi")
	}
	in.Args = append(in.Args, v)
	in.Blocks = append(in.Blocks, blk)
}

// Br emits an unconditional branch.
func (b *Builder) Br(dest *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Blocks: []*Block{dest}})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, t, f *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Args: []Value{cond}, Blocks: []*Block{t, f}})
}

// Ret emits a return (v may be nil for void).
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet}
	if v != nil {
		in.Args = []Value{v}
	}
	return b.emit(in)
}

// Call emits a call to the named function.
func (b *Builder) Call(callee string, ret *Type, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Ty: ret, Callee: callee, Args: args})
}

// ExtractValue emits extractvalue.
func (b *Builder) ExtractValue(agg Value, resTy *Type, idxs ...int) *Instr {
	return b.emit(&Instr{Op: OpExtractValue, Ty: resTy, Args: []Value{agg}, Indices: idxs})
}

// InsertValue emits insertvalue.
func (b *Builder) InsertValue(agg, v Value, idxs ...int) *Instr {
	return b.emit(&Instr{Op: OpInsertValue, Ty: agg.Type(), Args: []Value{agg, v}, Indices: idxs})
}

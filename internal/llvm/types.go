// Package llvm implements a compact LLVM-like intermediate representation:
// typed SSA instructions in basic blocks, functions and modules, a textual
// .ll printer/parser pair, and loop metadata. It supports both modern
// opaque-pointer spelling and the typed-pointer spelling older HLS toolchain
// LLVMs require — the version gap the adaptor closes.
package llvm

import (
	"fmt"
	"strings"
	"sync"
)

// TypeKind discriminates LLVM types.
type TypeKind int

const (
	// KindVoid is the void type.
	KindVoid TypeKind = iota
	// KindInt is an integer type iN.
	KindInt
	// KindFloat is the 32-bit float type.
	KindFloat
	// KindDouble is the 64-bit double type.
	KindDouble
	// KindPtr is a pointer; Elem records the pointee for typed-pointer
	// printing (it may be nil in pure opaque modules).
	KindPtr
	// KindArray is [N x Elem].
	KindArray
	// KindStruct is { fields... }.
	KindStruct
)

// Type is a structural LLVM type.
type Type struct {
	Kind   TypeKind
	Bits   int
	Elem   *Type
	N      int64
	Fields []*Type
}

var (
	voidType   = &Type{Kind: KindVoid}
	i1Type     = &Type{Kind: KindInt, Bits: 1}
	i8Type     = &Type{Kind: KindInt, Bits: 8}
	i32Type    = &Type{Kind: KindInt, Bits: 32}
	i64Type    = &Type{Kind: KindInt, Bits: 64}
	floatType  = &Type{Kind: KindFloat, Bits: 32}
	doubleType = &Type{Kind: KindDouble, Bits: 64}
)

// Void returns the void type.
func Void() *Type { return voidType }

// I1 returns i1.
func I1() *Type { return i1Type }

// I8 returns i8.
func I8() *Type { return i8Type }

// I32 returns i32.
func I32() *Type { return i32Type }

// I64 returns i64.
func I64() *Type { return i64Type }

// intTypes interns the off-mainline integer widths (the common ones are
// package singletons). Types are immutable after construction, so sharing
// one node per width is sound and keeps parse-heavy paths allocation-free.
var intTypes sync.Map // bits -> *Type

// IntT returns the iN type.
func IntT(bits int) *Type {
	switch bits {
	case 1:
		return i1Type
	case 8:
		return i8Type
	case 32:
		return i32Type
	case 64:
		return i64Type
	}
	if t, ok := intTypes.Load(bits); ok {
		return t.(*Type)
	}
	t, _ := intTypes.LoadOrStore(bits, &Type{Kind: KindInt, Bits: bits})
	return t.(*Type)
}

// FloatT returns float.
func FloatT() *Type { return floatType }

// DoubleT returns double.
func DoubleT() *Type { return doubleType }

var (
	opaquePtrType = &Type{Kind: KindPtr}
	ptrTypes      sync.Map // *Type (elem) -> *Type
	arrayTypes    sync.Map // arrayKey -> *Type
)

type arrayKey struct {
	n    int64
	elem *Type
}

// Ptr returns a pointer to elem (elem may be nil for a fully opaque pointer).
// Interning keys on the pointee node: Equal treats all pointers alike, but
// typed-pointer printing reads Elem, so distinct pointees stay distinct.
func Ptr(elem *Type) *Type {
	if elem == nil {
		return opaquePtrType
	}
	if t, ok := ptrTypes.Load(elem); ok {
		return t.(*Type)
	}
	t, _ := ptrTypes.LoadOrStore(elem, &Type{Kind: KindPtr, Elem: elem})
	return t.(*Type)
}

// ArrayOf returns [n x elem]. Interning by (n, elem node) shares the handful
// of buffer shapes a kernel's loads and GEPs re-derive thousands of times.
func ArrayOf(n int64, elem *Type) *Type {
	key := arrayKey{n: n, elem: elem}
	if t, ok := arrayTypes.Load(key); ok {
		return t.(*Type)
	}
	t, _ := arrayTypes.LoadOrStore(key, &Type{Kind: KindArray, N: n, Elem: elem})
	return t.(*Type)
}

// StructOf returns an anonymous struct type.
func StructOf(fields ...*Type) *Type { return &Type{Kind: KindStruct, Fields: fields} }

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t != nil && t.Kind == KindInt }

// IsFP reports whether t is float or double.
func (t *Type) IsFP() bool { return t != nil && (t.Kind == KindFloat || t.Kind == KindDouble) }

// IsPtr reports whether t is a pointer.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == KindPtr }

// IsArray reports whether t is an array.
func (t *Type) IsArray() bool { return t != nil && t.Kind == KindArray }

// IsStruct reports whether t is a struct.
func (t *Type) IsStruct() bool { return t != nil && t.Kind == KindStruct }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t == nil || t.Kind == KindVoid }

// Equal reports structural equality. Pointers compare equal regardless of
// pointee (matching opaque-pointer semantics).
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindVoid, KindFloat, KindDouble, KindPtr:
		return true
	case KindInt:
		return t.Bits == o.Bits
	case KindArray:
		return t.N == o.N && t.Elem.Equal(o.Elem)
	case KindStruct:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Equal(o.Fields[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// SizeBytes returns the byte size used by the interpreter and the BRAM
// model (no padding in structs: HLS aggregates are packed here).
func (t *Type) SizeBytes() int64 {
	switch t.Kind {
	case KindVoid:
		return 0
	case KindInt:
		if t.Bits <= 8 {
			return 1
		}
		return int64((t.Bits + 7) / 8)
	case KindFloat:
		return 4
	case KindDouble:
		return 8
	case KindPtr:
		return 8
	case KindArray:
		return t.N * t.Elem.SizeBytes()
	case KindStruct:
		var s int64
		for _, f := range t.Fields {
			s += f.SizeBytes()
		}
		return s
	}
	return 0
}

// BitWidth returns the scalar bit width (0 for aggregates/void).
func (t *Type) BitWidth() int {
	switch t.Kind {
	case KindInt:
		return t.Bits
	case KindFloat:
		return 32
	case KindDouble, KindPtr:
		return 64
	}
	return 0
}

// str renders the type; opaque selects pointer spelling.
func (t *Type) str(opaque bool) string {
	if t == nil {
		return "void"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		return fmt.Sprintf("i%d", t.Bits)
	case KindFloat:
		return "float"
	case KindDouble:
		return "double"
	case KindPtr:
		if opaque || t.Elem == nil {
			return "ptr"
		}
		return t.Elem.str(opaque) + "*"
	case KindArray:
		return fmt.Sprintf("[%d x %s]", t.N, t.Elem.str(opaque))
	case KindStruct:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.str(opaque)
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	}
	return "<badtype>"
}

// String renders the type in modern (opaque-pointer) spelling.
func (t *Type) String() string { return t.str(true) }

// TypedString renders the type with typed pointers (HLS-era spelling).
func (t *Type) TypedString() string { return t.str(false) }
